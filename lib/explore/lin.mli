(** History recording and linearizability checking for FIFO queues.

    Each queue operation is bracketed by two {!stamp}s — logical times from
    a counter bumped at every event, so intervals record execution order,
    which is the simulator's real-time order under {e any} scheduling
    strategy (virtual clocks are not comparable across threads under
    [Sim.Random_walk] / [Sim.Pct]; see [Sim.strategy]).

    {!check} runs Wing & Gong's tree search (with dead-state memoization):
    it succeeds iff some interleaving of the operations that respects the
    recorded real-time order is a legal sequential FIFO execution.

    Crashed (never-completed) operations must not be recorded; record only
    operations that returned. Kill-free fault plans are therefore required
    for histories checked with this module. *)

type op_kind = Enq of int | Deq of int option

type op = {
  op_tid : int;
  op_inv : int;  (** logical time of invocation *)
  op_res : int;  (** logical time of response *)
  op_kind : op_kind;
}

type history

val create : unit -> history

val stamp : history -> int
(** Next logical time; call immediately before the operation (invocation
    stamp) and immediately after it returns (response stamp). *)

val add : history -> tid:int -> inv:int -> res:int -> op_kind -> unit
(** Record one completed operation. *)

val ops : history -> op list
(** Recorded operations, in recording order. *)

val pp_op : Format.formatter -> op -> unit

val max_ops : int
(** Upper bound on checkable history size ([62]: linearized-sets are
    bitmasks in one int). *)

val check : history -> (unit, string) result
(** [Ok ()] iff the history is linearizable with respect to a sequential
    FIFO queue initially empty. [Error msg] carries the full history,
    pretty-printed. @raise Invalid_argument beyond {!max_ops} operations. *)
