(** Memory-model litmus tests with exhaustive schedule enumeration.

    A litmus program is a tiny fixed thread set over one or two shared
    locations; the set of final register vectors reachable under {e every}
    schedule is a memory model's fingerprint. The enumerator runs the
    program under [Sim.Deviate] replay, reads the recorder's
    {!Sim.choices} log, and branches depth-first on every runnable
    alternative at every counted decision — visiting each schedule exactly
    once. [test/test_memorder.ml] pins the golden allowed/forbidden
    outcome sets per {!Sim.Memmodel} variant (the litmus table in
    docs/MEMORY_ORDERING.md). *)

type outcome = int list
(** Final register values in register order. *)

type program = {
  prog_name : string;
  prog_setup : model:Sim.Memmodel.t -> (Sim.tctx -> unit) array * (unit -> outcome);
      (** Build a fresh machine, the thread bodies, and the readback
          closure. Called once per explored schedule: runs must not share
          state. *)
}

val enumerate :
  ?budget:int -> model:Sim.Memmodel.t -> program -> (outcome list, string) result
(** All outcomes reachable under any schedule, sorted and deduplicated.
    [budget] (default 20_000) caps the number of runs; exceeding it
    returns [Error]. Deterministic: the DFS order and the simulator are
    both seeded and side-effect-free across runs. *)

val sb : program
(** Store buffering: [T0: x:=1; r0:=y] vs [T1: y:=1; r1:=x]. Outcome
    [(0,0)] is reachable iff stores are buffered (forbidden under [sc]). *)

val sb_fenced : program
(** SB with a {!Sim.fence} between each store and load: [(0,0)] forbidden
    again under [sb] — but still reachable under [sb-fence-nop], the
    control proving the harness tests fence {e semantics}. *)

val mp : program
(** Message passing: payload then flag vs flag-read then payload-read.
    The stale-payload outcome [(1,0)] requires store-store reordering; a
    FIFO buffer never reorders stores, so it is forbidden everywhere. *)

val lb : program
(** Load buffering: [(1,1)] requires load-store reordering; forbidden
    under every variant here (only stores are delayed). *)

val corr : program
(** Read-read coherence: reading [x] as new-then-old is forbidden under
    every variant. *)

val row : program
(** Read-own-write, single thread: [1] with forwarding (or under [sc]);
    the stale [0] under [sb-bypass] (buffering without store-to-load
    forwarding). *)

val all : program list
(** The model-fingerprint programs whose golden outcome tables
    [test/test_memorder.ml] pins. {!remote_reuse} is deliberately not a
    member. *)

val remote_reuse : program
(** The arena allocator's remote-free drain, exhaustively: the owner
    allocates, publishes, re-mallocs (draining the remote-free ring) and
    writes; the other thread frees the published block remotely. At
    quiescence the (possibly reused) word must hold exactly the new
    life's value under every schedule of every memory model, and no
    schedule may fault. The second register reports whether the schedule
    reached the actual reuse, so tests can assert the interesting path
    was covered. *)
