type outcome = Pass | Fail of string

type t = {
  scn_key : string;
  scn_descr : string;
  scn_threads : int;
  scn_ops : int;
  scn_model : Sim.Memmodel.t;
  scn_run :
    strategy:Sim.strategy ->
    seed:int ->
    faults:Sim.Fault.spec option ->
    record:Sim.recorder option ->
    trace:Trace.t option ->
    outcome;
}

exception Lin_violation of string
exception Wrong_result of string

let truncate_to n s = if String.length s <= n then s else String.sub s 0 n ^ " ..."

let catch_run f =
  match f () with
  | () -> Pass
  | exception Simmem.Fault flt ->
    Fail (Format.asprintf "memory fault: %a" Simmem.pp_fault flt)
  | exception Sim.Watchdog msg -> Fail ("watchdog: " ^ truncate_to 400 msg)
  | exception Htm.Retry_exhausted r ->
    Fail (Format.asprintf "transaction retries exhausted: %a" Htm.pp_abort_reason r)
  | exception Stm.Retry_exhausted r ->
    Fail (Format.asprintf "software transaction retries exhausted: %a" Stm.pp_abort_reason r)
  | exception Collect_spec.Violation msg -> Fail ("collect spec violated: " ^ msg)
  | exception Collect.Intf.Capacity_exceeded msg -> Fail ("capacity exceeded: " ^ msg)
  | exception Lin_violation msg -> Fail msg
  | exception Wrong_result msg -> Fail msg

(* Kills would leave half-performed operations out of the history (and the
   queue), so linearizability checking requires kill-free plans. *)
let without_kills = function
  | None -> None
  | Some (f : Sim.Fault.spec) ->
    Some { f with kill_rate = 0.; max_random_kills = 0; kills_at = []; kills_at_point = [] }

let has_kills = function
  | None -> false
  | Some (f : Sim.Fault.spec) ->
    (f.kill_rate > 0. && f.max_random_kills > 0)
    || f.kills_at <> [] || f.kills_at_point <> []

let watchdog_budget = 10_000_000

let queue_lin ?key ?(htm_config = Htm.default_config) ?(model = Sim.Memmodel.sc)
    (mk : Hqueue.Intf.maker) ~threads ~ops =
  let key = match key with Some k -> k | None -> "queue:" ^ mk.queue_name in
  if threads * ops > Lin.max_ops then
    invalid_arg
      (Printf.sprintf "Scenario.queue_lin: %d*%d operations exceed Lin.max_ops" threads
         ops);
  let run ~strategy ~seed ~faults ~record ~trace =
    let faults = without_kills faults in
    catch_run (fun () ->
      let mem = Simmem.create ~model () in
      let htm = Htm.create ~config:htm_config mem in
      let boot = Sim.boot ~seed () in
      let q = mk.make htm boot ~num_threads:threads in
      let hist = Lin.create () in
      (match trace with
      | Some tr ->
        Trace.attach_mem tr mem;
        Trace.attach_htm tr htm
      | None -> ());
      let body i ctx =
        let rng = Sim.rng ctx in
        for k = 1 to ops do
          (if Sim.Rng.int rng 100 < 55 then begin
             let v = ((i + 1) * 1000) + k in
             let inv = Lin.stamp hist in
             q.enqueue ctx v;
             let res = Lin.stamp hist in
             Lin.add hist ~tid:i ~inv ~res (Lin.Enq v)
           end
           else begin
             let inv = Lin.stamp hist in
             let r = q.dequeue ctx in
             let res = Lin.stamp hist in
             Lin.add hist ~tid:i ~inv ~res (Lin.Deq r)
           end);
          Sim.note_progress ctx
        done
      in
      Sim.run ~seed ~strategy ?record
        ?faults:(Option.map Sim.Fault.make faults)
        ?on_fault:(Option.map (fun tr ev -> Trace.on_fault tr ev) trace)
        ~watchdog:watchdog_budget
        (Array.init threads body);
      (match Lin.check hist with Ok () -> () | Error msg -> raise (Lin_violation msg));
      q.destroy boot)
  in
  {
    scn_key = key;
    scn_descr =
      Printf.sprintf "linearizability of %s, %d threads x %d mixed ops" mk.queue_name
        threads ops;
    scn_threads = threads;
    scn_ops = ops;
    scn_model = model;
    scn_run = run;
  }

(* Unsynchronised read-modify-write counter whose threads run in disjoint
   virtual-time windows: correct under min-clock, racy under any strategy
   that reorders across windows. The explorer's smoke target: a seeded bug
   whose finding, shrinking and replay the tests assert on. *)
let racy_counter ?(model = Sim.Memmodel.sc) ~threads ~ops () =
  let run ~strategy ~seed ~faults ~record ~trace =
    let faults = without_kills faults in
    catch_run (fun () ->
      let mem = Simmem.create ~model () in
      let boot = Sim.boot ~seed () in
      let addr = Simmem.malloc mem boot 1 in
      (match trace with Some tr -> Trace.attach_mem tr mem | None -> ());
      let window = (ops * 200) + 1000 in
      let body i ctx =
        Sim.advance_to ctx (i * window);
        for _ = 1 to ops do
          let v = Simmem.read mem ctx addr in
          Sim.tick ctx 25;
          Simmem.write mem ctx addr (v + 1);
          Sim.note_progress ctx
        done
      in
      Sim.run ~seed ~strategy ?record
        ?faults:(Option.map Sim.Fault.make faults)
        ?on_fault:(Option.map (fun tr ev -> Trace.on_fault tr ev) trace)
        ~watchdog:watchdog_budget
        (Array.init threads body);
      let total = Simmem.peek mem addr in
      if total <> threads * ops then
        raise
          (Wrong_result
             (Printf.sprintf "racy counter: %d increments observed, expected %d" total
                (threads * ops))))
  in
  {
    scn_key = "racy";
    scn_descr =
      Printf.sprintf "unsynchronised counter, %d threads x %d increments" threads ops;
    scn_threads = threads;
    scn_ops = ops;
    scn_model = model;
    scn_run = run;
  }

let collect_spec ?key ?(htm_config = Htm.default_config) ?(model = Sim.Memmodel.sc)
    (mk : Collect.Intf.maker) ~threads ~ops =
  let key = match key with Some k -> k | None -> "collect:" ^ mk.algo_name in
  let run ~strategy ~seed ~faults ~record ~trace =
    catch_run (fun () ->
      let mem = Simmem.create ~model () in
      let htm = Htm.create ~config:htm_config mem in
      let boot = Sim.boot ~seed () in
      let cfg =
        {
          Collect.Intf.max_slots = threads * 4;
          num_threads = threads;
          step = Collect.Intf.Fixed 4;
          min_size = 2;
        }
      in
      let inst = mk.make htm boot cfg in
      let log = Collect_spec.create () in
      (match trace with
      | Some tr ->
        Trace.attach_mem tr mem;
        Trace.attach_htm tr htm
      | None -> ());
      let body _i ctx =
        let rng = Sim.rng ctx in
        let h = Collect_spec.register log inst ctx in
        for _ = 1 to ops do
          (match Sim.Rng.int rng 3 with
          | 0 -> Collect_spec.collect log inst ctx
          | _ -> Collect_spec.update log inst ctx h);
          Sim.note_progress ctx
        done;
        Collect_spec.collect log inst ctx;
        Collect_spec.deregister log inst ctx h;
        Sim.note_progress ctx
      in
      Sim.run ~seed ~strategy ?record
        ?faults:(Option.map Sim.Fault.make faults)
        ?on_fault:(Option.map (fun tr ev -> Trace.on_fault tr ev) trace)
        ~watchdog:watchdog_budget
        (Array.init threads body);
      let (_ : Collect_spec.verdict) = Collect_spec.check log in
      (* a killed thread leaves its handle registered, so destroy (which
         requires quiescence) is only valid on kill-free plans *)
      if not (has_kills faults) then inst.destroy boot)
  in
  {
    scn_key = key;
    scn_descr =
      Printf.sprintf "Dynamic Collect spec of %s, %d threads x %d ops" mk.algo_name
        threads ops;
    scn_threads = threads;
    scn_ops = ops;
    scn_model = model;
    scn_run = run;
  }

let queues ?model ~threads ~ops () =
  List.map (fun mk -> queue_lin ?model mk ~threads ~ops) Hqueue.all_with_extensions

let collects ?model ~threads ~ops () =
  List.map (fun mk -> collect_spec ?model mk ~threads ~ops) Collect.all_with_extensions

let strip_prefix p s =
  let lp = String.length p in
  if String.length s >= lp && String.sub s 0 lp = p then
    Some (String.sub s lp (String.length s - lp))
  else None

(* Everything on the software path: escalate every transaction immediately
   ([Stm_after 0]), retry forever (budget 0, no TLE) — so the explorer and
   the linearizability checker drive the TL2 layer itself, not the
   hardware fast path. *)
let stm_forced = { Htm.default_config with stm = Htm.Stm_after 0 }

let build ~key ?model ~threads ~ops () =
  match key with
  | "racy" -> Ok (racy_counter ?model ~threads ~ops ())
  | "broken-rop" -> Ok (queue_lin ~key:"broken-rop" ?model Mutant.maker ~threads ~ops)
  | "ms-nofence" ->
    (* The StoreLoad-fence-dropping mutant: correct under [sc], unsafe
       under a buffered model — the memory-ordering hunting target. *)
    Ok (queue_lin ~key:"ms-nofence" ?model Mutant.nofence_maker ~threads ~ops)
  | "broken-epoch" ->
    (* The premature-free EBR mutant: one grace period instead of two, so
       a bucket is freed while a reader that announced the previous epoch
       can still hold pointers into it. Epoch advance on every retire
       makes the use-after-free reachable in a handful of operations. *)
    Ok
      (queue_lin ~key:"broken-epoch" ?model
         (Hqueue.Ms_epoch_queue.mk_maker ~grace:1 ~advance_every:1 "BrokenEpoch")
         ~threads ~ops)
  | "epoch-queue" ->
    (* The control: the correct two-grace-period queue under the same
       aggressive advance cadence must stay violation- and fault-free. *)
    Ok
      (queue_lin ~key:"epoch-queue" ?model
         (Hqueue.Ms_epoch_queue.mk_maker ~advance_every:1 "MichaelScott+EBR")
         ~threads ~ops)
  | "htm-memorder" -> (
    (* The HTM queue under whatever model the caller picked: strong
       atomicity must keep it violation-free under every variant. *)
    match Hqueue.find_maker "HTM" with
    | Some mk -> Ok (queue_lin ~key:"htm-memorder" ?model mk ~threads ~ops)
    | None -> Error "queue maker \"HTM\" missing")
  | "stm-queue" -> (
    match Hqueue.find_maker "HTM" with
    | Some mk ->
      Ok (queue_lin ~key:"stm-queue" ~htm_config:stm_forced ?model mk ~threads ~ops)
    | None -> Error "queue maker \"HTM\" missing")
  | "stm-collect" -> (
    match Collect.find_maker "ListFastCollect" with
    | Some mk ->
      Ok (collect_spec ~key:"stm-collect" ~htm_config:stm_forced ?model mk ~threads ~ops)
    | None -> Error "collect maker \"ListFastCollect\" missing")
  | _ -> (
    match strip_prefix "queue:" key with
    | Some name -> (
      match Hqueue.find_maker name with
      | Some mk -> Ok (queue_lin ?model mk ~threads ~ops)
      | None -> Error (Printf.sprintf "unknown queue %S" name))
    | None -> (
      match strip_prefix "collect:" key with
      | Some name -> (
        match Collect.find_maker name with
        | Some mk -> Ok (collect_spec ?model mk ~threads ~ops)
        | None -> Error (Printf.sprintf "unknown collect algorithm %S" name))
      | None ->
        Error
          (Printf.sprintf
             "unknown scenario %S (expected \"queue:NAME\", \"collect:NAME\", \
              \"racy\", \"broken-rop\", \"ms-nofence\", \"broken-epoch\", \
              \"epoch-queue\", \"htm-memorder\", \"stm-queue\" or \
              \"stm-collect\")"
             key)))
