type op_kind = Enq of int | Deq of int option

type op = { op_tid : int; op_inv : int; op_res : int; op_kind : op_kind }

type history = { mutable now : int; mutable rev_ops : op list }

let create () = { now = 0; rev_ops = [] }

let stamp h =
  h.now <- h.now + 1;
  h.now

let add h ~tid ~inv ~res kind =
  h.rev_ops <- { op_tid = tid; op_inv = inv; op_res = res; op_kind = kind } :: h.rev_ops

let ops h = List.rev h.rev_ops

let pp_kind ppf = function
  | Enq v -> Format.fprintf ppf "enq %d" v
  | Deq None -> Format.fprintf ppf "deq -> empty"
  | Deq (Some v) -> Format.fprintf ppf "deq -> %d" v

let pp_op ppf o =
  Format.fprintf ppf "t%d [%d,%d] %a" o.op_tid o.op_inv o.op_res pp_kind o.op_kind

let max_ops = 62

(* Wing & Gong's tree search: linearize one minimal pending operation at a
   time against a sequential FIFO model. A state is (set of linearized ops,
   queue contents); states proven dead are memoized, which is what makes
   the search tractable on the densely-overlapping histories the explorer
   produces. *)
let check h =
  let ops = Array.of_list (ops h) in
  let n = Array.length ops in
  if n > max_ops then
    invalid_arg (Printf.sprintf "Lin.check: %d operations (max %d)" n max_ops);
  if n = 0 then Ok ()
  else begin
    let full = (1 lsl n) - 1 in
    let dead : (int * int list, unit) Hashtbl.t = Hashtbl.create 4096 in
    (* [i] may be linearized next iff no other pending op returned before
       [i] was invoked (such an op must precede [i] in any linearization). *)
    let minimal mask i =
      let rec go j =
        if j = n then true
        else if
          j <> i && mask land (1 lsl j) = 0 && ops.(j).op_res < ops.(i).op_inv
        then false
        else go (j + 1)
      in
      go 0
    in
    let rec go mask queue =
      if mask = full then true
      else if Hashtbl.mem dead (mask, queue) then false
      else begin
        let found = ref false in
        let i = ref 0 in
        while (not !found) && !i < n do
          let idx = !i in
          incr i;
          if mask land (1 lsl idx) = 0 && minimal mask idx then begin
            let mask' = mask lor (1 lsl idx) in
            match ops.(idx).op_kind with
            | Enq v -> if go mask' (queue @ [ v ]) then found := true
            | Deq None -> if queue = [] && go mask' queue then found := true
            | Deq (Some v) -> (
              match queue with
              | q0 :: rest when q0 = v -> if go mask' rest then found := true
              | _ -> ())
          end
        done;
        if not !found then Hashtbl.replace dead (mask, queue) ();
        !found
      end
    in
    if go 0 [] then Ok ()
    else begin
      let b = Buffer.create 256 in
      Buffer.add_string b
        (Printf.sprintf "history of %d operations is not linearizable as a FIFO queue:" n);
      Array.iter
        (fun o -> Buffer.add_string b (Format.asprintf "\n  %a" pp_op o))
        ops;
      Error (Buffer.contents b)
    end
  end
