type result = {
  shr_deviations : (int * int) list;
  shr_faults : Sim.Fault.spec option;
  shr_tests : int;
}

(* Split [l] into [n] contiguous chunks of near-equal length. *)
let split l n =
  let len = List.length l in
  let base = len / n and extra = len mod n in
  let rec take k acc rest =
    if k = 0 then (List.rev acc, rest)
    else match rest with [] -> (List.rev acc, []) | x :: tl -> take (k - 1) (x :: acc) tl
  in
  let rec go i rest acc =
    if i = n then List.rev acc
    else begin
      let k = base + if i < extra then 1 else 0 in
      let chunk, rest = take k [] rest in
      go (i + 1) rest (chunk :: acc)
    end
  in
  go 0 l []

let minimize ?(max_tests = 1200) ~replay deviations faults =
  let tests = ref 0 in
  let still_fails devs flts =
    if !tests >= max_tests then false
    else begin
      incr tests;
      replay ~deviations:devs ~faults:flts
    end
  in
  (* cheapest wins first: does it fail with no deviations / no faults? *)
  let faults = if faults <> None && still_fails deviations None then None else faults in
  let deviations = if deviations <> [] && still_fails [] faults then [] else deviations in
  (* ddmin (Zeller & Hildebrandt) over the deviation list *)
  let rec ddmin devs n =
    let len = List.length devs in
    if len <= 1 || !tests >= max_tests then devs
    else begin
      let chunks = split devs n in
      let rec complements i =
        if i >= List.length chunks then None
        else begin
          let comp = List.concat (List.filteri (fun j _ -> j <> i) chunks) in
          if still_fails comp faults then Some comp else complements (i + 1)
        end
      in
      match complements 0 with
      | Some comp -> ddmin comp (max 2 (n - 1))
      | None -> if n >= len then devs else ddmin devs (min len (2 * n))
    end
  in
  let deviations = ddmin deviations 2 in
  (* one-at-a-time elimination pass: ddmin can stall at a non-1-minimal
     set when removing any chunk realigns the schedule, yet individual
     deviations are still redundant *)
  let rec sweep kept = function
    | [] -> List.rev kept
    | d :: rest ->
      let without = List.rev_append kept rest in
      if still_fails without faults then sweep kept rest else sweep (d :: kept) rest
  in
  let deviations = if List.length deviations > 1 then sweep [] deviations else deviations in
  { shr_deviations = deviations; shr_faults = faults; shr_tests = !tests }
