(** The explorer driver: enumerate (seed, strategy, fault-plan) triples
    over a scenario set, and shrink + package every violation found.

    One search run is fully deterministic in its arguments: seeds are
    derived arithmetically from [base_seed] and the run index, strategies
    cycle per round through {e min-clock, random walks, PCT at depths 3
    and 4}, and (when enabled) every other adversarial round adds a
    kill-free stall/spurious fault plan. Each run records its scheduling
    decisions; on failure the sparse deviation list is verified to replay,
    minimised with {!Shrink}, and replayed once more with taps attached to
    capture the interleaving — yielding a self-contained {!Artifact}. *)

type violation = {
  vio_artifact : Artifact.t;
  vio_replayed : bool;
      (** the recorded deviations reproduced the failure under
          [Sim.Deviate] before shrinking (always expected; [false] would
          indicate a determinism bug) *)
  vio_shrink_tests : int;
}

type summary = {
  res_runs : int;
  res_passed : int;
  res_violations : violation list;
}

val strategy_for : round:int -> seed:int -> Sim.strategy
(** The strategy schedule: round 0 is [Min_clock], later rounds cycle
    random walks and PCT. Exposed for the CLI and tests. *)

val light_faults : int -> Sim.Fault.spec
(** The kill-free adversity plan used by fault-enabled rounds: 2 %
    preemption stalls (up to 400 cycles) and 2 % spurious aborts. *)

val search :
  ?offset:int ->
  ?base_seed:int ->
  ?with_faults:bool ->
  ?max_violations:int ->
  ?log:(string -> unit) ->
  budget:int ->
  Scenario.t list ->
  summary
(** [search ~budget scenarios] runs schedules [offset] (default 0)
    through [offset + budget - 1] round-robin over the scenarios,
    stopping early after [max_violations] (default 3) shrunken
    violations. Seeds, strategies and fault plans are pure functions of
    the run index, so an offset range reproduces exactly that slice of a
    longer serial search. [log] receives progress lines. *)

val search_sharded :
  ?jobs:int ->
  ?base_seed:int ->
  ?with_faults:bool ->
  ?max_violations:int ->
  ?log:(string -> unit) ->
  budget:int ->
  Scenario.t list ->
  summary
(** {!search} with the run range sharded contiguously across up to
    [jobs] domains. The union of runs equals the serial search's and the
    merged violations are listed in run order, but each shard applies
    [max_violations] separately (so up to [jobs * max_violations]
    violations can come back) and [log] only fires at [jobs = 1]. *)

val replay_artifact :
  ?trace:Trace.t -> Artifact.t -> (Scenario.outcome, string) result
(** Re-run an artifact's scenario under its recorded deviations and fault
    plan; [Error] if its scenario key no longer resolves. *)
