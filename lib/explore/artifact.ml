type t = {
  art_scenario : string;
  art_threads : int;
  art_ops : int;
  art_seed : int;
  art_model : string;
  art_deviations : (int * int) list;
  art_faults : Sim.Fault.spec option;
  art_message : string;
  art_trace : string list;
}

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let unescape s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then begin
       (match s.[!i + 1] with
       | 'n' -> Buffer.add_char b '\n'
       | c -> Buffer.add_char b c);
       incr i
     end
     else Buffer.add_char b s.[!i]);
    incr i
  done;
  Buffer.contents b

(* Floats as hex literals: exact round-trip through float_of_string. *)
let faults_to_string = function
  | None -> "none"
  | Some (f : Sim.Fault.spec) ->
    let kills_at =
      String.concat "," (List.map (fun (tid, t) -> Printf.sprintf "%d@%d" tid t) f.kills_at)
    in
    let base =
      Printf.sprintf "seed=%d;stall=%h,%d;kill=%h,%d;kills_at=%s;spurious=%h" f.fault_seed
        f.stall_rate f.stall_cycles f.kill_rate f.max_random_kills kills_at
        f.spurious_abort_rate
    in
    (* Named kill points ride as an optional trailing field so plans
       without them round-trip byte-identically with v1 artifacts. *)
    if f.kills_at_point = [] then base
    else
      base ^ ";kills_at_point="
      ^ String.concat ","
          (List.map
             (fun (tid, p, at) -> Printf.sprintf "%d@%s@%d" tid p at)
             f.kills_at_point)

let faults_of_string s =
  if s = "none" then Ok None
  else
    try
      let field name part =
        match String.split_on_char '=' part with
        | [ k; v ] when k = name -> v
        | _ -> failwith ("expected " ^ name ^ "=...")
      in
      let parts, kills_at_point =
        match String.split_on_char ';' s with
        | [ _; _; _; _; _; kap ] as all -> (
          match String.split_on_char '=' kap with
          | [ "kills_at_point"; "" ] -> (List.filteri (fun i _ -> i < 5) all, [])
          | [ "kills_at_point"; v ] ->
            ( List.filteri (fun i _ -> i < 5) all,
              List.map
                (fun part ->
                  match String.split_on_char '@' part with
                  | [ tid; p; at ] -> (int_of_string tid, p, int_of_string at)
                  | _ -> failwith "kills_at_point")
                (String.split_on_char ',' v) )
          | _ -> failwith "expected kills_at_point=...")
        | parts -> (parts, [])
      in
      match parts with
      | [ seed; stall; kill; kills_at; spurious ] ->
        let fault_seed = int_of_string (field "seed" seed) in
        let stall_rate, stall_cycles =
          match String.split_on_char ',' (field "stall" stall) with
          | [ r; c ] -> (float_of_string r, int_of_string c)
          | _ -> failwith "stall"
        in
        let kill_rate, max_random_kills =
          match String.split_on_char ',' (field "kill" kill) with
          | [ r; m ] -> (float_of_string r, int_of_string m)
          | _ -> failwith "kill"
        in
        let kills_at =
          match field "kills_at" kills_at with
          | "" -> []
          | v ->
            List.map
              (fun part ->
                match String.split_on_char '@' part with
                | [ tid; t ] -> (int_of_string tid, int_of_string t)
                | _ -> failwith "kills_at")
              (String.split_on_char ',' v)
        in
        let spurious_abort_rate = float_of_string (field "spurious" spurious) in
        Ok
          (Some
             {
               Sim.Fault.fault_seed;
               stall_rate;
               stall_cycles;
               kill_rate;
               max_random_kills;
               kills_at;
               kills_at_point;
               spurious_abort_rate;
             })
      | _ -> failwith "expected 5 ;-separated fields"
    with Failure msg -> Error ("bad fault plan: " ^ msg)

let deviations_to_string devs =
  String.concat " " (List.map (fun (k, tid) -> Printf.sprintf "%d:%d" k tid) devs)

let deviations_of_string s =
  try
    Ok
      (List.filter_map
         (fun part ->
           if part = "" then None
           else
             match String.split_on_char ':' part with
             | [ k; tid ] -> Some (int_of_string k, int_of_string tid)
             | _ -> failwith part)
         (String.split_on_char ' ' s))
  with Failure msg -> Error ("bad deviation " ^ msg)

let trace_marker = "-- trace --"

let to_string a =
  let b = Buffer.create 1024 in
  Buffer.add_string b "# explore artifact v1\n";
  Buffer.add_string b
    (Printf.sprintf "# replay with: explore replay <this-file>  (deterministic)\n");
  Buffer.add_string b (Printf.sprintf "scenario=%s\n" a.art_scenario);
  Buffer.add_string b (Printf.sprintf "threads=%d\n" a.art_threads);
  Buffer.add_string b (Printf.sprintf "ops=%d\n" a.art_ops);
  Buffer.add_string b (Printf.sprintf "seed=%d\n" a.art_seed);
  (* The memory model rides as an optional field: [sc] artifacts stay
     byte-identical with v1 files, and v1 files parse as [sc]. *)
  if a.art_model <> "sc" then
    Buffer.add_string b (Printf.sprintf "model=%s\n" a.art_model);
  Buffer.add_string b (Printf.sprintf "deviations=%s\n" (deviations_to_string a.art_deviations));
  Buffer.add_string b (Printf.sprintf "faults=%s\n" (faults_to_string a.art_faults));
  Buffer.add_string b (Printf.sprintf "message=%s\n" (escape a.art_message));
  Buffer.add_string b trace_marker;
  Buffer.add_char b '\n';
  List.iter
    (fun line ->
      Buffer.add_string b line;
      Buffer.add_char b '\n')
    a.art_trace;
  Buffer.contents b

let of_string s =
  let lines = String.split_on_char '\n' s in
  let header, trace =
    let rec go acc = function
      | [] -> (List.rev acc, [])
      | l :: tl when l = trace_marker ->
        (List.rev acc, match List.rev tl with "" :: r -> List.rev r | _ -> tl)
      | l :: tl -> go (l :: acc) tl
    in
    go [] lines
  in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun line ->
      if line <> "" && line.[0] <> '#' then
        match String.index_opt line '=' with
        | Some i ->
          Hashtbl.replace tbl
            (String.sub line 0 i)
            (String.sub line (i + 1) (String.length line - i - 1))
        | None -> ())
    header;
  let ( let* ) = Result.bind in
  let get k =
    match Hashtbl.find_opt tbl k with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %S" k)
  in
  let int k =
    let* v = get k in
    match int_of_string_opt v with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "field %S: not an integer" k)
  in
  let* art_scenario = get "scenario" in
  let* art_threads = int "threads" in
  let* art_ops = int "ops" in
  let* art_seed = int "seed" in
  let art_model =
    match Hashtbl.find_opt tbl "model" with Some m -> m | None -> "sc"
  in
  let* devs = get "deviations" in
  let* art_deviations = deviations_of_string devs in
  let* flts = get "faults" in
  let* art_faults = faults_of_string flts in
  let* msg = get "message" in
  Ok
    {
      art_scenario;
      art_threads;
      art_ops;
      art_seed;
      art_model;
      art_deviations;
      art_faults;
      art_message = unescape msg;
      art_trace = trace;
    }

let save path a =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string a))

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> of_string s
  | exception Sys_error msg -> Error msg
