(* Deliberately broken Michael-Scott + ROP queues: identical to
   [Hqueue.Ms_rop_queue] except for one seeded defect each. Two mutants
   share this core, selected by flags:

   - BrokenROP ([eager_free]): a dequeued node is freed immediately
     instead of being retired until no announcement covers it — the
     "wait" of announcement-based reclamation removed. A real
     use-after-free/ABA bug under any memory model, reachable only when a
     reader holding the old head is preempted across the dequeuer's free.

   - NoFenceROP (not [fenced]): the membar #StoreLoad after each
     announcement is dropped. Retirement and scanning stay intact, so the
     queue is correct under [sc] — but under a buffered model the
     announcement can sit invisible in the issuing thread's store buffer
     while a reclaimer scans, misses it, and frees the node the reader is
     about to dereference. The scan threshold is 1 (scan on every retire)
     so the bug is reachable inside small explorer scenarios; the correct
     queue's amortized threshold exceeds their total operation count.

   Test-only: neither is registered in [Hqueue]. *)

let off_val = 0
let off_next = 1
let node_words = 2
let hdr_head = 0
let hdr_tail = 8
let hdr_words = 16
let hazards_per_thread = 2

type t = {
  htm : Htm.t;
  hdr : int;
  hz : int;
  num_threads : int;
  fenced : bool; (* announcement followed by a real fence *)
  eager_free : bool; (* free on dequeue, no retirement (BrokenROP) *)
  retired : int list array;
  retired_count : int array;
  scan_threshold : int;
}

let slot_index t ctx =
  let tid = Sim.tid ctx in
  if tid = Sim.boot_tid then t.num_threads
  else if tid < t.num_threads then tid
  else invalid_arg "Mutant: thread id outside the declared range"

let hazard_addr t ctx i = t.hz + (hazards_per_thread * slot_index t ctx) + i

let fence_cost = 60

let announce t ctx i node =
  Simmem.write (Htm.mem t.htm) ctx (hazard_addr t ctx i) node;
  (* NoFenceROP's defect: the store is issued but nothing forces it out of
     the store buffer before the validating re-read. *)
  if t.fenced then Sim.fence ~cost:fence_cost ctx

let clear_announcements t ctx =
  announce t ctx 0 0;
  announce t ctx 1 0

let create htm ctx ~num_threads ~fenced ~eager_free ~scan_threshold =
  let mem = Htm.mem htm in
  let hdr = Simmem.malloc mem ctx hdr_words in
  let hz = Simmem.malloc mem ctx (hazards_per_thread * (num_threads + 1)) in
  let sentinel = Simmem.malloc mem ctx node_words in
  Simmem.write mem ctx (hdr + hdr_head) sentinel;
  Simmem.write mem ctx (hdr + hdr_tail) sentinel;
  {
    htm;
    hdr;
    hz;
    num_threads;
    fenced;
    eager_free;
    retired = Array.make (Sim.max_threads + 1) [];
    retired_count = Array.make (Sim.max_threads + 1) 0;
    scan_threshold;
  }

(* Free every retired node not currently announced by anyone (same scan as
   [Hqueue.Ms_rop_queue]). NoFenceROP's scan is itself correct — the bug
   is that a buffered announcement is not yet visible to it. *)
let scan t ctx =
  let mem = Htm.mem t.htm in
  let nslots = hazards_per_thread * (t.num_threads + 1) in
  let announced = Array.init nslots (fun i -> Simmem.read mem ctx (t.hz + i)) in
  let tid = Sim.tid ctx in
  let keep, free_list =
    List.partition (fun node -> Array.exists (Int.equal node) announced) t.retired.(tid)
  in
  List.iter (fun node -> Simmem.free mem ctx node) free_list;
  t.retired.(tid) <- keep;
  t.retired_count.(tid) <- List.length keep

let retire t ctx node =
  let tid = Sim.tid ctx in
  t.retired.(tid) <- node :: t.retired.(tid);
  t.retired_count.(tid) <- t.retired_count.(tid) + 1;
  if t.retired_count.(tid) >= t.scan_threshold then scan t ctx

let enqueue t ctx v =
  let mem = Htm.mem t.htm in
  let node = Simmem.malloc mem ctx node_words in
  Simmem.write mem ctx (node + off_val) v;
  let b = Sim.Backoff.create ctx in
  let retry loop =
    Sim.Backoff.once b;
    loop ()
  in
  let rec loop () =
    let tail = Simmem.read mem ctx (t.hdr + hdr_tail) in
    announce t ctx 0 tail;
    if Simmem.read mem ctx (t.hdr + hdr_tail) <> tail then retry loop
    else begin
      let next = Simmem.read mem ctx (tail + off_next) in
      if Simmem.read mem ctx (t.hdr + hdr_tail) <> tail then retry loop
      else if next <> 0 then begin
        let (_ : bool) =
          Simmem.cas mem ctx (t.hdr + hdr_tail) ~expected:tail ~desired:next
        in
        retry loop
      end
      else if Simmem.cas mem ctx (tail + off_next) ~expected:0 ~desired:node then begin
        let (_ : bool) =
          Simmem.cas mem ctx (t.hdr + hdr_tail) ~expected:tail ~desired:node
        in
        ()
      end
      else retry loop
    end
  in
  loop ();
  announce t ctx 0 0

let dequeue t ctx =
  let mem = Htm.mem t.htm in
  let b = Sim.Backoff.create ctx in
  let retry loop =
    Sim.Backoff.once b;
    loop ()
  in
  let rec loop () =
    let head = Simmem.read mem ctx (t.hdr + hdr_head) in
    announce t ctx 0 head;
    if Simmem.read mem ctx (t.hdr + hdr_head) <> head then retry loop
    else begin
      let tail = Simmem.read mem ctx (t.hdr + hdr_tail) in
      let next = Simmem.read mem ctx (head + off_next) in
      announce t ctx 1 next;
      if Simmem.read mem ctx (t.hdr + hdr_head) <> head then retry loop
      else if head = tail then begin
        if next = 0 then None
        else begin
          let (_ : bool) =
            Simmem.cas mem ctx (t.hdr + hdr_tail) ~expected:tail ~desired:next
          in
          retry loop
        end
      end
      else begin
        let v = Simmem.read mem ctx (next + off_val) in
        if Simmem.cas mem ctx (t.hdr + hdr_head) ~expected:head ~desired:next then begin
          (* BrokenROP's defect: no retirement, no scan of announcements *)
          if t.eager_free then Simmem.free mem ctx head else retire t ctx head;
          Some v
        end
        else retry loop
      end
    end
  in
  let r = loop () in
  clear_announcements t ctx;
  r

let destroy t ctx =
  let mem = Htm.mem t.htm in
  Array.iteri
    (fun tid nodes ->
      List.iter (fun node -> Simmem.free mem ctx node) nodes;
      t.retired.(tid) <- [];
      t.retired_count.(tid) <- 0)
    t.retired;
  let rec free_from node =
    if node <> 0 then begin
      let next = Simmem.read mem ctx (node + off_next) in
      Simmem.free mem ctx node;
      free_from next
    end
  in
  free_from (Simmem.read mem ctx (t.hdr + hdr_head));
  Simmem.free mem ctx t.hz;
  Simmem.free mem ctx t.hdr

let mk_maker name ~fenced ~eager_free ~scan_threshold : Hqueue.Intf.maker =
  {
    queue_name = name;
    reclaims = true;
    make =
      (fun htm ctx ~num_threads ->
        let t = create htm ctx ~num_threads ~fenced ~eager_free ~scan_threshold in
        {
          Hqueue.Intf.name = name;
          enqueue = enqueue t;
          dequeue = dequeue t;
          dequeue_drop = (fun ctx -> Option.is_some (dequeue t ctx));
          destroy = destroy t;
        });
  }

let maker = mk_maker "BrokenROP" ~fenced:true ~eager_free:true ~scan_threshold:max_int
let nofence_maker = mk_maker "NoFenceROP" ~fenced:false ~eager_free:false ~scan_threshold:1
