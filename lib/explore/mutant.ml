(* Deliberately broken Michael-Scott + ROP queue: identical to
   [Hqueue.Ms_rop_queue] except that a dequeued node is freed immediately
   instead of being retired until no announcement covers it — the "wait"
   of announcement-based reclamation removed. With the simulator's eager
   LIFO block reuse this is a real use-after-free/ABA bug, reachable only
   when a reader holding the old head is preempted across the dequeuer's
   free, so it doubles as the known-bad specimen the explorer must be able
   to find, shrink and replay. Test-only: not registered in [Hqueue]. *)

let off_val = 0
let off_next = 1
let node_words = 2
let hdr_head = 0
let hdr_tail = 8
let hdr_words = 16
let hazards_per_thread = 2

type t = { htm : Htm.t; hdr : int; hz : int; num_threads : int }

let slot_index t ctx =
  let tid = Sim.tid ctx in
  if tid = Sim.boot_tid then t.num_threads
  else if tid < t.num_threads then tid
  else invalid_arg "Mutant: thread id outside the declared range"

let hazard_addr t ctx i = t.hz + (hazards_per_thread * slot_index t ctx) + i

let fence_cost = 60

let announce t ctx i node =
  Simmem.write (Htm.mem t.htm) ctx (hazard_addr t ctx i) node;
  Sim.tick ctx fence_cost

let clear_announcements t ctx =
  announce t ctx 0 0;
  announce t ctx 1 0

let create htm ctx ~num_threads =
  let mem = Htm.mem htm in
  let hdr = Simmem.malloc mem ctx hdr_words in
  let hz = Simmem.malloc mem ctx (hazards_per_thread * (num_threads + 1)) in
  let sentinel = Simmem.malloc mem ctx node_words in
  Simmem.write mem ctx (hdr + hdr_head) sentinel;
  Simmem.write mem ctx (hdr + hdr_tail) sentinel;
  { htm; hdr; hz; num_threads }

let enqueue t ctx v =
  let mem = Htm.mem t.htm in
  let node = Simmem.malloc mem ctx node_words in
  Simmem.write mem ctx (node + off_val) v;
  let b = Sim.Backoff.create ctx in
  let retry loop =
    Sim.Backoff.once b;
    loop ()
  in
  let rec loop () =
    let tail = Simmem.read mem ctx (t.hdr + hdr_tail) in
    announce t ctx 0 tail;
    if Simmem.read mem ctx (t.hdr + hdr_tail) <> tail then retry loop
    else begin
      let next = Simmem.read mem ctx (tail + off_next) in
      if Simmem.read mem ctx (t.hdr + hdr_tail) <> tail then retry loop
      else if next <> 0 then begin
        let (_ : bool) =
          Simmem.cas mem ctx (t.hdr + hdr_tail) ~expected:tail ~desired:next
        in
        retry loop
      end
      else if Simmem.cas mem ctx (tail + off_next) ~expected:0 ~desired:node then begin
        let (_ : bool) =
          Simmem.cas mem ctx (t.hdr + hdr_tail) ~expected:tail ~desired:node
        in
        ()
      end
      else retry loop
    end
  in
  loop ();
  announce t ctx 0 0

let dequeue t ctx =
  let mem = Htm.mem t.htm in
  let b = Sim.Backoff.create ctx in
  let retry loop =
    Sim.Backoff.once b;
    loop ()
  in
  let rec loop () =
    let head = Simmem.read mem ctx (t.hdr + hdr_head) in
    announce t ctx 0 head;
    if Simmem.read mem ctx (t.hdr + hdr_head) <> head then retry loop
    else begin
      let tail = Simmem.read mem ctx (t.hdr + hdr_tail) in
      let next = Simmem.read mem ctx (head + off_next) in
      announce t ctx 1 next;
      if Simmem.read mem ctx (t.hdr + hdr_head) <> head then retry loop
      else if head = tail then begin
        if next = 0 then None
        else begin
          let (_ : bool) =
            Simmem.cas mem ctx (t.hdr + hdr_tail) ~expected:tail ~desired:next
          in
          retry loop
        end
      end
      else begin
        let v = Simmem.read mem ctx (next + off_val) in
        if Simmem.cas mem ctx (t.hdr + hdr_head) ~expected:head ~desired:next then begin
          (* the bug: no retirement, no scan of announcements *)
          Simmem.free mem ctx head;
          Some v
        end
        else retry loop
      end
    end
  in
  let r = loop () in
  clear_announcements t ctx;
  r

let destroy t ctx =
  let mem = Htm.mem t.htm in
  let rec free_from node =
    if node <> 0 then begin
      let next = Simmem.read mem ctx (node + off_next) in
      Simmem.free mem ctx node;
      free_from next
    end
  in
  free_from (Simmem.read mem ctx (t.hdr + hdr_head));
  Simmem.free mem ctx t.hz;
  Simmem.free mem ctx t.hdr

let maker : Hqueue.Intf.maker =
  {
    queue_name = "BrokenROP";
    reclaims = true;
    make =
      (fun htm ctx ~num_threads ->
        let t = create htm ctx ~num_threads in
        {
          Hqueue.Intf.name = "BrokenROP";
          enqueue = enqueue t;
          dequeue = dequeue t;
          destroy = destroy t;
        });
  }
