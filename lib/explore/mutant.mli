(** The known-bad queue the explorer is validated against: Michael-Scott +
    ROP with the reclamation {e wait} removed — dequeued nodes are freed
    immediately instead of being retired until no announcement covers
    them. Failures manifest as [Simmem.Fault] (use-after-free on a node a
    preempted reader still holds) or as a non-linearizable history (ABA
    through eager block reuse). Test-only: not in the [Hqueue] registry. *)

val maker : Hqueue.Intf.maker
