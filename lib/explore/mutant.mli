(** The known-bad queues the explorer is validated against, each a
    Michael-Scott + ROP variant with one seeded defect. Test-only: neither
    is in the [Hqueue] registry. *)

val maker : Hqueue.Intf.maker
(** BrokenROP: the reclamation {e wait} removed — dequeued nodes are freed
    immediately instead of being retired until no announcement covers
    them. Failures manifest as [Simmem.Fault] (use-after-free on a node a
    preempted reader still holds) or as a non-linearizable history (ABA
    through eager block reuse). Broken under every memory model. *)

val nofence_maker : Hqueue.Intf.maker
(** NoFenceROP: the membar #StoreLoad after each hazard announcement
    dropped; retirement and scanning intact (scan threshold 1 so the bug
    is reachable in small scenarios). Correct under [sc]; under a
    buffered model ([sb]) a reclaimer's scan can miss an announcement
    still sitting in the announcing thread's store buffer and free the
    node it covers — the ordering violation the fence exists to prevent. *)
