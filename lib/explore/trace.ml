type t = {
  limit : int;
  mutable n : int;
  mutable rev : string list;
  mutable dropped : int;
}

let create ?(limit = 4000) () = { limit; n = 0; rev = []; dropped = 0 }

let note t line =
  if t.n >= t.limit then t.dropped <- t.dropped + 1
  else begin
    t.rev <- line :: t.rev;
    t.n <- t.n + 1
  end

let attach_mem t mem =
  Simmem.set_tap mem
    (Some
       (fun (ev : Simmem.access_event) ->
         note t
           (Format.asprintf "t%-2d @%-9d mem  %a" ev.acc_tid ev.acc_clock
              Simmem.pp_access ev.acc)))

let on_fault t (ev : Sim.Fault.event) =
  let what =
    match ev.ev_kind with
    | Sim.Fault.Stalled d -> Printf.sprintf "stalled %d cycles" d
    | Sim.Fault.Killed -> "killed"
    | Sim.Fault.Killed_at p -> "killed at " ^ p
    | Sim.Fault.Spurious_abort -> "spurious abort armed"
  in
  note t (Format.asprintf "t%-2d @%-9d flt  %s" ev.ev_tid ev.ev_clock what)

let attach_htm t h =
  (* With the last-writer journal on, abort events carry a resolved
     conflict witness (aggressor thread, clock, op) — pp_tx_event renders
     it, so counterexample traces name the write that doomed each
     transaction. Free: journalling charges zero virtual cycles. *)
  Simmem.track_writers (Htm.mem h);
  Htm.set_tap h
    (Some
       (fun ~tid ~clock ev ->
         note t (Format.asprintf "t%-2d @%-9d htm  %a" tid clock Htm.pp_tx_event ev)))

let lines t =
  let l = List.rev t.rev in
  if t.dropped = 0 then l
  else
    l
    @ [ Printf.sprintf "(... %d further events beyond the %d-line limit)" t.dropped t.limit ]

let to_string t = String.concat "\n" (lines t)
