(** Pretty-printed interleaving capture.

    A trace is a bounded line buffer fed by the {!Simmem} access tap and
    the {!Htm} transaction tap: one line per completed memory access or
    transaction event, prefixed with the issuing thread and its virtual
    clock. Attach both taps to the run that replays a shrunken failure and
    the resulting lines are the per-thread timeline that goes into the
    artifact file. *)

type t

val create : ?limit:int -> unit -> t
(** Line buffer capped at [limit] (default 4000); further events are
    counted, not stored. *)

val note : t -> string -> unit
(** Append one line (scenario-level annotations, e.g. operation brackets). *)

val attach_mem : t -> Simmem.t -> unit
(** Install this trace as the memory's access tap. *)

val attach_htm : t -> Htm.t -> unit
(** Install this trace as the HTM domain's transaction tap. *)

val on_fault : t -> Sim.Fault.event -> unit
(** Record one injected fault as a trace line; pass as [Sim.run]'s
    [?on_fault] so injections land in the same stream as the accesses
    and transactions they perturb. *)

val lines : t -> string list
(** Captured lines in event order, with a final summary line when events
    were dropped. *)

val to_string : t -> string
