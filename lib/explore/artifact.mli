(** Replayable failure artifacts.

    Everything needed to reproduce a violation deterministically: the
    scenario key and its parameters, the base seed, the (shrunken)
    deviation list, the (possibly dropped) fault plan, the failure
    message, and the pretty-printed interleaving of the final replay. The
    on-disk format is a line-oriented [key=value] header followed by a
    [-- trace --] section; floats are written as hex literals so the fault
    plan round-trips exactly. *)

type t = {
  art_scenario : string;
  art_threads : int;
  art_ops : int;
  art_seed : int;
  art_model : string;
      (** memory-consistency variant name ({!Sim.Memmodel.to_string});
          written only when not ["sc"], so [sc] artifacts stay
          byte-identical with v1 files and v1 files parse as ["sc"] *)
  art_deviations : (int * int) list;
  art_faults : Sim.Fault.spec option;
  art_message : string;
  art_trace : string list;
}

val to_string : t -> string

val of_string : string -> (t, string) result
(** Inverse of {!to_string} (the trace section and comments round-trip). *)

val save : string -> t -> unit
val load : string -> (t, string) result
