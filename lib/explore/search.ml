type violation = {
  vio_artifact : Artifact.t;
  vio_replayed : bool;
  vio_shrink_tests : int;
}

type summary = {
  res_runs : int;
  res_passed : int;
  res_violations : violation list;
}

(* Rounds cycle through the strategy family; round 0 is the plain
   min-clock schedule, so every scenario is sanity-run once before the
   adversarial schedules start. *)
let strategy_for ~round ~seed =
  if round = 0 then Sim.Min_clock
  else
    match (round - 1) mod 4 with
    | 0 -> Sim.Random_walk { rw_seed = seed }
    | 1 -> Sim.Pct { pct_seed = seed; pct_depth = 3; pct_length = 384 }
    | 2 -> Sim.Random_walk { rw_seed = seed lxor 0x9e3779b9 }
    | _ -> Sim.Pct { pct_seed = seed; pct_depth = 4; pct_length = 512 }

(* Kill-free adversity: preemption stalls plus Rock-style spurious aborts.
   Kills are omitted so the same plan is valid for every scenario kind
   (linearizability histories cannot absorb vanished operations). *)
let light_faults seed =
  {
    Sim.Fault.none with
    fault_seed = seed;
    stall_rate = 0.02;
    stall_cycles = 400;
    spurious_abort_rate = 0.02;
  }

let shrink_and_package (scn : Scenario.t) ~seed ~faults ~deviations ~message =
  let replay ~deviations ~faults =
    match
      scn.scn_run ~strategy:(Sim.Deviate deviations) ~seed ~faults ~record:None
        ~trace:None
    with
    | Scenario.Fail _ -> true
    | Scenario.Pass -> false
  in
  let reproduced = replay ~deviations ~faults in
  let shr =
    if reproduced then Shrink.minimize ~replay deviations faults
    else { Shrink.shr_deviations = deviations; shr_faults = faults; shr_tests = 0 }
  in
  let tr = Trace.create () in
  let final =
    scn.scn_run
      ~strategy:(Sim.Deviate shr.shr_deviations)
      ~seed ~faults:shr.shr_faults ~record:None ~trace:(Some tr)
  in
  let message = match final with Scenario.Fail m -> m | Scenario.Pass -> message in
  {
    vio_artifact =
      {
        Artifact.art_scenario = scn.scn_key;
        art_threads = scn.scn_threads;
        art_ops = scn.scn_ops;
        art_seed = seed;
        art_model = Sim.Memmodel.to_string scn.scn_model;
        art_deviations = shr.shr_deviations;
        art_faults = shr.shr_faults;
        art_message = message;
        art_trace = Trace.lines tr;
      };
    vio_replayed = reproduced;
    vio_shrink_tests = shr.shr_tests;
  }

let search ?(offset = 0) ?(base_seed = 1) ?(with_faults = false) ?(max_violations = 3) ?log
    ~budget (scenarios : Scenario.t list) =
  let scenarios = Array.of_list scenarios in
  let ns = Array.length scenarios in
  if ns = 0 then invalid_arg "Search.search: no scenarios";
  let say fmt = Printf.ksprintf (fun s -> match log with Some f -> f s | None -> ()) fmt in
  let violations = ref [] in
  let nvio = ref 0 in
  let passed = ref 0 in
  let runs = ref 0 in
  (try
     for run = offset to offset + budget - 1 do
       let scn = scenarios.(run mod ns) in
       let round = run / ns in
       let seed = base_seed + (run * 7919) in
       let strategy = strategy_for ~round ~seed in
       let faults =
         if with_faults && round > 0 && round mod 2 = 0 then
           Some (light_faults (seed lxor 0x5f3759df))
         else None
       in
       let rec_ = Sim.recorder () in
       incr runs;
       match scn.scn_run ~strategy ~seed ~faults ~record:(Some rec_) ~trace:None with
       | Scenario.Pass -> incr passed
       | Scenario.Fail message ->
         say "violation in %s under %s (seed %d): %s" scn.scn_key
           (Format.asprintf "%a" Sim.pp_strategy strategy)
           seed message;
         let vio =
           shrink_and_package scn ~seed ~faults ~deviations:(Sim.deviations rec_)
             ~message
         in
         say "  shrunk to %d deviations in %d replays%s"
           (List.length vio.vio_artifact.art_deviations)
           vio.vio_shrink_tests
           (if vio.vio_replayed then "" else " (WARNING: did not replay)");
         violations := vio :: !violations;
         incr nvio;
         if !nvio >= max_violations then raise Exit
     done
   with Exit -> ());
  { res_runs = !runs; res_passed = !passed; res_violations = List.rev !violations }

(* Shard the run range [0, budget) contiguously across a domain pool.
   Each shard is the serial [search] over its own range — run indices,
   and so seeds, strategies and fault plans, are exactly the serial
   ones — and the merged summary lists violations in run order, so the
   union of work is independent of [jobs]. Per-shard [max_violations]
   still bounds each shard's shrink work, but a sharded search can
   return up to [jobs * max_violations] violations where the serial one
   stops at [max_violations]. [log] is only attached at jobs = 1:
   domains interleaving progress lines would scramble them. *)
let search_sharded ?(jobs = 1) ?(base_seed = 1) ?(with_faults = false) ?(max_violations = 3)
    ?log ~budget scenarios =
  if jobs <= 1 || budget <= 1 then
    search ~base_seed ~with_faults ~max_violations ?log ~budget scenarios
  else begin
    let jobs = min jobs budget in
    let chunk = (budget + jobs - 1) / jobs in
    let shards =
      List.init jobs (fun k ->
          let lo = k * chunk in
          (lo, min budget (lo + chunk) - lo))
      |> List.filter (fun (_, n) -> n > 0)
    in
    let results =
      Runner.Pool.map ~jobs
        (fun (offset, n) ->
          search ~offset ~base_seed ~with_faults ~max_violations ~budget:n scenarios)
        (Array.of_list shards)
    in
    Array.fold_left
      (fun acc s ->
        {
          res_runs = acc.res_runs + s.res_runs;
          res_passed = acc.res_passed + s.res_passed;
          res_violations = acc.res_violations @ s.res_violations;
        })
      { res_runs = 0; res_passed = 0; res_violations = [] }
      results
  end

let replay_artifact ?trace (a : Artifact.t) =
  match Sim.Memmodel.of_string a.art_model with
  | None -> Error (Printf.sprintf "unknown memory model %S" a.art_model)
  | Some model -> (
    match
      Scenario.build ~key:a.art_scenario ~model ~threads:a.art_threads ~ops:a.art_ops ()
    with
    | Error e -> Error e
    | Ok scn ->
      Ok
        (scn.scn_run
           ~strategy:(Sim.Deviate a.art_deviations)
           ~seed:a.art_seed ~faults:a.art_faults ~record:None ~trace))
