(** Systematic schedule exploration over the deterministic simulator.

    The pieces, bottom-up:

    - {!Lin}: history recording + Wing–Gong linearizability checking for
      the FIFO queues;
    - {!Trace}: pretty-printed interleaving capture off the [Simmem] and
      [Htm] event taps;
    - {!Mutant}: the deliberately broken ROP queues used to validate that
      the explorer actually finds bugs;
    - {!Litmus}: memory-model litmus programs (SB/MP/LB/CoRR) with an
      exhaustive schedule enumerator;
    - {!Scenario}: programs + oracles packaged as pure functions of
      (strategy, seed, fault plan);
    - {!Shrink}: ddmin over deviation lists;
    - {!Artifact}: self-contained, replayable failure files;
    - {!Search}: the driver enumerating schedules and packaging
      violations.

    See [docs/EXPLORATION.md] for the operational story and
    [bin/explore.ml] for the CLI. *)

module Lin = Lin
module Trace = Trace
module Mutant = Mutant
module Litmus = Litmus
module Scenario = Scenario
module Shrink = Shrink
module Artifact = Artifact
module Search = Search
