(** Explorable scenarios: a program plus its correctness oracle, packaged
    so one run is a pure function of (strategy, seed, fault plan).

    Every scenario builds a fresh simulated machine, runs its threads under
    the given strategy, and judges the outcome with its oracle —
    linearizability ({!Lin}) for the queues, the Dynamic Collect
    specification ([Collect_spec]) for the collect algorithms. Escaped
    simulator exceptions (memory faults, watchdog, exhausted transaction
    retries) are converted to {!Fail}, so a use-after-free found by an
    adversarial schedule is a reportable violation, not a crash of the
    explorer. *)

type outcome = Pass | Fail of string

type t = {
  scn_key : string;  (** registry key, e.g. ["queue:MichaelScott+ROP"] *)
  scn_descr : string;
  scn_threads : int;
  scn_ops : int;  (** operations per thread *)
  scn_model : Sim.Memmodel.t;  (** memory-consistency variant the machine runs *)
  scn_run :
    strategy:Sim.strategy ->
    seed:int ->
    faults:Sim.Fault.spec option ->
    record:Sim.recorder option ->
    trace:Trace.t option ->
    outcome;
}

val queue_lin :
  ?key:string ->
  ?htm_config:Htm.config ->
  ?model:Sim.Memmodel.t ->
  Hqueue.Intf.maker ->
  threads:int ->
  ops:int ->
  t
(** Mixed enqueue/dequeue load with every operation recorded into a {!Lin}
    history and checked after the run. Kills are stripped from the fault
    plan (a killed thread's half-performed operation would make the
    history unjudgeable); stalls and spurious aborts pass through.
    [htm_config] selects the transaction machinery — e.g. an [Stm_after]
    policy drives the same oracle through the TL2 software path. [model]
    selects the memory-consistency variant (default [sc]).
    @raise Invalid_argument if [threads * ops > Lin.max_ops]. *)

val racy_counter : ?model:Sim.Memmodel.t -> threads:int -> ops:int -> unit -> t
(** Unsynchronised counter whose threads increment in disjoint
    virtual-time windows: passes under [Min_clock], fails under schedules
    that reorder across windows — the seeded known-bad specimen the
    explorer's own tests calibrate against. *)

val collect_spec :
  ?key:string ->
  ?htm_config:Htm.config ->
  ?model:Sim.Memmodel.t ->
  Collect.Intf.maker ->
  threads:int ->
  ops:int ->
  t
(** Register/update/collect/deregister load checked against the Dynamic
    Collect specification. Kill-carrying fault plans are allowed
    ([Collect_spec] is crash-aware); [destroy] is skipped for them. *)

val queues : ?model:Sim.Memmodel.t -> threads:int -> ops:int -> unit -> t list
(** {!queue_lin} over [Hqueue.all_with_extensions]. *)

val collects : ?model:Sim.Memmodel.t -> threads:int -> ops:int -> unit -> t list
(** {!collect_spec} over [Collect.all_with_extensions]. *)

val build :
  key:string ->
  ?model:Sim.Memmodel.t ->
  threads:int ->
  ops:int ->
  unit ->
  (t, string) result
(** Resolve a registry key: ["queue:NAME"], ["collect:NAME"], ["racy"],
    ["broken-rop"] (the {!Mutant} queue), ["ms-nofence"] (the
    StoreLoad-fence-dropping mutant — correct under [sc], unsafe under a
    buffered [model]), ["htm-memorder"] (the HTM queue, for checking
    strong atomicity under every variant), or the STM-forced variants
    ["stm-queue"] / ["stm-collect"], which run the HTM queue and
    ListFastCollect entirely on the {!Stm} software path ([Stm_after 0]).
    [model] applies to every scenario; it is not baked into the key. *)
