(* Classic memory-model litmus tests over the raw [Simmem] plane, with an
   exhaustive schedule enumerator built on the recorder's choice log.

   A litmus program is a tiny fixed thread set over one or two shared
   locations whose final register values separate memory models: the
   outcome set reachable under exhaustive scheduling is the model's
   fingerprint (SB distinguishes TSO from SC, MP checks FIFO drain order,
   LB and CoRR must be forbidden everywhere on a machine that only delays
   stores). test/test_memorder.ml pins the golden sets per variant. *)

type outcome = int list

module Outcomes = Set.Make (struct
  type t = outcome

  let compare = compare
end)

type program = {
  prog_name : string;
  (* Fresh machine + bodies + readback for one run. Rebuilt per schedule:
     runs must not share state. *)
  prog_setup : model:Sim.Memmodel.t -> (Sim.tctx -> unit) array * (unit -> outcome);
}

exception Budget_exceeded of int

(* Exhaustively enumerate every schedule of a program under a model by DFS
   over deviation prefixes. Each run is recorded; at every counted
   decision at or past the current depth, every runnable alternative to
   the chosen thread spawns a child run whose [Deviate] list is the
   parent's prefix plus that one forced pick. Sharing the prefix
   guarantees the child reaches the same machine state (and so the same
   runnable mask) at the branch index, so each schedule is visited exactly
   once: the tree of (prefix, alternative) choices is exactly the tree of
   schedules. *)
let enumerate ?(budget = 20_000) ~model prog =
  let outcomes = ref Outcomes.empty in
  let runs = ref 0 in
  let run devs =
    if !runs >= budget then raise (Budget_exceeded budget);
    incr runs;
    let r = Sim.recorder () in
    let bodies, readback = prog.prog_setup ~model in
    Sim.run ~seed:0 ~strategy:(Sim.Deviate devs) ~record:r bodies;
    outcomes := Outcomes.add (readback ()) !outcomes;
    Sim.choices r
  in
  let rec explore devs depth =
    let chs = run devs in
    List.iter
      (fun (k, mask, chosen) ->
        if k >= depth then begin
          let rest = ref (mask land lnot (1 lsl chosen)) in
          let tid = ref 0 in
          while !rest <> 0 do
            if !rest land 1 <> 0 then explore (devs @ [ (k, !tid) ]) (k + 1);
            rest := !rest lsr 1;
            incr tid
          done
        end)
      chs
  in
  match explore [] 0 with
  | () -> Ok (Outcomes.elements !outcomes)
  | exception Budget_exceeded b ->
    Error (Printf.sprintf "%s: schedule budget %d exceeded" prog.prog_name b)

(* Allocate a fresh location on its own cache line so litmus outcomes are
   a pure ordering question, never a false-sharing artifact. *)
let fresh_loc mem boot = Simmem.malloc mem boot 8

let two_thread name body0 body1 nregs =
  {
    prog_name = name;
    prog_setup =
      (fun ~model ->
        let mem = Simmem.create ~model () in
        let boot = Sim.boot () in
        let x = fresh_loc mem boot and y = fresh_loc mem boot in
        let regs = Array.make nregs (-1) in
        ( [| (fun ctx -> body0 mem ctx ~x ~y ~regs);
             (fun ctx -> body1 mem ctx ~x ~y ~regs) |],
          fun () -> Array.to_list regs ));
  }

(* SB (store buffering): T0: x:=1; r0:=y   T1: y:=1; r1:=x.
   (0,0) — both loads missing both stores — requires each store to hide
   in its thread's buffer past the other's load: reachable iff stores are
   buffered, forbidden under sc. *)
let sb =
  two_thread "SB"
    (fun mem ctx ~x ~y ~regs ->
      Simmem.write mem ctx x 1;
      regs.(0) <- Simmem.read mem ctx y)
    (fun mem ctx ~x ~y ~regs ->
      Simmem.write mem ctx y 1;
      regs.(1) <- Simmem.read mem ctx x)
    2

(* SB with a fence between each store and load: the TSO repair. (0,0)
   becomes forbidden again — except under sb-fence-nop, whose fences
   drain nothing (the control that proves the harness actually tests
   fence semantics, not accidental timing). *)
let sb_fenced =
  two_thread "SB+fence"
    (fun mem ctx ~x ~y ~regs ->
      Simmem.write mem ctx x 1;
      Sim.fence ctx;
      regs.(0) <- Simmem.read mem ctx y)
    (fun mem ctx ~x ~y ~regs ->
      Simmem.write mem ctx y 1;
      Sim.fence ctx;
      regs.(1) <- Simmem.read mem ctx x)
    2

(* MP (message passing): T0: x:=1; y:=1   T1: r0:=y; r1:=x.
   The forbidden outcome (r0,r1)=(1,0) — flag visible before payload —
   needs the two stores to drain out of order. A FIFO buffer never
   reorders stores, so MP is forbidden under every variant here. *)
let mp =
  two_thread "MP"
    (fun mem ctx ~x ~y ~regs:_ ->
      Simmem.write mem ctx x 1;
      Simmem.write mem ctx y 1)
    (fun mem ctx ~x ~y ~regs ->
      regs.(0) <- Simmem.read mem ctx y;
      regs.(1) <- Simmem.read mem ctx x)
    2

(* LB (load buffering): T0: r0:=x; y:=1   T1: r1:=y; x:=1.
   (1,1) needs loads to move after program-order-later stores; a store
   buffer only delays stores, so it is forbidden under every variant. *)
let lb =
  two_thread "LB"
    (fun mem ctx ~x ~y ~regs ->
      regs.(0) <- Simmem.read mem ctx x;
      Simmem.write mem ctx y 1)
    (fun mem ctx ~x ~y ~regs ->
      regs.(1) <- Simmem.read mem ctx y;
      Simmem.write mem ctx x 1)
    2

(* CoRR (coherence of read-read): T0: x:=1   T1: r0:=x; r1:=x.
   New-then-old ((1,0)) would violate per-location coherence; forbidden
   under every variant. *)
let corr =
  two_thread "CoRR"
    (fun mem ctx ~x ~y:_ ~regs:_ -> Simmem.write mem ctx x 1)
    (fun mem ctx ~x ~y:_ ~regs ->
      regs.(0) <- Simmem.read mem ctx x;
      regs.(1) <- Simmem.read mem ctx x)
    2

(* RoW (read own write): one thread, x:=1; r0:=x. Forwarding models (and
   sc, where the store is already visible) read 1; sb-bypass — buffering
   without store-to-load forwarding — reads the stale 0 from memory. *)
let row =
  {
    prog_name = "RoW";
    prog_setup =
      (fun ~model ->
        let mem = Simmem.create ~model () in
        let boot = Sim.boot () in
        let x = fresh_loc mem boot in
        let regs = Array.make 1 (-1) in
        ( [|
            (fun ctx ->
              Simmem.write mem ctx x 1;
              regs.(0) <- Simmem.read mem ctx x);
          |],
          fun () -> Array.to_list regs ));
  }

let all = [ sb; sb_fenced; mp; lb; corr; row ]

(* Remote-free drain (the arena allocator's cross-thread path): T0 owns
   the arena, T1 frees T0's block remotely, T0 re-mallocs — draining the
   remote-free ring — and writes the new life's value. Enumerated over
   every schedule (and, by the caller, every memory model), the reused
   word must hold exactly the new value at quiescence: no store from the
   old life may land on top, no drain may tear it, and no schedule may
   fault. Readback is {!Simmem.peek} after the run, so the check is about
   the allocator's integrity, not store-to-load forwarding semantics.

   Deliberately NOT in {!all}: the golden outcome tables in
   test/test_memorder.ml pin [all]'s cells, and this program's outcome
   also reports whether the schedule actually reached the reuse (second
   register), which is a coverage fact rather than a model fingerprint. *)
let remote_reuse =
  {
    prog_name = "RemoteReuse";
    prog_setup =
      (fun ~model ->
        let mem = Simmem.create ~model ~alloc:(Simmem.Arena Simmem.Line_packed) () in
        let boot = Sim.boot () in
        let slot = fresh_loc mem boot in
        let a = ref 0 and b = ref 0 in
        let owner ctx =
          let x = Simmem.malloc mem ctx 1 in
          a := x;
          Simmem.write mem ctx x 7;
          Simmem.write mem ctx slot x;
          (* The re-malloc drains whatever the remote ring holds by now:
             depending on the schedule this reuses [x] or carves fresh. *)
          let y = Simmem.malloc mem ctx 1 in
          b := y;
          Simmem.write mem ctx y 42
        in
        let freer ctx =
          let p = Simmem.read mem ctx slot in
          if p <> 0 then Simmem.free mem ctx p
        in
        ( [| owner; freer |],
          fun () -> [ Simmem.peek mem !b; (if !b = !a then 1 else 0) ] ));
  }
