(** Failing-schedule minimisation.

    A recorded failure is a deviation list (see [Sim.Deviate]) plus an
    optional fault plan. {!minimize} first tries dropping the fault plan
    and the whole deviation list, then runs ddmin (delta debugging) over
    the deviations, re-replaying the scenario at every step. The result is
    a 1-minimal-ish still-failing trace — typically a handful of forced
    scheduling decisions, which is what makes artifacts readable. *)

type result = {
  shr_deviations : (int * int) list;
  shr_faults : Sim.Fault.spec option;
  shr_tests : int;  (** replays spent *)
}

val minimize :
  ?max_tests:int ->
  replay:(deviations:(int * int) list -> faults:Sim.Fault.spec option -> bool) ->
  (int * int) list ->
  Sim.Fault.spec option ->
  result
(** [minimize ~replay devs faults] shrinks a failing configuration.
    [replay] must return [true] iff the scenario {e still fails} with the
    given deviations and faults; it is called at most [max_tests]
    (default 1200) times. *)
