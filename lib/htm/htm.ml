module Adapt = Adapt

type abort_reason = Conflict | Overflow | Illegal | Explicit | Lock_held | Spurious

let abort_label = function
  | Conflict -> "conflict"
  | Overflow -> "overflow"
  | Illegal -> "illegal"
  | Explicit -> "explicit"
  | Lock_held -> "lock-held"
  | Spurious -> "spurious"

let pp_abort_reason ppf r = Format.pp_print_string ppf (abort_label r)

type tle_mode = Tle_never | Tle_after of int
type stm_mode = Stm_never | Stm_after of int

(* Conflict-detection granularity of the hardware path. [Word] is the
   historical idealized detector (per-word versions — no false sharing,
   and what every committed baseline was generated under). [Line]
   validates the read set against {!Simmem}'s per-line versions, the way
   real HTMs (Rock, TSX) snoop whole cache lines: any committed store to
   a line the transaction read dooms it, including stores to *other
   words* of that line — the false-sharing abort channel the placement
   ablation measures. *)
type granularity = Word | Line

type config = {
  store_buffer : int;
  tx_begin_cost : int;
  tx_commit_cost : int;
  tx_store_cost : int;
  tx_abort_cost : int;
  backoff_base : int;
  backoff_max : int;
  sandboxed : bool;
  granularity : granularity;
  tle : tle_mode;
  stm : stm_mode;
  stm_attempts : int;
  stm_config : Stm.config;
  max_attempts : int;
}

let default_config =
  {
    store_buffer = 32;
    tx_begin_cost = 25;
    tx_commit_cost = 35;
    (* Store-buffer insertion is pipelined and effectively free on Rock;
       the cost here models the per-element loop work of a telescoped scan;
       the 32-entry capacity is the constraint that matters for sizing. *)
    tx_store_cost = 0;
    tx_abort_cost = 100;
    backoff_base = 60;
    backoff_max = 16384;
    sandboxed = true;
    granularity = Word;
    tle = Tle_never;
    stm = Stm_never;
    stm_attempts = 0;
    stm_config = Stm.default_config;
    max_attempts = 0;
  }

let hybrid_config =
  {
    default_config with
    stm = Stm_after 2;
    stm_attempts = 8;
    (* With an STM policy installed the TLE count is ignored: the lock is
       reachable only through STM budget exhaustion, so [Tle_after 0] just
       means "last resort enabled". *)
    tle = Tle_after 0;
  }

type tx_path = P_hw | P_stm | P_tle

let path_label = function P_hw -> "hw" | P_stm -> "stm" | P_tle -> "tle"

type stats = {
  commits : int;
  aborts_conflict : int;
  aborts_overflow : int;
  aborts_illegal : int;
  aborts_explicit : int;
  aborts_lock : int;
  aborts_spurious : int;
  lock_fallbacks : int;
  max_consecutive_aborts : int;
  attempts_hw : int;
  attempts_stm : int;
  attempts_tle : int;
  escalations_stm : int;
  stm_commits : int;
  stm_aborts : int;
  stm_steals : int;
}

type tx_event =
  | Tx_commit of { tx_reads : int; tx_writes : int; tx_path : tx_path; tx_attempt : int }
  | Tx_abort of {
      ab_reason : abort_reason;
      ab_path : tx_path;
      ab_attempt : int;
      ab_witness : Obs.Forensics.witness option;
    }
  | Tx_fallback
  | Tx_escalate of { esc_to : tx_path; esc_attempt : int }
  | Tx_steal of { st_victim : int }

let pp_tx_event ppf = function
  | Tx_commit { tx_reads; tx_writes; tx_path; tx_attempt } ->
    Format.fprintf ppf "commit[%s] (%d reads, %d writes, attempt %d)"
      (path_label tx_path) tx_reads tx_writes tx_attempt
  | Tx_abort { ab_reason; ab_path; ab_attempt; ab_witness } ->
    Format.fprintf ppf "abort[%s]: %a (attempt %d)" (path_label ab_path)
      pp_abort_reason ab_reason ab_attempt;
    (match ab_witness with
     | None -> ()
     | Some w -> Format.fprintf ppf " [%a]" Obs.Forensics.pp_witness w)
  | Tx_fallback -> Format.pp_print_string ppf "TLE lock fallback"
  | Tx_escalate { esc_to; esc_attempt } ->
    Format.fprintf ppf "escalate to %s (attempt %d)" (path_label esc_to) esc_attempt
  | Tx_steal { st_victim } -> Format.fprintf ppf "stm lock stolen from t%d" st_victim

(* Stats live in the metrics registry. The [stats] record type survives as
   a read-only snapshot assembled from the handles, so per-run consumers
   ([Workload] measures deltas by [reset_stats] between phases) keep exact
   local numbers while a parent registry accumulates fleet-wide totals. *)
type t = {
  hmem : Simmem.t;
  cfg : config;
  (* Pooled per-thread transaction descriptors (see [get_tx]). *)
  pool : tx option array;
  mreg : Obs.Metrics.t;
  c_commits : Obs.Metrics.counter;
  c_conflict : Obs.Metrics.counter;
  c_overflow : Obs.Metrics.counter;
  c_illegal : Obs.Metrics.counter;
  c_explicit : Obs.Metrics.counter;
  c_lock : Obs.Metrics.counter;
  c_spurious : Obs.Metrics.counter;
  c_fallbacks : Obs.Metrics.counter;
  c_cycles : Obs.Metrics.counter;
  c_att_hw : Obs.Metrics.counter;
  c_att_stm : Obs.Metrics.counter;
  c_att_tle : Obs.Metrics.counter;
  c_esc_stm : Obs.Metrics.counter;
  g_consec : Obs.Metrics.gauge;
  h_commit : Obs.Metrics.hist;
  h_stores : Obs.Metrics.hist;
  lock_addr : int;
  stm : Stm.t option;
  mutable tap : (tid:int -> clock:int -> tx_event -> unit) option;
}

and mode = Hw | Sw of Stm.tx | Locked

and tx = {
  h : t;
  mutable ctx : Sim.tctx;
  mutable busy : bool; (* bound to a running [atomic]; nesting gets a fresh tx *)
  mutable mode : mode;
  mutable attempt : int;
  mutable raddr : int array;
  mutable rver : int array;
  mutable nreads : int;
  mutable waddr : int array;
  mutable wval : int array;
  mutable nwrites : int;
  mutable nstores : int;
  mutable frees : int array;
  mutable nfrees : int;
  mutable witness : Obs.Forensics.witness option;
      (* set at the capture site of the conflict that will abort this
         attempt; consumed (and cleared) by the abort handler *)
  mutable last_w : Obs.Forensics.witness option;
      (* witness of the most recent hardware abort, threaded into the
         escalation hop that it drives *)
}

exception Aborted of abort_reason
exception Retry_exhausted of abort_reason

let of_stm_reason = function
  | Stm.Conflict -> Conflict
  | Stm.Locked -> Lock_held
  | Stm.Illegal -> Illegal
  | Stm.Explicit -> Explicit

let create ?(config = default_config) ?metrics mem =
  (* The TLE lock gets its own cache line so lock traffic does not
     false-share with application data. *)
  let boot = Sim.boot () in
  let lock_addr = Simmem.malloc mem boot 8 in
  Simmem.label mem ~name:"Htm.tle_lock" ~base:lock_addr ~words:8;
  (* The STM side table is only allocated when a policy can reach it, so
     default-configured machines keep their exact heap layout (and hence
     their committed benchmark baselines) bit-for-bit. *)
  let stm =
    match config.stm with
    | Stm_never -> None
    | Stm_after _ ->
      let s = Stm.create ~config:config.stm_config ?metrics mem in
      Stm.set_fence s lock_addr;
      Some s
  in
  let mreg = Obs.Metrics.create ?parent:metrics () in
  let h =
    {
      hmem = mem;
      cfg = config;
      pool = Array.make (Sim.max_threads + 1) None;
      mreg;
      c_commits = Obs.Metrics.counter ~per_thread:true mreg "htm.commits";
      c_conflict = Obs.Metrics.counter ~per_thread:true mreg "htm.aborts.conflict";
      c_overflow = Obs.Metrics.counter ~per_thread:true mreg "htm.aborts.overflow";
      c_illegal = Obs.Metrics.counter ~per_thread:true mreg "htm.aborts.illegal";
      c_explicit = Obs.Metrics.counter ~per_thread:true mreg "htm.aborts.explicit";
      c_lock = Obs.Metrics.counter ~per_thread:true mreg "htm.aborts.lock_held";
      c_spurious = Obs.Metrics.counter ~per_thread:true mreg "htm.aborts.spurious";
      c_fallbacks = Obs.Metrics.counter mreg "htm.fallbacks";
      c_cycles = Obs.Metrics.counter mreg "htm.commit_cycles_total";
      c_att_hw = Obs.Metrics.counter ~per_thread:true mreg "htm.attempts.hw";
      c_att_stm = Obs.Metrics.counter ~per_thread:true mreg "htm.attempts.stm";
      c_att_tle = Obs.Metrics.counter ~per_thread:true mreg "htm.attempts.tle";
      c_esc_stm = Obs.Metrics.counter mreg "htm.escalations.stm";
      g_consec = Obs.Metrics.gauge mreg "htm.max_consecutive_aborts";
      h_commit = Obs.Metrics.hist mreg "htm.commit_cycles";
      h_stores = Obs.Metrics.hist mreg "htm.stores_per_tx";
      lock_addr;
      stm;
      tap = None;
    }
  in
  (* Forward STM transaction events into this domain's tap, path-tagged,
     so one stream carries the whole escalation story. *)
  (match stm with
   | None -> ()
   | Some s ->
     Stm.set_tap s
       (Some
          (fun ~tid ~clock ev ->
            match h.tap with
            | None -> ()
            | Some f ->
              f ~tid ~clock
                (match ev with
                 | Stm.Ev_commit { ev_reads; ev_writes; ev_attempt } ->
                   Tx_commit
                     {
                       tx_reads = ev_reads;
                       tx_writes = ev_writes;
                       tx_path = P_stm;
                       tx_attempt = ev_attempt;
                     }
                 | Stm.Ev_abort { ev_reason; ev_attempt; ev_witness } ->
                   Tx_abort
                     {
                       ab_reason = of_stm_reason ev_reason;
                       ab_path = P_stm;
                       ab_attempt = ev_attempt;
                       ab_witness = ev_witness;
                     }
                 | Stm.Ev_steal { ev_victim } -> Tx_steal { st_victim = ev_victim }))));
  h

let mem t = t.hmem
let config t = t.cfg
let metrics t = t.mreg
let stm t = t.stm
let set_tap t f = t.tap <- f

let emit t ctx ev =
  match t.tap with
  | None -> ()
  | Some f -> f ~tid:(Sim.tid ctx) ~clock:(Sim.clock ctx) ev

let stats t =
  let s_stats = Option.map Stm.stats t.stm in
  {
    commits = Obs.Metrics.value t.c_commits;
    aborts_conflict = Obs.Metrics.value t.c_conflict;
    aborts_overflow = Obs.Metrics.value t.c_overflow;
    aborts_illegal = Obs.Metrics.value t.c_illegal;
    aborts_explicit = Obs.Metrics.value t.c_explicit;
    aborts_lock = Obs.Metrics.value t.c_lock;
    aborts_spurious = Obs.Metrics.value t.c_spurious;
    lock_fallbacks = Obs.Metrics.value t.c_fallbacks;
    max_consecutive_aborts = Obs.Metrics.gauge_max t.g_consec;
    attempts_hw = Obs.Metrics.value t.c_att_hw;
    attempts_stm = Obs.Metrics.value t.c_att_stm;
    attempts_tle = Obs.Metrics.value t.c_att_tle;
    escalations_stm = Obs.Metrics.value t.c_esc_stm;
    stm_commits = (match s_stats with None -> 0 | Some s -> s.Stm.commits);
    stm_aborts =
      (match s_stats with
       | None -> 0
       | Some s ->
         s.Stm.aborts_conflict + s.Stm.aborts_locked + s.Stm.aborts_illegal
         + s.Stm.aborts_explicit);
    stm_steals = (match s_stats with None -> 0 | Some s -> s.Stm.steals);
  }

let reset_stats t =
  Obs.Metrics.reset_counter t.c_commits;
  Obs.Metrics.reset_counter t.c_conflict;
  Obs.Metrics.reset_counter t.c_overflow;
  Obs.Metrics.reset_counter t.c_illegal;
  Obs.Metrics.reset_counter t.c_explicit;
  Obs.Metrics.reset_counter t.c_lock;
  Obs.Metrics.reset_counter t.c_spurious;
  Obs.Metrics.reset_counter t.c_fallbacks;
  Obs.Metrics.reset_counter t.c_cycles;
  Obs.Metrics.reset_counter t.c_att_hw;
  Obs.Metrics.reset_counter t.c_att_stm;
  Obs.Metrics.reset_counter t.c_att_tle;
  Obs.Metrics.reset_counter t.c_esc_stm;
  Obs.Metrics.reset_gauge t.g_consec;
  Obs.Metrics.reset_hist t.h_commit;
  Obs.Metrics.reset_hist t.h_stores;
  Option.iter Stm.reset_stats t.stm

let commit_cycles_histogram t = Obs.Metrics.buckets t.h_commit

let attempt_number tx = tx.attempt
let in_fallback tx = match tx.mode with Locked -> true | Hw | Sw _ -> false
let tx_tid tx = Sim.tid tx.ctx

let reset_tx tx mode attempt =
  tx.mode <- mode;
  tx.attempt <- attempt;
  tx.nreads <- 0;
  tx.nwrites <- 0;
  tx.nstores <- 0;
  tx.nfrees <- 0;
  tx.witness <- None

let fresh_tx h ctx =
  {
    h;
    ctx;
    busy = false;
    mode = Hw;
    attempt = 0;
    raddr = Array.make 64 0;
    rver = Array.make 64 0;
    nreads = 0;
    waddr = Array.make 32 0;
    wval = Array.make 32 0;
    nwrites = 0;
    nstores = 0;
    frees = Array.make 16 0;
    nfrees = 0;
    witness = None;
    last_w = None;
  }

(* Per-(domain, thread) transaction descriptors are pooled: the first
   [atomic] on a thread allocates one, every later call reuses it — the
   read/write/free sets are preallocated arrays that only grow. A nested
   [atomic] (pool slot busy) falls back to a fresh descriptor. *)
let get_tx h ctx =
  let tid = Sim.tid ctx in
  match h.pool.(tid) with
  | Some tx when not tx.busy ->
    tx.ctx <- ctx;
    tx
  | Some _ -> fresh_tx h ctx
  | None ->
    let tx = fresh_tx h ctx in
    h.pool.(tid) <- Some tx;
    tx

(* Read-set validation. Under [Word] the noted versions are word
   versions; under [Line] they are the covering line's versions, so a
   committed store anywhere on a read line fails the check. The
   transaction's own writes are buffered until after commit validation
   and so can never doom it on either plane. *)
let validate_reads tx =
  let mem = tx.h.hmem in
  let ok = ref true in
  (match tx.h.cfg.granularity with
   | Word ->
     for i = 0 to tx.nreads - 1 do
       if not (Simmem.Tx_plane.validate mem tx.raddr.(i) tx.rver.(i)) then
         ok := false
     done
   | Line ->
     for i = 0 to tx.nreads - 1 do
       if Simmem.line_version mem (Simmem.line_of tx.raddr.(i)) <> tx.rver.(i)
       then ok := false
     done);
  !ok

(* The version to note for a read of [addr]: the word's version (already
   in hand) or its line's, per the configured granularity. *)
let noted_ver tx addr ver =
  match tx.h.cfg.granularity with
  | Word -> ver
  | Line -> Simmem.line_version tx.h.hmem (Simmem.line_of addr)

let grow_reads tx =
  let n = Array.length tx.raddr in
  let raddr = Array.make (2 * n) 0 and rver = Array.make (2 * n) 0 in
  Array.blit tx.raddr 0 raddr 0 n;
  Array.blit tx.rver 0 rver 0 n;
  tx.raddr <- raddr;
  tx.rver <- rver

let note_read tx addr ver =
  let known = ref false and i = ref 0 in
  while (not !known) && !i < tx.nreads do
    if tx.raddr.(!i) = addr then known := true else incr i
  done;
  if not !known then begin
    if tx.nreads = Array.length tx.raddr then grow_reads tx;
    tx.raddr.(tx.nreads) <- addr;
    tx.rver.(tx.nreads) <- ver;
    tx.nreads <- tx.nreads + 1
  end

(* Newest write-buffer slot holding [addr], or -1. *)
let find_buffered_idx tx addr =
  let found = ref (-1) and i = ref (tx.nwrites - 1) in
  while !found < 0 && !i >= 0 do
    if tx.waddr.(!i) = addr then found := !i else decr i
  done;
  !found

(* Conflict forensics: the address whose version check failed — scanned
   only on the (already doomed) abort path, never on success. Under
   [Line] granularity the reported address is the word this transaction
   read on the doomed line; the aggressor may have written a different
   word of it (false sharing), in which case journal attribution can be
   stale — the line index in the witness is authoritative. *)
let first_invalid tx =
  let mem = tx.h.hmem in
  let found = ref (-1) and i = ref 0 in
  (match tx.h.cfg.granularity with
   | Word ->
     while !found < 0 && !i < tx.nreads do
       if not (Simmem.Tx_plane.validate mem tx.raddr.(!i) tx.rver.(!i)) then
         found := tx.raddr.(!i)
       else incr i
     done
   | Line ->
     while !found < 0 && !i < tx.nreads do
       if Simmem.line_version mem (Simmem.line_of tx.raddr.(!i)) <> tx.rver.(!i)
       then found := tx.raddr.(!i)
       else incr i
     done);
  !found

let capture_conflict tx site =
  let addr = first_invalid tx in
  if addr >= 0 then begin
    let wrote = find_buffered_idx tx addr >= 0 in
    tx.witness <-
      Some
        (Simmem.conflict_witness tx.h.hmem tx.ctx ~addr ~victim_wrote:wrote
           ~in_read_set:true ~in_write_set:wrote ~site ())
  end

let illegal tx addr =
  if tx.h.cfg.sandboxed then raise (Aborted Illegal)
  else raise (Simmem.Fault (Simmem.Use_after_free addr))

let read tx addr =
  match tx.mode with
  | Locked -> Simmem.read tx.h.hmem tx.ctx addr
  | Sw stx -> Stm.read stx addr
  | Hw ->
    let bi = find_buffered_idx tx addr in
    if bi >= 0 then tx.wval.(bi)
    else begin
      let mem = tx.h.hmem in
      let ver = Simmem.Tx_plane.read_ver mem tx.ctx addr in
      if ver < 0 then illegal tx addr
      else begin
        let v = Simmem.Tx_plane.read_value mem in
        note_read tx addr (noted_ver tx addr ver);
        if not (validate_reads tx) then begin
          capture_conflict tx "htm.read";
          raise (Aborted Conflict)
        end;
        v
      end
    end

let consume_store_slot tx =
  tx.nstores <- tx.nstores + 1;
  if tx.nstores > tx.h.cfg.store_buffer then raise (Aborted Overflow);
  Sim.tick tx.ctx tx.h.cfg.tx_store_cost

let write tx addr v =
  match tx.mode with
  | Locked -> Simmem.write tx.h.hmem tx.ctx addr v
  | Sw stx -> Stm.write stx addr v
  | Hw ->
    if not (Simmem.is_allocated tx.h.hmem addr) then illegal tx addr;
    consume_store_slot tx;
    if tx.nwrites = Array.length tx.waddr then begin
      let n = Array.length tx.waddr in
      let waddr = Array.make (2 * n) 0 and wval = Array.make (2 * n) 0 in
      Array.blit tx.waddr 0 waddr 0 n;
      Array.blit tx.wval 0 wval 0 n;
      tx.waddr <- waddr;
      tx.wval <- wval
    end;
    tx.waddr.(tx.nwrites) <- addr;
    tx.wval.(tx.nwrites) <- v;
    tx.nwrites <- tx.nwrites + 1

let record tx =
  match tx.mode with
  | Locked -> Sim.tick tx.ctx tx.h.cfg.tx_store_cost
  | Sw stx -> Stm.record stx
  | Hw -> consume_store_slot tx

let abort tx =
  match tx.mode with
  | Hw -> raise (Aborted Explicit)
  | Sw stx -> Stm.abort stx
  | Locked -> invalid_arg "Htm.abort: cannot abort under the TLE lock"

let defer_free tx base =
  match tx.mode with
  | Sw stx -> Stm.defer_free stx base
  | Hw | Locked ->
    if tx.nfrees = Array.length tx.frees then begin
      let n = Array.length tx.frees in
      let frees = Array.make (2 * n) 0 in
      Array.blit tx.frees 0 frees 0 n;
      tx.frees <- frees
    end;
    tx.frees.(tx.nfrees) <- base;
    tx.nfrees <- tx.nfrees + 1

(* Commit: validate, then apply the write buffer without yielding so the
   transaction is atomic in virtual time. *)
let commit tx =
  let mem = tx.h.hmem in
  if not (validate_reads tx) then begin
    capture_conflict tx "htm.commit";
    raise (Aborted Conflict)
  end;
  for i = 0 to tx.nwrites - 1 do
    if not (Simmem.is_allocated mem tx.waddr.(i)) then illegal tx tx.waddr.(i)
  done;
  Sim.charge tx.ctx tx.h.cfg.tx_commit_cost;
  for i = 0 to tx.nwrites - 1 do
    let ok = Simmem.Tx_plane.commit_write mem tx.ctx tx.waddr.(i) tx.wval.(i) in
    assert ok
  done;
  Sim.tick tx.ctx 0

let run_frees tx =
  for i = 0 to tx.nfrees - 1 do
    Simmem.free tx.h.hmem tx.ctx tx.frees.(i)
  done;
  tx.nfrees <- 0

let count_abort h ~tid = function
  | Conflict -> Obs.Metrics.incr_t h.c_conflict tid
  | Overflow -> Obs.Metrics.incr_t h.c_overflow tid
  | Illegal -> Obs.Metrics.incr_t h.c_illegal tid
  | Explicit -> Obs.Metrics.incr_t h.c_explicit tid
  | Lock_held -> Obs.Metrics.incr_t h.c_lock tid
  | Spurious -> Obs.Metrics.incr_t h.c_spurious tid

let backoff h ctx n =
  Sim.tick ctx
    (Sim.Backoff.delay ~base:h.cfg.backoff_base ~cap:h.cfg.backoff_max (Sim.rng ctx) n)

let acquire_lock h ctx =
  let rec spin n =
    if not (Simmem.cas h.hmem ctx h.lock_addr ~expected:0 ~desired:1) then begin
      backoff h ctx n;
      spin (min (n + 1) 6)
    end
  in
  spin 0

(* Lock release is a store with release semantics: every critical-section
   store must be globally visible before the lock word clears, or a
   hardware transaction could observe the lock free while the section's
   stores still sit in the releaser's buffer. [fenced_write] is exactly
   [Simmem.write] under the [sc] model. *)
let release_lock h ctx = Simmem.fenced_write h.hmem ctx h.lock_addr 0

let run_locked h ctx tx attempt f =
  acquire_lock h ctx;
  Obs.Metrics.incr1 h.c_fallbacks;
  Obs.Metrics.incr_t h.c_att_tle (Sim.tid ctx);
  emit h ctx Tx_fallback;
  let t_lock = Sim.clock ctx in
  (match Sim.tracer ctx with
   | None -> ()
   | Some sink ->
     Obs.Tracer.instant sink ~tid:(Sim.tid ctx) ~name:"tle.fallback" ~cat:"tx"
       ~args:[ ("attempt", Obs.Json.Int attempt) ]
       t_lock);
  reset_tx tx Locked attempt;
  (* Crash safety: the lock must be released on every exit path — including
     an injected kill raising [Stop_thread] out of the block — and the
     release itself must not be interruptible, or one dead thread wedges
     every future transaction. [Sim.shield] models a robust-futex-style
     release whose completion the OS guarantees. *)
  let released = ref false in
  let release () =
    if not !released then begin
      released := true;
      Sim.shield ctx (fun () -> release_lock h ctx);
      match Sim.tracer ctx with
      | None -> ()
      | Some sink ->
        Obs.Tracer.span sink ~tid:(Sim.tid ctx) ~name:"tx.locked" ~cat:"tx"
          ~args:[ ("attempt", Obs.Json.Int attempt) ]
          t_lock (Sim.clock ctx)
    end
  in
  Fun.protect ~finally:release (fun () ->
      let v = f tx in
      release ();
      run_frees tx;
      emit h ctx
        (Tx_commit { tx_reads = 0; tx_writes = 0; tx_path = P_tle; tx_attempt = attempt });
      v)

(* The software slow path: run the block as an STM transaction (same [tx]
   surface, [Sw] mode), with the configured attempt budget. If the budget
   runs dry and TLE is enabled, the lock is the last resort. *)
let run_stm h s ctx tx n ~last ~lastw f on_abort =
  Obs.Metrics.incr1 h.c_esc_stm;
  Simmem.note_hop h.hmem ctx ~from_path:"hw" ~to_path:"stm"
    ~reason:(abort_label last) lastw;
  emit h ctx (Tx_escalate { esc_to = P_stm; esc_attempt = n });
  (match Sim.tracer ctx with
   | None -> ()
   | Some sink ->
     Obs.Tracer.instant sink ~tid:(Sim.tid ctx) ~name:"stm.escalate" ~cat:"tx"
       ~args:[ ("attempt", Obs.Json.Int n) ]
       (Sim.clock ctx));
  let tid = Sim.tid ctx in
  match
    Stm.atomic s ctx ~max_attempts:h.cfg.stm_attempts
      ~on_abort:(fun r -> on_abort (of_stm_reason r))
      (fun stx ->
        Obs.Metrics.incr_t h.c_att_stm tid;
        reset_tx tx (Sw stx) n;
        f tx)
  with
  | v -> v
  | exception Stm.Retry_exhausted r ->
    if (match h.cfg.tle with Tle_never -> false | Tle_after _ -> true) then begin
      emit h ctx (Tx_escalate { esc_to = P_tle; esc_attempt = n });
      Simmem.note_hop h.hmem ctx ~from_path:"stm" ~to_path:"tle"
        ~reason:(abort_label (of_stm_reason r))
        (Stm.last_witness s ctx);
      run_locked h ctx tx n f
    end
    else raise (Retry_exhausted (of_stm_reason r))

(* Success bookkeeping, shared by all three paths: escalation stats,
   cycles-to-commit, and a liveness-watchdog note. *)
let finish h ctx t0 n =
  if n > Obs.Metrics.gauge_max h.g_consec then Obs.Metrics.set h.g_consec n;
  Obs.Metrics.observe h.h_commit (Sim.clock ctx - t0);
  Obs.Metrics.incr_by h.c_cycles (Sim.clock ctx - t0);
  Sim.note_progress ctx

(* The attempt loop lives at top level (not as a closure inside [atomic])
   so a pooled transaction's whole fast path — begin, body, commit —
   allocates nothing: one [atomic] call is a handful of array stores and
   unboxed arithmetic unless it aborts or escalates. *)
let rec attempt_loop h ctx tx f on_abort tr tid t0 n last =
  (* Escalation policy. Capacity aborts go straight to the software
     path — no hardware retry can ever fit an overflowing write set —
     while conflicts buy [m] backed-off hardware retries first. *)
  let esc_stm =
    match h.cfg.stm, h.stm with
    | Stm_after m, Some _ -> n >= m || (match last with Overflow -> true | _ -> false)
    | _ -> false
  in
  (* With an STM policy the lock is reachable only through STM budget
     exhaustion (see [run_stm]); without one, [Tle_after k] escalates
     directly from hardware aborts as before. *)
  let use_lock =
    match h.cfg.stm, h.cfg.tle with
    | Stm_after _, _ -> false
    | Stm_never, Tle_never -> false
    | Stm_never, Tle_after k -> n >= k
  in
  if esc_stm then begin
    match h.stm with
    | Some s ->
      let v = run_stm h s ctx tx n ~last ~lastw:tx.last_w f on_abort in
      finish h ctx t0 n;
      v
    | None -> assert false
  end
  else if use_lock then begin
    Simmem.note_hop h.hmem ctx ~from_path:"hw" ~to_path:"tle"
      ~reason:(abort_label last) tx.last_w;
    let v = run_locked h ctx tx n f in
    finish h ctx t0 n;
    v
  end
  else if h.cfg.max_attempts > 0 && n >= h.cfg.max_attempts then
    (* Retry budget exhausted with no escalation left to rescue us:
       fail fast with the last abort reason instead of spinning. *)
    raise (Retry_exhausted last)
  else begin
    (* Small cost jitter models real-hardware timing noise; without it,
       deterministic costs let the backoff phase-lock contending threads
       into conflict-free lockstep that a real machine's pipeline and
       interrupt noise would constantly break. *)
    Sim.tick ctx (h.cfg.tx_begin_cost + Sim.Rng.int (Sim.rng ctx) 16);
    (* Strong atomicity (paper §6): transaction begin drains the
       thread's store buffer so tx reads never miss its own pre-tx
       stores, and commit writes through [Tx_plane] — tx stores never
       linger in a buffer. No-op under the [sc] model. *)
    Simmem.drain h.hmem ctx;
    let t_att = Sim.clock ctx in
    reset_tx tx Hw n;
    Obs.Metrics.incr_t h.c_att_hw tid;
    match
      (* An environmental abort (interrupt, TLB miss, register-window
         spill — Rock's whole catalogue) can strike any attempt. *)
      (if Sim.spurious_fires ctx then raise (Aborted Spurious));
      (* Under TLE every hardware transaction monitors the lock word:
         observing it held aborts now, and a later acquisition changes the
         word's version, dooming us at validation. *)
      (if (match h.cfg.tle with Tle_never -> false | Tle_after _ -> true)
          && read tx h.lock_addr <> 0
       then raise (Aborted Lock_held));
      let v = f tx in
      commit tx;
      v
    with
    | v ->
      Obs.Metrics.incr_t h.c_commits tid;
      Obs.Metrics.observe h.h_stores tx.nstores;
      (match h.tap with
       | None -> ()
       | Some _ ->
         emit h ctx
           (Tx_commit
              { tx_reads = tx.nreads; tx_writes = tx.nwrites; tx_path = P_hw; tx_attempt = n }));
      (match tr with
       | None -> ()
       | Some sink ->
         Obs.Tracer.span sink ~tid ~name:"tx" ~cat:"tx"
           ~args:
             [
               ("attempt", Obs.Json.Int n);
               ("reads", Obs.Json.Int tx.nreads);
               ("writes", Obs.Json.Int tx.nwrites);
             ]
           t_att (Sim.clock ctx));
      run_frees tx;
      finish h ctx t0 n;
      v
    | exception Aborted r ->
      count_abort h ~tid r;
      (* Attach the witness captured at the validation failure; a
         lock-held abort synthesizes one against the lock word, whose
         last writer (the holder's acquiring CAS) is the aggressor. *)
      let w =
        match r, tx.witness with
        | _, (Some _ as w) -> w
        | Lock_held, None ->
          Some
            (Simmem.conflict_witness h.hmem ctx ~addr:h.lock_addr
               ~victim_wrote:false ~in_read_set:true ~in_write_set:false
               ~site:"htm.begin" ())
        | _, None -> None
      in
      tx.witness <- None;
      (match w with Some wit -> Simmem.record_witness h.hmem ctx wit | None -> ());
      tx.last_w <- w;
      (match h.tap with
       | None -> ()
       | Some _ ->
         emit h ctx
           (Tx_abort { ab_reason = r; ab_path = P_hw; ab_attempt = n; ab_witness = w }));
      (match tr with
       | None -> ()
       | Some sink ->
         let t_ab = Sim.clock ctx in
         Obs.Tracer.span sink ~tid ~name:"tx.attempt" ~cat:"tx"
           ~args:[ ("attempt", Obs.Json.Int n) ]
           t_att t_ab;
         Obs.Tracer.instant sink ~tid ~name:"tx.abort" ~cat:"tx"
           ~args:
             [ ("reason", Obs.Json.Str (abort_label r)); ("attempt", Obs.Json.Int n) ]
           t_ab);
      Sim.tick ctx h.cfg.tx_abort_cost;
      on_abort r;
      (* A capacity overflow cannot succeed on hardware retry; when the
         STM slow path will take the next attempt anyway, escalate
         without paying a pointless backoff. *)
      (match r, h.cfg.stm, h.stm with
       | Overflow, Stm_after _, Some _ -> ()
       | _ -> backoff h ctx n);
      attempt_loop h ctx tx f on_abort tr tid t0 (n + 1) r
  end

let atomic h ctx ?(on_abort = fun (_ : abort_reason) -> ()) f =
  let tx = get_tx h ctx in
  tx.busy <- true;
  tx.last_w <- None;
  let t0 = Sim.clock ctx in
  let tid = Sim.tid ctx in
  let tr = Sim.tracer ctx in
  match attempt_loop h ctx tx f on_abort tr tid t0 0 Conflict with
  | v ->
    tx.busy <- false;
    v
  | exception e ->
    tx.busy <- false;
    raise e
