(** Simulated hardware transactional memory, modelled on Sun's Rock.

    The properties the paper's algorithms rely on (§6) are all modelled and
    individually switchable:

    - {b bounded write sets}: a transaction aborts with [Overflow] after
      more than [store_buffer] stores (32 on Rock). Telescoped collects
      account their result-set stores through {!record};
    - {b sandboxing}: a transactional load from freed or unmapped memory
      aborts the transaction ([Illegal]) instead of faulting. With
      [sandboxed = false], it raises {!Simmem.Fault} like a plain segfault
      — the ablation showing why the paper's footnote 1 matters;
    - {b strong atomicity}: non-transactional stores bump word versions, so
      any transaction that has read the word aborts ([Conflict]);
    - {b no progress guarantee / TLE}: by default transactions retry with
      randomized exponential backoff. With [tle = After n], the [n]-th
      consecutive abort falls back to a global lock, executing the block
      non-transactionally while every hardware transaction monitors the
      lock word (the paper's §6 TLE construction);
    - {b opacity}: the read set is fully revalidated on every transactional
      access, so a doomed transaction never observes an inconsistent
      snapshot (on Rock, eager hardware conflict detection gives the same
      effect).

    Transactions execute atomically in virtual time: the commit phase
    charges cycle costs without yielding. Aborts are modelled by re-running
    the block, so blocks must be written to be re-executable from scratch
    (reset any external accumulation at the top of the block — see
    {!Sim.Ibuf.reset_to}). *)

module Adapt = Adapt

type abort_reason =
  | Conflict  (** read-set validation failed *)
  | Overflow  (** store-buffer capacity exceeded *)
  | Illegal  (** sandboxed access to freed/unmapped memory *)
  | Explicit  (** the block called {!abort} *)
  | Lock_held  (** a TLE lock holder was observed *)
  | Spurious
      (** environmental abort injected by the fault plan — interrupts, TLB
          misses, register-window spills: Rock's catalogue of aborts that
          have nothing to do with the data accessed ({!Sim.Fault}) *)

val pp_abort_reason : Format.formatter -> abort_reason -> unit

type tle_mode =
  | Tle_never  (** pure HTM; retry with backoff forever *)
  | Tle_after of int  (** fall back to the global lock after [n] aborts *)

type config = {
  store_buffer : int;  (** stores per transaction; Rock: 32 *)
  tx_begin_cost : int;
  tx_commit_cost : int;
  tx_store_cost : int;  (** store-buffer insertion *)
  tx_abort_cost : int;
  backoff_base : int;  (** first retry backoff, in cycles; randomized *)
  backoff_max : int;
  sandboxed : bool;
  tle : tle_mode;
  max_attempts : int;
      (** retry budget: abandon the operation with {!Retry_exhausted} after
          this many consecutive aborted hardware attempts, unless TLE
          escalates to the lock first ([Tle_after k] with [k <= budget]
          guarantees completion). [0] = unlimited (the default). *)
}

val default_config : config

type stats = {
  commits : int;
  aborts_conflict : int;
  aborts_overflow : int;
  aborts_illegal : int;
  aborts_explicit : int;
  aborts_lock : int;
  aborts_spurious : int;
  lock_fallbacks : int;  (** TLE lock acquisitions *)
  max_consecutive_aborts : int;
      (** worst retry chain any single {!atomic} needed before committing *)
}

type t
(** An HTM domain: a {!Simmem.t} plus configuration, statistics and the TLE
    lock word. *)

val create : ?config:config -> ?metrics:Obs.Metrics.t -> Simmem.t -> t
(** [metrics] chains this domain's registry to a parent aggregate (see
    {!Obs.Metrics.create}). Statistics now live in that registry — the
    {!stats} record is a snapshot assembled from it, kept for per-run
    delta measurements. *)

val mem : t -> Simmem.t
val config : t -> config

val metrics : t -> Obs.Metrics.t
(** The domain's registry: [htm.commits] and the [htm.aborts.*] breakdown
    (all with per-thread attribution), [htm.fallbacks],
    [htm.max_consecutive_aborts], and the [htm.commit_cycles] /
    [htm.stores_per_tx] log2 histograms. *)

val stats : t -> stats

val reset_stats : t -> unit
(** Reset this domain's local metrics (a parent registry, if chained,
    keeps its accumulated totals). *)

(** Transaction-event tap, for trace capture by the schedule explorer
    ([lib/explore]): commits (with read/write-set sizes), aborts (with
    reason) and TLE lock fallbacks, stamped with the issuing thread and
    clock. Costs nothing when unset. *)

type tx_event =
  | Tx_commit of { tx_reads : int; tx_writes : int }
  | Tx_abort of abort_reason
  | Tx_fallback

val pp_tx_event : Format.formatter -> tx_event -> unit

val set_tap : t -> (tid:int -> clock:int -> tx_event -> unit) option -> unit

val commit_cycles_histogram : t -> (int * int) list
(** Log-2 histogram of cycles-to-commit: [(2{^i}, count)] pairs, where a
    completed {!atomic} whose total latency (first attempt through final
    commit, retries and backoff included) was in [\[2{^i}, 2{^i+1})] counts
    toward bucket [2{^i}]. Empty buckets are omitted; counts sum to
    [commits + lock_fallbacks] (minus any operations crash-interrupted
    after their commit point). The escalation tail under faults lives
    here. *)

exception Retry_exhausted of abort_reason
(** Raised by {!atomic} when [max_attempts] consecutive hardware attempts
    aborted and TLE did not escalate; carries the last abort reason. *)

type tx
(** An in-flight transaction attempt. Valid only inside the callback of
    {!atomic} that produced it. *)

val atomic : t -> Sim.tctx -> ?on_abort:(abort_reason -> unit) -> (tx -> 'a) -> 'a
(** [atomic h ctx f] runs [f] transactionally, retrying on abort until it
    commits (possibly via the TLE lock), and returns its result.
    [on_abort] is called after each aborted attempt, before the backoff —
    the adaptive step-size controller hooks in here. Transactions must not
    nest. *)

val read : tx -> int -> int
(** Transactional load. *)

val write : tx -> int -> int -> unit
(** Transactional store, buffered until commit. *)

val record : tx -> unit
(** Consume one store-buffer slot without touching simulated memory: models
    the store that writes a collected element into the (process-local)
    result set, which is what bounds telescoping step sizes on Rock. *)

val abort : tx -> 'a
(** Explicitly abort this attempt; {!atomic} will retry the block. *)

val defer_free : tx -> int -> unit
(** Schedule [Simmem.free] of a block for after a successful commit (the
    paper's algorithms never free inside a transaction); discarded if the
    attempt aborts. *)

val attempt_number : tx -> int
(** 0 for the first attempt of this [atomic], incremented per retry. *)

val in_fallback : tx -> bool
(** Whether this attempt runs under the TLE lock (non-transactionally). *)
