(** Simulated hardware transactional memory, modelled on Sun's Rock.

    The properties the paper's algorithms rely on (§6) are all modelled and
    individually switchable:

    - {b bounded write sets}: a transaction aborts with [Overflow] after
      more than [store_buffer] stores (32 on Rock). Telescoped collects
      account their result-set stores through {!record};
    - {b sandboxing}: a transactional load from freed or unmapped memory
      aborts the transaction ([Illegal]) instead of faulting. With
      [sandboxed = false], it raises {!Simmem.Fault} like a plain segfault
      — the ablation showing why the paper's footnote 1 matters;
    - {b strong atomicity}: non-transactional stores bump word versions, so
      any transaction that has read the word aborts ([Conflict]);
    - {b no progress guarantee}: by default transactions retry with
      randomized exponential backoff. The escalation policy decides what
      happens when retrying stops paying:
    - {b TLE} ([tle = Tle_after n]): the [n]-th consecutive abort falls
      back to a global lock, executing the block non-transactionally while
      every hardware transaction monitors the lock word (the paper's §6
      TLE construction) — correct, but serializing;
    - {b hybrid STM slow path} ([stm = Stm_after m]): aborts escalate to
      the {!Stm} software path instead — capacity aborts immediately
      (hardware can never fit them), conflicts after [m] backed-off
      hardware retries. The software path runs the {e same block} through
      the same {!tx} surface, commits transactions of any size, keeps
      threads parallel, and falls back to the TLE lock only if its own
      attempt budget ([stm_attempts]) runs dry and [tle <> Tle_never].
      The degradation lattice is hardware → backoff → STM → lock;
    - {b opacity}: the read set is fully revalidated on every transactional
      access, so a doomed transaction never observes an inconsistent
      snapshot (on Rock, eager hardware conflict detection gives the same
      effect).

    Transactions execute atomically in virtual time: the commit phase
    charges cycle costs without yielding. Aborts are modelled by re-running
    the block, so blocks must be written to be re-executable from scratch
    (reset any external accumulation at the top of the block — see
    {!Sim.Ibuf.reset_to}). *)

module Adapt = Adapt

type abort_reason =
  | Conflict  (** read-set validation failed *)
  | Overflow  (** store-buffer capacity exceeded *)
  | Illegal  (** sandboxed access to freed/unmapped memory *)
  | Explicit  (** the block called {!abort} *)
  | Lock_held  (** a TLE lock holder (or a live STM lock owner) was observed *)
  | Spurious
      (** environmental abort injected by the fault plan — interrupts, TLB
          misses, register-window spills: Rock's catalogue of aborts that
          have nothing to do with the data accessed ({!Sim.Fault}) *)

val pp_abort_reason : Format.formatter -> abort_reason -> unit

type tle_mode =
  | Tle_never  (** no global-lock fallback *)
  | Tle_after of int
      (** fall back to the global lock after [n] aborts. With an STM
          policy installed ([Stm_after _]) the count is ignored: any
          non-[Tle_never] value enables the lock as the {e last} resort,
          reached only when the STM attempt budget is exhausted. *)

(** Escalation from hardware to the {!Stm} software path. *)
type stm_mode =
  | Stm_never  (** hardware (plus TLE, if configured) only *)
  | Stm_after of int
      (** escalate to STM after [m] aborted hardware attempts — or after
          the {e first} [Overflow], which no hardware retry can fix.
          [Stm_after 0] runs every transaction on the software path. *)

(** Conflict-detection granularity of the hardware path.

    [Word] (the default) is the idealized per-word detector every
    committed baseline was generated under: only a store to the very
    word a transaction read can doom it.

    [Line] validates the read set against {!Simmem}'s per-line versions,
    the way real HTMs (Rock, TSX) snoop whole cache lines: a committed
    store {e anywhere} on a line the transaction read aborts it —
    including stores to unrelated blocks that the allocator happened to
    pack onto the same line. This is the false-sharing abort channel
    "The Influence of Malloc Placement on TSX Hardware Transactional
    Memory" measures, and what [bench placement] ablates against the
    {!Simmem.placement} policies. *)
type granularity = Word | Line

type config = {
  store_buffer : int;  (** stores per transaction; Rock: 32 *)
  tx_begin_cost : int;
  tx_commit_cost : int;
  tx_store_cost : int;  (** store-buffer insertion *)
  tx_abort_cost : int;
  backoff_base : int;  (** first retry backoff, in cycles; randomized *)
  backoff_max : int;
  sandboxed : bool;
  granularity : granularity;
  tle : tle_mode;
  stm : stm_mode;
  stm_attempts : int;
      (** STM attempt budget before falling to the TLE lock; [0] = the
          software path retries forever (never reaches the lock) *)
  stm_config : Stm.config;
      (** configuration of the STM side table when [stm <> Stm_never] *)
  max_attempts : int;
      (** retry budget: abandon the operation with {!Retry_exhausted} after
          this many consecutive aborted hardware attempts, unless TLE or
          STM escalates first ([Tle_after k] with [k <= budget] guarantees
          completion). [0] = unlimited (the default). *)
}

val default_config : config
(** Pure HTM: [stm = Stm_never], [tle = Tle_never]. A machine built with
    this config allocates no STM side table — heap layout is identical to
    pre-hybrid builds. *)

val hybrid_config : config
(** The full degradation lattice: [Stm_after 2] (capacity immediately),
    [stm_attempts = 8], TLE as last resort. *)

(** Which of the three execution paths an event happened on. *)
type tx_path = P_hw | P_stm | P_tle

val path_label : tx_path -> string

type stats = {
  commits : int;  (** hardware commits *)
  aborts_conflict : int;
  aborts_overflow : int;
  aborts_illegal : int;
  aborts_explicit : int;
  aborts_lock : int;
  aborts_spurious : int;
  lock_fallbacks : int;  (** TLE lock acquisitions *)
  max_consecutive_aborts : int;
      (** worst retry chain any single {!atomic} needed before committing *)
  attempts_hw : int;  (** hardware transaction attempts started *)
  attempts_stm : int;  (** software (STM) attempts started *)
  attempts_tle : int;  (** blocks run under the TLE lock *)
  escalations_stm : int;  (** operations that left the hardware path *)
  stm_commits : int;  (** software-path commits (from {!Stm.stats}) *)
  stm_aborts : int;  (** software-path aborts, all reasons *)
  stm_steals : int;  (** STM locks recovered from crashed owners *)
}

type t
(** An HTM domain: a {!Simmem.t} plus configuration, statistics, the TLE
    lock word and (when [stm <> Stm_never]) the {!Stm} side table. *)

val create : ?config:config -> ?metrics:Obs.Metrics.t -> Simmem.t -> t
(** [metrics] chains this domain's registry to a parent aggregate (see
    {!Obs.Metrics.create}); the STM side table, when configured, chains
    its [stm.*] registry to the same parent. Statistics live in that
    registry — the {!stats} record is a snapshot assembled from it, kept
    for per-run delta measurements. *)

val mem : t -> Simmem.t
val config : t -> config

val stm : t -> Stm.t option
(** The software-path domain, present iff [config.stm <> Stm_never]. *)

val metrics : t -> Obs.Metrics.t
(** The domain's registry: [htm.commits] and the [htm.aborts.*] breakdown,
    per-path attempt attribution ([htm.attempts.hw] / [.stm] / [.tle],
    all with per-thread attribution), [htm.fallbacks],
    [htm.escalations.stm], [htm.max_consecutive_aborts], and the
    [htm.commit_cycles] / [htm.stores_per_tx] log2 histograms. *)

val stats : t -> stats

val reset_stats : t -> unit
(** Reset this domain's local metrics, including the STM side table's (a
    parent registry, if chained, keeps its accumulated totals). *)

(** Transaction-event tap, for trace capture by the schedule explorer
    ([lib/explore]): commits (with read/write-set sizes), aborts (with
    reason), escalations and TLE lock fallbacks, each attributed to the
    execution path it happened on — the tap stream is exact, so per-path
    histograms can be built from it alone. STM-path events (including
    lock steals) are forwarded into this stream automatically. Costs
    nothing when unset. *)

type tx_event =
  | Tx_commit of { tx_reads : int; tx_writes : int; tx_path : tx_path; tx_attempt : int }
  | Tx_abort of {
      ab_reason : abort_reason;
      ab_path : tx_path;
      ab_attempt : int;
      ab_witness : Obs.Forensics.witness option;
          (** the conflict witness captured at the failing validation (or
              synthesized against the TLE lock word for lock-held
              aborts); rendered by {!pp_tx_event}, so explorer
              counterexample traces carry abort attribution *)
    }
  | Tx_fallback  (** TLE lock acquired *)
  | Tx_escalate of { esc_to : tx_path; esc_attempt : int }
  | Tx_steal of { st_victim : int }
      (** an STM versioned lock was stolen from (crashed) thread
          [st_victim] *)

val pp_tx_event : Format.formatter -> tx_event -> unit

val set_tap : t -> (tid:int -> clock:int -> tx_event -> unit) option -> unit

val commit_cycles_histogram : t -> (int * int) list
(** Log-2 histogram of cycles-to-commit: [(2{^i}, count)] pairs, where a
    completed {!atomic} whose total latency (first attempt through final
    commit, retries, backoff and escalation included) was in
    [\[2{^i}, 2{^i+1})] counts toward bucket [2{^i}]. Empty buckets are
    omitted; counts sum to completed operations across all three paths
    (minus any crash-interrupted after their commit point). The
    escalation tail under faults lives here. *)

exception Retry_exhausted of abort_reason
(** Raised by {!atomic} when the retry budget ran out with no escalation
    configured to rescue the operation (hardware [max_attempts], or the
    STM budget with [tle = Tle_never]); carries the last abort reason. *)

type tx
(** An in-flight transaction attempt. Valid only inside the callback of
    {!atomic} that produced it. *)

val atomic : t -> Sim.tctx -> ?on_abort:(abort_reason -> unit) -> (tx -> 'a) -> 'a
(** [atomic h ctx f] runs [f] transactionally, retrying on abort until it
    commits (possibly escalated to the STM path or the TLE lock), and
    returns its result. [on_abort] is called after each aborted attempt
    on {e any} path, before the backoff — the adaptive step-size
    controller hooks in here (STM abort reasons are mapped onto
    {!abort_reason}). Transactions must not nest. *)

val read : tx -> int -> int
(** Transactional load. *)

val write : tx -> int -> int -> unit
(** Transactional store, buffered until commit. *)

val record : tx -> unit
(** Consume one store-buffer slot without touching simulated memory: models
    the store that writes a collected element into the (process-local)
    result set, which is what bounds telescoping step sizes on Rock. On
    the STM path it pays the instrumentation cost but consumes no
    capacity. *)

val abort : tx -> 'a
(** Explicitly abort this attempt; {!atomic} will retry the block. *)

val defer_free : tx -> int -> unit
(** Schedule [Simmem.free] of a block for after a successful commit (the
    paper's algorithms never free inside a transaction); discarded if the
    attempt aborts. *)

val tx_tid : tx -> int
(** The simulated thread running this attempt — lets a data structure keep
    per-thread argument/result slots so one preallocated transaction body
    serves every operation (no per-operation closure). *)

val attempt_number : tx -> int
(** 0 for the first attempt of this [atomic], incremented per hardware
    retry; frozen at the escalation attempt on the software path (use
    {!Stm.attempt_number} via the side table for software retries). *)

val in_fallback : tx -> bool
(** Whether this attempt runs under the TLE lock (non-transactionally).
    [false] on the STM path, which is transactional. *)
