(* TL2 over the simulator's versioned words. See stm.mli for the design;
   the load-bearing implementation decisions are:

   - Lock words live in simulated memory and encode
     [version lsl 7 lor (owner_slot + 1)]; 7 bits cover every owner slot
     (61 runnable threads + the boot context — see [slot_of]). The version half
     is only an early-abort hint — safety always rests on Simmem's own
     word versions, which every committed store (hardware, TLE, plain or
     STM) bumps. That is what makes this a correct hybrid: the hardware
     path never learns about the lock table, yet neither side can commit
     over the other undetected.

   - The commit point is atomic in virtual time: ownership re-check,
     final validation, fence check, write-back and lock release use only
     [Sim.charge] / [Simmem.peek] / [Tx_plane.commit_write] (no yields).
     A kill can strike while locks are held (that window is the
     registered ["stm.commit"] fault point), but never between the first
     and last committed store — crash-safety by construction.

   - Lock recovery is heartbeat-based: each thread bumps a private
     heartbeat word when it enters a commit, and a contender that watches
     the same lock, same owner and same heartbeat value for
     [steal_timeout] cycles reverts the lock word. Stealing from a live
     owner is safe (the owner's commit point re-verifies ownership and
     aborts), so the timeout is a liveness knob, not a correctness one.
     The watch state is per-contender-thread and OCaml-side: it costs no
     simulated memory traffic and survives across [atomic] calls, so a
     dead owner is recovered even by threads on bounded retry budgets. *)

type clock_scheme = Gv1 | Gv5

type config = {
  clock_scheme : clock_scheme;
  lock_slots : int;
  start_cost : int;
  read_cost : int;
  write_cost : int;
  validate_cost : int;
  commit_cost : int;
  abort_cost : int;
  backoff_base : int;
  backoff_max : int;
  steal_timeout : int;
  max_attempts : int;
}

let default_config =
  {
    clock_scheme = Gv5;
    lock_slots = 256;
    start_cost = 15;
    read_cost = 12;
    write_cost = 10;
    validate_cost = 3;
    commit_cost = 40;
    abort_cost = 80;
    backoff_base = 60;
    backoff_max = 16384;
    steal_timeout = 25_000;
    max_attempts = 0;
  }

type abort_reason = Conflict | Locked | Illegal | Explicit

let abort_label = function
  | Conflict -> "conflict"
  | Locked -> "locked"
  | Illegal -> "illegal"
  | Explicit -> "explicit"

let pp_abort_reason ppf r = Format.pp_print_string ppf (abort_label r)

type stats = {
  commits : int;
  aborts_conflict : int;
  aborts_locked : int;
  aborts_illegal : int;
  aborts_explicit : int;
  attempts : int;
  steals : int;
  clock_bumps : int;
}

type tx_event =
  | Ev_commit of { ev_reads : int; ev_writes : int; ev_attempt : int }
  | Ev_abort of {
      ev_reason : abort_reason;
      ev_attempt : int;
      ev_witness : Obs.Forensics.witness option;
    }
  | Ev_steal of { ev_victim : int }

(* One heartbeat word per possible owner slot, each on its own cache line
   so the per-commit bump never false-shares with a neighbour's. *)
let hb_stride = 8
let n_tids = 64

(* The lock-word owner field is 7 bits and the heartbeat region is one
   line per owner, both sized for the historical 61-thread machine. Wider
   simulations ({!Sim.max_threads} is 256) keep those layouts — and every
   committed artifact whose heap addresses depend on them — by mapping
   the boot context to slot 61 and rejecting runnable tids beyond 60:
   the software path is a fallback for machines of classic width, not a
   256-thread subject in its own right. *)
let slot_limit = 61

let slot_of tid =
  if tid < slot_limit then tid
  else if tid = Sim.boot_tid then slot_limit
  else invalid_arg "Stm: software transactions support at most 61 threads"

type t = {
  smem : Simmem.t;
  cfg : config;
  clock_addr : int;
  locks : int;  (* base of the lock table *)
  hb : int;  (* base of the heartbeat array *)
  mutable fence : int;
  mreg : Obs.Metrics.t;
  c_commits : Obs.Metrics.counter;
  c_conflict : Obs.Metrics.counter;
  c_locked : Obs.Metrics.counter;
  c_illegal : Obs.Metrics.counter;
  c_explicit : Obs.Metrics.counter;
  c_attempts : Obs.Metrics.counter;
  c_steals : Obs.Metrics.counter;
  c_bumps : Obs.Metrics.counter;
  h_commit : Obs.Metrics.hist;
  h_writes : Obs.Metrics.hist;
  (* Per-contender steal watch: (lock addr, owner tid, heartbeat value,
     first-seen clock). OCaml-side bookkeeping, deterministic because it
     is only read and written by its own thread. *)
  watch : (int * int * int * int) option array;
  (* Per-thread witness of the most recent abort, read by Htm when STM
     budget exhaustion drives the stm->tle escalation hop. *)
  last_w : Obs.Forensics.witness option array;
  mutable tap : (tid:int -> clock:int -> tx_event -> unit) option;
  (* One reusable transaction record per owner slot: [atomic] allocates
     only on a thread's first transaction (or under nesting). *)
  pool : tx option array;
}

and tx = {
  s : t;
  mutable ctx : Sim.tctx;
  mutable busy : bool;
  mutable attempt : int;
  mutable rv : int;
  mutable raddr : int array;
  mutable rver : int array;
  mutable nreads : int;
  mutable waddr : int array;
  mutable wval : int array;
  mutable nwrites : int;
  mutable frees : int array;
  mutable nfrees : int;
  (* commit scratch: acquired lock stripes and their pre-lock words, plus
     the sorted deduplicated stripe list the lock phase walks *)
  mutable laddr : int array;
  mutable lold : int array;
  mutable nlocks : int;
  mutable saddr : int array;
  mutable witness : Obs.Forensics.witness option;
      (* set at the capture site of the conflict aborting this attempt *)
}

exception Aborted of abort_reason
exception Retry_exhausted of abort_reason

let create ?(config = default_config) ?metrics mem =
  if config.lock_slots land (config.lock_slots - 1) <> 0 || config.lock_slots <= 0
  then invalid_arg "Stm.create: lock_slots must be a power of two";
  let boot = Sim.boot () in
  (* The clock gets its own line; the lock table and heartbeats are
     line-aligned regions of their own. *)
  let clock_addr = Simmem.malloc mem boot 8 in
  Simmem.label mem ~name:"Stm.clock" ~base:clock_addr ~words:8;
  let locks = Simmem.malloc mem boot config.lock_slots in
  Simmem.label mem ~name:"Stm.locks" ~base:locks ~words:config.lock_slots;
  let hb = Simmem.malloc mem boot (n_tids * hb_stride) in
  Simmem.label mem ~name:"Stm.heartbeats" ~base:hb ~words:(n_tids * hb_stride);
  let mreg = Obs.Metrics.create ?parent:metrics () in
  {
    smem = mem;
    cfg = config;
    clock_addr;
    locks;
    hb;
    fence = 0;
    mreg;
    c_commits = Obs.Metrics.counter ~per_thread:true mreg "stm.commits";
    c_conflict = Obs.Metrics.counter ~per_thread:true mreg "stm.aborts.conflict";
    c_locked = Obs.Metrics.counter ~per_thread:true mreg "stm.aborts.locked";
    c_illegal = Obs.Metrics.counter ~per_thread:true mreg "stm.aborts.illegal";
    c_explicit = Obs.Metrics.counter ~per_thread:true mreg "stm.aborts.explicit";
    c_attempts = Obs.Metrics.counter ~per_thread:true mreg "stm.attempts";
    c_steals = Obs.Metrics.counter mreg "stm.steals";
    c_bumps = Obs.Metrics.counter mreg "stm.clock_bumps";
    h_commit = Obs.Metrics.hist mreg "stm.commit_cycles";
    h_writes = Obs.Metrics.hist mreg "stm.writes_per_tx";
    watch = Array.make n_tids None;
    last_w = Array.make n_tids None;
    tap = None;
    pool = Array.make n_tids None;
  }

let mem t = t.smem
let config t = t.cfg
let metrics t = t.mreg
let set_fence t addr = t.fence <- addr
let set_tap t f = t.tap <- f
let last_witness t ctx = t.last_w.(slot_of (Sim.tid ctx))

let emit t ctx ev =
  match t.tap with
  | None -> ()
  | Some f -> f ~tid:(Sim.tid ctx) ~clock:(Sim.clock ctx) ev

let stats t =
  {
    commits = Obs.Metrics.value t.c_commits;
    aborts_conflict = Obs.Metrics.value t.c_conflict;
    aborts_locked = Obs.Metrics.value t.c_locked;
    aborts_illegal = Obs.Metrics.value t.c_illegal;
    aborts_explicit = Obs.Metrics.value t.c_explicit;
    attempts = Obs.Metrics.value t.c_attempts;
    steals = Obs.Metrics.value t.c_steals;
    clock_bumps = Obs.Metrics.value t.c_bumps;
  }

let reset_stats t =
  Obs.Metrics.reset_counter t.c_commits;
  Obs.Metrics.reset_counter t.c_conflict;
  Obs.Metrics.reset_counter t.c_locked;
  Obs.Metrics.reset_counter t.c_illegal;
  Obs.Metrics.reset_counter t.c_explicit;
  Obs.Metrics.reset_counter t.c_attempts;
  Obs.Metrics.reset_counter t.c_steals;
  Obs.Metrics.reset_counter t.c_bumps;
  Obs.Metrics.reset_hist t.h_commit;
  Obs.Metrics.reset_hist t.h_writes

(* ------------------------------------------------------------------ *)
(* Lock-word encoding and addressing.                                  *)

let owner_of lw = lw land 0x7f
let ver_of lw = lw asr 7
let locked_word ver tid = (ver lsl 7) lor (tid + 1)
let unlocked_word ver = ver lsl 7
let lock_of t addr = t.locks + (addr land (t.cfg.lock_slots - 1))
let hb_addr t tid = t.hb + (tid * hb_stride)

(* ------------------------------------------------------------------ *)
(* Transactions.                                                       *)

let attempt_number tx = tx.attempt

let fresh_tx s ctx =
  {
    s;
    ctx;
    busy = false;
    attempt = 0;
    rv = 0;
    raddr = Array.make 64 0;
    rver = Array.make 64 0;
    nreads = 0;
    waddr = Array.make 64 0;
    wval = Array.make 64 0;
    nwrites = 0;
    frees = Array.make 8 0;
    nfrees = 0;
    laddr = Array.make 64 0;
    lold = Array.make 64 0;
    nlocks = 0;
    saddr = Array.make 64 0;
    witness = None;
  }

(* Fetch the thread's pooled transaction, falling back to a fresh record
   under nesting (the pooled one is busy running the outer body). *)
let get_tx s ctx =
  let slot = slot_of (Sim.tid ctx) in
  match s.pool.(slot) with
  | Some tx when not tx.busy ->
    tx.ctx <- ctx;
    tx
  | Some _ -> fresh_tx s ctx
  | None ->
    let tx = fresh_tx s ctx in
    s.pool.(slot) <- Some tx;
    tx

let reset_tx tx attempt =
  tx.attempt <- attempt;
  tx.nreads <- 0;
  tx.nwrites <- 0;
  tx.nlocks <- 0;
  tx.nfrees <- 0;
  tx.witness <- None

let grow a =
  let n = Array.length a in
  let b = Array.make (2 * n) 0 in
  Array.blit a 0 b 0 n;
  b

let rec read_known tx addr i =
  i < tx.nreads && (tx.raddr.(i) = addr || read_known tx addr (i + 1))

let note_read tx addr ver =
  if not (read_known tx addr 0) then begin
    if tx.nreads = Array.length tx.raddr then begin
      tx.raddr <- grow tx.raddr;
      tx.rver <- grow tx.rver
    end;
    tx.raddr.(tx.nreads) <- addr;
    tx.rver.(tx.nreads) <- ver;
    tx.nreads <- tx.nreads + 1
  end

(* Newest matching write-buffer entry, or -1. *)
let rec find_buffered_idx tx addr i =
  if i < 0 then -1
  else if tx.waddr.(i) = addr then i
  else find_buffered_idx tx addr (i - 1)

(* Opacity: like Htm, the whole read set is revalidated against Simmem's
   word versions on every access, so a doomed transaction never computes
   on a mixed snapshot — whoever overwrote us (hardware commit, TLE
   section, plain store, another STM commit's write-back). Validation is
   pure ([Tx_plane.validate] is a version compare), so the short-circuit
   changes nothing observable. *)
let rec validate_from mem tx i =
  i >= tx.nreads
  || (Simmem.Tx_plane.validate mem tx.raddr.(i) tx.rver.(i)
      && validate_from mem tx (i + 1))

let validate_reads tx = validate_from tx.s.smem tx 0

(* Every read-set stripe unheld (or held by us): checked for free via
   [peek]; the cycle cost of the commit-time pass is charged in bulk. *)
let rec locks_clear_from s me tx i =
  i >= tx.nreads
  || (let o = owner_of (Simmem.peek s.smem (lock_of s tx.raddr.(i))) in
      (o = 0 || o = me) && locks_clear_from s me tx (i + 1))

let read_locks_clear tx =
  locks_clear_from tx.s (slot_of (Sim.tid tx.ctx) + 1) tx 0

(* ---- Conflict forensics: locate the word that doomed an attempt.
   Scanned only on abort paths, so the success path pays nothing. *)

let set_witness tx ?lookup ?aggressor ~addr ~victim_wrote ~in_read_set
    ~in_write_set site =
  tx.witness <-
    Some
      (Simmem.conflict_witness tx.s.smem tx.ctx ~addr ?lookup ?aggressor
         ~victim_wrote ~in_read_set ~in_write_set ~site ())

let first_invalid tx =
  let mem = tx.s.smem in
  let rec go i =
    if i >= tx.nreads then None
    else if not (Simmem.Tx_plane.validate mem tx.raddr.(i) tx.rver.(i)) then
      Some tx.raddr.(i)
    else go (i + 1)
  in
  go 0

let first_locked_read tx =
  let s = tx.s in
  let me = slot_of (Sim.tid tx.ctx) + 1 in
  let rec go i =
    if i >= tx.nreads then None
    else
      let la = lock_of s tx.raddr.(i) in
      let o = owner_of (Simmem.peek s.smem la) in
      if o <> 0 && o <> me then Some (tx.raddr.(i), la, o - 1) else go (i + 1)
  in
  go 0

let first_freed_write tx =
  let mem = tx.s.smem in
  let rec go i =
    if i >= tx.nwrites then None
    else if not (Simmem.is_allocated mem tx.waddr.(i)) then Some tx.waddr.(i)
    else go (i + 1)
  in
  go 0

(* In order of likelihood: an invalidated read (the aggressor is the
   committed store that bumped the word's version), a read-set stripe
   locked by another owner, a write target freed under us. *)
let capture_conflict tx site =
  match first_invalid tx with
  | Some addr ->
    let wrote = find_buffered_idx tx addr (tx.nwrites - 1) >= 0 in
    set_witness tx ~addr ~victim_wrote:wrote ~in_read_set:true ~in_write_set:wrote
      site
  | None ->
    (match first_locked_read tx with
     | Some (addr, la, owner) ->
       set_witness tx ~lookup:la ~aggressor:owner ~addr ~victim_wrote:false
         ~in_read_set:true ~in_write_set:false site
     | None ->
       (match first_freed_write tx with
        | Some addr ->
          set_witness tx ~addr ~victim_wrote:true ~in_read_set:false
            ~in_write_set:true site
        | None -> ()))

(* Gv5: an aborting reader pushes the clock up to the version that burned
   it, so its retry (and everyone after) starts with a fresh rv. *)
(* A held stripe: engage this thread's steal watch, and steal once the
   owner's heartbeat has stayed silent past the timeout. Returns the lock
   word to act on — the reverted (unlocked) word after a successful steal,
   [lw] unchanged otherwise. Shared by the read path and commit-time
   acquisition: both must be able to recover a dead owner's stripe, or an
   adversarial schedule that never resumes a lock holder starves every
   reader of that stripe forever (the explorer finds exactly this). *)
(* The heartbeat stayed stale for a whole timeout: [victim] is presumed
   dead (or descheduled long enough to be treated as such). Release every
   lock it holds, not just the contended one — a crashed commit leaves
   its entire stripe set locked, and stealing those one timeout at a time
   would stall the machine for stripes x timeout cycles. Per-lock CAS on
   the observed word keeps this safe against resurrection: a still-live
   owner re-verifies ownership of all its stripes at its commit point and
   aborts when any was stolen. *)
let steal_from s ctx victim =
  let me = Sim.tid ctx in
  let freed = ref 0 in
  for i = 0 to s.cfg.lock_slots - 1 do
    let la = s.locks + i in
    let lw = Simmem.read s.smem ctx la in
    if
      owner_of lw = victim + 1
      && Simmem.cas s.smem ctx la ~expected:lw ~desired:(unlocked_word (ver_of lw))
    then incr freed
  done;
  if !freed > 0 then begin
    Obs.Metrics.incr_by s.c_steals !freed;
    (match s.tap with
     | None -> ()
     | Some _ -> emit s ctx (Ev_steal { ev_victim = victim }));
    match Sim.tracer ctx with
    | None -> ()
    | Some sink ->
      Obs.Tracer.instant sink ~tid:me ~name:"stm.steal" ~cat:"tx"
        ~args:[ ("victim", Obs.Json.Int victim); ("locks", Obs.Json.Int !freed) ]
        (Sim.clock ctx)
  end

let watch_or_steal s ctx la lw =
  let me = slot_of (Sim.tid ctx) in
  let victim = owner_of lw - 1 in
  let h = Simmem.read s.smem ctx (hb_addr s victim) in
  let now = Sim.clock ctx in
  match s.watch.(me) with
  | Some (la', o', h', t0) when la' = la && o' = victim && h' = h ->
    if now - t0 >= s.cfg.steal_timeout then begin
      steal_from s ctx victim;
      s.watch.(me) <- None;
      Simmem.read s.smem ctx la
    end
    else lw
  | _ ->
    s.watch.(me) <- Some (la, victim, h, now);
    lw

let bump_clock_to s ctx v =
  let c = Simmem.peek s.smem s.clock_addr in
  if c < v then begin
    Obs.Metrics.incr s.c_bumps;
    ignore (Simmem.cas s.smem ctx s.clock_addr ~expected:c ~desired:v)
  end

let stale tx ~addr ~la ~in_read_set ver =
  if ver > tx.rv then begin
    (match tx.s.cfg.clock_scheme with
     | Gv5 -> bump_clock_to tx.s tx.ctx ver
     | Gv1 -> ());
    (* The stripe version outran our read version: the last committer of
       the lock word is the aggressor. *)
    set_witness tx ~lookup:la ~addr ~victim_wrote:false ~in_read_set
      ~in_write_set:false "stm.read.stale";
    raise (Aborted Conflict)
  end

let read tx addr =
  let bi = find_buffered_idx tx addr (tx.nwrites - 1) in
  if bi >= 0 then tx.wval.(bi)
  else begin
    let s = tx.s in
    Sim.tick tx.ctx s.cfg.read_cost;
    let la = lock_of s addr in
    (* The instrumentation that makes an STM read an STM read: probe the
       stripe lock (a real, coherence-paying load) before the data. *)
    let lw =
      let lw = Simmem.read s.smem tx.ctx la in
      if owner_of lw = 0 then lw else watch_or_steal s tx.ctx la lw
    in
    if owner_of lw <> 0 then begin
      set_witness tx ~lookup:la ~aggressor:(owner_of lw - 1) ~addr
        ~victim_wrote:false ~in_read_set:false ~in_write_set:false
        "stm.read.locked";
      raise (Aborted Locked)
    end;
    stale tx ~addr ~la ~in_read_set:false (ver_of lw);
    let mver = Simmem.Tx_plane.read_ver s.smem tx.ctx addr in
    if mver < 0 then raise (Aborted Illegal);
    let v = Simmem.Tx_plane.read_value s.smem in
    note_read tx addr mver;
    if not (validate_reads tx) then begin
      capture_conflict tx "stm.read";
      raise (Aborted Conflict)
    end;
    (* the stripe may have been locked while we fetched the value *)
    let lw' = Simmem.peek s.smem la in
    if owner_of lw' <> 0 then begin
      set_witness tx ~lookup:la ~aggressor:(owner_of lw' - 1) ~addr
        ~victim_wrote:false ~in_read_set:true ~in_write_set:false
        "stm.read.locked";
      raise (Aborted Locked)
    end;
    stale tx ~addr ~la ~in_read_set:true (ver_of lw');
    v
  end

let write tx addr v =
  let s = tx.s in
  if not (Simmem.is_allocated s.smem addr) then raise (Aborted Illegal);
  Sim.tick tx.ctx s.cfg.write_cost;
  if tx.nwrites = Array.length tx.waddr then begin
    tx.waddr <- grow tx.waddr;
    tx.wval <- grow tx.wval
  end;
  tx.waddr.(tx.nwrites) <- addr;
  tx.wval.(tx.nwrites) <- v;
  tx.nwrites <- tx.nwrites + 1

let record tx = Sim.tick tx.ctx tx.s.cfg.write_cost

let abort (_ : tx) = raise (Aborted Explicit)

let defer_free tx base =
  if tx.nfrees = Array.length tx.frees then tx.frees <- grow tx.frees;
  tx.frees.(tx.nfrees) <- base;
  tx.nfrees <- tx.nfrees + 1

let run_frees tx =
  for i = 0 to tx.nfrees - 1 do
    Simmem.free tx.s.smem tx.ctx tx.frees.(i)
  done;
  tx.nfrees <- 0

(* ------------------------------------------------------------------ *)
(* Commit.                                                             *)

let push_lock tx la old =
  if tx.nlocks = Array.length tx.laddr then begin
    tx.laddr <- grow tx.laddr;
    tx.lold <- grow tx.lold
  end;
  tx.laddr.(tx.nlocks) <- la;
  tx.lold.(tx.nlocks) <- old;
  tx.nlocks <- tx.nlocks + 1

(* Revert every acquired stripe we still own. [commit_write] only, so the
   release is atomic in virtual time; stripes already stolen (and perhaps
   re-locked by their stealer) are left alone. *)
let release_owned tx =
  let s = tx.s in
  let me = slot_of (Sim.tid tx.ctx) in
  for i = 0 to tx.nlocks - 1 do
    let la = tx.laddr.(i) and old = tx.lold.(i) in
    if Simmem.peek s.smem la = locked_word (ver_of old) me then
      ignore (Simmem.Tx_plane.commit_write s.smem tx.ctx la old)
  done;
  tx.nlocks <- 0

(* The write set's distinct lock stripes, ascending — deduplicated so a
   stripe is acquired once, ordered so the acquisition sequence is
   deterministic. Insertion sort into the tx's scratch array: write sets
   are small and the pass allocates nothing. Returns the stripe count;
   the stripes themselves sit in [tx.saddr.(0 .. n-1)]. *)
let stripes tx =
  let s = tx.s in
  if Array.length tx.saddr < tx.nwrites then
    tx.saddr <- Array.make (Array.length tx.waddr) 0;
  let n = ref 0 in
  for i = 0 to tx.nwrites - 1 do
    let la = lock_of s tx.waddr.(i) in
    let j = ref 0 in
    while !j < !n && tx.saddr.(!j) < la do incr j done;
    if !j = !n || tx.saddr.(!j) <> la then begin
      for k = !n downto !j + 1 do
        tx.saddr.(k) <- tx.saddr.(k - 1)
      done;
      tx.saddr.(!j) <- la;
      incr n
    end
  done;
  !n

(* Acquire one stripe, or decide this attempt dies. Dead-owner recovery:
   see the watch protocol at the top of the file. *)
let rec acquire tx la =
  let s = tx.s in
  let ctx = tx.ctx in
  let me = slot_of (Sim.tid ctx) in
  let lw = Simmem.read s.smem ctx la in
  if owner_of lw = 0 then begin
    if Simmem.cas s.smem ctx la ~expected:lw ~desired:(locked_word (ver_of lw) me)
    then begin
      push_lock tx la lw;
      true
    end
    else acquire tx la
  end
  else begin
    let lw' = watch_or_steal s ctx la lw in
    if owner_of lw' = 0 then acquire tx la else false
  end

let writes_allocated tx =
  let mem = tx.s.smem in
  let ok = ref true in
  for i = 0 to tx.nwrites - 1 do
    if not (Simmem.is_allocated mem tx.waddr.(i)) then ok := false
  done;
  !ok

let commit tx =
  let s = tx.s in
  let ctx = tx.ctx in
  let me = slot_of (Sim.tid ctx) in
  if tx.nwrites = 0 then begin
    (* Read-only: the per-read revalidation kept the snapshot consistent;
       one final atomic validation pins its linearization point. The TLE
       fence must hold here too — a reader linearizing while the lock is
       held could observe a half-applied critical section that per-word
       validation cannot detect. *)
    Sim.charge ctx s.cfg.commit_cost;
    let fenced = s.fence <> 0 && Simmem.peek s.smem s.fence <> 0 in
    if fenced then begin
      set_witness tx ~addr:s.fence ~victim_wrote:false ~in_read_set:false
        ~in_write_set:false "stm.commit.fence";
      raise (Aborted Locked)
    end;
    if not (validate_reads tx && read_locks_clear tx) then begin
      capture_conflict tx "stm.commit";
      raise (Aborted Conflict)
    end
  end
  else begin
    (* Entering the lock phase: bump the heartbeat so contenders can tell
       a slow owner from a dead one. *)
    Simmem.write s.smem ctx (hb_addr s me) (Sim.clock ctx + 1);
    let nls = stripes tx in
    let ok = ref true in
    let failed_la = ref 0 in
    let i = ref 0 in
    while !ok && !i < nls do
      let la = tx.saddr.(!i) in
      ok := acquire tx la;
      if not !ok then failed_la := la;
      incr i
    done;
    if not !ok then begin
      release_owned tx;
      let la = !failed_la in
      let o = owner_of (Simmem.peek s.smem la) in
      set_witness tx ~lookup:la
        ?aggressor:(if o = 0 then None else Some (o - 1))
        ~addr:la ~victim_wrote:true ~in_read_set:false ~in_write_set:true
        "stm.commit.locked";
      raise (Aborted Locked)
    end;
    (* Locks held, nothing written: the window a crash must not wedge —
       the registered kill point for fault plans. *)
    Sim.fault_point ctx "stm.commit";
    Sim.tick ctx (s.cfg.validate_cost * (tx.nreads + 1));
    if not (validate_reads tx && read_locks_clear tx && writes_allocated tx)
    then begin
      release_owned tx;
      capture_conflict tx "stm.commit";
      raise (Aborted Conflict)
    end;
    (* Write version. Gv1 pays an atomic on the clock line per commit;
       Gv5 reads it plainly and keeps versions per-word monotone via the
       locked stripes' old versions. *)
    let wv =
      match s.cfg.clock_scheme with
      | Gv1 -> Simmem.fetch_add s.smem ctx s.clock_addr 1 + 1
      | Gv5 ->
        let c = Simmem.read s.smem ctx s.clock_addr in
        let maxv = ref c in
        for i = 0 to tx.nlocks - 1 do
          if ver_of tx.lold.(i) > !maxv then maxv := ver_of tx.lold.(i)
        done;
        !maxv + 1
    in
    (* The atomic commit point: charge + peek + commit_write only. *)
    Sim.charge ctx s.cfg.commit_cost;
    let mine = ref true in
    for i = 0 to tx.nlocks - 1 do
      if Simmem.peek s.smem tx.laddr.(i) <> locked_word (ver_of tx.lold.(i)) me then
        mine := false
    done;
    let fenced = s.fence <> 0 && Simmem.peek s.smem s.fence <> 0 in
    if
      not
        (!mine && (not fenced) && validate_reads tx && read_locks_clear tx
        && writes_allocated tx)
    then begin
      release_owned tx;
      if fenced then
        set_witness tx ~addr:s.fence ~victim_wrote:false ~in_read_set:false
          ~in_write_set:false "stm.commit.fence"
      else capture_conflict tx "stm.commit.final";
      raise (Aborted (if fenced then Locked else Conflict))
    end;
    for i = 0 to tx.nwrites - 1 do
      let ok = Simmem.Tx_plane.commit_write s.smem ctx tx.waddr.(i) tx.wval.(i) in
      assert ok
    done;
    for i = 0 to tx.nlocks - 1 do
      ignore (Simmem.Tx_plane.commit_write s.smem ctx tx.laddr.(i) (unlocked_word wv))
    done;
    tx.nlocks <- 0
  end;
  Sim.tick ctx 0

(* ------------------------------------------------------------------ *)
(* The retry loop.                                                     *)

let backoff s ctx n =
  Sim.tick ctx
    (Sim.Backoff.delay ~base:s.cfg.backoff_base ~cap:s.cfg.backoff_max (Sim.rng ctx) n)

(* Top-level (not a closure inside [atomic]) so a pooled transaction's
   fast path allocates nothing. *)
let rec attempt_loop s ctx tx budget f on_abort tr tid t0 n last =
  if budget > 0 && n >= budget then raise (Retry_exhausted last);
  Sim.tick ctx (s.cfg.start_cost + Sim.Rng.int (Sim.rng ctx) 16);
  (* Transaction begin is a full fence: the thread's pre-tx buffered
     stores must be visible before any tx read, or commit-time
     validation would validate against state the thread itself is about
     to overwrite. No-op under the [sc] model. *)
  Simmem.drain s.smem ctx;
  let t_att = Sim.clock ctx in
  reset_tx tx n;
  Obs.Metrics.incr_t s.c_attempts tid;
  tx.rv <- Simmem.read s.smem ctx s.clock_addr;
  match
    let v = f tx in
    commit tx;
    v
  with
  | v ->
    Obs.Metrics.incr_t s.c_commits tid;
    Obs.Metrics.observe s.h_writes tx.nwrites;
    Obs.Metrics.observe s.h_commit (Sim.clock ctx - t0);
    (match s.tap with
     | None -> ()
     | Some _ ->
       emit s ctx
         (Ev_commit { ev_reads = tx.nreads; ev_writes = tx.nwrites; ev_attempt = n }));
    (match tr with
     | None -> ()
     | Some sink ->
       Obs.Tracer.span sink ~tid ~name:"tx.stm" ~cat:"tx"
         ~args:
           [
             ("attempt", Obs.Json.Int n);
             ("reads", Obs.Json.Int tx.nreads);
             ("writes", Obs.Json.Int tx.nwrites);
           ]
         t_att (Sim.clock ctx));
    run_frees tx;
    Sim.note_progress ctx;
    v
  | exception Aborted r ->
    (match r with
     | Conflict -> Obs.Metrics.incr_t s.c_conflict tid
     | Locked -> Obs.Metrics.incr_t s.c_locked tid
     | Illegal -> Obs.Metrics.incr_t s.c_illegal tid
     | Explicit -> Obs.Metrics.incr_t s.c_explicit tid);
    let w = tx.witness in
    tx.witness <- None;
    (match w with Some wit -> Simmem.record_witness s.smem ctx wit | None -> ());
    s.last_w.(slot_of tid) <- w;
    (match s.tap with
     | None -> ()
     | Some _ -> emit s ctx (Ev_abort { ev_reason = r; ev_attempt = n; ev_witness = w }));
    (match tr with
     | None -> ()
     | Some sink ->
       Obs.Tracer.instant sink ~tid ~name:"tx.stm.abort" ~cat:"tx"
         ~args:
           [ ("reason", Obs.Json.Str (abort_label r)); ("attempt", Obs.Json.Int n) ]
         (Sim.clock ctx));
    Sim.tick ctx s.cfg.abort_cost;
    on_abort r;
    backoff s ctx n;
    attempt_loop s ctx tx budget f on_abort tr tid t0 (n + 1) r

let atomic s ctx ?max_attempts ?(on_abort = fun (_ : abort_reason) -> ()) f =
  let budget = match max_attempts with Some m -> m | None -> s.cfg.max_attempts in
  let tx = get_tx s ctx in
  tx.busy <- true;
  let t0 = Sim.clock ctx in
  let tid = Sim.tid ctx in
  let tr = Sim.tracer ctx in
  match attempt_loop s ctx tx budget f on_abort tr tid t0 0 Conflict with
  | v ->
    tx.busy <- false;
    v
  | exception e ->
    tx.busy <- false;
    raise e
