(** TL2-style software transactional memory over {!Simmem}.

    The unbounded slow path beside {!Htm}'s simulated Rock: where the
    hardware path dies at 32 stores ([Overflow]) or under environmental
    aborts, this layer commits transactions of any size in software —
    at the classic STM price of per-access instrumentation (every
    transactional load also reads a lock-table word) and commit-time
    validation. The escalation policy in {!Htm} routes transactions here
    when the hardware gives up, so the machine degrades to instrumented
    parallelism instead of a single global lock.

    The design is TL2 (Dice, Shalev, Shavit 2006) adapted to the
    simulator's versioned words:

    - a {b global version clock} word in simulated memory. Two schemes:
      [Gv1] advances it with a fetch-and-add on every writing commit
      (precise, but every commit contends one cache line), [Gv5] reads it
      plainly at commit ([wv = clock + 1]) and lets {e aborting readers}
      advance it — no commit-time atomic, at the cost of one extra abort
      per thread per clock value when reads hit fresh data;
    - a {b striped write-lock table}: [lock_slots] words in simulated
      memory, one per address stripe. A lock word encodes
      [version lsl 7 lor (owner_tid + 1)] — the low 7 bits carry the
      owner's thread id so a crashed holder is identifiable and the lock
      {b stealable}: contenders watch the owner's heartbeat word and
      revert the lock word once it stays silent for [steal_timeout]
      cycles. A falsely stolen (live) owner re-verifies ownership at its
      commit point and aborts harmlessly — stealing is always safe, the
      timeout only tunes how long a dead owner can stall a stripe;
    - {b speculative reads} with full read-set revalidation on every
      access (opacity: a doomed transaction never acts on an inconsistent
      snapshot), version-stamped against {!Simmem}'s own word versions —
      so conflicts with hardware transactions, TLE sections and plain
      stores are all detected without those paths knowing the STM exists;
    - {b commit-time write-back}: acquire the write set's lock stripes,
      validate the read set, take a write version, then re-verify
      ownership + revalidate + write back + release {e atomically in
      virtual time} ([Sim.charge] only). A thread killed between lock
      acquisition and write-back — the registered ["stm.commit"]
      {!Sim.fault_point} — leaves locks that survivors steal; it can
      never leave a half-applied write set.

    Transactions must not nest, and blocks must be re-executable from
    scratch (aborts re-run the block), exactly as with {!Htm.atomic}. *)

(** Global-version-clock advancement scheme. *)
type clock_scheme =
  | Gv1  (** fetch-and-add per writing commit: precise, contended *)
  | Gv5
      (** plain read at commit, aborting readers advance the clock:
          contention-free commits, occasional false aborts *)

type config = {
  clock_scheme : clock_scheme;
  lock_slots : int;  (** stripes in the write-lock table; power of two *)
  start_cost : int;  (** per-attempt setup on top of the clock-word read *)
  read_cost : int;  (** per-load instrumentation (the lock-word probe is
                        additionally paid as a real memory access) *)
  write_cost : int;  (** per-buffered-store instrumentation *)
  validate_cost : int;  (** commit-time validation, per read-set entry *)
  commit_cost : int;
  abort_cost : int;
  backoff_base : int;
  backoff_max : int;
  steal_timeout : int;
      (** cycles a held lock's owner heartbeat must stay silent before a
          contender steals the lock. A liveness/throughput knob only:
          stealing from a live owner is safe (it re-verifies ownership at
          its commit point), so this need only exceed the longest
          legitimate lock-hold phase to avoid gratuitous owner aborts. *)
  max_attempts : int;  (** retry budget; [0] = retry forever *)
}

val default_config : config

type abort_reason =
  | Conflict  (** read-set validation failed, or a stale (post-[rv]) read *)
  | Locked  (** a write-lock stripe was held by a live contender *)
  | Illegal  (** transactional access to freed/unmapped memory *)
  | Explicit  (** the block called {!abort} *)

val pp_abort_reason : Format.formatter -> abort_reason -> unit

type stats = {
  commits : int;
  aborts_conflict : int;
  aborts_locked : int;
  aborts_illegal : int;
  aborts_explicit : int;
  attempts : int;  (** transaction attempts started (commits + aborts) *)
  steals : int;  (** locks recovered from silent (crashed) owners *)
  clock_bumps : int;  (** Gv5 reader-side clock advances *)
}

type t
(** An STM domain over one {!Simmem.t}: clock word, lock table, heartbeat
    words, metrics. *)

val create : ?config:config -> ?metrics:Obs.Metrics.t -> Simmem.t -> t
(** Allocates the clock, lock-table and heartbeat words in the heap (each
    region cache-line-separated and {!Simmem.label}ed). [metrics] chains
    the [stm.*] registry to a parent aggregate, mirroring {!Htm.create}. *)

val mem : t -> Simmem.t
val config : t -> config

val metrics : t -> Obs.Metrics.t
(** [stm.commits], the [stm.aborts.*] breakdown, [stm.attempts] (all
    per-thread), [stm.steals], [stm.clock_bumps], and the
    [stm.commit_cycles] / [stm.writes_per_tx] histograms. *)

val stats : t -> stats
val reset_stats : t -> unit

val set_fence : t -> int -> unit
(** Address of a global-lock word (the TLE lock) that must be observed
    unheld at every commit point: an STM commit never lands inside a TLE
    critical section. [0] (the default) disables the check. *)

(** Transaction-event tap, mirroring {!Htm.set_tap}: {!Htm} forwards
    these into its own path-attributed [tx_event] stream. *)
type tx_event =
  | Ev_commit of { ev_reads : int; ev_writes : int; ev_attempt : int }
  | Ev_abort of {
      ev_reason : abort_reason;
      ev_attempt : int;
      ev_witness : Obs.Forensics.witness option;
          (** the conflict that doomed the attempt, when one was captured
              at the failing validation / lock probe *)
    }
  | Ev_steal of { ev_victim : int }

val set_tap : t -> (tid:int -> clock:int -> tx_event -> unit) option -> unit

val last_witness : t -> Sim.tctx -> Obs.Forensics.witness option
(** The acting thread's most recent abort witness; {!Htm} reads it when
    STM budget exhaustion drives the stm→tle escalation hop. *)

exception Aborted of abort_reason
(** Internal control flow of an attempt; escapes only through buggy
    catch-alls inside a block. *)

exception Retry_exhausted of abort_reason
(** Raised by {!atomic} when the attempt budget ran out; carries the last
    abort reason. *)

type tx

val atomic :
  t ->
  Sim.tctx ->
  ?max_attempts:int ->
  ?on_abort:(abort_reason -> unit) ->
  (tx -> 'a) ->
  'a
(** [atomic s ctx f] runs [f] as a software transaction, retrying with
    randomized exponential backoff until it commits. [max_attempts]
    overrides the config budget for this call ({!Htm}'s escalation policy
    uses it to bound the STM phase before falling to TLE). *)

val read : tx -> int -> int
(** Transactional load: lock-word probe, value fetch, read-set note, full
    revalidation. Aborts ([Conflict]) on a post-[rv] version or a locked
    stripe; [Illegal] on freed memory (the software analogue of the
    hardware sandbox: TL2 validation makes the freed read harmless). *)

val write : tx -> int -> int -> unit
(** Transactional store, buffered until commit. No capacity bound. *)

val record : tx -> unit
(** Account one process-local result-set store ({!Htm.record}'s contract);
    pays the instrumentation cost, consumes no capacity. *)

val abort : tx -> 'a

val defer_free : tx -> int -> unit
(** Free the block after a successful commit; discarded on abort. *)

val attempt_number : tx -> int
