(** Concurrent FIFO queues (paper §1.1): the HTM queue and the two
    Michael-Scott configurations it is compared against in Figure 1. *)

module Intf = Queue_intf
module Htm_queue = Htm_queue
module Ms_queue = Ms_queue
module Ms_rop_queue = Ms_rop_queue
module Ms_collect_queue = Ms_collect_queue
module Ms_epoch_queue = Ms_epoch_queue

(** The three queues of the paper's Figure 1. *)
let all : Queue_intf.maker list = [ Htm_queue.maker; Ms_queue.maker; Ms_rop_queue.maker ]

(** Beyond the paper: Michael-Scott reclaimed through a Dynamic Collect
    object (the §1.2 connection made concrete). *)
let extensions : Queue_intf.maker list = [ Ms_collect_queue.maker ]

let all_with_extensions = all @ extensions

(** Michael-Scott under epoch-based reclamation — the modern
    quiescence-style competitor the allocator study ([bench placement])
    sweeps beside ROP and HTM. Deliberately {e not} in {!extensions}:
    every sweep built over {!all_with_extensions} (chaos, the explore
    smoke over all queues, the property suites) feeds a committed
    baseline or a pinned scenario list, and those stay byte-identical;
    the EBR cells live in the experiments that opt in by name. *)
let ebr : Queue_intf.maker = Ms_epoch_queue.maker

let find_maker name =
  List.find_opt
    (fun (m : Queue_intf.maker) -> String.equal m.queue_name name)
    (all_with_extensions @ [ ebr ])
