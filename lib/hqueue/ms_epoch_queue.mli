(** Michael-Scott with epoch-based reclamation (EBR): one epoch
    announcement + fence per {e operation} (against ROP's per traversal
    step), per-thread limbo buckets freed two grace periods after
    retirement. Reclamation is only eventual — one stalled reader parks
    the epoch and limbo grows unboundedly — the classic EBR trade.

    Instantiate through {!Queue_intf.maker}[.make]. *)

val maker : Queue_intf.maker
(** The safe configuration: two grace periods, amortized epoch-advance
    attempts. Registered as ["MichaelScott+EBR"]. *)

val mk_maker : ?grace:int -> ?advance_every:int -> string -> Queue_intf.maker
(** Test/explorer constructor. [grace] is the number of epochs a retired
    node must age before its bucket is freed — [2] (default) is correct;
    [1] is the classic premature-free bug the [broken-epoch] scenario
    exists to catch. [advance_every] is the number of retires between
    epoch-advance attempts (default amortized over the thread count;
    explorer scenarios pass [1] so reclamation is reachable in a handful
    of operations). *)
