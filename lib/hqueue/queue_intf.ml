(** Common interface for the concurrent FIFO queues of paper §1.1. *)

type instance = {
  name : string;
  enqueue : Sim.tctx -> int -> unit;
  dequeue : Sim.tctx -> int option;
  dequeue_drop : Sim.tctx -> bool;
      (** Dequeue and discard the value: [true] iff an element was removed.
          Performs exactly the same simulated memory operations as
          {!dequeue} but never materialises the [option] — the form the
          throughput benchmarks' hot loops use. *)
  destroy : Sim.tctx -> unit;
      (** Free everything the queue still owns (remaining entries, pools,
          announcement arrays). Only valid when quiescent. *)
}

type maker = {
  queue_name : string;
  reclaims : bool;
      (** Whether dequeued entries are returned to the allocator (the HTM
          queue and the ROP variant) or parked in thread pools forever
          (plain Michael-Scott). *)
  make : Htm.t -> Sim.tctx -> num_threads:int -> instance;
}
