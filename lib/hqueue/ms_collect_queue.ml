(** Michael-Scott queue reclaimed through a {e Dynamic Collect} object —
    the connection the paper's §1.2 draws: announcement-based reclamation
    schemes (hazard pointers, ROP) {e are} Dynamic Collect clients, and a
    dynamic collect object lifts their one-slot-per-possible-thread
    limitation.

    Where {!Ms_rop_queue} announces into a fixed array sized for a known
    maximum thread count, this queue announces through handles of an
    {!Collect.Array_dyn_append_dereg} object, registered lazily on a
    thread's first operation. The announcement space therefore tracks the
    number of threads that actually use the queue — the space adaptivity
    §1.2 asks for — and the reclaimer's scan is a [collect].

    Announcement stores go through the collect object's [update] (a
    transaction), which also provides the store-load ordering a hazard
    write needs. The no-announcement marker is the value 1 (never a block
    address). *)

let off_val = 0
let off_next = 1
let node_words = 2

(* head and tail words are padded to separate cache lines *)
let hdr_head = 0
let hdr_tail = 8
let hdr_words = 16

let no_announcement = 1

type t = {
  htm : Htm.t;
  hdr : int;
  announcements : Collect.Intf.instance;
  handles : (int * int) option array; (* per-thread announcement handles *)
  retired : int list array;
  retired_count : int array;
  scan_threshold : int;
}

let create htm ctx ~num_threads =
  let mem = Htm.mem htm in
  let hdr = Simmem.malloc mem ctx hdr_words in
  let sentinel = Simmem.malloc mem ctx node_words in
  Simmem.label mem ~name:"MSQueue+Collect.header" ~base:hdr ~words:hdr_words;
  Simmem.label mem ~name:"MSQueue+Collect.node" ~base:sentinel ~words:node_words;
  Simmem.write mem ctx (hdr + hdr_head) sentinel;
  Simmem.write mem ctx (hdr + hdr_tail) sentinel;
  let announcements =
    Collect.Array_dyn_append_dereg.maker.make htm ctx
      { Collect.Intf.max_slots = 2 * (num_threads + 1); num_threads;
        step = Collect.Intf.Fixed 8; min_size = 4 }
  in
  {
    htm;
    hdr;
    announcements;
    handles = Array.make (Sim.max_threads + 1) None;
    retired = Array.make (Sim.max_threads + 1) [];
    retired_count = Array.make (Sim.max_threads + 1) 0;
    scan_threshold = (4 * num_threads) + 4;
  }

(* Lazy per-thread registration: the first operation by a thread claims
   its two announcement handles; the object grows with actual users. *)
let my_handles t ctx =
  let tid = Sim.tid ctx in
  match t.handles.(tid) with
  | Some hs -> hs
  | None ->
    let h0 = t.announcements.register ctx no_announcement in
    let h1 = t.announcements.register ctx no_announcement in
    t.handles.(tid) <- Some (h0, h1);
    (h0, h1)

let announce t ctx i node =
  let h0, h1 = my_handles t ctx in
  t.announcements.update ctx (if i = 0 then h0 else h1) node

let clear_announcements t ctx =
  announce t ctx 0 no_announcement;
  announce t ctx 1 no_announcement

(* Free every retired node not currently announced by anyone: the scan is
   a Dynamic Collect. *)
let scan t ctx =
  let mem = Htm.mem t.htm in
  let buf = Sim.Ibuf.create () in
  t.announcements.collect ctx buf;
  let tid = Sim.tid ctx in
  let announced node = Sim.Ibuf.fold (fun acc v -> acc || v = node) false buf in
  let keep, free_list = List.partition announced t.retired.(tid) in
  List.iter (fun node -> Simmem.free mem ctx node) free_list;
  t.retired.(tid) <- keep;
  t.retired_count.(tid) <- List.length keep

let retire t ctx node =
  let tid = Sim.tid ctx in
  t.retired.(tid) <- node :: t.retired.(tid);
  t.retired_count.(tid) <- t.retired_count.(tid) + 1;
  if t.retired_count.(tid) >= t.scan_threshold then scan t ctx

let enqueue t ctx v =
  let mem = Htm.mem t.htm in
  let node = Simmem.malloc mem ctx node_words in
  Simmem.label mem ~name:"MSQueue+Collect.node" ~base:node ~words:node_words;
  Simmem.write mem ctx (node + off_val) v;
  let b = Sim.Backoff.create ctx in
  let retry loop =
    Sim.Backoff.once b;
    loop ()
  in
  let rec loop () =
    let tail = Simmem.read mem ctx (t.hdr + hdr_tail) in
    announce t ctx 0 tail;
    if Simmem.read mem ctx (t.hdr + hdr_tail) <> tail then retry loop
    else begin
      let next = Simmem.read mem ctx (tail + off_next) in
      if Simmem.read mem ctx (t.hdr + hdr_tail) <> tail then retry loop
      else if next <> 0 then begin
        let (_ : bool) = Simmem.cas mem ctx (t.hdr + hdr_tail) ~expected:tail ~desired:next in
        retry loop
      end
      else if Simmem.cas mem ctx (tail + off_next) ~expected:0 ~desired:node then begin
        let (_ : bool) = Simmem.cas mem ctx (t.hdr + hdr_tail) ~expected:tail ~desired:node in
        ()
      end
      else retry loop
    end
  in
  loop ();
  announce t ctx 0 no_announcement

let dequeue t ctx =
  let mem = Htm.mem t.htm in
  let b = Sim.Backoff.create ctx in
  let retry loop =
    Sim.Backoff.once b;
    loop ()
  in
  let rec loop () =
    let head = Simmem.read mem ctx (t.hdr + hdr_head) in
    announce t ctx 0 head;
    if Simmem.read mem ctx (t.hdr + hdr_head) <> head then retry loop
    else begin
      let tail = Simmem.read mem ctx (t.hdr + hdr_tail) in
      let next = Simmem.read mem ctx (head + off_next) in
      if next <> 0 then announce t ctx 1 next;
      if Simmem.read mem ctx (t.hdr + hdr_head) <> head then retry loop
      else if head = tail then begin
        if next = 0 then None
        else begin
          let (_ : bool) =
            Simmem.cas mem ctx (t.hdr + hdr_tail) ~expected:tail ~desired:next
          in
          retry loop
        end
      end
      else begin
        let v = Simmem.read mem ctx (next + off_val) in
        if Simmem.cas mem ctx (t.hdr + hdr_head) ~expected:head ~desired:next then begin
          retire t ctx head;
          Some v
        end
        else retry loop
      end
    end
  in
  let r = loop () in
  clear_announcements t ctx;
  r

let destroy t ctx =
  let mem = Htm.mem t.htm in
  Array.iteri
    (fun tid nodes ->
      List.iter (fun node -> Simmem.free mem ctx node) nodes;
      t.retired.(tid) <- [];
      t.retired_count.(tid) <- 0)
    t.retired;
  Array.iteri
    (fun tid -> function
      | None -> ()
      | Some (h0, h1) ->
        t.announcements.deregister ctx h0;
        t.announcements.deregister ctx h1;
        t.handles.(tid) <- None)
    t.handles;
  t.announcements.destroy ctx;
  let rec free_from node =
    if node <> 0 then begin
      let next = Simmem.read mem ctx (node + off_next) in
      Simmem.free mem ctx node;
      free_from next
    end
  in
  free_from (Simmem.read mem ctx (t.hdr + hdr_head));
  Simmem.free mem ctx t.hdr

let maker : Queue_intf.maker =
  {
    queue_name = "MichaelScott+Collect";
    reclaims = true;
    make =
      (fun htm ctx ~num_threads ->
        let t = create htm ctx ~num_threads in
        {
          Queue_intf.name = "MichaelScott+Collect";
          enqueue = enqueue t;
          dequeue = dequeue t;
          dequeue_drop = (fun ctx -> Option.is_some (dequeue t ctx));
          destroy = destroy t;
        });
  }
