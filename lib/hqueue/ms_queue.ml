(** The Michael-Scott lock-free queue (PODC '96), with counted pointers and
    per-thread node pools — the state of the art the paper compares
    against.

    Because a dequeued node may still be examined by concurrent operations,
    it can never be handed back to the allocator: it parks in the dequeuing
    thread's private pool and is recycled by that thread's later enqueues.
    Recycling makes the ABA problem real, hence the tag counters packed
    into every pointer word. The cost the paper emphasises: even at
    quiescence the memory footprint is proportional to the {e historical
    maximum} queue length (measured by the [space] benchmark).

    Pointer packing: address in bits 0–31, tag in bits 32–60. *)

let off_val = 0
let off_next = 1
let node_words = 2

(* head and tail words are padded to separate cache lines, as any
   practical implementation does *)
let hdr_head = 0
let hdr_tail = 8
let hdr_words = 16

let ptr_of w = w land 0xFFFFFFFF
let tag_of w = w lsr 32
let pack ~tag ~ptr = ((tag land 0x0FFFFFFF) lsl 32) lor ptr

type t = {
  htm : Htm.t;
  hdr : int;
  pools : int list array; (* per-thread free node pools *)
}

let alloc_node t ctx =
  let tid = Sim.tid ctx in
  match t.pools.(tid) with
  | node :: rest ->
    t.pools.(tid) <- rest;
    node
  | [] ->
    let mem = Htm.mem t.htm in
    let node = Simmem.malloc mem ctx node_words in
    Simmem.label mem ~name:"MSQueue.node" ~base:node ~words:node_words;
    node

let retire_node t ctx node =
  let tid = Sim.tid ctx in
  t.pools.(tid) <- node :: t.pools.(tid)

let create htm ctx =
  let mem = Htm.mem htm in
  let hdr = Simmem.malloc mem ctx hdr_words in
  let sentinel = Simmem.malloc mem ctx node_words in
  Simmem.label mem ~name:"MSQueue.header" ~base:hdr ~words:hdr_words;
  Simmem.label mem ~name:"MSQueue.node" ~base:sentinel ~words:node_words;
  Simmem.write mem ctx (hdr + hdr_head) (pack ~tag:0 ~ptr:sentinel);
  Simmem.write mem ctx (hdr + hdr_tail) (pack ~tag:0 ~ptr:sentinel);
  { htm; hdr; pools = Array.make (Sim.max_threads + 1) [] }

let enqueue t ctx v =
  let mem = Htm.mem t.htm in
  let node = alloc_node t ctx in
  Simmem.write mem ctx (node + off_val) v;
  (* Recycled nodes keep their next-word tag monotonic across reuses. *)
  let old_next = Simmem.read mem ctx (node + off_next) in
  Simmem.write mem ctx (node + off_next) (pack ~tag:(tag_of old_next + 1) ~ptr:0);
  let b = Sim.Backoff.create ctx in
  let retry loop =
    Sim.Backoff.once b;
    loop ()
  in
  let rec loop () =
    let tail = Simmem.read mem ctx (t.hdr + hdr_tail) in
    let tptr = ptr_of tail in
    let next = Simmem.read mem ctx (tptr + off_next) in
    if Simmem.read mem ctx (t.hdr + hdr_tail) = tail then begin
      if ptr_of next = 0 then begin
        if
          Simmem.cas mem ctx (tptr + off_next) ~expected:next
            ~desired:(pack ~tag:(tag_of next + 1) ~ptr:node)
        then begin
          let (_ : bool) =
            Simmem.cas mem ctx (t.hdr + hdr_tail) ~expected:tail
              ~desired:(pack ~tag:(tag_of tail + 1) ~ptr:node)
          in
          ()
        end
        else retry loop
      end
      else begin
        (* Help swing the lagging tail forward. *)
        let (_ : bool) =
          Simmem.cas mem ctx (t.hdr + hdr_tail) ~expected:tail
            ~desired:(pack ~tag:(tag_of tail + 1) ~ptr:(ptr_of next))
        in
        retry loop
      end
    end
    else retry loop
  in
  loop ()

let dequeue t ctx =
  let mem = Htm.mem t.htm in
  let b = Sim.Backoff.create ctx in
  let retry loop =
    Sim.Backoff.once b;
    loop ()
  in
  let rec loop () =
    let head = Simmem.read mem ctx (t.hdr + hdr_head) in
    let tail = Simmem.read mem ctx (t.hdr + hdr_tail) in
    let next = Simmem.read mem ctx (ptr_of head + off_next) in
    if Simmem.read mem ctx (t.hdr + hdr_head) = head then begin
      if ptr_of head = ptr_of tail then begin
        if ptr_of next = 0 then None
        else begin
          let (_ : bool) =
            Simmem.cas mem ctx (t.hdr + hdr_tail) ~expected:tail
              ~desired:(pack ~tag:(tag_of tail + 1) ~ptr:(ptr_of next))
          in
          retry loop
        end
      end
      else begin
        (* Read the value before the CAS: afterwards the node may already
           be recycled by another thread. *)
        let v = Simmem.read mem ctx (ptr_of next + off_val) in
        if
          Simmem.cas mem ctx (t.hdr + hdr_head) ~expected:head
            ~desired:(pack ~tag:(tag_of head + 1) ~ptr:(ptr_of next))
        then begin
          retire_node t ctx (ptr_of head);
          Some v
        end
        else retry loop
      end
    end
    else retry loop
  in
  loop ()

let destroy t ctx =
  let mem = Htm.mem t.htm in
  Array.iteri
    (fun tid pool ->
      List.iter (fun node -> Simmem.free mem ctx node) pool;
      t.pools.(tid) <- [])
    t.pools;
  let rec free_from node =
    if node <> 0 then begin
      let next = ptr_of (Simmem.read mem ctx (node + off_next)) in
      Simmem.free mem ctx node;
      free_from next
    end
  in
  free_from (ptr_of (Simmem.read mem ctx (t.hdr + hdr_head)));
  Simmem.free mem ctx t.hdr

let maker : Queue_intf.maker =
  {
    queue_name = "MichaelScott";
    reclaims = false;
    make =
      (fun htm ctx ~num_threads:_ ->
        let t = create htm ctx in
        {
          Queue_intf.name = "MichaelScott";
          enqueue = enqueue t;
          dequeue = dequeue t;
          destroy = destroy t;
        });
  }
