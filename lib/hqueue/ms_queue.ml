(** The Michael-Scott lock-free queue (PODC '96), with counted pointers and
    per-thread node pools — the state of the art the paper compares
    against.

    Because a dequeued node may still be examined by concurrent operations,
    it can never be handed back to the allocator: it parks in the dequeuing
    thread's private pool and is recycled by that thread's later enqueues.
    Recycling makes the ABA problem real, hence the tag counters packed
    into every pointer word. The cost the paper emphasises: even at
    quiescence the memory footprint is proportional to the {e historical
    maximum} queue length (measured by the [space] benchmark).

    Pointer packing: address in bits 0–31, tag in bits 32–60. *)

let off_val = 0
let off_next = 1
let node_words = 2

(* head and tail words are padded to separate cache lines, as any
   practical implementation does *)
let hdr_head = 0
let hdr_tail = 8
let hdr_words = 16

let ptr_of w = w land 0xFFFFFFFF
let tag_of w = w lsr 32
let pack ~tag ~ptr = ((tag land 0x0FFFFFFF) lsl 32) lor ptr

type t = {
  htm : Htm.t;
  hdr : int;
  (* per-thread free node pools, as LIFO stacks in flat int arrays *)
  pools : int array array;
  pool_n : int array;
  deq_val : int array; (* per-thread value of the last successful dequeue *)
}

let alloc_node t ctx =
  let tid = Sim.tid ctx in
  let n = t.pool_n.(tid) in
  if n > 0 then begin
    t.pool_n.(tid) <- n - 1;
    t.pools.(tid).(n - 1)
  end
  else begin
    let mem = Htm.mem t.htm in
    let node = Simmem.malloc mem ctx node_words in
    Simmem.label mem ~name:"MSQueue.node" ~base:node ~words:node_words;
    node
  end

let retire_node t ctx node =
  let tid = Sim.tid ctx in
  let n = t.pool_n.(tid) in
  let pool = t.pools.(tid) in
  if n = Array.length pool then begin
    let bigger = Array.make (max 8 (2 * n)) 0 in
    Array.blit pool 0 bigger 0 n;
    t.pools.(tid) <- bigger
  end;
  t.pools.(tid).(n) <- node;
  t.pool_n.(tid) <- n + 1

let create htm ctx =
  let mem = Htm.mem htm in
  let hdr = Simmem.malloc mem ctx hdr_words in
  let sentinel = Simmem.malloc mem ctx node_words in
  Simmem.label mem ~name:"MSQueue.header" ~base:hdr ~words:hdr_words;
  Simmem.label mem ~name:"MSQueue.node" ~base:sentinel ~words:node_words;
  Simmem.write mem ctx (hdr + hdr_head) (pack ~tag:0 ~ptr:sentinel);
  Simmem.write mem ctx (hdr + hdr_tail) (pack ~tag:0 ~ptr:sentinel);
  {
    htm;
    hdr;
    pools = Array.make (Sim.max_threads + 1) [||];
    pool_n = Array.make (Sim.max_threads + 1) 0;
    deq_val = Array.make (Sim.max_threads + 1) 0;
  }

(* One randomized backoff delay, inlined from [Sim.Backoff.once] (same
   draw, same tick) so the retry loops below carry the bound as a plain
   argument instead of allocating a [Backoff.t] per operation. *)
let backoff_base = 50
let backoff_cap = 4096

let backoff_once ctx bound =
  Sim.tick ctx ((bound / 2) + Sim.Rng.int (Sim.rng ctx) (max 1 (bound / 2)));
  min backoff_cap (bound * 2)

let rec enq_loop t mem ctx node bound =
  let tail = Simmem.read mem ctx (t.hdr + hdr_tail) in
  let tptr = ptr_of tail in
  let next = Simmem.read mem ctx (tptr + off_next) in
  if Simmem.read mem ctx (t.hdr + hdr_tail) = tail then begin
    if ptr_of next = 0 then begin
      if
        Simmem.cas mem ctx (tptr + off_next) ~expected:next
          ~desired:(pack ~tag:(tag_of next + 1) ~ptr:node)
      then begin
        let (_ : bool) =
          Simmem.cas mem ctx (t.hdr + hdr_tail) ~expected:tail
            ~desired:(pack ~tag:(tag_of tail + 1) ~ptr:node)
        in
        ()
      end
      else enq_loop t mem ctx node (backoff_once ctx bound)
    end
    else begin
      (* Help swing the lagging tail forward. *)
      let (_ : bool) =
        Simmem.cas mem ctx (t.hdr + hdr_tail) ~expected:tail
          ~desired:(pack ~tag:(tag_of tail + 1) ~ptr:(ptr_of next))
      in
      enq_loop t mem ctx node (backoff_once ctx bound)
    end
  end
  else enq_loop t mem ctx node (backoff_once ctx bound)

let enqueue t ctx v =
  let mem = Htm.mem t.htm in
  let node = alloc_node t ctx in
  Simmem.write mem ctx (node + off_val) v;
  (* Recycled nodes keep their next-word tag monotonic across reuses. *)
  let old_next = Simmem.read mem ctx (node + off_next) in
  Simmem.write mem ctx (node + off_next) (pack ~tag:(tag_of old_next + 1) ~ptr:0);
  enq_loop t mem ctx node backoff_base

(* Returns whether an element was removed; the value parks in the caller's
   [deq_val] slot (read before the CAS — afterwards the node may already
   be recycled by another thread). *)
let rec deq_loop t mem ctx bound =
  let head = Simmem.read mem ctx (t.hdr + hdr_head) in
  let tail = Simmem.read mem ctx (t.hdr + hdr_tail) in
  let next = Simmem.read mem ctx (ptr_of head + off_next) in
  if Simmem.read mem ctx (t.hdr + hdr_head) = head then begin
    if ptr_of head = ptr_of tail then begin
      if ptr_of next = 0 then false
      else begin
        let (_ : bool) =
          Simmem.cas mem ctx (t.hdr + hdr_tail) ~expected:tail
            ~desired:(pack ~tag:(tag_of tail + 1) ~ptr:(ptr_of next))
        in
        deq_loop t mem ctx (backoff_once ctx bound)
      end
    end
    else begin
      let v = Simmem.read mem ctx (ptr_of next + off_val) in
      if
        Simmem.cas mem ctx (t.hdr + hdr_head) ~expected:head
          ~desired:(pack ~tag:(tag_of head + 1) ~ptr:(ptr_of next))
      then begin
        t.deq_val.(Sim.tid ctx) <- v;
        retire_node t ctx (ptr_of head);
        true
      end
      else deq_loop t mem ctx (backoff_once ctx bound)
    end
  end
  else deq_loop t mem ctx (backoff_once ctx bound)

let dequeue_drop t ctx = deq_loop t (Htm.mem t.htm) ctx backoff_base

let dequeue t ctx =
  if dequeue_drop t ctx then Some t.deq_val.(Sim.tid ctx) else None

let destroy t ctx =
  let mem = Htm.mem t.htm in
  Array.iteri
    (fun tid pool ->
      (* newest first: the order the former free-list representation used *)
      for i = t.pool_n.(tid) - 1 downto 0 do
        Simmem.free mem ctx pool.(i)
      done;
      t.pool_n.(tid) <- 0)
    t.pools;
  let rec free_from node =
    if node <> 0 then begin
      let next = ptr_of (Simmem.read mem ctx (node + off_next)) in
      Simmem.free mem ctx node;
      free_from next
    end
  in
  free_from (ptr_of (Simmem.read mem ctx (t.hdr + hdr_head)));
  Simmem.free mem ctx t.hdr

let maker : Queue_intf.maker =
  {
    queue_name = "MichaelScott";
    reclaims = false;
    make =
      (fun htm ctx ~num_threads:_ ->
        let t = create htm ctx in
        {
          Queue_intf.name = "MichaelScott";
          enqueue = enqueue t;
          dequeue = dequeue t;
          dequeue_drop = dequeue_drop t;
          destroy = destroy t;
        });
  }
