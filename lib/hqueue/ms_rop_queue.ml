(** Michael-Scott queue with announcement-based reclamation — the paper's
    "Michael-Scott ROP" configuration (§1.1, Figure 1).

    The Repeat Offender Problem mechanism and Michael's hazard pointers are
    the same announce-validate-scan discipline; we implement the
    hazard-pointer formulation (Michael, IEEE TPDS 2004): before
    dereferencing a node, a thread {e announces} it in a shared array and
    re-validates the source pointer; before freeing a node, the reclaimer
    {e scans} the announcements and defers any node still announced. This
    buys real reclamation (unlike the pooled Michael-Scott) at the price
    the paper measures: an announcement store plus a validation re-read on
    every traversal step, and periodic scans.

    Announced nodes cannot be recycled mid-operation, which also kills the
    ABA case, so pointers need no tags here. *)

let off_val = 0
let off_next = 1
let node_words = 2

(* head and tail words are padded to separate cache lines *)
let hdr_head = 0
let hdr_tail = 8
let hdr_words = 16

let hazards_per_thread = 2

type t = {
  htm : Htm.t;
  hdr : int;
  hz : int; (* announcement array: hazards_per_thread words per slot *)
  num_threads : int;
  (* per-thread retired-but-not-yet-free nodes, as stacks in flat arrays
     (index 0 oldest) *)
  retired : int array array;
  retired_count : int array;
  scan_threshold : int;
  (* per-thread scan scratch: snapshot of the hazard array. Must be
     per-thread: the snapshot reads yield, so two in-flight scans would
     clobber a shared buffer. *)
  announced : int array array;
  deq_val : int array; (* per-thread value of the last successful dequeue *)
}

let slot_index t ctx =
  let tid = Sim.tid ctx in
  if tid = Sim.boot_tid then t.num_threads
  else if tid < t.num_threads then tid
  else invalid_arg "Ms_rop_queue: thread id outside the declared range"

let hazard_addr t ctx i = t.hz + (hazards_per_thread * slot_index t ctx) + i

(* An announcement must be globally visible before the validating re-read,
   which requires a store-load fence (membar #StoreLoad on SPARC). This
   fence, paid on every traversal step, is the heart of the 35–75 %
   overhead the paper measures for ROP-style reclamation. [Sim.fence]
   drains the thread's store buffer under a weak memory model — without
   it, the announcement can sit invisible in the buffer while a reclaimer
   scans, misses it, and frees the node (the `ms-nofence` mutant in
   lib/explore demonstrates exactly that). Under [sc] it is a pure
   [fence_cost] tick, as before. *)
let fence_cost = 60

let announce t ctx i node =
  Simmem.write (Htm.mem t.htm) ctx (hazard_addr t ctx i) node;
  Sim.fence ~cost:fence_cost ctx

let clear_announcements t ctx =
  announce t ctx 0 0;
  announce t ctx 1 0

let create htm ctx ~num_threads =
  let mem = Htm.mem htm in
  let hdr = Simmem.malloc mem ctx hdr_words in
  let hz = Simmem.malloc mem ctx (hazards_per_thread * (num_threads + 1)) in
  let sentinel = Simmem.malloc mem ctx node_words in
  Simmem.label mem ~name:"MSQueue+ROP.header" ~base:hdr ~words:hdr_words;
  Simmem.label mem ~name:"MSQueue+ROP.hazards" ~base:hz
    ~words:(hazards_per_thread * (num_threads + 1));
  Simmem.label mem ~name:"MSQueue+ROP.node" ~base:sentinel ~words:node_words;
  Simmem.write mem ctx (hdr + hdr_head) sentinel;
  Simmem.write mem ctx (hdr + hdr_tail) sentinel;
  {
    htm;
    hdr;
    hz;
    num_threads;
    retired = Array.make (Sim.max_threads + 1) [||];
    retired_count = Array.make (Sim.max_threads + 1) 0;
    scan_threshold = (2 * hazards_per_thread * (num_threads + 1)) + 2;
    announced = Array.make (Sim.max_threads + 1) [||];
    deq_val = Array.make (Sim.max_threads + 1) 0;
  }

let is_announced snap nslots node =
  let i = ref 0 in
  while !i < nslots && snap.(!i) <> node do incr i done;
  !i < nslots

(* Free every retired node not currently announced by anyone. One snapshot
   of the hazard array (each slot read once, paying its coherence cost),
   then pure membership scans: first free the doomed nodes newest-first,
   then compact the survivors in place. The snapshot lands in this
   thread's own scratch buffer (grown on first use): the snapshot reads
   and the frees both yield, so a concurrent scan by another thread must
   not share it. *)
let scan t ctx =
  let mem = Htm.mem t.htm in
  let nslots = hazards_per_thread * (t.num_threads + 1) in
  let tid = Sim.tid ctx in
  if Array.length t.announced.(tid) < nslots then
    t.announced.(tid) <- Array.make nslots 0;
  let snap = t.announced.(tid) in
  for i = 0 to nslots - 1 do
    snap.(i) <- Simmem.read mem ctx (t.hz + i)
  done;
  let r = t.retired.(tid) in
  let n = t.retired_count.(tid) in
  for i = n - 1 downto 0 do
    if not (is_announced snap nslots r.(i)) then Simmem.free mem ctx r.(i)
  done;
  let kept = ref 0 in
  for i = 0 to n - 1 do
    if is_announced snap nslots r.(i) then begin
      r.(!kept) <- r.(i);
      incr kept
    end
  done;
  t.retired_count.(tid) <- !kept

let retire t ctx node =
  let tid = Sim.tid ctx in
  let n = t.retired_count.(tid) in
  let r = t.retired.(tid) in
  if n = Array.length r then begin
    let bigger = Array.make (max 8 (2 * n)) 0 in
    Array.blit r 0 bigger 0 n;
    t.retired.(tid) <- bigger
  end;
  t.retired.(tid).(n) <- node;
  t.retired_count.(tid) <- n + 1;
  if t.retired_count.(tid) >= t.scan_threshold then scan t ctx

(* One randomized backoff delay, inlined from [Sim.Backoff.once] (same
   draw, same tick) so the retry loops below carry the bound as a plain
   argument instead of allocating a [Backoff.t] per operation. *)
let backoff_base = 50
let backoff_cap = 4096

let backoff_once ctx bound =
  Sim.tick ctx ((bound / 2) + Sim.Rng.int (Sim.rng ctx) (max 1 (bound / 2)));
  min backoff_cap (bound * 2)

let rec enq_loop t mem ctx node bound =
  let tail = Simmem.read mem ctx (t.hdr + hdr_tail) in
  announce t ctx 0 tail;
  if Simmem.read mem ctx (t.hdr + hdr_tail) <> tail then
    enq_loop t mem ctx node (backoff_once ctx bound)
  else begin
    let next = Simmem.read mem ctx (tail + off_next) in
    if Simmem.read mem ctx (t.hdr + hdr_tail) <> tail then
      enq_loop t mem ctx node (backoff_once ctx bound)
    else if next <> 0 then begin
      let (_ : bool) =
        Simmem.cas mem ctx (t.hdr + hdr_tail) ~expected:tail ~desired:next
      in
      enq_loop t mem ctx node (backoff_once ctx bound)
    end
    else if Simmem.cas mem ctx (tail + off_next) ~expected:0 ~desired:node then begin
      let (_ : bool) =
        Simmem.cas mem ctx (t.hdr + hdr_tail) ~expected:tail ~desired:node
      in
      ()
    end
    else enq_loop t mem ctx node (backoff_once ctx bound)
  end

let enqueue t ctx v =
  let mem = Htm.mem t.htm in
  let node = Simmem.malloc mem ctx node_words in
  Simmem.label mem ~name:"MSQueue+ROP.node" ~base:node ~words:node_words;
  Simmem.write mem ctx (node + off_val) v;
  enq_loop t mem ctx node backoff_base;
  announce t ctx 0 0

(* Returns whether an element was removed; the value parks in the caller's
   [deq_val] slot. *)
let rec deq_loop t mem ctx bound =
  let head = Simmem.read mem ctx (t.hdr + hdr_head) in
  announce t ctx 0 head;
  if Simmem.read mem ctx (t.hdr + hdr_head) <> head then
    deq_loop t mem ctx (backoff_once ctx bound)
  else begin
    let tail = Simmem.read mem ctx (t.hdr + hdr_tail) in
    let next = Simmem.read mem ctx (head + off_next) in
    announce t ctx 1 next;
    if Simmem.read mem ctx (t.hdr + hdr_head) <> head then
      deq_loop t mem ctx (backoff_once ctx bound)
    else if head = tail then begin
      if next = 0 then false
      else begin
        let (_ : bool) =
          Simmem.cas mem ctx (t.hdr + hdr_tail) ~expected:tail ~desired:next
        in
        deq_loop t mem ctx (backoff_once ctx bound)
      end
    end
    else begin
      let v = Simmem.read mem ctx (next + off_val) in
      if Simmem.cas mem ctx (t.hdr + hdr_head) ~expected:head ~desired:next then begin
        t.deq_val.(Sim.tid ctx) <- v;
        retire t ctx head;
        true
      end
      else deq_loop t mem ctx (backoff_once ctx bound)
    end
  end

let dequeue_drop t ctx =
  let r = deq_loop t (Htm.mem t.htm) ctx backoff_base in
  clear_announcements t ctx;
  r

let dequeue t ctx =
  if dequeue_drop t ctx then Some t.deq_val.(Sim.tid ctx) else None

let destroy t ctx =
  let mem = Htm.mem t.htm in
  Array.iteri
    (fun tid nodes ->
      (* newest first: the order the former list representation freed in *)
      for i = t.retired_count.(tid) - 1 downto 0 do
        Simmem.free mem ctx nodes.(i)
      done;
      t.retired_count.(tid) <- 0)
    t.retired;
  let rec free_from node =
    if node <> 0 then begin
      let next = Simmem.read mem ctx (node + off_next) in
      Simmem.free mem ctx node;
      free_from next
    end
  in
  free_from (Simmem.read mem ctx (t.hdr + hdr_head));
  Simmem.free mem ctx t.hz;
  Simmem.free mem ctx t.hdr

let maker : Queue_intf.maker =
  {
    queue_name = "MichaelScott+ROP";
    reclaims = true;
    make =
      (fun htm ctx ~num_threads ->
        let t = create htm ctx ~num_threads in
        {
          Queue_intf.name = "MichaelScott+ROP";
          enqueue = enqueue t;
          dequeue = dequeue t;
          dequeue_drop = dequeue_drop t;
          destroy = destroy t;
        });
  }
