(** Michael-Scott queue with announcement-based reclamation — the paper's
    "Michael-Scott ROP" configuration (§1.1, Figure 1).

    The Repeat Offender Problem mechanism and Michael's hazard pointers are
    the same announce-validate-scan discipline; we implement the
    hazard-pointer formulation (Michael, IEEE TPDS 2004): before
    dereferencing a node, a thread {e announces} it in a shared array and
    re-validates the source pointer; before freeing a node, the reclaimer
    {e scans} the announcements and defers any node still announced. This
    buys real reclamation (unlike the pooled Michael-Scott) at the price
    the paper measures: an announcement store plus a validation re-read on
    every traversal step, and periodic scans.

    Announced nodes cannot be recycled mid-operation, which also kills the
    ABA case, so pointers need no tags here. *)

let off_val = 0
let off_next = 1
let node_words = 2

(* head and tail words are padded to separate cache lines *)
let hdr_head = 0
let hdr_tail = 8
let hdr_words = 16

let hazards_per_thread = 2

type t = {
  htm : Htm.t;
  hdr : int;
  hz : int; (* announcement array: hazards_per_thread words per slot *)
  num_threads : int;
  retired : int list array; (* per-thread retired-but-not-yet-free nodes *)
  retired_count : int array;
  scan_threshold : int;
}

let slot_index t ctx =
  let tid = Sim.tid ctx in
  if tid = Sim.boot_tid then t.num_threads
  else if tid < t.num_threads then tid
  else invalid_arg "Ms_rop_queue: thread id outside the declared range"

let hazard_addr t ctx i = t.hz + (hazards_per_thread * slot_index t ctx) + i

(* An announcement must be globally visible before the validating re-read,
   which requires a store-load fence (membar #StoreLoad on SPARC). This
   fence, paid on every traversal step, is the heart of the 35–75 %
   overhead the paper measures for ROP-style reclamation. [Sim.fence]
   drains the thread's store buffer under a weak memory model — without
   it, the announcement can sit invisible in the buffer while a reclaimer
   scans, misses it, and frees the node (the `ms-nofence` mutant in
   lib/explore demonstrates exactly that). Under [sc] it is a pure
   [fence_cost] tick, as before. *)
let fence_cost = 60

let announce t ctx i node =
  Simmem.write (Htm.mem t.htm) ctx (hazard_addr t ctx i) node;
  Sim.fence ~cost:fence_cost ctx

let clear_announcements t ctx =
  announce t ctx 0 0;
  announce t ctx 1 0

let create htm ctx ~num_threads =
  let mem = Htm.mem htm in
  let hdr = Simmem.malloc mem ctx hdr_words in
  let hz = Simmem.malloc mem ctx (hazards_per_thread * (num_threads + 1)) in
  let sentinel = Simmem.malloc mem ctx node_words in
  Simmem.label mem ~name:"MSQueue+ROP.header" ~base:hdr ~words:hdr_words;
  Simmem.label mem ~name:"MSQueue+ROP.hazards" ~base:hz
    ~words:(hazards_per_thread * (num_threads + 1));
  Simmem.label mem ~name:"MSQueue+ROP.node" ~base:sentinel ~words:node_words;
  Simmem.write mem ctx (hdr + hdr_head) sentinel;
  Simmem.write mem ctx (hdr + hdr_tail) sentinel;
  {
    htm;
    hdr;
    hz;
    num_threads;
    retired = Array.make (Sim.max_threads + 1) [];
    retired_count = Array.make (Sim.max_threads + 1) 0;
    scan_threshold = (2 * hazards_per_thread * (num_threads + 1)) + 2;
  }

(* Free every retired node not currently announced by anyone. *)
let scan t ctx =
  let mem = Htm.mem t.htm in
  let nslots = hazards_per_thread * (t.num_threads + 1) in
  let announced = Array.init nslots (fun i -> Simmem.read mem ctx (t.hz + i)) in
  let tid = Sim.tid ctx in
  let keep, free_list =
    List.partition (fun node -> Array.exists (Int.equal node) announced) t.retired.(tid)
  in
  List.iter (fun node -> Simmem.free mem ctx node) free_list;
  t.retired.(tid) <- keep;
  t.retired_count.(tid) <- List.length keep

let retire t ctx node =
  let tid = Sim.tid ctx in
  t.retired.(tid) <- node :: t.retired.(tid);
  t.retired_count.(tid) <- t.retired_count.(tid) + 1;
  if t.retired_count.(tid) >= t.scan_threshold then scan t ctx

let enqueue t ctx v =
  let mem = Htm.mem t.htm in
  let node = Simmem.malloc mem ctx node_words in
  Simmem.label mem ~name:"MSQueue+ROP.node" ~base:node ~words:node_words;
  Simmem.write mem ctx (node + off_val) v;
  let b = Sim.Backoff.create ctx in
  let retry loop =
    Sim.Backoff.once b;
    loop ()
  in
  let rec loop () =
    let tail = Simmem.read mem ctx (t.hdr + hdr_tail) in
    announce t ctx 0 tail;
    if Simmem.read mem ctx (t.hdr + hdr_tail) <> tail then retry loop
    else begin
      let next = Simmem.read mem ctx (tail + off_next) in
      if Simmem.read mem ctx (t.hdr + hdr_tail) <> tail then retry loop
      else if next <> 0 then begin
        let (_ : bool) =
          Simmem.cas mem ctx (t.hdr + hdr_tail) ~expected:tail ~desired:next
        in
        retry loop
      end
      else if Simmem.cas mem ctx (tail + off_next) ~expected:0 ~desired:node then begin
        let (_ : bool) =
          Simmem.cas mem ctx (t.hdr + hdr_tail) ~expected:tail ~desired:node
        in
        ()
      end
      else retry loop
    end
  in
  loop ();
  announce t ctx 0 0

let dequeue t ctx =
  let mem = Htm.mem t.htm in
  let b = Sim.Backoff.create ctx in
  let retry loop =
    Sim.Backoff.once b;
    loop ()
  in
  let rec loop () =
    let head = Simmem.read mem ctx (t.hdr + hdr_head) in
    announce t ctx 0 head;
    if Simmem.read mem ctx (t.hdr + hdr_head) <> head then retry loop
    else begin
      let tail = Simmem.read mem ctx (t.hdr + hdr_tail) in
      let next = Simmem.read mem ctx (head + off_next) in
      announce t ctx 1 next;
      if Simmem.read mem ctx (t.hdr + hdr_head) <> head then retry loop
      else if head = tail then begin
        if next = 0 then None
        else begin
          let (_ : bool) =
            Simmem.cas mem ctx (t.hdr + hdr_tail) ~expected:tail ~desired:next
          in
          retry loop
        end
      end
      else begin
        let v = Simmem.read mem ctx (next + off_val) in
        if Simmem.cas mem ctx (t.hdr + hdr_head) ~expected:head ~desired:next then begin
          retire t ctx head;
          Some v
        end
        else retry loop
      end
    end
  in
  let r = loop () in
  clear_announcements t ctx;
  r

let destroy t ctx =
  let mem = Htm.mem t.htm in
  Array.iteri
    (fun tid nodes ->
      List.iter (fun node -> Simmem.free mem ctx node) nodes;
      t.retired.(tid) <- [];
      t.retired_count.(tid) <- 0)
    t.retired;
  let rec free_from node =
    if node <> 0 then begin
      let next = Simmem.read mem ctx (node + off_next) in
      Simmem.free mem ctx node;
      free_from next
    end
  in
  free_from (Simmem.read mem ctx (t.hdr + hdr_head));
  Simmem.free mem ctx t.hz;
  Simmem.free mem ctx t.hdr

let maker : Queue_intf.maker =
  {
    queue_name = "MichaelScott+ROP";
    reclaims = true;
    make =
      (fun htm ctx ~num_threads ->
        let t = create htm ctx ~num_threads in
        {
          Queue_intf.name = "MichaelScott+ROP";
          enqueue = enqueue t;
          dequeue = dequeue t;
          destroy = destroy t;
        });
  }
