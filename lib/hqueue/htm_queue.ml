(** The HTM FIFO queue (paper §1.1): sequential queue code wrapped in
    hardware transactions.

    A dequeue frees the removed entry immediately after its transaction
    commits. No later transaction can see a reference to it; a concurrent
    transaction that still holds one and dereferences it simply aborts
    (sandboxing, footnote 1 of the paper). That single property removes the
    ABA problem, the need for counted pointers, and the entire reclamation
    protocol that make Michael-Scott hard — this module is the "homework
    exercise" version. *)

let off_val = 0
let off_next = 1
let node_words = 2

(* head and tail words are padded to separate cache lines *)
let hdr_head = 0
let hdr_tail = 8
let hdr_words = 16

(* The transaction bodies are allocated once per queue and passed to every
   [Htm.atomic]; operation arguments and results travel through per-thread
   slots indexed by {!Htm.tx_tid}, so an operation allocates nothing on
   the OCaml heap. Per-thread (not plain mutable) because a thread can
   yield inside its transaction while another starts its own. *)
type t = {
  htm : Htm.t;
  hdr : int;
  enq_arg : int array;  (* per-thread node being enqueued *)
  deq_val : int array;  (* per-thread value of the last successful dequeue *)
  mutable enq_body : Htm.tx -> unit;
  mutable deq_body : Htm.tx -> bool;
}

let enq_tx t tx =
  let node = t.enq_arg.(Htm.tx_tid tx) in
  let tail = Htm.read tx (t.hdr + hdr_tail) in
  if tail = 0 then begin
    Htm.write tx (t.hdr + hdr_head) node;
    Htm.write tx (t.hdr + hdr_tail) node
  end
  else begin
    Htm.write tx (tail + off_next) node;
    Htm.write tx (t.hdr + hdr_tail) node
  end

let deq_tx t tx =
  let head = Htm.read tx (t.hdr + hdr_head) in
  if head = 0 then false
  else begin
    let next = Htm.read tx (head + off_next) in
    Htm.write tx (t.hdr + hdr_head) next;
    if next = 0 then Htm.write tx (t.hdr + hdr_tail) 0;
    t.deq_val.(Htm.tx_tid tx) <- Htm.read tx (head + off_val);
    Htm.defer_free tx head;
    true
  end

let create htm ctx =
  let mem = Htm.mem htm in
  let hdr = Simmem.malloc mem ctx hdr_words in
  Simmem.label mem ~name:"HtmQueue.header" ~base:hdr ~words:hdr_words;
  let t =
    {
      htm;
      hdr;
      enq_arg = Array.make (Sim.max_threads + 1) 0;
      deq_val = Array.make (Sim.max_threads + 1) 0;
      enq_body = ignore;
      deq_body = (fun _ -> false);
    }
  in
  t.enq_body <- enq_tx t;
  t.deq_body <- deq_tx t;
  t

let enqueue t ctx v =
  let mem = Htm.mem t.htm in
  let node = Simmem.malloc mem ctx node_words in
  Simmem.label mem ~name:"HtmQueue.node" ~base:node ~words:node_words;
  Simmem.write mem ctx (node + off_val) v;
  t.enq_arg.(Sim.tid ctx) <- node;
  Htm.atomic t.htm ctx t.enq_body

let dequeue_drop t ctx = Htm.atomic t.htm ctx t.deq_body

let dequeue t ctx =
  if dequeue_drop t ctx then Some t.deq_val.(Sim.tid ctx) else None

let destroy t ctx =
  let mem = Htm.mem t.htm in
  let rec free_from node =
    if node <> 0 then begin
      let next = Simmem.read mem ctx (node + off_next) in
      Simmem.free mem ctx node;
      free_from next
    end
  in
  free_from (Simmem.read mem ctx (t.hdr + hdr_head));
  Simmem.free mem ctx t.hdr

let maker : Queue_intf.maker =
  {
    queue_name = "HTM";
    reclaims = true;
    make =
      (fun htm ctx ~num_threads:_ ->
        let t = create htm ctx in
        {
          Queue_intf.name = "HTM";
          enqueue = enqueue t;
          dequeue = dequeue t;
          dequeue_drop = dequeue_drop t;
          destroy = destroy t;
        });
  }
