(** The HTM FIFO queue (paper §1.1): sequential queue code wrapped in
    hardware transactions.

    A dequeue frees the removed entry immediately after its transaction
    commits. No later transaction can see a reference to it; a concurrent
    transaction that still holds one and dereferences it simply aborts
    (sandboxing, footnote 1 of the paper). That single property removes the
    ABA problem, the need for counted pointers, and the entire reclamation
    protocol that make Michael-Scott hard — this module is the "homework
    exercise" version. *)

let off_val = 0
let off_next = 1
let node_words = 2

(* head and tail words are padded to separate cache lines *)
let hdr_head = 0
let hdr_tail = 8
let hdr_words = 16

type t = { htm : Htm.t; hdr : int }

let create htm ctx =
  let mem = Htm.mem htm in
  let hdr = Simmem.malloc mem ctx hdr_words in
  Simmem.label mem ~name:"HtmQueue.header" ~base:hdr ~words:hdr_words;
  { htm; hdr }

let enqueue t ctx v =
  let mem = Htm.mem t.htm in
  let node = Simmem.malloc mem ctx node_words in
  Simmem.label mem ~name:"HtmQueue.node" ~base:node ~words:node_words;
  Simmem.write mem ctx (node + off_val) v;
  Htm.atomic t.htm ctx (fun tx ->
      let tail = Htm.read tx (t.hdr + hdr_tail) in
      if tail = 0 then begin
        Htm.write tx (t.hdr + hdr_head) node;
        Htm.write tx (t.hdr + hdr_tail) node
      end
      else begin
        Htm.write tx (tail + off_next) node;
        Htm.write tx (t.hdr + hdr_tail) node
      end)

let dequeue t ctx =
  Htm.atomic t.htm ctx (fun tx ->
      let head = Htm.read tx (t.hdr + hdr_head) in
      if head = 0 then None
      else begin
        let next = Htm.read tx (head + off_next) in
        Htm.write tx (t.hdr + hdr_head) next;
        if next = 0 then Htm.write tx (t.hdr + hdr_tail) 0;
        let v = Htm.read tx (head + off_val) in
        Htm.defer_free tx head;
        Some v
      end)

let destroy t ctx =
  let mem = Htm.mem t.htm in
  let rec free_from node =
    if node <> 0 then begin
      let next = Simmem.read mem ctx (node + off_next) in
      Simmem.free mem ctx node;
      free_from next
    end
  in
  free_from (Simmem.read mem ctx (t.hdr + hdr_head));
  Simmem.free mem ctx t.hdr

let maker : Queue_intf.maker =
  {
    queue_name = "HTM";
    reclaims = true;
    make =
      (fun htm ctx ~num_threads:_ ->
        let t = create htm ctx in
        {
          Queue_intf.name = "HTM";
          enqueue = enqueue t;
          dequeue = dequeue t;
          destroy = destroy t;
        });
  }
