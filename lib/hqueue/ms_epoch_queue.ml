(** Michael-Scott queue with epoch-based reclamation (EBR) — the modern
    quiescence-style competitor beside ROP/hazard pointers.

    Each operation {e enters} an epoch: it reads the global epoch counter
    and announces it in a per-thread slot (one store + one store-load
    fence per {e operation}, against ROP's fence per {e traversal step} —
    that amortization is EBR's selling point). Dequeued nodes are
    {e retired} into the owner's limbo bucket for the current epoch. The
    global epoch may advance only when every active thread has announced
    the current value, and a bucket is freed only once the global epoch
    is two ahead of it — two grace periods, so a reader that announced an
    epoch can never hold a pointer into anything freed while it is
    active.

    The price EBR pays, which the ROP scan never does: a single stalled
    (or killed) reader parks the epoch forever and limbo grows without
    bound — reclamation is only eventual. [mk_maker ~grace:1] builds the
    classic broken variant that frees after {e one} grace period; the
    schedule explorer's [broken-epoch] scenario catches its
    use-after-free. *)

let off_val = 0
let off_next = 1
let node_words = 2

(* head, tail and the global epoch each get their own cache line *)
let hdr_head = 0
let hdr_tail = 8
let hdr_epoch = 16
let hdr_words = 24

(* Limbo buckets per thread: with two grace periods, at most three epochs
   (current, current-1, current-2) can hold unreclaimed nodes at once. *)
let buckets = 3

type t = {
  htm : Htm.t;
  hdr : int;
  ann : int; (* announcement array: one word per slot, 0 = quiescent *)
  num_threads : int;
  grace : int; (* epochs a retired node must age; 2 = safe, 1 = the seeded bug *)
  advance_every : int; (* retires between epoch-advance attempts *)
  (* per-thread limbo: [buckets] stacks in flat arrays, tagged with the
     epoch their nodes were retired in (0 = empty/never used) *)
  limbo : int array array; (* [(slot * buckets) + b] -> node stack *)
  limbo_n : int array;
  limbo_epoch : int array;
  since_advance : int array; (* per-slot retires since the last attempt *)
  deq_val : int array; (* per-thread value of the last successful dequeue *)
}

let slot_index t ctx =
  let tid = Sim.tid ctx in
  if tid = Sim.boot_tid then t.num_threads
  else if tid < t.num_threads then tid
  else invalid_arg "Ms_epoch_queue: thread id outside the declared range"

let ann_addr t slot = t.ann + slot

(* The announcement must be globally visible before the thread starts
   traversing, or a reclaimer can scan past it and advance the epoch with
   this reader unaccounted — the same store-load fence ROP pays, but once
   per operation. *)
let fence_cost = 60

let create htm ctx ~num_threads ~grace ~advance_every =
  let mem = Htm.mem htm in
  let hdr = Simmem.malloc mem ctx hdr_words in
  let ann = Simmem.malloc mem ctx (num_threads + 1) in
  let sentinel = Simmem.malloc mem ctx node_words in
  Simmem.label mem ~name:"MSQueue+EBR.header" ~base:hdr ~words:hdr_words;
  Simmem.label mem ~name:"MSQueue+EBR.epochs" ~base:ann ~words:(num_threads + 1);
  Simmem.label mem ~name:"MSQueue+EBR.node" ~base:sentinel ~words:node_words;
  Simmem.write mem ctx (hdr + hdr_head) sentinel;
  Simmem.write mem ctx (hdr + hdr_tail) sentinel;
  Simmem.write mem ctx (hdr + hdr_epoch) 1;
  let slots = Sim.max_threads + 1 in
  {
    htm;
    hdr;
    ann;
    num_threads;
    grace;
    advance_every;
    limbo = Array.make (slots * buckets) [||];
    limbo_n = Array.make (slots * buckets) 0;
    limbo_epoch = Array.make (slots * buckets) 0;
    since_advance = Array.make slots 0;
    deq_val = Array.make slots 0;
  }

(* Free this thread's limbo buckets whose epoch has aged out: retired in
   epoch [tag], freeable once the global epoch is [grace] ahead. Frees
   newest-first within a bucket (the LIFO order the allocator's own free
   lists expect). *)
let free_eligible t ctx slot epoch =
  let mem = Htm.mem t.htm in
  for b = 0 to buckets - 1 do
    let k = (slot * buckets) + b in
    let tag = t.limbo_epoch.(k) in
    if tag > 0 && tag <= epoch - t.grace then begin
      let r = t.limbo.(k) in
      for i = t.limbo_n.(k) - 1 downto 0 do
        Simmem.free mem ctx r.(i)
      done;
      t.limbo_n.(k) <- 0;
      t.limbo_epoch.(k) <- 0
    end
  done

(* Try to move the global epoch forward: scan every announcement; if some
   active thread still sits in an older epoch the advance is off (that
   reader might hold pointers into the previous epoch's retirees). The
   CAS makes at most one step; losing it means someone else advanced,
   which is just as good. Either way, reclaim what aged out. *)
let try_advance t ctx =
  let mem = Htm.mem t.htm in
  let e = Simmem.read mem ctx (t.hdr + hdr_epoch) in
  let all_current = ref true in
  for s = 0 to t.num_threads do
    let a = Simmem.read mem ctx (ann_addr t s) in
    if a <> 0 && a <> e then all_current := false
  done;
  if !all_current then begin
    let (_ : bool) =
      Simmem.cas mem ctx (t.hdr + hdr_epoch) ~expected:e ~desired:(e + 1)
    in
    ()
  end;
  let e' = Simmem.read mem ctx (t.hdr + hdr_epoch) in
  free_eligible t ctx (slot_index t ctx) e'

let enter t ctx =
  let mem = Htm.mem t.htm in
  let e = Simmem.read mem ctx (t.hdr + hdr_epoch) in
  Simmem.write mem ctx (ann_addr t (slot_index t ctx)) e;
  Sim.fence ~cost:fence_cost ctx

(* Quiescing is a plain (possibly buffered) store: a scanner reading the
   stale announcement merely delays the advance — the conservative
   direction — so no fence is needed, and that asymmetry is most of
   EBR's performance advantage. *)
let exit_epoch t ctx =
  Simmem.write (Htm.mem t.htm) ctx (ann_addr t (slot_index t ctx)) 0

let retire t ctx node =
  let mem = Htm.mem t.htm in
  let slot = slot_index t ctx in
  let e = Simmem.read mem ctx (t.hdr + hdr_epoch) in
  let k = (slot * buckets) + (e mod buckets) in
  (* A stale bucket with this residue holds epoch [e - buckets] retirees
     or older — long past both grace periods; make room. *)
  if t.limbo_epoch.(k) <> 0 && t.limbo_epoch.(k) <> e then begin
    let r = t.limbo.(k) in
    for i = t.limbo_n.(k) - 1 downto 0 do
      Simmem.free mem ctx r.(i)
    done;
    t.limbo_n.(k) <- 0
  end;
  t.limbo_epoch.(k) <- e;
  let n = t.limbo_n.(k) in
  if n = Array.length t.limbo.(k) then begin
    let bigger = Array.make (max 8 (2 * n)) 0 in
    Array.blit t.limbo.(k) 0 bigger 0 n;
    t.limbo.(k) <- bigger
  end;
  t.limbo.(k).(n) <- node;
  t.limbo_n.(k) <- n + 1;
  t.since_advance.(slot) <- t.since_advance.(slot) + 1;
  if t.since_advance.(slot) >= t.advance_every then begin
    t.since_advance.(slot) <- 0;
    try_advance t ctx
  end

(* One randomized backoff delay, same scheme as the ROP queue. *)
let backoff_base = 50
let backoff_cap = 4096

let backoff_once ctx bound =
  Sim.tick ctx ((bound / 2) + Sim.Rng.int (Sim.rng ctx) (max 1 (bound / 2)));
  min backoff_cap (bound * 2)

(* The Michael-Scott protocol itself, stripped of ROP's per-step
   announce/validate pairs: inside an epoch every node reachable at entry
   stays allocated, so plain reads suffice. *)
let rec enq_loop t mem ctx node bound =
  let tail = Simmem.read mem ctx (t.hdr + hdr_tail) in
  let next = Simmem.read mem ctx (tail + off_next) in
  if Simmem.read mem ctx (t.hdr + hdr_tail) <> tail then
    enq_loop t mem ctx node (backoff_once ctx bound)
  else if next <> 0 then begin
    let (_ : bool) =
      Simmem.cas mem ctx (t.hdr + hdr_tail) ~expected:tail ~desired:next
    in
    enq_loop t mem ctx node (backoff_once ctx bound)
  end
  else if Simmem.cas mem ctx (tail + off_next) ~expected:0 ~desired:node then begin
    let (_ : bool) =
      Simmem.cas mem ctx (t.hdr + hdr_tail) ~expected:tail ~desired:node
    in
    ()
  end
  else enq_loop t mem ctx node (backoff_once ctx bound)

let enqueue t ctx v =
  let mem = Htm.mem t.htm in
  let node = Simmem.malloc mem ctx node_words in
  Simmem.label mem ~name:"MSQueue+EBR.node" ~base:node ~words:node_words;
  Simmem.write mem ctx (node + off_val) v;
  enter t ctx;
  enq_loop t mem ctx node backoff_base;
  exit_epoch t ctx

let rec deq_loop t mem ctx bound =
  let head = Simmem.read mem ctx (t.hdr + hdr_head) in
  let tail = Simmem.read mem ctx (t.hdr + hdr_tail) in
  let next = Simmem.read mem ctx (head + off_next) in
  if Simmem.read mem ctx (t.hdr + hdr_head) <> head then
    deq_loop t mem ctx (backoff_once ctx bound)
  else if head = tail then begin
    if next = 0 then false
    else begin
      let (_ : bool) =
        Simmem.cas mem ctx (t.hdr + hdr_tail) ~expected:tail ~desired:next
      in
      deq_loop t mem ctx (backoff_once ctx bound)
    end
  end
  else begin
    let v = Simmem.read mem ctx (next + off_val) in
    if Simmem.cas mem ctx (t.hdr + hdr_head) ~expected:head ~desired:next then begin
      t.deq_val.(Sim.tid ctx) <- v;
      retire t ctx head;
      true
    end
    else deq_loop t mem ctx (backoff_once ctx bound)
  end

let dequeue_drop t ctx =
  enter t ctx;
  let r = deq_loop t (Htm.mem t.htm) ctx backoff_base in
  exit_epoch t ctx;
  r

let dequeue t ctx =
  if dequeue_drop t ctx then Some t.deq_val.(Sim.tid ctx) else None

let destroy t ctx =
  let mem = Htm.mem t.htm in
  for k = 0 to Array.length t.limbo - 1 do
    let r = t.limbo.(k) in
    for i = t.limbo_n.(k) - 1 downto 0 do
      Simmem.free mem ctx r.(i)
    done;
    t.limbo_n.(k) <- 0;
    t.limbo_epoch.(k) <- 0
  done;
  let rec free_from node =
    if node <> 0 then begin
      let next = Simmem.read mem ctx (node + off_next) in
      Simmem.free mem ctx node;
      free_from next
    end
  in
  free_from (Simmem.read mem ctx (t.hdr + hdr_head));
  Simmem.free mem ctx t.ann;
  Simmem.free mem ctx t.hdr

let mk_maker ?(grace = 2) ?advance_every name : Queue_intf.maker =
  {
    queue_name = name;
    reclaims = true;
    make =
      (fun htm ctx ~num_threads ->
        let advance_every =
          match advance_every with Some n -> n | None -> (2 * (num_threads + 1)) + 2
        in
        let t = create htm ctx ~num_threads ~grace ~advance_every in
        {
          Queue_intf.name;
          enqueue = enqueue t;
          dequeue = dequeue t;
          dequeue_drop = dequeue_drop t;
          destroy = destroy t;
        });
  }

let maker = mk_maker "MichaelScott+EBR"
