(** Shared machinery for the paper's microbenchmarks.

    Virtual time is reported at {!cycles_per_us} cycles per microsecond
    (a 2 GHz clock, the Rock ballpark), which is how the figures' "cycles"
    x-axes and "ops/µs" y-axes are produced. Every benchmark thread
    executes setup, waits until the common measurement start time
    {!warmup}, and counts the operations it completes before the deadline.
    {!op_dispatch} models the per-operation harness cost (loop, dispatch,
    rng) that dominates the paper's absolute latencies. *)

let cycles_per_us = 2000
let op_dispatch = 200
let warmup = 1_000_000

type machine = { mem : Simmem.t; htm : Htm.t; boot : Sim.tctx }

(* Observability for the whole harness run. Workloads build machines
   internally, so the benchmark front-end cannot thread sinks through
   their signatures; instead it installs them here once and every machine
   built afterwards attaches itself: a tracer process per machine, the
   shared aggregate metrics registry as parent, and (when profiling) a
   fresh contention profiler per machine, logged under the machine's
   label for the report. *)
type obs = {
  obs_tracer : Obs.Tracer.t option;
  obs_metrics : Obs.Metrics.t option;
  obs_profile : bool;
}

let no_obs = { obs_tracer = None; obs_metrics = None; obs_profile = false }
let current_obs = ref no_obs
let machine_seq = ref 0
let rev_profilers : (string * Obs.Profiler.t) list ref = ref []

let set_obs o =
  current_obs := o;
  machine_seq := 0;
  rev_profilers := [];
  if o.obs_tracer = None then Sim.set_default_tracer None

let obs () = !current_obs
let profilers () = List.rev !rev_profilers

let machine ?(htm_config = Htm.default_config) ?(seed = 1) ?label () =
  let o = !current_obs in
  incr machine_seq;
  let name =
    match label with Some l -> l | None -> Printf.sprintf "machine-%d" !machine_seq
  in
  let mem = Simmem.create ?metrics:o.obs_metrics () in
  (match o.obs_tracer with
   | None -> Sim.set_default_tracer None
   | Some tr -> Sim.set_default_tracer (Some (Obs.Tracer.process tr ~name)));
  if o.obs_profile then begin
    let p = Obs.Profiler.create () in
    Simmem.set_profiler mem (Some p);
    rev_profilers := (name, p) :: !rev_profilers
  end;
  let htm = Htm.create ~config:htm_config ?metrics:o.obs_metrics mem in
  { mem; htm; boot = Sim.boot ~seed () }

(* Globally unique non-zero values: the spec checker in the test suite
   relies on every bound value identifying one Register/Update event. *)
let value_counter = ref 0

let fresh_value () =
  incr value_counter;
  !value_counter

(* Throughput of [ops] operations completed during [duration] cycles, in
   operations per microsecond. *)
let ops_per_us ~ops ~duration = float_of_int ops *. float_of_int cycles_per_us /. float_of_int duration

(* Dispatch cost with jitter: real benchmark loops have timing noise, and
   a perfectly deterministic cost lets contending threads phase-lock into
   artificial conflict-free schedules. *)
let tick_dispatch ctx = Sim.tick ctx (op_dispatch + Sim.Rng.int (Sim.rng ctx) 32)

(* Run one op repeatedly from [warmup] until the deadline; returns the
   number of completed operations. Used by the measured thread(s). *)
let measured_loop ctx ~deadline op =
  let ops = ref 0 in
  Sim.advance_to ctx warmup;
  while Sim.clock ctx < deadline do
    tick_dispatch ctx;
    op ();
    incr ops
  done;
  !ops

(* Fire [op] every [period] cycles from [warmup] until the deadline. *)
let periodic_loop ctx ~deadline ~period op =
  let next = ref warmup in
  while !next < deadline do
    Sim.advance_to ctx !next;
    tick_dispatch ctx;
    op ();
    next := !next + period
  done

(* Split [total] into [n] parts differing by at most one. *)
let split_evenly total n = List.init n (fun i -> (total / n) + if i < total mod n then 1 else 0)
