(** Shared machinery for the paper's microbenchmarks.

    Virtual time is reported at {!cycles_per_us} cycles per microsecond
    (a 2 GHz clock, the Rock ballpark), which is how the figures' "cycles"
    x-axes and "ops/µs" y-axes are produced. Every benchmark thread
    executes setup, waits until the common measurement start time
    {!warmup}, and counts the operations it completes before the deadline.
    {!op_dispatch} models the per-operation harness cost (loop, dispatch,
    rng) that dominates the paper's absolute latencies. *)

let cycles_per_us = 2000
let op_dispatch = 200
let warmup = 1_000_000

type machine = { mem : Simmem.t; htm : Htm.t; boot : Sim.tctx }

(* Observability for the whole harness run. Workloads build machines
   internally, so the benchmark front-end cannot thread sinks through
   their signatures; instead it installs them here once and every machine
   built afterwards attaches itself: a tracer process per machine, the
   shared aggregate metrics registry as parent, and (when profiling) a
   fresh contention profiler per machine, logged under the machine's
   label for the report. *)
type obs = {
  obs_tracer : Obs.Tracer.t option;
  obs_metrics : Obs.Metrics.t option;
  obs_profile : bool;
  obs_forensics : bool;
}

let no_obs =
  { obs_tracer = None; obs_metrics = None; obs_profile = false;
    obs_forensics = false }

(* All ambient harness state is domain-local: the sweep runner
   ({!Runner.Sweep}) executes benchmark cells on worker domains, each of
   which installs its own sinks and value supply without racing any
   other. The runner's hooks (registered below) reset this state before
   every cell, which is what makes a cell's result independent of which
   domain ran it and what ran before — the determinism contract behind
   [bench all --jobs N]. *)
type state = {
  mutable st_obs : obs;
  mutable st_seq : int;
  mutable st_profs : (string * Obs.Profiler.t) list;
  mutable st_fors : (string * Obs.Forensics.t) list;
  mutable st_value : int;
}

let state_key : state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { st_obs = no_obs; st_seq = 0; st_profs = []; st_fors = []; st_value = 0 })

let state () = Domain.DLS.get state_key

let set_obs o =
  let st = state () in
  st.st_obs <- o;
  st.st_seq <- 0;
  st.st_profs <- [];
  st.st_fors <- [];
  if o.obs_tracer = None then Sim.set_default_tracer None

let obs () = (state ()).st_obs
let profilers () = List.rev (state ()).st_profs
let forensics () = List.rev (state ()).st_fors

let machine ?(htm_config = Htm.default_config) ?(seed = 1) ?label ?threads
    ?heap_words ?alloc () =
  let st = state () in
  let o = st.st_obs in
  st.st_seq <- st.st_seq + 1;
  let name =
    match label with Some l -> l | None -> Printf.sprintf "machine-%d" st.st_seq
  in
  let mem =
    Simmem.create ?metrics:o.obs_metrics ?threads ?initial_words:heap_words
      ?alloc ()
  in
  (match o.obs_tracer with
   | None -> Sim.set_default_tracer None
   | Some tr -> Sim.set_default_tracer (Some (Obs.Tracer.process tr ~name)));
  if o.obs_profile then begin
    let p = Obs.Profiler.create () in
    Simmem.set_profiler mem (Some p);
    st.st_profs <- (name, p) :: st.st_profs
  end;
  if o.obs_forensics then begin
    let f = Obs.Forensics.create () in
    Simmem.set_forensics mem (Some f);
    st.st_fors <- (name, f) :: st.st_fors
  end;
  let htm = Htm.create ~config:htm_config ?metrics:o.obs_metrics mem in
  { mem; htm; boot = Sim.boot ~seed () }

(* Unique non-zero values within a run: the spec checker relies on every
   bound value identifying one Register/Update event. Domain-local, and
   reset per cell by the sweep runner, so a cell's value stream depends
   only on the cell itself. *)
let fresh_value () =
  let st = state () in
  st.st_value <- st.st_value + 1;
  st.st_value

(* Throughput of [ops] operations completed during [duration] cycles, in
   operations per microsecond. *)
let ops_per_us ~ops ~duration = float_of_int ops *. float_of_int cycles_per_us /. float_of_int duration

(* Dispatch cost with jitter: real benchmark loops have timing noise, and
   a perfectly deterministic cost lets contending threads phase-lock into
   artificial conflict-free schedules. *)
let tick_dispatch ctx = Sim.tick ctx (op_dispatch + Sim.Rng.int (Sim.rng ctx) 32)

(* Run one op repeatedly from [warmup] until the deadline; returns the
   number of completed operations. Used by the measured thread(s). *)
let measured_loop ctx ~deadline op =
  let ops = ref 0 in
  Sim.advance_to ctx warmup;
  while Sim.clock ctx < deadline do
    tick_dispatch ctx;
    op ();
    incr ops
  done;
  !ops

(* Fire [op] every [period] cycles from [warmup] until the deadline. *)
let periodic_loop ctx ~deadline ~period op =
  let next = ref warmup in
  while !next < deadline do
    Sim.advance_to ctx !next;
    tick_dispatch ctx;
    op ();
    next := !next + period
  done

(* Split [total] into [n] parts differing by at most one. *)
let split_evenly total n = List.init n (fun i -> (total / n) + if i < total mod n then 1 else 0)

(* ------------------------------------------------------------------ *)
(* Sweep-runner integration: before each cell, reset this domain's
   ambient state; install the cell's private sinks; afterwards hand the
   cell's profilers back and return the domain to the unobserved
   state. *)

let () =
  Runner.Sweep.set_hooks
    {
      h_prepare =
        (fun () ->
          let st = state () in
          st.st_value <- 0;
          st.st_seq <- 0;
          st.st_profs <- [];
          st.st_fors <- []);
      h_install =
        (fun ~metrics ~profile ~forensics ~tracer ->
          set_obs
            {
              obs_tracer = tracer;
              obs_metrics = metrics;
              obs_profile = profile;
              obs_forensics = forensics;
            });
      h_finish =
        (fun () ->
          let ps = profilers () in
          let fs = forensics () in
          set_obs no_obs;
          (ps, fs));
    }
