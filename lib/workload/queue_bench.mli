(** Figure 1: mixed enqueue/dequeue throughput of the three queues as the
    thread count grows. *)

type result = { queue : string; threads : int; throughput : float }

val run_one :
  Hqueue.Intf.maker -> threads:int -> duration:int -> prefill:int -> seed:int -> result
(** One (queue, thread-count) cell; also used standalone by the
    contention experiment. *)

val run :
  ?threads:int list ->
  ?duration:int ->
  ?prefill:int ->
  ?seed:int ->
  unit ->
  result list

val to_table : result list -> Report.table
