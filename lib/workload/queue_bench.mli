(** Figure 1: mixed enqueue/dequeue throughput of the three queues as the
    thread count grows. *)

type result = { queue : string; threads : int; throughput : float }

val run_one :
  Hqueue.Intf.maker -> threads:int -> duration:int -> prefill:int -> seed:int -> result
(** One (queue, thread-count) cell; also used standalone by the
    contention experiment. *)

val cells :
  ?threads:int list ->
  ?duration:int ->
  ?prefill:int ->
  ?seed:int ->
  unit ->
  result Runner.Cell.t list
(** One cell per (thread count x queue), in canonical sweep order. *)

val run :
  ?jobs:int ->
  ?threads:int list ->
  ?duration:int ->
  ?prefill:int ->
  ?seed:int ->
  unit ->
  result list

val to_table : result list -> Report.table
