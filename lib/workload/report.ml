(* Rendering lives in Obs.Table (one table/plot/CSV engine for the whole
   repo — bin/explore's listings use the same column layout); this module
   re-exports it under the historical benchmark-facing name. *)

type table = Obs.Table.table = {
  title : string;
  xlabel : string;
  unit : string;
  columns : string list;
  rows : (string * float option list) list;
}

let print = Obs.Table.print
let plot = Obs.Table.plot
let print_csv = Obs.Table.print_csv
let to_json = Obs.Table.to_json
