(** Shared machinery for the paper's microbenchmarks: machine construction,
    virtual-time accounting, measured and periodic operation loops, and the
    globally unique value supply. *)

val cycles_per_us : int
(** 2000: the virtual clock rate used to convert cycles to the paper's
    ops/µs and ns axes. *)

val op_dispatch : int
(** Per-operation harness cost in cycles (loop, dispatch, rng), which
    dominates the paper's absolute latencies. *)

val warmup : int
(** Virtual time at which measurement windows begin; setup work must
    complete before it. *)

type machine = { mem : Simmem.t; htm : Htm.t; boot : Sim.tctx }

(** Harness-wide observability. Workloads build machines internally, so
    the benchmark front-end installs sinks once with {!set_obs}; every
    {!machine} built afterwards attaches itself — a tracer process (and
    the ambient {!Sim.set_default_tracer} sink) per machine, the shared
    metrics registry as parent of its heap's and HTM domain's registries,
    and a per-machine contention profiler when [obs_profile] is set. *)
type obs = {
  obs_tracer : Obs.Tracer.t option;
  obs_metrics : Obs.Metrics.t option;
  obs_profile : bool;
  obs_forensics : bool;
      (** attach a per-machine {!Obs.Forensics.t} (conflict witnesses,
          escalation timelines, allocation provenance) to every machine
          built afterwards *)
}

val no_obs : obs

val set_obs : obs -> unit
(** Install the observability sinks and reset the machine-label sequence
    and profiler log. *)

val obs : unit -> obs
(** The currently installed sinks (for experiments that re-install a
    variant — e.g. the contention profile — and restore afterwards). *)

val profilers : unit -> (string * Obs.Profiler.t) list
(** Per-machine contention profilers created since the last {!set_obs},
    labelled, in machine-creation order. *)

val forensics : unit -> (string * Obs.Forensics.t) list
(** Per-machine forensics aggregators created since the last {!set_obs},
    labelled, in machine-creation order. *)

val machine :
  ?htm_config:Htm.config ->
  ?seed:int ->
  ?label:string ->
  ?threads:int ->
  ?heap_words:int ->
  ?alloc:Simmem.alloc_policy ->
  unit ->
  machine
(** [label] names the machine's tracer process and profiler entry
    (default ["machine-<n>"] in creation order). [threads] sizes the
    heap's sharer sets for runs wider than the 61-thread default;
    [heap_words] sets the initial heap extent (see {!Simmem.create}) —
    the scale study passes million-word heaps so growth never perturbs
    the measured region. [alloc] selects the allocation policy (default
    {!Simmem.Shared_lifo}; [bench placement] builds arena machines per
    placement and records the policy label in its artifact). *)

val fresh_value : unit -> int
(** Globally unique non-zero values; the spec checker relies on every
    bound value identifying one bind event. *)

val ops_per_us : ops:int -> duration:int -> float

val tick_dispatch : Sim.tctx -> unit
(** Charge the per-op dispatch cost with jitter (see the implementation
    note on phase-locking). *)

val measured_loop : Sim.tctx -> deadline:int -> (unit -> unit) -> int
(** Run the operation back-to-back from {!warmup} until [deadline];
    returns the number of completed operations. *)

val periodic_loop : Sim.tctx -> deadline:int -> period:int -> (unit -> unit) -> unit
(** Fire the operation every [period] cycles from {!warmup} until
    [deadline]. *)

val split_evenly : int -> int -> int list
(** [split_evenly total n] is [n] parts of [total] differing by at most
    one. *)
