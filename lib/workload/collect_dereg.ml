(** Figure 7: Collect throughput under concurrent Register/DeRegister
    churn. One collector; each of the other threads cycles its slots:
    deregister one, wait [register_period] (fixed at 20 000 cycles),
    register a replacement, wait [dereg_period] (the x-axis), repeat.
    64 slots are registered initially, so at any time at most 64 are
    live. *)

type result = { algo : string; label : string; dereg_period : int; throughput : float }

let total_handles = 64
let register_period = 20_000

let run_one (maker : Collect.Intf.maker) ~churners ~dereg_period ~duration ~step ~seed =
  let m =
    Driver.machine ~seed ~label:(Printf.sprintf "%s c%d" maker.algo_name churners) ()
  in
  let threads = churners + 1 in
  let cfg =
    { Collect.Intf.max_slots = total_handles * 2; num_threads = threads; step; min_size = 4 }
  in
  let inst = maker.make m.htm m.boot cfg in
  let deadline = Driver.warmup + duration in
  let collects = ref 0 in
  let measuring = ref true in
  let quotas = Array.of_list (Driver.split_evenly total_handles churners) in
  let collector ctx =
    let buf = Sim.Ibuf.create ~capacity:(2 * total_handles) () in
    collects :=
      Driver.measured_loop ctx ~deadline (fun () ->
          Sim.Ibuf.clear buf;
          inst.collect ctx buf);
    measuring := false
  in
  let churner i ctx =
    let slots = Queue.create () in
    for _ = 1 to quotas.(i) do
      Queue.add (inst.register ctx (Driver.fresh_value ())) slots
    done;
    (* The threads start the experiment by first deregistering a slot. *)
    let next = ref Driver.warmup in
    while !next < deadline do
      Sim.advance_to ctx !next;
      if not (Queue.is_empty slots) then begin
        Driver.tick_dispatch ctx;
        inst.deregister ctx (Queue.pop slots)
      end;
      Sim.advance_to ctx (!next + register_period);
      Driver.tick_dispatch ctx;
      Queue.add (inst.register ctx (Driver.fresh_value ())) slots;
      next := !next + register_period + dereg_period
    done;
    (* Hold remaining registrations until the collector finishes. *)
    while !measuring do
      Sim.tick ctx 2000
    done;
    Queue.iter (fun h -> inst.deregister ctx h) slots
  in
  let bodies = Array.init threads (fun i -> if i = 0 then collector else churner (i - 1)) in
  Sim.run ~seed bodies;
  inst.destroy m.boot;
  {
    algo = maker.algo_name;
    label =
      Printf.sprintf "%s (%s)" maker.algo_name (Collect_update.step_label step);
    dereg_period;
    throughput = Driver.ops_per_us ~ops:!collects ~duration;
  }

let default_periods =
  [ 1_000_000; 500_000; 200_000; 100_000; 50_000; 20_000; 10_000; 8_000; 6_000; 4_000;
    2_000; 1_000 ]

let fig7_algos () = Collect_update.fig4_algos ()

(* One cell per (dereg period x algorithm), in canonical sweep order. *)
let cells ?makers ?(churners = 15) ?(periods = default_periods) ?(duration = 400_000)
    ?(seed = 71) () =
  let makers = match makers with Some ms -> ms | None -> fig7_algos () in
  List.concat_map
    (fun dereg_period ->
      List.map
        (fun (mk : Collect.Intf.maker) ->
          let step = if mk.uses_htm then Collect.Intf.Fixed 32 else Collect.Intf.Fixed 1 in
          Runner.Cell.v
            ~label:(Printf.sprintf "fig7/%s/p%d" mk.algo_name dereg_period)
            (fun () -> run_one mk ~churners ~dereg_period ~duration ~step ~seed))
        makers)
    periods

let run ?jobs ?makers ?churners ?periods ?duration ?seed () =
  Runner.Sweep.values
    (Runner.Sweep.run ?jobs (cells ?makers ?churners ?periods ?duration ?seed ()))

let to_table results =
  let columns =
    List.fold_left (fun acc r -> if List.mem r.label acc then acc else acc @ [ r.label ]) []
      results
  in
  let periods =
    List.sort_uniq (fun a b -> Int.compare b a) (List.map (fun r -> r.dereg_period) results)
  in
  let rows =
    List.map
      (fun p ->
        ( Collect_update.period_label p,
          List.map
            (fun c ->
              List.find_opt (fun r -> r.dereg_period = p && String.equal r.label c) results
              |> Option.map (fun r -> r.throughput))
            columns ))
      periods
  in
  {
    Report.title = "Figure 7: Collect-(De)Register";
    xlabel = "dereg period";
    unit = "ops/us";
    columns;
    rows;
  }
