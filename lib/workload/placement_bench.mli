(** The malloc-placement ablation: abort rate and coherence ping-pong per
    {!Simmem.placement} policy under a line-granularity HTM, plus the
    fig 1 queue sweep with Michael-Scott+EBR as the reclamation
    competitor. See the implementation header and docs/ALLOCATION.md for
    the mechanism. *)

type result = {
  structure : string;  (** ["counters"], ["pairs"] or ["queue"] *)
  policy : string;  (** {!Simmem.placement_label} of the arena policy *)
  threads : int;
  throughput : float;  (** ops/us *)
  abort_rate : float;  (** conflict aborts per hardware attempt *)
  transfers : int;  (** coherence line transfers (0 when run unprofiled) *)
}

type queue_result = { queue : string; q_threads : int; q_throughput : float }

type piece = P_ablation of result | P_fig1 of queue_result

val policies : Simmem.placement list
(** Canonical column order: packed, isolated, cache-index-aware. *)

val line_htm : Htm.config
(** {!Htm.default_config} with [granularity = Line]. *)

val counters_one :
  policy:Simmem.placement -> threads:int -> duration:int -> seed:int -> result
(** Per-thread transactional counters, boot-allocated in one burst: every
    abort is pure false sharing. *)

val pairs_one :
  policy:Simmem.placement -> threads:int -> duration:int -> seed:int -> result
(** Two-word records (value + stamp) updated together: the granule-of-2
    size class, four records per line when packed. *)

val queue_one :
  policy:Simmem.placement -> threads:int -> duration:int -> seed:int -> result
(** The HTM queue under the fig 1 coin-flip workload, arena-allocated. *)

val competitor_names : string list
(** [["HTM"; "MichaelScott+ROP"; "MichaelScott+EBR"]]. *)

val competitor_one : string -> threads:int -> duration:int -> seed:int -> queue_result

val cells : ?duration:int -> ?seed:int -> unit -> piece Runner.Cell.t list
(** One cell per (thread count x structure x policy), then the
    fig1-shaped competitor block, in canonical sweep order. *)

val run : ?jobs:int -> ?duration:int -> ?seed:int -> unit -> piece list
(** Run the cells with the contention profiler attached (so the transfers
    column is populated) and return the pieces in canonical order. *)

val ablations : piece list -> result list
val fig1_results : piece list -> queue_result list
val to_tables : piece list -> Report.table list
