(** Benchmark drivers reproducing every table and figure of the paper's
    evaluation (§5), plus the space measurements backing the §1 claims.
    Each module runs a workload on the simulated machine and renders a
    {!Report.table}; [bench/main.ml] is the command-line front end. *)

module Report = Report
module Driver = Driver
module Queue_bench = Queue_bench
module Latency = Latency
module Collect_dominated = Collect_dominated
module Collect_update = Collect_update
module Collect_dereg = Collect_dereg
module Phased = Phased
module Space_bench = Space_bench
module Scale_bench = Scale_bench
module Placement_bench = Placement_bench
module Chaos_bench = Chaos_bench
module Fallback_bench = Fallback_bench
module Memorder_bench = Memorder_bench
