(** Plain-text and CSV rendering of benchmark results: one row per x-axis
    value, one column per algorithm, mirroring the series in the paper's
    figures. *)

type table = Obs.Table.table = {
  title : string;
  xlabel : string;
  unit : string;  (** of the cell values, e.g. "ops/us" *)
  columns : string list;
  rows : (string * float option list) list;
      (** x-axis label, one value per column; [None] prints as "-" *)
}
(** Equal to {!Obs.Table.table}: the rendering engine lives in [lib/obs]
    so the explorer CLI shares it; this alias keeps benchmark code on the
    historical name. *)

val print : Format.formatter -> table -> unit
(** Aligned human-readable table. *)

val print_csv : Format.formatter -> table -> unit
(** Same data as CSV (one header comment line, then header + rows). *)

val plot : ?height:int -> Format.formatter -> table -> unit
(** ASCII line chart of the table: one glyph-coded series per column over
    the row order, with a y-scale and a legend — the closest a terminal
    gets to regenerating the paper's figures. *)

val to_json : table -> Obs.Json.t
(** The table as JSON (see {!Obs.Table.to_json}) — the payload of the
    [--json] benchmark result files. *)
