(** The memory-ordering experiment: the linearizability search and the
    litmus enumeration re-run under every {!Sim.Memmodel} variant.

    Two fingerprint tables, both pure functions of (seed, variant):

    - {b search}: the fence-dropping MS/ROP mutant ([ms-nofence]) must be
      caught under every buffered variant and stay clean under [sc]; the
      HTM queue ([htm-memorder]) must stay clean under {e every} variant
      (transactional publish is atomic, the TLE lock is a full fence);
    - {b litmus}: distinct-outcome counts and relaxed-outcome
      reachability for SB / SB+fence / MP / LB / CoRR / RoW under
      exhaustive schedule enumeration ({!Explore.Litmus}).

    [bench/main.exe memorder] runs {!run_all} and renders {!report};
    docs/MEMORY_ORDERING.md explains the variant matrix. *)

val variants : (string * Sim.Memmodel.t) list

type search_result = {
  ms_scenario : string;
  ms_model : string;
  ms_budget : int;
  ms_runs : int;  (** schedules executed (stops at the first violation) *)
  ms_violations : int;
  ms_first_violation : int;  (** 1-based run of the first violation; 0 = clean *)
  ms_deviations : int;  (** shrunk deviation count of that violation; 0 = clean *)
}

val search_one :
  seed:int -> key:string -> model_name:string -> model:Sim.Memmodel.t -> search_result

type litmus_result = {
  lt_program : string;
  lt_model : string;
  lt_outcomes : int;  (** distinct final register vectors, all schedules *)
  lt_relaxed : bool;  (** the program's distinguished weak outcome reached? *)
}

val litmus_one :
  prog:Explore.Litmus.program ->
  model_name:string ->
  model:Sim.Memmodel.t ->
  litmus_result

type piece = Search of search_result | Litmus of litmus_result

type summary = { searches : search_result list; litmus : litmus_result list }

val cells : ?seed:int -> unit -> piece Runner.Cell.t list
(** One cell per (scenario x variant) plus one per (litmus program x
    variant), in canonical sweep order. *)

val summary_of_pieces : piece list -> summary
val run_all : ?jobs:int -> ?seed:int -> unit -> summary
val tables : summary -> (Report.table * string) list
val report : Format.formatter -> summary -> unit
