(** Figure 1: throughput of a mixed enqueue/dequeue workload on the three
    queues, as the thread count grows. Each thread flips a fair coin per
    operation; the queue is pre-filled so dequeues mostly succeed. *)

type result = { queue : string; threads : int; throughput : float }

let run_one (maker : Hqueue.Intf.maker) ~threads ~duration ~prefill ~seed =
  let m =
    Driver.machine ~seed ~label:(Printf.sprintf "%s x%d" maker.queue_name threads) ()
  in
  let q = maker.make m.htm m.boot ~num_threads:threads in
  for _ = 1 to prefill do
    q.enqueue m.boot (Driver.fresh_value ())
  done;
  let deadline = Driver.warmup + duration in
  let ops = Array.make threads 0 in
  let bodies =
    Array.init threads (fun i ->
        fun ctx ->
          ops.(i) <-
            Driver.measured_loop ctx ~deadline (fun () ->
                if Sim.Rng.bool (Sim.rng ctx) then q.enqueue ctx (Driver.fresh_value ())
                else ignore (q.dequeue_drop ctx)))
  in
  Sim.run ~seed bodies;
  q.destroy m.boot;
  let total = Array.fold_left ( + ) 0 ops in
  { queue = maker.queue_name; threads; throughput = Driver.ops_per_us ~ops:total ~duration }

let default_threads = [ 2; 4; 6; 8; 10; 12; 14; 16 ]

(* One cell per (thread count x queue), in canonical sweep order. *)
let cells ?(threads = default_threads) ?(duration = 400_000) ?(prefill = 64) ?(seed = 11) () =
  List.concat_map
    (fun n ->
      List.map
        (fun (mk : Hqueue.Intf.maker) ->
          Runner.Cell.v ~label:(Printf.sprintf "fig1/%s/x%d" mk.queue_name n) (fun () ->
              run_one mk ~threads:n ~duration ~prefill ~seed))
        Hqueue.all)
    threads

let run ?jobs ?threads ?duration ?prefill ?seed () =
  Runner.Sweep.values
    (Runner.Sweep.run ?jobs (cells ?threads ?duration ?prefill ?seed ()))

let to_table results =
  let columns = List.map (fun (m : Hqueue.Intf.maker) -> m.queue_name) Hqueue.all in
  let threads = List.sort_uniq Int.compare (List.map (fun r -> r.threads) results) in
  let rows =
    List.map
      (fun n ->
        ( string_of_int n,
          List.map
            (fun q ->
              List.find_opt (fun r -> r.threads = n && String.equal r.queue q) results
              |> Option.map (fun r -> r.throughput))
            columns ))
      threads
  in
  {
    Report.title = "Figure 1: Queue throughput vs threads";
    xlabel = "threads";
    unit = "ops/us";
    columns;
    rows;
  }
