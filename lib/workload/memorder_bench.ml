(* The memory-ordering experiment: re-run the linearizability search and
   the litmus enumeration under every {!Sim.Memmodel} variant and pin the
   fingerprints.

   Two claims, both deterministic:

   - the fence-dropping MS/ROP mutant ([ms-nofence]) is caught by the
     explorer under every buffered variant and is clean under [sc] — the
     bug IS a missing fence, so only a weak-memory plane can see it;
   - the HTM queue ([htm-memorder]) stays violation-free under every
     variant: transactional commit publishes atomically and the TLE lock
     operations are full fences, so the store buffers never leak a stale
     view out of a transaction.

   Everything is a pure function of (seed, variant): cells are
   independent, so a [Runner.Sweep] at any --jobs renders byte-identical
   tables. *)

let variants = Sim.Memmodel.all
let threads = 3
let ops = 4

(* ------------------------------------------------------------------ *)
(* Linearizability search per variant.                                 *)
(* ------------------------------------------------------------------ *)

type search_result = {
  ms_scenario : string;
  ms_model : string;
  ms_budget : int;
  ms_runs : int;  (** schedules executed (stops at the first violation) *)
  ms_violations : int;
  ms_first_violation : int;  (** 1-based run of the first violation; 0 = clean *)
  ms_deviations : int;  (** shrunk deviation count of that violation; 0 = clean *)
}

(* The mutant needs room: its window opens only once a reclaimer scan
   races a buffered announcement (found around run 650 at seed 1). The
   HTM control is a negative check, so a smaller budget carries the same
   information. *)
let search_budget = function "ms-nofence" -> 800 | _ -> 150

let search_one ~seed ~key ~model_name ~model =
  let budget = search_budget key in
  let scn =
    match Explore.Scenario.build ~key ~model ~threads ~ops () with
    | Ok scn -> scn
    | Error e -> failwith e
  in
  let s = Explore.Search.search ~base_seed:seed ~max_violations:1 ~budget [ scn ] in
  let first, devs =
    match s.res_violations with
    | [] -> (0, 0)
    | v :: _ -> (s.res_runs, List.length v.vio_artifact.art_deviations)
  in
  {
    ms_scenario = key;
    ms_model = model_name;
    ms_budget = budget;
    ms_runs = s.res_runs;
    ms_violations = List.length s.res_violations;
    ms_first_violation = first;
    ms_deviations = devs;
  }

(* ------------------------------------------------------------------ *)
(* Litmus fingerprints per variant.                                    *)
(* ------------------------------------------------------------------ *)

type litmus_result = {
  lt_program : string;
  lt_model : string;
  lt_outcomes : int;  (** distinct final register vectors, all schedules *)
  lt_relaxed : bool;  (** the program's distinguished weak outcome reached? *)
}

(* The outcome each program exists to probe for: reachable only where the
   weak plane permits it (see docs/MEMORY_ORDERING.md's litmus table). *)
let relaxed_outcome = function
  | "SB" | "SB+fence" -> [ 0; 0 ]
  | "MP" | "CoRR" -> [ 1; 0 ]
  | "LB" -> [ 1; 1 ]
  | "RoW" -> [ 0 ]
  | p -> failwith ("relaxed_outcome: unknown litmus program " ^ p)

let litmus_one ~prog ~model_name ~model =
  let name = prog.Explore.Litmus.prog_name in
  match Explore.Litmus.enumerate ~model prog with
  | Error e -> failwith e
  | Ok outcomes ->
    {
      lt_program = name;
      lt_model = model_name;
      lt_outcomes = List.length outcomes;
      lt_relaxed = List.mem (relaxed_outcome name) outcomes;
    }

(* ------------------------------------------------------------------ *)
(* Cells, summary, tables.                                             *)
(* ------------------------------------------------------------------ *)

type piece = Search of search_result | Litmus of litmus_result

type summary = { searches : search_result list; litmus : litmus_result list }

(* One cell per (scenario x variant) plus one per (program x variant), in
   canonical sweep order. *)
let cells ?(seed = 1) () =
  List.concat_map
    (fun key ->
      List.map
        (fun (model_name, model) ->
          Runner.Cell.v
            ~label:(Printf.sprintf "memorder/%s/%s" key model_name)
            (fun () -> Search (search_one ~seed ~key ~model_name ~model)))
        variants)
    [ "ms-nofence"; "htm-memorder" ]
  @ List.concat_map
      (fun prog ->
        List.map
          (fun (model_name, model) ->
            Runner.Cell.v
              ~label:
                (Printf.sprintf "memorder/litmus/%s/%s"
                   prog.Explore.Litmus.prog_name model_name)
              (fun () -> Litmus (litmus_one ~prog ~model_name ~model)))
          variants)
      Explore.Litmus.all

let summary_of_pieces pieces =
  {
    searches = List.filter_map (function Search s -> Some s | _ -> None) pieces;
    litmus = List.filter_map (function Litmus l -> Some l | _ -> None) pieces;
  }

let run_all ?jobs ?seed () =
  summary_of_pieces (Runner.Sweep.values (Runner.Sweep.run ?jobs (cells ?seed ())))

let fi = float_of_int

let search_table (searches : search_result list) : Report.table =
  {
    title =
      Printf.sprintf
        "Linearizability search per memory model (%d threads, %d ops/thread, \
         stop at first violation)"
        threads ops;
    xlabel = "scenario/model";
    unit = "counts";
    columns = [ "budget"; "runs"; "violations"; "first-violation"; "shrunk-devs" ];
    rows =
      List.map
        (fun s ->
          ( Printf.sprintf "%s under %s" s.ms_scenario s.ms_model,
            [ Some (fi s.ms_budget); Some (fi s.ms_runs); Some (fi s.ms_violations);
              Some (fi s.ms_first_violation); Some (fi s.ms_deviations) ] ))
        searches;
  }

let search_note =
  "ms-nofence drops the announcement fence from the MS/ROP queue: under\n\
   sc the store is instantly visible and the search stays clean, under\n\
   every buffered variant the reclaimer's scan misses the buffered\n\
   announcement and the explorer pins a use-after-free. htm-memorder is\n\
   the control: transactional publish is atomic and the TLE lock is a\n\
   full fence, so the HTM queue is clean under every variant.\n"

let litmus_table (litmus : litmus_result list) : Report.table =
  {
    title = "Litmus fingerprints (exhaustive schedule enumeration)";
    xlabel = "program/model";
    unit = "counts";
    columns = [ "distinct-outcomes"; "relaxed-reached" ];
    rows =
      List.map
        (fun l ->
          ( Printf.sprintf "%s under %s" l.lt_program l.lt_model,
            [ Some (fi l.lt_outcomes); Some (if l.lt_relaxed then 1. else 0.) ] ))
        litmus;
  }

let litmus_note =
  "relaxed-reached = 1 iff the program's distinguished weak outcome is\n\
   reachable under some schedule: SB's (0,0) only under buffered\n\
   variants, SB+fence's (0,0) only under sb-fence-nop, RoW's stale 0\n\
   only under sb-bypass, and MP/LB/CoRR forbidden everywhere (a FIFO\n\
   store buffer never reorders stores, loads, or same-location reads).\n"

let tables (s : summary) =
  [ (search_table s.searches, search_note); (litmus_table s.litmus, litmus_note) ]

let report ppf (s : summary) =
  List.iter
    (fun (t, note) ->
      Report.print ppf t;
      Format.fprintf ppf "@.%s@." note)
    (tables s)
