(* The degradation-lattice experiment: what each fallback policy costs
   when transactions outgrow the hardware (the paper's §6 concern made
   quantitative, extended with the hybrid HTM→STM slow path).

   Three questions, one table each:

   - Shared big transactions (48 stores, one region, full conflict):
     everything serialises semantically, so the winner is whoever wastes
     the least on doomed attempts — TLE-only commits under the lock with
     no retries, the hybrid pays two hardware attempts before escalating,
     HTM-with-TLE burns its whole retry budget first.

   - Disjoint big transactions: the same stores spread over per-thread
     regions. Here the lock is the bottleneck: TLE-only still serialises
     every transaction while the TL2 slow path commits them in parallel —
     the reason a software fallback is worth its complexity.

   - Interference: M big software-path writers sharing a machine with 8
     small hardware transactions that read the words the writers mutate.
     Every STM write-back bumps word versions and aborts the readers —
     the classic hybrid-TM result that a little STM traffic collapses
     HTM throughput.

   Plus the liveness piece: threads killed by {!Sim.Fault} inside the
   STM commit window (between lock acquisition and write-back) must not
   strand the machine — survivors steal the dead threads' versioned
   locks and keep committing, with the watchdog armed to prove it. *)

let span = 48
(* stores per big transaction: comfortably past the 32-word store
   buffer, so every big transaction overflows the hardware *)

type policy = { pol_name : string; pol_config : Htm.config }

let policies =
  [
    { pol_name = "htm-tle"; pol_config = { Htm.default_config with tle = Htm.Tle_after 6 } };
    { pol_name = "hybrid"; pol_config = Htm.hybrid_config };
    {
      pol_name = "stm-only";
      pol_config = { Htm.default_config with stm = Htm.Stm_after 0 };
    };
    { pol_name = "tle-only"; pol_config = { Htm.default_config with tle = Htm.Tle_after 0 } };
  ]

let default_threads = [ 1; 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* Big-transaction grid: policy x thread count x sharing.              *)
(* ------------------------------------------------------------------ *)

type grid_result = {
  gr_policy : string;
  gr_threads : int;
  gr_shared : bool;
  gr_tput : float;
  gr_attempts_hw : int;
  gr_attempts_stm : int;
  gr_attempts_tle : int;
  gr_escalations : int;
  gr_fallbacks : int;
  gr_stm_commits : int;
}

let run_grid pol ~shared ~threads ~duration ~seed =
  let m =
    Driver.machine ~htm_config:pol.pol_config ~seed
      ~label:
        (Printf.sprintf "fallback/%s/%s/x%d" pol.pol_name
           (if shared then "shared" else "disjoint")
           threads)
      ()
  in
  let regions =
    if shared then
      let base = Simmem.malloc m.mem m.boot span in
      Array.make threads base
    else Array.init threads (fun _ -> Simmem.malloc m.mem m.boot span)
  in
  let deadline = Driver.warmup + duration in
  let ops = Array.make threads 0 in
  let bodies =
    Array.init threads (fun i ->
        fun ctx ->
          let base = regions.(i) in
          ops.(i) <-
            Driver.measured_loop ctx ~deadline (fun () ->
                Htm.atomic m.htm ctx (fun tx ->
                    for j = 0 to span - 1 do
                      Htm.write tx (base + j) (Htm.read tx (base + j) + 1)
                    done)))
  in
  Sim.run ~seed bodies;
  let total = Array.fold_left ( + ) 0 ops in
  let st = Htm.stats m.htm in
  {
    gr_policy = pol.pol_name;
    gr_threads = threads;
    gr_shared = shared;
    gr_tput = Driver.ops_per_us ~ops:total ~duration;
    gr_attempts_hw = st.attempts_hw;
    gr_attempts_stm = st.attempts_stm;
    gr_attempts_tle = st.attempts_tle;
    gr_escalations = st.escalations_stm;
    gr_fallbacks = st.lock_fallbacks;
    gr_stm_commits = st.stm_commits;
  }

(* ------------------------------------------------------------------ *)
(* Interference: big software writers vs small hardware readers.       *)
(* ------------------------------------------------------------------ *)

type interf_result = {
  ir_big_writers : int;
  ir_small_tput : float;  (** hardware-path ops/us across the 8 small threads *)
  ir_big_tput : float;
  ir_small_conflicts : int;  (** hardware conflict aborts suffered by everyone *)
  ir_escalations : int;
}

let small_threads = 8

let run_interference ~big ~duration ~seed =
  let m =
    Driver.machine ~htm_config:Htm.hybrid_config ~seed
      ~label:(Printf.sprintf "fallback/interf/%dbig" big)
      ()
  in
  (* The small threads' counters live inside the big writers' region, so
     every software write-back invalidates the hardware readers. *)
  let base = Simmem.malloc m.mem m.boot span in
  let deadline = Driver.warmup + duration in
  let small_ops = Array.make small_threads 0 in
  let big_ops = Array.make (max big 1) 0 in
  let small i ctx =
    small_ops.(i) <-
      Driver.measured_loop ctx ~deadline (fun () ->
          Htm.atomic m.htm ctx (fun tx ->
              let a = base + (i * 2) in
              Htm.write tx a (Htm.read tx a + 1)))
  in
  let big_writer i ctx =
    big_ops.(i) <-
      Driver.measured_loop ctx ~deadline (fun () ->
          Htm.atomic m.htm ctx (fun tx ->
              for j = 0 to span - 1 do
                Htm.write tx (base + j) (Htm.read tx (base + j) + 1)
              done))
  in
  let bodies =
    Array.init (small_threads + big) (fun i ->
        if i < small_threads then small i else big_writer (i - small_threads))
  in
  Sim.run ~seed bodies;
  let st = Htm.stats m.htm in
  {
    ir_big_writers = big;
    ir_small_tput =
      Driver.ops_per_us ~ops:(Array.fold_left ( + ) 0 small_ops) ~duration;
    ir_big_tput = Driver.ops_per_us ~ops:(Array.fold_left ( + ) 0 big_ops) ~duration;
    ir_small_conflicts = st.aborts_conflict;
    ir_escalations = st.escalations_stm;
  }

(* ------------------------------------------------------------------ *)
(* Liveness under mid-commit crashes.                                  *)
(* ------------------------------------------------------------------ *)

type chaos_result = {
  ch_kills : int;  (** threads killed inside the STM commit window *)
  ch_survivor_ops : int;
  ch_steals : int;  (** versioned locks recovered from the corpses *)
  ch_torn : int;  (** words disagreeing at quiescence — must be 0 *)
}

let chaos_deadline = 2_000_000
let chaos_watchdog = 1_000_000

let run_chaos ~seed =
  let m =
    Driver.machine
      ~htm_config:{ Htm.default_config with stm = Htm.Stm_after 0 }
      ~seed ~label:"fallback/chaos" ()
  in
  let base = Simmem.malloc m.mem m.boot span in
  let threads = 6 in
  let faults =
    Sim.Fault.make
      {
        Sim.Fault.none with
        fault_seed = 0xfa11;
        kills_at_point =
          [ (0, "stm.commit", 400_000); (1, "stm.commit", 900_000) ];
      }
  in
  let ops = Array.make threads 0 in
  let bodies =
    Array.init threads (fun i ->
        fun ctx ->
          while Sim.clock ctx < chaos_deadline do
            Driver.tick_dispatch ctx;
            Htm.atomic m.htm ctx (fun tx ->
                let v = Htm.read tx base + 1 in
                for j = 0 to span - 1 do
                  Htm.write tx (base + j) v
                done);
            ops.(i) <- ops.(i) + 1;
            Sim.note_progress ctx
          done)
  in
  Sim.run ~seed ~faults ~watchdog:chaos_watchdog bodies;
  let v0 = Simmem.peek m.mem base in
  let torn = ref 0 in
  for j = 1 to span - 1 do
    if Simmem.peek m.mem (base + j) <> v0 then incr torn
  done;
  let st = Htm.stats m.htm in
  {
    ch_kills = Sim.Fault.kills faults;
    ch_survivor_ops = Array.fold_left ( + ) 0 ops;
    ch_steals = st.stm_steals;
    ch_torn = !torn;
  }

(* ------------------------------------------------------------------ *)
(* Cells, summary, tables.                                             *)
(* ------------------------------------------------------------------ *)

type piece =
  | Grid of grid_result
  | Interf of interf_result
  | Chaos of chaos_result

type summary = {
  grid : grid_result list;
  interference : interf_result list;
  chaos : chaos_result list;
}

let default_big = [ 0; 1; 2; 4 ]

(* One cell per point, in canonical sweep order. *)
let cells ?(threads = default_threads) ?(big = default_big) ?(duration = 300_000)
    ?(seed = 19) () =
  List.concat_map
    (fun shared ->
      List.concat_map
        (fun n ->
          List.map
            (fun pol ->
              Runner.Cell.v
                ~label:
                  (Printf.sprintf "fallback/%s/%s/x%d"
                     (if shared then "shared" else "disjoint")
                     pol.pol_name n)
                (fun () -> Grid (run_grid pol ~shared ~threads:n ~duration ~seed)))
            policies)
        threads)
    [ true; false ]
  @ List.map
      (fun m ->
        Runner.Cell.v ~label:(Printf.sprintf "fallback/interf/%dbig" m) (fun () ->
            Interf (run_interference ~big:m ~duration ~seed)))
      big
  @ [ Runner.Cell.v ~label:"fallback/chaos" (fun () -> Chaos (run_chaos ~seed)) ]

let summary_of_pieces pieces =
  {
    grid = List.filter_map (function Grid g -> Some g | _ -> None) pieces;
    interference = List.filter_map (function Interf i -> Some i | _ -> None) pieces;
    chaos = List.filter_map (function Chaos c -> Some c | _ -> None) pieces;
  }

let run_all ?jobs ?threads ?big ?duration ?seed () =
  summary_of_pieces
    (Runner.Sweep.values (Runner.Sweep.run ?jobs (cells ?threads ?big ?duration ?seed ())))

let fi = float_of_int

let grid_table ~shared (grid : grid_result list) : Report.table =
  let grid = List.filter (fun g -> g.gr_shared = shared) grid in
  let threads = List.sort_uniq Int.compare (List.map (fun g -> g.gr_threads) grid) in
  {
    title =
      (if shared then
         "Fallback policies: 48-store transactions, one shared region (full conflict)"
       else "Fallback policies: 48-store transactions, disjoint per-thread regions");
    xlabel = "policy";
    unit = "ops/us";
    columns = List.map (fun n -> Printf.sprintf "%dT" n) threads;
    rows =
      List.map
        (fun pol ->
          ( pol.pol_name,
            List.map
              (fun n ->
                List.find_opt
                  (fun g -> g.gr_policy = pol.pol_name && g.gr_threads = n)
                  grid
                |> Option.map (fun g -> g.gr_tput))
              threads ))
        policies;
  }

let detail_table (grid : grid_result list) : Report.table =
  let at8 =
    List.filter (fun g -> g.gr_shared && g.gr_threads = List.fold_left max 1 default_threads) grid
  in
  {
    title = "Where the attempts went (shared region, widest sweep point)";
    xlabel = "policy";
    unit = "counts";
    columns =
      [ "attempts-hw"; "attempts-stm"; "attempts-tle"; "escalations"; "lock-fallbacks";
        "stm-commits" ];
    rows =
      List.map
        (fun g ->
          ( g.gr_policy,
            [ Some (fi g.gr_attempts_hw); Some (fi g.gr_attempts_stm);
              Some (fi g.gr_attempts_tle); Some (fi g.gr_escalations);
              Some (fi g.gr_fallbacks); Some (fi g.gr_stm_commits) ] ))
        at8;
  }

let interference_table (interference : interf_result list) : Report.table =
  {
    title =
      Printf.sprintf
        "Hybrid interference: M big software writers vs %d one-word hardware txs"
        small_threads;
    xlabel = "big writers";
    unit = "ops/us / counts";
    columns = [ "small ops/us"; "big ops/us"; "conflict-aborts"; "escalations" ];
    rows =
      List.map
        (fun r ->
          ( Printf.sprintf "M=%d" r.ir_big_writers,
            [ Some r.ir_small_tput; Some r.ir_big_tput;
              Some (fi r.ir_small_conflicts); Some (fi r.ir_escalations) ] ))
        interference;
  }

let chaos_table (chaos : chaos_result list) : Report.table =
  {
    title = "Liveness: threads killed inside the STM commit window (locks held)";
    xlabel = "run";
    unit = "counts";
    columns = [ "kills"; "survivor-ops"; "lock-steals"; "torn-words" ];
    rows =
      List.map
        (fun c ->
          ( "stm-only, 6 threads",
            [ Some (fi c.ch_kills); Some (fi c.ch_survivor_ops); Some (fi c.ch_steals);
              Some (fi c.ch_torn) ] ))
        chaos;
  }

let grid_note =
  "Shared region: every transaction overflows the store buffer and all\n\
   conflict, so throughput ranks by overhead-per-doomed-attempt:\n\
   tle-only (straight to the lock) > hybrid / stm-only > htm-tle (burns\n\
   its hardware retry budget first). Disjoint regions flip the story:\n\
   the TL2 slow path commits in parallel while tle-only serialises\n\
   everything behind one lock — the case that pays for the STM.\n"

let interference_note =
  "The small transactions fit in hardware and touch one word each; the\n\
   big writers escalate to the software path and write the whole region.\n\
   Each software write-back bumps the word versions the hardware readers\n\
   validated, aborting them — small-tx throughput collapses as M grows,\n\
   the classic hybrid-TM interference result.\n"

let chaos_note =
  "Two threads die at the [stm.commit] fault point, between versioned-\n\
   lock acquisition and write-back. Survivors observe the stale\n\
   heartbeats, steal the dead threads' locks and keep committing under\n\
   an armed watchdog; zero torn words because the kill window precedes\n\
   the first write-back.\n"

(* The rendered tables with their notes, in report order. *)
let tables (s : summary) =
  [
    (grid_table ~shared:true s.grid, "");
    (grid_table ~shared:false s.grid, grid_note);
    (detail_table s.grid, "");
    (interference_table s.interference, interference_note);
    (chaos_table s.chaos, chaos_note);
  ]

let report ppf (s : summary) =
  List.iter
    (fun (t, note) ->
      Report.print ppf t;
      if note <> "" then Format.fprintf ppf "@.%s@." note)
    (tables s)
