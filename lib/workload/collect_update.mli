(** Figures 4–6: Collect throughput under concurrent Updates — one
    collector, periodic updaters, 64 handles registered (paper §5.3). *)

type result = {
  algo : string;
  label : string;  (** algorithm + step annotation, for figure legends *)
  period : int;
  throughput : float;  (** collects per µs *)
  histogram : (int * int) list;  (** slots collected per step size (fig 6) *)
  commits : int;  (** HTM commits during the whole run *)
  aborts : int;  (** HTM aborts, all causes *)
}

val total_handles : int
val default_periods : int list

val step_label : Collect.Intf.step_policy -> string
val period_label : int -> string

val run_one :
  Collect.Intf.maker ->
  updaters:int ->
  period:int ->
  duration:int ->
  step:Collect.Intf.step_policy ->
  seed:int ->
  result

type churn_result = {
  churn_algo : string;
  churn_threads : int;
  churn_registers : int;  (** handles registered during the window *)
  churn_collects : int;  (** collects completed during the window *)
  churn_throughput : float;  (** registrations per µs *)
  churn_commits : int;
  churn_aborts : int;
}

val churn_one :
  Collect.Intf.maker -> threads:int -> duration:int -> seed:int -> churn_result
(** Registration stampede: half the threads collect back to back, half
    register fresh handles flat out. For the list algorithms a collect's
    first transaction reads the list-head word and stays in flight for a
    whole traversal step, so each concurrent head insertion kills it at
    exactly that word — the workload behind [bench doctor contend]'s
    header attribution. *)

val fig4_algos : unit -> Collect.Intf.maker list
(** The Figure 4 line-up: the four telescoping algorithms plus the two
    whose collects use no transactions. *)

val cells_fig4 :
  ?updaters:int ->
  ?periods:int list ->
  ?duration:int ->
  ?seed:int ->
  unit ->
  result Runner.Cell.t list
(** One cell per (period x algorithm), in canonical sweep order. *)

val run_fig4 :
  ?jobs:int ->
  ?updaters:int ->
  ?periods:int list ->
  ?duration:int ->
  ?seed:int ->
  unit ->
  result list

val fig5_steps : int list
val fig5_best_candidates : int list

val cells_fig5 :
  ?updaters:int ->
  ?periods:int list ->
  ?duration:int ->
  ?seed:int ->
  unit ->
  result Runner.Cell.t list
(** One cell per (period x step policy): the plotted fixed steps, the
    instrumented best-candidates, then the adaptive controller. *)

val fig5_collate : result list -> result list
(** Reduce raw {!cells_fig5} results (in cell order) to the plotted
    series: fixed steps, "Best (adapt cost)", adaptive — per period. *)

val run_fig5 :
  ?jobs:int ->
  ?updaters:int ->
  ?periods:int list ->
  ?duration:int ->
  ?seed:int ->
  unit ->
  result list
(** Fixed steps, the adaptive controller, and "Best (adapt cost)" — the
    best instrumented fixed step per period. *)

val cells_fig6 :
  ?updaters:int ->
  ?periods:int list ->
  ?duration:int ->
  ?seed:int ->
  unit ->
  result Runner.Cell.t list

val run_fig6 :
  ?jobs:int ->
  ?updaters:int ->
  ?periods:int list ->
  ?duration:int ->
  ?seed:int ->
  unit ->
  result list
(** Adaptive runs whose histograms regenerate Figure 6. *)

val to_table : title:string -> result list -> Report.table
val fig6_table : result list -> Report.table
