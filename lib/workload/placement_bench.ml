(** The malloc-placement ablation: the same workload under each
    {!Simmem.placement} policy, with the HTM conflict detector set to
    {!Htm.Line} granularity — the configuration under which allocator
    layout becomes transaction fate, the effect "The Influence of Malloc
    Placement on TSX Hardware Transactional Memory" measures on real
    silicon.

    Two structures, chosen for opposite sharing shapes:

    - {b counters}: the boot thread allocates one single-word counter per
      thread from its arena — under [Line_packed] eight of them share a
      cache line; under the isolating policies each gets its own — and
      every thread transactionally increments only {e its own} counter.
      There are no true conflicts at all: every abort and every coherence
      transfer is pure false sharing, manufactured by the allocator.
    - {b pairs}: the same shape with two-word records (a value and its
      version stamp, the classic seqlock pair) — four per line when
      packed — read and written together in one transaction. A different
      size class, so it exercises the arena's two-words-per-granule path.
    - {b queue}: the paper's HTM queue under the fig 1 coin-flip
      workload. Nodes are allocated by the enqueuing thread outside the
      transaction and freed post-commit by the dequeuer, so under
      [Line_packed] a neighbour's malloc (which zeroes and version-bumps
      the fresh block) or deferred free lands on lines that in-flight
      transactions of {e other} threads have read.

    Each cell reports throughput, the conflict-abort rate (aborts per
    hardware attempt) and the machine's coherence line transfers (the
    {!Obs.Profiler} ping-pong count, 0 when run unprofiled). The
    experiment also re-runs the fig 1 queue sweep on arena machines with
    Michael-Scott under epoch-based reclamation ({!Hqueue.ebr}) beside
    ROP and HTM — the modern quiescence-style competitor the paper
    predates. *)

type result = {
  structure : string;
  policy : string;  (** {!Simmem.placement_label} of the arena policy *)
  threads : int;
  throughput : float;  (** ops/us *)
  abort_rate : float;  (** conflict aborts per hardware attempt *)
  transfers : int;  (** coherence line transfers (0 when unprofiled) *)
}

type queue_result = { queue : string; q_threads : int; q_throughput : float }

type piece = P_ablation of result | P_fig1 of queue_result

let policies = [ Simmem.Line_packed; Simmem.Line_isolated; Simmem.Cache_index_aware ]

(* Line-granularity conflict detection: the idealized per-word default
   would hide the placement effect entirely (word detection never sees a
   neighbour's traffic), which is itself the experiment's control story —
   see docs/ALLOCATION.md. *)
let line_htm = { Htm.default_config with granularity = Htm.Line }

let snapshot ~structure ~policy ~threads ~duration ~ops (m : Driver.machine) =
  let st = Htm.stats m.htm in
  {
    structure;
    policy = Simmem.placement_label policy;
    threads;
    throughput = Driver.ops_per_us ~ops ~duration;
    abort_rate =
      float_of_int st.aborts_conflict /. float_of_int (max 1 st.attempts_hw);
    transfers =
      (match Simmem.profiler m.mem with
      | Some p -> Obs.Profiler.total_transfers p
      | None -> 0);
  }

(* The conflict window: an instantaneous read-modify-write commits before
   any neighbour can slip a commit between its read and its validation,
   so a few hundred cycles of in-transaction compute (the real-world
   instructions between load and commit) is what turns a neighbour's line
   traffic into an abort. Sized above the hot line's coherence service
   interval: shorter windows let the transfer queue space the threads
   into a conflict-free rotation. *)
let think = 150

(* Pure false sharing: thread [i] transactionally increments counter [i]
   and nothing else, so with isolated counters the abort rate is zero by
   construction. All counters come from the boot thread's arena in one
   burst — the "producer allocates, workers use" pattern that packs them. *)
let counters_one ~policy ~threads ~duration ~seed =
  let m =
    Driver.machine ~htm_config:line_htm ~seed
      ~label:
        (Printf.sprintf "placement/counters/%s x%d" (Simmem.placement_label policy)
           threads)
      ~alloc:(Simmem.Arena policy) ()
  in
  let counters = Array.init threads (fun _ -> Simmem.malloc m.mem m.boot 1) in
  Array.iter
    (fun c -> Simmem.label m.mem ~name:"Placement.counter" ~base:c ~words:1)
    counters;
  let deadline = Driver.warmup + duration in
  let ops = Array.make threads 0 in
  let bodies =
    Array.init threads (fun i ->
        fun ctx ->
          let c = counters.(i) in
          ops.(i) <-
            Driver.measured_loop ctx ~deadline (fun () ->
                Htm.atomic m.htm ctx (fun tx ->
                    let v = Htm.read tx c in
                    Sim.tick ctx think;
                    Htm.write tx c (v + 1))))
  in
  Sim.run ~seed bodies;
  let total = Array.fold_left ( + ) 0 ops in
  snapshot ~structure:"counters" ~policy ~threads ~duration ~ops:total m

(* The two-word variant: value + version stamp updated together, four
   records per line when packed. A second, differently-shaped hot
   structure for the headline claim (and the granule-of-2 size class). *)
let pairs_one ~policy ~threads ~duration ~seed =
  let m =
    Driver.machine ~htm_config:line_htm ~seed
      ~label:
        (Printf.sprintf "placement/pairs/%s x%d" (Simmem.placement_label policy)
           threads)
      ~alloc:(Simmem.Arena policy) ()
  in
  let recs = Array.init threads (fun _ -> Simmem.malloc m.mem m.boot 2) in
  Array.iter
    (fun r -> Simmem.label m.mem ~name:"Placement.pair" ~base:r ~words:2)
    recs;
  let deadline = Driver.warmup + duration in
  let ops = Array.make threads 0 in
  let bodies =
    Array.init threads (fun i ->
        fun ctx ->
          let r = recs.(i) in
          ops.(i) <-
            Driver.measured_loop ctx ~deadline (fun () ->
                Htm.atomic m.htm ctx (fun tx ->
                    let v = Htm.read tx r in
                    let stamp = Htm.read tx (r + 1) in
                    Sim.tick ctx think;
                    Htm.write tx r (v + 1);
                    Htm.write tx (r + 1) (stamp + 1))))
  in
  Sim.run ~seed bodies;
  let total = Array.fold_left ( + ) 0 ops in
  snapshot ~structure:"pairs" ~policy ~threads ~duration ~ops:total m

(* The fig 1 coin-flip loop on the HTM queue, arena-allocated. *)
let queue_one ~policy ~threads ~duration ~seed =
  let maker = Option.get (Hqueue.find_maker "HTM") in
  let m =
    Driver.machine ~htm_config:line_htm ~seed
      ~label:
        (Printf.sprintf "placement/queue/%s x%d" (Simmem.placement_label policy)
           threads)
      ~alloc:(Simmem.Arena policy) ()
  in
  let q = maker.make m.htm m.boot ~num_threads:threads in
  for _ = 1 to 64 do
    q.enqueue m.boot (Driver.fresh_value ())
  done;
  let deadline = Driver.warmup + duration in
  let ops = Array.make threads 0 in
  let bodies =
    Array.init threads (fun i ->
        fun ctx ->
          ops.(i) <-
            Driver.measured_loop ctx ~deadline (fun () ->
                if Sim.Rng.bool (Sim.rng ctx) then q.enqueue ctx (Driver.fresh_value ())
                else ignore (q.dequeue_drop ctx)))
  in
  Sim.run ~seed bodies;
  q.destroy m.boot;
  let total = Array.fold_left ( + ) 0 ops in
  snapshot ~structure:"queue" ~policy ~threads ~duration ~ops:total m

(* The reclamation competitor sweep: fig 1's loop and prefill, but on
   arena machines, with Michael-Scott+EBR as the third column. The
   isolating placement and the default word-granularity detector keep
   this a reclamation comparison rather than a placement one. *)
let competitor_names = [ "HTM"; "MichaelScott+ROP"; "MichaelScott+EBR" ]

let competitor_one name ~threads ~duration ~seed =
  let maker = Option.get (Hqueue.find_maker name) in
  let m =
    Driver.machine ~seed
      ~label:(Printf.sprintf "placement/fig1/%s x%d" name threads)
      ~alloc:(Simmem.Arena Simmem.Line_isolated) ()
  in
  let q = maker.make m.htm m.boot ~num_threads:threads in
  for _ = 1 to 64 do
    q.enqueue m.boot (Driver.fresh_value ())
  done;
  let deadline = Driver.warmup + duration in
  let ops = Array.make threads 0 in
  let bodies =
    Array.init threads (fun i ->
        fun ctx ->
          ops.(i) <-
            Driver.measured_loop ctx ~deadline (fun () ->
                if Sim.Rng.bool (Sim.rng ctx) then q.enqueue ctx (Driver.fresh_value ())
                else ignore (q.dequeue_drop ctx)))
  in
  Sim.run ~seed bodies;
  q.destroy m.boot;
  let total = Array.fold_left ( + ) 0 ops in
  { queue = name; q_threads = threads; q_throughput = Driver.ops_per_us ~ops:total ~duration }

let ablation_threads = [ 4; 8 ]
let structures = [ "counters"; "pairs"; "queue" ]
let competitor_threads = [ 2; 4; 8; 16 ]

(* One cell per (thread count x structure x policy), then the competitor
   block, each in canonical sweep order. *)
let cells ?(duration = 300_000) ?(seed = 7) () =
  List.concat_map
    (fun n ->
      List.concat_map
        (fun s ->
          List.map
            (fun p ->
              let label =
                Printf.sprintf "placement/%s/%s/x%d" s (Simmem.placement_label p) n
              in
              let run =
                match s with
                | "counters" -> counters_one
                | "pairs" -> pairs_one
                | _ -> queue_one
              in
              Runner.Cell.v ~label (fun () ->
                  P_ablation (run ~policy:p ~threads:n ~duration ~seed)))
            policies)
        structures)
    ablation_threads
  @ List.concat_map
      (fun n ->
        List.map
          (fun name ->
            Runner.Cell.v
              ~label:(Printf.sprintf "placement/fig1/%s/x%d" name n)
              (fun () -> P_fig1 (competitor_one name ~threads:n ~duration ~seed)))
          competitor_names)
      competitor_threads

(* Profiled even standalone: the transfers column is the point. *)
let run ?jobs ?duration ?seed () =
  Runner.Sweep.values (Runner.Sweep.run ?jobs ~profile:true (cells ?duration ?seed ()))

let ablations pieces =
  List.filter_map (function P_ablation r -> Some r | P_fig1 _ -> None) pieces

let fig1_results pieces =
  List.filter_map (function P_fig1 r -> Some r | P_ablation _ -> None) pieces

let policy_columns = List.map Simmem.placement_label policies

let metric_table ~title ~unit metric results =
  let rows =
    List.concat_map
      (fun s ->
        List.map
          (fun n ->
            ( Printf.sprintf "%s/x%d" s n,
              List.map
                (fun p ->
                  List.find_opt
                    (fun r ->
                      r.structure = s && r.threads = n && String.equal r.policy p)
                    results
                  |> Option.map metric)
                policy_columns ))
          ablation_threads)
      structures
  in
  { Report.title; xlabel = "structure/threads"; unit; columns = policy_columns; rows }

let to_tables pieces =
  let abl = ablations pieces in
  let fig1 = fig1_results pieces in
  let competitor_table =
    let rows =
      List.map
        (fun n ->
          ( string_of_int n,
            List.map
              (fun q ->
                List.find_opt
                  (fun r -> r.q_threads = n && String.equal r.queue q)
                  fig1
                |> Option.map (fun r -> r.q_throughput))
              competitor_names ))
        competitor_threads
    in
    {
      Report.title = "Placement: queue throughput on arena heaps (fig 1 shape, +EBR)";
      xlabel = "threads";
      unit = "ops/us";
      columns = competitor_names;
      rows;
    }
  in
  [
    metric_table ~title:"Placement ablation: throughput (line-granularity HTM)"
      ~unit:"ops/us" (fun r -> r.throughput) abl;
    metric_table ~title:"Placement ablation: conflict-abort rate"
      ~unit:"aborts per attempt" (fun r -> r.abort_rate) abl;
    metric_table ~title:"Placement ablation: coherence line transfers"
      ~unit:"transfers" (fun r -> float_of_int r.transfers) abl;
    competitor_table;
  ]
