(** The scaling study: fig1/fig3-shaped workloads at 16–256 simulated
    threads on million-word heaps.

    The paper stops at 16 threads because Rock did. The flat simulator
    core removes that practical ceiling, so this experiment re-asks the
    paper's two headline questions at modern core counts: does the
    Michael-Scott curve still flatten against the HTM queue (fig 1), and
    do HoHRC's collapse and SearchNo's overtaking survive (fig 3)?

    Machines here are built with [~threads] (so the heap sizes its sharer
    sets for the wide run) and [~heap_words] (a million-word initial
    extent, so heap growth never lands inside the measured window). The
    workload loops themselves are deliberately the same code shape as
    {!Queue_bench} and {!Collect_dominated}; only the population scales
    with the thread count. *)

type result = { subject : string; threads : int; throughput : float }

let heap_words = 1 lsl 20

(* Queue cells: the fig1 loop (coin-flip enqueue/dequeue, prefilled) at
   scale. Prefill grows with the thread count so the queue does not drain
   to the empty-queue fast path at 256 threads. *)
let queue_one (maker : Hqueue.Intf.maker) ~threads ~duration ~seed =
  let m =
    Driver.machine ~seed
      ~label:(Printf.sprintf "scale/%s x%d" maker.queue_name threads)
      ~threads ~heap_words ()
  in
  let q = maker.make m.htm m.boot ~num_threads:threads in
  for _ = 1 to 4 * threads do
    q.enqueue m.boot (Driver.fresh_value ())
  done;
  let deadline = Driver.warmup + duration in
  let ops = Array.make threads 0 in
  let bodies =
    Array.init threads (fun i ->
        fun ctx ->
          ops.(i) <-
            Driver.measured_loop ctx ~deadline (fun () ->
                if Sim.Rng.bool (Sim.rng ctx) then q.enqueue ctx (Driver.fresh_value ())
                else ignore (q.dequeue_drop ctx)))
  in
  Sim.run ~seed bodies;
  q.destroy m.boot;
  let total = Array.fold_left ( + ) 0 ops in
  { subject = maker.queue_name; threads;
    throughput = Driver.ops_per_us ~ops:total ~duration }

(* Collect cells: the fig3 mix (collect 90 %, update 8 %, register 1 %,
   deregister 1 %) with the slot population scaled to the thread count —
   four slots of budget per thread, half registered before measurement —
   so a 256-thread collect really traverses a 256-thread-sized structure
   instead of fig3's fixed 64 slots. *)
let collect_one (maker : Collect.Intf.maker) ~threads ~duration ~seed =
  let m =
    Driver.machine ~seed
      ~label:(Printf.sprintf "scale/%s x%d" maker.algo_name threads)
      ~threads ~heap_words ()
  in
  let per_thread = 4 in
  let cfg =
    { Collect.Intf.max_slots = per_thread * threads; num_threads = threads;
      step = Collect.Intf.Fixed 32; min_size = 4 }
  in
  let inst = maker.make m.htm m.boot cfg in
  let deadline = Driver.warmup + duration in
  let ops = Array.make threads 0 in
  let bodies =
    Array.init threads (fun i ->
        fun ctx ->
          let slots = Queue.create () in
          for _ = 1 to per_thread / 2 do
            Queue.add (inst.register ctx (Driver.fresh_value ())) slots
          done;
          let buf = Sim.Ibuf.create ~capacity:(per_thread * threads) () in
          let rng = Sim.rng ctx in
          Sim.advance_to ctx Driver.warmup;
          while Sim.clock ctx < deadline do
            let dice = Sim.Rng.int rng 100 in
            let performed =
              if dice < 90 then begin
                Driver.tick_dispatch ctx;
                Sim.Ibuf.clear buf;
                inst.collect ctx buf;
                true
              end
              else if dice < 98 then begin
                if Queue.is_empty slots then false
                else begin
                  Driver.tick_dispatch ctx;
                  let h = Queue.pop slots in
                  inst.update ctx h (Driver.fresh_value ());
                  Queue.add h slots;
                  true
                end
              end
              else if dice < 99 then begin
                if Queue.length slots >= per_thread then false
                else begin
                  Driver.tick_dispatch ctx;
                  Queue.add (inst.register ctx (Driver.fresh_value ())) slots;
                  true
                end
              end
              else if Queue.is_empty slots then false
              else begin
                Driver.tick_dispatch ctx;
                inst.deregister ctx (Queue.pop slots);
                true
              end
            in
            if performed then ops.(i) <- ops.(i) + 1 else Sim.tick ctx 20
          done;
          Queue.iter (fun h -> inst.deregister ctx h) slots)
  in
  Sim.run ~seed bodies;
  inst.destroy m.boot;
  let total = Array.fold_left ( + ) 0 ops in
  { subject = maker.algo_name; threads;
    throughput = Driver.ops_per_us ~ops:total ~duration }

let default_threads = [ 16; 64; 128; 256 ]
let queue_names = [ "HTM"; "MichaelScott"; "MichaelScott+ROP" ]

(* The three fig3 algorithms behind the headline shapes: the collapsing
   baseline, the overtaken linear-scan, and the overtaking winner. *)
let collect_names = [ "ListHoHRC"; "ArrayStatSearchNo"; "ArrayDynAppendDereg" ]

(* One cell per (thread count x subject): all queue cells first, then all
   collect cells, each block in canonical sweep order. *)
let cells ?(threads = default_threads) ?(duration = 200_000) ?(seed = 9) () =
  List.concat_map
    (fun n ->
      List.map
        (fun name ->
          let mk = Option.get (Hqueue.find_maker name) in
          Runner.Cell.v ~label:(Printf.sprintf "scale/queue/%s/x%d" name n) (fun () ->
              queue_one mk ~threads:n ~duration ~seed))
        queue_names)
    threads
  @ List.concat_map
      (fun n ->
        List.map
          (fun name ->
            let mk = Option.get (Collect.find_maker name) in
            Runner.Cell.v ~label:(Printf.sprintf "scale/collect/%s/x%d" name n)
              (fun () -> collect_one mk ~threads:n ~duration ~seed))
          collect_names)
      threads

let table ~title ~columns results =
  let threads = List.sort_uniq Int.compare (List.map (fun r -> r.threads) results) in
  let rows =
    List.map
      (fun n ->
        ( string_of_int n,
          List.map
            (fun s ->
              List.find_opt (fun r -> r.threads = n && String.equal r.subject s) results
              |> Option.map (fun r -> r.throughput))
            columns ))
      threads
  in
  { Report.title; xlabel = "threads"; unit = "ops/us"; columns; rows }

let to_tables results =
  let qs, cs =
    List.partition (fun r -> List.mem r.subject queue_names) results
  in
  [
    table ~title:"Scale: queue throughput, 16-256 threads (fig 1 shape)"
      ~columns:queue_names qs;
    table ~title:"Scale: collect-dominated mix, 16-256 threads (fig 3 shape)"
      ~columns:collect_names cs;
  ]
