(* The survivability experiment the paper only argued for (§1, §7):
   crash threads mid-operation and check that the HTM-based algorithms
   stay well-formed with bounded leakage, while the counter-based schemes
   (ListHoHRC, DynamicBaseline) pin memory permanently; then drive every
   algorithm through Rock-grade environmental adversity (spurious aborts,
   preemption stalls) and show the TLE fallback keeps them all live.

   Everything here is deterministic: fault plans are seed-derived
   ({!Sim.Fault}), so a fixed seed reproduces the same kills at the same
   virtual-time points, the same spec-checker verdicts and the same leak
   numbers, run after run. *)

let deadline = 2_600_000
let watchdog_budget = 1_000_000

(* ------------------------------------------------------------------ *)
(* Scenario A: thread crashes against the collect algorithms.          *)
(* ------------------------------------------------------------------ *)

type crash_result = {
  cr_algo : string;
  cr_kills : int;
  cr_stalls : int;
  cr_ops : int;  (** operations completed by surviving threads *)
  cr_checked_collects : int;
  cr_checked_values : int;
  cr_live_faulty : int;  (** live words at quiescence, crashy run *)
  cr_live_control : int;  (** live words at quiescence, fault-free control *)
  cr_pinned_faulty : int;  (** live words after an honest destroy, crashy run *)
  cr_pinned_control : int;  (** same for the control run: the structural floor *)
  cr_fault_trace : string;
}

(* Words an honest destroy could not reclaim *because of the crashes*: the
   faulty run's post-destroy residue minus the control run's structural
   floor (the TLE lock word and suchlike, present either way). Zero for
   the HTM algorithms; the crashed reader's pinned nodes for the
   counter-based schemes. *)
let cr_crash_pinned c = c.cr_pinned_faulty - c.cr_pinned_control

(* 2 collectors + [churners] updaters; churners register one handle each
   and update it continuously; every operation goes through the §2.3 spec
   checker. Returns (ops, verdict, live_at_quiesce, pinned_after_destroy).
   Raises [Collect_spec.Violation] if any collect was incorrect and
   [Sim.Watchdog] if the machine ever stopped committing progress. *)
let collect_workload (maker : Collect.Intf.maker) ~seed ~faults =
  let m = Driver.machine ~seed ~label:("chaos/" ^ maker.algo_name) () in
  let churners = 6 in
  let threads = churners + 2 in
  let cfg = { Collect.Intf.default_cfg with num_threads = threads; max_slots = 8 * threads } in
  let inst = maker.make m.htm m.boot cfg in
  let spec = Collect_spec.create () in
  let ops = ref 0 in
  let churner _i ctx =
    let h = Collect_spec.register spec inst ctx in
    Sim.note_progress ctx;
    while Sim.clock ctx < deadline do
      Driver.tick_dispatch ctx;
      Collect_spec.update spec inst ctx h;
      Sim.note_progress ctx;
      incr ops
    done;
    Collect_spec.deregister spec inst ctx h;
    Sim.note_progress ctx
  in
  let collector ctx =
    while Sim.clock ctx < deadline do
      Driver.tick_dispatch ctx;
      Collect_spec.collect spec inst ctx;
      Sim.note_progress ctx;
      incr ops
    done
  in
  let bodies =
    Array.init threads (fun i -> if i < 2 then collector else churner (i - 2))
  in
  Sim.run ~seed ?faults ~watchdog:watchdog_budget
    ~diag:(fun () ->
      let st = Htm.stats m.htm in
      Printf.sprintf
        "  htm: %d commits, %d fallbacks, aborts c/o/i/e/l/s = %d/%d/%d/%d/%d/%d\n"
        st.commits st.lock_fallbacks st.aborts_conflict st.aborts_overflow
        st.aborts_illegal st.aborts_explicit st.aborts_lock st.aborts_spurious)
    bodies;
  (* Quiescent: survivors deregistered; only crashed threads' handles are
     still registered. One last checked collect from the boot context must
     see exactly those. *)
  Collect_spec.collect spec inst m.boot;
  let verdict = Collect_spec.check spec in
  let live = (Simmem.stats m.mem).live_words in
  inst.destroy m.boot;
  let pinned = (Simmem.stats m.mem).live_words in
  (!ops, verdict, live, pinned)

(* Deterministic kill schedule: two churners and one collector die
   mid-measurement, at fixed virtual times — mid-operation with whatever
   partial state their next scheduling point catches them in. *)
let crash_spec =
  {
    Sim.Fault.none with
    fault_seed = 0xc4a5;
    stall_rate = 0.0005;
    stall_cycles = 4_000;
    kills_at = [ (0, 1_600_000); (3, 1_400_000); (5, 1_900_000) ];
  }

let collect_crash_one ?(seed = 7) (maker : Collect.Intf.maker) =
  let faults = Sim.Fault.make crash_spec in
  let ops, verdict, live_faulty, pinned = collect_workload maker ~seed ~faults:(Some faults) in
  let _, _, live_control, pinned_control = collect_workload maker ~seed ~faults:None in
  {
    cr_algo = maker.algo_name;
    cr_kills = Sim.Fault.kills faults;
    cr_stalls = Sim.Fault.stalls faults;
    cr_ops = ops;
    cr_checked_collects = verdict.Collect_spec.checked_collects;
    cr_checked_values = verdict.Collect_spec.checked_values;
    cr_live_faulty = live_faulty;
    cr_live_control = live_control;
    cr_pinned_faulty = pinned;
    cr_pinned_control = pinned_control;
    cr_fault_trace = Sim.Fault.trace faults;
  }

(* ------------------------------------------------------------------ *)
(* Scenario B: thread crashes against the queues.                      *)
(* ------------------------------------------------------------------ *)

type queue_result = {
  qr_queue : string;
  qr_kills : int;
  qr_enqueued : int;  (** enqueues started (crash-interrupted included) *)
  qr_dequeued : int;  (** values dequeued by survivors + the final drain *)
  qr_lost : int;  (** enqueue-intents that never surfaced (crashed ops) *)
  qr_live_quiesce : int;  (** live words after the drain, before destroy *)
  qr_pinned : int;  (** live words after destroy *)
}

exception Queue_violation of string

let queue_crash_one ?(seed = 7) (maker : Hqueue.Intf.maker) =
  let m = Driver.machine ~seed ~label:("crash/" ^ maker.queue_name) () in
  let threads = 8 in
  let inst = maker.make m.htm m.boot ~num_threads:(threads + 1) in
  let next_value = ref 0 in
  let enq_intents = Hashtbl.create 4096 in
  let dequeued = Hashtbl.create 4096 in
  (* Record the intent *before* the operation: a crashed enqueue may or may
     not have landed, and both outcomes must be recognised later. Record
     dequeues *after* the operation: a crashed dequeue may lose its value,
     which is the crashed consumer's prerogative. *)
  let take v =
    if v = 0 then raise (Queue_violation "dequeued the reserved value 0");
    if not (Hashtbl.mem enq_intents v) then
      raise (Queue_violation (Printf.sprintf "dequeued fabricated value %d" v));
    if Hashtbl.mem dequeued v then
      raise (Queue_violation (Printf.sprintf "value %d dequeued twice" v));
    Hashtbl.replace dequeued v ()
  in
  let producer ctx =
    while Sim.clock ctx < deadline do
      Driver.tick_dispatch ctx;
      incr next_value;
      let v = !next_value in
      Hashtbl.replace enq_intents v ();
      inst.enqueue ctx v;
      Sim.note_progress ctx
    done
  in
  let consumer ctx =
    while Sim.clock ctx < deadline do
      Driver.tick_dispatch ctx;
      (match inst.dequeue ctx with Some v -> take v | None -> ());
      Sim.note_progress ctx
    done
  in
  let bodies = Array.init threads (fun i -> if i land 1 = 0 then producer else consumer) in
  let faults =
    Sim.Fault.make
      {
        Sim.Fault.none with
        fault_seed = 0xbeef;
        kills_at = [ (2, 1_500_000); (5, 1_900_000) ] (* one producer, one consumer *);
      }
  in
  Sim.run ~seed ~faults ~watchdog:watchdog_budget bodies;
  (* Drain from the boot context: everything still in the queue must be a
     recorded intent and must not have been handed out before. *)
  let rec drain () =
    match inst.dequeue m.boot with
    | Some v ->
      take v;
      drain ()
    | None -> ()
  in
  drain ();
  let live = (Simmem.stats m.mem).live_words in
  inst.destroy m.boot;
  let pinned = (Simmem.stats m.mem).live_words in
  {
    qr_queue = maker.queue_name;
    qr_kills = Sim.Fault.kills faults;
    qr_enqueued = Hashtbl.length enq_intents;
    qr_dequeued = Hashtbl.length dequeued;
    qr_lost = Hashtbl.length enq_intents - Hashtbl.length dequeued;
    qr_live_quiesce = live;
    qr_pinned = pinned;
  }

(* ------------------------------------------------------------------ *)
(* Scenario C: Rock-grade environmental adversity — spurious aborts    *)
(* and preemption stalls, survived through the TLE fallback.           *)
(* ------------------------------------------------------------------ *)

type spurious_result = {
  sp_algo : string;
  sp_ops : int;
  sp_spurious : int;  (** spurious aborts suffered (from {!Htm.stats}) *)
  sp_fallbacks : int;  (** TLE lock acquisitions *)
  sp_max_consec : int;  (** worst retry chain before a commit *)
  sp_slowest_commit : int;  (** top occupied cycles-to-commit bucket *)
  sp_checked_collects : int;
}

let spurious_one ?(seed = 7) ?(rate = 0.15) (maker : Collect.Intf.maker) =
  let m =
    Driver.machine
      ~htm_config:{ Htm.default_config with tle = Htm.Tle_after 6 }
      ~seed ~label:("spurious/" ^ maker.algo_name) ()
  in
  let churners = 6 in
  let threads = churners + 2 in
  let cfg = { Collect.Intf.default_cfg with num_threads = threads; max_slots = 8 * threads } in
  let inst = maker.make m.htm m.boot cfg in
  let spec = Collect_spec.create () in
  let ops = ref 0 in
  let faults =
    Sim.Fault.make
      {
        Sim.Fault.none with
        fault_seed = 0x5eed;
        stall_rate = 0.001;
        stall_cycles = 3_000;
        spurious_abort_rate = rate;
      }
  in
  let churner ctx =
    let h = Collect_spec.register spec inst ctx in
    Sim.note_progress ctx;
    while Sim.clock ctx < deadline do
      Driver.tick_dispatch ctx;
      Collect_spec.update spec inst ctx h;
      Sim.note_progress ctx;
      incr ops
    done;
    Collect_spec.deregister spec inst ctx h;
    Sim.note_progress ctx
  in
  let collector ctx =
    while Sim.clock ctx < deadline do
      Driver.tick_dispatch ctx;
      Collect_spec.collect spec inst ctx;
      Sim.note_progress ctx;
      incr ops
    done
  in
  let bodies = Array.init threads (fun i -> if i < 2 then collector else churner) in
  Sim.run ~seed ~faults ~watchdog:watchdog_budget bodies;
  let verdict = Collect_spec.check spec in
  inst.destroy m.boot;
  let st = Htm.stats m.htm in
  let slowest =
    List.fold_left (fun acc (b, _) -> max acc b) 0 (Htm.commit_cycles_histogram m.htm)
  in
  {
    sp_algo = maker.algo_name;
    sp_ops = !ops;
    sp_spurious = st.aborts_spurious;
    sp_fallbacks = st.lock_fallbacks;
    sp_max_consec = st.max_consecutive_aborts;
    sp_slowest_commit = slowest;
    sp_checked_collects = verdict.Collect_spec.checked_collects;
  }

(* ------------------------------------------------------------------ *)
(* Scenario D: crashes aimed at the STM commit window. The collect      *)
(* algorithm runs entirely on the TL2 software path, and the fault plan *)
(* kills threads at the [stm.commit] point — after versioned-lock       *)
(* acquisition, before write-back — so survivors must steal the locks   *)
(* to keep the machine live.                                            *)
(* ------------------------------------------------------------------ *)

type stm_crash_result = {
  st_kills : int;  (** threads killed while holding STM versioned locks *)
  st_ops : int;  (** operations completed by survivors *)
  st_steals : int;  (** locks recovered from the corpses *)
  st_checked_collects : int;  (** spec-checked collects (all passed) *)
  st_stm_commits : int;
}

let stm_crash_one ?(seed = 7) () =
  let maker = Option.get (Collect.find_maker "ListFastCollect") in
  let m =
    Driver.machine
      ~htm_config:{ Htm.default_config with stm = Htm.Stm_after 0 }
      ~seed ~label:"chaos/stm-crash" ()
  in
  let churners = 6 in
  let threads = churners + 2 in
  let cfg = { Collect.Intf.default_cfg with num_threads = threads; max_slots = 8 * threads } in
  let inst = maker.make m.htm m.boot cfg in
  let spec = Collect_spec.create () in
  let ops = ref 0 in
  let faults =
    Sim.Fault.make
      {
        Sim.Fault.none with
        fault_seed = 0x57ea1;
        kills_at_point =
          [ (3, "stm.commit", 1_200_000); (5, "stm.commit", 1_600_000) ];
      }
  in
  let churner ctx =
    let h = Collect_spec.register spec inst ctx in
    Sim.note_progress ctx;
    while Sim.clock ctx < deadline do
      Driver.tick_dispatch ctx;
      Collect_spec.update spec inst ctx h;
      Sim.note_progress ctx;
      incr ops
    done;
    Collect_spec.deregister spec inst ctx h;
    Sim.note_progress ctx
  in
  let collector ctx =
    while Sim.clock ctx < deadline do
      Driver.tick_dispatch ctx;
      Collect_spec.collect spec inst ctx;
      Sim.note_progress ctx;
      incr ops
    done
  in
  let bodies = Array.init threads (fun i -> if i < 2 then collector else churner) in
  Sim.run ~seed ~faults ~watchdog:watchdog_budget
    ~diag:(fun () ->
      let st = Htm.stats m.htm in
      Printf.sprintf "  stm: %d commits, %d steals\n" st.stm_commits st.stm_steals)
    bodies;
  Collect_spec.collect spec inst m.boot;
  let verdict = Collect_spec.check spec in
  let st = Htm.stats m.htm in
  {
    st_kills = Sim.Fault.kills faults;
    st_ops = !ops;
    st_steals = st.stm_steals;
    st_checked_collects = verdict.Collect_spec.checked_collects;
    st_stm_commits = st.stm_commits;
  }

(* ------------------------------------------------------------------ *)
(* The full experiment and its rendering.                              *)
(* ------------------------------------------------------------------ *)

type summary = {
  crashes : crash_result list;
  queues : queue_result list;
  spurious : spurious_result list;
  stm_crashes : stm_crash_result list;
}

(** One scenario run against one algorithm — the unit of parallelism. *)
type piece =
  | Crash of crash_result
  | Queue of queue_result
  | Spurious of spurious_result
  | Stm_crash of stm_crash_result

(* One cell per (scenario x algorithm), in canonical sweep order. *)
let cells ?(seed = 7) () =
  List.map
    (fun (mk : Collect.Intf.maker) ->
      Runner.Cell.v ~label:("chaos/crash/" ^ mk.algo_name) (fun () ->
          Crash (collect_crash_one ~seed mk)))
    Collect.all
  @ List.map
      (fun (mk : Hqueue.Intf.maker) ->
        Runner.Cell.v ~label:("chaos/queue/" ^ mk.queue_name) (fun () ->
            Queue (queue_crash_one ~seed mk)))
      Hqueue.all_with_extensions
  @ List.map
      (fun (mk : Collect.Intf.maker) ->
        Runner.Cell.v ~label:("chaos/spurious/" ^ mk.algo_name) (fun () ->
            Spurious (spurious_one ~seed mk)))
      Collect.all
  @ [
      Runner.Cell.v ~label:"chaos/stm-crash/ListFastCollect" (fun () ->
          Stm_crash (stm_crash_one ~seed ()));
    ]

let summary_of_pieces pieces =
  {
    crashes = List.filter_map (function Crash c -> Some c | _ -> None) pieces;
    queues = List.filter_map (function Queue q -> Some q | _ -> None) pieces;
    spurious = List.filter_map (function Spurious s -> Some s | _ -> None) pieces;
    stm_crashes = List.filter_map (function Stm_crash s -> Some s | _ -> None) pieces;
  }

let run_all ?jobs ?seed () =
  summary_of_pieces (Runner.Sweep.values (Runner.Sweep.run ?jobs (cells ?seed ())))

let fi = float_of_int

let crash_table (crashes : crash_result list) : Report.table =
  {
    title = "Thread crashes mid-operation (3 of 8 threads killed): \
             spec verdicts and leakage";
    xlabel = "algorithm";
    unit = "words / counts";
    columns =
      [ "kills"; "ops-survived"; "collects-ok"; "live@quiesce"; "live-control";
        "crash-pinned" ];
    rows =
      List.map
        (fun c ->
          ( c.cr_algo,
            [ Some (fi c.cr_kills); Some (fi c.cr_ops); Some (fi c.cr_checked_collects);
              Some (fi c.cr_live_faulty); Some (fi c.cr_live_control);
              Some (fi (cr_crash_pinned c)) ] ))
        crashes;
  }

let queue_table (queues : queue_result list) : Report.table =
  {
    title = "Thread crashes against the queues (2 of 8 threads killed)";
    xlabel = "queue";
    unit = "words / counts";
    columns = [ "kills"; "enq-started"; "deq-total"; "lost-in-crash"; "live@quiesce" ];
    rows =
      List.map
        (fun q ->
          ( q.qr_queue,
            [ Some (fi q.qr_kills); Some (fi q.qr_enqueued); Some (fi q.qr_dequeued);
              Some (fi q.qr_lost); Some (fi q.qr_live_quiesce) ] ))
        queues;
  }

let spurious_table (spurious : spurious_result list) : Report.table =
  {
    title = "Spurious aborts at 15% per attempt, TLE after 6 (all runs \
             completed; watchdog silent)";
    xlabel = "algorithm";
    unit = "counts";
    columns = [ "ops"; "spurious-aborts"; "lock-fallbacks"; "max-consec-aborts";
                "slowest-commit-2^k" ];
    rows =
      List.map
        (fun s ->
          ( s.sp_algo,
            [ Some (fi s.sp_ops); Some (fi s.sp_spurious); Some (fi s.sp_fallbacks);
              Some (fi s.sp_max_consec); Some (fi s.sp_slowest_commit) ] ))
        spurious;
  }

let crash_note =
  "Every collect above passed the full #2.3 specification check after\n\
   the kills. 'live@quiesce' minus 'live-control' is the bounded leak a\n\
   crash costs (the dead threads' still-registered handles);\n\
   'crash-pinned' is what an honest destroy could not reclaim relative\n\
   to the fault-free control: zero (or the dead handles' cells) for the\n\
   HTM algorithms, permanently pinned nodes for the reference-counting\n\
   schemes, whose crashed readers hold pins forever.\n"

let queue_note =
  "No queue handed out a duplicated or fabricated value; 'lost' values\n\
   vanished inside crashed operations, which the sequential spec\n\
   permits.\n"

let spurious_note =
  "With a 15% per-attempt spurious abort rate every algorithm still\n\
   completed every operation: the TLE lock bounds the retry chain, and\n\
   the escalation tail shows up in max-consec-aborts and the\n\
   cycles-to-commit histogram.\n"

let stm_crash_table (stm_crashes : stm_crash_result list) : Report.table =
  {
    title = "Crashes inside the STM commit window (ListFastCollect, software path)";
    xlabel = "run";
    unit = "counts";
    columns = [ "kills"; "ops-survived"; "lock-steals"; "collects-ok"; "stm-commits" ];
    rows =
      List.map
        (fun s ->
          ( "stm-forced, 2 of 8 killed",
            [ Some (fi s.st_kills); Some (fi s.st_ops); Some (fi s.st_steals);
              Some (fi s.st_checked_collects); Some (fi s.st_stm_commits) ] ))
        stm_crashes;
  }

let stm_crash_note =
  "The kills fire at the [stm.commit] fault point: the victims die\n\
   holding versioned write-locks, after validation, before write-back.\n\
   Survivors watch the owners' heartbeats, steal the stale locks and\n\
   keep committing under the armed watchdog; every collect still passed\n\
   the full #2.3 specification check.\n"

(* The rendered tables with their explanatory notes, in report
   order — what [report] prints and the bench registry captures. *)
let tables (s : summary) =
  [
    (crash_table s.crashes, crash_note);
    (queue_table s.queues, queue_note);
    (spurious_table s.spurious, spurious_note);
    (stm_crash_table s.stm_crashes, stm_crash_note);
  ]

let report ppf (s : summary) =
  List.iter
    (fun (t, note) ->
      Report.print ppf t;
      Format.fprintf ppf "@.%s@." note)
    (tables s)
