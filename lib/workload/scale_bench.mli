(** The scaling study: fig1/fig3-shaped workloads at 16–256 simulated
    threads on million-word heaps, asking whether the paper's headline
    shapes survive past Rock's 16 cores. *)

type result = { subject : string; threads : int; throughput : float }

val heap_words : int
(** Initial heap extent of every scale machine (2^20 words), so growth
    never perturbs the measured window. *)

val default_threads : int list
(** [16; 64; 128; 256]. *)

val queue_names : string list
val collect_names : string list

val queue_one :
  Hqueue.Intf.maker -> threads:int -> duration:int -> seed:int -> result
(** One fig1-shaped queue cell at [threads]; also the fixed reference
    cell of the CI perf floor. *)

val collect_one :
  Collect.Intf.maker -> threads:int -> duration:int -> seed:int -> result

val cells :
  ?threads:int list -> ?duration:int -> ?seed:int -> unit -> result Runner.Cell.t list
(** One cell per (thread count x subject): the queue block then the
    collect block, each in canonical sweep order. *)

val to_tables : result list -> Report.table list
(** The two tables: queue throughput and the collect-dominated mix. *)
