(** The degradation-lattice experiment ([bench fallback]): fallback policy
    x thread count on 48-store transactions (shared and disjoint), the
    hybrid-TM interference sweep (M software writers collapsing hardware
    throughput), and the mid-commit-crash liveness run where survivors
    steal a dead thread's versioned locks under an armed watchdog. *)

type policy = { pol_name : string; pol_config : Htm.config }

val policies : policy list
(** [htm-tle] (hardware with TLE after 6 aborts), [hybrid]
    ({!Htm.hybrid_config}: 2 hardware attempts, then STM, TLE last
    resort), [stm-only] (everything on the TL2 path), [tle-only]
    (straight to the lock) — canonical row order of the tables. *)

type grid_result = {
  gr_policy : string;
  gr_threads : int;
  gr_shared : bool;
  gr_tput : float;
  gr_attempts_hw : int;
  gr_attempts_stm : int;
  gr_attempts_tle : int;
  gr_escalations : int;
  gr_fallbacks : int;
  gr_stm_commits : int;
}

type interf_result = {
  ir_big_writers : int;
  ir_small_tput : float;
  ir_big_tput : float;
  ir_small_conflicts : int;
  ir_escalations : int;
}

type chaos_result = {
  ch_kills : int;
  ch_survivor_ops : int;
  ch_steals : int;
  ch_torn : int;  (** words disagreeing at quiescence — must be 0 *)
}

type piece =
  | Grid of grid_result
  | Interf of interf_result
  | Chaos of chaos_result

type summary = {
  grid : grid_result list;
  interference : interf_result list;
  chaos : chaos_result list;
}

val cells :
  ?threads:int list ->
  ?big:int list ->
  ?duration:int ->
  ?seed:int ->
  unit ->
  piece Runner.Cell.t list
(** One cell per sweep point, in canonical order: the policy x threads
    grid (shared then disjoint), the interference sweep over [big], then
    the chaos run. *)

val summary_of_pieces : piece list -> summary

val run_all :
  ?jobs:int -> ?threads:int list -> ?big:int list -> ?duration:int -> ?seed:int ->
  unit -> summary

val tables : summary -> (Report.table * string) list
(** Rendered tables with their explanatory notes, in report order. *)

val report : Format.formatter -> summary -> unit
