(** Figure 3: the Collect-dominated mixed workload.

    Threads draw operations with distribution Collect 90 %, Update 8 %,
    Register 1 %, DeRegister 1 %. Each thread owns a queue of at most
    [64/n] slots; 32 slots total are registered before measurement.
    Register is ignored when the thread's queue is full, Update/DeRegister
    when it is empty; Update stores to the least-recently-used slot. *)

type result = { algo : string; threads : int; throughput : float }

let total_budget = 64
let initial_registered = 32

let run_one (maker : Collect.Intf.maker) ~threads ~duration ~step ~seed =
  let m =
    Driver.machine ~seed ~label:(Printf.sprintf "%s x%d" maker.algo_name threads) ()
  in
  let cfg =
    { Collect.Intf.max_slots = total_budget; num_threads = threads; step; min_size = 4 }
  in
  let inst = maker.make m.htm m.boot cfg in
  let per_thread = max 1 (total_budget / threads) in
  let pre_registered = max 1 (initial_registered / threads) in
  let deadline = Driver.warmup + duration in
  let ops = Array.make threads 0 in
  let bodies =
    Array.init threads (fun i ->
        fun ctx ->
          let slots = Queue.create () in
          for _ = 1 to pre_registered do
            Queue.add (inst.register ctx (Driver.fresh_value ())) slots
          done;
          let buf = Sim.Ibuf.create ~capacity:total_budget () in
          let rng = Sim.rng ctx in
          Sim.advance_to ctx Driver.warmup;
          while Sim.clock ctx < deadline do
            let dice = Sim.Rng.int rng 100 in
            let performed =
              if dice < 90 then begin
                Driver.tick_dispatch ctx;
                Sim.Ibuf.clear buf;
                inst.collect ctx buf;
                true
              end
              else if dice < 98 then begin
                if Queue.is_empty slots then false
                else begin
                  Driver.tick_dispatch ctx;
                  let h = Queue.pop slots in
                  inst.update ctx h (Driver.fresh_value ());
                  Queue.add h slots;
                  true
                end
              end
              else if dice < 99 then begin
                if Queue.length slots >= per_thread then false
                else begin
                  Driver.tick_dispatch ctx;
                  Queue.add (inst.register ctx (Driver.fresh_value ())) slots;
                  true
                end
              end
              else if Queue.is_empty slots then false
              else begin
                Driver.tick_dispatch ctx;
                inst.deregister ctx (Queue.pop slots);
                true
              end
            in
            if performed then ops.(i) <- ops.(i) + 1 else Sim.tick ctx 20
          done;
          Queue.iter (fun h -> inst.deregister ctx h) slots)
  in
  Sim.run ~seed bodies;
  inst.destroy m.boot;
  let total = Array.fold_left ( + ) 0 ops in
  { algo = maker.algo_name; threads; throughput = Driver.ops_per_us ~ops:total ~duration }

let default_threads = [ 2; 4; 6; 8; 10; 12; 14; 16 ]

(* One cell per (thread count x algorithm), in canonical sweep order. *)
let cells ?(makers = Collect.all) ?(threads = default_threads) ?(duration = 400_000)
    ?(step = Collect.Intf.Fixed 32) ?(seed = 31) () =
  List.concat_map
    (fun n ->
      List.map
        (fun (mk : Collect.Intf.maker) ->
          Runner.Cell.v ~label:(Printf.sprintf "fig3/%s/x%d" mk.algo_name n) (fun () ->
              run_one mk ~threads:n ~duration ~step ~seed))
        makers)
    threads

let run ?jobs ?makers ?threads ?duration ?step ?seed () =
  Runner.Sweep.values
    (Runner.Sweep.run ?jobs (cells ?makers ?threads ?duration ?step ?seed ()))

let to_table ?(makers = Collect.all) results =
  let columns = List.map (fun (m : Collect.Intf.maker) -> m.algo_name) makers in
  let threads = List.sort_uniq Int.compare (List.map (fun r -> r.threads) results) in
  let rows =
    List.map
      (fun n ->
        ( string_of_int n,
          List.map
            (fun a ->
              List.find_opt (fun r -> r.threads = n && String.equal r.algo a) results
              |> Option.map (fun r -> r.throughput))
            columns ))
      threads
  in
  {
    Report.title = "Figure 3: Collect-dominated workload (step 32)";
    xlabel = "threads";
    unit = "ops/us";
    columns;
    rows;
  }
