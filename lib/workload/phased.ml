(** Figure 8: Collect performance as the number of registered slots varies
    over time. One collector; the updaters (update period 20 000 cycles)
    alternately raise the registered-slot total from [low] to [high] and
    back at every phase boundary. Collect completions are bucketed over
    time, showing which algorithms adapt to the registered count — and
    that ArrayStatSearchNo never recovers because its scan length is the
    historical maximum.

    The paper's 500 ms phases are virtually rescaled (500 ms of Rock time
    would be ~10⁹ simulated cycles); the phenomenon only needs phases long
    enough to contain many collects. *)

type result = {
  algo : string;
  buckets : (float * float) list;  (** (time in ms, collects per µs) *)
}

let low_slots = 16
let high_slots = 64
let update_period = 20_000

let run_one (maker : Collect.Intf.maker) ~updaters ~phase_len ~phases ~bucket_len ~step ~seed =
  let m =
    Driver.machine ~seed ~label:(Printf.sprintf "%s u%d" maker.algo_name updaters) ()
  in
  let threads = updaters + 1 in
  let cfg =
    { Collect.Intf.max_slots = high_slots * 2; num_threads = threads; step; min_size = 4 }
  in
  let inst = maker.make m.htm m.boot cfg in
  let duration = phase_len * phases in
  let deadline = Driver.warmup + duration in
  let nbuckets = (duration + bucket_len - 1) / bucket_len in
  let bucket_counts = Array.make nbuckets 0 in
  let low_quota = Array.of_list (Driver.split_evenly low_slots updaters) in
  let high_quota = Array.of_list (Driver.split_evenly high_slots updaters) in
  let target_quota i now =
    let phase = (now - Driver.warmup) / phase_len in
    if phase mod 2 = 0 then low_quota.(i) else high_quota.(i)
  in
  let measuring = ref true in
  let collector ctx =
    let buf = Sim.Ibuf.create ~capacity:(2 * high_slots) () in
    Sim.advance_to ctx Driver.warmup;
    while Sim.clock ctx < deadline do
      Driver.tick_dispatch ctx;
      Sim.Ibuf.clear buf;
      inst.collect ctx buf;
      let b = (Sim.clock ctx - Driver.warmup) / bucket_len in
      if b >= 0 && b < nbuckets then bucket_counts.(b) <- bucket_counts.(b) + 1
    done;
    measuring := false
  in
  let updater i ctx =
    let slots = Queue.create () in
    let adjust () =
      let target = target_quota i (Sim.clock ctx) in
      while Queue.length slots < target do
        Queue.add (inst.register ctx (Driver.fresh_value ())) slots
      done;
      while Queue.length slots > target do
        inst.deregister ctx (Queue.pop slots)
      done
    in
    (* initial phase-0 population *)
    for _ = 1 to low_quota.(i) do
      Queue.add (inst.register ctx (Driver.fresh_value ())) slots
    done;
    Driver.periodic_loop ctx ~deadline ~period:update_period (fun () ->
        adjust ();
        if not (Queue.is_empty slots) then begin
          let h = Queue.pop slots in
          inst.update ctx h (Driver.fresh_value ());
          Queue.add h slots
        end);
    (* Hold the final phase's registrations until the collector finishes. *)
    while !measuring do
      Sim.tick ctx 2000
    done;
    Queue.iter (fun h -> inst.deregister ctx h) slots;
    Queue.clear slots
  in
  let bodies = Array.init threads (fun i -> if i = 0 then collector else updater (i - 1)) in
  Sim.run ~seed bodies;
  inst.destroy m.boot;
  let bucket_us = float_of_int bucket_len /. float_of_int Driver.cycles_per_us in
  let buckets =
    List.init nbuckets (fun b ->
        ( float_of_int (b * bucket_len) /. float_of_int Driver.cycles_per_us /. 1000.0,
          float_of_int bucket_counts.(b) /. bucket_us ))
  in
  { algo = maker.algo_name; buckets }

let fig8_algos () =
  List.filter_map Collect.find_maker
    [ "ArrayStatAppendDereg"; "ArrayDynAppendDereg"; "ListFastCollect";
      "ArrayStatSearchNo"; "StaticBaseline" ]

(* One cell per algorithm, in canonical sweep order. *)
let cells ?(updaters = 15) ?(phase_len = 1_000_000) ?(phases = 6) ?(bucket_len = 200_000)
    ?(seed = 81) () =
  List.map
    (fun (mk : Collect.Intf.maker) ->
      let step = if mk.uses_htm then Collect.Intf.Fixed 32 else Collect.Intf.Fixed 1 in
      Runner.Cell.v ~label:(Printf.sprintf "fig8/%s" mk.algo_name) (fun () ->
          run_one mk ~updaters ~phase_len ~phases ~bucket_len ~step ~seed))
    (fig8_algos ())

let run ?jobs ?updaters ?phase_len ?phases ?bucket_len ?seed () =
  Runner.Sweep.values
    (Runner.Sweep.run ?jobs (cells ?updaters ?phase_len ?phases ?bucket_len ?seed ()))

let to_table results =
  let columns = List.map (fun r -> r.algo) results in
  let xs =
    match results with [] -> [] | r :: _ -> List.map fst r.buckets
  in
  let rows =
    List.mapi
      (fun bi x ->
        ( Printf.sprintf "%.1f" x,
          List.map (fun r -> Some (snd (List.nth r.buckets bi))) results ))
      xs
  in
  {
    Report.title = "Figure 8: Collect throughput vs time (slots alternate 16 <-> 64)";
    xlabel = "time ms";
    unit = "ops/us";
    columns;
    rows;
  }
