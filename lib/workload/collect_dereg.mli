(** Figure 7: Collect throughput under Register/DeRegister churn — one
    collector; churners cycle their slots with a fixed 20 000-cycle
    register period and a varied deregister period (paper §5.4). *)

type result = { algo : string; label : string; dereg_period : int; throughput : float }

val total_handles : int
val register_period : int
val default_periods : int list

val run_one :
  Collect.Intf.maker ->
  churners:int ->
  dereg_period:int ->
  duration:int ->
  step:Collect.Intf.step_policy ->
  seed:int ->
  result

val cells :
  ?makers:Collect.Intf.maker list ->
  ?churners:int ->
  ?periods:int list ->
  ?duration:int ->
  ?seed:int ->
  unit ->
  result Runner.Cell.t list
(** One cell per (dereg period x algorithm), in canonical sweep order. *)

val run :
  ?jobs:int ->
  ?makers:Collect.Intf.maker list ->
  ?churners:int ->
  ?periods:int list ->
  ?duration:int ->
  ?seed:int ->
  unit ->
  result list

val to_table : result list -> Report.table
