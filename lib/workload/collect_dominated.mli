(** Figure 3: the Collect-dominated mixed workload — Collect 90 %,
    Update 8 %, Register 1 %, DeRegister 1 % over a 64-slot budget with 32
    slots initially registered (paper §5.2). *)

type result = { algo : string; threads : int; throughput : float }

val total_budget : int
val initial_registered : int
val default_threads : int list

val cells :
  ?makers:Collect.Intf.maker list ->
  ?threads:int list ->
  ?duration:int ->
  ?step:Collect.Intf.step_policy ->
  ?seed:int ->
  unit ->
  result Runner.Cell.t list
(** One cell per (thread count x algorithm), in canonical sweep order. *)

val run :
  ?jobs:int ->
  ?makers:Collect.Intf.maker list ->
  ?threads:int list ->
  ?duration:int ->
  ?step:Collect.Intf.step_policy ->
  ?seed:int ->
  unit ->
  result list

val to_table : ?makers:Collect.Intf.maker list -> result list -> Report.table
