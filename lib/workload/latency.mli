(** §5.1: single-thread Update latency per algorithm, exposing the paper's
    two classes — direct naked-store updates vs. transactional updates
    through a slot reference. *)

type result = {
  algo : string;
  direct : bool;  (** the ≈135 ns class *)
  ns_per_update : float;
}

val run_one :
  Collect.Intf.maker -> handles:int -> updates:int -> seed:int -> result

val cells :
  ?makers:Collect.Intf.maker list ->
  ?handles:int ->
  ?updates:int ->
  ?seed:int ->
  unit ->
  result Runner.Cell.t list
(** One cell per algorithm, in canonical sweep order. *)

val run :
  ?jobs:int ->
  ?makers:Collect.Intf.maker list ->
  ?handles:int ->
  ?updates:int ->
  ?seed:int ->
  unit ->
  result list

val to_table : result list -> Report.table
(** The second column shows the paper's reference value for the class
    (135 or 215 ns). *)
