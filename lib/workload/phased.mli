(** Figure 8: Collect throughput over time as the registered-slot total
    alternates between {!low_slots} and {!high_slots} every phase
    (paper §5.5). Shows which algorithms adapt to the registered count —
    and that ArrayStatSearchNo never recovers. *)

type result = {
  algo : string;
  buckets : (float * float) list;  (** (time in ms, collects per µs) *)
}

val low_slots : int
val high_slots : int
val update_period : int

val fig8_algos : unit -> Collect.Intf.maker list

val cells :
  ?updaters:int ->
  ?phase_len:int ->
  ?phases:int ->
  ?bucket_len:int ->
  ?seed:int ->
  unit ->
  result Runner.Cell.t list
(** One cell per algorithm, in canonical sweep order. *)

val run :
  ?jobs:int ->
  ?updaters:int ->
  ?phase_len:int ->
  ?phases:int ->
  ?bucket_len:int ->
  ?seed:int ->
  unit ->
  result list

val to_table : result list -> Report.table
