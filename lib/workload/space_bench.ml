(** Space usage at quiescence — the paper's §1.1/§1.2 claims made
    quantitative.

    Queues: grow to [peak_len] entries, drain completely, then compare the
    allocator's live footprint against its historical peak. The HTM queue
    and the ROP variant return entries; plain Michael-Scott's pools retain
    the historical maximum. The collect experiment registers [peak]
    handles, deregisters them all, and reports what each algorithm still
    holds (dynamic algorithms shrink; static arrays and the type-stable
    Dynamic baseline do not). *)

type result = {
  subject : string;
  peak_words : int;  (** allocator peak while the structure was in use *)
  quiescent_words : int;  (** still live after drain/deregister-all *)
}

let queue_space_one ?(peak_len = 1000) ?(seed = 91) (mk : Hqueue.Intf.maker) =
  let m = Driver.machine ~seed ~label:("space/" ^ mk.queue_name) () in
      let base = (Simmem.stats m.mem).live_words in
      let q = mk.make m.htm m.boot ~num_threads:4 in
      (* Drive from simulated threads so per-thread pools/retired lists see
         realistic ownership. *)
      let bodies =
        Array.init 4 (fun i ->
            fun ctx ->
              for _ = 1 to peak_len / 4 do
                q.enqueue ctx (Driver.fresh_value ())
              done;
              if i = 0 then begin
                let rec drain () = match q.dequeue ctx with Some _ -> drain () | None -> () in
                drain ()
              end)
      in
      Sim.run ~seed bodies;
      let rec drain () = match q.dequeue m.boot with Some _ -> drain () | None -> () in
      drain ();
      let st = Simmem.stats m.mem in
      let r =
        {
          subject = "queue/" ^ mk.queue_name;
          peak_words = st.peak_live_words - base;
          quiescent_words = st.live_words - base;
        }
      in
      q.destroy m.boot;
      r

(* One cell per queue, in canonical sweep order. *)
let queue_cells ?peak_len ?seed () =
  List.map
    (fun (mk : Hqueue.Intf.maker) ->
      Runner.Cell.v ~label:("space/queue/" ^ mk.queue_name) (fun () ->
          queue_space_one ?peak_len ?seed mk))
    Hqueue.all

let queue_space ?jobs ?peak_len ?seed () =
  Runner.Sweep.values (Runner.Sweep.run ?jobs (queue_cells ?peak_len ?seed ()))

let collect_space_one ?(peak = 256) ?(seed = 92) (mk : Collect.Intf.maker) =
  let m = Driver.machine ~seed ~label:("space/" ^ mk.algo_name) () in
      let base = (Simmem.stats m.mem).live_words in
      let cfg =
        { Collect.Intf.max_slots = peak; num_threads = 1; step = Collect.Intf.Fixed 8;
          min_size = 4 }
      in
      let inst = mk.make m.htm m.boot cfg in
      let quiescent = ref 0 in
      let body ctx =
        let hs = Array.init peak (fun _ -> inst.register ctx (Driver.fresh_value ())) in
        Array.iter (fun h -> inst.deregister ctx h) hs;
        quiescent := (Simmem.stats m.mem).live_words - base
      in
      Sim.run ~seed [| body |];
      let st = Simmem.stats m.mem in
      let r =
        {
          subject = "collect/" ^ mk.algo_name;
          peak_words = st.peak_live_words - base;
          quiescent_words = !quiescent;
        }
      in
      inst.destroy m.boot;
      r

(* One cell per algorithm, in canonical sweep order. *)
let collect_cells ?peak ?seed () =
  List.map
    (fun (mk : Collect.Intf.maker) ->
      Runner.Cell.v ~label:("space/collect/" ^ mk.algo_name) (fun () ->
          collect_space_one ?peak ?seed mk))
    Collect.all

let collect_space ?jobs ?peak ?seed () =
  Runner.Sweep.values (Runner.Sweep.run ?jobs (collect_cells ?peak ?seed ()))

let to_table ~title results =
  {
    Report.title;
    xlabel = "structure";
    unit = "words";
    columns = [ "peak"; "quiescent" ];
    rows =
      List.map
        (fun r ->
          (r.subject, [ Some (float_of_int r.peak_words); Some (float_of_int r.quiescent_words) ]))
        results;
  }
