(** Figures 4–6: Collect throughput under concurrent Updates.

    One thread performs Collects back to back; [updaters] others each fire
    an Update every [period] cycles. The updaters register 64 handles total
    before measurement but each uses only its first handle, keeping the
    registered count independent of the thread count (paper §5.3). *)

type result = {
  algo : string;
  label : string;  (** algorithm + step annotation, for figure legends *)
  period : int;
  throughput : float;  (** collects per µs *)
  histogram : (int * int) list;  (** slots collected per step size (fig 6) *)
  commits : int;  (** HTM commits during the whole run *)
  aborts : int;  (** HTM aborts, all causes *)
}

let total_handles = 64

let step_label = function
  | Collect.Intf.Fixed n -> Printf.sprintf "step %d" n
  | Collect.Intf.Fixed_instrumented n -> Printf.sprintf "step %d (instr)" n
  | Collect.Intf.Adaptive -> "adapt"

let run_one (maker : Collect.Intf.maker) ~updaters ~period ~duration ~step ~seed =
  let m =
    Driver.machine ~seed ~label:(Printf.sprintf "%s u%d" maker.algo_name updaters) ()
  in
  let threads = updaters + 1 in
  let cfg =
    { Collect.Intf.max_slots = total_handles * 2; num_threads = threads; step; min_size = 4 }
  in
  let inst = maker.make m.htm m.boot cfg in
  let deadline = Driver.warmup + duration in
  let collects = ref 0 in
  let measuring = ref true in
  let quotas = Array.of_list (Driver.split_evenly total_handles updaters) in
  let collector ctx =
    let buf = Sim.Ibuf.create ~capacity:(2 * total_handles) () in
    Sim.advance_to ctx Driver.warmup;
    (* Measure only the steady state: registration-phase transactions
       (including resize helping) would pollute the abort telemetry. *)
    Htm.reset_stats m.htm;
    collects :=
      Driver.measured_loop ctx ~deadline (fun () ->
          Sim.Ibuf.clear buf;
          inst.collect ctx buf);
    measuring := false
  in
  let updater i ctx =
    let handles =
      Array.init quotas.(i) (fun _ -> inst.register ctx (Driver.fresh_value ()))
    in
    if Array.length handles > 0 then begin
      let h = handles.(0) in
      Driver.periodic_loop ctx ~deadline ~period (fun () ->
          inst.update ctx h (Driver.fresh_value ()))
    end;
    (* Keep the handles registered until the collector's measurement ends:
       the registered count must stay at 64 for the whole window. *)
    while !measuring do
      Sim.tick ctx 2000
    done;
    Array.iter (fun h -> inst.deregister ctx h) handles
  in
  let bodies =
    Array.init threads (fun i -> if i = 0 then collector else updater (i - 1))
  in
  Sim.run ~seed bodies;
  let histogram = inst.step_histogram () in
  inst.destroy m.boot;
  let st = Htm.stats m.htm in
  {
    algo = maker.algo_name;
    label = Printf.sprintf "%s (%s)" maker.algo_name (step_label step);
    period;
    throughput = Driver.ops_per_us ~ops:!collects ~duration;
    histogram;
    commits = st.commits;
    aborts =
      st.aborts_conflict + st.aborts_overflow + st.aborts_illegal + st.aborts_explicit
      + st.aborts_lock + st.aborts_spurious;
  }

(* Registration stampede: half the threads run collects back to back
   while the other half register fresh handles as fast as they can.
   Every collect's first transaction reads the list-head word before
   anything else and stays in flight for a whole telescoped traversal
   step, so each head insertion that commits mid-flight kills it at
   exactly that word — the paper's §3.1 header ping-pong expressed as
   transaction conflicts rather than mere coherence traffic, and the
   known truth [bench doctor contend] must attribute to the header
   line. Handles are never deregistered during the window ([destroy]
   reclaims them): unlink write-backs would spray conflicts across aged
   node lines and muddy the single-line story this cell isolates. *)
type churn_result = {
  churn_algo : string;
  churn_threads : int;
  churn_registers : int;  (** handles registered during the window *)
  churn_collects : int;  (** collects completed during the window *)
  churn_throughput : float;  (** registrations per µs *)
  churn_commits : int;
  churn_aborts : int;
}

let churn_one (maker : Collect.Intf.maker) ~threads ~duration ~seed =
  let m =
    Driver.machine ~seed ~label:(Printf.sprintf "%s churn%d" maker.algo_name threads) ()
  in
  let registrants = max 1 (threads / 2) in
  let collectors = max 1 (threads - registrants) in
  (* Bound on live handles: registrants churn flat out, one every ~250
     cycles at the very least. *)
  let bound = 64 + (2 * registrants * (duration / 250)) in
  let cfg =
    { Collect.Intf.max_slots = bound; num_threads = threads;
      step = Collect.Intf.Fixed 8; min_size = 4 }
  in
  let inst = maker.make m.htm m.boot cfg in
  let deadline = Driver.warmup + duration in
  let registers = Array.make registrants 0 in
  let collects = Array.make collectors 0 in
  let registrant i ctx =
    registers.(i) <-
      Driver.measured_loop ctx ~deadline (fun () ->
          ignore (inst.register ctx (Driver.fresh_value ())))
  in
  let collector i ctx =
    let buf = Sim.Ibuf.create ~capacity:bound () in
    collects.(i) <-
      Driver.measured_loop ctx ~deadline (fun () ->
          Sim.Ibuf.clear buf;
          inst.collect ctx buf)
  in
  let bodies =
    Array.init threads (fun i ->
        if i < collectors then collector i else registrant (i - collectors))
  in
  Sim.run ~seed bodies;
  inst.destroy m.boot;
  let st = Htm.stats m.htm in
  {
    churn_algo = maker.algo_name;
    churn_threads = threads;
    churn_registers = Array.fold_left ( + ) 0 registers;
    churn_collects = Array.fold_left ( + ) 0 collects;
    churn_throughput =
      Driver.ops_per_us ~ops:(Array.fold_left ( + ) 0 registers) ~duration;
    churn_commits = st.commits;
    churn_aborts =
      st.aborts_conflict + st.aborts_overflow + st.aborts_illegal + st.aborts_explicit
      + st.aborts_lock + st.aborts_spurious;
  }

let default_periods =
  [ 1_000_000; 500_000; 200_000; 100_000; 50_000; 20_000; 10_000;
    8_000; 6_000; 4_000; 2_000; 1_000; 800; 600; 400 ]

(* The Figure 4 line-up: the four telescoping algorithms adaptively
   stepped, plus the two whose collects use no transactions. *)
let fig4_algos () =
  List.filter_map
    (fun name -> Collect.find_maker name)
    [ "ArrayDynAppendDereg"; "ArrayStatAppendDereg"; "ListFastCollect";
      "ArrayDynSearchResize"; "ArrayStatSearchNo"; "StaticBaseline" ]

(* One cell per (period x algorithm), in canonical sweep order. *)
let cells_fig4 ?(updaters = 15) ?(periods = default_periods) ?(duration = 400_000)
    ?(seed = 41) () =
  List.concat_map
    (fun period ->
      List.map
        (fun (mk : Collect.Intf.maker) ->
          let step =
            if mk.uses_htm then Collect.Intf.Adaptive else Collect.Intf.Fixed 1
          in
          Runner.Cell.v ~label:(Printf.sprintf "fig4/%s/p%d" mk.algo_name period) (fun () ->
              run_one mk ~updaters ~period ~duration ~step ~seed))
        (fig4_algos ()))
    periods

let run_fig4 ?jobs ?updaters ?periods ?duration ?seed () =
  Runner.Sweep.values
    (Runner.Sweep.run ?jobs (cells_fig4 ?updaters ?periods ?duration ?seed ()))

(* Figure 5: fixed steps 8/16/32, the adaptive controller, and "Best
   (adapt cost)" — the best instrumented fixed step per period. *)
let fig5_steps = [ 8; 16; 32 ]
let fig5_best_candidates = [ 4; 8; 16; 32 ]

(* The fig-5 step line-up per period: the plotted fixed steps, the
   instrumented candidates "Best (adapt cost)" is folded from, then the
   adaptive controller. *)
let fig5_cell_steps () =
  List.map (fun s -> Collect.Intf.Fixed s) fig5_steps
  @ List.map (fun s -> Collect.Intf.Fixed_instrumented s) fig5_best_candidates
  @ [ Collect.Intf.Adaptive ]

(* One cell per (period x step policy), in canonical sweep order.
   {!fig5_collate} reduces the raw results to the plotted series. *)
let cells_fig5 ?(updaters = 15) ?(periods = default_periods) ?(duration = 400_000)
    ?(seed = 51) () =
  let maker = Option.get (Collect.find_maker "ArrayDynAppendDereg") in
  List.concat_map
    (fun period ->
      List.map
        (fun step ->
          Runner.Cell.v
            ~label:(Printf.sprintf "fig5/%s/p%d" (step_label step) period)
            (fun () -> run_one maker ~updaters ~period ~duration ~step ~seed))
        (fig5_cell_steps ()))
    periods

(* Collate raw fig-5 cell results (in cell order) into the plotted series:
   per period, the fixed steps, then "Best (adapt cost)" — the best
   instrumented candidate — then the adaptive run. *)
let fig5_collate results =
  let stride = List.length (fig5_cell_steps ()) in
  let nfixed = List.length fig5_steps in
  let arr = Array.of_list results in
  let periods = Array.length arr / stride in
  List.concat
    (List.init periods (fun p ->
         let at i = arr.((p * stride) + i) in
         let fixed = List.init nfixed at in
         let period = (at 0).period in
         let best =
           List.init (List.length fig5_best_candidates) (fun i -> at (nfixed + i))
           |> List.fold_left (fun acc r -> if r.throughput > acc.throughput then r else acc)
                { algo = ""; label = ""; period; throughput = neg_infinity; histogram = [];
                  commits = 0; aborts = 0 }
         in
         fixed @ [ { best with label = "Best (adapt cost)" }; at (stride - 1) ]))

let run_fig5 ?jobs ?updaters ?periods ?duration ?seed () =
  fig5_collate
    (Runner.Sweep.values
       (Runner.Sweep.run ?jobs (cells_fig5 ?updaters ?periods ?duration ?seed ())))

(* Figure 6: step-size usage distribution of the adaptive controller. *)
let cells_fig6 ?(updaters = 15)
    ?(periods = [ 8_000; 6_000; 4_000; 2_000; 1_000; 800; 600; 400 ]) ?(duration = 400_000)
    ?(seed = 61) () =
  let maker = Option.get (Collect.find_maker "ArrayDynAppendDereg") in
  List.map
    (fun period ->
      Runner.Cell.v ~label:(Printf.sprintf "fig6/adapt/p%d" period) (fun () ->
          run_one maker ~updaters ~period ~duration ~step:Collect.Intf.Adaptive ~seed))
    periods

let run_fig6 ?jobs ?updaters ?periods ?duration ?seed () =
  Runner.Sweep.values
    (Runner.Sweep.run ?jobs (cells_fig6 ?updaters ?periods ?duration ?seed ()))

let period_label p = if p >= 1000 then Printf.sprintf "%dk" (p / 1000) else string_of_int p

let to_table ~title results =
  let columns =
    List.fold_left (fun acc r -> if List.mem r.label acc then acc else acc @ [ r.label ]) []
      results
  in
  let periods =
    List.sort_uniq (fun a b -> Int.compare b a) (List.map (fun r -> r.period) results)
  in
  let rows =
    List.map
      (fun p ->
        ( period_label p,
          List.map
            (fun c ->
              List.find_opt (fun r -> r.period = p && String.equal r.label c) results
              |> Option.map (fun r -> r.throughput))
            columns ))
      periods
  in
  { Report.title; xlabel = "period"; unit = "ops/us"; columns; rows }

let fig6_table results =
  let steps = [ 1; 2; 4; 8; 16; 32 ] in
  let rows =
    List.map
      (fun r ->
        let total = List.fold_left (fun a (_, n) -> a + n) 0 r.histogram in
        ( period_label r.period,
          List.map
            (fun s ->
              let n = Option.value ~default:0 (List.assoc_opt s r.histogram) in
              if total = 0 then None else Some (100.0 *. float_of_int n /. float_of_int total))
            steps ))
      results
  in
  {
    Report.title = "Figure 6: Step-size distribution (ArrayDynAppendDereg, adaptive)";
    xlabel = "period";
    unit = "% of slots";
    columns = List.map (fun s -> Printf.sprintf "step%d" s) steps;
    rows;
  }
