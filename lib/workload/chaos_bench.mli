(** The survivability experiment the paper argued for but never ran
    (§1, §7): deterministic fault injection against every algorithm.

    Three scenarios, all seed-reproducible ({!Sim.Fault} plans):

    - {b collect crashes}: 3 of 8 threads are killed mid-operation at
      fixed virtual times while every operation runs through the §2.3
      spec checker ({!Collect_spec}); afterwards the run is checked, the
      quiescent live memory is compared against a fault-free control run
      (the bounded leak a crash costs), and an honest [destroy] exposes
      what can never be reclaimed — zero for the HTM algorithms,
      permanently pinned nodes for the reference-counting schemes;
    - {b queue crashes}: producers/consumers die mid-enqueue/dequeue;
      survivors and a final drain must observe no duplicated or
      fabricated value;
    - {b spurious aborts}: a 15% per-attempt environmental abort rate
      plus preemption stalls, with [Tle_after 6]; every algorithm must
      keep completing operations (the liveness watchdog stays silent)
      and the escalation shows up in {!Htm.stats};
    - {b STM commit-window crashes}: ListFastCollect runs entirely on
      the TL2 software path ([Stm_after 0]) and the plan kills threads
      at the ["stm.commit"] fault point — holding versioned write-locks,
      after validation, before write-back. Survivors must steal the
      stale locks (heartbeat timeout) and keep the machine live.

    [bench/main.exe chaos] runs {!run_all} and renders {!report}. *)

type crash_result = {
  cr_algo : string;
  cr_kills : int;
  cr_stalls : int;
  cr_ops : int;  (** operations completed by surviving threads *)
  cr_checked_collects : int;
  cr_checked_values : int;
  cr_live_faulty : int;  (** live words at quiescence, crashy run *)
  cr_live_control : int;  (** live words at quiescence, fault-free control *)
  cr_pinned_faulty : int;  (** live words after an honest destroy, crashy run *)
  cr_pinned_control : int;  (** same for the control run: the structural floor *)
  cr_fault_trace : string;  (** the injected-fault log, for determinism checks *)
}

val cr_crash_pinned : crash_result -> int
(** Words an honest destroy could not reclaim {e because of the crashes}
    ([cr_pinned_faulty - cr_pinned_control]): zero for the HTM algorithms,
    the crashed reader's permanently pinned nodes for the
    reference-counting schemes. *)

val collect_crash_one : ?seed:int -> Collect.Intf.maker -> crash_result
(** Run the crash scenario against one collect algorithm.
    @raise Collect_spec.Violation if any collect broke the specification.
    @raise Sim.Watchdog if the machine stopped committing progress. *)

type queue_result = {
  qr_queue : string;
  qr_kills : int;
  qr_enqueued : int;  (** enqueues started (crash-interrupted included) *)
  qr_dequeued : int;  (** values dequeued by survivors + the final drain *)
  qr_lost : int;  (** enqueue-intents that never surfaced (crashed ops) *)
  qr_live_quiesce : int;  (** live words after the drain, before destroy *)
  qr_pinned : int;  (** live words after destroy *)
}

exception Queue_violation of string
(** A queue handed out value 0, a value never enqueued, or a duplicate. *)

val queue_crash_one : ?seed:int -> Hqueue.Intf.maker -> queue_result

type spurious_result = {
  sp_algo : string;
  sp_ops : int;
  sp_spurious : int;  (** spurious aborts suffered (from {!Htm.stats}) *)
  sp_fallbacks : int;  (** TLE lock acquisitions *)
  sp_max_consec : int;  (** worst retry chain before a commit *)
  sp_slowest_commit : int;  (** top occupied cycles-to-commit bucket *)
  sp_checked_collects : int;
}

val spurious_one : ?seed:int -> ?rate:float -> Collect.Intf.maker -> spurious_result

type stm_crash_result = {
  st_kills : int;  (** threads killed while holding STM versioned locks *)
  st_ops : int;  (** operations completed by survivors *)
  st_steals : int;  (** locks recovered from the corpses *)
  st_checked_collects : int;  (** spec-checked collects (all passed) *)
  st_stm_commits : int;
}

val stm_crash_one : ?seed:int -> unit -> stm_crash_result
(** Scenario D on ListFastCollect.
    @raise Collect_spec.Violation if any collect broke the specification.
    @raise Sim.Watchdog if stealing failed to keep the machine live. *)

type summary = {
  crashes : crash_result list;
  queues : queue_result list;
  spurious : spurious_result list;
  stm_crashes : stm_crash_result list;
}

(** One scenario run against one algorithm — the unit of parallelism. *)
type piece =
  | Crash of crash_result
  | Queue of queue_result
  | Spurious of spurious_result
  | Stm_crash of stm_crash_result

val cells : ?seed:int -> unit -> piece Runner.Cell.t list
(** One cell per (scenario x algorithm), in canonical sweep order. *)

val summary_of_pieces : piece list -> summary

val run_all : ?jobs:int -> ?seed:int -> unit -> summary
(** All three scenarios: {!Collect.all} under crashes and spurious aborts,
    {!Hqueue.all_with_extensions} under crashes. *)

val tables : summary -> (Report.table * string) list
(** The rendered tables with their explanatory notes, in report order. *)

val report : Format.formatter -> summary -> unit
