(** §5.1: single-thread Update latency per algorithm.

    The paper reports ≈215 ns for the algorithms whose update goes through
    a level of indirection inside a transaction (ArrayStatAppendDereg,
    ArrayDynSearchResize, ArrayDynAppendDereg) and ≈135 ns for those whose
    handle addresses its storage directly (naked store). We report the same
    two-class split in virtual nanoseconds (0.5 ns per cycle). *)

type result = {
  algo : string;
  direct : bool;
  ns_per_update : float;
}

let run_one (maker : Collect.Intf.maker) ~handles ~updates ~seed =
  let m = Driver.machine ~seed ~label:maker.algo_name () in
  let cfg = { Collect.Intf.default_cfg with max_slots = handles * 2; num_threads = 1 } in
  let inst = maker.make m.htm m.boot cfg in
  let latency = ref 0.0 in
  let body ctx =
    let hs = Array.init handles (fun _ -> inst.register ctx (Driver.fresh_value ())) in
    let t0 = Sim.clock ctx in
    for i = 0 to updates - 1 do
      Driver.tick_dispatch ctx;
      inst.update ctx hs.(i mod handles) (Driver.fresh_value ())
    done;
    let cycles = Sim.clock ctx - t0 in
    latency := float_of_int cycles /. float_of_int updates *. 1000.0 /. float_of_int Driver.cycles_per_us;
    Array.iter (fun h -> inst.deregister ctx h) hs
  in
  Sim.run ~seed [| body |];
  inst.destroy m.boot;
  { algo = maker.algo_name; direct = maker.direct_update; ns_per_update = !latency }

(* One cell per algorithm, in canonical sweep order. *)
let cells ?(makers = Collect.all) ?(handles = 16) ?(updates = 2000) ?(seed = 21) () =
  List.map
    (fun (mk : Collect.Intf.maker) ->
      Runner.Cell.v ~label:("latency/" ^ mk.algo_name) (fun () ->
          run_one mk ~handles ~updates ~seed))
    makers

let run ?jobs ?makers ?handles ?updates ?seed () =
  Runner.Sweep.values (Runner.Sweep.run ?jobs (cells ?makers ?handles ?updates ?seed ()))

let to_table results =
  {
    Report.title = "Section 5.1: Update latency";
    xlabel = "algorithm";
    unit = "ns/update";
    columns = [ "latency"; "class" ];
    rows =
      List.map
        (fun r ->
          (r.algo, [ Some r.ns_per_update; Some (if r.direct then 135.0 else 215.0) ]))
        results;
  }
