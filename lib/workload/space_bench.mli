(** Quiescent-space measurements backing the paper's §1.1/§1.2 claims:
    peak vs. residual allocator footprint for queues (grow then drain) and
    collect objects (register then deregister everything). *)

type result = {
  subject : string;
  peak_words : int;  (** allocator peak while the structure was in use *)
  quiescent_words : int;  (** still live after drain/deregister-all *)
}

val queue_cells : ?peak_len:int -> ?seed:int -> unit -> result Runner.Cell.t list
val collect_cells : ?peak:int -> ?seed:int -> unit -> result Runner.Cell.t list
val queue_space : ?jobs:int -> ?peak_len:int -> ?seed:int -> unit -> result list
val collect_space : ?jobs:int -> ?peak:int -> ?seed:int -> unit -> result list
val to_table : title:string -> result list -> Report.table
