(** ArrayDynSearchResize (paper §3.2.4): dynamic array, search-based
    registration, compaction only on resize.

    Slots are 3 words ([+0] occupancy flag, [+1] value, [+2] back-pointer
    to the slot reference); handles are slot references as in the other
    moving-slot algorithms, because resizing compacts occupied slots into
    the new array. Between resizes, deregistered holes are not reused by
    compaction — registration must search for them — so collects
    "frequently traverse more slots than are registered" (§5.4), which is
    this algorithm's characteristic weakness. *)

let hdr_array = 0
let hdr_capacity = 1
let hdr_count = 2
let hdr_array_new = 3
let hdr_capacity_new = 4
let hdr_copied = 5 (* old-array scan cursor during a resize *)
let hdr_ncopied = 6 (* occupied slots placed into the new array *)

let slot_words = 3

type t = {
  htm : Htm.t;
  hdr : int;
  min_size : int;
  stepper : Stepper.t;
}

let copying tx hdr = Htm.read tx (hdr + hdr_array_new) <> 0

let create htm ctx (cfg : Collect_intf.cfg) =
  let mem = Htm.mem htm in
  let min_size = max 1 cfg.min_size in
  let hdr = Simmem.malloc mem ctx 7 in
  let arr = Simmem.malloc mem ctx (slot_words * min_size) in
  Simmem.write mem ctx (hdr + hdr_array) arr;
  Simmem.write mem ctx (hdr + hdr_capacity) min_size;
  { htm; hdr; min_size; stepper = Stepper.make cfg.step ~max_step:(Htm.config htm).store_buffer }

let help_copy_one t ctx =
  let hdr = t.hdr in
  let to_free =
    Htm.atomic t.htm ctx (fun tx ->
        if not (copying tx hdr) then 0
        else begin
          let copied = Htm.read tx (hdr + hdr_copied) in
          let capacity = Htm.read tx (hdr + hdr_capacity) in
          if copied < capacity then begin
            let arr = Htm.read tx (hdr + hdr_array) in
            let slot = arr + (slot_words * copied) in
            if Htm.read tx slot = 1 then begin
              (* Compact: occupied slots go to consecutive new positions. *)
              let anew = Htm.read tx (hdr + hdr_array_new) in
              let ncopied = Htm.read tx (hdr + hdr_ncopied) in
              let ns = anew + (slot_words * ncopied) in
              Htm.write tx ns 1;
              Htm.write tx (ns + 1) (Htm.read tx (slot + 1));
              let sref = Htm.read tx (slot + 2) in
              Htm.write tx (ns + 2) sref;
              Htm.write tx sref ns;
              Htm.write tx (hdr + hdr_ncopied) (ncopied + 1)
            end;
            Htm.write tx (hdr + hdr_copied) (copied + 1);
            0
          end
          else begin
            let old_arr = Htm.read tx (hdr + hdr_array) in
            Htm.write tx (hdr + hdr_array) (Htm.read tx (hdr + hdr_array_new));
            Htm.write tx (hdr + hdr_capacity) (Htm.read tx (hdr + hdr_capacity_new));
            Htm.write tx (hdr + hdr_array_new) 0;
            old_arr
          end
        end)
  in
  if to_free <> 0 then Simmem.free (Htm.mem t.htm) ctx to_free

let help_copy t ctx =
  while Simmem.read (Htm.mem t.htm) ctx (t.hdr + hdr_array_new) <> 0 do
    help_copy_one t ctx
  done

let attempt_resize t ctx ~count_l ~capacity_l =
  let mem = Htm.mem t.htm in
  let hdr = t.hdr in
  let new_capacity = max t.min_size (2 * count_l) in
  let array_tmp = Simmem.malloc mem ctx (slot_words * new_capacity) in
  let free_tmp =
    Htm.atomic t.htm ctx (fun tx ->
        if
          (not (copying tx hdr))
          && Htm.read tx (hdr + hdr_count) = count_l
          && Htm.read tx (hdr + hdr_capacity) = capacity_l
        then begin
          Htm.write tx (hdr + hdr_array_new) array_tmp;
          Htm.write tx (hdr + hdr_capacity_new) new_capacity;
          Htm.write tx (hdr + hdr_copied) 0;
          Htm.write tx (hdr + hdr_ncopied) 0;
          false
        end
        else true)
  in
  if free_tmp then Simmem.free mem ctx array_tmp;
  help_copy t ctx

let search_chunk = 16

let register t ctx v =
  let mem = Htm.mem t.htm in
  let hdr = t.hdr in
  let slot_ref = Simmem.malloc mem ctx 1 in
  (* The search runs in chunked transactions: a plain-load probe could
     dereference an old array freed by a concurrent resize. Sandboxing
     would save a transaction there, a segfault saves nobody — this is
     precisely the simplification HTM buys (§4.3). A free slot found by a
     probe is claimed within the same transaction. *)
  let rec outer j =
    let res =
      Htm.atomic t.htm ctx (fun tx ->
          if copying tx hdr then `Help
          else begin
            let arr = Htm.read tx (hdr + hdr_array) in
            let capacity = Htm.read tx (hdr + hdr_capacity) in
            let start = if j >= capacity then 0 else j in
            let rec probe i k =
              if i >= capacity then begin
                let count = Htm.read tx (hdr + hdr_count) in
                if count < capacity then `Wrapped (* a hole is behind us *)
                else `Full (count, capacity)
              end
              else if k >= search_chunk then `More i
              else if Htm.read tx (arr + (slot_words * i)) = 0 then begin
                let slot = arr + (slot_words * i) in
                Htm.write tx slot 1;
                Htm.write tx (slot + 1) v;
                Htm.write tx (slot + 2) slot_ref;
                Htm.write tx slot_ref slot;
                Htm.write tx (hdr + hdr_count) (Htm.read tx (hdr + hdr_count) + 1);
                `Claimed
              end
              else probe (i + 1) (k + 1)
            in
            probe start 0
          end)
    in
    match res with
    | `Claimed -> ()
    | `More i -> outer i
    | `Wrapped -> outer 0
    | `Full (count_l, capacity_l) ->
      attempt_resize t ctx ~count_l ~capacity_l;
      outer 0
    | `Help ->
      help_copy t ctx;
      outer 0
  in
  outer 0;
  slot_ref

let deregister t ctx slot_ref =
  let mem = Htm.mem t.htm in
  let hdr = t.hdr in
  let rec loop () =
    let action =
      Htm.atomic t.htm ctx (fun tx ->
          if copying tx hdr then `Help
          else begin
            let count_l = Htm.read tx (hdr + hdr_count) in
            let capacity_l = Htm.read tx (hdr + hdr_capacity) in
            let slot = Htm.read tx slot_ref in
            Htm.write tx slot 0;
            Htm.write tx (hdr + hdr_count) (count_l - 1);
            if (count_l - 1) * 4 = capacity_l && (count_l - 1) * 2 >= t.min_size then
              `Shrink (count_l - 1, capacity_l)
            else `Done
          end)
    in
    match action with
    | `Help ->
      help_copy t ctx;
      loop ()
    | `Done -> ()
    | `Shrink (count_l, capacity_l) -> attempt_resize t ctx ~count_l ~capacity_l
  in
  loop ();
  Simmem.free mem ctx slot_ref

let update t ctx slot_ref v =
  Htm.atomic t.htm ctx (fun tx -> Htm.write tx (Htm.read tx slot_ref + 1) v)

let collect t ctx buf =
  help_copy t ctx;
  let mem = Htm.mem t.htm in
  let i = ref (Simmem.read mem ctx (t.hdr + hdr_capacity) - 1) in
  while !i >= 0 do
    let len0 = Sim.Ibuf.length buf in
    let committed =
      Htm.atomic t.htm ctx
        ~on_abort:(fun _ -> Stepper.on_abort t.stepper ctx)
        (fun tx ->
          Sim.Ibuf.reset_to buf len0;
          let step = Stepper.get t.stepper ctx in
          let arr = Htm.read tx (t.hdr + hdr_array) in
          let capacity = Htm.read tx (t.hdr + hdr_capacity) in
          let j = ref (if !i >= capacity then capacity - 1 else !i) in
          let k = ref 0 in
          while !k < step && !j >= 0 do
            let slot = arr + (slot_words * !j) in
            if Htm.read tx slot = 1 then begin
              Sim.Ibuf.add buf (Htm.read tx (slot + 1));
              Htm.record tx
            end;
            decr j;
            incr k
          done;
          !j)
    in
    Stepper.on_commit t.stepper ctx;
    Stepper.record_collected t.stepper ctx (Sim.Ibuf.length buf - len0);
    i := committed
  done

let destroy t ctx =
  let mem = Htm.mem t.htm in
  let anew = Simmem.read mem ctx (t.hdr + hdr_array_new) in
  if anew <> 0 then Simmem.free mem ctx anew;
  Simmem.free mem ctx (Simmem.read mem ctx (t.hdr + hdr_array));
  Simmem.free mem ctx t.hdr

let maker : Collect_intf.maker =
  {
    algo_name = "ArrayDynSearchResize";
    solves_dynamic = true;
    uses_htm = true;
    direct_update = false;
    make =
      (fun htm ctx cfg ->
        let t = create htm ctx cfg in
        {
          Collect_intf.name = "ArrayDynSearchResize";
          register = register t;
          update = update t;
          deregister = deregister t;
          collect = (fun ctx buf -> collect t ctx buf);
          destroy = destroy t;
          step_histogram = (fun () -> Stepper.histogram t.stepper);
        });
  }
