(** FastCollect with deferred frees — the variant sketched in §3.1.2.

    Plain FastCollect restarts a collect whenever the deregister counter
    changes, so frequent deregisters can starve collects entirely
    (Figure 7). The paper suggests "adding a mode in which DeRegister
    operations add nodes to a to-be-freed list that is freed by a Collect
    operation after it completes", noting that HTM makes such variants
    straightforward. This module implements that mode:

    - [deregister] unlinks the node, tombstones it (its [prev] field
      becomes a marker) and pushes it onto a shared to-be-freed list —
      {e without} bumping any counter that in-flight collects watch;
    - a collect restarts only if (a) the node its unpinned cursor rests on
      was itself deregistered (the tombstone check), or (b) a reclaim has
      freed memory since its previous chunk (the epoch check, which is
      what keeps an unlinked-but-parked cursor dereferenceable);
    - after completing, [collect] detaches the to-be-freed list in one
      transaction, bumps the reclaim epoch, and frees the nodes.

    Restarts thus require a deregister to hit the collect's cursor node
    exactly, or a whole collect to complete elsewhere — orders of
    magnitude rarer than "any deregister anywhere", which is the starvation
    fix. The price is that reclamation waits for the next completed
    collect. *)

let off_val = 0
let off_next = 1
let off_prev = 2

let node_words = 3

let tombstone = -1 (* prev-field marker for unlinked nodes *)

let hdr_epoch = 0 (* bumped by every reclaim *)
let hdr_free_list = 1

type t = {
  htm : Htm.t;
  hdr : int;
  sentinel : int;
  stepper : Stepper.t;
}

let create htm ctx (cfg : Collect_intf.cfg) =
  let mem = Htm.mem htm in
  let hdr = Simmem.malloc mem ctx 2 in
  let sentinel = Simmem.malloc mem ctx node_words in
  Simmem.label mem ~name:"ListFastDeferred.header" ~base:hdr ~words:2;
  Simmem.label mem ~name:"ListFastDeferred.header" ~base:sentinel ~words:node_words;
  { htm; hdr; sentinel; stepper = Stepper.make cfg.step ~max_step:(Htm.config htm).store_buffer }

let register t ctx v =
  let mem = Htm.mem t.htm in
  let node = Simmem.malloc mem ctx node_words in
  Simmem.label mem ~name:"ListFastDeferred.node" ~base:node ~words:node_words;
  Simmem.write mem ctx (node + off_val) v;
  Htm.atomic t.htm ctx (fun tx ->
      let first = Htm.read tx (t.sentinel + off_next) in
      Htm.write tx (node + off_next) first;
      Htm.write tx (node + off_prev) t.sentinel;
      Htm.write tx (t.sentinel + off_next) node;
      if first <> 0 then Htm.write tx (first + off_prev) node);
  node

let update t ctx node v = Simmem.write (Htm.mem t.htm) ctx (node + off_val) v

let deregister t ctx node =
  Htm.atomic t.htm ctx (fun tx ->
      let prev = Htm.read tx (node + off_prev) in
      let next = Htm.read tx (node + off_next) in
      Htm.write tx (prev + off_next) next;
      if next <> 0 then Htm.write tx (next + off_prev) prev;
      Htm.write tx (node + off_prev) tombstone;
      (* push onto the to-be-freed list, reusing the next field (safe: the
         node is unlinked, and parked cursors check the tombstone before
         following it) *)
      Htm.write tx (node + off_next) (Htm.read tx (t.hdr + hdr_free_list));
      Htm.write tx (t.hdr + hdr_free_list) node)

(* Detach the to-be-freed list, bump the epoch, and free the nodes (which
   are private once detached). *)
let reclaim t ctx =
  let mem = Htm.mem t.htm in
  let head =
    Htm.atomic t.htm ctx (fun tx ->
        let head = Htm.read tx (t.hdr + hdr_free_list) in
        if head <> 0 then begin
          Htm.write tx (t.hdr + hdr_free_list) 0;
          Htm.write tx (t.hdr + hdr_epoch) (Htm.read tx (t.hdr + hdr_epoch) + 1)
        end;
        head)
  in
  let rec free_from node =
    if node <> 0 then begin
      let next = Simmem.read mem ctx (node + off_next) in
      Simmem.free mem ctx node;
      free_from next
    end
  in
  free_from head

let collect t ctx buf =
  let len0 = Sim.Ibuf.length buf in
  let rec whole () =
    Sim.Ibuf.reset_to buf len0;
    let rec chunk ~epoch0 cur =
      let chunk_len = Sim.Ibuf.length buf in
      let res =
        Htm.atomic t.htm ctx
          ~on_abort:(fun _ -> Stepper.on_abort t.stepper ctx)
          (fun tx ->
            Sim.Ibuf.reset_to buf chunk_len;
            (* epoch first: unchanged means nothing was freed since the
               previous chunk, so the cursor is still dereferenceable. *)
            let e = Htm.read tx (t.hdr + hdr_epoch) in
            if epoch0 >= 0 && e <> epoch0 then `Restart
            else if cur <> t.sentinel && Htm.read tx (cur + off_prev) = tombstone then
              (* our cursor's node was deregistered under us *)
              `Restart
            else begin
              let step = Stepper.get t.stepper ctx in
              let node = ref (Htm.read tx (cur + off_next)) in
              let last = ref 0 in
              let k = ref 0 in
              while !node <> 0 && !k < step do
                Sim.Ibuf.add buf (Htm.read tx (!node + off_val));
                Htm.record tx;
                last := !node;
                incr k;
                node := Htm.read tx (!node + off_next)
              done;
              if !node = 0 then `Finished e else `More (e, !last)
            end)
      in
      Stepper.on_commit t.stepper ctx;
      (match res with
       | `Restart -> ()
       | `Finished _ | `More _ ->
         Stepper.record_collected t.stepper ctx (Sim.Ibuf.length buf - chunk_len));
      match res with
      | `Restart -> whole ()
      | `Finished _ -> ()
      | `More (e, last) -> chunk ~epoch0:e last
    in
    chunk ~epoch0:(-1) t.sentinel
  in
  whole ();
  reclaim t ctx

let destroy t ctx =
  let mem = Htm.mem t.htm in
  let rec free_from node =
    if node <> 0 then begin
      let next = Simmem.read mem ctx (node + off_next) in
      Simmem.free mem ctx node;
      free_from next
    end
  in
  free_from (Simmem.read mem ctx (t.sentinel + off_next));
  free_from (Simmem.read mem ctx (t.hdr + hdr_free_list));
  Simmem.free mem ctx t.sentinel;
  Simmem.free mem ctx t.hdr

let maker : Collect_intf.maker =
  {
    algo_name = "ListFastCollectDeferred";
    solves_dynamic = true;
    uses_htm = true;
    direct_update = true;
    make =
      (fun htm ctx cfg ->
        let t = create htm ctx cfg in
        {
          Collect_intf.name = "ListFastCollectDeferred";
          register = register t;
          update = update t;
          deregister = deregister t;
          collect = (fun ctx buf -> collect t ctx buf);
          destroy = destroy t;
          step_histogram = (fun () -> Stepper.histogram t.stepper);
        });
  }
