(** ArrayStatAppendDereg (paper §3.2.4): fixed-capacity array, append-based
    registration, compaction on every deregister. The stepping stone to
    {!Array_dyn_append_dereg} — identical operation structure without the
    resize machinery, so it bounds capacity and never reclaims the array. *)

open Array_common

type t = {
  htm : Htm.t;
  hdr : int;
  capacity : int;
  stepper : Stepper.t;
}

let create htm ctx (cfg : Collect_intf.cfg) =
  let mem = Htm.mem htm in
  let capacity = max 1 cfg.max_slots in
  let hdr = Simmem.malloc mem ctx 3 in
  let arr = Simmem.malloc mem ctx (slot_words * capacity) in
  Simmem.write mem ctx (hdr + hdr_array) arr;
  Simmem.write mem ctx (hdr + hdr_capacity) capacity;
  { htm; hdr; capacity; stepper = Stepper.make cfg.step ~max_step:(Htm.config htm).store_buffer }

let register t ctx v =
  let mem = Htm.mem t.htm in
  let slot_ref = Simmem.malloc mem ctx 1 in
  Htm.atomic t.htm ctx (fun tx ->
      let count = Htm.read tx (t.hdr + hdr_count) in
      if count >= t.capacity then
        raise (Collect_intf.Capacity_exceeded "ArrayStatAppendDereg");
      append tx ~hdr:t.hdr ~count slot_ref v);
  slot_ref

let deregister t ctx slot_ref =
  let mem = Htm.mem t.htm in
  Htm.atomic t.htm ctx (fun tx ->
      let count = Htm.read tx (t.hdr + hdr_count) in
      Htm.write tx (t.hdr + hdr_count) (count - 1);
      let arr = Htm.read tx (t.hdr + hdr_array) in
      let last = arr + (slot_words * (count - 1)) in
      let mine = Htm.read tx slot_ref in
      let moved_ref = Htm.read tx (last + 1) in
      Htm.write tx mine (Htm.read tx last);
      Htm.write tx (mine + 1) moved_ref;
      Htm.write tx moved_ref mine);
  Simmem.free mem ctx slot_ref

let update t ctx slot_ref v = update_indirect t.htm ctx slot_ref v

let collect t ctx buf = reverse_collect t.htm ctx ~hdr:t.hdr ~stepper:t.stepper buf

let destroy t ctx =
  let mem = Htm.mem t.htm in
  Simmem.free mem ctx (Simmem.read mem ctx (t.hdr + hdr_array));
  Simmem.free mem ctx t.hdr

let maker : Collect_intf.maker =
  {
    algo_name = "ArrayStatAppendDereg";
    solves_dynamic = false;
    uses_htm = true;
    direct_update = false;
    make =
      (fun htm ctx cfg ->
        let t = create htm ctx cfg in
        {
          Collect_intf.name = "ArrayStatAppendDereg";
          register = register t;
          update = update t;
          deregister = deregister t;
          collect = (fun ctx buf -> collect t ctx buf);
          destroy = destroy t;
          step_histogram = (fun () -> Stepper.histogram t.stepper);
        });
  }
