(** FastCollect (paper §3.1.2): doubly-linked list plus a shared deregister
    counter [dc].

    Deregister atomically unlinks the node and increments [dc], then frees
    the node immediately — no reference counts, so collects write nothing
    while traversing. A collect reads [dc] in its first transaction; every
    later transaction re-reads [dc] before touching its cursor and restarts
    the whole collect if it changed. The cursor is not pinned, so it may
    point to freed memory after a deregister — the [dc] check (plus HTM
    sandboxing for the in-flight window) is what makes that safe, and it is
    why this algorithm is essentially impossible without HTM.

    The disadvantage (§3.1.2, Figure 7): frequent deregisters starve
    collects through endless restarts. *)

let off_val = 0
let off_next = 1
let off_prev = 2

let node_words = 3

type t = {
  htm : Htm.t;
  hdr : int;  (** one word: the deregister counter [dc] *)
  sentinel : int;
  stepper : Stepper.t;
}

let create htm ctx (cfg : Collect_intf.cfg) =
  let mem = Htm.mem htm in
  let hdr = Simmem.malloc mem ctx 1 in
  let sentinel = Simmem.malloc mem ctx node_words in
  Simmem.label mem ~name:"ListFast.header" ~base:hdr ~words:1;
  Simmem.label mem ~name:"ListFast.header" ~base:sentinel ~words:node_words;
  { htm; hdr; sentinel; stepper = Stepper.make cfg.step ~max_step:(Htm.config htm).store_buffer }

let register t ctx v =
  let mem = Htm.mem t.htm in
  let node = Simmem.malloc mem ctx node_words in
  Simmem.label mem ~name:"ListFast.node" ~base:node ~words:node_words;
  Simmem.write mem ctx (node + off_val) v;
  Htm.atomic t.htm ctx (fun tx ->
      let first = Htm.read tx (t.sentinel + off_next) in
      Htm.write tx (node + off_next) first;
      Htm.write tx (node + off_prev) t.sentinel;
      Htm.write tx (t.sentinel + off_next) node;
      if first <> 0 then Htm.write tx (first + off_prev) node);
  node

let update t ctx node v = Simmem.write (Htm.mem t.htm) ctx (node + off_val) v

let deregister t ctx node =
  Htm.atomic t.htm ctx (fun tx ->
      Htm.write tx t.hdr (Htm.read tx t.hdr + 1);
      let prev = Htm.read tx (node + off_prev) in
      let next = Htm.read tx (node + off_next) in
      Htm.write tx (prev + off_next) next;
      if next <> 0 then Htm.write tx (next + off_prev) prev;
      Htm.defer_free tx node)

let collect t ctx buf =
  let len0 = Sim.Ibuf.length buf in
  let rec whole () =
    Sim.Ibuf.reset_to buf len0;
    let rec chunk ~dc0 cur =
      let chunk_len = Sim.Ibuf.length buf in
      let res =
        Htm.atomic t.htm ctx
          ~on_abort:(fun _ -> Stepper.on_abort t.stepper ctx)
          (fun tx ->
            Sim.Ibuf.reset_to buf chunk_len;
            (* Read dc before touching the unpinned cursor: if no
               deregister committed since the previous chunk, the cursor is
               still linked and live. *)
            let d = Htm.read tx t.hdr in
            if dc0 >= 0 && d <> dc0 then `Restart
            else begin
              let step = Stepper.get t.stepper ctx in
              let node = ref (Htm.read tx (cur + off_next)) in
              let last = ref 0 in
              let k = ref 0 in
              while !node <> 0 && !k < step do
                Sim.Ibuf.add buf (Htm.read tx (!node + off_val));
                Htm.record tx;
                last := !node;
                incr k;
                node := Htm.read tx (!node + off_next)
              done;
              if !node = 0 then `Finished d else `More (d, !last)
            end)
      in
      Stepper.on_commit t.stepper ctx;
      (match res with
       | `Restart -> ()
       | `Finished _ | `More _ ->
         Stepper.record_collected t.stepper ctx (Sim.Ibuf.length buf - chunk_len));
      match res with
      | `Restart -> whole ()
      | `Finished _ -> ()
      | `More (d, last) -> chunk ~dc0:d last
    in
    chunk ~dc0:(-1) t.sentinel
  in
  whole ()

let destroy t ctx =
  let mem = Htm.mem t.htm in
  let rec free_from node =
    if node <> 0 then begin
      let next = Simmem.read mem ctx (node + off_next) in
      Simmem.free mem ctx node;
      free_from next
    end
  in
  free_from (Simmem.read mem ctx (t.sentinel + off_next));
  Simmem.free mem ctx t.sentinel;
  Simmem.free mem ctx t.hdr

let maker : Collect_intf.maker =
  {
    algo_name = "ListFastCollect";
    solves_dynamic = true;
    uses_htm = true;
    direct_update = true;
    make =
      (fun htm ctx cfg ->
        let t = create htm ctx cfg in
        {
          Collect_intf.name = "ListFastCollect";
          register = register t;
          update = update t;
          deregister = deregister t;
          collect = (fun ctx buf -> collect t ctx buf);
          destroy = destroy t;
          step_histogram = (fun () -> Stepper.histogram t.stepper);
        });
  }
