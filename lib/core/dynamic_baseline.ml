(** Dynamic baseline (paper §3.3): a CAS-based linked list with traversal
    reference counts, after Algorithm 2 of Herlihy-Luchangco-Moir (ENTCS
    2003).

    Registration traverses the list looking for an unclaimed node to claim
    (CAS), appending a new node at the tail if none is free. Collect
    traverses the list forwards, incrementing each node's counter with a
    CAS, and walks back decrementing them — every traversal {e writes every
    node twice}, which is exactly the cache-coherence behaviour that makes
    this baseline (and HOHRC) collapse in Figure 3.

    Reclamation substitution: safe CAS-based deallocation of refcounted
    nodes (Valois-style) is notoriously delicate; like most practical
    non-HTM schemes, we make nodes {e type-stable} — deregistered nodes are
    recycled by later registrations but never returned to the allocator, so
    the list's footprint is its historical maximum. This keeps the paper's
    criticism of non-HTM approaches (more space, more coherence traffic)
    measurably true while the per-operation cost profile matches the
    description. See DESIGN.md §6.

    Node states: 1 = claimed (registered), 2 = free for claiming,
    3 = mid-claim (value being written). Claiming writes the value before
    publishing state 1, so a collect that reads state 1 always reads a
    value bound by the current or a concurrent registration. *)

let off_val = 0
let off_next = 1
let off_count = 2
let off_state = 3

let node_words = 4

let st_claimed = 1
let st_free = 2
let st_claiming = 3

type t = { htm : Htm.t; sentinel : int }

let create htm ctx (_cfg : Collect_intf.cfg) =
  let mem = Htm.mem htm in
  let sentinel = Simmem.malloc mem ctx node_words in
  Simmem.label mem ~name:"ListBaseline.header" ~base:sentinel ~words:node_words;
  { htm; sentinel }

let bump t ctx node d =
  let mem = Htm.mem t.htm in
  let rec go () =
    let old = Simmem.read mem ctx (node + off_count) in
    if not (Simmem.cas mem ctx (node + off_count) ~expected:old ~desired:(old + d)) then go ()
  in
  go ()

let pin t ctx node = bump t ctx node 1
let unpin t ctx node = bump t ctx node (-1)

let register t ctx v =
  let mem = Htm.mem t.htm in
  (* Hand-over-hand traversal: hold a pin on the current node while
     pinning the next, so the counter protocol's cost is paid on every
     step exactly as in the real algorithm. *)
  let rec walk prev =
    let next = Simmem.read mem ctx (prev + off_next) in
    if next = 0 then begin
      let node = Simmem.malloc mem ctx node_words in
      Simmem.label mem ~name:"ListBaseline.node" ~base:node ~words:node_words;
      Simmem.write mem ctx (node + off_val) v;
      Simmem.write mem ctx (node + off_state) st_claimed;
      if Simmem.cas mem ctx (prev + off_next) ~expected:0 ~desired:node then begin
        if prev <> t.sentinel then unpin t ctx prev;
        node
      end
      else begin
        (* Lost the append race; recycle our tentative node by linking it
           never — just free it (it was never published). *)
        Simmem.free mem ctx node;
        walk prev
      end
    end
    else begin
      pin t ctx next;
      if prev <> t.sentinel then unpin t ctx prev;
      if
        Simmem.read mem ctx (next + off_state) = st_free
        && Simmem.cas mem ctx (next + off_state) ~expected:st_free ~desired:st_claiming
      then begin
        Simmem.write mem ctx (next + off_val) v;
        Simmem.write mem ctx (next + off_state) st_claimed;
        unpin t ctx next;
        next
      end
      else walk next
    end
  in
  walk t.sentinel

let update t ctx node v = Simmem.write (Htm.mem t.htm) ctx (node + off_val) v

let deregister t ctx node =
  let ok =
    Simmem.cas (Htm.mem t.htm) ctx (node + off_state) ~expected:st_claimed ~desired:st_free
  in
  assert ok

let collect t ctx buf =
  let mem = Htm.mem t.htm in
  let visited = Sim.Ibuf.create () in
  (* Forward pass: pin every node, recording claimed values. *)
  let rec forward node =
    let next = Simmem.read mem ctx (node + off_next) in
    if next <> 0 then begin
      pin t ctx next;
      Sim.Ibuf.add visited next;
      if Simmem.read mem ctx (next + off_state) = st_claimed then
        Sim.Ibuf.add buf (Simmem.read mem ctx (next + off_val));
      forward next
    end
  in
  forward t.sentinel;
  (* Backward pass: release every pin. *)
  for i = Sim.Ibuf.length visited - 1 downto 0 do
    unpin t ctx (Sim.Ibuf.get visited i)
  done

(* Destroy frees only nodes whose traversal count is zero: a nonzero count
   means some traverser still holds a pin (a crashed thread's pin is never
   released), so the node may be dereferenced at any moment and cannot be
   returned to the allocator. The resulting permanent leak is the paper's
   argument against counter-based recycling, made measurable via
   [Simmem.live_words]. *)
let destroy t ctx =
  let mem = Htm.mem t.htm in
  let rec free_from node =
    if node <> 0 then begin
      let next = Simmem.read mem ctx (node + off_next) in
      if Simmem.read mem ctx (node + off_count) = 0 then Simmem.free mem ctx node;
      free_from next
    end
  in
  free_from (Simmem.read mem ctx (t.sentinel + off_next));
  Simmem.free mem ctx t.sentinel

let maker : Collect_intf.maker =
  {
    algo_name = "DynamicBaseline";
    solves_dynamic = true;
    uses_htm = false;
    direct_update = true;
    make =
      (fun htm ctx cfg ->
        let t = create htm ctx cfg in
        {
          Collect_intf.name = "DynamicBaseline";
          register = register t;
          update = update t;
          deregister = deregister t;
          collect = (fun ctx buf -> collect t ctx buf);
          destroy = destroy t;
          step_histogram = (fun () -> []);
        });
  }
