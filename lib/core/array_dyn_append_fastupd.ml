(** ArrayDynAppendDereg optimised for Update — the §4.1 variant the paper
    describes but did not implement.

    The value lives {e with the slot reference} instead of in the array
    slot: a handle is a two-word block [+0: current slot address,
    +1: value], and array slots hold only the back-pointer to the handle.
    Because the handle block never moves, [update] is a naked single-word
    store (the fast ≈135 ns class) even though slots still compact and
    resize. The price moves to [collect], which must dereference each
    slot's handle pointer inside its transaction — two dependent loads per
    element instead of one.

    Everything else — the resize invariant, cooperative [help_copy],
    registration during copying, compaction on deregister — mirrors
    Figure 2 with one-word slots. *)

let hdr_array = 0
let hdr_capacity = 1
let hdr_count = 2
let hdr_array_new = 3
let hdr_capacity_new = 4
let hdr_copied = 5

let ref_slot = 0 (* handle word: current array slot *)
let ref_val = 1 (* handle word: the bound value *)

type t = {
  htm : Htm.t;
  hdr : int;
  min_size : int;
  stepper : Stepper.t;
}

let copying tx hdr = Htm.read tx (hdr + hdr_array_new) <> 0

let create htm ctx (cfg : Collect_intf.cfg) =
  let mem = Htm.mem htm in
  let min_size = max 1 cfg.min_size in
  let hdr = Simmem.malloc mem ctx 6 in
  let arr = Simmem.malloc mem ctx min_size in
  Simmem.write mem ctx (hdr + hdr_array) arr;
  Simmem.write mem ctx (hdr + hdr_capacity) min_size;
  (* Collect costs two loads per element, so keep full-width steps. *)
  { htm; hdr; min_size; stepper = Stepper.make cfg.step ~max_step:(Htm.config htm).store_buffer }

let help_copy_one t ctx =
  let hdr = t.hdr in
  let to_free =
    Htm.atomic t.htm ctx (fun tx ->
        let anew = Htm.read tx (hdr + hdr_array_new) in
        if anew = 0 then 0
        else begin
          let copied = Htm.read tx (hdr + hdr_copied) in
          let count = Htm.read tx (hdr + hdr_count) in
          if copied < count then begin
            let arr = Htm.read tx (hdr + hdr_array) in
            let handle = Htm.read tx (arr + copied) in
            Htm.write tx (anew + copied) handle;
            Htm.write tx (handle + ref_slot) (anew + copied);
            Htm.write tx (hdr + hdr_copied) (copied + 1);
            0
          end
          else begin
            let old_arr = Htm.read tx (hdr + hdr_array) in
            Htm.write tx (hdr + hdr_array) anew;
            Htm.write tx (hdr + hdr_capacity) (Htm.read tx (hdr + hdr_capacity_new));
            Htm.write tx (hdr + hdr_array_new) 0;
            old_arr
          end
        end)
  in
  if to_free <> 0 then Simmem.free (Htm.mem t.htm) ctx to_free

let help_copy t ctx =
  while Simmem.read (Htm.mem t.htm) ctx (t.hdr + hdr_array_new) <> 0 do
    help_copy_one t ctx
  done

let attempt_resize t ctx ~count_l ~capacity_l =
  let mem = Htm.mem t.htm in
  let hdr = t.hdr in
  let new_capacity = 2 * count_l in
  let array_tmp = Simmem.malloc mem ctx new_capacity in
  let free_tmp =
    Htm.atomic t.htm ctx (fun tx ->
        if
          (not (copying tx hdr))
          && Htm.read tx (hdr + hdr_count) = count_l
          && Htm.read tx (hdr + hdr_capacity) = capacity_l
        then begin
          Htm.write tx (hdr + hdr_array_new) array_tmp;
          Htm.write tx (hdr + hdr_capacity_new) new_capacity;
          Htm.write tx (hdr + hdr_copied) 0;
          false
        end
        else true)
  in
  if free_tmp then Simmem.free mem ctx array_tmp;
  help_copy t ctx

let append tx ~hdr ~count handle =
  let arr = Htm.read tx (hdr + hdr_array) in
  Htm.write tx (arr + count) handle;
  Htm.write tx (handle + ref_slot) (arr + count);
  Htm.write tx (hdr + hdr_count) (count + 1)

type action = Done | Grow of int | Help

let register t ctx v =
  let mem = Htm.mem t.htm in
  let hdr = t.hdr in
  let handle = Simmem.malloc mem ctx 2 in
  Simmem.write mem ctx (handle + ref_val) v;
  let rec loop () =
    let action =
      Htm.atomic t.htm ctx (fun tx ->
          if not (copying tx hdr) then begin
            let count = Htm.read tx (hdr + hdr_count) in
            if count < Htm.read tx (hdr + hdr_capacity) then begin
              append tx ~hdr ~count handle;
              Done
            end
            else Grow count
          end
          else begin
            let count = Htm.read tx (hdr + hdr_count) in
            if
              count < Htm.read tx (hdr + hdr_capacity)
              && count < Htm.read tx (hdr + hdr_capacity_new)
            then begin
              append tx ~hdr ~count handle;
              Done
            end
            else Help
          end)
    in
    match action with
    | Done -> ()
    | Grow count_l ->
      attempt_resize t ctx ~count_l ~capacity_l:count_l;
      loop ()
    | Help ->
      help_copy t ctx;
      loop ()
  in
  loop ();
  handle

let update t ctx handle v = Simmem.write (Htm.mem t.htm) ctx (handle + ref_val) v

type dereg_action = DDone | DShrink of int * int | DHelp

let deregister t ctx handle =
  let mem = Htm.mem t.htm in
  let hdr = t.hdr in
  let action = ref DHelp in
  while !action <> DDone do
    let r =
      Htm.atomic t.htm ctx (fun tx ->
          let count_l = Htm.read tx (hdr + hdr_count) in
          let capacity_l = Htm.read tx (hdr + hdr_capacity) in
          if count_l * 4 = capacity_l && count_l * 2 >= t.min_size then
            DShrink (count_l, capacity_l)
          else if not (copying tx hdr) then begin
            Htm.write tx (hdr + hdr_count) (count_l - 1);
            let arr = Htm.read tx (hdr + hdr_array) in
            let moved_handle = Htm.read tx (arr + count_l - 1) in
            let mine = Htm.read tx (handle + ref_slot) in
            Htm.write tx mine moved_handle;
            Htm.write tx (moved_handle + ref_slot) mine;
            DDone
          end
          else DHelp)
    in
    action := r;
    (match !action with
     | DShrink (count_l, capacity_l) ->
       attempt_resize t ctx ~count_l ~capacity_l;
       action := DHelp
     | DHelp -> help_copy t ctx
     | DDone -> ())
  done;
  Simmem.free mem ctx handle

let collect t ctx buf =
  help_copy t ctx;
  let mem = Htm.mem t.htm in
  let i = ref (Simmem.read mem ctx (t.hdr + hdr_count) - 1) in
  while !i >= 0 do
    let len0 = Sim.Ibuf.length buf in
    let committed =
      Htm.atomic t.htm ctx
        ~on_abort:(fun _ -> Stepper.on_abort t.stepper ctx)
        (fun tx ->
          Sim.Ibuf.reset_to buf len0;
          let step = Stepper.get t.stepper ctx in
          let arr = Htm.read tx (t.hdr + hdr_array) in
          let count = Htm.read tx (t.hdr + hdr_count) in
          let j = ref (if !i >= count then count - 1 else !i) in
          let k = ref 0 in
          while !k < step && !j >= 0 do
            (* the extra dependent load this variant pays *)
            let handle = Htm.read tx (arr + !j) in
            Sim.Ibuf.add buf (Htm.read tx (handle + ref_val));
            Htm.record tx;
            decr j;
            incr k
          done;
          !j)
    in
    Stepper.on_commit t.stepper ctx;
    Stepper.record_collected t.stepper ctx (Sim.Ibuf.length buf - len0);
    i := committed
  done

let destroy t ctx =
  let mem = Htm.mem t.htm in
  let anew = Simmem.read mem ctx (t.hdr + hdr_array_new) in
  if anew <> 0 then Simmem.free mem ctx anew;
  Simmem.free mem ctx (Simmem.read mem ctx (t.hdr + hdr_array));
  Simmem.free mem ctx t.hdr

let maker : Collect_intf.maker =
  {
    algo_name = "ArrayDynAppendFastUpd";
    solves_dynamic = true;
    uses_htm = true;
    direct_update = true;
    make =
      (fun htm ctx cfg ->
        let t = create htm ctx cfg in
        {
          Collect_intf.name = "ArrayDynAppendFastUpd";
          register = register t;
          update = update t;
          deregister = deregister t;
          collect = (fun ctx buf -> collect t ctx buf);
          destroy = destroy t;
          step_histogram = (fun () -> Stepper.histogram t.stepper);
        });
  }
