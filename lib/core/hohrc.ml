(** HOHRC — hand-over-hand reference counting over a doubly-linked list
    (paper §3.1.1), with telescoping (§3.4).

    Each node carries a reference count that pins it (prevents
    deallocation) while a collect holds it as its traversal cursor. A
    telescoped collect transaction walks up to [step] nodes, records their
    values, pins the last node reached and unpins its previous cursor — the
    intermediate nodes are only read, which is the whole point of
    telescoping (the naive version writes every node twice, and Figure 3
    shows what that does to cache behaviour).

    Deregistration sets a delete marker; the node is unlinked and freed by
    the deregisterer if unpinned, otherwise by the last collect that unpins
    it. Values in delete-marked nodes are skipped (their registration ended
    before or during the collect), but the nodes are still traversed.

    Update is a naked store: the handle's storage never moves (§3.1's
    stated advantage of the list-based algorithms). *)

let off_val = 0
let off_next = 1
let off_prev = 2
let off_refc = 3
let off_del = 4

let node_words = 5

(* Bookkeeping stores per collect transaction: pin + unpin + 2-store unlink
   + deferred-free bookkeeping margin. *)
let collect_overhead = 5

type t = {
  htm : Htm.t;
  sentinel : int;
  stepper : Stepper.t;
}

let create htm ctx (cfg : Collect_intf.cfg) =
  let mem = Htm.mem htm in
  let sentinel = Simmem.malloc mem ctx node_words in
  Simmem.label mem ~name:"ListHoHRC.header" ~base:sentinel ~words:node_words;
  { htm; sentinel; stepper = Stepper.make cfg.step ~max_step:((Htm.config htm).store_buffer - collect_overhead) }

let register t ctx v =
  let mem = Htm.mem t.htm in
  let node = Simmem.malloc mem ctx node_words in
  Simmem.label mem ~name:"ListHoHRC.node" ~base:node ~words:node_words;
  Simmem.write mem ctx (node + off_val) v;
  Htm.atomic t.htm ctx (fun tx ->
      let first = Htm.read tx (t.sentinel + off_next) in
      Htm.write tx (node + off_next) first;
      Htm.write tx (node + off_prev) t.sentinel;
      Htm.write tx (t.sentinel + off_next) node;
      if first <> 0 then Htm.write tx (first + off_prev) node);
  node

let update t ctx node v = Simmem.write (Htm.mem t.htm) ctx (node + off_val) v

(* Unlink [n] within [tx]; only legal when its reference count is zero and
   its delete marker is set, i.e. nobody can reach or pin it afterwards. *)
let unlink_in_tx tx n =
  let prev = Htm.read tx (n + off_prev) in
  let next = Htm.read tx (n + off_next) in
  Htm.write tx (prev + off_next) next;
  if next <> 0 then Htm.write tx (next + off_prev) prev;
  Htm.defer_free tx n

let deregister t ctx node =
  Htm.atomic t.htm ctx (fun tx ->
      Htm.write tx (node + off_del) 1;
      if Htm.read tx (node + off_refc) = 0 then unlink_in_tx tx node)

let collect t ctx buf =
  let cur = ref t.sentinel in
  let finished = ref false in
  while not !finished do
    let len0 = Sim.Ibuf.length buf in
    let continue_from =
      Htm.atomic t.htm ctx
        ~on_abort:(fun _ -> Stepper.on_abort t.stepper ctx)
        (fun tx ->
          Sim.Ibuf.reset_to buf len0;
          let step = Stepper.get t.stepper ctx in
          let node = ref (Htm.read tx (!cur + off_next)) in
          let last = ref 0 in
          let k = ref 0 in
          while !node <> 0 && !k < step do
            if Htm.read tx (!node + off_del) = 0 then begin
              Sim.Ibuf.add buf (Htm.read tx (!node + off_val));
              Htm.record tx
            end;
            last := !node;
            incr k;
            node := Htm.read tx (!node + off_next)
          done;
          (* Pin the stopping point if the traversal continues from it. *)
          let continue_from = if !node = 0 then 0 else !last in
          if continue_from <> 0 then
            Htm.write tx (continue_from + off_refc)
              (Htm.read tx (continue_from + off_refc) + 1);
          (* Unpin the previous cursor; the last unpinner of a
             delete-marked node reclaims it. *)
          if !cur <> t.sentinel then begin
            let rc = Htm.read tx (!cur + off_refc) - 1 in
            Htm.write tx (!cur + off_refc) rc;
            if rc = 0 && Htm.read tx (!cur + off_del) = 1 then unlink_in_tx tx !cur
          end;
          continue_from)
    in
    Stepper.on_commit t.stepper ctx;
    Stepper.record_collected t.stepper ctx (Sim.Ibuf.length buf - len0);
    if continue_from = 0 then finished := true else cur := continue_from
  done

(* Destroy frees only nodes with refcount zero: a node still pinned by a
   traverser (e.g. one that crashed mid-collect and will never unpin) has a
   reader that may dereference it at any moment, so it can never legally be
   returned to the allocator. This is exactly the leak mode the paper
   ascribes to reference-counting schemes — a crashed thread's pins live
   forever — and leaving such nodes allocated makes the leak measurable via
   [Simmem.live_words]. *)
let destroy t ctx =
  let mem = Htm.mem t.htm in
  let rec free_from node =
    if node <> 0 then begin
      let next = Simmem.read mem ctx (node + off_next) in
      if Simmem.read mem ctx (node + off_refc) = 0 then Simmem.free mem ctx node;
      free_from next
    end
  in
  free_from (Simmem.read mem ctx (t.sentinel + off_next));
  Simmem.free mem ctx t.sentinel

let maker : Collect_intf.maker =
  {
    algo_name = "ListHoHRC";
    solves_dynamic = true;
    uses_htm = true;
    direct_update = true;
    make =
      (fun htm ctx cfg ->
        let t = create htm ctx cfg in
        {
          Collect_intf.name = "ListHoHRC";
          register = register t;
          update = update t;
          deregister = deregister t;
          collect = (fun ctx buf -> collect t ctx buf);
          destroy = destroy t;
          step_histogram = (fun () -> Stepper.histogram t.stepper);
        });
  }
