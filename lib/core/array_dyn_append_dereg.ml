(** ArrayDynAppendDereg — the paper's flagship algorithm (§4, Figure 2).

    Dynamic array, append-based registration, compaction on every
    deregister. The array grows to [2·count] when full and shrinks to
    [2·count] when only a quarter full, maintaining
    [max(count, MIN_SIZE) <= capacity <= 4·count]. Resizing installs a new
    array and copies slots cooperatively ([help_copy]); registration can
    complete during a resize when both arrays have room (§4.2's
    optimisation). This module is a line-for-line port of the Figure 2
    pseudocode onto the simulated HTM. *)

open Array_common

type t = {
  htm : Htm.t;
  hdr : int;
  min_size : int;
  stepper : Stepper.t;
}

let copying tx hdr = Htm.read tx (hdr + hdr_array_new) <> 0

let create htm ctx (cfg : Collect_intf.cfg) =
  let mem = Htm.mem htm in
  let min_size = max 1 cfg.min_size in
  let hdr = Simmem.malloc mem ctx 6 in
  let arr = Simmem.malloc mem ctx (slot_words * min_size) in
  Simmem.write mem ctx (hdr + hdr_array) arr;
  Simmem.write mem ctx (hdr + hdr_capacity) min_size;
  { htm; hdr; min_size; stepper = Stepper.make cfg.step ~max_step:(Htm.config htm).store_buffer }

let help_copy_one t ctx =
  let hdr = t.hdr in
  let to_free =
    Htm.atomic t.htm ctx (fun tx ->
        let anew = Htm.read tx (hdr + hdr_array_new) in
        if anew = 0 then 0
        else begin
          let copied = Htm.read tx (hdr + hdr_copied) in
          let count = Htm.read tx (hdr + hdr_count) in
          if copied < count then begin
            (* Copy one slot and redirect its handle's slot reference in
               the same transaction, so updates can never be lost. *)
            let arr = Htm.read tx (hdr + hdr_array) in
            let old_slot = arr + (slot_words * copied) in
            let new_slot = anew + (slot_words * copied) in
            Htm.write tx new_slot (Htm.read tx old_slot);
            let sref = Htm.read tx (old_slot + 1) in
            Htm.write tx (new_slot + 1) sref;
            Htm.write tx sref new_slot;
            Htm.write tx (hdr + hdr_copied) (copied + 1);
            0
          end
          else begin
            (* The same transaction that finds everything copied makes the
               new array current (§4.2: this is why registration during
               copying is safe). *)
            let old_arr = Htm.read tx (hdr + hdr_array) in
            Htm.write tx (hdr + hdr_array) anew;
            Htm.write tx (hdr + hdr_capacity) (Htm.read tx (hdr + hdr_capacity_new));
            Htm.write tx (hdr + hdr_array_new) 0;
            old_arr
          end
        end)
  in
  if to_free <> 0 then Simmem.free (Htm.mem t.htm) ctx to_free

let help_copy t ctx =
  while Simmem.read (Htm.mem t.htm) ctx (t.hdr + hdr_array_new) <> 0 do
    help_copy_one t ctx
  done

let attempt_resize t ctx ~count_l ~capacity_l =
  let mem = Htm.mem t.htm in
  let hdr = t.hdr in
  let new_capacity = 2 * count_l in
  let array_tmp = Simmem.malloc mem ctx (slot_words * new_capacity) in
  let free_tmp =
    Htm.atomic t.htm ctx (fun tx ->
        if
          (not (copying tx hdr))
          && Htm.read tx (hdr + hdr_count) = count_l
          && Htm.read tx (hdr + hdr_capacity) = capacity_l
        then begin
          Htm.write tx (hdr + hdr_array_new) array_tmp;
          Htm.write tx (hdr + hdr_capacity_new) new_capacity;
          Htm.write tx (hdr + hdr_copied) 0;
          false
        end
        else true)
  in
  if free_tmp then Simmem.free mem ctx array_tmp;
  help_copy t ctx

type action = Done | Grow of int | Help

let register t ctx v =
  let mem = Htm.mem t.htm in
  let hdr = t.hdr in
  let slot_ref = Simmem.malloc mem ctx 1 in
  let rec loop () =
    let action =
      Htm.atomic t.htm ctx (fun tx ->
          if not (copying tx hdr) then begin
            let count = Htm.read tx (hdr + hdr_count) in
            if count < Htm.read tx (hdr + hdr_capacity) then begin
              append tx ~hdr ~count slot_ref v;
              Done
            end
            else Grow count
          end
          else begin
            let count = Htm.read tx (hdr + hdr_count) in
            if
              count < Htm.read tx (hdr + hdr_capacity)
              && count < Htm.read tx (hdr + hdr_capacity_new)
            then begin
              append tx ~hdr ~count slot_ref v;
              Done
            end
            else Help
          end)
    in
    match action with
    | Done -> ()
    | Grow count_l ->
      (* When the array is full, count = capacity, so Figure 2 passes
         count_l for both expected values (line 39). *)
      attempt_resize t ctx ~count_l ~capacity_l:count_l;
      loop ()
    | Help ->
      help_copy t ctx;
      loop ()
  in
  loop ();
  slot_ref

type dereg_action = DDone | DShrink of int * int | DHelp

let deregister t ctx slot_ref =
  let mem = Htm.mem t.htm in
  let hdr = t.hdr in
  let action = ref DHelp in
  while !action <> DDone do
    let r =
      Htm.atomic t.htm ctx (fun tx ->
          let count_l = Htm.read tx (hdr + hdr_count) in
          let capacity_l = Htm.read tx (hdr + hdr_capacity) in
          if count_l * 4 = capacity_l && count_l * 2 >= t.min_size then
            DShrink (count_l, capacity_l)
          else if not (copying tx hdr) then begin
            (* Move the last used slot into the hole (compaction on every
               deregister), redirecting the moved handle's slot reference. *)
            Htm.write tx (hdr + hdr_count) (count_l - 1);
            let arr = Htm.read tx (hdr + hdr_array) in
            let last = arr + (slot_words * (count_l - 1)) in
            let mine = Htm.read tx slot_ref in
            let moved_ref = Htm.read tx (last + 1) in
            Htm.write tx mine (Htm.read tx last);
            Htm.write tx (mine + 1) moved_ref;
            Htm.write tx moved_ref mine;
            DDone
          end
          else DHelp)
    in
    action := r;
    (match !action with
     | DShrink (count_l, capacity_l) ->
       attempt_resize t ctx ~count_l ~capacity_l;
       action := DHelp
     | DHelp -> help_copy t ctx
     | DDone -> ())
  done;
  Simmem.free mem ctx slot_ref

let update t ctx slot_ref v = update_indirect t.htm ctx slot_ref v

let collect t ctx buf =
  (* §4.2: ensure no copy is in progress when the scan starts; otherwise an
     update already redirected to the new array could be missed even though
     it completed before this collect began. *)
  help_copy t ctx;
  reverse_collect t.htm ctx ~hdr:t.hdr ~stepper:t.stepper buf

let destroy t ctx =
  let mem = Htm.mem t.htm in
  let anew = Simmem.read mem ctx (t.hdr + hdr_array_new) in
  if anew <> 0 then Simmem.free mem ctx anew;
  Simmem.free mem ctx (Simmem.read mem ctx (t.hdr + hdr_array));
  Simmem.free mem ctx t.hdr

let maker : Collect_intf.maker =
  {
    algo_name = "ArrayDynAppendDereg";
    solves_dynamic = true;
    uses_htm = true;
    direct_update = false;
    make =
      (fun htm ctx cfg ->
        let t = create htm ctx cfg in
        {
          Collect_intf.name = "ArrayDynAppendDereg";
          register = register t;
          update = update t;
          deregister = deregister t;
          collect = (fun ctx buf -> collect t ctx buf);
          destroy = destroy t;
          step_histogram = (fun () -> Stepper.histogram t.stepper);
        });
  }
