(** Static baseline (paper §3.3): a fixed array with threads statically
    mapped to slot ranges. No synchronisation at all — registration writes
    a value into one of the calling thread's own slots, deregistration
    writes the null value 0, and collect scans the whole array with plain
    loads, returning the non-null values it sees.

    This does {e not} solve the Dynamic Collect problem (the bound and the
    thread mapping are fixed); the paper uses it purely to put the dynamic
    algorithms' performance in context, and so do we. *)

type t = {
  htm : Htm.t;
  arr : int;
  capacity : int;
  slots_per_thread : int;
  free_slots : int list array; (* per-thread stack of this thread's free slot indices *)
}

let create htm ctx (cfg : Collect_intf.cfg) =
  let capacity = max 1 cfg.max_slots in
  let num_threads = max 1 cfg.num_threads in
  let slots_per_thread = max 1 (capacity / num_threads) in
  let arr = Simmem.malloc (Htm.mem htm) ctx capacity in
  Simmem.label (Htm.mem htm) ~name:"StaticArray.slots" ~base:arr ~words:capacity;
  let free_slots =
    Array.init (Sim.max_threads + 1) (fun tid ->
        let base = tid * slots_per_thread in
        if base + slots_per_thread > capacity then []
        else List.init slots_per_thread (fun i -> base + i))
  in
  { htm; arr; capacity; slots_per_thread; free_slots }

let register t ctx v =
  if v = 0 then invalid_arg "Static_baseline.register: 0 is the null value";
  let tid = Sim.tid ctx in
  match t.free_slots.(tid) with
  | [] -> raise (Collect_intf.Capacity_exceeded "StaticBaseline")
  | i :: rest ->
    t.free_slots.(tid) <- rest;
    let slot = t.arr + i in
    Simmem.write (Htm.mem t.htm) ctx slot v;
    slot

let update t ctx slot v = Simmem.write (Htm.mem t.htm) ctx slot v

let deregister t ctx slot =
  Simmem.write (Htm.mem t.htm) ctx slot 0;
  t.free_slots.(Sim.tid ctx) <- (slot - t.arr) :: t.free_slots.(Sim.tid ctx)

let collect t ctx buf =
  let mem = Htm.mem t.htm in
  for i = 0 to t.capacity - 1 do
    let v = Simmem.read mem ctx (t.arr + i) in
    if v <> 0 then Sim.Ibuf.add buf v
  done

let destroy t ctx = Simmem.free (Htm.mem t.htm) ctx t.arr

let maker : Collect_intf.maker =
  {
    algo_name = "StaticBaseline";
    solves_dynamic = false;
    uses_htm = false;
    direct_update = true;
    make =
      (fun htm ctx cfg ->
        let t = create htm ctx cfg in
        {
          Collect_intf.name = "StaticBaseline";
          register = register t;
          update = update t;
          deregister = deregister t;
          collect = (fun ctx buf -> collect t ctx buf);
          destroy = destroy t;
          step_histogram = (fun () -> []);
        });
  }
