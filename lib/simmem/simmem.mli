(** Simulated word-addressable shared memory with explicit allocation.

    This is the substitute for the C++/libumem environment of the paper:
    OCaml's garbage-collected heap has no [free], no use-after-free and no
    ABA, so the memory-reclamation problem the paper studies cannot even be
    expressed on it. Here instead:

    - memory is an array of integer {e words}, addressed by integers
      ([0] is the null address and never valid);
    - blocks are allocated with {!malloc} and released with {!free};
      freed blocks go to size-bucketed LIFO free lists and are eagerly
      reused, which makes ABA hazards and use-after-free real;
    - every access checks allocation state: non-transactional access to a
      free word raises {!Fault} (the simulated segfault), while the
      transactional plane reports it to {!Htm} so the transaction can abort
      (Rock-style {e sandboxing});
    - each word carries a version number, bumped by every committed store
      and by [free]/[malloc], which is what transaction validation reads;
    - accesses charge virtual-time costs from a MESI-like cache-line model
      (8-word lines, per-line sharer bitmask): line-local hits are cheap,
      coherence misses expensive. The paper's headline performance effects
      (e.g. hand-over-hand refcounting losing badly because it writes every
      node it traverses) are coherence effects, and this model reproduces
      them.

    Allocation statistics (live and peak words/blocks) support the paper's
    space-usage claims quantitatively. *)

type fault =
  | Use_after_free of int  (** access to a freed word *)
  | Unallocated of int  (** access to a never-allocated word or null *)
  | Double_free of int
  | Invalid_free of int  (** free of an address that is not a block base *)

exception Fault of fault

val pp_fault : Format.formatter -> fault -> unit

type cost_model = {
  read_hit : int;  (** load from a line this thread already shares *)
  read_miss : int;  (** load requiring a coherence transfer *)
  write_hit : int;  (** store to a line held exclusively *)
  write_miss : int;  (** store requiring invalidation of other copies *)
  cas_extra : int;  (** atomic-op penalty on top of the store cost *)
  malloc_base : int;
  malloc_per_word : int;
  free_cost : int;
}

val default_costs : cost_model

(** {1 Allocation policy}

    [Shared_lifo] (the default) is the historical allocator: a single
    bump pointer with exact-size LIFO free lists, shared by every thread.
    Its address sequences — and therefore every downstream schedule and
    committed baseline — are unchanged from the seed.

    [Arena placement] shards it: each thread owns an arena that carves
    line-aligned chunks off the global bump pointer and serves its own
    allocations. A free by the owning thread returns the block to the
    arena's per-granule free lists immediately; a free by any other
    thread still takes full effect (state flip, version bumps, fault
    checks) but the block parks on the {e owner's} remote-free ring and
    only becomes reusable when the owner drains it — at its next
    allocation or at any of its fence points. Both drains are pure
    bookkeeping under the virtual clock, so runs stay deterministic.

    The placement policy controls how blocks pack into 8-word cache
    lines (docs/ALLOCATION.md):
    - [Line_packed]: contiguous bump within the chunk; small blocks from
      one arena share lines, maximizing false sharing — the adversarial
      placement from "The Influence of Malloc Placement on TSX Hardware
      Transactional Memory".
    - [Line_isolated]: every block is rounded up to whole lines and
      starts on a line boundary; no two blocks ever share a line.
    - [Cache_index_aware]: line-isolated, plus each thread's chunk
      starts are colored to distinct line-index residues — the
      set-index-aware refinement (on this flat memory it behaves like
      [Line_isolated] with spread chunk origins). *)

type placement = Line_packed | Line_isolated | Cache_index_aware
type alloc_policy = Shared_lifo | Arena of placement

val placement_label : placement -> string
val alloc_label : alloc_policy -> string
(** Stable labels for artifacts/CLI: ["shared-lifo"], ["arena/line-packed"],
    ["arena/line-isolated"], ["arena/cache-index-aware"]. *)

type t

type stats = {
  live_words : int;
  live_blocks : int;
  peak_live_words : int;
  peak_live_blocks : int;
  total_allocs : int;
  total_frees : int;
  heap_extent : int;
      (** total high-water mark of the heap in words: the global bump
          pointer, which under an [Arena _] policy covers every chunk any
          arena carved (plus alignment gaps) *)
  arena_extents : (int * int) list;
      (** per-arena [(tid, words carved)] in tid order; [[]] under
          [Shared_lifo]. The carved words sum to [heap_extent - 8]. *)
  remote_frees : int;  (** blocks ever freed by a non-owning thread *)
  remote_pending : int;  (** remote frees not yet drained by their owner *)
  reads : int;  (** loads issued (all access planes) *)
  read_misses : int;  (** loads that required a coherence transfer *)
  writes : int;  (** stores issued *)
  write_misses : int;  (** stores that invalidated other copies *)
  atomics : int;  (** CAS and fetch-add operations *)
}

val create :
  ?costs:cost_model ->
  ?model:Sim.Memmodel.t ->
  ?metrics:Obs.Metrics.t ->
  ?threads:int ->
  ?initial_words:int ->
  ?alloc:alloc_policy ->
  unit ->
  t
(** [metrics] chains this heap's metrics registry to a parent (e.g. the
    benchmark harness's fleet-wide aggregate); without it the heap still
    keeps a private registry, which is what {!stats} reads.

    [threads] sizes the per-line sharer sets: the heap tracks coherence
    for runnable thread ids below [max 61 threads] (plus boot contexts).
    The default covers every paper-scale run in one word per line; scaled
    experiments pass the simulated thread count and pay one extra word
    per line per further 62 threads. An access by a runnable tid at or
    beyond the capacity raises [Invalid_argument].

    [initial_words] preallocates the heap arrays (default 4096 words);
    the heap still grows on demand beyond it. Million-word experiments
    reserve up front so growth never lands mid-measurement.

    [model] selects the memory-consistency variant (default
    {!Sim.Memmodel.sc}, the pre-weak-memory behavior). Under a buffered
    model every plain {!write} enters the issuing thread's FIFO store
    buffer and becomes globally visible only at a drain point — a
    {!Sim.fence}, an atomic ({!cas} / {!fetch_add}), {!malloc} / {!free},
    capacity overflow, or thread termination. Coherence costs, counters,
    version bumps and the access tap all fire at drain time, making each
    drained store a scheduler-visible step. See docs/MEMORY_ORDERING.md.

    [alloc] selects the allocation policy (default {!Shared_lifo}, the
    historical allocator — byte-identical to the seed). *)

val stats : t -> stats

val metrics : t -> Obs.Metrics.t
(** The heap's registry: [mem.reads], [mem.read_misses], [mem.writes],
    [mem.write_misses], [mem.atomics], [mem.allocs], [mem.frees] counters
    (access counters carry per-thread breakdowns), [mem.live_words] /
    [mem.live_blocks] gauges (high-water mark = peak), and the
    [mem.queue_wait] histogram of cycles spent queued behind another
    in-flight transfer of the same line. *)

val costs : t -> cost_model

val model : t -> Sim.Memmodel.t
(** The memory-consistency variant this heap was created with. *)

val alloc : t -> alloc_policy
(** The allocation policy this heap was created with. *)

(** {1 Line-granularity conflict plane}

    Besides per-word versions, every committed store bumps a per-line
    version and records the bumping thread. Real HTMs track conflicts at
    cache-line granularity; {!Htm} validates against this plane when its
    config opts in, which is what makes placement-induced false sharing
    abort transactions. Maintenance is unconditional and costs zero
    virtual cycles. *)

val line_of : int -> int
(** The cache-line index covering an address (8-word lines). *)

val line_version : t -> int -> int
(** Current version of a line, by line index (no cost, no yield). *)

val line_writer : t -> int -> int
(** Tid whose committed store last bumped this line's version, [-1] if
    never bumped (no cost, no yield). Lets a validator absorb its own
    bumps instead of self-aborting. *)

val set_profiler : t -> Obs.Profiler.t option -> unit
(** Attach a contention profiler: every coherence transfer (read or write
    miss) is recorded with its line, queuing delay, total cost and the
    sharer count at request time. Costs nothing when unset. *)

val profiler : t -> Obs.Profiler.t option

val label : t -> name:string -> base:int -> words:int -> unit
(** Region-label an address range for contention attribution (no-op
    without a profiler or forensics). Data-structure implementations call
    this at allocation sites: ["ListHoHRC.header"], ["MSQueue+ROP.node"],
    ... *)

(** {1 Conflict forensics}

    A {e witness} captures who doomed a transaction (or a CAS) at the
    coherence plane: the victim, the aggressor whose committed store
    invalidated it, the address they collided on and the access kinds.
    Aggressors are resolved from a per-word {e last-writer journal}
    (thread, clock, store kind at the word's most recent version bump),
    enabled by {!track_writers} or by attaching a {!Obs.Forensics.t}.

    All of it is observation only — zero virtual cycles, no RNG, no
    scheduling impact — so instrumented runs are cycle-identical to bare
    ones. *)

type writer_op = Op_store | Op_atomic | Op_commit | Op_malloc | Op_free

val track_writers : t -> unit
(** Turn on the last-writer journal without attaching forensics (the
    schedule explorer does this so counterexample traces carry
    aggressors). *)

val last_writer : t -> int -> (int * int * writer_op) option
(** [(tid, clock, op)] of the committed store that last bumped this
    word's version; [None] if the journal is off or the word was never
    written since it came on. *)

val set_forensics : t -> Obs.Forensics.t option -> unit
(** Attach a forensics aggregator (implies {!track_writers}); {!label}
    and {!malloc} provenance forward into it, and witnesses recorded via
    {!record_witness} accumulate there. *)

val forensics : t -> Obs.Forensics.t option

val conflict_witness :
  t ->
  Sim.tctx ->
  addr:int ->
  ?lookup:int ->
  ?aggressor:int ->
  victim_wrote:bool ->
  in_read_set:bool ->
  in_write_set:bool ->
  site:string ->
  unit ->
  Obs.Forensics.witness
(** Build a witness for a conflict the acting thread just lost on
    [addr]. The aggressor comes from the last-writer journal of [lookup]
    (default [addr]) — pass the stripe-lock word to attribute an STM
    conflict to the last committer of that stripe. [aggressor] overrides
    the journal's thread when the caller knows the owner exactly. *)

val record_witness : t -> Sim.tctx -> Obs.Forensics.witness -> unit
(** Aggregate into the attached forensics (if any) and, when a tracer is
    attached and the aggressor known, emit a Chrome-trace flow arrow
    from the aggressor's write to the victim's abort. *)

val note_hop :
  t ->
  Sim.tctx ->
  from_path:string ->
  to_path:string ->
  reason:string ->
  Obs.Forensics.witness option ->
  unit
(** Record an escalation hop (HW → STM → TLE) in the attached forensics;
    no-op otherwise. *)

(** Access-event tap, for trace capture by the schedule explorer
    ([lib/explore]): every completed access — including the transactional
    plane's reads and committed stores — is reported with the issuing
    thread and its clock after the access. Costs nothing when unset. *)

type access =
  | Read of { addr : int; value : int }
  | Write of { addr : int; value : int }
  | Cas of { addr : int; expected : int; desired : int; success : bool }
  | Fetch_add of { addr : int; delta : int; old : int }
  | Malloc of { base : int; words : int }
  | Free of { base : int; words : int }

type access_event = { acc_tid : int; acc_clock : int; acc : access }

val pp_access : Format.formatter -> access -> unit

val set_tap : t -> (access_event -> unit) option -> unit
(** Install (or with [None] remove) the access tap. The tap must not
    access [t] reentrantly. *)

val null : int
(** The null address, [0]. *)

val malloc : t -> Sim.tctx -> int -> int
(** [malloc t ctx n] allocates a block of [n >= 1] words, zeroed, and
    returns its base address. Reuses a freed block of the same size when one
    exists (LIFO). *)

val free : t -> Sim.tctx -> int -> unit
(** Release a block by its base address.
    @raise Fault on double free or non-base address. *)

val block_size : t -> int -> int option
(** [block_size t addr] is the size of the live block based at [addr]. *)

val is_allocated : t -> int -> bool
(** Whether the word at this address belongs to a live block. *)

val read : t -> Sim.tctx -> int -> int
(** Non-transactional load. @raise Fault if the word is not allocated. *)

val write : t -> Sim.tctx -> int -> int -> unit
(** Non-transactional store; bumps the word version (strong atomicity:
    it dooms any transaction that has read the word). Under a buffered
    {!Sim.Memmodel} the store enters the thread's FIFO buffer instead and
    only becomes visible (version bump, coherence traffic, tap event) when
    it drains; an in-fiber drain whose target word has meanwhile been
    freed raises the fault at drain time — the delayed-visibility
    use-after-free that fence disciplines exist to prevent.
    @raise Fault if the word is not allocated. *)

val fenced_write : t -> Sim.tctx -> int -> int -> unit
(** Store with release semantics: drains the thread's buffer first, then
    writes through directly (never buffered). Under [sc] this is exactly
    {!write}. The TLE lock release uses it — every critical-section store
    must be visible before the lock word clears. *)

val cas : t -> Sim.tctx -> int -> expected:int -> desired:int -> bool
(** Atomic compare-and-swap; bumps the version only on success. Atomics
    are implicit full fences: the thread's store buffer drains first.
    With forensics attached, a {e failed} CAS records a conflict witness
    (site ["mem.cas"]) against the word's last writer — how non-
    transactional lock-free structures surface their contention. *)

val fetch_add : t -> Sim.tctx -> int -> int -> int
(** [fetch_add t ctx addr d] atomically adds [d], returning the old value.
    An implicit full fence, like {!cas}. *)

val drain : t -> Sim.tctx -> unit
(** Flush this thread's store buffer (in-fiber: each drained store is a
    scheduling point and may fault). No-op under [sc] or when the buffer
    is empty. The transaction layers call this at transaction begin so tx
    reads never miss the thread's own pre-tx stores. *)

val pending_stores : t -> Sim.tctx -> int
(** Number of stores currently sitting in this thread's buffer (0 under
    [sc]). Test/debug introspection; free. *)

val version : t -> int -> int
(** Current version of a word (no cost, no yield). *)

val peek : t -> int -> int
(** Debug/test read: no cost, no yield, no allocation check (but must be
    within the heap extent). *)

(** Access plane for the HTM implementation. Algorithms never use this
    directly; {!Htm} does. *)
module Tx_plane : sig
  val read_ver : t -> Sim.tctx -> int -> int
  (** The unboxed transactional load: pays the normal load cost and
      yields; returns the word's version ([>= 0]) with the value readable
      via {!read_value}, or [-1] if the word is not allocated (the
      transaction must abort: this is the sandboxing behaviour). *)

  val read_value : t -> int
  (** The value parked by the last successful {!read_ver} on this heap.
      Only meaningful immediately after it, before any other access. *)

  val read : t -> Sim.tctx -> int -> (int * int) option
  (** [(value, version)] — {!read_ver} boxed, for callers off the hot
      path. *)

  val validate : t -> int -> int -> bool
  (** [validate t addr v] is true iff the word's version is still [v]. *)

  val commit_write : t -> Sim.tctx -> int -> int -> bool
  (** Apply one committed store: pays the store cost {e without yielding}
      (commit is atomic in virtual time), writes, bumps the version.
      Returns [false] if the word is no longer allocated. *)
end
