type fault =
  | Use_after_free of int
  | Unallocated of int
  | Double_free of int
  | Invalid_free of int

exception Fault of fault

let pp_fault ppf = function
  | Use_after_free a -> Format.fprintf ppf "use-after-free at %#x" a
  | Unallocated a -> Format.fprintf ppf "access to unallocated word %#x" a
  | Double_free a -> Format.fprintf ppf "double free of %#x" a
  | Invalid_free a -> Format.fprintf ppf "free of non-block address %#x" a

type cost_model = {
  read_hit : int;
  read_miss : int;
  write_hit : int;
  write_miss : int;
  cas_extra : int;
  malloc_base : int;
  malloc_per_word : int;
  free_cost : int;
}

let default_costs =
  {
    read_hit = 8;
    read_miss = 50;
    write_hit = 8;
    write_miss = 60;
    cas_extra = 15;
    malloc_base = 80;
    malloc_per_word = 2;
    free_cost = 60;
  }

(* Word allocation state. [Freed] words remember that they were once live so
   that a dangling access is reported as use-after-free, not unallocated. *)
let st_never = 0
let st_live = 1
let st_freed = 2

let line_shift = 3 (* 8 words per line *)
let line_words = 1 lsl line_shift

(* ---- Allocation policy ------------------------------------------------

   [Shared_lifo] is the historical allocator: one global bump pointer
   plus exact-size LIFO free lists. It is the default and its address
   sequences are bit-for-bit those of the seed — every committed baseline
   depends on that.

   [Arena placement] shards the allocator: each thread owns an arena that
   carves line-aligned chunks from the global bump pointer and serves
   allocations from them. Frees by the owner go straight back to the
   arena's per-granule free lists; frees by any other thread enqueue the
   block on the owner's remote-free ring (the free itself — state flip,
   version bumps, fault checks — still happens immediately; only *reuse*
   is deferred). The owner drains its ring at its own allocation and
   fence points, so reuse order is a pure function of the virtual-time
   schedule. The placement policy decides how blocks pack into cache
   lines — the knob the malloc-placement ablation turns. *)

type placement =
  | Line_packed (* contiguous bump: blocks share lines, maximal false sharing *)
  | Line_isolated (* every block starts a fresh line and owns it entirely *)
  | Cache_index_aware (* line-isolated + per-thread chunk coloring *)

type alloc_policy = Shared_lifo | Arena of placement

let placement_label = function
  | Line_packed -> "line-packed"
  | Line_isolated -> "line-isolated"
  | Cache_index_aware -> "cache-index-aware"

let alloc_label = function
  | Shared_lifo -> "shared-lifo"
  | Arena p -> "arena/" ^ placement_label p

(* Words a block of [n] user words occupies in an arena. Packed placement
   allocates exactly like the shared path; isolating placements round up
   to whole lines so no two blocks ever share one. *)
let granule_of placement n =
  match placement with
  | Line_packed -> n
  | Line_isolated | Cache_index_aware ->
    (n + line_words - 1) land lnot (line_words - 1)

(* Minimum chunk an arena carves from the global extent, in words. *)
let chunk_min = 512

(* Per-thread arena. All state is flat ints/arrays: the steady-state
   malloc/free path allocates nothing on the OCaml heap (the remote ring
   doubles amortized, like the heap arrays themselves). *)
type arena = {
  a_tid : int;
  mutable a_cursor : int; (* next unused word of the current chunk *)
  mutable a_limit : int; (* end of the current chunk (exclusive) *)
  mutable a_carved : int; (* total words this arena took off the global extent *)
  mutable a_fl_head : int array; (* per granule: newest freed block base *)
  mutable a_rq_base : int array; (* remote-free ring: block bases *)
  mutable a_rq_gran : int array; (* remote-free ring: matching granules *)
  mutable a_rq_head : int;
  mutable a_rq_len : int;
  mutable a_remote_frees : int; (* total blocks ever enqueued remotely *)
  mutable a_reg : Sim.tctx option; (* context holding our fence-drain hook *)
}

(* What kind of committed store last touched a word — the aggressor half
   of a conflict witness. *)
type writer_op = Op_store | Op_atomic | Op_commit | Op_malloc | Op_free

let op_label = function
  | Op_store -> "store"
  | Op_atomic -> "atomic"
  | Op_commit -> "commit"
  | Op_malloc -> "malloc"
  | Op_free -> "free"

let op_code = function
  | Op_store -> 0
  | Op_atomic -> 1
  | Op_commit -> 2
  | Op_malloc -> 3
  | Op_free -> 4

let op_of_code = function
  | 0 -> Op_store
  | 1 -> Op_atomic
  | 2 -> Op_commit
  | 3 -> Op_malloc
  | _ -> Op_free

let no_writer = -1

type access =
  | Read of { addr : int; value : int }
  | Write of { addr : int; value : int }
  | Cas of { addr : int; expected : int; desired : int; success : bool }
  | Fetch_add of { addr : int; delta : int; old : int }
  | Malloc of { base : int; words : int }
  | Free of { base : int; words : int }

type access_event = { acc_tid : int; acc_clock : int; acc : access }

let pp_access ppf = function
  | Read { addr; value } -> Format.fprintf ppf "read   %#x -> %d" addr value
  | Write { addr; value } -> Format.fprintf ppf "write  %#x <- %d" addr value
  | Cas { addr; expected; desired; success } ->
    Format.fprintf ppf "cas    %#x %d->%d %s" addr expected desired
      (if success then "ok" else "failed")
  | Fetch_add { addr; delta; old } -> Format.fprintf ppf "fadd   %#x +%d (was %d)" addr delta old
  | Malloc { base; words } -> Format.fprintf ppf "malloc %#x (%d words)" base words
  | Free { base; words } -> Format.fprintf ppf "free   %#x (%d words)" base words

(* One thread's FIFO store buffer (active only under a buffered
   {!Sim.Memmodel}): a fixed ring of (addr, value) pairs in two
   preallocated int arrays, filled lazily on first buffered store —
   entries in issue order, [sb_head] the oldest, [sb_len] the count (the
   write path drains one entry before pushing at capacity, so
   [sb_len <= depth] always). [sb_reg] remembers which [Sim.tctx]
   currently has our drain hook installed — contexts are recreated per
   [Sim.run], so a stale registration (physical inequality) means the
   hook must be installed on the new context. *)
type sbuf = {
  mutable sb_addr : int array;
  mutable sb_val : int array;
  mutable sb_head : int;
  mutable sb_len : int;
  mutable sb_reg : Sim.tctx option;
}

(* Sharer sets are per-line bitmasks over [cap + 1] bit indices: bit [tid]
   for runnable threads below the heap's thread capacity [cap], bit [cap]
   for boot contexts. With the default capacity (61, one word) this is
   exactly the historical one-word layout; larger capacities spread each
   line over [sw] consecutive words (62 bits per word, line-major). *)
let sh_bits = 62

type t = {
  cost : cost_model;
  model : Sim.Memmodel.t;
  alloc : alloc_policy;
  cap : int; (* thread capacity: distinct non-boot tids the sharer sets track *)
  sw : int; (* sharer words per line *)
  sbufs : sbuf array; (* indexed by tid; slot [Sim.boot_tid] stays empty *)
  arenas : arena option array; (* indexed by tid; empty under Shared_lifo *)
  mutable tap : (access_event -> unit) option;
  (* The one observability test hot paths make: set when any per-access
     bookkeeping (tap, last-writer journal) is installed, so the
     no-observer configuration pays a single predictable branch per
     access and allocates nothing. Recomputed by the setters. *)
  mutable obs_on : bool;
  mutable values : int array;
  mutable versions : int array;
  mutable state : Bytes.t;
  mutable sharers : int array; (* per line: [sw] words of caching-thread bits *)
  mutable line_busy : int array; (* per line: virtual time its current transfer ends *)
  mutable extent : int; (* first never-used address (bump pointer) *)
  mutable block_words : int array; (* per base address: live-block size, 0 = none *)
  mutable block_owner : int array; (* per base: owning tid + 1; empty under Shared_lifo *)
  mutable fl_next : int array; (* per base address: next free block of same size, 0 = end *)
  mutable fl_head : int array; (* per size: base of newest freed block, 0 = none *)
  (* Per-line version counters, bumped alongside every word-version bump,
     with the bumping thread remembered. This is the line-granularity
     conflict plane real HTMs validate on ({!Htm} opts in per config);
     maintaining it unconditionally costs two array stores per committed
     store and is invisible to virtual time. *)
  mutable lversions : int array;
  mutable lw_tid : int array; (* per line: tid of the last version bump, -1 never *)
  (* Scratch cell for {!Tx_plane.read_ver}: the value read, valid when the
     returned version is >= 0. Lets the transactional read path return an
     unboxed int instead of [Some (v, ver)]. *)
  mutable txr_val : int;
  (* Counts live in the metrics registry; [stats] reads the handles back,
     so per-heap numbers stay exact while a parent registry (if any)
     accumulates fleet-wide totals. *)
  mreg : Obs.Metrics.t;
  c_reads : Obs.Metrics.counter;
  c_read_misses : Obs.Metrics.counter;
  c_writes : Obs.Metrics.counter;
  c_write_misses : Obs.Metrics.counter;
  c_atomics : Obs.Metrics.counter;
  c_allocs : Obs.Metrics.counter;
  c_frees : Obs.Metrics.counter;
  g_live_words : Obs.Metrics.gauge;
  g_live_blocks : Obs.Metrics.gauge;
  h_queue_wait : Obs.Metrics.hist;
  mutable prof : Obs.Profiler.t option;
  (* Last-writer journal, the aggressor side of conflict witnesses: per
     word, which thread's committed store bumped the version last, what
     kind of store it was and at what clock. Off by default; the arrays
     are allocated on first enable, and capture is a handful of array
     stores, zero virtual cycles. *)
  mutable wr_on : bool;
  mutable wr_tid : int array;
  mutable wr_kind : Bytes.t;
  mutable wr_clock : int array;
  mutable fors : Obs.Forensics.t option;
}

type stats = {
  live_words : int;
  live_blocks : int;
  peak_live_words : int;
  peak_live_blocks : int;
  total_allocs : int;
  total_frees : int;
  heap_extent : int;
  arena_extents : (int * int) list;
  remote_frees : int;
  remote_pending : int;
  reads : int;
  read_misses : int;
  writes : int;
  write_misses : int;
  atomics : int;
}

let initial_words = 1 lsl 12
let default_cap = 61

let create ?(costs = default_costs) ?(model = Sim.Memmodel.sc) ?metrics
    ?(threads = default_cap) ?(initial_words = initial_words)
    ?(alloc = Shared_lifo) () =
  if threads < 1 || threads > Sim.max_threads then
    invalid_arg "Simmem.create: threads out of range";
  let cap = max default_cap threads in
  let sw = (cap + 1 + sh_bits - 1) / sh_bits in
  let initial_words = max 64 initial_words in
  let mreg = Obs.Metrics.create ?parent:metrics () in
  let arena_mode = alloc <> Shared_lifo in
  {
    cost = costs;
    model;
    alloc;
    cap;
    sw;
    sbufs =
      Array.init (Sim.max_threads + 1) (fun _ ->
          { sb_addr = [||]; sb_val = [||]; sb_head = 0; sb_len = 0; sb_reg = None });
    arenas =
      (if arena_mode then Array.make (Sim.max_threads + 1) None else [||]);
    tap = None;
    obs_on = false;
    values = Array.make initial_words 0;
    versions = Array.make initial_words 0;
    state = Bytes.make initial_words (Char.chr st_never);
    sharers = Array.make ((((initial_words lsr line_shift) + 1) * sw)) 0;
    line_busy = Array.make ((initial_words lsr line_shift) + 1) 0;
    extent = 8; (* keep address 0 (null) and the first line unusable *)
    block_words = Array.make initial_words 0;
    block_owner = (if arena_mode then Array.make initial_words 0 else [||]);
    fl_next = Array.make initial_words 0;
    fl_head = Array.make 64 0;
    lversions = Array.make ((initial_words lsr line_shift) + 1) 0;
    lw_tid = Array.make ((initial_words lsr line_shift) + 1) (-1);
    txr_val = 0;
    mreg;
    c_reads = Obs.Metrics.counter ~per_thread:true mreg "mem.reads";
    c_read_misses = Obs.Metrics.counter ~per_thread:true mreg "mem.read_misses";
    c_writes = Obs.Metrics.counter ~per_thread:true mreg "mem.writes";
    c_write_misses = Obs.Metrics.counter ~per_thread:true mreg "mem.write_misses";
    c_atomics = Obs.Metrics.counter mreg "mem.atomics";
    c_allocs = Obs.Metrics.counter mreg "mem.allocs";
    c_frees = Obs.Metrics.counter mreg "mem.frees";
    g_live_words = Obs.Metrics.gauge mreg "mem.live_words";
    g_live_blocks = Obs.Metrics.gauge mreg "mem.live_blocks";
    h_queue_wait = Obs.Metrics.hist mreg "mem.queue_wait";
    prof = None;
    wr_on = false;
    wr_tid = [||];
    wr_kind = Bytes.empty;
    wr_clock = [||];
    fors = None;
  }

let stats (t : t) =
  let arena_extents = ref [] and remote_frees = ref 0 and remote_pending = ref 0 in
  for tid = Array.length t.arenas - 1 downto 0 do
    match t.arenas.(tid) with
    | None -> ()
    | Some a ->
      arena_extents := (tid, a.a_carved) :: !arena_extents;
      remote_frees := !remote_frees + a.a_remote_frees;
      remote_pending := !remote_pending + a.a_rq_len
  done;
  {
    live_words = Obs.Metrics.gauge_value t.g_live_words;
    live_blocks = Obs.Metrics.gauge_value t.g_live_blocks;
    peak_live_words = Obs.Metrics.gauge_max t.g_live_words;
    peak_live_blocks = Obs.Metrics.gauge_max t.g_live_blocks;
    total_allocs = Obs.Metrics.value t.c_allocs;
    total_frees = Obs.Metrics.value t.c_frees;
    heap_extent = t.extent;
    arena_extents = !arena_extents;
    remote_frees = !remote_frees;
    remote_pending = !remote_pending;
    reads = Obs.Metrics.value t.c_reads;
    read_misses = Obs.Metrics.value t.c_read_misses;
    writes = Obs.Metrics.value t.c_writes;
    write_misses = Obs.Metrics.value t.c_write_misses;
    atomics = Obs.Metrics.value t.c_atomics;
  }

let metrics t = t.mreg
let costs t = t.cost
let model t = t.model
let alloc t = t.alloc
let null = 0

let line_of addr = addr lsr line_shift
let line_version t line = t.lversions.(line)
let line_writer t line = t.lw_tid.(line)

let refresh_obs t =
  t.obs_on <- (match t.tap with Some _ -> true | None -> t.wr_on)

let set_tap t f =
  t.tap <- f;
  refresh_obs t

let set_profiler t p = t.prof <- p
let profiler t = t.prof

(* Bit index of [tid] in a sharer set: runnable tids map to themselves,
   boot contexts to the reserved top index. A runnable tid at or beyond
   the heap's capacity has no bit to occupy — the heap must be created
   with [~threads] covering the run. *)
let bindex t tid =
  if tid < t.cap then tid
  else if tid = Sim.boot_tid then t.cap
  else
    invalid_arg
      (Printf.sprintf "Simmem: thread %d exceeds this heap's capacity %d" tid t.cap)

let label t ~name ~base ~words =
  (match t.prof with
   | None -> ()
   | Some p -> Obs.Profiler.label p ~name ~base ~words);
  match t.fors with
  | None -> ()
  | Some f -> Obs.Forensics.label f ~name ~base ~words

(* ---- Conflict forensics ----------------------------------------------

   Everything in this section is observation only: plain OCaml mutation,
   no [tick]/[charge], no RNG — an instrumented run is cycle-for-cycle
   identical to a bare one. *)

(* The journal arrays are sized with the heap but only once the journal is
   enabled — a plain run carries no per-word observability footprint. *)
let wr_ensure t =
  let n = Array.length t.values in
  if Array.length t.wr_tid < n then begin
    let wr_tid = Array.make n no_writer in
    Array.blit t.wr_tid 0 wr_tid 0 (Array.length t.wr_tid);
    t.wr_tid <- wr_tid;
    let wr_kind = Bytes.make n '\000' in
    Bytes.blit t.wr_kind 0 wr_kind 0 (Bytes.length t.wr_kind);
    t.wr_kind <- wr_kind;
    let wr_clock = Array.make n 0 in
    Array.blit t.wr_clock 0 wr_clock 0 (Array.length t.wr_clock);
    t.wr_clock <- wr_clock
  end

let track_writers t =
  t.wr_on <- true;
  wr_ensure t;
  refresh_obs t

let set_forensics t f =
  t.fors <- f;
  if f <> None then begin
    t.wr_on <- true;
    wr_ensure t
  end;
  refresh_obs t

let forensics t = t.fors

let note_write t ctx addr op =
  if t.wr_on then begin
    Array.unsafe_set t.wr_tid addr (Sim.tid ctx);
    Bytes.unsafe_set t.wr_kind addr (Char.unsafe_chr (op_code op));
    t.wr_clock.(addr) <- Sim.clock ctx
  end

let last_writer t addr =
  if (not t.wr_on) || addr < 0 || addr >= Array.length t.wr_tid then None
  else
    let tid = Array.unsafe_get t.wr_tid addr in
    if tid = no_writer then None
    else
      Some
        ( tid,
          t.wr_clock.(addr),
          op_of_code (Char.code (Bytes.unsafe_get t.wr_kind addr)) )

(* Build a witness for a conflict the acting thread just lost on [addr].
   The aggressor is resolved from the last-writer journal — of [lookup]
   when given (e.g. a version-lock word whose last committer is the
   conflicting transaction), of [addr] itself otherwise. [aggressor]
   overrides the journal's thread id when the caller knows the owner
   exactly (a lock holder); the journal still supplies clock and op when
   it agrees. *)
let conflict_witness t ctx ~addr ?lookup ?aggressor ~victim_wrote ~in_read_set
    ~in_write_set ~site () =
  let lookup = match lookup with Some a -> a | None -> addr in
  let jtid, jclock, jop =
    match last_writer t lookup with
    | Some (tid, clock, op) -> (tid, clock, op_label op)
    | None -> (-1, -1, "?")
  in
  let agg, agg_clock, op =
    match aggressor with
    | None -> (jtid, jclock, jop)
    | Some tid -> if tid = jtid then (tid, jclock, jop) else (tid, -1, "lock")
  in
  {
    Obs.Forensics.w_victim = Sim.tid ctx;
    w_aggressor = agg;
    w_addr = addr;
    w_line = addr lsr line_shift;
    w_victim_wrote = victim_wrote;
    w_read_set = in_read_set;
    w_write_set = in_write_set;
    w_op = op;
    w_aggressor_clock = agg_clock;
    w_clock = Sim.clock ctx;
    w_site = site;
  }

(* Aggregate the witness and, when a tracer is attached and the aggressor
   is known, draw a Perfetto flow arrow from the aggressor's committed
   write to the victim's abort point. *)
let record_witness t ctx (w : Obs.Forensics.witness) =
  (match t.fors with None -> () | Some f -> Obs.Forensics.record f w);
  match Sim.tracer ctx with
  | Some sink when w.Obs.Forensics.w_aggressor >= 0 && w.w_aggressor_clock >= 0 ->
    let id = Obs.Tracer.flow_id sink in
    let args =
      [ ("addr", Obs.Json.Int w.w_addr); ("site", Obs.Json.Str w.w_site) ]
    in
    Obs.Tracer.flow_start sink ~tid:w.w_aggressor ~name:"conflict" ~cat:"forensics"
      ~args ~id w.w_aggressor_clock;
    Obs.Tracer.flow_finish sink ~tid:w.w_victim ~name:"conflict" ~cat:"forensics"
      ~args ~id w.w_clock
  | _ -> ()

let note_hop t ctx ~from_path ~to_path ~reason w =
  match t.fors with
  | None -> ()
  | Some f ->
    Obs.Forensics.note_hop f ~tid:(Sim.tid ctx) ~clock:(Sim.clock ctx) ~from_path
      ~to_path ~reason w

(* Taps fire after the access completes, so the stamped clock includes the
   access cost and the value reflects the post-access state. *)
let emit t ctx acc =
  match t.tap with
  | None -> ()
  | Some f -> f { acc_tid = Sim.tid ctx; acc_clock = Sim.clock ctx; acc }

let grow t needed =
  let cur = Array.length t.values in
  let size = ref cur in
  while !size < needed do
    size := !size * 2
  done;
  let values = Array.make !size 0 in
  Array.blit t.values 0 values 0 cur;
  t.values <- values;
  let versions = Array.make !size 0 in
  Array.blit t.versions 0 versions 0 cur;
  t.versions <- versions;
  let state = Bytes.make !size (Char.chr st_never) in
  Bytes.blit t.state 0 state 0 cur;
  t.state <- state;
  let nlines = (!size lsr line_shift) + 1 in
  (* Sharer words are line-major with a fixed [sw] per line, so the old
     prefix blits flat. *)
  let sharers = Array.make (nlines * t.sw) 0 in
  Array.blit t.sharers 0 sharers 0 (Array.length t.sharers);
  t.sharers <- sharers;
  let line_busy = Array.make nlines 0 in
  Array.blit t.line_busy 0 line_busy 0 (Array.length t.line_busy);
  t.line_busy <- line_busy;
  let block_words = Array.make !size 0 in
  Array.blit t.block_words 0 block_words 0 cur;
  t.block_words <- block_words;
  if Array.length t.block_owner > 0 then begin
    let block_owner = Array.make !size 0 in
    Array.blit t.block_owner 0 block_owner 0 cur;
    t.block_owner <- block_owner
  end;
  let fl_next = Array.make !size 0 in
  Array.blit t.fl_next 0 fl_next 0 cur;
  t.fl_next <- fl_next;
  let lversions = Array.make nlines 0 in
  Array.blit t.lversions 0 lversions 0 (Array.length t.lversions);
  t.lversions <- lversions;
  let lw_tid = Array.make nlines (-1) in
  Array.blit t.lw_tid 0 lw_tid 0 (Array.length t.lw_tid);
  t.lw_tid <- lw_tid;
  if t.wr_on then wr_ensure t

let word_state t addr = Char.code (Bytes.unsafe_get t.state addr)

(* Every committed store bumps the word version (the word-granularity
   conflict plane) and the covering line's version + last-bumper (the
   line-granularity plane {!Htm} can opt into). *)
let bump_version t ctx addr =
  Array.unsafe_set t.versions addr (Array.unsafe_get t.versions addr + 1);
  let line = addr lsr line_shift in
  Array.unsafe_set t.lversions line (Array.unsafe_get t.lversions line + 1);
  Array.unsafe_set t.lw_tid line (Sim.tid ctx)

let check_live t addr =
  if addr <= 0 || addr >= t.extent then raise (Fault (Unallocated addr))
  else
    let s = word_state t addr in
    if s <> st_live then
      raise (Fault (if s = st_freed then Use_after_free addr else Unallocated addr))

let popcount x =
  let c = ref 0 and x = ref x in
  while !x <> 0 do
    x := !x land (!x - 1);
    incr c
  done;
  !c

(* Observe one coherence transfer: contention profile, queue-wait
   histogram, and (when a tracer is attached) a miss instant on the
   requesting thread's track. Zero virtual cycles. *)
let observe_miss t ctx ~kind ~addr ~line ~sharers ~cost ~wait =
  (match t.prof with
   | None -> ()
   | Some p -> Obs.Profiler.record_transfer p ~line ~wait ~cost ~sharers);
  if wait > 0 then Obs.Metrics.observe t.h_queue_wait wait;
  match Sim.tracer ctx with
  | None -> ()
  | Some sink ->
    Obs.Tracer.instant sink ~tid:(Sim.tid ctx) ~name:kind ~cat:"mem"
      ~args:
        [
          ("addr", Obs.Json.Int addr);
          ("cost", Obs.Json.Int cost);
          ("wait", Obs.Json.Int wait);
          ("sharers", Obs.Json.Int sharers);
        ]
      (Sim.clock ctx)

(* Coherence miss: an MSI approximation. A miss occupies the line for the
   duration of the transfer ([line_busy]), so contended lines serialize
   their misses — the ping-pong bottleneck that caps the scalability of
   hot-spot structures like queue head/tail words. [sharers] is the
   pre-miss sharer count (for the contention profile); the returned cost
   includes any queuing delay. *)
let miss_cost t ctx ~kind ~addr ~line ~sharers ~base =
  let now = Sim.clock ctx in
  let start = max now t.line_busy.(line) in
  let finish = start + base in
  t.line_busy.(line) <- finish;
  observe_miss t ctx ~kind ~addr ~line ~sharers ~cost:(finish - now)
    ~wait:(start - now);
  finish - now

let read_cost t ctx addr =
  let tid = Sim.tid ctx in
  let line = addr lsr line_shift in
  let b = bindex t tid in
  Obs.Metrics.incr_t t.c_reads tid;
  if t.sw = 1 then begin
    (* Paper-scale heaps: the whole sharer set is one word, exactly the
       historical layout. *)
    let bit = 1 lsl b in
    let s = t.sharers.(line) in
    if s land bit <> 0 then t.cost.read_hit
    else begin
      t.sharers.(line) <- s lor bit;
      Obs.Metrics.incr_t t.c_read_misses tid;
      miss_cost t ctx ~kind:"miss.read" ~addr ~line ~sharers:(popcount s)
        ~base:t.cost.read_miss
    end
  end
  else begin
    let w0 = line * t.sw in
    let wi = w0 + (b / sh_bits) and bit = 1 lsl (b mod sh_bits) in
    let s = t.sharers.(wi) in
    if s land bit <> 0 then t.cost.read_hit
    else begin
      t.sharers.(wi) <- s lor bit;
      Obs.Metrics.incr_t t.c_read_misses tid;
      let n = ref 0 in
      for k = w0 to w0 + t.sw - 1 do
        if k = wi then n := !n + popcount s else n := !n + popcount t.sharers.(k)
      done;
      miss_cost t ctx ~kind:"miss.read" ~addr ~line ~sharers:!n
        ~base:t.cost.read_miss
    end
  end

let write_cost t ctx addr =
  let tid = Sim.tid ctx in
  let line = addr lsr line_shift in
  let b = bindex t tid in
  Obs.Metrics.incr_t t.c_writes tid;
  if t.sw = 1 then begin
    let bit = 1 lsl b in
    let s = t.sharers.(line) in
    if s = bit then t.cost.write_hit
    else begin
      t.sharers.(line) <- bit;
      Obs.Metrics.incr_t t.c_write_misses tid;
      miss_cost t ctx ~kind:"miss.write" ~addr ~line ~sharers:(popcount s)
        ~base:t.cost.write_miss
    end
  end
  else begin
    let w0 = line * t.sw in
    let wi = w0 + (b / sh_bits) and bit = 1 lsl (b mod sh_bits) in
    (* Exclusive iff this thread's bit is the only bit in any word. *)
    let exclusive = ref (t.sharers.(wi) = bit) in
    if !exclusive then
      for k = w0 to w0 + t.sw - 1 do
        if k <> wi && t.sharers.(k) <> 0 then exclusive := false
      done;
    if !exclusive then t.cost.write_hit
    else begin
      let n = ref 0 in
      for k = w0 to w0 + t.sw - 1 do
        n := !n + popcount t.sharers.(k);
        t.sharers.(k) <- 0
      done;
      t.sharers.(wi) <- bit;
      Obs.Metrics.incr_t t.c_write_misses tid;
      miss_cost t ctx ~kind:"miss.write" ~addr ~line ~sharers:!n
        ~base:t.cost.write_miss
    end
  end

(* ---- Store buffers (weak memory plane) -------------------------------

   Under a buffered {!Sim.Memmodel} every plain store enters the issuing
   thread's FIFO buffer and becomes globally visible only at a drain
   point: a fence, an atomic, malloc/free, capacity overflow, or thread
   termination. All the visibility machinery — coherence state, miss
   costs, counters, version bumps, and the access tap — fires at drain
   time, so a drain is a real scheduler-visible step the explorer can
   interleave. Under [sc] no buffer is ever touched and every code path
   below collapses to the pre-weak-memory instruction sequence. *)

let buffering t ctx = t.model.Sim.Memmodel.buffered && Sim.tid ctx <> Sim.boot_tid
let sbuf_of t ctx = t.sbufs.(Sim.tid ctx)

(* Ring primitives: the capacity equals the model's buffer depth (the
   write path drains before pushing at capacity, so it never overflows). *)
let sb_ensure t sb =
  if Array.length sb.sb_addr = 0 then begin
    let cap = max 1 t.model.Sim.Memmodel.sb_depth in
    sb.sb_addr <- Array.make cap 0;
    sb.sb_val <- Array.make cap 0
  end

let sb_pop sb =
  sb.sb_head <- (sb.sb_head + 1) mod Array.length sb.sb_addr;
  sb.sb_len <- sb.sb_len - 1

let sb_push sb addr v =
  let i = (sb.sb_head + sb.sb_len) mod Array.length sb.sb_addr in
  sb.sb_addr.(i) <- addr;
  sb.sb_val.(i) <- v;
  sb.sb_len <- sb.sb_len + 1

(* Make the oldest buffered store visible. The write instruction already
   executed at issue time, so an in-fiber drain that finds its target word
   freed is precisely the delayed-visibility use-after-free the fence
   discipline exists to prevent — report it. A terminal drain (thread
   teardown) has no fiber to fault and drops dead-word stores silently.
   The entry is popped only after the cost is paid: a kill landing inside
   the in-fiber tick leaves it queued for the terminal flush. *)
let drain_one t ctx ~terminal sb =
  if sb.sb_len > 0 then begin
    let addr = sb.sb_addr.(sb.sb_head) and v = sb.sb_val.(sb.sb_head) in
    let dead () = addr <= 0 || addr >= t.extent || word_state t addr <> st_live in
    if dead () then begin
      if terminal then sb_pop sb else check_live t addr
    end
    else begin
      let cost = write_cost t ctx addr in
      if terminal then Sim.charge ctx cost else Sim.tick ctx cost;
      if dead () then begin
        if terminal then sb_pop sb else check_live t addr
      end
      else begin
        sb_pop sb;
        t.values.(addr) <- v;
        bump_version t ctx addr;
        if t.obs_on then begin
          note_write t ctx addr Op_store;
          emit t ctx (Write { addr; value = v })
        end
      end
    end
  end

let drain_all t ctx ~terminal sb =
  while sb.sb_len > 0 do
    drain_one t ctx ~terminal sb
  done

(* Lazily install this heap's drain hook on the acting context, so
   [Sim.fence] and thread teardown flush the buffer. Contexts are
   per-[Sim.run]; a buffer whose registered context is stale re-registers
   on the new one. Fence hooks honor the model's [fence_drains] switch
   (the [sb-fence-nop] control); terminal flushes always happen. *)
let ensure_drain_hook t ctx sb =
  let current = match sb.sb_reg with Some c -> c == ctx | None -> false in
  if not current then begin
    sb.sb_reg <- Some ctx;
    Sim.register_drain ctx (fun ~terminal ->
        if terminal || t.model.Sim.Memmodel.fence_drains then
          drain_all t ctx ~terminal sb)
  end

let drain t ctx =
  if buffering t ctx then drain_all t ctx ~terminal:false (sbuf_of t ctx)

let pending_stores t ctx = (sbuf_of t ctx).sb_len

(* The slot of the newest own-buffer entry for [addr] (the ring is
   searched newest-first), or -1. Only consulted when the model forwards
   loads, so the common-model read path never touches it. *)
let sb_find sb addr =
  let cap = Array.length sb.sb_addr in
  let found = ref (-1) and k = ref (sb.sb_len - 1) in
  while !found < 0 && !k >= 0 do
    let i = (sb.sb_head + !k) mod cap in
    if sb.sb_addr.(i) = addr then found := i else decr k
  done;
  !found

let forwarding t ctx =
  t.model.Sim.Memmodel.forward_loads && buffering t ctx
  && (sbuf_of t ctx).sb_len > 0

let read t ctx addr =
  let fwd = if forwarding t ctx then sb_find (sbuf_of t ctx) addr else -1 in
  if fwd >= 0 then begin
    (* Store-to-load forwarding: served from the own buffer, no coherence
       traffic, no miss possible. *)
    let v = (sbuf_of t ctx).sb_val.(fwd) in
    check_live t addr;
    Obs.Metrics.incr_t t.c_reads (Sim.tid ctx);
    Sim.tick ctx t.cost.read_hit;
    check_live t addr;
    if t.obs_on then emit t ctx (Read { addr; value = v });
    v
  end
  else begin
    check_live t addr;
    Sim.tick ctx (read_cost t ctx addr);
    check_live t addr;
    let v = t.values.(addr) in
    if t.obs_on then emit t ctx (Read { addr; value = v });
    v
  end

(* The unbuffered store path — the only one under [sc], and the
   visibility point shared by drains and fenced writes. *)
let write_through t ctx addr v =
  check_live t addr;
  Sim.tick ctx (write_cost t ctx addr);
  check_live t addr;
  t.values.(addr) <- v;
  bump_version t ctx addr;
  if t.obs_on then begin
    note_write t ctx addr Op_store;
    emit t ctx (Write { addr; value = v })
  end

let write t ctx addr v =
  if buffering t ctx then begin
    check_live t addr;
    let sb = sbuf_of t ctx in
    sb_ensure t sb;
    ensure_drain_hook t ctx sb;
    if sb.sb_len >= t.model.Sim.Memmodel.sb_depth then
      drain_one t ctx ~terminal:false sb;
    sb_push sb addr v;
    (* The issue itself is a cheap local step; the write's real coherence
       cost is paid when it drains. *)
    Sim.tick ctx t.cost.write_hit
  end
  else write_through t ctx addr v

let fenced_write t ctx addr v =
  drain t ctx;
  write_through t ctx addr v

let cas t ctx addr ~expected ~desired =
  drain t ctx;
  check_live t addr;
  Obs.Metrics.incr1 t.c_atomics;
  Sim.tick ctx (write_cost t ctx addr + t.cost.cas_extra);
  check_live t addr;
  let success = t.values.(addr) = expected in
  if success then begin
    t.values.(addr) <- desired;
    bump_version t ctx addr;
    if t.obs_on then note_write t ctx addr Op_atomic
  end
  else if (match t.fors with Some _ -> true | None -> false) then
    (* A failed CAS is a coherence-plane conflict in its own right: some
       other thread's committed store got between this thread's read of
       [expected] and its attempt to install [desired]. Non-transactional
       lock-free structures (e.g. the ROP queue) surface their contention
       here, so forensics would otherwise be blind to them. *)
    record_witness t ctx
      (conflict_witness t ctx ~addr ~victim_wrote:true ~in_read_set:false
         ~in_write_set:true ~site:"mem.cas" ());
  if t.obs_on then emit t ctx (Cas { addr; expected; desired; success });
  success

let fetch_add t ctx addr d =
  drain t ctx;
  check_live t addr;
  Obs.Metrics.incr1 t.c_atomics;
  Sim.tick ctx (write_cost t ctx addr + t.cost.cas_extra);
  check_live t addr;
  let old = t.values.(addr) in
  t.values.(addr) <- old + d;
  bump_version t ctx addr;
  if t.obs_on then note_write t ctx addr Op_atomic;
  if t.obs_on then emit t ctx (Fetch_add { addr; delta = d; old });
  old

let version t addr = t.versions.(addr)

let peek t addr =
  if addr < 0 || addr >= t.extent then invalid_arg "Simmem.peek: out of heap";
  t.values.(addr)

let is_allocated t addr =
  addr > 0 && addr < t.extent && word_state t addr = st_live

let block_size t addr =
  if addr <= 0 || addr >= Array.length t.block_words then None
  else
    let n = t.block_words.(addr) in
    if n = 0 then None else Some n

(* Free lists are LIFO per exact size, threaded through the heap's own
   base addresses ([fl_next]) with one head per size class ([fl_head],
   grown on demand) — the same pop-newest placement policy as the
   Hashtbl-of-lists this replaces, so allocation addresses (and therefore
   every downstream schedule) are unchanged. *)
let fl_slot t size =
  if size >= Array.length t.fl_head then begin
    let len = ref (Array.length t.fl_head) in
    while size >= !len do
      len := !len * 2
    done;
    let fl_head = Array.make !len 0 in
    Array.blit t.fl_head 0 fl_head 0 (Array.length t.fl_head);
    t.fl_head <- fl_head
  end;
  size

let take_free t size =
  if size >= Array.length t.fl_head then 0
  else begin
    let base = t.fl_head.(size) in
    if base <> 0 then begin
      t.fl_head.(size) <- t.fl_next.(base);
      t.fl_next.(base) <- 0
    end;
    base
  end

(* ---- Per-thread arenas (the [Arena _] policies) ----------------------

   Arena bookkeeping is plain OCaml mutation: it charges no virtual
   cycles beyond what the shared path already charges, so the schedule
   interleavings are decided solely by the (identical) malloc/free tick
   sequence — the placement policy only moves the returned addresses. *)

let arena_fl_push t a gran base =
  if gran >= Array.length a.a_fl_head then begin
    let len = ref (max 64 (Array.length a.a_fl_head)) in
    while gran >= !len do
      len := !len * 2
    done;
    let fl = Array.make !len 0 in
    Array.blit a.a_fl_head 0 fl 0 (Array.length a.a_fl_head);
    a.a_fl_head <- fl
  end;
  t.fl_next.(base) <- a.a_fl_head.(gran);
  a.a_fl_head.(gran) <- base

let arena_take_free t a gran =
  if gran >= Array.length a.a_fl_head then 0
  else begin
    let base = a.a_fl_head.(gran) in
    if base <> 0 then begin
      a.a_fl_head.(gran) <- t.fl_next.(base);
      t.fl_next.(base) <- 0
    end;
    base
  end

(* Move every remotely freed block onto the owner's free lists. Pure
   bookkeeping — zero cycles, no yield — so it is safe at every drain
   point including terminal flushes, and its effects are a deterministic
   function of the enqueue order (itself fixed by the virtual clock). *)
let arena_drain_remote t a =
  while a.a_rq_len > 0 do
    let cap = Array.length a.a_rq_base in
    let base = a.a_rq_base.(a.a_rq_head) and gran = a.a_rq_gran.(a.a_rq_head) in
    a.a_rq_head <- (a.a_rq_head + 1) mod cap;
    a.a_rq_len <- a.a_rq_len - 1;
    arena_fl_push t a gran base
  done

let arena_rq_push a base gran =
  let cap = Array.length a.a_rq_base in
  if a.a_rq_len >= cap then begin
    let ncap = max 64 (cap * 2) in
    let nb = Array.make ncap 0 and ng = Array.make ncap 0 in
    for k = 0 to a.a_rq_len - 1 do
      nb.(k) <- a.a_rq_base.((a.a_rq_head + k) mod cap);
      ng.(k) <- a.a_rq_gran.((a.a_rq_head + k) mod cap)
    done;
    a.a_rq_base <- nb;
    a.a_rq_gran <- ng;
    a.a_rq_head <- 0
  end;
  let cap = Array.length a.a_rq_base in
  let i = (a.a_rq_head + a.a_rq_len) mod cap in
  a.a_rq_base.(i) <- base;
  a.a_rq_gran.(i) <- gran;
  a.a_rq_len <- a.a_rq_len + 1;
  a.a_remote_frees <- a.a_remote_frees + 1

(* The owner's arena, created on first use. The fence-drain hook is
   (re-)installed per context, exactly like the store-buffer hook: remote
   frees parked on the ring become reusable at the owner's next fence or
   allocation. *)
let arena_of t ctx =
  let tid = Sim.tid ctx in
  let a =
    match t.arenas.(tid) with
    | Some a -> a
    | None ->
      let a =
        {
          a_tid = tid;
          a_cursor = 0;
          a_limit = 0;
          a_carved = 0;
          a_fl_head = [||];
          a_rq_base = [||];
          a_rq_gran = [||];
          a_rq_head = 0;
          a_rq_len = 0;
          a_remote_frees = 0;
          a_reg = None;
        }
      in
      t.arenas.(tid) <- Some a;
      a
  in
  let current = match a.a_reg with Some c -> c == ctx | None -> false in
  if not current then begin
    a.a_reg <- Some ctx;
    Sim.register_drain ctx (fun ~terminal:_ -> arena_drain_remote t a)
  end;
  a

(* Carve a fresh chunk off the global bump pointer. Chunks are always
   line-aligned; [Cache_index_aware] additionally colors each thread's
   chunk starts so different arenas land on different line-index residues
   (the stand-in for set-index-aware placement on this flat memory). *)
let arena_carve t a gran =
  let align_line x = (x + line_words - 1) land lnot (line_words - 1) in
  let start =
    let s = align_line t.extent in
    match t.alloc with
    | Arena Cache_index_aware ->
      let colors = 8 in
      let color = a.a_tid mod colors in
      let lane = (s lsr line_shift) mod colors in
      s + (((color - lane + colors) mod colors) * line_words)
    | _ -> s
  in
  let chunk = max chunk_min (align_line gran) in
  if start + chunk > Array.length t.values then grow t (start + chunk);
  a.a_carved <- a.a_carved + (start + chunk - t.extent);
  t.extent <- start + chunk;
  a.a_cursor <- start;
  a.a_limit <- start + chunk

let arena_alloc t ctx n =
  let placement = match t.alloc with Arena p -> p | Shared_lifo -> assert false in
  let a = arena_of t ctx in
  arena_drain_remote t a;
  let gran = granule_of placement n in
  let base = arena_take_free t a gran in
  let base =
    if base <> 0 then base
    else begin
      if a.a_cursor + gran > a.a_limit then arena_carve t a gran;
      let b = a.a_cursor in
      a.a_cursor <- b + gran;
      b
    end
  in
  t.block_owner.(base) <- a.a_tid + 1;
  base

let malloc t ctx n =
  if n < 1 then invalid_arg "Simmem.malloc: size must be >= 1";
  (* Allocator entry points are full fences: a pending store must never
     land on a block the allocator is about to recycle. *)
  drain t ctx;
  Sim.tick ctx (t.cost.malloc_base + (n * t.cost.malloc_per_word));
  let base =
    if t.alloc <> Shared_lifo then arena_alloc t ctx n
    else begin
      let base = take_free t n in
      if base <> 0 then base
      else begin
        let base = t.extent in
        if base + n > Array.length t.values then grow t (base + n);
        t.extent <- base + n;
        base
      end
    end
  in
  for a = base to base + n - 1 do
    Bytes.unsafe_set t.state a (Char.chr st_live);
    t.values.(a) <- 0;
    bump_version t ctx a
  done;
  t.block_words.(base) <- n;
  if t.obs_on then
    for a = base to base + n - 1 do
      note_write t ctx a Op_malloc
    done;
  (match t.fors with
   | None -> ()
   | Some f ->
     Obs.Forensics.note_alloc f ~base ~words:n ~tid:(Sim.tid ctx)
       ~clock:(Sim.clock ctx));
  Obs.Metrics.add t.g_live_words n;
  Obs.Metrics.add t.g_live_blocks 1;
  Obs.Metrics.incr1 t.c_allocs;
  if t.obs_on then emit t ctx (Malloc { base; words = n });
  base

let free t ctx base =
  drain t ctx;
  Sim.tick ctx t.cost.free_cost;
  let n = if base <= 0 || base >= Array.length t.block_words then 0 else t.block_words.(base) in
  if n = 0 then begin
    if base > 0 && base < t.extent && word_state t base = st_freed then
      raise (Fault (Double_free base))
    else raise (Fault (Invalid_free base))
  end
  else begin
    t.block_words.(base) <- 0;
    for a = base to base + n - 1 do
      Bytes.unsafe_set t.state a (Char.chr st_freed);
      bump_version t ctx a
    done;
    if t.obs_on then
      for a = base to base + n - 1 do
        note_write t ctx a Op_free
      done;
    (if t.alloc <> Shared_lifo then begin
       (* The free's semantic effects (state flip, version bumps, fault
          checks) just happened; only *reuse* is routed. An owner free goes
          straight to its arena's lists, a remote free parks on the
          owner's ring until the owner's next allocation or fence. *)
       let placement =
         match t.alloc with Arena p -> p | Shared_lifo -> assert false
       in
       let gran = granule_of placement n in
       let owner = t.block_owner.(base) - 1 in
       let tid = Sim.tid ctx in
       if owner = tid || owner < 0 then arena_fl_push t (arena_of t ctx) gran base
       else
         match t.arenas.(owner) with
         | Some a -> arena_rq_push a base gran
         | None -> arena_fl_push t (arena_of t ctx) gran base
     end
     else begin
       let slot = fl_slot t n in
       t.fl_next.(base) <- t.fl_head.(slot);
       t.fl_head.(slot) <- base
     end);
    Obs.Metrics.add t.g_live_words (-n);
    Obs.Metrics.add t.g_live_blocks (-1);
    Obs.Metrics.incr1 t.c_frees;
    if t.obs_on then emit t ctx (Free { base; words = n })
  end

module Tx_plane = struct
  (* The unboxed transactional read: returns the word's version (>= 0)
     with the value parked in [t.txr_val], or -1 if the word is dead
     before or after the charged read. The transaction layers read this
     way so the hot path builds no [Some (v, ver)] pair. *)
  let read_ver t ctx addr =
    if addr <= 0 || addr >= t.extent || word_state t addr <> st_live then -1
    else begin
      Sim.tick ctx (read_cost t ctx addr);
      if word_state t addr <> st_live then -1
      else begin
        let v = t.values.(addr) in
        t.txr_val <- v;
        if t.obs_on then emit t ctx (Read { addr; value = v });
        t.versions.(addr)
      end
    end

  let read_value t = t.txr_val

  let read t ctx addr =
    let ver = read_ver t ctx addr in
    if ver < 0 then None else Some (t.txr_val, ver)

  let validate t addr v = t.versions.(addr) = v

  let commit_write t ctx addr v =
    if addr <= 0 || addr >= t.extent || word_state t addr <> st_live then false
    else begin
      Sim.charge ctx (write_cost t ctx addr);
      t.values.(addr) <- v;
      bump_version t ctx addr;
      if t.obs_on then begin
        note_write t ctx addr Op_commit;
        emit t ctx (Write { addr; value = v })
      end;
      true
    end
end
