(** Runtime checker for the Dynamic Collect specification (paper §2.3).

    Wrap every operation on a collect instance through this module; each
    bound value is generated here and globally unique, and every
    operation's interval is logged in {e logical time} — a counter bumped
    at each wrapper entry and exit, recording execution order. In the
    cooperative simulator execution order {e is} the specification's
    real-time order, whatever scheduling strategy drives the run; virtual
    clocks, by contrast, stop reflecting execution order under the
    exploration strategies ([Sim.Random_walk], [Sim.Pct]), which is why
    they are not used here. After the run, {!check} verifies every logged
    collect against both conditions of the specification:

    - {e validity}: each returned value's bind either is the handle's last
      bind not superseded or deregistered before the collect began, or
      overlaps the collect;
    - {e completeness}: every handle whose registration completed before
      the collect began, and whose deregistration (if any) began after it
      ended, contributes at least one value.

    Duplicates are allowed, as the specification permits. The checker is
    single-process (the simulator is cooperative), so no synchronisation
    is needed around the log.

    {b Crash-awareness}: if an operation raises (e.g. an injected
    [Sim.Stop_thread] kill), the wrapper logs it as never-completed — the
    interval is extended to [max_int], so any bind the crashed thread may
    or may not have installed is {e allowed} by every later collect but
    {e required} by none, and a crashed deregistration permanently excuses
    the handle from completeness. A crashed collect's partial result set is
    discarded. The exception is re-raised, so the thread still dies; the
    surviving threads' operations are checked at full strength.

    This is the oracle behind the test suite's chaos tests; it is exported
    as a library so downstream users can validate their own usage or new
    algorithm implementations. *)

type t

val create : unit -> t

val register : t -> Collect.Intf.instance -> Sim.tctx -> Collect.Intf.handle
(** Register with a fresh unique value; logs the interval. *)

val update : t -> Collect.Intf.instance -> Sim.tctx -> Collect.Intf.handle -> unit
(** Update with a fresh unique value; logs the interval. *)

val deregister : t -> Collect.Intf.instance -> Sim.tctx -> Collect.Intf.handle -> unit

val collect : t -> Collect.Intf.instance -> Sim.tctx -> unit
(** Perform and log a collect (with its returned values). *)

type verdict = { checked_collects : int; checked_values : int }

exception Violation of string
(** Raised by {!check} with a human-readable description of the first
    specification violation found. *)

val check : t -> verdict
(** Verify every logged collect. @raise Violation on the first failure. *)
