(* Checker for the Dynamic Collect specification (paper §2.3).

   Every bound value is globally unique, so a value returned by a collect
   identifies exactly one bind event (Register or Update) on one handle
   registration. Operations are logged with logical-time intervals —
   stamps drawn from a counter bumped at every wrapper event, so an
   interval endpoint records *execution order*, which in the cooperative
   simulator is the real-time order of the §2.3 specification. (Virtual
   clocks would serve equally well under the min-clock scheduler, but the
   exploration strategies of [Sim.strategy] deliberately run threads out
   of virtual-time order, and there only execution order is meaningful.)
   Afterwards every collect is checked against the two conditions of the
   specification:

   - validity: each returned value's bind either is the last bind of its
     handle not superseded/deregistered before the collect began, or
     overlaps the collect;
   - completeness: every handle whose registration completed before the
     collect began and whose deregistration (if any) began after the
     collect ended must contribute at least one value.

   Handles may be returned multiple times (the spec allows duplicates). *)

type bind = { b_start : int; b_end : int; value : int }

type instance_log = {
  id : int;
  mutable binds : bind list; (* newest first *)
  mutable dereg : (int * int) option;
}

type collect_log = { c_start : int; c_end : int; returned : int list }

type t = {
  mutable next_value : int;
  values : (int, instance_log) Hashtbl.t; (* value -> its registration *)
  current : (int, instance_log) Hashtbl.t; (* live handle address -> registration *)
  mutable instances : instance_log list;
  mutable collects : collect_log list;
  mutable next_id : int;
  mutable now : int; (* logical clock: one tick per wrapper event *)
}

let create () =
  {
    next_value = 0;
    values = Hashtbl.create 1024;
    current = Hashtbl.create 64;
    instances = [];
    collects = [];
    next_id = 0;
    now = 0;
  }

let fresh_value t =
  t.next_value <- t.next_value + 1;
  t.next_value

let stamp t =
  t.now <- t.now + 1;
  t.now

(* Kill-awareness: an operation interrupted by a crash (Sim.Stop_thread or
   any other exception escaping the instance call) is logged as if it never
   completed — its interval is [s, max_int], so a bind the crashed thread
   may or may not have installed stays "allowed forever but never required",
   exactly the §2.3 reading of an operation that overlaps everything after
   it. The exception is re-raised so the thread still dies. *)

let register t (inst : Collect.Intf.instance) ctx =
  let v = fresh_value t in
  let s = stamp t in
  match inst.register ctx v with
  | h ->
    let e = stamp t in
    let il = { id = t.next_id; binds = [ { b_start = s; b_end = e; value = v } ]; dereg = None } in
    t.next_id <- t.next_id + 1;
    t.instances <- il :: t.instances;
    Hashtbl.replace t.values v il;
    Hashtbl.replace t.current h il;
    h
  | exception ex ->
    (* No handle was returned, so the registration can never become
       "required" — but its value may already be visible to collects. *)
    let il = { id = t.next_id; binds = [ { b_start = s; b_end = max_int; value = v } ]; dereg = None } in
    t.next_id <- t.next_id + 1;
    t.instances <- il :: t.instances;
    Hashtbl.replace t.values v il;
    raise ex

let update t (inst : Collect.Intf.instance) ctx h =
  let il = Hashtbl.find t.current h in
  let v = fresh_value t in
  let s = stamp t in
  match inst.update ctx h v with
  | () ->
    let e = stamp t in
    il.binds <- { b_start = s; b_end = e; value = v } :: il.binds;
    Hashtbl.replace t.values v il
  | exception ex ->
    il.binds <- { b_start = s; b_end = max_int; value = v } :: il.binds;
    Hashtbl.replace t.values v il;
    raise ex

let deregister t (inst : Collect.Intf.instance) ctx h =
  let il = Hashtbl.find t.current h in
  Hashtbl.remove t.current h;
  let s = stamp t in
  match inst.deregister ctx h with
  | () ->
    let e = stamp t in
    il.dereg <- Some (s, e)
  | exception ex ->
    il.dereg <- Some (s, max_int);
    raise ex

let collect t (inst : Collect.Intf.instance) ctx =
  let buf = Sim.Ibuf.create ~capacity:64 () in
  let s = stamp t in
  match inst.collect ctx buf with
  | () ->
    let e = stamp t in
    t.collects <- { c_start = s; c_end = e; returned = Sim.Ibuf.to_list buf } :: t.collects
  | exception ex ->
    (* A collect that never returned made no claim: discard the partial
       result set rather than checking half an answer. *)
    raise ex

(* For each value: the completion time of the *next* event (bind or
   deregister) on the same handle, or max_int if none. *)
let next_event_end il =
  let tbl = Hashtbl.create 8 in
  let dereg_end = match il.dereg with Some (_, e) -> e | None -> max_int in
  let rec go newer = function
    | [] -> ()
    | b :: older ->
      Hashtbl.replace tbl b.value newer;
      go b.b_end older
  in
  (* binds are newest-first: the event after the newest bind is the dereg *)
  go dereg_end il.binds;
  tbl

type verdict = { checked_collects : int; checked_values : int }

exception Violation of string

let check t =
  let next_end = Hashtbl.create 1024 in
  List.iter
    (fun il ->
      let tbl = next_event_end il in
      Hashtbl.iter (fun v e -> Hashtbl.replace next_end v e) tbl)
    t.instances;
  let nvalues = ref 0 in
  let collects = List.rev t.collects in
  List.iter
    (fun c ->
      (* validity *)
      List.iter
        (fun v ->
          incr nvalues;
          match Hashtbl.find_opt t.values v with
          | None -> raise (Violation (Printf.sprintf "collect returned unknown value %d" v))
          | Some il ->
            let b = List.find (fun b -> b.value = v) il.binds in
            if b.b_start > c.c_end then
              raise
                (Violation
                   (Printf.sprintf
                      "value %d bound at [%d,%d], after collect [%d,%d] ended" v b.b_start
                      b.b_end c.c_start c.c_end));
            let ne = Hashtbl.find next_end v in
            if ne < c.c_start then
              raise
                (Violation
                   (Printf.sprintf
                      "value %d superseded at %d, before collect [%d,%d] began" v ne
                      c.c_start c.c_end)))
        c.returned;
      (* completeness *)
      let present = Hashtbl.create 64 in
      List.iter
        (fun v ->
          match Hashtbl.find_opt t.values v with
          | Some il -> Hashtbl.replace present il.id ()
          | None -> ())
        c.returned;
      List.iter
        (fun il ->
          let reg = List.nth il.binds (List.length il.binds - 1) in
          let required =
            reg.b_end < c.c_start
            && (match il.dereg with None -> true | Some (ds, _) -> ds > c.c_end)
          in
          if required && not (Hashtbl.mem present il.id) then
            raise
              (Violation
                 (Printf.sprintf
                    "handle %d (registered at [%d,%d]) missing from collect [%d,%d]" il.id
                    reg.b_start reg.b_end c.c_start c.c_end)))
        t.instances)
    collects;
  { checked_collects = List.length collects; checked_values = !nvalues }
