(* SplitMix64 on a pair of 32-bit halves held in immediate ints.

   The obvious [mutable state : int64] representation boxes on every store
   and every intermediate product (no flambda), which put ~9 minor-heap
   allocations on *each* draw — and the simulator draws several times per
   simulated operation (dispatch jitter, op mixes, scheduler tie-breaks,
   transaction-begin jitter). Emulating the 64-bit arithmetic on two
   unboxed halves makes every draw allocation-free while producing
   bit-identical streams (test/test_rng.ml pins the equivalence against a
   boxed Int64 reference implementation), so recorded schedules and
   committed benchmark artifacts are preserved byte-for-byte.

   The output scratch cells live in [t] (one generator is only ever used
   by one domain at a time; the sweep runner gives every worker domain its
   own), so a draw performs no stores outside its own record. *)

type t = {
  mutable hi : int;  (* state, high 32 bits *)
  mutable lo : int;  (* state, low 32 bits *)
  mutable zh : int;  (* scratch: last output, high 32 bits *)
  mutable zl : int;  (* scratch: last output, low 32 bits *)
}

let mask32 = 0xFFFFFFFF
let mask16 = 0xFFFF

(* low 32 bits of the product of two values < 2^32: split one operand into
   16-bit halves so no intermediate exceeds 2^48. *)
let low32_mul x y =
  ((x land mask16) * y + ((((x lsr 16) * y) land mask16) lsl 16)) land mask32

(* golden gamma 0x9E3779B97F4A7C15 *)
let g_hi = 0x9E3779B9
let g_lo = 0x7F4A7C15

(* mix constants 0xBF58476D1CE4E5B9 and 0x94D049BB133111EB *)
let c1_hi = 0xBF58476D
let c1_lo = 0x1CE4E5B9
let c2_hi = 0x94D049BB
let c2_lo = 0x133111EB

let create seed =
  { hi = (seed asr 32) land mask32; lo = seed land mask32; zh = 0; zl = 0 }

(* z ^= z >>> k, on the scratch cells (k < 32). *)
let xorshift_r t k =
  let hi = t.zh and lo = t.zl in
  t.zh <- hi lxor (hi lsr k);
  t.zl <- lo lxor (((hi lsl (32 - k)) lor (lo lsr k)) land mask32)

(* z *= (c_hi, c_lo) mod 2^64, on the scratch cells. The 32x32 low
   product is computed in 16-bit limbs so no intermediate leaves the
   immediate-int range. *)
let mul_const t c_hi c_lo =
  let hi = t.zh and lo = t.zl in
  let x0 = lo land mask16 and x1 = lo lsr 16 in
  let y0 = c_lo land mask16 and y1 = c_lo lsr 16 in
  let t0 = x0 * y0 in
  let t1 = (x0 * y1) + (x1 * y0) in
  let lo_full = t0 + ((t1 land mask16) lsl 16) in
  let p_hi = ((x1 * y1) + (t1 lsr 16) + (lo_full lsr 32)) land mask32 in
  t.zh <- (p_hi + low32_mul lo c_hi + low32_mul hi c_lo) land mask32;
  t.zl <- lo_full land mask32

(* One SplitMix64 step; the output lands in the scratch cells. *)
let step t =
  (* state += golden_gamma *)
  let lo_full = t.lo + g_lo in
  let lo = lo_full land mask32 in
  let hi = (t.hi + g_hi + (lo_full lsr 32)) land mask32 in
  t.hi <- hi;
  t.lo <- lo;
  t.zh <- hi;
  t.zl <- lo;
  xorshift_r t 30;
  mul_const t c1_hi c1_lo;
  xorshift_r t 27;
  mul_const t c2_hi c2_lo;
  xorshift_r t 31

let bits64 t =
  step t;
  Int64.logor (Int64.shift_left (Int64.of_int t.zh) 32) (Int64.of_int t.zl)

(* The low 63 bits of the next output as a native int — exactly
   [Int64.to_int (bits64 t)], without the box. *)
let bits t =
  step t;
  (t.zh lsl 32) lor t.zl

let split t =
  step t;
  { hi = t.zh; lo = t.zl; zh = 0; zl = 0 }

(* [int] reduces the 63-bit value (z >>> 1) modulo [bound], matching
   [Int64.rem] on the non-negative 63-bit operand. The int pattern
   [(hi lsl 31) lor (lo lsr 1)] carries those 63 bits but reads as
   negative when bit 62 is set, so the unsigned remainder is recovered
   from the halves: (2q + b) mod m = (2 (q mod m) + b) mod m. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  step t;
  let r = (t.zh lsl 31) lor (t.zl lsr 1) in
  if r >= 0 then r mod bound
  else
    let q = (r lsr 1) mod bound in
    (q + q + (r land 1)) mod bound

let bool t =
  step t;
  t.zl land 1 = 1

let float t bound =
  step t;
  (* z >>> 11 is 53 bits: exact in both int and float *)
  let r = float_of_int ((t.zh lsl 21) lor (t.zl lsr 11)) in
  r /. 9007199254740992.0 *. bound
