(** Deterministic SplitMix64 pseudo-random number generator.

    Every source of nondeterminism in the simulator (scheduler tie-breaks,
    workload op mixes, backoff jitter) draws from one of these generators,
    all seeded from a single experiment seed, so runs are replayable. *)

type t

val create : int -> t
(** [create seed] makes a generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives an independent generator, advancing [t]. *)

val int : t -> int -> int
(** [int t bound] returns a uniform value in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val bits : t -> int
(** The low 63 bits of the next output as a native int — exactly
    [Int64.to_int (bits64 t)] on the same state, without the box. *)

val bool : t -> bool

val float : t -> float -> float
(** [float t bound] returns a uniform float in [\[0, bound)]. *)
