module Rng = Rng
module Ibuf = Ibuf
module Fault = Fault

exception Stop_thread
exception Watchdog of string

(* The memory-consistency variant matrix (see docs/MEMORY_ORDERING.md).
   [Sim] owns the type so that layers above ([Simmem], the explorer, the
   CLI) agree on one vocabulary, but the semantics live entirely in
   [Simmem]'s store buffers; the scheduler itself is model-agnostic. *)
module Memmodel = struct
  type t = {
    buffered : bool;  (* per-thread FIFO store buffer active *)
    sb_depth : int;  (* buffer capacity; a full buffer drains its oldest entry *)
    forward_loads : bool;  (* loads see the newest own-buffer entry *)
    fence_drains : bool;  (* fences drain the buffer (off = bug-finding control) *)
  }

  let sc = { buffered = false; sb_depth = 0; forward_loads = false; fence_drains = true }
  let sb = { buffered = true; sb_depth = 8; forward_loads = true; fence_drains = true }
  let sb_bypass = { sb with forward_loads = false }
  let sb_fence_nop = { sb with fence_drains = false }

  let all =
    [ ("sc", sc); ("sb", sb); ("sb-bypass", sb_bypass); ("sb-fence-nop", sb_fence_nop) ]

  (* Field-wise equality: the polymorphic [=] this replaces walks the
     record generically on every [to_string]. *)
  let equal a b =
    a.buffered = b.buffered && a.sb_depth = b.sb_depth
    && a.forward_loads = b.forward_loads
    && a.fence_drains = b.fence_drains

  let to_string m =
    match List.find_opt (fun (_, v) -> equal v m) all with
    | Some (name, _) -> name
    | None ->
      Printf.sprintf "custom[depth=%d,forward=%b,fence=%b]" m.sb_depth m.forward_loads
        m.fence_drains

  let of_string = function
    | "sc" -> Some sc
    | "sb" -> Some sb
    | "sb-bypass" -> Some sb_bypass
    | "sb-fence-nop" -> Some sb_fence_nop
    | _ -> None
end

(* Simulated-thread ceiling. Sharer sets in Simmem are multi-word bitmasks
   sized to each heap's configured thread capacity (61 threads in one word
   for paper-scale runs, more words beyond that — see lib/simmem), so the
   scheduler itself no longer caps the thread count at a word's bits.
   Exploring-mode features ([record], non-min-clock strategies) still
   encode runnable sets as single-word masks and are guarded to 61. *)
let max_threads = 256
let boot_tid = max_threads

(* Threads a single-word bitmask can describe: the explore/recorder layer
   and default sharer sets use [1 lsl tid] directly. *)
let mask_threads = 61

type _ Effect.t += Yield : unit Effect.t

type status =
  | Not_started of (tctx -> unit)
  | Ready of (unit, unit) Effect.Deep.continuation
  | Running
  | Finished

and tctx = {
  ctx_tid : int;
  mutable clock : int;
  ctx_rng : Rng.t;
  mutable sched : sched option;
  mutable faults : Fault.t option;
  mutable shield_depth : int;
  mutable last_progress : int;
  (* Observability taps. Pure OCaml-side bookkeeping: recording charges no
     virtual cycles, draws no simulator RNG and never forces exploring
     mode, so a traced run is cycle-identical to an untraced one. *)
  mutable ctx_tracer : Obs.Tracer.sink option;
  mutable ctx_on_fault : (Fault.event -> unit) option;
  (* Drain hooks installed by memory layers with store buffers ({!Simmem}):
     [fence] runs them with [~terminal:false]; thread termination (normal
     return or a kill) runs them with [~terminal:true], where they must not
     tick or yield — the fiber is past its last scheduling point. Under the
     [sc] model no hook is ever registered, so [fence] degenerates to a
     plain [tick] and stays cycle-identical to the pre-weak-memory code. *)
  mutable ctx_drains : (terminal:bool -> unit) list;
}

and sched = {
  ctxs : tctx array;
  statuses : status array;
  (* Runnable threads as a multi-word bitset (62 bits per word), kept in
     lock-step with [statuses]: the pick loop scans set bits instead of
     matching every status constructor, so a 256-thread schedule with 4
     runnable threads touches 5 words, not 256 variant tags. *)
  runnable : int array;
  srng : Rng.t;
  mutable live : int;
  (* Cached lower bound on the minimal clock among all other runnable
     threads; the running thread keeps going without yielding while its
     clock stays below this, which removes most continuation captures. *)
  mutable min_other : int;
  (* Scratch written by [pick_min]: the second-smallest runnable clock
     (with multiplicity), i.e. the minimum over the other runnable threads
     once the picked one is excluded. Saves the separate min_other scan. *)
  mutable pick_min2 : int;
  wd_budget : int;  (* max_int = no watchdog: one compare per switch, no option match *)
  wd_diag : (unit -> string) option;
  (* Clock of the most recent progress note; the watchdog fires when the
     schedule's frontier runs more than wd_budget past it. *)
  mutable wd_last : int;
  strat : strat_state;
  (* Exploring mode (any non-min-clock strategy, or a recorder installed)
     disables the min_other fast path so that every tick is a scheduling
     decision. That makes choice-point numbering identical between a
     recorded run and its deviation replay. *)
  explore : bool;
  recd : recorder option;
  mutable choice_idx : int;
}

and strat_state =
  | S_min
  | S_random of Rng.t
  | S_pct of pct_state
  | S_dev of (int, int) Hashtbl.t

and pct_state = {
  prio : int array; (* per-tid priority; higher runs first *)
  mutable changes : int list; (* ascending change points, in choice indices *)
  mutable demote_next : int; (* next (ever lower) priority handed out *)
}

and recorder = {
  mutable rev_picks : int list;
  mutable rev_devs : (int * int) list;
  (* Every counted decision as (choice index, runnable-tid bitmask, chosen
     tid): the raw material for exhaustive schedule enumeration — a DFS can
     branch on every runnable alternative at every index (lib/explore's
     litmus enumerator). *)
  mutable rev_choices : (int * int * int) list;
}

(* The ambient tracer sink: consulted by [run] and [boot] when no explicit
   [?tracer] is given. The benchmark driver points it at the current
   machine's process sink so workloads that call [Sim.run] directly are
   traced without threading a sink through every signature. *)
(* Domain-local: worker domains of the benchmark runner install their
   own sinks without racing the main domain (or each other). *)
let ambient_tracer : Obs.Tracer.sink option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let set_default_tracer s = Domain.DLS.set ambient_tracer s
let default_tracer () = Domain.DLS.get ambient_tracer

let boot ?(seed = 0) () =
  {
    ctx_tid = boot_tid;
    clock = 0;
    ctx_rng = Rng.create (seed lxor 0x6a09e667);
    sched = None;
    faults = None;
    shield_depth = 0;
    last_progress = 0;
    ctx_tracer = Domain.DLS.get ambient_tracer;
    ctx_on_fault = None;
    ctx_drains = [];
  }

let tid ctx = ctx.ctx_tid
let clock ctx = ctx.clock
let rng ctx = ctx.ctx_rng
let tracer ctx = ctx.ctx_tracer
let set_tracer ctx s = ctx.ctx_tracer <- s

let yield_count = ref 0
let yield () = incr yield_count; Effect.perform Yield

(* Fault injection happens at scheduling points only (tick/advance_to,
   never charge): a stall models preemption by jumping the thread's clock
   past the interval other threads get to run in, and a kill terminates
   the thread exactly as [stop] would — mid-operation, with whatever
   partial non-transactional effects it had already applied. *)
let observe_fault ctx kind =
  (match ctx.ctx_tracer with
   | None -> ()
   | Some sink ->
     let name, args =
       match kind with
       | Fault.Stalled d -> ("fault.stall", [ ("cycles", Obs.Json.Int d) ])
       | Fault.Killed -> ("fault.kill", [])
       | Fault.Killed_at p -> ("fault.kill", [ ("point", Obs.Json.Str p) ])
       | Fault.Spurious_abort -> ("fault.spurious", [])
     in
     Obs.Tracer.instant sink ~tid:ctx.ctx_tid ~name ~cat:"fault" ~args ctx.clock);
  match ctx.ctx_on_fault with
  | None -> ()
  | Some f -> f { Fault.ev_tid = ctx.ctx_tid; ev_clock = ctx.clock; ev_kind = kind }

let inject ctx =
  match ctx.faults with
  | None -> ()
  | Some f ->
    if ctx.shield_depth = 0 then begin
      match Fault.decide f ~tid:ctx.ctx_tid ~clock:ctx.clock with
      | Fault.Nothing -> ()
      | Fault.Stall d ->
        observe_fault ctx (Fault.Stalled d);
        ctx.clock <- ctx.clock + d
      | Fault.Kill ->
        observe_fault ctx Fault.Killed;
        raise Stop_thread
    end

(* A named code point: layers mark semantically dangerous windows (e.g.
   the STM commit while versioned locks are held) and a fault plan's
   [kills_at_point] entries fire exactly there. Charges nothing and never
   yields — it is a kill point, not a scheduling point — so registering
   one cannot perturb a fault-free schedule. *)
let fault_point ctx name =
  match ctx.faults with
  | None -> ()
  | Some f ->
    if
      ctx.shield_depth = 0
      && Fault.at_point f ~tid:ctx.ctx_tid ~clock:ctx.clock ~point:name
    then begin
      observe_fault ctx (Fault.Killed_at name);
      raise Stop_thread
    end

let tick ctx cost =
  ctx.clock <- ctx.clock + cost;
  inject ctx;
  match ctx.sched with
  | None -> ()
  | Some s -> if ctx.clock >= s.min_other then yield ()

let charge ctx cost = ctx.clock <- ctx.clock + cost

(* A full memory fence. Drain hooks run first (oldest registration first)
   so the fence cost is charged after the buffered stores have paid their
   own write costs; with no hooks registered (the [sc] model, or a thread
   that never buffered a store) this is exactly [tick ctx cost]. *)
let register_drain ctx f = ctx.ctx_drains <- ctx.ctx_drains @ [ f ]

let fence ?(cost = 60) ctx =
  List.iter (fun f -> f ~terminal:false) ctx.ctx_drains;
  tick ctx cost

(* Thread teardown: flush what the dying thread already issued. Runs in
   terminal mode — hooks charge rather than tick, because the fiber has no
   further scheduling points. A TSO machine does not lose the contents of
   a store buffer when its core halts; a crash-kill flushing its buffer is
   the hardware-faithful reading of [Fault.Kill] (the buffered stores were
   executed instructions, only their visibility was pending). *)
let drain_terminal ctx = List.iter (fun f -> f ~terminal:true) ctx.ctx_drains

let advance_to ctx t =
  if t > ctx.clock then ctx.clock <- t;
  inject ctx;
  match ctx.sched with
  | None -> ()
  | Some s -> if ctx.clock >= s.min_other then yield ()

let stop () = raise Stop_thread

let shield ctx f =
  ctx.shield_depth <- ctx.shield_depth + 1;
  Fun.protect ~finally:(fun () -> ctx.shield_depth <- ctx.shield_depth - 1) f

let spurious_fires ctx =
  match ctx.faults with
  | None -> false
  | Some f ->
    let fires =
      ctx.shield_depth = 0 && Fault.spurious f ~tid:ctx.ctx_tid ~clock:ctx.clock
    in
    if fires then observe_fault ctx Fault.Spurious_abort;
    fires

let note_progress ctx =
  ctx.last_progress <- ctx.clock;
  match ctx.sched with
  | None -> ()
  | Some s -> if ctx.clock > s.wd_last then s.wd_last <- ctx.clock

(* Scheduling strategies (lib/explore drives these): [Min_clock] is the
   virtual-time-faithful default; the others deliberately break the
   clock/execution-order correspondence to explore interleavings that the
   default schedule can never produce. *)
type strategy =
  | Min_clock
  | Random_walk of { rw_seed : int }
  | Pct of { pct_seed : int; pct_depth : int; pct_length : int }
  | Deviate of (int * int) list

let pp_strategy ppf = function
  | Min_clock -> Format.pp_print_string ppf "min-clock"
  | Random_walk { rw_seed } -> Format.fprintf ppf "random-walk(seed=%d)" rw_seed
  | Pct { pct_seed; pct_depth; pct_length } ->
    Format.fprintf ppf "pct(seed=%d,d=%d,len=%d)" pct_seed pct_depth pct_length
  | Deviate devs -> Format.fprintf ppf "deviate(%d points)" (List.length devs)

(* The PCT change points: [depth - 1] priority-change positions drawn
   uniformly from [0, length) in choice-index space, sorted. Exposed as a
   pure function so its placement properties are testable in isolation;
   [run] derives the exact same list for a [Pct] strategy. *)
let pct_change_points ~seed ~depth ~length =
  let rng = Rng.create (seed lxor 0x3c6ef372) in
  let n = max 0 (depth - 1) in
  let l = max 1 length in
  let rec gen acc k = if k = 0 then acc else gen (Rng.int rng l :: acc) (k - 1) in
  List.sort Int.compare (gen [] n)

let recorder () = { rev_picks = []; rev_devs = []; rev_choices = [] }
let picks r = List.rev r.rev_picks
let deviations r = List.rev r.rev_devs
let choices r = List.rev r.rev_choices
let decision_string r = String.concat ";" (List.rev_map string_of_int r.rev_picks)

(* Runnable-bitset plumbing: 62 bits per word, bit [i mod 62] of word
   [i / 62]. Kept in lock-step with [statuses] at the three transition
   sites (initial Not_started, Running in the pick loop, Ready in the
   Yield handler); Finished threads were Running, so their bit is already
   clear. *)
let r_bits = 62
let r_set s i = s.runnable.(i / r_bits) <- s.runnable.(i / r_bits) lor (1 lsl (i mod r_bits))

let r_clear s i =
  s.runnable.(i / r_bits) <- s.runnable.(i / r_bits) land lnot (1 lsl (i mod r_bits))

(* Index of the only set bit of [b] (a power of two), via a De Bruijn
   multiply: branch-free, so the pick scan's per-bit cost is flat instead
   of mispredict-bound when runnable sets are irregular. The table is
   indexed by the top 6 bits of [b * debruijn] — distinct for each of the
   62 possible single-bit inputs (bits 0..61 of an OCaml int). *)
let db_table =
  let t = Array.make 64 (-1) in
  let db = 0x03f79d71b4ca8b09 in
  for i = 0 to 61 do
    let slot = ((1 lsl i) * db) lsr 57 land 0x3f in
    (* The constant is a 64-bit De Bruijn sequence; OCaml ints are 63-bit,
       so injectivity over bits 0..61 is checked here rather than assumed. *)
    assert (t.(slot) = -1);
    t.(slot) <- i
  done;
  t

let ntz b = db_table.((b * 0x03f79d71b4ca8b09) lsr 57 land 0x3f)

(* Pick a runnable thread with the minimal clock; break ties with the
   scheduler RNG so no thread is systematically favoured. One scan over
   the set bits computes the pick *and* the two smallest runnable clocks
   (with multiplicity): excluding the picked thread from the minimum
   leaves exactly the second-smallest, which lands in [s.pick_min2] so
   the run loop's min_other update needs no second scan. Set bits are
   visited in ascending index order, so the tie-break RNG draws happen in
   exactly the order the status-matching scan made them. *)
let pick_min s =
  let best = ref (-1) and best_clock = ref max_int and ties = ref 0 in
  let m2 = ref max_int in
  let nw = Array.length s.runnable in
  for wi = 0 to nw - 1 do
    let w = ref s.runnable.(wi) in
    if !w <> 0 then begin
      let base = wi * r_bits in
      while !w <> 0 do
        let b = !w land (- !w) in
        w := !w lxor b;
        let i = base + ntz b in
        let c = s.ctxs.(i).clock in
        if c < !best_clock then begin
          m2 := !best_clock;
          best_clock := c;
          best := i;
          ties := 1
        end
        else begin
          if c < !m2 then m2 := c;
          if c = !best_clock then begin
            incr ties;
            if Rng.int s.srng !ties = 0 then best := i
          end
        end
      done
    end
  done;
  s.pick_min2 <- !m2;
  !best

let is_runnable s i =
  match s.statuses.(i) with Not_started _ | Ready _ -> true | Running | Finished -> false

let count_runnable s =
  let c = ref 0 in
  for i = 0 to Array.length s.ctxs - 1 do
    if is_runnable s i then incr c
  done;
  !c

let runnable_mask s =
  let m = ref 0 in
  for i = 0 to Array.length s.ctxs - 1 do
    if is_runnable s i then m := !m lor (1 lsl i)
  done;
  !m

let nth_runnable s k =
  let seen = ref 0 and found = ref (-1) in
  (try
     for i = 0 to Array.length s.ctxs - 1 do
       if is_runnable s i then begin
         if !seen = k then begin
           found := i;
           raise Exit
         end;
         incr seen
       end
     done
   with Exit -> ());
  !found

(* One scheduling decision. In exploring mode the min-clock pick (and its
   tie-break RNG draws) is computed at every decision even when another
   strategy overrides it: the replay of a recorded schedule as deviations
   from min-clock depends on both runs consuming the scheduler RNG
   identically. *)
let pick s =
  let d = pick_min s in
  if not s.explore then d
  else begin
    let nr = count_runnable s in
    let chosen =
      match s.strat with
      | S_min -> d
      | S_dev tbl ->
        (match Hashtbl.find_opt tbl s.choice_idx with
         | Some tid when tid >= 0 && tid < Array.length s.ctxs && is_runnable s tid -> tid
         | Some _ | None -> d)
      | S_random rng -> if nr <= 1 then d else nth_runnable s (Rng.int rng nr)
      | S_pct p ->
        let best = ref (-1) in
        for i = 0 to Array.length s.ctxs - 1 do
          if is_runnable s i && (!best < 0 || p.prio.(i) > p.prio.(!best)) then best := i
        done;
        !best
    in
    (match s.strat with
     | S_pct p ->
       (* A change point demotes the thread chosen at that point below
          every priority handed out so far, PCT-style. *)
       let rec demote () =
         match p.changes with
         | c :: rest when c <= s.choice_idx ->
           p.changes <- rest;
           p.demote_next <- p.demote_next - 1;
           p.prio.(chosen) <- p.demote_next;
           demote ()
         | _ -> ()
       in
       demote ()
     | S_min | S_random _ | S_dev _ -> ());
    (match s.recd with
     | Some r ->
       r.rev_picks <- chosen :: r.rev_picks;
       if nr >= 2 then begin
         r.rev_choices <- (s.choice_idx, runnable_mask s, chosen) :: r.rev_choices;
         if chosen <> d then r.rev_devs <- (s.choice_idx, chosen) :: r.rev_devs
       end
     | None -> ());
    if nr >= 2 then s.choice_idx <- s.choice_idx + 1;
    chosen
  end

(* Exit flush as a scheduler-visible step: a thread that buffered stores
   (has drain hooks) yields once between its last instruction and its
   terminal drain. Without this the flush is atomically glued to the last
   instruction, so no other thread could ever observe the window between
   a final load and the buffer drain — litmus SB's (0,0) would be
   unreachable even under [sb]. Runs inside the fiber (it performs
   [Yield]); under [sc] no hooks are ever registered and this is a no-op,
   preserving schedules byte-for-byte. Kill paths skip it on purpose:
   a crash flushes immediately (see [drain_terminal]). *)
let exit_flush ctx = if ctx.ctx_drains <> [] then yield ()

let handler s t : (unit, unit) Effect.Deep.handler =
  (* Hoisted out of [effc]: the yield handler and its [Some] wrapper are
     allocated once per thread, not once per [perform]. The scheduler
     switches on every contended memory access, so a per-perform closure
     here is a measurable share of the whole simulation's allocation. *)
  let on_yield (k : (unit, unit) Effect.Deep.continuation) =
    s.statuses.(t.ctx_tid) <- Ready k;
    r_set s t.ctx_tid
  in
  let some_on_yield = Some on_yield in
  {
    retc =
      (fun () ->
        drain_terminal t;
        s.statuses.(t.ctx_tid) <- Finished;
        s.live <- s.live - 1);
    exnc =
      (fun e ->
        match e with
        | Stop_thread ->
          drain_terminal t;
          s.statuses.(t.ctx_tid) <- Finished;
          s.live <- s.live - 1
        | e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) :
           ((a, unit) Effect.Deep.continuation -> unit) option ->
        match eff with Yield -> some_on_yield | _ -> None);
  }

(* Watchdog diagnostic: the full machine state a livelock post-mortem
   needs — per-thread clocks, run states, and progress recency. *)
let diagnose s frontier =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "no progress committed while the schedule advanced to cycle %d" frontier);
  Buffer.add_string b (Printf.sprintf " (last progress at %d)\n" s.wd_last);
  Array.iteri
    (fun i t ->
      let st =
        match s.statuses.(i) with
        | Not_started _ -> "not-started"
        | Ready _ -> "ready"
        | Running -> "running"
        | Finished -> "finished"
      in
      Buffer.add_string b
        (Printf.sprintf "  thread %d: %-11s clock=%-10d last_progress=%d\n" i st t.clock
           t.last_progress))
    s.ctxs;
  (match s.wd_diag with
   | None -> ()
   | Some f -> Buffer.add_string b (f ()));
  Buffer.contents b

let run ?(seed = 0) ?(strategy = Min_clock) ?record ?faults ?watchdog ?diag ?tracer
    ?on_fault bodies =
  let n = Array.length bodies in
  if n = 0 || n > max_threads then
    invalid_arg "Sim.run: need between 1 and 256 threads";
  let exploring =
    (match strategy with Min_clock -> false | _ -> true) || Option.is_some record
  in
  if exploring && n > mask_threads then
    invalid_arg "Sim.run: exploring strategies and recording support at most 61 threads";
  let sink = match tracer with Some _ -> tracer | None -> Domain.DLS.get ambient_tracer in
  let root = Rng.create seed in
  let ctxs =
    Array.init n (fun i ->
        {
          ctx_tid = i;
          clock = 0;
          ctx_rng = Rng.create (Rng.bits root lxor i);
          sched = None;
          faults;
          shield_depth = 0;
          last_progress = 0;
          ctx_tracer = sink;
          ctx_on_fault = on_fault;
          ctx_drains = [];
        })
  in
  let statuses = Array.init n (fun i -> Not_started bodies.(i)) in
  let strat =
    match strategy with
    | Min_clock -> S_min
    | Random_walk { rw_seed } -> S_random (Rng.create (rw_seed lxor 0x1f83d9ab))
    | Pct { pct_seed; pct_depth; pct_length } ->
      let prng = Rng.create (pct_seed lxor 0x5be0cd19) in
      let prio = Array.init n (fun i -> i + 1) in
      for i = n - 1 downto 1 do
        let j = Rng.int prng (i + 1) in
        let tmp = prio.(i) in
        prio.(i) <- prio.(j);
        prio.(j) <- tmp
      done;
      S_pct
        { prio;
          changes = pct_change_points ~seed:pct_seed ~depth:pct_depth ~length:pct_length;
          demote_next = 0 }
    | Deviate devs ->
      let tbl = Hashtbl.create (List.length devs * 2) in
      List.iter (fun (k, tid) -> if not (Hashtbl.mem tbl k) then Hashtbl.add tbl k tid) devs;
      S_dev tbl
  in
  let explore = exploring in
  let runnable = Array.make ((n + r_bits - 1) / r_bits) 0 in
  let s =
    { ctxs; statuses; runnable; srng = Rng.split root; live = n; min_other = 0;
      pick_min2 = max_int; wd_budget = Option.value watchdog ~default:max_int;
      wd_diag = diag; wd_last = 0;
      strat; explore; recd = record; choice_idx = 0 }
  in
  for i = 0 to n - 1 do
    r_set s i
  done;
  Array.iter (fun c -> c.sched <- Some s) ctxs;
  let rec loop () =
    if s.live > 0 then begin
      let i = pick s in
      assert (i >= 0);
      let t = ctxs.(i) in
      if t.clock - s.wd_last > s.wd_budget then begin
        Array.iter (fun c -> c.sched <- None) ctxs;
        raise (Watchdog (diagnose s t.clock))
      end;
      s.min_other <- (if s.explore then min_int else s.pick_min2);
      let slice_start = t.clock in
      (match statuses.(i) with
       | Not_started f ->
         statuses.(i) <- Running;
         r_clear s i;
         Effect.Deep.match_with
           (fun () ->
             f t;
             exit_flush t)
           () (handler s t)
       | Ready k ->
         statuses.(i) <- Running;
         r_clear s i;
         Effect.Deep.continue k ()
       | Running | Finished -> assert false);
      (match sink with
       | None -> ()
       | Some sk ->
         if t.clock > slice_start then
           Obs.Tracer.span sk ~tid:i ~name:"run" ~cat:"sched" slice_start t.clock);
      loop ()
    end
  in
  loop ();
  Array.iter (fun c -> c.sched <- None) ctxs

module Backoff = struct
  type bctx = tctx

  type t = { ctx : bctx; base : int; cap : int; mutable bound : int }

  let create ?(base = 50) ?(cap = 4096) ctx = { ctx; base; cap; bound = base }

  let once b =
    let d = (b.bound / 2) + Rng.int b.ctx.ctx_rng (max 1 (b.bound / 2)) in
    tick b.ctx d;
    b.bound <- min b.cap (b.bound * 2)

  let reset b = b.bound <- b.base

  (* The pure retry-backoff envelope shared by the transaction layers
     ({!Htm}, {!Stm}): exponential in the attempt number, clamped at [cap]
     (the shift itself saturates at 9 so the envelope is total for any
     [n]). Exposed as functions of their inputs so qcheck can state the
     monotone-until-cap property without driving a scheduler. *)
  let bound ~base ~cap n = min cap (base lsl min n 9)

  (* One randomized delay inside the envelope: uniform in
     [bound/2, bound). Deterministic in (rng state, base, cap, n). *)
  let delay ~base ~cap rng n =
    let hi = bound ~base ~cap n in
    (hi / 2) + Rng.int rng (max 1 (hi / 2))
end
