module Rng = Rng
module Ibuf = Ibuf
module Fault = Fault

exception Stop_thread
exception Watchdog of string

(* Sharer sets in Simmem are bitmasks in a 63-bit int; one bit is reserved
   for boot contexts, so at most 61 runnable threads. *)
let max_threads = 61
let boot_tid = max_threads

type _ Effect.t += Yield : unit Effect.t

type status =
  | Not_started of (tctx -> unit)
  | Ready of (unit, unit) Effect.Deep.continuation
  | Running
  | Finished

and tctx = {
  ctx_tid : int;
  mutable clock : int;
  ctx_rng : Rng.t;
  mutable sched : sched option;
  mutable faults : Fault.t option;
  mutable shield_depth : int;
  mutable last_progress : int;
}

and sched = {
  ctxs : tctx array;
  statuses : status array;
  srng : Rng.t;
  mutable live : int;
  (* Cached lower bound on the minimal clock among all other runnable
     threads; the running thread keeps going without yielding while its
     clock stays below this, which removes most continuation captures. *)
  mutable min_other : int;
  wd_budget : int option;
  wd_diag : (unit -> string) option;
  (* Clock of the most recent progress note; the watchdog fires when the
     schedule's frontier runs more than wd_budget past it. *)
  mutable wd_last : int;
}

let boot ?(seed = 0) () =
  {
    ctx_tid = boot_tid;
    clock = 0;
    ctx_rng = Rng.create (seed lxor 0x6a09e667);
    sched = None;
    faults = None;
    shield_depth = 0;
    last_progress = 0;
  }

let tid ctx = ctx.ctx_tid
let clock ctx = ctx.clock
let rng ctx = ctx.ctx_rng

let yield () = Effect.perform Yield

(* Fault injection happens at scheduling points only (tick/advance_to,
   never charge): a stall models preemption by jumping the thread's clock
   past the interval other threads get to run in, and a kill terminates
   the thread exactly as [stop] would — mid-operation, with whatever
   partial non-transactional effects it had already applied. *)
let inject ctx =
  match ctx.faults with
  | None -> ()
  | Some f ->
    if ctx.shield_depth = 0 then begin
      match Fault.decide f ~tid:ctx.ctx_tid ~clock:ctx.clock with
      | Fault.Nothing -> ()
      | Fault.Stall d -> ctx.clock <- ctx.clock + d
      | Fault.Kill -> raise Stop_thread
    end

let tick ctx cost =
  ctx.clock <- ctx.clock + cost;
  inject ctx;
  match ctx.sched with
  | None -> ()
  | Some s -> if ctx.clock >= s.min_other then yield ()

let charge ctx cost = ctx.clock <- ctx.clock + cost

let advance_to ctx t =
  if t > ctx.clock then ctx.clock <- t;
  inject ctx;
  match ctx.sched with
  | None -> ()
  | Some s -> if ctx.clock >= s.min_other then yield ()

let stop () = raise Stop_thread

let shield ctx f =
  ctx.shield_depth <- ctx.shield_depth + 1;
  Fun.protect ~finally:(fun () -> ctx.shield_depth <- ctx.shield_depth - 1) f

let spurious_fires ctx =
  match ctx.faults with
  | None -> false
  | Some f ->
    ctx.shield_depth = 0 && Fault.spurious f ~tid:ctx.ctx_tid ~clock:ctx.clock

let note_progress ctx =
  ctx.last_progress <- ctx.clock;
  match ctx.sched with
  | None -> ()
  | Some s -> if ctx.clock > s.wd_last then s.wd_last <- ctx.clock

(* Pick a runnable thread with the minimal clock; break ties with the
   scheduler RNG so no thread is systematically favoured. *)
let pick_min s =
  let best = ref (-1) and best_clock = ref max_int and ties = ref 0 in
  let n = Array.length s.ctxs in
  for i = 0 to n - 1 do
    match s.statuses.(i) with
    | Finished | Running -> ()
    | Not_started _ | Ready _ ->
      let c = s.ctxs.(i).clock in
      if c < !best_clock then begin
        best_clock := c;
        best := i;
        ties := 1
      end
      else if c = !best_clock then begin
        incr ties;
        if Rng.int s.srng !ties = 0 then best := i
      end
  done;
  !best

let min_other_clock s except =
  let m = ref max_int in
  let n = Array.length s.ctxs in
  for i = 0 to n - 1 do
    if i <> except then
      match s.statuses.(i) with
      | Finished | Running -> ()
      | Not_started _ | Ready _ -> if s.ctxs.(i).clock < !m then m := s.ctxs.(i).clock
  done;
  !m

let handler s t : (unit, unit) Effect.Deep.handler =
  {
    retc =
      (fun () ->
        s.statuses.(t.ctx_tid) <- Finished;
        s.live <- s.live - 1);
    exnc =
      (fun e ->
        match e with
        | Stop_thread ->
          s.statuses.(t.ctx_tid) <- Finished;
          s.live <- s.live - 1
        | e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Yield ->
          Some
            (fun (k : (a, unit) Effect.Deep.continuation) ->
              s.statuses.(t.ctx_tid) <- Ready k)
        | _ -> None);
  }

(* Watchdog diagnostic: the full machine state a livelock post-mortem
   needs — per-thread clocks, run states, and progress recency. *)
let diagnose s frontier =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "no progress committed while the schedule advanced to cycle %d" frontier);
  Buffer.add_string b (Printf.sprintf " (last progress at %d)\n" s.wd_last);
  Array.iteri
    (fun i t ->
      let st =
        match s.statuses.(i) with
        | Not_started _ -> "not-started"
        | Ready _ -> "ready"
        | Running -> "running"
        | Finished -> "finished"
      in
      Buffer.add_string b
        (Printf.sprintf "  thread %d: %-11s clock=%-10d last_progress=%d\n" i st t.clock
           t.last_progress))
    s.ctxs;
  (match s.wd_diag with
   | None -> ()
   | Some f -> Buffer.add_string b (f ()));
  Buffer.contents b

let run ?(seed = 0) ?faults ?watchdog ?diag bodies =
  let n = Array.length bodies in
  if n = 0 || n > max_threads then
    invalid_arg "Sim.run: need between 1 and 61 threads";
  let root = Rng.create seed in
  let ctxs =
    Array.init n (fun i ->
        {
          ctx_tid = i;
          clock = 0;
          ctx_rng = Rng.create (Int64.to_int (Rng.bits64 root) lxor i);
          sched = None;
          faults;
          shield_depth = 0;
          last_progress = 0;
        })
  in
  let statuses = Array.init n (fun i -> Not_started bodies.(i)) in
  let s =
    { ctxs; statuses; srng = Rng.split root; live = n; min_other = 0;
      wd_budget = watchdog; wd_diag = diag; wd_last = 0 }
  in
  Array.iter (fun c -> c.sched <- Some s) ctxs;
  let rec loop () =
    if s.live > 0 then begin
      let i = pick_min s in
      assert (i >= 0);
      let t = ctxs.(i) in
      (match s.wd_budget with
       | Some budget when t.clock - s.wd_last > budget ->
         Array.iter (fun c -> c.sched <- None) ctxs;
         raise (Watchdog (diagnose s t.clock))
       | _ -> ());
      s.min_other <- min_other_clock s i;
      (match statuses.(i) with
       | Not_started f ->
         statuses.(i) <- Running;
         Effect.Deep.match_with (fun () -> f t) () (handler s t)
       | Ready k ->
         statuses.(i) <- Running;
         Effect.Deep.continue k ()
       | Running | Finished -> assert false);
      (* A thread left in [Running] state yielded via an unhandled path;
         that cannot happen because [Yield] always sets [Ready]. *)
      (match statuses.(i) with
       | Running -> assert false
       | Not_started _ | Ready _ | Finished -> ());
      loop ()
    end
  in
  loop ();
  Array.iter (fun c -> c.sched <- None) ctxs

module Backoff = struct
  type bctx = tctx

  type t = { ctx : bctx; base : int; cap : int; mutable bound : int }

  let create ?(base = 50) ?(cap = 4096) ctx = { ctx; base; cap; bound = base }

  let once b =
    let d = (b.bound / 2) + Rng.int b.ctx.ctx_rng (max 1 (b.bound / 2)) in
    tick b.ctx d;
    b.bound <- min b.cap (b.bound * 2)

  let reset b = b.bound <- b.base
end
