(** Deterministic fault injection plans.

    A {!spec} describes the environmental adversity a simulated run should
    face — Rock-style spurious transaction aborts (interrupts, TLB misses,
    register-window save/restore), thread preemption (stalls), and thread
    crashes — and {!make} instantiates it into a plan whose decisions are
    derived purely from the plan seed via per-thread SplitMix streams.
    The scheduler ({!Sim.run}'s [faults] argument) consults the plan at
    every {!Sim.tick} scheduling point; the HTM layer consults the
    per-thread spurious stream once per transaction attempt.

    Determinism: a fixed spec produces a bit-identical fault trace
    ({!events}) for the same program, independent of wall-clock anything.
    Faults never fire inside {!Sim.shield}ed sections (crash-cleanup
    paths) nor on a thread already killed. *)

type spec = {
  fault_seed : int;  (** seed of all fault streams (independent of the scheduler seed) *)
  stall_rate : float;  (** per-scheduling-point probability of a preemption stall *)
  stall_cycles : int;
      (** stall duration bound: actual stalls are uniform in
          [\[stall_cycles/2, stall_cycles)] virtual cycles *)
  kill_rate : float;  (** per-scheduling-point probability of a random thread crash *)
  max_random_kills : int;  (** budget for rate-driven kills (scheduled kills always fire) *)
  kills_at : (int * int) list;
      (** [(tid, t)]: crash thread [tid] at its first scheduling point with
          clock >= [t] — the deterministic way to kill mid-operation *)
  kills_at_point : (int * string * int) list;
      (** [(tid, point, t)]: crash thread [tid] at its first arrival at the
          named {!Sim.fault_point} once its clock is >= [t]. Layers register
          their semantically dangerous windows as named points — e.g.
          ["stm.commit"], the STM slow path between lock acquisition and
          write-back — so a plan can aim a crash at a code location rather
          than a raw virtual time. *)
  spurious_abort_rate : float;
      (** probability that a hardware transaction attempt is aborted for an
          environmental (non-data) reason, as on Rock *)
}

val none : spec
(** No faults at all; the identity plan. *)

type event_kind = Stalled of int | Killed | Killed_at of string | Spurious_abort

type event = { ev_tid : int; ev_clock : int; ev_kind : event_kind }

val pp_event : Format.formatter -> event -> unit

type t
(** An instantiated plan: per-thread streams plus the injection log. *)

val make : spec -> t

val spec : t -> spec

type decision = Nothing | Stall of int | Kill

val decide : t -> tid:int -> clock:int -> decision
(** Called by the scheduler at each scheduling point; logs and returns the
    injection for this point. A thread that was killed never receives
    further faults. *)

val at_point : t -> tid:int -> clock:int -> point:string -> bool
(** Called by {!Sim.fault_point} when a thread passes a named code point:
    whether a pending [kills_at_point] entry for this thread and point has
    triggered (its clock condition met). Consumes the entry, marks the
    thread dead and logs a {!Killed_at} event when it fires. *)

val spurious : t -> tid:int -> clock:int -> bool
(** Called by {!Htm} once per hardware transaction attempt: whether this
    attempt suffers a spurious (environmental) abort. Draws from a stream
    separate from {!decide}'s so scheduling-point counts do not perturb
    the abort pattern. *)

val events : t -> event list
(** Everything injected so far, in injection order. *)

val kills : t -> int

val stalls : t -> int

val spurious_fired : t -> int

val trace : t -> string
(** The event log as one string — convenient for determinism assertions
    (same spec and program ⇒ equal traces). *)
