(** Deterministic virtual-time simulator of a small multiprocessor.

    Threads are OCaml-5 effect-based cooperative fibers, each with a private
    virtual clock measured in CPU cycles. The scheduler always resumes a
    runnable thread with the minimal clock, so any two events on different
    threads interleave exactly as their virtual timestamps dictate. Shared-
    memory operations (see {!Simmem}) charge cycle costs and yield, which is
    where interleavings — and hence races and transaction conflicts — occur.

    Determinism: for a fixed seed, thread count and thread bodies, the
    interleaving is reproducible bit-for-bit.

    This substitutes for the 16-core Rock machine used in the paper: the
    paper's axes (cycles, ops/µs) map directly onto virtual time. *)

module Rng = Rng
module Ibuf = Ibuf
module Fault = Fault

type tctx
(** Per-thread context: identity, virtual clock, private RNG. A [tctx] is
    only valid on the fiber it was handed to (or, for a boot context,
    outside [run] entirely). *)

exception Stop_thread
(** Raise inside a thread body to terminate that thread immediately;
    the simulation continues. Injected kills ({!Fault}) use the same
    exception, so structures that must survive crashes need only be
    exception-safe against it. *)

exception Watchdog of string
(** Raised by {!run} when a liveness watchdog was armed and the schedule
    advanced more than the budget past the last {!note_progress}. The
    payload is a full diagnostic: per-thread clocks, run states and
    progress recency, plus the caller's [diag] section. *)

(** The memory-consistency variant matrix (docs/MEMORY_ORDERING.md).
    [Sim] owns the vocabulary; the semantics live in {!Simmem}'s
    per-thread FIFO store buffers. The named presets:

    - [sc]: sequential consistency — no buffering; the pre-weak-memory
      behavior, byte-identical artifacts.
    - [sb]: TSO-style store buffering — stores enter a bounded FIFO and
      become visible at drain points (fences, atomics, capacity overflow,
      thread termination); loads forward from the newest own-buffer entry.
    - [sb-bypass]: like [sb] but loads ignore the own buffer (a machine
      with store buffering and no store-to-load forwarding — reads your
      own stale value).
    - [sb-fence-nop]: like [sb] but fences drain nothing — the
      bug-finding control: code whose correctness depends on its fences
      must fail under this variant. *)
module Memmodel : sig
  type t = {
    buffered : bool;  (** per-thread FIFO store buffer active *)
    sb_depth : int;  (** capacity; a full buffer drains its oldest entry *)
    forward_loads : bool;  (** loads see the newest own-buffer entry *)
    fence_drains : bool;  (** fences drain the buffer *)
  }

  val sc : t
  val sb : t
  val sb_bypass : t
  val sb_fence_nop : t

  val all : (string * t) list
  (** The named variants, in canonical order: [sc], [sb], [sb-bypass],
      [sb-fence-nop]. *)

  val to_string : t -> string
  (** The canonical name, or a [custom[...]] rendering for models built by
      hand (e.g. a depth-1 buffer in a litmus test). *)

  val of_string : string -> t option
  (** Inverse of {!to_string} on the named variants only. *)
end

val boot : ?seed:int -> unit -> tctx
(** A context usable outside [run], e.g. to initialise shared structures
    before the threads start. It charges costs to its own clock but never
    yields. Its thread id is {!boot_tid}. *)

val boot_tid : int
(** Reserved thread id of boot contexts (larger than any runnable tid). *)

val max_threads : int
(** Maximum number of simulated threads ([256]; sharer sets in [Simmem]
    are multi-word bitmasks sized to each heap's configured capacity).
    Exploring strategies and recording still encode runnable sets in a
    single word and accept at most {!mask_threads} threads. *)

val mask_threads : int
(** Threads a single 63-bit bitmask can describe ([61], one bit reserved
    for boot contexts) — the ceiling for explore/recorder features. *)

(** Scheduling strategies for systematic schedule exploration (see
    {!Explore} in [lib/explore]). The default, {!Min_clock}, always resumes
    the runnable thread with the smallest virtual clock — the
    virtual-time-faithful schedule used by every benchmark. The other
    strategies deliberately decouple execution order from virtual time to
    drive one program through many distinct interleavings:

    - {!Random_walk}: at every scheduling point, pick a runnable thread
      uniformly at random from a stream seeded by [rw_seed].
    - {!Pct}: probabilistic concurrency testing (Burckhardt et al.): each
      thread gets a random priority, the highest-priority runnable thread
      always runs, and at [pct_depth - 1] random change points the running
      thread is demoted below everyone else. Finds any bug of depth [d]
      with probability >= 1/(n·k^(d-1)) per schedule.
    - {!Deviate}: replay mode. Runs min-clock except at the listed choice
      points (indices of scheduling decisions where >= 2 threads were
      runnable), where the named thread is forced instead. A schedule
      recorded by a {!recorder} is reproduced exactly by replaying its
      {!deviations}; shrinking a failure means shrinking that list.

    Under any non-default strategy virtual clocks are no longer globally
    ordered, so treat cycle counts as per-thread costs only, and judge
    correctness oracles by execution order (e.g. logical stamps), never by
    comparing clocks across threads. *)
type strategy =
  | Min_clock
  | Random_walk of { rw_seed : int }
  | Pct of { pct_seed : int; pct_depth : int; pct_length : int }
  | Deviate of (int * int) list

val pp_strategy : Format.formatter -> strategy -> unit

val pct_change_points : seed:int -> depth:int -> length:int -> int list
(** The exact priority-change points a [Pct { pct_seed = seed; pct_depth =
    depth; pct_length = length }] strategy will use: [max 0 (depth - 1)]
    positions drawn uniformly from [0, max 1 length), sorted ascending.
    Pure and deterministic in its arguments. *)

type recorder
(** Accumulates the scheduling decisions of one {!run}: the full pick
    sequence and the sparse list of deviations from the min-clock default.
    Installing a recorder forces exploring mode (every tick is a
    scheduling decision), so a recorded [Min_clock] run may break clock
    ties differently from an unrecorded one. *)

val recorder : unit -> recorder

val picks : recorder -> int list
(** The chosen thread id of every scheduling decision, in order. *)

val deviations : recorder -> (int * int) list
(** [(choice_index, tid)] for every decision where >= 2 threads were
    runnable and the strategy chose differently from min-clock. Replaying
    [Deviate (deviations r)] with the same seed, bodies and faults
    reproduces the recorded schedule exactly. *)

val decision_string : recorder -> string
(** The pick sequence as [";"]-separated decimal tids — a compact
    fingerprint for determinism assertions (same seed and strategy implies
    byte-identical strings). *)

val choices : recorder -> (int * int * int) list
(** Every counted scheduling decision (>= 2 threads runnable) as
    [(choice_index, runnable_tid_bitmask, chosen_tid)], in order. The
    bitmask enumerates the alternatives available at that index, which is
    exactly what an exhaustive schedule search needs to branch: replaying
    [Deviate] with the recorded prefix plus one [(index, alt)] forces any
    runnable alternative, and the prefix guarantees the same machine state
    (hence the same mask) at that index. *)

val run :
  ?seed:int ->
  ?strategy:strategy ->
  ?record:recorder ->
  ?faults:Fault.t ->
  ?watchdog:int ->
  ?diag:(unit -> string) ->
  ?tracer:Obs.Tracer.sink ->
  ?on_fault:(Fault.event -> unit) ->
  (tctx -> unit) array ->
  unit
(** [run bodies] executes one fiber per body until all finish. Thread [i]
    gets tid [i] and a fresh RNG derived from [seed] and [i].

    [strategy] selects the scheduling strategy (default {!Min_clock});
    [record] logs every scheduling decision into the given {!recorder}.

    [faults] installs a fault plan: it is consulted at every {!tick} /
    {!advance_to} scheduling point and may stall the thread (preemption)
    or kill it ({!Stop_thread}); the HTM layer additionally consults its
    spurious-abort stream. Inspect the plan with {!Fault.events} after
    the run.

    [watchdog] arms a liveness check with the given cycle budget: if no
    thread calls {!note_progress} while the schedule's frontier advances
    by more than the budget, the run fails fast with {!Watchdog} instead
    of spinning forever. Size the budget above any legitimately silent
    phase (e.g. a measurement warmup). [diag] contributes an extra
    section (e.g. HTM abort counters) to the watchdog diagnostic.

    [tracer] attaches every thread to an {!Obs.Tracer} sink (default: the
    ambient sink, see {!set_default_tracer}): the scheduler records each
    run slice as a span, and fault injections as instants. [on_fault] is
    called at each injected fault (stall, kill, spurious abort), e.g. to
    merge fault lines into an exploration trace. Both taps charge zero
    virtual cycles and consume no simulator RNG: a traced run is
    cycle-for-cycle identical to an untraced one.

    @raise Invalid_argument if there are 0 bodies or more than
    {!max_threads}. *)

val set_default_tracer : Obs.Tracer.sink option -> unit
(** Install (or clear) the ambient tracer sink that {!run} and {!boot}
    pick up when no explicit [?tracer] is given. The benchmark driver
    points this at the current machine's process sink so workloads that
    call [Sim.run] internally are traced without signature changes. *)

val default_tracer : unit -> Obs.Tracer.sink option

val tracer : tctx -> Obs.Tracer.sink option
(** The sink this thread reports to, if any. {!Simmem} and {!Htm} fetch
    it from the acting context to record miss instants and transaction
    spans. *)

val set_tracer : tctx -> Obs.Tracer.sink option -> unit
(** Override the sink on one context (mainly boot contexts). *)

val note_progress : tctx -> unit
(** Feed the liveness watchdog: record that this thread just completed
    useful work (an operation, a transaction commit). {!Htm} calls this
    on every commit; workloads call it per completed operation. *)

val shield : tctx -> (unit -> unit) -> unit
(** [shield ctx f] runs [f] with fault injection suspended on this thread:
    no stalls, kills or spurious events fire inside. Models cleanup code
    that is crash-safe by construction (a robust lock release, an
    OS-level teardown path); costs are still charged and scheduling still
    happens. Nestable. *)

val fault_point : tctx -> string -> unit
(** [fault_point ctx name] marks the thread's passage through the named
    code point and fires any pending [kills_at_point] entry of the
    installed fault plan ({!Fault.spec}) aimed at it, raising
    {!Stop_thread}. Free (no cycles, no yield, no RNG) and inert under
    {!shield} or without a plan, so registering a point never perturbs a
    fault-free run. {!Stm} registers ["stm.commit"] — the window between
    versioned-lock acquisition and write-back. *)

val spurious_fires : tctx -> bool
(** Consult the installed fault plan's per-thread spurious-event stream
    (one draw per call). False when no plan is installed, the rate is
    zero, or the thread is {!shield}ed. {!Htm} calls this once per
    hardware transaction attempt. *)

val tid : tctx -> int
val clock : tctx -> int

val rng : tctx -> Rng.t
(** The thread-private RNG. *)

val tick : tctx -> int -> unit
(** [tick ctx cost] charges [cost] cycles and yields if another thread's
    clock is now behind this one. This is the scheduling point used by every
    shared-memory access. *)

val charge : tctx -> int -> unit
(** [charge ctx cost] advances the clock {e without} yielding. Used for the
    commit phase of transactions, which must be atomic in virtual time. *)

val fence : ?cost:int -> tctx -> unit
(** A full memory fence ([membar #StoreLoad] on the paper's SPARC target):
    runs this thread's registered drain hooks (flushing its store buffer
    under a buffered {!Memmodel}, unless the model says fences drain
    nothing), then charges [cost] cycles (default 60) as a scheduling
    point. With no hooks registered — the [sc] model, or a thread that
    never buffered a store — this is exactly [tick ctx cost], so fenced
    code is cycle-identical to the old tick-only fence stubs. *)

val register_drain : tctx -> (terminal:bool -> unit) -> unit
(** Install a drain hook on this thread, called by {!fence} with
    [~terminal:false] and at thread termination (normal return or a kill)
    with [~terminal:true]. Terminal hooks must not tick or yield — the
    fiber is past its last scheduling point; use {!charge}. Intended for
    memory layers ({!Simmem} registers one per thread that buffers a
    store); hooks run in registration order. *)

val advance_to : tctx -> int -> unit
(** [advance_to ctx t] sleeps until virtual time [t] (no-op if already
    past), then yields. Workloads use it to pace periodic operations and to
    align threads on a common measurement start time. *)

val stop : unit -> 'a
(** Terminate the current thread ([raise Stop_thread]). *)

(** Randomized exponential backoff for retry loops (CAS loops, helping
    loops). Delays are charged to the owning thread's virtual clock. *)
module Backoff : sig
  type t

  val create : ?base:int -> ?cap:int -> tctx -> t
  (** Defaults: [base = 50] cycles, [cap = 4096]. *)

  val once : t -> unit
  (** Wait a randomized delay and double the bound (up to [cap]). *)

  val reset : t -> unit
  (** Restore the initial bound (call after a success). *)

  val bound : base:int -> cap:int -> int -> int
  (** [bound ~base ~cap n] is the pure backoff envelope for retry attempt
      [n]: [min cap (base lsl min n 9)]. Monotone in [n] until it reaches
      [cap], then constant — the property the transaction layers' retry
      loops rely on, stated as a function so it is testable without a
      scheduler. *)

  val delay : base:int -> cap:int -> Rng.t -> int -> int
  (** One randomized delay inside the attempt-[n] envelope: uniform in
      [\[bound/2, bound)]. Pure in the RNG state — the same stream yields
      the same sequence, which is what keeps backoff byte-identical
      across [--jobs] under the sweep runner. *)
end

val yield_count : int ref
(** Cumulative count of scheduler yields (context switches) performed by
    every run in this domain. Pure wall-side diagnostic for performance
    work: zero it, run a cell, read it back to see how many effect
    switches the schedule mandated (docs/PERFORMANCE.md quotes it).
    Untouched by virtual time and never read by the simulator itself. *)
