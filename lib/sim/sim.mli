(** Deterministic virtual-time simulator of a small multiprocessor.

    Threads are OCaml-5 effect-based cooperative fibers, each with a private
    virtual clock measured in CPU cycles. The scheduler always resumes a
    runnable thread with the minimal clock, so any two events on different
    threads interleave exactly as their virtual timestamps dictate. Shared-
    memory operations (see {!Simmem}) charge cycle costs and yield, which is
    where interleavings — and hence races and transaction conflicts — occur.

    Determinism: for a fixed seed, thread count and thread bodies, the
    interleaving is reproducible bit-for-bit.

    This substitutes for the 16-core Rock machine used in the paper: the
    paper's axes (cycles, ops/µs) map directly onto virtual time. *)

module Rng = Rng
module Ibuf = Ibuf
module Fault = Fault

type tctx
(** Per-thread context: identity, virtual clock, private RNG. A [tctx] is
    only valid on the fiber it was handed to (or, for a boot context,
    outside [run] entirely). *)

exception Stop_thread
(** Raise inside a thread body to terminate that thread immediately;
    the simulation continues. Injected kills ({!Fault}) use the same
    exception, so structures that must survive crashes need only be
    exception-safe against it. *)

exception Watchdog of string
(** Raised by {!run} when a liveness watchdog was armed and the schedule
    advanced more than the budget past the last {!note_progress}. The
    payload is a full diagnostic: per-thread clocks, run states and
    progress recency, plus the caller's [diag] section. *)

val boot : ?seed:int -> unit -> tctx
(** A context usable outside [run], e.g. to initialise shared structures
    before the threads start. It charges costs to its own clock but never
    yields. Its thread id is {!boot_tid}. *)

val boot_tid : int
(** Reserved thread id of boot contexts (larger than any runnable tid). *)

val max_threads : int
(** Maximum number of simulated threads ([61]; sharer sets are bitmasks in
    a 63-bit int, with one bit reserved for boot contexts). *)

val run :
  ?seed:int ->
  ?faults:Fault.t ->
  ?watchdog:int ->
  ?diag:(unit -> string) ->
  (tctx -> unit) array ->
  unit
(** [run bodies] executes one fiber per body until all finish. Thread [i]
    gets tid [i] and a fresh RNG derived from [seed] and [i].

    [faults] installs a fault plan: it is consulted at every {!tick} /
    {!advance_to} scheduling point and may stall the thread (preemption)
    or kill it ({!Stop_thread}); the HTM layer additionally consults its
    spurious-abort stream. Inspect the plan with {!Fault.events} after
    the run.

    [watchdog] arms a liveness check with the given cycle budget: if no
    thread calls {!note_progress} while the schedule's frontier advances
    by more than the budget, the run fails fast with {!Watchdog} instead
    of spinning forever. Size the budget above any legitimately silent
    phase (e.g. a measurement warmup). [diag] contributes an extra
    section (e.g. HTM abort counters) to the watchdog diagnostic.

    @raise Invalid_argument if there are 0 bodies or more than
    {!max_threads}. *)

val note_progress : tctx -> unit
(** Feed the liveness watchdog: record that this thread just completed
    useful work (an operation, a transaction commit). {!Htm} calls this
    on every commit; workloads call it per completed operation. *)

val shield : tctx -> (unit -> unit) -> unit
(** [shield ctx f] runs [f] with fault injection suspended on this thread:
    no stalls, kills or spurious events fire inside. Models cleanup code
    that is crash-safe by construction (a robust lock release, an
    OS-level teardown path); costs are still charged and scheduling still
    happens. Nestable. *)

val spurious_fires : tctx -> bool
(** Consult the installed fault plan's per-thread spurious-event stream
    (one draw per call). False when no plan is installed, the rate is
    zero, or the thread is {!shield}ed. {!Htm} calls this once per
    hardware transaction attempt. *)

val tid : tctx -> int
val clock : tctx -> int

val rng : tctx -> Rng.t
(** The thread-private RNG. *)

val tick : tctx -> int -> unit
(** [tick ctx cost] charges [cost] cycles and yields if another thread's
    clock is now behind this one. This is the scheduling point used by every
    shared-memory access. *)

val charge : tctx -> int -> unit
(** [charge ctx cost] advances the clock {e without} yielding. Used for the
    commit phase of transactions, which must be atomic in virtual time. *)

val advance_to : tctx -> int -> unit
(** [advance_to ctx t] sleeps until virtual time [t] (no-op if already
    past), then yields. Workloads use it to pace periodic operations and to
    align threads on a common measurement start time. *)

val stop : unit -> 'a
(** Terminate the current thread ([raise Stop_thread]). *)

(** Randomized exponential backoff for retry loops (CAS loops, helping
    loops). Delays are charged to the owning thread's virtual clock. *)
module Backoff : sig
  type t

  val create : ?base:int -> ?cap:int -> tctx -> t
  (** Defaults: [base = 50] cycles, [cap = 4096]. *)

  val once : t -> unit
  (** Wait a randomized delay and double the bound (up to [cap]). *)

  val reset : t -> unit
  (** Restore the initial bound (call after a success). *)
end
