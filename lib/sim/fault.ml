(* Deterministic fault plans: seed-derived environmental adversity injected
   at the simulator's scheduling points. The plan decides, the scheduler
   applies — this module never touches thread state itself, so it stays
   free of any dependency on the scheduler and both directions remain
   testable in isolation.

   Every decision draws from per-thread SplitMix streams derived from the
   plan seed, so a fixed spec yields a bit-identical fault trace no matter
   how the victim code behaves between scheduling points. *)

type spec = {
  fault_seed : int;
  stall_rate : float;
  stall_cycles : int;
  kill_rate : float;
  max_random_kills : int;
  kills_at : (int * int) list;
  kills_at_point : (int * string * int) list;
  spurious_abort_rate : float;
}

let none =
  {
    fault_seed = 0;
    stall_rate = 0.0;
    stall_cycles = 0;
    kill_rate = 0.0;
    max_random_kills = 0;
    kills_at = [];
    kills_at_point = [];
    spurious_abort_rate = 0.0;
  }

type event_kind = Stalled of int | Killed | Killed_at of string | Spurious_abort

type event = { ev_tid : int; ev_clock : int; ev_kind : event_kind }

let pp_event ppf e =
  match e.ev_kind with
  | Stalled d -> Format.fprintf ppf "t%d@%d stalled %d" e.ev_tid e.ev_clock d
  | Killed -> Format.fprintf ppf "t%d@%d killed" e.ev_tid e.ev_clock
  | Killed_at p -> Format.fprintf ppf "t%d@%d killed at %s" e.ev_tid e.ev_clock p
  | Spurious_abort -> Format.fprintf ppf "t%d@%d spurious" e.ev_tid e.ev_clock

type decision = Nothing | Stall of int | Kill

type thread_state = {
  point_rng : Rng.t; (* one draw per scheduling point *)
  spurious_rng : Rng.t; (* one draw per transaction attempt *)
  mutable kill_at : int option;
  mutable point_kills : (string * int) list; (* pending named-point kills *)
  mutable dead : bool;
}

(* Thread states cover every possible tid (including boot contexts), so a
   plan needs no advance knowledge of the thread count. *)
let n_states = 64

type t = {
  spec : spec;
  states : thread_state array;
  mutable random_kills : int;
  mutable rev_events : event list;
}

let make spec =
  let states =
    Array.init n_states (fun tid ->
        let kill_at =
          List.fold_left
            (fun acc (t, at) -> if t = tid then Some (match acc with None -> at | Some a -> min a at) else acc)
            None spec.kills_at
        in
        let point_kills =
          List.filter_map
            (fun (t, p, at) -> if t = tid then Some (p, at) else None)
            spec.kills_at_point
        in
        {
          point_rng = Rng.create (spec.fault_seed lxor (0x9e3779b9 * (tid + 1)));
          spurious_rng = Rng.create (spec.fault_seed lxor (0x85ebca6b * (tid + 1)));
          kill_at;
          point_kills;
          dead = false;
        })
  in
  { spec; states; random_kills = 0; rev_events = [] }

let spec t = t.spec

let log t tid clock kind =
  t.rev_events <- { ev_tid = tid; ev_clock = clock; ev_kind = kind } :: t.rev_events

let kill t st ~tid ~clock =
  st.dead <- true;
  log t tid clock Killed;
  Kill

let decide t ~tid ~clock =
  if tid < 0 || tid >= n_states then Nothing
  else begin
    let st = t.states.(tid) in
    if st.dead then Nothing
    else
      match st.kill_at with
      | Some at when clock >= at -> kill t st ~tid ~clock
      | _ ->
        let s = t.spec in
        if s.kill_rate <= 0.0 && s.stall_rate <= 0.0 then Nothing
        else begin
          let r = Rng.float st.point_rng 1.0 in
          if r < s.kill_rate && t.random_kills < s.max_random_kills then begin
            t.random_kills <- t.random_kills + 1;
            kill t st ~tid ~clock
          end
          else if r < s.kill_rate +. s.stall_rate && s.stall_cycles > 0 then begin
            let d = (s.stall_cycles / 2) + Rng.int st.point_rng (max 1 (s.stall_cycles / 2)) in
            log t tid clock (Stalled d);
            Stall d
          end
          else Nothing
        end
  end

(* Named code points ([Sim.fault_point]): layers register semantically
   interesting windows — e.g. the STM commit between lock acquisition and
   write-back — and a plan kills a thread at its first arrival there once
   its clock has passed the trigger time. Deterministic like [kills_at],
   but aimed at a code location instead of a raw virtual time. *)
let at_point t ~tid ~clock ~point =
  if tid < 0 || tid >= n_states then false
  else begin
    let st = t.states.(tid) in
    if st.dead then false
    else begin
      let fires, rest =
        List.partition (fun (p, at) -> p = point && clock >= at) st.point_kills
      in
      match fires with
      | [] -> false
      | _ :: _ ->
        st.point_kills <- rest;
        st.dead <- true;
        log t tid clock (Killed_at point);
        true
    end
  end

let spurious t ~tid ~clock =
  if t.spec.spurious_abort_rate <= 0.0 || tid < 0 || tid >= n_states then false
  else begin
    let st = t.states.(tid) in
    let fires = (not st.dead) && Rng.float st.spurious_rng 1.0 < t.spec.spurious_abort_rate in
    if fires then log t tid clock Spurious_abort;
    fires
  end

let events t = List.rev t.rev_events

let count kindp t = List.length (List.filter (fun e -> kindp e.ev_kind) t.rev_events)
let kills t = count (function Killed | Killed_at _ -> true | _ -> false) t
let stalls t = count (function Stalled _ -> true | _ -> false) t
let spurious_fired t = count (function Spurious_abort -> true | _ -> false) t

let trace t = String.concat ";" (List.map (Format.asprintf "%a" pp_event) (events t))
