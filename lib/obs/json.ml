type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let add_escaped b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* Floats print via %.12g with a ".0" forced onto integral values, so a
   Float never round-trips back as an Int and rendering is deterministic. *)
let add_float b f =
  if not (Float.is_finite f) then Buffer.add_string b "null"
  else begin
    let s = Printf.sprintf "%.12g" f in
    Buffer.add_string b s;
    if String.for_all (fun c -> c <> '.' && c <> 'e' && c <> 'E') s then
      Buffer.add_string b ".0"
  end

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (if x then "true" else "false")
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f -> add_float b f
  | Str s -> add_escaped b s
  | List l ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        to_buffer b v)
      l;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        add_escaped b k;
        Buffer.add_char b ':';
        to_buffer b v)
      fields;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  to_buffer b v;
  Buffer.contents b

let rec pretty b indent = function
  | (Null | Bool _ | Int _ | Float _ | Str _) as v -> to_buffer b v
  | List [] -> Buffer.add_string b "[]"
  | Obj [] -> Buffer.add_string b "{}"
  | List l ->
    let pad = String.make (indent + 2) ' ' in
    Buffer.add_string b "[\n";
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_string b ",\n";
        Buffer.add_string b pad;
        pretty b (indent + 2) v)
      l;
    Buffer.add_char b '\n';
    Buffer.add_string b (String.make indent ' ');
    Buffer.add_char b ']'
  | Obj fields ->
    let pad = String.make (indent + 2) ' ' in
    Buffer.add_string b "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string b ",\n";
        Buffer.add_string b pad;
        add_escaped b k;
        Buffer.add_string b ": ";
        pretty b (indent + 2) v)
      fields;
    Buffer.add_char b '\n';
    Buffer.add_string b (String.make indent ' ');
    Buffer.add_char b '}'

let pretty_to_buffer b v = pretty b 0 v

let pretty_to_string v =
  let b = Buffer.create 1024 in
  pretty_to_buffer b v;
  Buffer.contents b

let write_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let b = Buffer.create 4096 in
      pretty_to_buffer b v;
      Buffer.add_char b '\n';
      Buffer.output_buffer oc b)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

exception Parse_error of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char b '"'; advance ()
             | '\\' -> Buffer.add_char b '\\'; advance ()
             | '/' -> Buffer.add_char b '/'; advance ()
             | 'n' -> Buffer.add_char b '\n'; advance ()
             | 'r' -> Buffer.add_char b '\r'; advance ()
             | 't' -> Buffer.add_char b '\t'; advance ()
             | 'b' -> Buffer.add_char b '\b'; advance ()
             | 'f' -> Buffer.add_char b '\012'; advance ()
             | 'u' ->
               if !pos + 4 >= n then fail "truncated \\u escape";
               let hex = String.sub s (!pos + 1) 4 in
               (match int_of_string_opt ("0x" ^ hex) with
                | None -> fail "bad \\u escape"
                | Some code ->
                  (* Non-ASCII code points re-encode as UTF-8. *)
                  if code < 0x80 then Buffer.add_char b (Char.chr code)
                  else if code < 0x800 then begin
                    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                  end
                  else begin
                    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                  end;
                  pos := !pos + 5)
             | c -> fail (Printf.sprintf "bad escape \\%C" c));
          go ()
        | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let rec go () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+') ->
        advance ();
        go ()
      | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance ();
        go ()
      | _ -> ()
    in
    go ();
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> fail (Printf.sprintf "bad number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec fields acc =
          let f = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (f :: acc)
          | Some '}' ->
            advance ();
            List.rev (f :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) -> Error (Printf.sprintf "at byte %d: %s" at msg)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_int = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function Float f -> Some f | Int n -> Some (float_of_int n) | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
