(** Metrics registry: named counters, gauges and log2 histograms.

    One registry per instrumented component (an {!Htm.t} domain, a
    {!Simmem.t} heap); registries optionally chain to a [parent], in which
    case every update is mirrored into the same-named metric there. The
    benchmark harness hands one aggregate parent registry to every machine
    it builds, so a sweep over dozens of simulated machines accumulates
    one fleet-wide snapshot while each machine keeps exact local stats.

    All updates are plain field mutations on pre-resolved handles — no
    hashing, no allocation, no virtual-time cost — so metrics can sit on
    the hottest simulator paths.

    Registration is idempotent: asking for an existing name returns the
    existing handle (registering the same name as a different kind is an
    error). Snapshots list metrics in first-registration order, making
    rendered output deterministic. *)

type t

val create : ?parent:t -> unit -> t

(** {1 Counters} *)

type counter

val counter : ?per_thread:bool -> t -> string -> counter
(** Get or register. With [per_thread] the counter additionally keeps a
    per-thread breakdown (thread ids up to {!max_tids} - 1). *)

val incr : ?tid:int -> ?by:int -> counter -> unit
(** Add [by] (default 1), attributed to [tid] when the counter is
    per-thread. Mirrors into the parent chain. *)

val incr_t : counter -> int -> unit
(** [incr_t c tid] = [incr ~tid c], without the optional-argument boxing —
    the form hot simulator paths use. *)

val incr1 : counter -> unit
(** [incr1 c] = [incr c], allocation-free. *)

val incr_by : counter -> int -> unit
(** [incr_by c by] = [incr ~by c], allocation-free. *)

val value : counter -> int

val per_thread : counter -> (int * int) list
(** [(tid, count)] for every thread with a nonzero count, ascending tid;
    empty for counters registered without [per_thread]. *)

val max_tids : int
(** Per-thread slots per counter (257: covers {!Sim.max_threads} runnable
    threads plus the boot context). *)

(** {1 Gauges}

    A gauge tracks a current level and remembers its high-water mark —
    live words, queue depth, store-buffer occupancy. *)

type gauge

val gauge : t -> string -> gauge
val set : gauge -> int -> unit
val add : gauge -> int -> unit
val gauge_value : gauge -> int

val gauge_max : gauge -> int
(** Highest value ever set (0 for a gauge never touched). *)

(** {1 Log2 histograms}

    Bucket [i] counts observations in [\[2{^i}, 2{^i+1})]; observations
    [<= 1] land in bucket 0. *)

type hist

val hist : t -> string -> hist
val observe : hist -> int -> unit

val buckets : hist -> (int * int) list
(** [(2{^i}, count)] for nonempty buckets, ascending. *)

val hist_count : hist -> int
(** Total observations. *)

val percentile : hist -> float -> int
(** [percentile h q] resolves the [q]-quantile ([0. <= q <= 1.], clamped)
    to the {e lower bound} of the first bucket whose cumulative count
    reaches [ceil (q * n)] — the same [lo] values {!buckets} reports, so
    the result is exact to within one power of two. Returns 0 for an
    empty histogram. *)

val p50 : hist -> int
val p99 : hist -> int

val p999 : hist -> int
(** Tail-latency shorthands: [percentile h 0.5] / [0.99] / [0.999]. *)

(** {1 Reset}

    Resets clear the local handle only — parent mirrors keep their
    accumulated totals (the aggregate is a trajectory, not a per-phase
    stat). *)

val reset_counter : counter -> unit
val reset_gauge : gauge -> unit
val reset_hist : hist -> unit

(** {1 Snapshots} *)

type value =
  | Counter of { total : int; per_tid : (int * int) list }
  | Gauge of { current : int; high : int }
  | Hist of (int * int) list

type snapshot = (string * value) list

val snapshot : t -> snapshot
(** All metrics in first-registration order. *)

val absorb : t -> snapshot -> unit
(** Merge a snapshot into the registry, as if it had observed everything
    the snapshotted registry did, sequenced after its own history:
    counters and histogram buckets add (per-thread attribution kept),
    gauge levels add and the high-water mark composes sequentially. The
    sweep runner uses this to fold per-cell registries into the
    experiment-wide one in canonical cell order, which makes the merged
    registry independent of how the cells were scheduled. *)

val print : Format.formatter -> snapshot -> unit
(** Aligned name/kind/value listing (via {!Table.print_cols}). *)

val to_json : t -> Json.t
(** [{schema: "metrics/1", metrics: {name: {...}}}] — the [--metrics]
    file format. Counters render as [{total, per_thread?}], gauges as
    [{current, high}], histograms as [{buckets: [[lo, count]]}]. *)
