type stat = {
  mutable s_transfers : int;
  mutable s_cycles : int;
  mutable s_wait : int;
  mutable s_max_sharers : int;
}

type t = {
  line_shift : int;
  stats : (int, stat) Hashtbl.t;
  (* Per-line region names, deduplicated at label time: re-labelling a
     recycled block is O(lines covered) and idempotent, so allocation
     hot loops can label unconditionally. *)
  line_names : (int, string list ref) Hashtbl.t;
}

let create ?(line_shift = 3) () =
  { line_shift; stats = Hashtbl.create 256; line_names = Hashtbl.create 256 }

let label t ~name ~base ~words =
  if words > 0 then begin
    let lo = base lsr t.line_shift and hi = (base + words - 1) lsr t.line_shift in
    for line = lo to hi do
      match Hashtbl.find_opt t.line_names line with
      | Some names -> if not (List.mem name !names) then names := name :: !names
      | None -> Hashtbl.add t.line_names line (ref [ name ])
    done
  end

let record_transfer t ~line ~wait ~cost ~sharers =
  let s =
    match Hashtbl.find_opt t.stats line with
    | Some s -> s
    | None ->
      let s = { s_transfers = 0; s_cycles = 0; s_wait = 0; s_max_sharers = 0 } in
      Hashtbl.add t.stats line s;
      s
  in
  s.s_transfers <- s.s_transfers + 1;
  s.s_cycles <- s.s_cycles + cost;
  s.s_wait <- s.s_wait + wait;
  if sharers > s.s_max_sharers then s.s_max_sharers <- sharers

type line_stat = {
  ls_line : int;
  ls_region : string;
  ls_transfers : int;
  ls_cycles : int;
  ls_wait : int;
  ls_max_sharers : int;
}

(* More than one name on a line means distinct regions shared it over its
   lifetime — render them joined as a false-sharing indicator. *)
let region_of t line =
  match Hashtbl.find_opt t.line_names line with
  | None | Some { contents = [] } -> "?"
  | Some names -> String.concat " + " (List.sort String.compare !names)

let lines ?top t =
  let all =
    Hashtbl.fold
      (fun line s acc ->
        {
          ls_line = line;
          ls_region = region_of t line;
          ls_transfers = s.s_transfers;
          ls_cycles = s.s_cycles;
          ls_wait = s.s_wait;
          ls_max_sharers = s.s_max_sharers;
        }
        :: acc)
      t.stats []
  in
  let sorted =
    List.sort
      (fun a b ->
        match Int.compare b.ls_transfers a.ls_transfers with
        | 0 -> Int.compare a.ls_line b.ls_line
        | c -> c)
      all
  in
  match top with
  | None -> sorted
  | Some n -> List.filteri (fun i _ -> i < n) sorted

let regions t =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun ls ->
      match Hashtbl.find_opt tbl ls.ls_region with
      | Some (tr, cy) ->
        Hashtbl.replace tbl ls.ls_region (tr + ls.ls_transfers, cy + ls.ls_cycles)
      | None ->
        Hashtbl.add tbl ls.ls_region (ls.ls_transfers, ls.ls_cycles);
        order := ls.ls_region :: !order)
    (lines t);
  List.sort
    (fun (n1, t1, _) (n2, t2, _) ->
      match Int.compare t2 t1 with 0 -> String.compare n1 n2 | c -> c)
    (List.rev_map
       (fun name ->
         let tr, cy = Hashtbl.find tbl name in
         (name, tr, cy))
       !order)

let total_transfers t =
  Hashtbl.fold (fun _ s acc -> acc + s.s_transfers) t.stats 0

let print ?(top = 16) ppf t =
  Format.fprintf ppf "== cache-line contention (top %d by transfers) ==@." top;
  let rows =
    List.map
      (fun ls ->
        [
          Printf.sprintf "0x%x" (ls.ls_line lsl t.line_shift);
          ls.ls_region;
          string_of_int ls.ls_transfers;
          string_of_int ls.ls_cycles;
          string_of_int ls.ls_wait;
          string_of_int ls.ls_max_sharers;
        ])
      (lines ~top t)
  in
  Table.print_cols ppf [ "line"; "region"; "transfers"; "cycles"; "wait"; "sharers" ] rows;
  Format.fprintf ppf "@.== per-region coherence traffic ==@.";
  let rrows =
    List.map
      (fun (name, tr, cy) -> [ name; string_of_int tr; string_of_int cy ])
      (regions t)
  in
  Table.print_cols ppf [ "region"; "transfers"; "cycles" ] rrows

let to_json ?(top = 64) t =
  Json.Obj
    [
      ("schema", Json.Str "contention/1");
      ( "lines",
        Json.List
          (List.map
             (fun ls ->
               Json.Obj
                 [
                   ("line", Json.Int ls.ls_line);
                   ("addr", Json.Int (ls.ls_line lsl t.line_shift));
                   ("region", Json.Str ls.ls_region);
                   ("transfers", Json.Int ls.ls_transfers);
                   ("cycles", Json.Int ls.ls_cycles);
                   ("wait", Json.Int ls.ls_wait);
                   ("max_sharers", Json.Int ls.ls_max_sharers);
                 ])
             (lines ~top t)) );
      ( "regions",
        Json.List
          (List.map
             (fun (name, tr, cy) ->
               Json.Obj
                 [
                   ("region", Json.Str name);
                   ("transfers", Json.Int tr);
                   ("cycles", Json.Int cy);
                 ])
             (regions t)) );
    ]
