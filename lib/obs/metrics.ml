let max_tids = 257
let hist_buckets = 62

type counter = {
  mutable c_total : int;
  c_per : int array option;
  c_parent : counter option;
}

type gauge = {
  mutable g_cur : int;
  mutable g_max : int;
  g_parent : gauge option;
}

type hist = {
  h_counts : int array;
  mutable h_n : int;
  h_parent : hist option;
}

type metric = M_counter of counter | M_gauge of gauge | M_hist of hist

type t = {
  tbl : (string, metric) Hashtbl.t;
  mutable rev_order : string list;
  parent : t option;
}

let create ?parent () = { tbl = Hashtbl.create 32; rev_order = []; parent }

let register t name m =
  Hashtbl.add t.tbl name m;
  t.rev_order <- name :: t.rev_order

let kind_error name = invalid_arg (Printf.sprintf "Metrics: %S already registered as a different kind" name)

let rec counter ?(per_thread = false) t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (M_counter c) -> c
  | Some _ -> kind_error name
  | None ->
    let parent = Option.map (fun p -> counter ~per_thread p name) t.parent in
    let c =
      {
        c_total = 0;
        c_per = (if per_thread then Some (Array.make max_tids 0) else None);
        c_parent = parent;
      }
    in
    register t name (M_counter c);
    c

let rec incr ?tid ?(by = 1) c =
  c.c_total <- c.c_total + by;
  (match (c.c_per, tid) with
   | Some per, Some tid when tid >= 0 && tid < max_tids -> per.(tid) <- per.(tid) + by
   | _ -> ());
  match c.c_parent with None -> () | Some p -> incr ?tid ~by p

(* Hot-path variants: no optional arguments, so callers pass unboxed ints
   and the call compiles to straight-line field updates. *)
let rec incr_t c tid =
  c.c_total <- c.c_total + 1;
  (match c.c_per with
   | Some per when tid >= 0 && tid < max_tids -> per.(tid) <- per.(tid) + 1
   | _ -> ());
  match c.c_parent with None -> () | Some p -> incr_t p tid

let rec incr1 c =
  c.c_total <- c.c_total + 1;
  match c.c_parent with None -> () | Some p -> incr1 p

let rec incr_by c by =
  c.c_total <- c.c_total + by;
  match c.c_parent with None -> () | Some p -> incr_by p by

let value c = c.c_total

let per_thread c =
  match c.c_per with
  | None -> []
  | Some per ->
    let acc = ref [] in
    for tid = max_tids - 1 downto 0 do
      if per.(tid) <> 0 then acc := (tid, per.(tid)) :: !acc
    done;
    !acc

let rec gauge t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (M_gauge g) -> g
  | Some _ -> kind_error name
  | None ->
    let parent = Option.map (fun p -> gauge p name) t.parent in
    let g = { g_cur = 0; g_max = 0; g_parent = parent } in
    register t name (M_gauge g);
    g

(* Parent gauges aggregate by delta, so a shared parent tracks the summed
   level (and its own high-water mark) across all children. *)
let rec g_add g d =
  g.g_cur <- g.g_cur + d;
  if g.g_cur > g.g_max then g.g_max <- g.g_cur;
  match g.g_parent with None -> () | Some p -> g_add p d

let add g d = g_add g d
let set g v = g_add g (v - g.g_cur)
let gauge_value g = g.g_cur
let gauge_max g = g.g_max

let rec hist t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (M_hist h) -> h
  | Some _ -> kind_error name
  | None ->
    let parent = Option.map (fun p -> hist p name) t.parent in
    let h = { h_counts = Array.make hist_buckets 0; h_n = 0; h_parent = parent } in
    register t name (M_hist h);
    h

let bucket_of d =
  let rec go i d = if d <= 1 || i = hist_buckets - 1 then i else go (i + 1) (d lsr 1) in
  go 0 (max d 0)

let rec observe h v =
  let b = bucket_of v in
  h.h_counts.(b) <- h.h_counts.(b) + 1;
  h.h_n <- h.h_n + 1;
  match h.h_parent with None -> () | Some p -> observe p v

let percentile h q =
  if h.h_n = 0 then 0
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let rank = max 1 (int_of_float (ceil (q *. float_of_int h.h_n))) in
    let cum = ref 0 in
    let res = ref (1 lsl (hist_buckets - 1)) in
    (try
       for i = 0 to hist_buckets - 1 do
         cum := !cum + h.h_counts.(i);
         if !cum >= rank then begin
           res := 1 lsl i;
           raise Exit
         end
       done
     with Exit -> ());
    !res
  end

let p50 h = percentile h 0.50
let p99 h = percentile h 0.99
let p999 h = percentile h 0.999

let buckets h =
  let acc = ref [] in
  for i = hist_buckets - 1 downto 0 do
    if h.h_counts.(i) > 0 then acc := (1 lsl i, h.h_counts.(i)) :: !acc
  done;
  !acc

let hist_count h = h.h_n

let reset_counter c =
  c.c_total <- 0;
  match c.c_per with None -> () | Some per -> Array.fill per 0 max_tids 0

let reset_gauge g =
  g.g_cur <- 0;
  g.g_max <- 0

let reset_hist h =
  Array.fill h.h_counts 0 hist_buckets 0;
  h.h_n <- 0

(* Bucket-wise histogram merge (bucket lows are powers of two, so
   [bucket_of lo] recovers the index); loops would cost one observe per
   original sample. *)
let rec h_add h b n =
  h.h_counts.(b) <- h.h_counts.(b) + n;
  h.h_n <- h.h_n + n;
  match h.h_parent with None -> () | Some p -> h_add p b n

type value =
  | Counter of { total : int; per_tid : (int * int) list }
  | Gauge of { current : int; high : int }
  | Hist of (int * int) list

type snapshot = (string * value) list

let snapshot t =
  List.rev_map
    (fun name ->
      let v =
        match Hashtbl.find t.tbl name with
        | M_counter c -> Counter { total = c.c_total; per_tid = per_thread c }
        | M_gauge g -> Gauge { current = g.g_cur; high = g.g_max }
        | M_hist h -> Hist (buckets h)
      in
      (name, v))
    t.rev_order

(* Merge a snapshot into [t], as if [t] had observed everything the
   snapshotted registry did, sequenced after [t]'s own history. Counters
   and histograms are commutative; gauge levels add, and the high-water
   mark composes sequentially (previous max + absorbed max bounds the
   level the merged timeline could have reached). Absorbing snapshots in
   a fixed order therefore yields identical registries however the
   source registries' runs were scheduled. *)
let absorb t (snap : snapshot) =
  List.iter
    (fun (name, v) ->
      match v with
      | Counter { total; per_tid } ->
        let c = counter ~per_thread:(per_tid <> []) t name in
        let tagged = List.fold_left (fun a (_, n) -> a + n) 0 per_tid in
        List.iter (fun (tid, n) -> incr ~tid ~by:n c) per_tid;
        if total - tagged <> 0 then incr ~by:(total - tagged) c
      | Gauge { current; high } ->
        let g = gauge t name in
        let base_max = g.g_max in
        g_add g current;
        if base_max + high > g.g_max then g.g_max <- base_max + high
      | Hist bs ->
        let h = hist t name in
        List.iter (fun (lo, n) -> h_add h (bucket_of lo) n) bs)
    snap

let print ppf snap =
  let rows =
    List.map
      (fun (name, v) ->
        match v with
        | Counter { total; per_tid } ->
          let per =
            match per_tid with
            | [] -> ""
            | l ->
              String.concat " "
                (List.map (fun (tid, n) -> Printf.sprintf "t%d:%d" tid n) l)
          in
          [ name; "counter"; string_of_int total; per ]
        | Gauge { current; high } ->
          [ name; "gauge"; string_of_int current; Printf.sprintf "high %d" high ]
        | Hist bs ->
          let total = List.fold_left (fun a (_, n) -> a + n) 0 bs in
          let body =
            String.concat " " (List.map (fun (lo, n) -> Printf.sprintf "%d:%d" lo n) bs)
          in
          [ name; "hist"; string_of_int total; body ])
      snap
  in
  Table.print_cols ppf [ "metric"; "kind"; "value"; "detail" ] rows

let to_json t =
  let entry = function
    | Counter { total; per_tid } ->
      Json.Obj
        (("total", Json.Int total)
         ::
         (match per_tid with
          | [] -> []
          | l ->
            [ ( "per_thread",
                Json.Obj (List.map (fun (tid, n) -> (string_of_int tid, Json.Int n)) l) )
            ]))
    | Gauge { current; high } ->
      Json.Obj [ ("current", Json.Int current); ("high", Json.Int high) ]
    | Hist bs ->
      Json.Obj
        [ ( "buckets",
            Json.List (List.map (fun (lo, n) -> Json.List [ Json.Int lo; Json.Int n ]) bs)
          )
        ]
  in
  Json.Obj
    [
      ("schema", Json.Str "metrics/1");
      ("metrics", Json.Obj (List.map (fun (name, v) -> (name, entry v)) (snapshot t)));
    ]
