(** Coherence-contention profiler: per-cache-line transfer accounting
    with region attribution.

    The simulated memory reports every coherence transfer (a read or
    write miss that pulled the line from another core, plus the cycles
    the requester spent queued behind earlier transfers of the same
    line). Data-structure implementations {!label} the address ranges
    they allocate ("ListHoHRC.header", "MSQueue+ROP.node", ...), and the
    report attributes each hot line to the regions overlapping it at
    report time.

    A line overlapped by more than one region name is rendered with the
    names joined by [" + "] — a direct false-sharing indicator.

    Recording is a hashtable update on the OCaml side: zero virtual
    cycles, no simulator RNG. *)

type t

val create : ?line_shift:int -> unit -> t
(** [line_shift] must match the memory's line size (default 3:
    8-word lines). *)

val label : t -> name:string -> base:int -> words:int -> unit
(** Declare that words [\[base, base+words)] belong to region [name].
    Labels accumulate per cache line and are deduplicated, so allocation
    hot loops can label every block unconditionally. Freeing is not
    tracked — a label describes what the line was {e used as}, which is
    what a post-mortem wants; a line used by several regions over its
    lifetime reports all their names. *)

val record_transfer :
  t -> line:int -> wait:int -> cost:int -> sharers:int -> unit
(** One coherence transfer of [line]: [wait] cycles spent queued behind
    earlier transfers, [cost] total cycles charged for the miss,
    [sharers] the number of caches holding the line at request time. *)

type line_stat = {
  ls_line : int;          (** line index *)
  ls_region : string;     (** attributed region name(s), ["?"] if unlabeled *)
  ls_transfers : int;     (** coherence transfers of this line *)
  ls_cycles : int;        (** total miss cycles charged on this line *)
  ls_wait : int;          (** of which: queueing behind other transfers *)
  ls_max_sharers : int;   (** peak sharer count seen at request time *)
}

val lines : ?top:int -> t -> line_stat list
(** Hottest lines, sorted by transfer count (descending; ties by line
    index ascending). [top] truncates (default: all). *)

val regions : t -> (string * int * int) list
(** [(region, transfers, cycles)] aggregated over lines, sorted by
    transfers descending (ties by name). *)

val total_transfers : t -> int

val print : ?top:int -> Format.formatter -> t -> unit
(** Ranked heatmap table: line, region, transfers, cycles, wait, peak
    sharers; then the per-region rollup. *)

val to_json : ?top:int -> t -> Json.t
(** [{schema: "contention/1", lines: [...], regions: [...]}]. *)
