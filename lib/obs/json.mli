(** Minimal JSON: a value type, a deterministic printer and a strict
    parser.

    The observability layer ships machine-readable artifacts (Chrome
    [trace_event] timelines, metrics snapshots, bench reports) without an
    external JSON dependency. Printing is deterministic — object fields
    keep their construction order, numbers render identically for
    identical inputs — so byte-equality of two exported files is a valid
    determinism oracle. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
(** Compact (single-line) rendering with full string escaping. *)

val to_string : t -> string

val pretty_to_buffer : Buffer.t -> t -> unit
(** Two-space-indented rendering, for files meant to be read by humans
    too. Equally deterministic. *)

val pretty_to_string : t -> string

val write_file : string -> t -> unit
(** Pretty-print to a file (truncating), with a trailing newline. *)

val parse : string -> (t, string) result
(** Strict parser for the subset this module prints (plus standard JSON
    escapes and exponent floats). Numbers without [.], [e] or [E] parse as
    [Int]. Errors carry a byte offset. *)

val member : string -> t -> t option
(** Field lookup; [None] on missing field or non-object. *)

val to_int : t -> int option
(** [Int n] (or integral [Float]) as [n]. *)

val to_float : t -> float option

val to_str : t -> string option

val to_list : t -> t list option
