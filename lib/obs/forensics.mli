(** Transaction forensics: conflict-witness aggregation and abort
    attribution.

    A {e witness} is captured by the memory system at the moment a
    coherence invalidation (or version-check failure) dooms a
    transaction: who was the victim, which thread's committed write was
    the aggressor, which address and line they collided on, and whether
    the victim had the line in its read- or write-set. Aggregating
    witnesses answers the questions raw abort counters cannot: {e which
    threads} fight, over {e which lines}, belonging to {e which}
    labelled region and produced by {e which} allocation.

    Like the tracer and profiler, forensics is pure OCaml-side
    bookkeeping: recording charges zero virtual cycles, consumes no
    simulator RNG and never perturbs scheduling, so an instrumented run
    is cycle-for-cycle identical to a bare one.

    All accessors return canonically sorted data and {!to_json} is
    deterministic, so artifacts built from forensics merged in a fixed
    (canonical) cell order are byte-identical regardless of host
    parallelism. *)

type witness = {
  w_victim : int;  (** aborting thread *)
  w_aggressor : int;  (** thread whose write invalidated it; -1 unknown *)
  w_addr : int;  (** conflicting word address *)
  w_line : int;  (** [w_addr lsr line_shift] *)
  w_victim_wrote : bool;  (** true: W/W conflict; false: R/W *)
  w_read_set : bool;  (** address was in the victim's read-set *)
  w_write_set : bool;  (** address was in the victim's write-set *)
  w_op : string;  (** aggressor op: store/atomic/commit/malloc/free/lock/? *)
  w_aggressor_clock : int;  (** aggressor's clock at its write; -1 unknown *)
  w_clock : int;  (** victim's virtual clock at capture *)
  w_site : string;  (** capture site, e.g. "htm.read", "stm.commit" *)
}

val access_label : witness -> string
(** ["W/W"] or ["R/W"]. *)

val pp_witness : Format.formatter -> witness -> unit
(** One-line rendering: [t3<-t1 W/W 0x128 (commit ws)]. *)

type hop = {
  hp_tid : int;
  hp_clock : int;
  hp_from : string;  (** path left: "hw" | "stm" *)
  hp_to : string;  (** path entered: "stm" | "tle" *)
  hp_reason : string;
  hp_witness : witness option;  (** the abort that drove the hop *)
}

type t

val create : ?line_shift:int -> ?max_hops:int -> unit -> t
(** [line_shift] must match the memory it observes (default 3 =
    8-word lines); [max_hops] bounds the stored escalation timeline
    (default 256) — the total is still counted past the bound. *)

val line_shift : t -> int

(** {1 Recording} *)

val label : t -> name:string -> base:int -> words:int -> unit
(** Name the lines covering [\[base, base+words)], for {!region_of}.
    Multiple distinct names on one line are all kept (false sharing). *)

val note_alloc : t -> base:int -> words:int -> tid:int -> clock:int -> unit
(** Record allocation provenance for the covered lines: which thread
    allocated into them, when, and how many times over the run. *)

val record : t -> witness -> unit

val note_hop :
  t ->
  tid:int ->
  clock:int ->
  from_path:string ->
  to_path:string ->
  reason:string ->
  witness option ->
  unit
(** One escalation step in a transaction's fallback lattice. *)

(** {1 Aggregates}

    All lists are canonically sorted (counts descending, then key
    ascending — except {!edges} and {!victims}, which sort by id). *)

val count : t -> int
(** Witnesses recorded. *)

type edge_stat = {
  es_victim : int;
  es_aggressor : int;  (** -1 = unknown *)
  es_rw : int;
  es_ww : int;
}

val edges : t -> edge_stat list
(** The thread×thread conflict graph, sorted victim then aggressor. *)

type line_stat = {
  fl_line : int;
  fl_addr : int;  (** line base address *)
  fl_region : string;  (** label(s), " + "-joined; "?" if unlabelled *)
  fl_prov : (int * int * int) option;
      (** allocator provenance at last conflict: tid, clock, alloc count *)
  fl_conflicts : int;
  fl_rw : int;
  fl_ww : int;
}

val lines : ?top:int -> t -> line_stat list
(** Hot-line ranking: conflicts descending, line ascending. *)

val regions : t -> (string * int) list
(** Conflicts summed per region label, descending. *)

val sites : t -> (string * int) list
(** Witnesses per capture site, descending. *)

val victims : t -> (int * int) list
(** Witnesses per victim thread, ascending tid. *)

val hops : t -> hop list
(** Stored escalation timeline, oldest first (at most [max_hops]). *)

val hop_count : t -> int
(** Total hops noted, including any past the storage bound. *)

(** {1 Merge and render} *)

val absorb : t -> t -> unit
(** [absorb dst src] folds [src]'s aggregates into [dst]: counts add,
    labels union, provenance takes [src]'s when present, hop timelines
    concatenate under [dst]'s bound. Absorbing in canonical cell order
    makes the result independent of host scheduling. *)

val print : ?top:int -> Format.formatter -> t -> unit
(** Human-readable diagnosis: conflict graph, hot lines (with region and
    provenance), abort sites, escalation timeline — via {!Table}. *)

val to_json : ?top:int -> t -> Json.t
(** Deterministic [{schema: "forensics/1", ...}] object; [top] bounds
    the hot-line list (default 64). *)
