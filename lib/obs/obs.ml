(** Unified observability layer: JSON encoding, table rendering, the
    metrics registry, the virtual-time tracer and the coherence
    contention profiler. Depends on nothing so every simulator layer can
    use it. *)

module Json = Json
module Table = Table
module Metrics = Metrics
module Tracer = Tracer
module Profiler = Profiler
module Forensics = Forensics
