(** Shared result rendering: aligned text tables, CSV, ASCII charts.

    This is the one home for tabular pretty-printing — the benchmark
    harness ([Workload.Report] re-exports this module) and the explorer
    CLI both render through it, so column sizing and number formatting
    stay consistent everywhere. *)

type table = {
  title : string;
  xlabel : string;
  unit : string;  (** of the cell values, e.g. "ops/us" *)
  columns : string list;
  rows : (string * float option list) list;
      (** x-axis label, one value per column; [None] prints as "-" *)
}

val cell : float option -> string
(** Numeric cell formatting: ["-"] for [None], magnitude-dependent
    precision otherwise. *)

val print_cols : Format.formatter -> string list -> string list list -> unit
(** [print_cols ppf header rows] renders pre-stringified rows as
    left-aligned columns sized to their widest entry — the raw layout
    engine behind {!print}, also used directly for non-numeric listings
    (algorithm tables, metric dumps). Rows shorter than the header are
    padded with empty cells. *)

val print : Format.formatter -> table -> unit
(** Aligned human-readable table. *)

val print_csv : Format.formatter -> table -> unit
(** Same data as CSV (one header comment line, then header + rows). *)

val plot : ?height:int -> Format.formatter -> table -> unit
(** ASCII line chart of the table: one glyph-coded series per column over
    the row order, with a y-scale and a legend — the closest a terminal
    gets to regenerating the paper's figures. *)

val to_json : table -> Json.t
(** The table as a JSON object: [{title, xlabel, unit, columns, rows:
    [{x, values}]}] with [None] cells as [null] — the row format of the
    machine-readable bench report. *)

val of_json : Json.t -> (table, string) result
(** Strict inverse of {!to_json}; [bench diff] reads tables back out of
    BENCH artifacts with it. *)
