type witness = {
  w_victim : int;
  w_aggressor : int;
  w_addr : int;
  w_line : int;
  w_victim_wrote : bool;
  w_read_set : bool;
  w_write_set : bool;
  w_op : string;
  w_aggressor_clock : int;
  w_clock : int;
  w_site : string;
}

let access_label w = if w.w_victim_wrote then "W/W" else "R/W"

let pp_witness ppf w =
  let agg =
    if w.w_aggressor < 0 then "?" else Printf.sprintf "t%d" w.w_aggressor
  in
  Format.fprintf ppf "t%d<-%s %s %#x (%s%s%s)" w.w_victim agg (access_label w)
    w.w_addr w.w_op
    (if w.w_read_set then " rs" else "")
    (if w.w_write_set then " ws" else "")

type hop = {
  hp_tid : int;
  hp_clock : int;
  hp_from : string;
  hp_to : string;
  hp_reason : string;
  hp_witness : witness option;
}

type edge = { mutable e_rw : int; mutable e_ww : int }

type alloc = { mutable a_tid : int; mutable a_clock : int; mutable a_count : int }

type lstat = {
  mutable l_conflicts : int;
  mutable l_rw : int;
  mutable l_ww : int;
  (* allocation provenance of the line's resident object at the time of
     its most recent conflict, copied from the alloc log at record time *)
  mutable l_prov : (int * int * int) option; (* tid, clock, alloc count *)
}

type t = {
  line_shift : int;
  max_hops : int;
  mutable total : int;
  edges : (int * int, edge) Hashtbl.t; (* (victim, aggressor) *)
  lines : (int, lstat) Hashtbl.t;
  line_names : (int, string list ref) Hashtbl.t;
  allocs : (int, alloc) Hashtbl.t;
  sites : (string, int ref) Hashtbl.t;
  victims : (int, int ref) Hashtbl.t;
  mutable rev_hops : hop list;
  mutable nhops : int; (* stored *)
  mutable hop_total : int; (* including those beyond max_hops *)
}

let create ?(line_shift = 3) ?(max_hops = 256) () =
  {
    line_shift;
    max_hops;
    total = 0;
    edges = Hashtbl.create 64;
    lines = Hashtbl.create 256;
    line_names = Hashtbl.create 256;
    allocs = Hashtbl.create 256;
    sites = Hashtbl.create 16;
    victims = Hashtbl.create 16;
    rev_hops = [];
    nhops = 0;
    hop_total = 0;
  }

let line_shift t = t.line_shift

let label t ~name ~base ~words =
  if words > 0 then begin
    let lo = base lsr t.line_shift and hi = (base + words - 1) lsr t.line_shift in
    for line = lo to hi do
      match Hashtbl.find_opt t.line_names line with
      | Some names -> if not (List.mem name !names) then names := name :: !names
      | None -> Hashtbl.add t.line_names line (ref [ name ])
    done
  end

let note_alloc t ~base ~words ~tid ~clock =
  if words > 0 then begin
    let lo = base lsr t.line_shift and hi = (base + words - 1) lsr t.line_shift in
    for line = lo to hi do
      match Hashtbl.find_opt t.allocs line with
      | Some a ->
        a.a_tid <- tid;
        a.a_clock <- clock;
        a.a_count <- a.a_count + 1
      | None -> Hashtbl.add t.allocs line { a_tid = tid; a_clock = clock; a_count = 1 }
    done
  end

let bump tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> incr r
  | None -> Hashtbl.add tbl key (ref 1)

let record t w =
  t.total <- t.total + 1;
  let ekey = (w.w_victim, w.w_aggressor) in
  let e =
    match Hashtbl.find_opt t.edges ekey with
    | Some e -> e
    | None ->
      let e = { e_rw = 0; e_ww = 0 } in
      Hashtbl.add t.edges ekey e;
      e
  in
  if w.w_victim_wrote then e.e_ww <- e.e_ww + 1 else e.e_rw <- e.e_rw + 1;
  let ls =
    match Hashtbl.find_opt t.lines w.w_line with
    | Some ls -> ls
    | None ->
      let ls = { l_conflicts = 0; l_rw = 0; l_ww = 0; l_prov = None } in
      Hashtbl.add t.lines w.w_line ls;
      ls
  in
  ls.l_conflicts <- ls.l_conflicts + 1;
  if w.w_victim_wrote then ls.l_ww <- ls.l_ww + 1 else ls.l_rw <- ls.l_rw + 1;
  (match Hashtbl.find_opt t.allocs w.w_line with
   | Some a -> ls.l_prov <- Some (a.a_tid, a.a_clock, a.a_count)
   | None -> ());
  bump t.sites w.w_site;
  bump t.victims w.w_victim

let note_hop t ~tid ~clock ~from_path ~to_path ~reason witness =
  t.hop_total <- t.hop_total + 1;
  if t.nhops < t.max_hops then begin
    t.rev_hops <-
      {
        hp_tid = tid;
        hp_clock = clock;
        hp_from = from_path;
        hp_to = to_path;
        hp_reason = reason;
        hp_witness = witness;
      }
      :: t.rev_hops;
    t.nhops <- t.nhops + 1
  end

let count t = t.total
let hop_count t = t.hop_total
let hops t = List.rev t.rev_hops

(* Same convention as the profiler: multiple names on a line mean distinct
   regions shared it over its lifetime. *)
let region_of t line =
  match Hashtbl.find_opt t.line_names line with
  | None | Some { contents = [] } -> "?"
  | Some names -> String.concat " + " (List.sort String.compare !names)

type edge_stat = { es_victim : int; es_aggressor : int; es_rw : int; es_ww : int }

let edges t =
  let all =
    Hashtbl.fold
      (fun (v, a) e acc ->
        { es_victim = v; es_aggressor = a; es_rw = e.e_rw; es_ww = e.e_ww } :: acc)
      t.edges []
  in
  List.sort
    (fun a b ->
      match Int.compare a.es_victim b.es_victim with
      | 0 -> Int.compare a.es_aggressor b.es_aggressor
      | c -> c)
    all

type line_stat = {
  fl_line : int;
  fl_addr : int;
  fl_region : string;
  fl_prov : (int * int * int) option; (* alloc tid, clock, count *)
  fl_conflicts : int;
  fl_rw : int;
  fl_ww : int;
}

let lines ?top t =
  let all =
    Hashtbl.fold
      (fun line ls acc ->
        {
          fl_line = line;
          fl_addr = line lsl t.line_shift;
          fl_region = region_of t line;
          fl_prov = ls.l_prov;
          fl_conflicts = ls.l_conflicts;
          fl_rw = ls.l_rw;
          fl_ww = ls.l_ww;
        }
        :: acc)
      t.lines []
  in
  let sorted =
    List.sort
      (fun a b ->
        match Int.compare b.fl_conflicts a.fl_conflicts with
        | 0 -> Int.compare a.fl_line b.fl_line
        | c -> c)
      all
  in
  match top with
  | None -> sorted
  | Some n -> List.filteri (fun i _ -> i < n) sorted

let regions t =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun fl ->
      match Hashtbl.find_opt tbl fl.fl_region with
      | Some n -> Hashtbl.replace tbl fl.fl_region (n + fl.fl_conflicts)
      | None ->
        Hashtbl.add tbl fl.fl_region fl.fl_conflicts;
        order := fl.fl_region :: !order)
    (lines t);
  List.sort
    (fun (n1, c1) (n2, c2) ->
      match Int.compare c2 c1 with 0 -> String.compare n1 n2 | c -> c)
    (List.rev_map (fun name -> (name, Hashtbl.find tbl name)) !order)

let sorted_counts tbl =
  List.sort
    (fun (k1, c1) (k2, c2) ->
      match Int.compare c2 c1 with 0 -> String.compare k1 k2 | c -> c)
    (Hashtbl.fold (fun k r acc -> (k, !r) :: acc) tbl [])

let sites t = sorted_counts t.sites

let victims t =
  List.sort
    (fun (t1, _) (t2, _) -> Int.compare t1 t2)
    (Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.victims [])

(* Merge [src] into [dst]. Counts are commutative; provenance and alloc
   last-writer fields take [src]'s value when present (the absorber calls
   this in canonical cell order, so "later" is well defined). The stored
   hop timeline keeps [dst]'s bound. *)
let absorb dst src =
  dst.total <- dst.total + src.total;
  Hashtbl.iter
    (fun key e ->
      match Hashtbl.find_opt dst.edges key with
      | Some d ->
        d.e_rw <- d.e_rw + e.e_rw;
        d.e_ww <- d.e_ww + e.e_ww
      | None -> Hashtbl.add dst.edges key { e_rw = e.e_rw; e_ww = e.e_ww })
    src.edges;
  Hashtbl.iter
    (fun line ls ->
      match Hashtbl.find_opt dst.lines line with
      | Some d ->
        d.l_conflicts <- d.l_conflicts + ls.l_conflicts;
        d.l_rw <- d.l_rw + ls.l_rw;
        d.l_ww <- d.l_ww + ls.l_ww;
        (match ls.l_prov with Some _ as p -> d.l_prov <- p | None -> ())
      | None ->
        Hashtbl.add dst.lines line
          { l_conflicts = ls.l_conflicts; l_rw = ls.l_rw; l_ww = ls.l_ww;
            l_prov = ls.l_prov })
    src.lines;
  Hashtbl.iter
    (fun line names ->
      List.iter (fun name -> label dst ~name ~base:(line lsl dst.line_shift) ~words:1)
        (List.rev !names))
    src.line_names;
  Hashtbl.iter
    (fun line a ->
      match Hashtbl.find_opt dst.allocs line with
      | Some d ->
        d.a_tid <- a.a_tid;
        d.a_clock <- a.a_clock;
        d.a_count <- d.a_count + a.a_count
      | None ->
        Hashtbl.add dst.allocs line
          { a_tid = a.a_tid; a_clock = a.a_clock; a_count = a.a_count })
    src.allocs;
  Hashtbl.iter (fun k r -> match Hashtbl.find_opt dst.sites k with
    | Some d -> d := !d + !r
    | None -> Hashtbl.add dst.sites k (ref !r))
    src.sites;
  Hashtbl.iter (fun k r -> match Hashtbl.find_opt dst.victims k with
    | Some d -> d := !d + !r
    | None -> Hashtbl.add dst.victims k (ref !r))
    src.victims;
  List.iter
    (fun hp ->
      note_hop dst ~tid:hp.hp_tid ~clock:hp.hp_clock ~from_path:hp.hp_from
        ~to_path:hp.hp_to ~reason:hp.hp_reason hp.hp_witness)
    (hops src);
  (* stored-hop bookkeeping above already counted them; fix the total to
     include src hops that had themselves overflowed its bound *)
  dst.hop_total <- dst.hop_total + (src.hop_total - src.nhops)

(* ------------------------------------------------------------------ *)
(* Rendering.                                                          *)

let prov_label = function
  | None -> "-"
  | Some (tid, clock, count) -> Printf.sprintf "t%d@%d (alloc %d)" tid clock count

let print ?(top = 12) ppf t =
  Format.fprintf ppf "witnesses: %d conflict(s), %d escalation hop(s)@." t.total
    t.hop_total;
  if t.total > 0 then begin
    Format.fprintf ppf "@.== conflict graph (victim <- aggressor) ==@.";
    Table.print_cols ppf
      [ "victim"; "aggressor"; "R/W"; "W/W"; "total" ]
      (List.map
         (fun e ->
           [
             Printf.sprintf "t%d" e.es_victim;
             (if e.es_aggressor < 0 then "?" else Printf.sprintf "t%d" e.es_aggressor);
             string_of_int e.es_rw;
             string_of_int e.es_ww;
             string_of_int (e.es_rw + e.es_ww);
           ])
         (edges t));
    Format.fprintf ppf "@.== hot lines (top %d by conflicts) ==@." top;
    Table.print_cols ppf
      [ "line"; "region"; "allocated by"; "conflicts"; "R/W"; "W/W" ]
      (List.map
         (fun fl ->
           [
             Printf.sprintf "%#x" fl.fl_addr;
             fl.fl_region;
             prov_label fl.fl_prov;
             string_of_int fl.fl_conflicts;
             string_of_int fl.fl_rw;
             string_of_int fl.fl_ww;
           ])
         (lines ~top t));
    Format.fprintf ppf "@.== abort attribution by site ==@.";
    Table.print_cols ppf [ "site"; "witnesses" ]
      (List.map (fun (s, n) -> [ s; string_of_int n ]) (sites t))
  end;
  if t.rev_hops <> [] then begin
    Format.fprintf ppf "@.== escalation timeline (first %d of %d hops) ==@." t.nhops
      t.hop_total;
    Table.print_cols ppf
      [ "thread"; "clock"; "hop"; "reason"; "witness" ]
      (List.map
         (fun hp ->
           [
             Printf.sprintf "t%d" hp.hp_tid;
             string_of_int hp.hp_clock;
             hp.hp_from ^ "->" ^ hp.hp_to;
             hp.hp_reason;
             (match hp.hp_witness with
              | None -> "-"
              | Some w -> Format.asprintf "%a" pp_witness w);
           ])
         (hops t))
  end

(* ------------------------------------------------------------------ *)
(* JSON.                                                               *)

let witness_json w =
  Json.Obj
    [
      ("victim", Json.Int w.w_victim);
      ("aggressor", Json.Int w.w_aggressor);
      ("addr", Json.Int w.w_addr);
      ("line", Json.Int w.w_line);
      ("access", Json.Str (access_label w));
      ("read_set", Json.Bool w.w_read_set);
      ("write_set", Json.Bool w.w_write_set);
      ("op", Json.Str w.w_op);
      ("aggressor_clock", Json.Int w.w_aggressor_clock);
      ("clock", Json.Int w.w_clock);
      ("site", Json.Str w.w_site);
    ]

let to_json ?(top = 64) t =
  Json.Obj
    [
      ("schema", Json.Str "forensics/1");
      ("witnesses", Json.Int t.total);
      ( "edges",
        Json.List
          (List.map
             (fun e ->
               Json.Obj
                 [
                   ("victim", Json.Int e.es_victim);
                   ("aggressor", Json.Int e.es_aggressor);
                   ("rw", Json.Int e.es_rw);
                   ("ww", Json.Int e.es_ww);
                 ])
             (edges t)) );
      ( "lines",
        Json.List
          (List.map
             (fun fl ->
               Json.Obj
                 [
                   ("line", Json.Int fl.fl_line);
                   ("addr", Json.Int fl.fl_addr);
                   ("region", Json.Str fl.fl_region);
                   ( "alloc",
                     match fl.fl_prov with
                     | None -> Json.Null
                     | Some (tid, clock, count) ->
                       Json.Obj
                         [
                           ("tid", Json.Int tid);
                           ("clock", Json.Int clock);
                           ("count", Json.Int count);
                         ] );
                   ("conflicts", Json.Int fl.fl_conflicts);
                   ("rw", Json.Int fl.fl_rw);
                   ("ww", Json.Int fl.fl_ww);
                 ])
             (lines ~top t)) );
      ( "regions",
        Json.List
          (List.map
             (fun (name, n) ->
               Json.Obj [ ("region", Json.Str name); ("conflicts", Json.Int n) ])
             (regions t)) );
      ( "sites",
        Json.List
          (List.map
             (fun (s, n) -> Json.Obj [ ("site", Json.Str s); ("count", Json.Int n) ])
             (sites t)) );
      ( "victims",
        Json.List
          (List.map
             (fun (tid, n) -> Json.Obj [ ("tid", Json.Int tid); ("aborts", Json.Int n) ])
             (victims t)) );
      ( "hops",
        Json.Obj
          [
            ("total", Json.Int t.hop_total);
            ("recorded", Json.Int t.nhops);
            ( "timeline",
              Json.List
                (List.map
                   (fun hp ->
                     Json.Obj
                       [
                         ("tid", Json.Int hp.hp_tid);
                         ("clock", Json.Int hp.hp_clock);
                         ("from", Json.Str hp.hp_from);
                         ("to", Json.Str hp.hp_to);
                         ("reason", Json.Str hp.hp_reason);
                         ( "witness",
                           match hp.hp_witness with
                           | None -> Json.Null
                           | Some w -> witness_json w );
                       ])
                   (hops t)) );
          ] );
    ]
