type table = {
  title : string;
  xlabel : string;
  unit : string;
  columns : string list;
  rows : (string * float option list) list;
}

let cell = function
  | None -> "-"
  | Some v ->
    if Float.abs v >= 1000.0 then Printf.sprintf "%.0f" v
    else if Float.abs v >= 10.0 then Printf.sprintf "%.1f" v
    else Printf.sprintf "%.3f" v

(* The layout engine: size each column to its widest entry (header
   included), pad short rows. Every aligned listing in the repo goes
   through here. *)
let print_cols ppf header rows =
  let ncols = List.length header in
  let pad row =
    let len = List.length row in
    if len >= ncols then row else row @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map pad rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun w row -> max w (String.length (List.nth row i))) (String.length h) rows)
      header
  in
  let print_row cells =
    List.iteri
      (fun i c ->
        let w = List.nth widths i in
        Format.fprintf ppf "%-*s  " w c)
      cells;
    Format.fprintf ppf "@."
  in
  print_row header;
  List.iter print_row rows

let print ppf t =
  Format.fprintf ppf "== %s [%s] ==@." t.title t.unit;
  let headers = t.xlabel :: t.columns in
  let body = List.map (fun (x, vs) -> x :: List.map cell vs) t.rows in
  print_cols ppf headers body;
  Format.fprintf ppf "@."

(* ASCII chart: series as glyph-coded curves over the row order. Each row
   occupies a fixed number of character columns; values are scaled into
   [height] text rows. Collisions print '*'. *)
let series_glyphs = [| 'A'; 'B'; 'C'; 'D'; 'E'; 'F'; 'G'; 'H'; 'I'; 'J' |]

let plot ?(height = 14) ppf t =
  let nrows = List.length t.rows in
  let ncols = List.length t.columns in
  if nrows = 0 || ncols = 0 then Format.fprintf ppf "(empty table)@."
  else begin
    let vmax =
      List.fold_left
        (fun acc (_, vs) ->
          List.fold_left
            (fun acc -> function Some v -> Float.max acc v | None -> acc)
            acc vs)
        0.0 t.rows
    in
    let vmax = if vmax <= 0.0 then 1.0 else vmax in
    let step = 3 (* character columns per x position *) in
    let width = nrows * step in
    let canvas = Array.make_matrix height width ' ' in
    List.iteri
      (fun ri (_, vs) ->
        List.iteri
          (fun ci v ->
            match v with
            | None -> ()
            | Some v ->
              let y = int_of_float (Float.round (v /. vmax *. float_of_int (height - 1))) in
              let y = height - 1 - max 0 (min (height - 1) y) in
              let x = ri * step in
              let g = series_glyphs.(ci mod Array.length series_glyphs) in
              canvas.(y).(x) <- (if canvas.(y).(x) = ' ' then g else '*'))
          vs)
      t.rows;
    Format.fprintf ppf "-- %s [%s] --@." t.title t.unit;
    Array.iteri
      (fun i line ->
        let label =
          if i = 0 then Printf.sprintf "%8.2f |" vmax
          else if i = height - 1 then Printf.sprintf "%8.2f |" 0.0
          else "         |"
        in
        Format.fprintf ppf "%s%s@." label (String.init width (fun j -> line.(j))))
      canvas;
    Format.fprintf ppf "         +%s@." (String.make width '-');
    (* sparse x labels *)
    let labels = List.map fst t.rows in
    let buf = Bytes.make width ' ' in
    List.iteri
      (fun ri lbl ->
        if ri mod 2 = 0 then begin
          let x = ri * step in
          String.iteri
            (fun k c -> if x + k < width then Bytes.set buf (x + k) c)
            (if String.length lbl > step + 1 then String.sub lbl 0 (step + 1) else lbl)
        end)
      labels;
    Format.fprintf ppf "          %s@." (Bytes.to_string buf);
    List.iteri
      (fun ci col ->
        Format.fprintf ppf "          %c = %s@."
          series_glyphs.(ci mod Array.length series_glyphs)
          col)
      t.columns;
    Format.fprintf ppf "@."
  end

let print_csv ppf t =
  Format.fprintf ppf "# %s [%s]@." t.title t.unit;
  Format.fprintf ppf "%s@." (String.concat "," (t.xlabel :: t.columns));
  List.iter
    (fun (x, vs) ->
      let cells =
        List.map (function None -> "" | Some v -> Printf.sprintf "%.6f" v) vs
      in
      Format.fprintf ppf "%s@." (String.concat "," (x :: cells)))
    t.rows;
  Format.fprintf ppf "@."

(* Inverse of {!to_json}, strict: [bench diff] reads tables back out of
   BENCH artifacts with it, and a malformed table must be a loud finding
   rather than a silently skipped one. *)
let of_json j =
  let str_list = function
    | Json.List l ->
      let rec go acc = function
        | [] -> Some (List.rev acc)
        | Json.Str s :: rest -> go (s :: acc) rest
        | _ -> None
      in
      go [] l
    | _ -> None
  in
  let cell_of = function
    | Json.Null -> Some None
    | v -> (match Json.to_float v with Some f -> Some (Some f) | None -> None)
  in
  let row_of = function
    | Json.Obj _ as r ->
      (match (Json.member "x" r, Json.member "values" r) with
       | Some (Json.Str x), Some (Json.List vs) ->
         let rec cells acc = function
           | [] -> Some (List.rev acc)
           | v :: rest ->
             (match cell_of v with Some c -> cells (c :: acc) rest | None -> None)
         in
         Option.map (fun cs -> (x, cs)) (cells [] vs)
       | _ -> None)
    | _ -> None
  in
  match
    ( Json.member "title" j, Json.member "xlabel" j, Json.member "unit" j,
      Json.member "columns" j, Json.member "rows" j )
  with
  | Some (Json.Str title), Some (Json.Str xlabel), Some (Json.Str unit), Some cols,
    Some (Json.List rows) ->
    (match str_list cols with
     | None -> Error "table: bad columns"
     | Some columns ->
       let rec go acc = function
         | [] -> Ok { title; xlabel; unit; columns; rows = List.rev acc }
         | r :: rest ->
           (match row_of r with
            | Some row -> go (row :: acc) rest
            | None -> Error (Printf.sprintf "table %S: bad row" title))
       in
       go [] rows)
  | _ -> Error "table: missing title/xlabel/unit/columns/rows"

let to_json t =
  Json.Obj
    [
      ("title", Json.Str t.title);
      ("xlabel", Json.Str t.xlabel);
      ("unit", Json.Str t.unit);
      ("columns", Json.List (List.map (fun c -> Json.Str c) t.columns));
      ( "rows",
        Json.List
          (List.map
             (fun (x, vs) ->
               Json.Obj
                 [
                   ("x", Json.Str x);
                   ( "values",
                     Json.List
                       (List.map
                          (function None -> Json.Null | Some v -> Json.Float v)
                          vs) );
                 ])
             t.rows) );
    ]
