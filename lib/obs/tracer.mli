(** Virtual-time event tracer with Chrome [trace_event] export.

    A tracer is one bounded ring buffer of timeline events — spans
    (thread run slices, transaction attempts, TLE lock sections) and
    instants (aborts, cache-line misses, fault injections) — stamped with
    virtual-cycle timestamps taken from the simulator clocks. Recording
    is pure OCaml-side bookkeeping: it charges {e zero virtual cycles},
    consumes no simulator RNG draws and never forces exploring mode, so
    a traced run is cycle-for-cycle identical to an untraced one.

    Multiple simulated machines can share one tracer: each attaches as a
    {!process} (a [pid] in the exported trace), so a benchmark sweep
    renders as one Perfetto session with one process per machine and one
    track per simulated thread.

    When the ring fills, the {e oldest} events are overwritten — a
    post-mortem keeps the most recent window — and the export records how
    many were dropped. Export order and content are deterministic in the
    event sequence, so byte-comparing two exported files is a valid
    schedule-determinism check.

    Timestamps ([ts], [dur]) are virtual cycles written as integers into
    the trace_event microsecond fields: open the file in Perfetto
    (https://ui.perfetto.dev) and read "µs" as "simulated cycles". *)

type t

val create : ?capacity:int -> unit -> t
(** Ring capacity in events (default 262144). *)

type sink
(** A process-scoped handle: the tracer plus the [pid] under which a
    machine's events are filed. *)

val process : t -> name:string -> sink
(** Attach a new process (pid = attachment order, from 1) named [name] in
    the exported timeline. *)

val sink_pid : sink -> int

val span :
  sink ->
  tid:int ->
  name:string ->
  ?cat:string ->
  ?args:(string * Json.t) list ->
  int ->
  int ->
  unit
(** [span sink ~tid ~name t0 t1]: a complete slice [\[t0, t1)] on thread
    [tid] (trace_event ph ["X"]). *)

val instant :
  sink ->
  tid:int ->
  name:string ->
  ?cat:string ->
  ?args:(string * Json.t) list ->
  int ->
  unit
(** [instant sink ~tid ~name t]: a point event at virtual time [t]
    (ph ["i"], thread scope). *)

(** {1 Flow events}

    Chrome-trace flows draw an arrow between two points on different
    tracks sharing an [id] — here, from an aggressor thread's committed
    write to the victim abort it caused. Ids come from {!flow_id}, a
    deterministic per-tracer counter. *)

val flow_id : sink -> int
(** Next flow-correlation id (1, 2, ...) — the counter is per-tracer, so
    ids are unique across all attached processes. *)

val flow_start :
  sink ->
  tid:int ->
  name:string ->
  ?cat:string ->
  ?args:(string * Json.t) list ->
  id:int ->
  int ->
  unit
(** Flow arrow tail (ph ["s"]) at virtual time [t] on thread [tid]. *)

val flow_finish :
  sink ->
  tid:int ->
  name:string ->
  ?cat:string ->
  ?args:(string * Json.t) list ->
  id:int ->
  int ->
  unit
(** Flow arrow head (ph ["f"], binding point ["e"]); pair with the
    {!flow_start} carrying the same [id]. *)

val thread_name : sink -> tid:int -> string -> unit
(** Label thread [tid]'s track; kept outside the ring (never dropped) and
    deduplicated, so re-labelling across runs is free. *)

val recorded : t -> int
(** Total events ever recorded (including overwritten ones). *)

val dropped : t -> int
(** Events overwritten so far ([max 0 (recorded - capacity)]). *)

val to_json : t -> Json.t
(** The Chrome trace object: [{traceEvents: [...], displayTimeUnit,
    otherData}]. Metadata events (process/thread names, plus a
    ["tracer.dropped"] record whenever the ring overwrote events) come
    first, ring events follow oldest-first. *)

val write_file : t -> string -> unit
