type ev = {
  e_pid : int;
  e_tid : int;
  e_name : string;
  e_cat : string;
  e_ph : char; (* 'X' complete span | 'i' instant | 's'/'f' flow ends *)
  e_ts : int;
  e_dur : int;
  e_id : int; (* flow-event correlation id ('s'/'f' only) *)
  e_args : (string * Json.t) list;
}

let dummy =
  { e_pid = 0; e_tid = 0; e_name = ""; e_cat = ""; e_ph = 'i'; e_ts = 0; e_dur = 0;
    e_id = 0; e_args = [] }

type t = {
  ring : ev array;
  mutable total : int;
  mutable next_pid : int;
  mutable next_flow : int;
  mutable rev_procs : (int * string) list;
  mutable rev_threads : (int * int * string) list;
}

type sink = { tr : t; pid : int }

let create ?(capacity = 1 lsl 18) () =
  if capacity < 1 then invalid_arg "Tracer.create: capacity must be >= 1";
  { ring = Array.make capacity dummy; total = 0; next_pid = 0; next_flow = 0;
    rev_procs = []; rev_threads = [] }

let process t ~name =
  t.next_pid <- t.next_pid + 1;
  t.rev_procs <- (t.next_pid, name) :: t.rev_procs;
  { tr = t; pid = t.next_pid }

let sink_pid s = s.pid

let push t e =
  t.ring.(t.total mod Array.length t.ring) <- e;
  t.total <- t.total + 1

let span s ~tid ~name ?(cat = "") ?(args = []) t0 t1 =
  push s.tr
    { e_pid = s.pid; e_tid = tid; e_name = name; e_cat = cat; e_ph = 'X'; e_ts = t0;
      e_dur = max 0 (t1 - t0); e_id = 0; e_args = args }

let instant s ~tid ~name ?(cat = "") ?(args = []) t =
  push s.tr
    { e_pid = s.pid; e_tid = tid; e_name = name; e_cat = cat; e_ph = 'i'; e_ts = t;
      e_dur = 0; e_id = 0; e_args = args }

let flow_id s =
  s.tr.next_flow <- s.tr.next_flow + 1;
  s.tr.next_flow

let flow_start s ~tid ~name ?(cat = "") ?(args = []) ~id t =
  push s.tr
    { e_pid = s.pid; e_tid = tid; e_name = name; e_cat = cat; e_ph = 's'; e_ts = t;
      e_dur = 0; e_id = id; e_args = args }

let flow_finish s ~tid ~name ?(cat = "") ?(args = []) ~id t =
  push s.tr
    { e_pid = s.pid; e_tid = tid; e_name = name; e_cat = cat; e_ph = 'f'; e_ts = t;
      e_dur = 0; e_id = id; e_args = args }

let thread_name s ~tid name =
  let seen = List.exists (fun (p, t, n) -> p = s.pid && t = tid && n = name) s.tr.rev_threads in
  if not seen then s.tr.rev_threads <- (s.pid, tid, name) :: s.tr.rev_threads

let recorded t = t.total
let dropped t = max 0 (t.total - Array.length t.ring)

let ev_json e =
  let base =
    [
      ("name", Json.Str e.e_name);
      ("cat", Json.Str (if e.e_cat = "" then "sim" else e.e_cat));
      ("ph", Json.Str (String.make 1 e.e_ph));
      ("ts", Json.Int e.e_ts);
      ("pid", Json.Int e.e_pid);
      ("tid", Json.Int e.e_tid);
    ]
  in
  let tail =
    (match e.e_ph with
     | 'X' -> [ ("dur", Json.Int e.e_dur) ]
     | 's' -> [ ("id", Json.Int e.e_id) ]
     | 'f' -> [ ("id", Json.Int e.e_id); ("bp", Json.Str "e") ]
     | _ -> [ ("s", Json.Str "t") ])
    @ (if e.e_args = [] then [] else [ ("args", Json.Obj e.e_args) ])
  in
  Json.Obj (base @ tail)

let meta_json ~pid ~tid ~meta_name ~value =
  Json.Obj
    [
      ("name", Json.Str meta_name);
      ("ph", Json.Str "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.Str value) ]);
    ]

let to_json t =
  let cap = Array.length t.ring in
  let n = min t.total cap in
  let first = if t.total <= cap then 0 else t.total mod cap in
  let events = ref [] in
  for i = n - 1 downto 0 do
    events := ev_json t.ring.((first + i) mod cap) :: !events
  done;
  let procs =
    List.rev_map
      (fun (pid, name) -> meta_json ~pid ~tid:0 ~meta_name:"process_name" ~value:name)
      t.rev_procs
  in
  let threads =
    List.rev_map
      (fun (pid, tid, name) -> meta_json ~pid ~tid ~meta_name:"thread_name" ~value:name)
      t.rev_threads
  in
  (* Ring truncation must be loud in the trace itself: a metadata record
     tells Perfetto analysis how much of the timeline is missing. *)
  let drop_meta =
    if dropped t = 0 then []
    else
      [ Json.Obj
          [
            ("name", Json.Str "tracer.dropped");
            ("ph", Json.Str "M");
            ("pid", Json.Int 0);
            ("tid", Json.Int 0);
            ( "args",
              Json.Obj
                [
                  ("droppedEvents", Json.Int (dropped t));
                  ("recordedEvents", Json.Int t.total);
                ] );
          ] ]
  in
  Json.Obj
    [
      ("traceEvents", Json.List (procs @ threads @ drop_meta @ !events));
      ("displayTimeUnit", Json.Str "ms");
      ( "otherData",
        Json.Obj
          [
            ("clockDomain", Json.Str "virtual-cycles");
            ("recordedEvents", Json.Int t.total);
            ("droppedEvents", Json.Int (dropped t));
          ] );
    ]

let write_file t path = Json.write_file path (to_json t)
