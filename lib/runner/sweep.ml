(** The deterministic sweep executor.

    Each {!Cell.t} runs hermetically: the registered {!hooks} reset the
    executing domain's ambient benchmark state before the thunk and
    restore it after, and every cell gets its own fresh metrics registry
    (when requested), so a cell's result is a pure function of its
    closure. That is the whole determinism contract: because no cell can
    observe another cell's execution, the merged output — outcomes are
    always returned in the input (canonical) order — is byte-identical
    whatever [jobs] is and however the pool interleaved the work.

    Wall-clock is the one deliberately non-deterministic product: each
    outcome carries its cell's wall time, and {!absorb} publishes the
    per-cell distribution through [Obs.Metrics] ([runner.cells],
    [runner.cell_wall_us], [runner.wall_us_total]) without letting it
    near the deterministic result tables. *)

type hooks = {
  h_prepare : unit -> unit;
      (** Reset the executing domain's per-cell ambient state (value
          supply, machine labels, profiler log). *)
  h_install :
    metrics:Obs.Metrics.t option ->
    profile:bool ->
    forensics:bool ->
    tracer:Obs.Tracer.t option ->
    unit;
      (** Install the cell's observability sinks in the executing
          domain. *)
  h_finish :
    unit -> (string * Obs.Profiler.t) list * (string * Obs.Forensics.t) list;
      (** Collect the cell's labeled profilers and forensics, and restore
          the domain to its unobserved state. *)
}

let no_hooks =
  {
    h_prepare = ignore;
    h_install = (fun ~metrics:_ ~profile:_ ~forensics:_ ~tracer:_ -> ());
    h_finish = (fun () -> ([], []));
  }

(* Written once, at [Workload.Driver]'s module initialisation, before any
   domain is spawned; [Domain.spawn] publishes it to the workers. *)
let hooks = ref no_hooks
let set_hooks h = hooks := h

type 'a outcome = {
  oc_label : string;
  oc_value : ('a, exn) result;
  oc_wall_us : float;  (** wall-clock, microseconds — never deterministic *)
  oc_snapshot : Obs.Metrics.snapshot;  (** empty unless [metrics] was set *)
  oc_profilers : (string * Obs.Profiler.t) list;  (** empty unless [profile] *)
  oc_forensics : (string * Obs.Forensics.t) list;  (** empty unless [forensics] *)
}

let run ?(jobs = 1) ?(metrics = false) ?(profile = false) ?(forensics = false)
    ?tracer cells =
  (* A tracer is a single shared append buffer; interleaving domains into
     it would scramble the event order, so tracing forces a serial run. *)
  let jobs = match tracer with Some _ -> 1 | None -> jobs in
  let h = !hooks in
  let exec (c : 'a Cell.t) =
    h.h_prepare ();
    let reg = if metrics then Some (Obs.Metrics.create ()) else None in
    h.h_install ~metrics:reg ~profile ~forensics ~tracer;
    let t0 = Unix.gettimeofday () in
    let value = try Ok (c.thunk ()) with e -> Error e in
    let wall_us = (Unix.gettimeofday () -. t0) *. 1e6 in
    let profilers, fors = h.h_finish () in
    {
      oc_label = c.label;
      oc_value = value;
      oc_wall_us = wall_us;
      oc_snapshot = (match reg with Some r -> Obs.Metrics.snapshot r | None -> []);
      oc_profilers = profilers;
      oc_forensics = fors;
    }
  in
  Array.to_list (Pool.map ~jobs exec (Array.of_list cells))

(* Unwrap in canonical order; re-raise the first failure only after the
   whole pool has drained, so one dead cell cannot suppress the others. *)
let values outcomes =
  List.map
    (fun o -> match o.oc_value with Ok v -> v | Error e -> raise e)
    outcomes

let errors outcomes =
  List.filter_map
    (fun o -> match o.oc_value with Ok _ -> None | Error e -> Some (o.oc_label, e))
    outcomes

(* Merge the per-cell registries into [into] in canonical cell order
   (deterministic whatever order the pool ran them in), then publish the
   wall-clock telemetry. *)
let absorb ~into outcomes =
  List.iter (fun o -> Obs.Metrics.absorb into o.oc_snapshot) outcomes;
  let cells_c = Obs.Metrics.counter into "runner.cells" in
  let wall_h = Obs.Metrics.hist into "runner.cell_wall_us" in
  let wall_c = Obs.Metrics.counter into "runner.wall_us_total" in
  List.iter
    (fun o ->
      Obs.Metrics.incr cells_c;
      let us = max 0 (int_of_float o.oc_wall_us) in
      Obs.Metrics.observe wall_h us;
      Obs.Metrics.incr ~by:us wall_c)
    outcomes

let profilers outcomes = List.concat_map (fun o -> o.oc_profilers) outcomes
let forensics outcomes = List.concat_map (fun o -> o.oc_forensics) outcomes

(* The per-cell timing table, for humans (never written into BENCH
   artifacts — wall-clock would break their byte-stability). *)
let timing_table ?(top = 10) outcomes : Obs.Table.table =
  let by_cost =
    List.sort (fun a b -> Float.compare b.oc_wall_us a.oc_wall_us) outcomes
  in
  let top_cells = List.filteri (fun i _ -> i < top) by_cost in
  let total = List.fold_left (fun a o -> a +. o.oc_wall_us) 0.0 outcomes in
  {
    Obs.Table.title =
      Printf.sprintf "Runner: %d cells, %.1f ms wall total (slowest first)"
        (List.length outcomes) (total /. 1000.0);
    xlabel = "cell";
    unit = "ms";
    columns = [ "wall" ];
    rows =
      List.map (fun o -> (o.oc_label, [ Some (o.oc_wall_us /. 1000.0) ])) top_cells;
  }
