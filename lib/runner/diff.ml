(** Shape-level comparison of two BENCH artifacts.

    The reproduction charter compares *shapes* with the paper — orderings
    within a row, ratios within a tolerance band, and the positions where
    one curve crosses another — never absolute values. [bench diff] gates
    on exactly those three properties between a committed baseline and a
    fresh run, so a change that shifts every number by 3 % passes while a
    change that flips "HTM beats Michael-Scott from 4 threads" or moves
    fig4's 600→400-cycle crossover fails.

    Two values are {e tied} when they differ by at most [order_tol]
    (relative); only strict orderings participate in the ordering and
    crossover checks, so noise-level gaps can reverse freely. The ratio
    check flags any cell whose new/old ratio leaves
    [[1/ratio_tol, ratio_tol]]. *)

type issue = { i_table : string; i_kind : string; i_detail : string }

type report = {
  r_tables : int;  (** tables matched by title and compared *)
  r_cells : int;  (** value cells compared *)
  r_issues : issue list;
}

let default_order_tol = 0.05
let default_ratio_tol = 1.25

let has_regression r = r.r_issues <> []

(* ------------------------------------------------------------------ *)

let tables_of_artifact j =
  match Obs.Json.member "tables" j with
  | Some (Obs.Json.List l) -> List.map Obs.Table.of_json l
  | _ -> []

let tied tol a b =
  Float.abs (a -. b) <= tol *. Float.max (Float.abs a) (Float.abs b)

(* -1 / 0 / +1 with the tie band applied; ties are "no ordering claim". *)
let ordering tol a b = if tied tol a b then 0 else Float.compare a b

(* Strict-sign sequence of (col i − col j) down the rows, with row labels;
   ties are dropped, so a crossover is two adjacent surviving entries with
   opposite signs. *)
let crossings tol rows ci cj =
  let signs =
    List.filter_map
      (fun (x, vs) ->
        match (List.nth_opt vs ci, List.nth_opt vs cj) with
        | Some (Some a), Some (Some b) ->
          let s = ordering tol a b in
          if s = 0 then None else Some (x, s)
        | _ -> None)
      rows
  in
  let rec go acc = function
    | (x1, s1) :: ((x2, s2) :: _ as rest) ->
      go (if s1 <> s2 then (x1, x2) :: acc else acc) rest
    | _ -> List.rev acc
  in
  go [] signs

let diff_table ~order_tol ~ratio_tol (old_t : Obs.Table.table)
    (new_t : Obs.Table.table) =
  let issues = ref [] in
  let cells = ref 0 in
  let issue kind detail =
    issues := { i_table = old_t.title; i_kind = kind; i_detail = detail } :: !issues
  in
  if old_t.columns <> new_t.columns then
    issue "columns"
      (Printf.sprintf "columns changed: [%s] -> [%s]"
         (String.concat "; " old_t.columns)
         (String.concat "; " new_t.columns))
  else if List.map fst old_t.rows <> List.map fst new_t.rows then
    issue "rows"
      (Printf.sprintf "row labels changed: [%s] -> [%s]"
         (String.concat "; " (List.map fst old_t.rows))
         (String.concat "; " (List.map fst new_t.rows)))
  else begin
    let ncols = List.length old_t.columns in
    let col_name i = List.nth old_t.columns i in
    (* Per-row: presence, ratio and pairwise-ordering checks. *)
    List.iter2
      (fun (x, olds) (_, news) ->
        List.iteri
          (fun i o ->
            let n = List.nth news i in
            match (o, n) with
            | None, None -> ()
            | Some _, None | None, Some _ ->
              issue "missing-value"
                (Printf.sprintf "row %s, %s: value %s" x (col_name i)
                   (match n with None -> "disappeared" | Some _ -> "appeared"))
            | Some ov, Some nv ->
              incr cells;
              let ok =
                if ov = 0.0 then Float.abs nv <= order_tol
                else if nv = 0.0 then Float.abs ov <= order_tol
                else
                  let r = nv /. ov in
                  r <= ratio_tol && r >= 1.0 /. ratio_tol
              in
              if not ok then
                issue "ratio"
                  (Printf.sprintf "row %s, %s: %.4g -> %.4g (beyond %.2fx)" x
                     (col_name i) ov nv ratio_tol))
          olds;
        for i = 0 to ncols - 1 do
          for j = i + 1 to ncols - 1 do
            match
              ( List.nth olds i, List.nth olds j, List.nth news i, List.nth news j )
            with
            | Some oa, Some ob, Some na, Some nb ->
              let os = ordering order_tol oa ob and ns = ordering order_tol na nb in
              if os <> 0 && ns <> 0 && os <> ns then
                issue "ordering"
                  (Printf.sprintf "row %s: %s %s %s reversed to %s" x (col_name i)
                     (if os > 0 then ">" else "<")
                     (col_name j)
                     (if ns > 0 then ">" else "<"))
            | _ -> ()
          done
        done)
      old_t.rows new_t.rows;
    (* Crossover positions per column pair. *)
    for i = 0 to ncols - 1 do
      for j = i + 1 to ncols - 1 do
        let oc = crossings order_tol old_t.rows i j in
        let nc = crossings order_tol new_t.rows i j in
        if oc <> nc then
          let show l =
            if l = [] then "none"
            else String.concat ", " (List.map (fun (a, b) -> a ^ ".." ^ b) l)
          in
          issue "crossover"
            (Printf.sprintf "%s vs %s: crossings moved: %s -> %s" (col_name i)
               (col_name j) (show oc) (show nc))
      done
    done
  end;
  (!cells, List.rev !issues)

let diff ?(order_tol = default_order_tol) ?(ratio_tol = default_ratio_tol) ~old_artifact
    ~new_artifact () =
  let issues = ref [] in
  let cells = ref 0 in
  let tables = ref 0 in
  let top kind detail =
    issues := { i_table = "(artifact)"; i_kind = kind; i_detail = detail } :: !issues
  in
  let old_tables =
    List.filter_map
      (function
        | Ok t -> Some t
        | Error e ->
          top "malformed" ("old artifact: " ^ e);
          None)
      (tables_of_artifact old_artifact)
  in
  let new_tables =
    List.filter_map
      (function
        | Ok t -> Some t
        | Error e ->
          top "malformed" ("new artifact: " ^ e);
          None)
      (tables_of_artifact new_artifact)
  in
  let find title l = List.find_opt (fun (t : Obs.Table.table) -> t.title = title) l in
  List.iter
    (fun (ot : Obs.Table.table) ->
      match find ot.title new_tables with
      | None -> top "missing-table" (Printf.sprintf "table %S disappeared" ot.title)
      | Some nt ->
        incr tables;
        let c, is = diff_table ~order_tol ~ratio_tol ot nt in
        cells := !cells + c;
        issues := List.rev_append is !issues)
    old_tables;
  List.iter
    (fun (nt : Obs.Table.table) ->
      if find nt.title old_tables = None then
        top "new-table" (Printf.sprintf "table %S appeared (update the baseline)" nt.title))
    new_tables;
  { r_tables = !tables; r_cells = !cells; r_issues = List.rev !issues }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let kinds = [ "columns"; "rows"; "missing-value"; "ratio"; "ordering"; "crossover";
              "missing-table"; "new-table"; "malformed" ]

(* The summary table: one row per issue kind, plus the compared-shape
   totals — the golden-tested face of [bench diff]. *)
let report_table r : Obs.Table.table =
  let count k =
    List.length (List.filter (fun i -> i.i_kind = k) r.r_issues)
  in
  {
    Obs.Table.title = "bench diff: shape comparison";
    xlabel = "check";
    unit = "count";
    columns = [ "issues" ];
    rows =
      [ ("tables-compared", [ Some (float_of_int r.r_tables) ]);
        ("cells-compared", [ Some (float_of_int r.r_cells) ]) ]
      @ List.map (fun k -> (k, [ Some (float_of_int (count k)) ])) kinds;
  }

let print ppf r =
  Obs.Table.print ppf (report_table r);
  List.iter
    (fun i -> Format.fprintf ppf "%s: [%s] %s@." i.i_table i.i_kind i.i_detail)
    r.r_issues;
  if r.r_issues = [] then Format.fprintf ppf "shapes preserved@."
  else Format.fprintf ppf "@.%d shape issue(s)@." (List.length r.r_issues)
