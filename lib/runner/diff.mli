(** Shape-level comparison of two BENCH artifacts.

    The reproduction charter compares *shapes* with the paper — orderings
    within a row, ratios within a tolerance band, and the positions where
    one curve crosses another — never absolute values. [bench diff] gates
    on exactly those three properties between a committed baseline and a
    fresh run, so a change that shifts every number by 3 % passes while a
    change that flips "HTM beats Michael-Scott from 4 threads" or moves
    fig4's 600→400-cycle crossover fails. *)

type issue = { i_table : string; i_kind : string; i_detail : string }

type report = {
  r_tables : int;  (** tables matched by title and compared *)
  r_cells : int;  (** value cells compared *)
  r_issues : issue list;
}

val default_order_tol : float
(** 0.05: two values within 5 % (relative) are tied — only strict
    orderings participate in the ordering and crossover checks. *)

val default_ratio_tol : float
(** 1.25: a cell whose new/old ratio leaves [[1/1.25, 1.25]] is flagged. *)

val has_regression : report -> bool

val diff :
  ?order_tol:float ->
  ?ratio_tol:float ->
  old_artifact:Obs.Json.t ->
  new_artifact:Obs.Json.t ->
  unit ->
  report
(** Compare every table of [old_artifact] (matched by title) against
    [new_artifact]: column/row-label equality, per-cell ratio band,
    pairwise ordering reversals, crossover positions, and
    disappeared/appeared tables. *)

val kinds : string list
(** Every issue kind, in report order. *)

val report_table : report -> Obs.Table.table
(** The summary table: one row per issue kind, plus the compared-shape
    totals — the golden-tested face of [bench diff]. *)

val print : Format.formatter -> report -> unit
(** {!report_table}, then one line per issue, then the verdict. *)
