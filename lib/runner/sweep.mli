(** The deterministic sweep executor.

    Each {!Cell.t} runs hermetically: the registered {!hooks} reset the
    executing domain's ambient benchmark state before the thunk and
    restore it after, and every cell gets its own fresh metrics registry
    (when requested), so a cell's result is a pure function of its
    closure. That is the whole determinism contract: because no cell can
    observe another cell's execution, the merged output — outcomes are
    always returned in the input (canonical) order — is byte-identical
    whatever [jobs] is and however the pool interleaved the work.

    Wall-clock is the one deliberately non-deterministic product: each
    outcome carries its cell's wall time, and {!absorb} publishes the
    per-cell distribution through [Obs.Metrics] ([runner.cells],
    [runner.cell_wall_us], [runner.wall_us_total]) without letting it
    near the deterministic result tables. *)

type hooks = {
  h_prepare : unit -> unit;
      (** Reset the executing domain's per-cell ambient state (value
          supply, machine labels, profiler log). *)
  h_install :
    metrics:Obs.Metrics.t option ->
    profile:bool ->
    forensics:bool ->
    tracer:Obs.Tracer.t option ->
    unit;
      (** Install the cell's observability sinks in the executing
          domain. *)
  h_finish :
    unit -> (string * Obs.Profiler.t) list * (string * Obs.Forensics.t) list;
      (** Collect the cell's labeled profilers and forensics aggregators,
          and restore the domain to its unobserved state. *)
}

val no_hooks : hooks

val set_hooks : hooks -> unit
(** Written once, at [Workload.Driver]'s module initialisation, before
    any domain is spawned. *)

type 'a outcome = {
  oc_label : string;
  oc_value : ('a, exn) result;
  oc_wall_us : float;  (** wall-clock, microseconds — never deterministic *)
  oc_snapshot : Obs.Metrics.snapshot;  (** empty unless [metrics] was set *)
  oc_profilers : (string * Obs.Profiler.t) list;  (** empty unless [profile] *)
  oc_forensics : (string * Obs.Forensics.t) list;  (** empty unless [forensics] *)
}

val run :
  ?jobs:int ->
  ?metrics:bool ->
  ?profile:bool ->
  ?forensics:bool ->
  ?tracer:Obs.Tracer.t ->
  'a Cell.t list ->
  'a outcome list
(** Execute the cells on up to [jobs] domains (default 1) and return
    their outcomes in input order. Passing a [tracer] forces [jobs = 1]:
    the tracer is a single shared append buffer whose event order
    parallel domains would scramble. *)

val values : 'a outcome list -> 'a list
(** Unwrap in canonical order; re-raises the first failure — only after
    the whole pool has drained, so one dead cell cannot suppress the
    others. *)

val errors : 'a outcome list -> (string * exn) list
(** The failed cells, as (label, exception), in canonical order. *)

val absorb : into:Obs.Metrics.t -> 'a outcome list -> unit
(** Merge the per-cell registries into [into] in canonical cell order
    (deterministic whatever order the pool ran them in), then publish
    the wall-clock telemetry under [runner.*]. *)

val profilers : 'a outcome list -> (string * Obs.Profiler.t) list
(** All labeled contention profilers, in canonical cell order. *)

val forensics : 'a outcome list -> (string * Obs.Forensics.t) list
(** All labeled forensics aggregators, in canonical cell order. *)

val timing_table : ?top:int -> 'a outcome list -> Obs.Table.table
(** The per-cell timing table, for humans (never written into BENCH
    artifacts — wall-clock would break their byte-stability). *)
