(** An order-preserving domain pool.

    [map ~jobs f xs] applies [f] to every element of [xs] on up to [jobs]
    domains (the calling domain participates, so [jobs = 8] spawns 7) and
    returns the results in input order, whatever order the workers
    finished in. Work is dealt from a shared atomic index, so a slow cell
    never blocks the rest of the queue behind it.

    [f] must not raise: callers wrap fallible work in [result] (see
    {!Sweep}), so one failed element can never abandon the elements
    queued behind it. *)

let map ~jobs f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let jobs = max 1 (min jobs n) in
    if jobs = 1 then Array.map f xs
    else begin
      let results = Array.make n None in
      let next = Atomic.make 0 in
      let rec worker () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (f xs.(i));
          worker ()
        end
      in
      let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      Array.iter Domain.join domains;
      Array.map (function Some v -> v | None -> assert false) results
    end
  end
