(** One independent unit of a sweep: a labeled thunk whose result depends
    only on the parameters baked into the closure (and the per-cell
    ambient state {!Sweep} resets before running it). Labels are stable
    identifiers — they name the cell in timing reports and error
    messages, and determinism tests key on them. *)

type 'a t = { label : string; thunk : unit -> 'a }

val v : label:string -> (unit -> 'a) -> 'a t
val label : 'a t -> string
