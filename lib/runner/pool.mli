(** An order-preserving domain pool. *)

val map : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f xs] applies [f] to every element of [xs] on up to [jobs]
    domains (the calling domain participates, so [jobs = 8] spawns 7) and
    returns the results in input order, whatever order the workers
    finished in. Work is dealt from a shared atomic index, so a slow
    element never blocks the rest of the queue behind it. [jobs] is
    clamped to [\[1, length xs\]].

    [f] must not raise: callers wrap fallible work in [result] (see
    {!Sweep}), so one failed element can never abandon the elements
    queued behind it. *)
