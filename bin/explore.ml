(* Schedule-exploration CLI.

     dune exec bin/explore.exe -- search --budget 2000
     dune exec bin/explore.exe -- search --scenarios broken-rop --out _explore
     dune exec bin/explore.exe -- replay _explore/broken-rop-1.trace
     dune exec bin/explore.exe -- workload -a ArrayDynAppendDereg -t 8
     dune exec bin/explore.exe -- list

   [search] runs the systematic explorer (lib/explore) over a scenario
   set and exits nonzero iff a violation was found, writing each shrunken
   failure as a replayable artifact file. [replay] re-executes such a
   file deterministically. [workload] is the interactive single-algorithm
   throughput explorer. *)

let err fmt = Printf.ksprintf (fun s -> prerr_endline s) fmt

(* ------------------------------------------------------------------ *)
(* search                                                             *)

let sanitize key =
  String.map (fun c -> match c with ':' | '+' | '/' | ' ' -> '-' | c -> c) key

let resolve_scenarios spec ~model ~threads ~ops =
  match spec with
  | "queues" -> Ok (Explore.Scenario.queues ~model ~threads ~ops ())
  | "collects" -> Ok (Explore.Scenario.collects ~model ~threads ~ops ())
  | "all" ->
    Ok
      (Explore.Scenario.queues ~model ~threads ~ops ()
      @ Explore.Scenario.collects ~model ~threads ~ops ())
  | keys ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | key :: tl -> (
        match Explore.Scenario.build ~key ~model ~threads ~ops () with
        | Ok scn -> go (scn :: acc) tl
        | Error e -> Error e)
    in
    go [] (String.split_on_char ',' keys)

let run_search jobs budget scenarios model threads ops seed with_faults max_violations out
    =
  match Sim.Memmodel.of_string model with
  | None ->
    err "explore search: unknown memory model %S (expected %s)" model
      (String.concat ", " (List.map fst Sim.Memmodel.all));
    1
  | Some model -> (
  match resolve_scenarios scenarios ~model ~threads ~ops with
  | Error e ->
    err "explore search: %s" e;
    1
  | Ok scns ->
    Printf.printf "searching %d schedules over %d scenario(s), base seed %d%s%s%s\n%!"
      budget (List.length scns) seed
      (if with_faults then ", fault rounds on" else "")
      (if jobs > 1 then Printf.sprintf ", %d domains" jobs else "")
      (if model = Sim.Memmodel.sc then ""
       else Printf.sprintf ", memory model %s" (Sim.Memmodel.to_string model));
    let summary =
      Explore.Search.search_sharded ~jobs ~base_seed:seed ~with_faults ~max_violations
        ~log:print_endline ~budget scns
    in
    Printf.printf "ran %d schedules: %d passed, %d violation(s)\n%!"
      summary.res_runs summary.res_passed
      (List.length summary.res_violations);
    if summary.res_violations = [] then 0
    else begin
      if not (Sys.file_exists out) then Sys.mkdir out 0o755;
      List.iter
        (fun (v : Explore.Search.violation) ->
          let a = v.vio_artifact in
          let path =
            Filename.concat out
              (Printf.sprintf "%s-%d.trace" (sanitize a.art_scenario) a.art_seed)
          in
          Explore.Artifact.save path a;
          Printf.printf "  %s: %s\n    %d deviation(s), artifact %s\n%!" a.art_scenario
            a.art_message
            (List.length a.art_deviations)
            path)
        summary.res_violations;
      1
    end)

(* ------------------------------------------------------------------ *)
(* replay                                                             *)

let run_replay file show_trace =
  match Explore.Artifact.load file with
  | Error e ->
    err "explore replay: %s" e;
    1
  | Ok a -> (
    Printf.printf "replaying %s: %d threads x %d ops, seed %d, %d deviation(s)\n%!"
      a.art_scenario a.art_threads a.art_ops a.art_seed
      (List.length a.art_deviations);
    let tr = if show_trace then Some (Explore.Trace.create ()) else None in
    match Explore.Search.replay_artifact ?trace:tr a with
    | Error e ->
      err "explore replay: %s" e;
      1
    | Ok outcome ->
      (match tr with
      | Some tr -> List.iter print_endline (Explore.Trace.lines tr)
      | None -> ());
      (match outcome with
      | Explore.Scenario.Fail msg ->
        Printf.printf "reproduced: %s\n" msg;
        0
      | Explore.Scenario.Pass ->
        Printf.printf "did NOT reproduce: scenario passed\n";
        2))

(* ------------------------------------------------------------------ *)
(* trace: replay an artifact into a Chrome trace_event file            *)

let run_trace file out =
  match Explore.Artifact.load file with
  | Error e ->
    err "explore trace: %s" e;
    1
  | Ok a -> (
    let tracer = Obs.Tracer.create () in
    Sim.set_default_tracer (Some (Obs.Tracer.process tracer ~name:a.art_scenario));
    let outcome = Explore.Search.replay_artifact a in
    Sim.set_default_tracer None;
    match outcome with
    | Error e ->
      err "explore trace: %s" e;
      1
    | Ok outcome ->
      Obs.Tracer.write_file tracer out;
      Printf.printf "trace: %d events (%d dropped) -> %s\n%!"
        (Obs.Tracer.recorded tracer) (Obs.Tracer.dropped tracer) out;
      (match outcome with
      | Explore.Scenario.Fail msg ->
        Printf.printf "reproduced: %s\n" msg;
        0
      | Explore.Scenario.Pass ->
        Printf.printf "did NOT reproduce: scenario passed\n";
        2))

(* ------------------------------------------------------------------ *)
(* workload (the original interactive explorer)                       *)

let list_algorithms () =
  Obs.Table.print_cols Format.std_formatter
    [ "algorithm"; "dynamic"; "htm"; "update class" ]
    (List.map
       (fun (m : Collect.Intf.maker) ->
         [ m.algo_name; string_of_bool m.solves_dynamic; string_of_bool m.uses_htm;
           (if m.direct_update then "direct (naked store)" else "indirect (transaction)") ])
       Collect.all_with_extensions);
  Format.printf "@.";
  Obs.Table.print_cols Format.std_formatter
    [ "scenario key"; "oracle" ]
    (List.map
       (fun (key, oracle) -> [ key; oracle ])
       ([ ("racy", "final counter value (seeded known-bad)");
          ("broken-rop", "linearizability (seeded known-bad queue)");
          ("ms-nofence", "linearizability (fence-dropping mutant; run with --model sb)");
          ("htm-memorder", "linearizability (HTM queue; clean under every --model)");
          ("stm-queue", "linearizability (HTM queue forced onto the STM path)");
          ("stm-collect", "Dynamic Collect spec (ListFastCollect on the STM path)") ]
       @ List.map
           (fun (m : Hqueue.Intf.maker) -> ("queue:" ^ m.queue_name, "linearizability"))
           Hqueue.all_with_extensions
       @ List.map
           (fun (m : Collect.Intf.maker) ->
             ("collect:" ^ m.algo_name, "Dynamic Collect specification"))
           Collect.all_with_extensions))

type op = Op_collect | Op_update | Op_register | Op_deregister

let op_name = function
  | Op_collect -> "collect"
  | Op_update -> "update"
  | Op_register -> "register"
  | Op_deregister -> "deregister"

let parse_mix s =
  match String.split_on_char ',' s |> List.map int_of_string with
  | [ c; u; r; d ] when c + u + r + d = 100 && c >= 0 && u >= 0 && r >= 0 && d >= 0 ->
    (c, u, r, d)
  | _ -> failwith "mix must be four comma-separated percentages summing to 100"
  | exception _ -> failwith "mix must be four comma-separated percentages summing to 100"

let parse_step = function
  | "adaptive" -> Collect.Intf.Adaptive
  | s ->
    (match int_of_string_opt s with
     | Some n when n >= 1 -> Collect.Intf.Fixed n
     | Some _ | None -> failwith "step must be a positive integer or 'adaptive'")

let run_workload algo threads mix step duration budget seed =
  let collect_pct, update_pct, register_pct, _ = parse_mix mix in
  let maker =
    match Collect.find_maker algo with
    | Some m -> m
    | None ->
      Format.eprintf "unknown algorithm %S; try the list subcommand@." algo;
      exit 1
  in
  let mem = Simmem.create () in
  let htm = Htm.create mem in
  let boot = Sim.boot ~seed () in
  let cfg =
    { Collect.Intf.max_slots = budget; num_threads = threads; step = parse_step step;
      min_size = 4 }
  in
  let inst = maker.make htm boot cfg in
  let per_thread = max 1 (budget / threads) in
  let op_counts = Hashtbl.create 4 in
  let bump op = Hashtbl.replace op_counts op (1 + Option.value ~default:0 (Hashtbl.find_opt op_counts op)) in
  let values_seen = ref 0 in
  let body _i ctx =
    let mine = Queue.create () in
    let buf = Sim.Ibuf.create () in
    let rng = Sim.rng ctx in
    for _ = 1 to per_thread / 2 do
      Queue.add (inst.register ctx (Workload.Driver.fresh_value ())) mine
    done;
    while Sim.clock ctx < duration do
      Workload.Driver.tick_dispatch ctx;
      let dice = Sim.Rng.int rng 100 in
      if dice < collect_pct then begin
        Sim.Ibuf.clear buf;
        inst.collect ctx buf;
        values_seen := !values_seen + Sim.Ibuf.length buf;
        bump Op_collect
      end
      else if dice < collect_pct + update_pct then begin
        if not (Queue.is_empty mine) then begin
          let h = Queue.pop mine in
          inst.update ctx h (Workload.Driver.fresh_value ());
          Queue.add h mine;
          bump Op_update
        end
      end
      else if dice < collect_pct + update_pct + register_pct then begin
        if Queue.length mine < per_thread then begin
          Queue.add (inst.register ctx (Workload.Driver.fresh_value ())) mine;
          bump Op_register
        end
      end
      else if not (Queue.is_empty mine) then begin
        inst.deregister ctx (Queue.pop mine);
        bump Op_deregister
      end
    done;
    Queue.iter (fun h -> inst.deregister ctx h) mine
  in
  Sim.run ~seed (Array.init threads (fun i -> body i));
  let total = Hashtbl.fold (fun _ n acc -> acc + n) op_counts 0 in
  Format.printf "== %s: %d threads, mix %s, %d cycles, seed %d ==@.@." algo threads mix
    duration seed;
  Format.printf "total throughput: %.3f ops/us (%d ops)@."
    (Workload.Driver.ops_per_us ~ops:total ~duration)
    total;
  List.iter
    (fun op ->
      let n = Option.value ~default:0 (Hashtbl.find_opt op_counts op) in
      Format.printf "  %-12s %8d@." (op_name op) n)
    [ Op_collect; Op_update; Op_register; Op_deregister ];
  let collects = Option.value ~default:0 (Hashtbl.find_opt op_counts Op_collect) in
  if collects > 0 then
    Format.printf "  avg values per collect: %.1f@."
      (float_of_int !values_seen /. float_of_int collects);
  let st = Htm.stats htm in
  Format.printf "@.HTM: %d commits; aborts: %d conflict, %d overflow, %d illegal, %d explicit; %d lock fallbacks@."
    st.commits st.aborts_conflict st.aborts_overflow st.aborts_illegal st.aborts_explicit
    st.lock_fallbacks;
  (match inst.step_histogram () with
   | [] -> ()
   | hist ->
     Format.printf "telescoping: %s@."
       (String.concat "  "
          (List.map (fun (s, n) -> Printf.sprintf "step%d:%d" s n) hist)));
  let ms = Simmem.stats mem in
  Format.printf "memory: %d words live, peak %d, %d allocs / %d frees@." ms.live_words
    ms.peak_live_words ms.total_allocs ms.total_frees;
  Format.printf
    "accesses: %d loads (%.1f%% miss), %d stores (%.1f%% miss), %d atomics@."
    ms.reads
    (100.0 *. float_of_int ms.read_misses /. float_of_int (max 1 ms.reads))
    ms.writes
    (100.0 *. float_of_int ms.write_misses /. float_of_int (max 1 ms.writes))
    ms.atomics;
  inst.destroy boot;
  Format.printf "after destroy: %d words live@." (Simmem.stats mem).live_words;
  0

(* ------------------------------------------------------------------ *)
(* cmdliner wiring                                                    *)

open Cmdliner

let search_cmd =
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ]
          ~doc:
            "Shard the schedule budget across $(docv) domains. The explored run set is \
             identical whatever $(docv) is (contiguous ranges of the same seed sequence).")
  in
  let budget =
    Arg.(value & opt int 2000 & info [ "budget" ] ~doc:"Schedules to run in total.")
  in
  let scenarios =
    Arg.(value & opt string "queues"
         & info [ "scenarios" ]
             ~doc:"$(b,queues), $(b,collects), $(b,all), or comma-separated scenario \
                   keys (see the list subcommand).")
  in
  let model =
    Arg.(
      value & opt string "sc"
      & info [ "model" ]
          ~doc:
            "Memory-consistency variant: $(b,sc) (default), $(b,sb) (TSO store \
             buffers), $(b,sb-bypass) (no store-to-load forwarding), or \
             $(b,sb-fence-nop) (fences drain nothing). See docs/MEMORY_ORDERING.md.")
  in
  let threads = Arg.(value & opt int 3 & info [ "t"; "threads" ] ~doc:"Simulated threads.") in
  let ops = Arg.(value & opt int 5 & info [ "ops" ] ~doc:"Operations per thread.") in
  let seed = Arg.(value & opt int 1 & info [ "s"; "seed" ] ~doc:"Base seed.") in
  let faults =
    Arg.(value & flag & info [ "faults" ] ~doc:"Add stall/spurious-abort fault rounds.")
  in
  let max_violations =
    Arg.(value & opt int 3 & info [ "max-violations" ] ~doc:"Stop after this many.")
  in
  let out =
    Arg.(value & opt string "_explore" & info [ "out" ] ~doc:"Artifact output directory.")
  in
  Cmd.v
    (Cmd.info "search"
       ~doc:"Systematically explore schedules; exit 1 iff a violation was found")
    Term.(const run_search $ jobs $ budget $ scenarios $ model $ threads $ ops $ seed
          $ faults $ max_violations $ out)

let replay_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"ARTIFACT" ~doc:"Artifact file.")
  in
  let trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print the captured interleaving.")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Deterministically re-run a failure artifact; exit 0 iff it reproduces")
    Term.(const run_replay $ file $ trace)

let workload_cmd =
  let algo =
    Arg.(value & opt string "ArrayDynAppendDereg"
         & info [ "a"; "algo" ] ~doc:"Algorithm name (see the list subcommand).")
  in
  let threads = Arg.(value & opt int 8 & info [ "t"; "threads" ] ~doc:"Simulated threads.") in
  let mix =
    Arg.(value & opt string "80,10,5,5"
         & info [ "m"; "mix" ] ~doc:"collect,update,register,deregister percentages.")
  in
  let step =
    Arg.(value & opt string "32" & info [ "step" ] ~doc:"Telescoping step: N or 'adaptive'.")
  in
  let duration =
    Arg.(value & opt int 400_000 & info [ "d"; "duration" ] ~doc:"Virtual cycles to run.")
  in
  let budget = Arg.(value & opt int 64 & info [ "budget" ] ~doc:"Total handle budget.") in
  let seed = Arg.(value & opt int 1 & info [ "s"; "seed" ] ~doc:"Random seed.") in
  Cmd.v
    (Cmd.info "workload"
       ~doc:"Run one Dynamic Collect algorithm under a custom workload and report stats")
    Term.(const run_workload $ algo $ threads $ mix $ step $ duration $ budget $ seed)

let trace_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"ARTIFACT" ~doc:"Artifact file.")
  in
  let out =
    Arg.(value & opt string "explore-trace.json"
         & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"Chrome trace_event output file (open in Perfetto).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Replay a failure artifact and write its virtual-time timeline as Chrome \
             trace JSON; exit 0 iff it reproduces")
    Term.(const run_trace $ file $ out)

let list_cmd =
  Cmd.v
    (Cmd.info "list" ~doc:"List collect algorithms and explorable scenario keys")
    Term.(const (fun () -> list_algorithms (); 0) $ const ())

let () =
  let info =
    Cmd.info "explore"
      ~doc:"Schedule exploration and workload probing over the simulated machine"
  in
  exit
    (Cmd.eval'
       (Cmd.group info [ search_cmd; replay_cmd; trace_cmd; workload_cmd; list_cmd ]))
