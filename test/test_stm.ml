(* Tests for the TL2 software path and the HTM→STM escalation policy:
   serializability under both clock schemes, opacity, hybrid conflict
   detection, unbounded write sets without global-lock serialization,
   crash-safe versioned-lock recovery (stealing), per-path attempt
   attribution, backoff envelope properties, and sweep determinism. *)

let stm_forced = { Htm.default_config with stm = Htm.Stm_after 0 }

let make_stm ?(stm_config = Stm.default_config) () =
  let mem = Simmem.create () in
  let htm = Htm.create ~config:{ stm_forced with stm_config } mem in
  (mem, htm, Sim.boot ())

(* ------------------------------------------------------------------ *)
(* Serializability: contended counter on the pure software path.       *)

let counter_no_lost_updates scheme () =
  let mem, htm, _boot =
    make_stm ~stm_config:{ Stm.default_config with clock_scheme = scheme } ()
  in
  let boot = Sim.boot () in
  let a = Simmem.malloc mem boot 1 in
  let n = 400 and nt = 6 in
  Sim.run ~seed:3
    (Array.init nt (fun _ ->
         fun ctx ->
           for _ = 1 to n do
             Htm.atomic htm ctx (fun tx -> Htm.write tx a (Htm.read tx a + 1))
           done));
  Alcotest.(check int) "no lost updates" (n * nt) (Simmem.peek mem a);
  let st = Htm.stats htm in
  Alcotest.(check int) "no hardware commits" 0 st.commits;
  Alcotest.(check int) "no lock fallbacks" 0 st.lock_fallbacks;
  Alcotest.(check int) "every op committed in software" (n * nt) st.stm_commits;
  match Htm.stm htm with
  | None -> Alcotest.fail "stm side table missing"
  | Some s ->
    let ss = Stm.stats s in
    Alcotest.(check bool) "attempts cover commits" true (ss.attempts >= ss.commits);
    (match scheme with
     | Stm.Gv1 ->
       Alcotest.(check int) "GV1 never needs reader-side bumps" 0 ss.clock_bumps
     | Stm.Gv5 ->
       Alcotest.(check bool) "GV5 readers bumped the clock" true (ss.clock_bumps > 0))

(* ------------------------------------------------------------------ *)
(* Acceptance: transactions beyond the store buffer complete on the STM
   path with every thread progressing — no global-lock serialization.   *)

let test_big_tx_parallel_stm () =
  let mem = Simmem.create () in
  let htm = Htm.create ~config:Htm.hybrid_config mem in
  let boot = Sim.boot () in
  let nt = 4 and ops = 12 and span = 48 in
  (* disjoint regions: escalation is driven purely by capacity *)
  let regions = Array.init nt (fun _ -> Simmem.malloc mem boot span) in
  let done_ops = Array.make nt 0 in
  Sim.run ~seed:7
    (Array.init nt (fun i ->
         fun ctx ->
           for k = 1 to ops do
             Htm.atomic htm ctx (fun tx ->
                 for j = 0 to span - 1 do
                   Htm.write tx (regions.(i) + j) k
                 done);
             done_ops.(i) <- done_ops.(i) + 1
           done));
  Array.iteri
    (fun i d -> Alcotest.(check int) (Printf.sprintf "thread %d completed" i) ops d)
    done_ops;
  let st = Htm.stats htm in
  Alcotest.(check int) "no global-lock serialization" 0 st.lock_fallbacks;
  Alcotest.(check int) "48-store transactions committed in software" (nt * ops)
    st.stm_commits;
  Alcotest.(check int) "capacity escalated after one hw attempt each" (nt * ops)
    st.attempts_hw;
  Alcotest.(check int) "one escalation per op" (nt * ops) st.escalations_stm;
  Alcotest.(check int) "every hw attempt overflowed" (nt * ops) st.aborts_overflow;
  for i = 0 to nt - 1 do
    for j = 0 to span - 1 do
      if Simmem.peek mem (regions.(i) + j) <> ops then
        Alcotest.failf "region %d word %d: %d" i j (Simmem.peek mem (regions.(i) + j))
    done
  done

(* ------------------------------------------------------------------ *)
(* Opacity: a doomed software transaction never observes a snapshot
   violating the x + y = 0 invariant — against STM writers and against
   hardware-path writers (hybrid strong atomicity).                     *)

let invariant_pair writer_config () =
  let mem = Simmem.create () in
  let htm = Htm.create ~config:stm_forced mem in
  let whtm = Htm.create ~config:writer_config mem in
  let boot = Sim.boot () in
  let x = Simmem.malloc mem boot 1 and y = Simmem.malloc mem boot 1 in
  let violated = ref false in
  let writer ctx =
    for k = 1 to 150 do
      Htm.atomic whtm ctx (fun tx ->
          Htm.write tx x k;
          Htm.write tx y (-k))
    done
  in
  let reader ctx =
    for _ = 1 to 150 do
      let s =
        Htm.atomic htm ctx (fun tx ->
            let s = Htm.read tx x + Htm.read tx y in
            (* opacity: even an attempt doomed to abort must never have
               let us compute on a mixed snapshot *)
            if s <> 0 then violated := true;
            s)
      in
      if s <> 0 then violated := true
    done
  in
  Sim.run ~seed:11 [| writer; reader; reader |];
  Alcotest.(check bool) "x + y = 0 always" false !violated

(* ------------------------------------------------------------------ *)
(* Crash-safe lock recovery: a thread killed between versioned-lock
   acquisition and write-back leaves locks that survivors steal; its
   write set is never half-applied.                                     *)

let test_crash_steal_recovers () =
  let mem = Simmem.create () in
  let htm = Htm.create ~config:stm_forced mem in
  let boot = Sim.boot () in
  let a = Simmem.malloc mem boot 2 in
  Simmem.write mem boot a 1;
  Simmem.write mem boot (a + 1) 1;
  let faults =
    Sim.Fault.make
      { Sim.Fault.none with kills_at_point = [ (0, "stm.commit", 0) ] }
  in
  let survivor_ops = ref 0 in
  let victim_survived = ref false in
  Sim.run ~seed:17 ~faults ~watchdog:2_000_000
    [|
      (fun ctx ->
        (* dies holding the stripes of both words, pre-write-back *)
        Htm.atomic htm ctx (fun tx ->
            Htm.write tx a 999;
            Htm.write tx (a + 1) 999);
        victim_survived := true);
      (fun ctx ->
        for _ = 1 to 20 do
          Htm.atomic htm ctx (fun tx ->
              let u = Htm.read tx a and v = Htm.read tx (a + 1) in
              if u <> v then Alcotest.failf "torn state observed: %d <> %d" u v;
              Htm.write tx a (u + 1);
              Htm.write tx (a + 1) (v + 1));
          incr survivor_ops
        done);
      (fun ctx ->
        for _ = 1 to 20 do
          Htm.atomic htm ctx (fun tx ->
              let u = Htm.read tx a and v = Htm.read tx (a + 1) in
              if u <> v then Alcotest.failf "torn state observed: %d <> %d" u v;
              Htm.write tx a (u + 1);
              Htm.write tx (a + 1) (v + 1));
          incr survivor_ops
        done);
    |];
  Alcotest.(check bool) "victim was killed mid-commit" false !victim_survived;
  Alcotest.(check int) "the kill fired" 1 (Sim.Fault.kills faults);
  Alcotest.(check int) "both survivors completed all ops" 40 !survivor_ops;
  Alcotest.(check int) "victim's write set never applied (pairs intact)"
    (Simmem.peek mem a)
    (Simmem.peek mem (a + 1));
  Alcotest.(check int) "40 increments landed" 41 (Simmem.peek mem a);
  let st = Htm.stats htm in
  Alcotest.(check bool) "locks were stolen from the corpse" true (st.stm_steals >= 1)

(* A steal from a live-but-slow owner must be harmless: the owner
   re-verifies ownership at its commit point and retries. *)
let test_live_owner_steal_harmless () =
  let mem = Simmem.create () in
  let config =
    { stm_forced with
      stm_config = { Stm.default_config with steal_timeout = 200 } }
  in
  let htm = Htm.create ~config mem in
  let boot = Sim.boot () in
  let a = Simmem.malloc mem boot 1 in
  let n = 150 and nt = 4 in
  Sim.run ~seed:23 ~watchdog:5_000_000
    (Array.init nt (fun _ ->
         fun ctx ->
           for _ = 1 to n do
             Htm.atomic htm ctx (fun tx -> Htm.write tx a (Htm.read tx a + 1))
           done));
  Alcotest.(check int) "aggressive stealing loses no update" (n * nt)
    (Simmem.peek mem a)

(* ------------------------------------------------------------------ *)
(* Escalation attribution: per-path attempt counters are exact.         *)

let test_attribution_spurious () =
  let mem = Simmem.create () in
  (* GV1 gives exact attempt counts: under GV5 a commit stamps words at
     clock+1 without advancing the clock, so every subsequent op pays one
     reader-side bump-and-retry attempt. *)
  let config =
    { Htm.hybrid_config with
      stm_config = { Stm.default_config with clock_scheme = Stm.Gv1 } }
  in
  let htm = Htm.create ~config mem in
  let boot = Sim.boot () in
  let a = Simmem.malloc mem boot 1 in
  let faults = Sim.Fault.make { Sim.Fault.none with spurious_abort_rate = 1.0 } in
  let escalations = ref 0 and stm_commits = ref 0 and hw_aborts = ref 0 in
  Htm.set_tap htm
    (Some
       (fun ~tid:_ ~clock:_ ev ->
         match ev with
         | Htm.Tx_escalate { esc_to = Htm.P_stm; _ } -> incr escalations
         | Htm.Tx_commit { tx_path = Htm.P_stm; _ } -> incr stm_commits
         | Htm.Tx_abort { ab_path = Htm.P_hw; _ } -> incr hw_aborts
         | _ -> ()));
  let ops = 5 in
  Sim.run ~seed:29 ~faults
    [|
      (fun ctx ->
        for _ = 1 to ops do
          Htm.atomic htm ctx (fun tx -> Htm.write tx a (Htm.read tx a + 1))
        done);
    |];
  let st = Htm.stats htm in
  (* hybrid policy: 2 spuriously-doomed hardware attempts, then software *)
  Alcotest.(check int) "hw attempts: exactly 2 per op" (2 * ops) st.attempts_hw;
  Alcotest.(check int) "stm attempts: 1 per op" ops st.attempts_stm;
  Alcotest.(check int) "no hardware commits" 0 st.commits;
  Alcotest.(check int) "software commits carried every op" ops st.stm_commits;
  Alcotest.(check int) "escalations counted" ops st.escalations_stm;
  Alcotest.(check int) "no lock fallbacks" 0 st.lock_fallbacks;
  Alcotest.(check int) "tap saw the escalations" ops !escalations;
  Alcotest.(check int) "tap saw the stm commits" ops !stm_commits;
  Alcotest.(check int) "tap saw the hw aborts" (2 * ops) !hw_aborts;
  Alcotest.(check int) "all ops applied" ops (Simmem.peek mem a)

(* STM budget exhaustion with TLE enabled falls to the lock; with TLE
   disabled it raises Retry_exhausted. *)
let test_stm_budget_to_tle () =
  let mem = Simmem.create () in
  let config =
    { Htm.hybrid_config with
      stm_attempts = 2;
      stm_config =
        { Stm.default_config with
          (* live contenders are not steal candidates under the huge
             default timeout; shrink the budget path instead *)
          steal_timeout = 1_000_000 } }
  in
  let htm = Htm.create ~config mem in
  let boot = Sim.boot () in
  let a = Simmem.malloc mem boot 64 in
  (* Force software-path aborts via capacity escalation plus contention:
     every thread writes the whole shared region. *)
  let nt = 4 and ops = 8 and span = 40 in
  Sim.run ~seed:31 ~watchdog:20_000_000
    (Array.init nt (fun _ ->
         fun ctx ->
           for k = 1 to ops do
             Htm.atomic htm ctx (fun tx ->
                 for j = 0 to span - 1 do
                   Htm.write tx (a + j) k
                 done)
           done));
  let st = Htm.stats htm in
  Alcotest.(check int) "every op completed somewhere"
    (nt * ops)
    (st.stm_commits + st.lock_fallbacks);
  Alcotest.(check bool) "contention pushed some ops through the lock" true
    (st.lock_fallbacks > 0)

(* ------------------------------------------------------------------ *)
(* Backoff envelope: monotone until cap, then constant; delays land in
   [bound/2, bound) and are a pure function of the RNG stream.          *)

let prop_backoff_monotone =
  QCheck.Test.make ~name:"backoff bound monotone until cap" ~count:200
    QCheck.(triple (int_range 1 2000) (int_range 1 100_000) (int_range 0 40))
    (fun (base, cap, n) ->
      let b = Sim.Backoff.bound ~base ~cap n in
      let b' = Sim.Backoff.bound ~base ~cap (n + 1) in
      b <= b' || b = cap)

let prop_backoff_caps =
  QCheck.Test.make ~name:"backoff bound reaches and holds the cap" ~count:100
    QCheck.(pair (int_range 1 2000) (int_range 1 100_000))
    (fun (base, cap) ->
      Sim.Backoff.bound ~base ~cap 60 = min cap (Sim.Backoff.bound ~base ~cap 60)
      && Sim.Backoff.bound ~base ~cap 60 = Sim.Backoff.bound ~base ~cap 61)

let prop_backoff_delay_in_envelope =
  QCheck.Test.make ~name:"backoff delay within [bound/2, bound)" ~count:200
    QCheck.(triple (int_range 1 2000) (int_range 2 100_000) (int_range 0 20))
    (fun (base, cap, n) ->
      let rng = Sim.Rng.create 42 in
      let hi = Sim.Backoff.bound ~base ~cap n in
      let d = Sim.Backoff.delay ~base ~cap rng n in
      d >= hi / 2 && d < max (hi / 2 + 1) hi)

let prop_backoff_stream_pure =
  QCheck.Test.make ~name:"backoff delay sequence is a pure function of the seed"
    ~count:100 QCheck.small_int (fun seed ->
      let seq s =
        let rng = Sim.Rng.create s in
        List.init 24 (fun n -> Sim.Backoff.delay ~base:60 ~cap:16384 rng n)
      in
      seq seed = seq seed)

(* ------------------------------------------------------------------ *)
(* Sweep determinism: a contended hybrid workload fingerprint must be
   byte-identical whatever [jobs] is — backoff, stealing and escalation
   included.                                                            *)

let hybrid_fingerprint seed () =
  let mem = Simmem.create () in
  let htm = Htm.create ~config:Htm.hybrid_config mem in
  let boot = Sim.boot () in
  let a = Simmem.malloc mem boot 48 in
  Sim.run ~seed
    (Array.init 4 (fun _ ->
         fun ctx ->
           for k = 1 to 6 do
             Htm.atomic htm ctx (fun tx ->
                 for j = 0 to 39 do
                   Htm.write tx (a + j) (Htm.read tx (a + j) + k)
                 done)
           done));
  let st = Htm.stats htm in
  Printf.sprintf "w0=%d hw=%d stm=%d tle=%d esc=%d steals=%d" (Simmem.peek mem a)
    st.attempts_hw st.attempts_stm st.attempts_tle st.escalations_stm st.stm_steals

let test_sweep_jobs_identical () =
  let cells =
    List.map
      (fun seed -> Runner.Cell.v ~label:(Printf.sprintf "fp/%d" seed) (hybrid_fingerprint seed))
      [ 1; 2; 3; 4 ]
  in
  let fp jobs = Runner.Sweep.values (Runner.Sweep.run ~jobs cells) in
  Alcotest.(check (list string)) "fingerprints byte-identical across jobs" (fp 1) (fp 2)

(* ------------------------------------------------------------------ *)
(* Schedule exploration: the STM-forced scenarios hold up under
   adversarial strategies, faults included.                             *)

let explore_scenario key strategy ~faults () =
  match Explore.Scenario.build ~key ~threads:3 ~ops:5 () with
  | Error msg -> Alcotest.fail msg
  | Ok scn -> (
    match scn.scn_run ~strategy ~seed:5 ~faults ~record:None ~trace:None with
    | Explore.Scenario.Pass -> ()
    | Explore.Scenario.Fail msg -> Alcotest.failf "%s under %s: %s" key "strategy" msg)

let stall_faults =
  Some { Sim.Fault.none with stall_rate = 0.001; stall_cycles = 2_000 }

let () =
  Alcotest.run "stm"
    [
      ( "serializability",
        [
          Alcotest.test_case "counter GV1" `Quick (counter_no_lost_updates Stm.Gv1);
          Alcotest.test_case "counter GV5" `Quick (counter_no_lost_updates Stm.Gv5);
        ] );
      ( "capacity",
        [ Alcotest.test_case "48-store txs, parallel, no lock" `Quick
            test_big_tx_parallel_stm ] );
      ( "opacity",
        [
          Alcotest.test_case "invariant pair vs STM writers" `Quick
            (invariant_pair stm_forced);
          Alcotest.test_case "invariant pair vs HW writers" `Quick
            (invariant_pair Htm.default_config);
        ] );
      ( "crash recovery",
        [
          Alcotest.test_case "kill at stm.commit; locks stolen" `Quick
            test_crash_steal_recovers;
          Alcotest.test_case "live-owner steal harmless" `Quick
            test_live_owner_steal_harmless;
        ] );
      ( "escalation",
        [
          Alcotest.test_case "per-path attribution exact" `Quick
            test_attribution_spurious;
          Alcotest.test_case "stm budget falls to TLE" `Quick test_stm_budget_to_tle;
        ] );
      ( "backoff",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_backoff_monotone;
            prop_backoff_caps;
            prop_backoff_delay_in_envelope;
            prop_backoff_stream_pure;
          ] );
      ("determinism", [ Alcotest.test_case "sweep jobs" `Quick test_sweep_jobs_identical ]);
      ( "explore",
        [
          Alcotest.test_case "stm-queue random-walk" `Quick
            (explore_scenario "stm-queue" (Sim.Random_walk { rw_seed = 9 }) ~faults:None);
          Alcotest.test_case "stm-queue pct + stalls" `Quick
            (explore_scenario "stm-queue"
               (Sim.Pct { pct_seed = 9; pct_depth = 3; pct_length = 4000 })
               ~faults:stall_faults);
          Alcotest.test_case "stm-collect random-walk" `Quick
            (explore_scenario "stm-collect" (Sim.Random_walk { rw_seed = 13 })
               ~faults:None);
        ] );
    ]
