(* The explorer machinery: strategy determinism, the deviation/replay
   invariant, PCT change-point properties, and the end-to-end pipeline
   (find -> shrink -> artifact -> deterministic replay) on the two seeded
   known-bad scenarios. *)

module E = Explore

let run_recorded ~strategy ~seed (scn : E.Scenario.t) =
  let r = Sim.recorder () in
  let outcome =
    scn.scn_run ~strategy ~seed ~faults:None ~record:(Some r) ~trace:None
  in
  (outcome, r)

let racy = E.Scenario.racy_counter ~threads:3 ~ops:5 ()

(* Same seed and strategy => byte-identical decision strings. *)
let test_strategy_determinism () =
  List.iter
    (fun strategy ->
      let _, r1 = run_recorded ~strategy ~seed:7 racy in
      let _, r2 = run_recorded ~strategy ~seed:7 racy in
      Alcotest.(check string)
        (Format.asprintf "%a" Sim.pp_strategy strategy)
        (Sim.decision_string r1) (Sim.decision_string r2))
    [
      Sim.Min_clock;
      Sim.Random_walk { rw_seed = 42 };
      Sim.Pct { pct_seed = 42; pct_depth = 3; pct_length = 200 };
    ]

(* An empty deviation list IS the min-clock schedule. *)
let test_deviate_empty_is_min_clock () =
  let _, r1 = run_recorded ~strategy:Sim.Min_clock ~seed:7 racy in
  let _, r2 = run_recorded ~strategy:(Sim.Deviate []) ~seed:7 racy in
  Alcotest.(check string)
    "picks equal" (Sim.decision_string r1) (Sim.decision_string r2)

(* The replay invariant behind shrinking: re-running under Deviate
   (deviations r) reproduces the recorded schedule pick-for-pick. *)
let test_replay_invariant () =
  List.iter
    (fun strategy ->
      let _, r1 = run_recorded ~strategy ~seed:13 racy in
      let _, r2 =
        run_recorded ~strategy:(Sim.Deviate (Sim.deviations r1)) ~seed:13 racy
      in
      Alcotest.(check string)
        (Format.asprintf "replay of %a" Sim.pp_strategy strategy)
        (Sim.decision_string r1) (Sim.decision_string r2))
    [
      Sim.Random_walk { rw_seed = 99 };
      Sim.Pct { pct_seed = 99; pct_depth = 4; pct_length = 300 };
    ]

let prop_pct_change_points =
  QCheck.Test.make ~name:"pct_change_points: count, range, order, determinism"
    ~count:200
    QCheck.(triple small_int small_int small_int)
    (fun (seed, depth, length) ->
      let pts = Sim.pct_change_points ~seed ~depth ~length in
      let again = Sim.pct_change_points ~seed ~depth ~length in
      List.length pts = max 0 (depth - 1)
      && List.for_all (fun p -> p >= 0 && p < max 1 length) pts
      && List.sort compare pts = pts
      && pts = again)

let find_one ~budget scn =
  match E.Search.search ~base_seed:1 ~max_violations:1 ~budget [ scn ] with
  | { res_violations = [ v ]; _ } -> v
  | { res_violations = []; _ } ->
    Alcotest.failf "no violation found in %s within %d schedules" scn.E.Scenario.scn_key
      budget
  | _ -> assert false

let check_found_shrunk_replays ~budget scn =
  let v = find_one ~budget scn in
  let a = v.vio_artifact in
  Alcotest.(check bool) "recorded deviations reproduced the failure" true v.vio_replayed;
  if List.length a.art_deviations > 20 then
    Alcotest.failf "shrunken trace has %d deviations (> 20)"
      (List.length a.art_deviations);
  (* deterministic replay: twice, same failure *)
  let replay () =
    match E.Search.replay_artifact a with
    | Ok (E.Scenario.Fail msg) -> msg
    | Ok E.Scenario.Pass -> Alcotest.failf "artifact did not reproduce"
    | Error e -> Alcotest.failf "artifact did not resolve: %s" e
  in
  let m1 = replay () and m2 = replay () in
  Alcotest.(check string) "replay is deterministic" m1 m2

let test_racy_found () = check_found_shrunk_replays ~budget:60 racy

let test_broken_rop_found () =
  check_found_shrunk_replays ~budget:200
    (E.Scenario.queue_lin ~key:"broken-rop" E.Mutant.maker ~threads:3 ~ops:5)

(* The mutant's bug is schedule-dependent: the plain min-clock schedule
   must pass, or the queue tests themselves would have caught it. *)
let test_broken_rop_passes_min_clock () =
  let scn = E.Scenario.queue_lin ~key:"broken-rop" E.Mutant.maker ~threads:3 ~ops:5 in
  match scn.scn_run ~strategy:Sim.Min_clock ~seed:1 ~faults:None ~record:None ~trace:None with
  | E.Scenario.Pass -> ()
  | E.Scenario.Fail msg -> Alcotest.failf "failed under min-clock: %s" msg

let test_clean_queues () =
  let scns = E.Scenario.queues ~threads:3 ~ops:5 () in
  let s = E.Search.search ~base_seed:5 ~budget:60 scns in
  Alcotest.(check int) "violations" 0 (List.length s.res_violations);
  Alcotest.(check int) "runs" 60 s.res_runs

let test_artifact_roundtrip () =
  let a =
    {
      E.Artifact.art_scenario = "queue:MichaelScott+ROP";
      art_threads = 3;
      art_ops = 5;
      art_seed = 12345;
      art_model = "sb";
      art_deviations = [ (3, 1); (17, 0); (29, 2) ];
      art_faults = Some (E.Search.light_faults 99);
      art_message = "memory fault: use-after-free at 0x2b\nsecond line";
      art_trace = [ "t0  @50  mem  read 0x8 -> 0"; "t1  @60  htm  commit" ];
    }
  in
  match E.Artifact.of_string (E.Artifact.to_string a) with
  | Ok b ->
    Alcotest.(check bool) "round-trips" true (a = b);
    let none = { a with art_faults = None; art_trace = []; art_deviations = [] } in
    (match E.Artifact.of_string (E.Artifact.to_string none) with
    | Ok c -> Alcotest.(check bool) "empty fields round-trip" true (none = c)
    | Error e -> Alcotest.failf "parse: %s" e)
  | Error e -> Alcotest.failf "parse: %s" e

let () =
  Alcotest.run "explore"
    [
      ( "strategies",
        [
          Alcotest.test_case "same seed, same decisions" `Quick test_strategy_determinism;
          Alcotest.test_case "Deviate [] is min-clock" `Quick test_deviate_empty_is_min_clock;
          Alcotest.test_case "deviations replay pick-for-pick" `Quick test_replay_invariant;
          QCheck_alcotest.to_alcotest prop_pct_change_points;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "racy counter: found, shrunk, replayed" `Quick test_racy_found;
          Alcotest.test_case "broken ROP: found, shrunk, replayed" `Quick test_broken_rop_found;
          Alcotest.test_case "broken ROP passes min-clock" `Quick test_broken_rop_passes_min_clock;
          Alcotest.test_case "clean queues: no violations" `Quick test_clean_queues;
          Alcotest.test_case "artifact round-trip" `Quick test_artifact_roundtrip;
        ] );
    ]
