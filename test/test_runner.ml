(* lib/runner tier-1 tests: the sweep determinism contract (output is
   byte-identical whatever [jobs] is), pool robustness under failure and
   oversubscription, and the shape differ that gates CI on BENCH
   artifacts. *)

let check = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Determinism: jobs must never show through.                          *)

(* The deterministic face of a sweep: the rendered result table plus the
   absorbed metrics with the wall-clock telemetry ([runner.*]) removed —
   exactly what lands in a BENCH artifact. *)
let queue_sweep ~jobs =
  let cells = Workload.Queue_bench.cells ~threads:[ 1; 2; 4 ] ~duration:20_000 () in
  let outcomes = Runner.Sweep.run ~jobs ~metrics:true cells in
  let reg = Obs.Metrics.create () in
  Runner.Sweep.absorb ~into:reg outcomes;
  let table =
    Obs.Json.to_string
      (Obs.Table.to_json (Workload.Queue_bench.to_table (Runner.Sweep.values outcomes)))
  in
  let metrics =
    List.filter
      (fun (name, _) -> not (Astring.String.is_prefix ~affix:"runner." name))
      (Obs.Metrics.snapshot reg)
  in
  (table, metrics)

let test_jobs_byte_identical () =
  let t1, m1 = queue_sweep ~jobs:1 in
  let t8, m8 = queue_sweep ~jobs:8 in
  Alcotest.(check string) "result table byte-identical across jobs" t1 t8;
  check "absorbed metrics identical across jobs" true (m1 = m8)

(* Scheduling order must not leak into any cell: running the cell list
   reversed gives every label the same value. *)
let test_cell_order_independent () =
  let cells = Workload.Queue_bench.cells ~threads:[ 1; 2 ] ~duration:20_000 () in
  let by_label cs =
    Runner.Sweep.run ~jobs:2 cs
    |> List.map (fun (oc : _ Runner.Sweep.outcome) ->
           match oc.oc_value with
           | Ok (r : Workload.Queue_bench.result) -> (oc.oc_label, r.throughput)
           | Error e -> raise e)
    |> List.sort compare
  in
  check "per-label results independent of cell order" true
    (by_label cells = by_label (List.rev cells))

(* ------------------------------------------------------------------ *)
(* Pool robustness.                                                    *)

exception Boom

let test_failing_cell_isolated () =
  let cells =
    [
      Runner.Cell.v ~label:"ok/1" (fun () -> 1);
      Runner.Cell.v ~label:"boom" (fun () -> raise Boom);
      Runner.Cell.v ~label:"ok/2" (fun () -> 2);
    ]
  in
  let outcomes = Runner.Sweep.run ~jobs:4 cells in
  (match Runner.Sweep.errors outcomes with
  | [ ("boom", Boom) ] -> ()
  | errs ->
    Alcotest.failf "expected exactly the boom cell in errors, got %d" (List.length errs));
  let oks =
    List.filter_map
      (fun (oc : _ Runner.Sweep.outcome) ->
        match oc.oc_value with Ok v -> Some v | Error _ -> None)
      outcomes
  in
  Alcotest.(check (list int)) "surviving cells completed in order" [ 1; 2 ] oks;
  Alcotest.check_raises "values re-raises the failure" Boom (fun () ->
      ignore (Runner.Sweep.values outcomes))

let test_oversubscribed_pool () =
  let cells =
    List.init 5 (fun i -> Runner.Cell.v ~label:(Printf.sprintf "c%d" i) (fun () -> i * i))
  in
  Alcotest.(check (list int))
    "more domains than cells still completes every cell, in order"
    [ 0; 1; 4; 9; 16 ]
    (Runner.Sweep.values (Runner.Sweep.run ~jobs:16 cells))

(* ------------------------------------------------------------------ *)
(* The shape differ.                                                   *)

let artifact tables =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str "bench/2");
      ("tables", Obs.Json.List (List.map Obs.Table.to_json tables));
    ]

(* A fig1-like shape: HTM behind MS at 2 threads, ahead from 4 on, so the
   HTM-vs-MS column pair carries one crossover at 2..4. *)
let base_table : Obs.Table.table =
  {
    title = "Figure 1";
    xlabel = "threads";
    unit = "ops/us";
    columns = [ "HTM"; "MS" ];
    rows =
      [
        ("2", [ Some 1.0; Some 1.2 ]);
        ("4", [ Some 2.0; Some 1.5 ]);
        ("8", [ Some 3.5; Some 1.6 ]);
      ];
  }

let kinds_of (r : Runner.Diff.report) =
  List.sort_uniq compare (List.map (fun (i : Runner.Diff.issue) -> i.i_kind) r.r_issues)

let test_diff_identity () =
  let a = artifact [ base_table ] in
  let r = Runner.Diff.diff ~old_artifact:a ~new_artifact:a () in
  check "identical artifacts: no regression" false (Runner.Diff.has_regression r);
  Alcotest.(check int) "one table compared" 1 r.r_tables;
  Alcotest.(check int) "six cells compared" 6 r.r_cells

(* A uniform 3 % drift must pass: shapes, not absolute values. *)
let test_diff_tolerates_uniform_drift () =
  let scaled =
    {
      base_table with
      rows =
        List.map
          (fun (x, vs) -> (x, List.map (Option.map (fun v -> v *. 1.03)) vs))
          base_table.rows;
    }
  in
  let r =
    Runner.Diff.diff ~old_artifact:(artifact [ base_table ])
      ~new_artifact:(artifact [ scaled ]) ()
  in
  check "3% uniform drift: no regression" false (Runner.Diff.has_regression r)

let test_diff_flags_ratio () =
  (* Double one cell but keep every ordering and the crossover intact. *)
  let bumped =
    { base_table with rows = [ ("2", [ Some 1.0; Some 1.2 ]);
                               ("4", [ Some 2.0; Some 1.5 ]);
                               ("8", [ Some 7.0; Some 1.6 ]) ] }
  in
  let r =
    Runner.Diff.diff ~old_artifact:(artifact [ base_table ])
      ~new_artifact:(artifact [ bumped ]) ()
  in
  check "2x single cell: regression" true (Runner.Diff.has_regression r);
  Alcotest.(check (list string)) "only the ratio check fires" [ "ratio" ] (kinds_of r)

let test_diff_flags_ordering_and_crossover () =
  (* Flip the 8-thread ordering (HTM drops below MS): with a wide ratio
     band only the ordering reversal and the moved crossover remain. *)
  let flipped =
    { base_table with rows = [ ("2", [ Some 1.0; Some 1.2 ]);
                               ("4", [ Some 2.0; Some 1.5 ]);
                               ("8", [ Some 1.0; Some 1.6 ]) ] }
  in
  let r =
    Runner.Diff.diff ~ratio_tol:10.0 ~old_artifact:(artifact [ base_table ])
      ~new_artifact:(artifact [ flipped ]) ()
  in
  check "flipped ordering: regression" true (Runner.Diff.has_regression r);
  Alcotest.(check (list string))
    "ordering and crossover checks fire" [ "crossover"; "ordering" ] (kinds_of r)

let test_diff_missing_table () =
  let r =
    Runner.Diff.diff ~old_artifact:(artifact [ base_table ]) ~new_artifact:(artifact [])
      ()
  in
  check "disappeared table: regression" true (Runner.Diff.has_regression r);
  Alcotest.(check (list string)) "missing-table fires" [ "missing-table" ] (kinds_of r)

let test_diff_column_rename () =
  let renamed = { base_table with columns = [ "HTM"; "MichaelScott" ] } in
  let r =
    Runner.Diff.diff ~old_artifact:(artifact [ base_table ])
      ~new_artifact:(artifact [ renamed ]) ()
  in
  Alcotest.(check (list string)) "columns check fires" [ "columns" ] (kinds_of r)

(* Golden rendering of the [bench diff] report: the exact text CI logs
   show, pinned byte for byte. *)
let test_diff_report_golden () =
  let a = artifact [ base_table ] in
  let r = Runner.Diff.diff ~old_artifact:a ~new_artifact:a () in
  let rendered = Format.asprintf "%a" Runner.Diff.print r in
  let expected =
    String.concat "\n"
      [
        "== bench diff: shape comparison [count] ==";
        "check            issues  ";
        "tables-compared  1.000   ";
        "cells-compared   6.000   ";
        "columns          0.000   ";
        "rows             0.000   ";
        "missing-value    0.000   ";
        "ratio            0.000   ";
        "ordering         0.000   ";
        "crossover        0.000   ";
        "missing-table    0.000   ";
        "new-table        0.000   ";
        "malformed        0.000   ";
        "";
        "shapes preserved";
        "";
      ]
  in
  Alcotest.(check string) "diff report renders exactly" expected rendered

let () =
  Alcotest.run "runner"
    [
      ( "determinism",
        [
          Alcotest.test_case "jobs 1 vs 8 byte-identical" `Slow test_jobs_byte_identical;
          Alcotest.test_case "cell order independent" `Slow test_cell_order_independent;
        ] );
      ( "pool",
        [
          Alcotest.test_case "failing cell isolated" `Quick test_failing_cell_isolated;
          Alcotest.test_case "oversubscribed pool" `Quick test_oversubscribed_pool;
        ] );
      ( "diff",
        [
          Alcotest.test_case "identity" `Quick test_diff_identity;
          Alcotest.test_case "uniform drift passes" `Quick test_diff_tolerates_uniform_drift;
          Alcotest.test_case "ratio flagged" `Quick test_diff_flags_ratio;
          Alcotest.test_case "ordering + crossover flagged" `Quick
            test_diff_flags_ordering_and_crossover;
          Alcotest.test_case "missing table flagged" `Quick test_diff_missing_table;
          Alcotest.test_case "column rename flagged" `Quick test_diff_column_rename;
          Alcotest.test_case "report golden" `Quick test_diff_report_golden;
        ] );
    ]
