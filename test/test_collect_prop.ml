(* Property-based single-threaded model checking: a random operation
   script is run against each collect implementation and against a purely
   functional model (handle slot -> value). With no concurrency the §2.3
   specification collapses to exact equality: every collect must return
   precisely the model's current bindings (as a multiset). *)

type op =
  | Register
  | Update of int  (* index into currently live handles *)
  | Deregister of int
  | Do_collect

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (3, return Register);
        (3, map (fun i -> Update i) (int_bound 100));
        (2, map (fun i -> Deregister i) (int_bound 100));
        (3, return Do_collect);
      ])

let script_gen = QCheck.Gen.(list_size (int_range 1 80) op_gen)

let print_op = function
  | Register -> "R"
  | Update i -> Printf.sprintf "U%d" i
  | Deregister i -> Printf.sprintf "D%d" i
  | Do_collect -> "C"

let arbitrary_script =
  QCheck.make ~print:(fun s -> String.concat ";" (List.map print_op s)) script_gen

(* Run the script; returns the list of collect snapshots (sorted). *)
let run_real (mk : Collect.Intf.maker) script =
  let mem = Simmem.create () in
  let htm = Htm.create mem in
  let boot = Sim.boot () in
  let cfg =
    { Collect.Intf.max_slots = 128; num_threads = 1; step = Collect.Intf.Fixed 4;
      min_size = 2 }
  in
  let inst = mk.make htm boot cfg in
  let snapshots = ref [] in
  Sim.run ~seed:1
    [|
      (fun ctx ->
        let handles = ref [||] in
        let next = ref 0 in
        let buf = Sim.Ibuf.create () in
        List.iter
          (fun op ->
            match op with
            | Register ->
              incr next;
              let h = inst.register ctx !next in
              handles := Array.append !handles [| h |]
            | Update i when Array.length !handles > 0 ->
              incr next;
              inst.update ctx !handles.(i mod Array.length !handles) !next
            | Deregister i when Array.length !handles > 0 ->
              let n = Array.length !handles in
              let k = i mod n in
              inst.deregister ctx !handles.(k);
              handles := Array.init (n - 1) (fun j -> if j < k then !handles.(j) else !handles.(j + 1))
            | Update _ | Deregister _ -> ()
            | Do_collect ->
              Sim.Ibuf.clear buf;
              inst.collect ctx buf;
              snapshots := List.sort compare (Sim.Ibuf.to_list buf) :: !snapshots)
          script)
    |];
  List.rev !snapshots

(* The functional model: a list of values in registration order. *)
let run_model script =
  let bindings = ref [||] in
  let next = ref 0 in
  let snapshots = ref [] in
  List.iter
    (fun op ->
      match op with
      | Register ->
        incr next;
        bindings := Array.append !bindings [| !next |]
      | Update i when Array.length !bindings > 0 ->
        incr next;
        !bindings.(i mod Array.length !bindings) <- !next
      | Deregister i when Array.length !bindings > 0 ->
        let n = Array.length !bindings in
        let k = i mod n in
        bindings := Array.init (n - 1) (fun j -> if j < k then !bindings.(j) else !bindings.(j + 1))
      | Update _ | Deregister _ -> ()
      | Do_collect ->
        snapshots := List.sort compare (Array.to_list !bindings) :: !snapshots)
    script;
  List.rev !snapshots

let prop_of mk =
  QCheck.Test.make
    ~name:(mk.Collect.Intf.algo_name ^ " sequentially equals the model")
    ~count:150 arbitrary_script
    (fun script -> run_real mk script = run_model script)

(* Concurrent runs checked against the §2.3 specification itself
   (Collect_spec via the explorer's scenario wrapper), under the default
   schedule and the two adversarial strategies. *)
let prop_concurrent_spec (mk : Collect.Intf.maker) (sname, count, strat) =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s meets the collect spec (%s)" mk.Collect.Intf.algo_name sname)
    ~count QCheck.small_int
    (fun seed ->
      let scn = Explore.Scenario.collect_spec mk ~threads:3 ~ops:4 in
      match
        scn.scn_run ~strategy:(strat seed) ~seed ~faults:None ~record:None ~trace:None
      with
      | Explore.Scenario.Pass -> true
      | Explore.Scenario.Fail msg -> QCheck.Test.fail_report msg)

let strategies =
  [
    ("min-clock", 6, fun _seed -> Sim.Min_clock);
    ("random-walk", 5, fun seed -> Sim.Random_walk { rw_seed = seed });
    ( "pct",
      5,
      fun seed -> Sim.Pct { pct_seed = seed; pct_depth = 3; pct_length = 1000 } );
  ]

(* StaticBaseline partitions slots by thread, so a single thread only owns
   a share of the budget; bound the live-handle count accordingly by
   filtering scripts is overkill — with max_slots 128 and one thread quota
   is 128, which the 80-op scripts cannot exceed. All makers qualify. *)
let () =
  Alcotest.run "collect-model"
    [
      ( "sequential",
        List.map (fun mk -> QCheck_alcotest.to_alcotest (prop_of mk))
          Collect.all_with_extensions );
      ( "concurrent-spec",
        List.concat_map
          (fun mk ->
            List.map
              (fun s -> QCheck_alcotest.to_alcotest (prop_concurrent_spec mk s))
              strategies)
          Collect.all_with_extensions );
    ]
