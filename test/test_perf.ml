(* The zero-allocation contract of the flat simulator core, and the
   determinism contract of the sweep runner that the flattening must not
   disturb.

   The allocation tests measure [Gc.minor_words] deltas around complete
   benchmark cells run with no tap, tracer, profiler or forensics
   installed. They are amortized bounds, not literal zeroes: thread spawn,
   machine construction and the workload's own bookkeeping (the ops
   arrays, the result record) allocate, but the per-access cost must not —
   a heap word per simulated access would put tens of words per operation
   on the GC and show up as thousands of words per thousand accesses. *)

let run_fig1_cell ~threads ~duration =
  let mk = Option.get (Hqueue.find_maker "HTM") in
  Workload.Queue_bench.run_one mk ~threads ~duration ~prefill:64 ~seed:11

(* Minor words allocated by [f], with the workload warmed so one-time
   lazy structures (domain-local state, grown pools) are already built. *)
let minor_delta f =
  ignore (f ());
  ignore (f ());
  let w0 = Gc.minor_words () in
  let r = f () in
  let w1 = Gc.minor_words () in
  (r, w1 -. w0)

(* Simulated memory accesses performed by [f], from a private registry. *)
let accesses_of f =
  let reg = Obs.Metrics.create () in
  let saved = Workload.Driver.obs () in
  Workload.Driver.set_obs { saved with obs_metrics = Some reg };
  ignore (f ());
  Workload.Driver.set_obs saved;
  let snap = Obs.Metrics.snapshot reg in
  List.fold_left
    (fun acc name ->
      match List.assoc_opt ("mem." ^ name) snap with
      | Some (Obs.Metrics.Counter { total; _ }) -> acc + total
      | _ -> acc)
    0
    [ "reads"; "writes"; "atomics"; "allocs"; "frees" ]

let test_zero_alloc_per_access () =
  Workload.Driver.set_obs Workload.Driver.no_obs;
  let f () = run_fig1_cell ~threads:16 ~duration:50_000 in
  let accesses = accesses_of f in
  Alcotest.(check bool) "cell performs real work" true (accesses > 1_000);
  let _, words = minor_delta f in
  (* The non-access overhead (spawn, malloc'd queue nodes' labels, the
     result) is bounded by a small constant per thread and operation;
     budget half a word per access on top and the old per-access cost
     (event records, Queue.t cells, closures: tens of words each) still
     trips the assertion with an order of magnitude to spare. *)
  let budget = 50_000.0 +. (0.5 *. float_of_int accesses) in
  if words > budget then
    Alcotest.failf
      "fig1 cell allocated %.0f minor words for %d simulated accesses (budget %.0f): \
       the no-observer hot path is allocating again"
      words accesses budget

let test_zero_alloc_single_thread () =
  Workload.Driver.set_obs Workload.Driver.no_obs;
  (* One thread, no contention, no retries: the strictest amortized bound.
     Everything here is steady-state loop; the budget is purely the
     per-cell fixed cost. *)
  let f () = run_fig1_cell ~threads:1 ~duration:100_000 in
  let accesses = accesses_of f in
  Alcotest.(check bool) "cell performs real work" true (accesses > 500);
  let _, words = minor_delta f in
  let budget = 20_000.0 in
  if words > budget then
    Alcotest.failf
      "single-thread fig1 cell allocated %.0f minor words for %d accesses (budget %.0f)"
      words accesses budget

(* The determinism contract: the same cells produce byte-identical tables
   whatever --jobs is. QCheck varies duration and seed; equality is on
   the rendered table (the exact bytes the artifact embeds). *)
let render tables =
  let buf = Buffer.create 512 in
  let ppf = Format.formatter_of_buffer buf in
  List.iter (Workload.Report.print ppf) tables;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let test_jobs_byte_identity =
  QCheck.Test.make ~name:"fig1 tables byte-identical at --jobs 1 vs 8" ~count:4
    QCheck.(pair (int_range 10_000 40_000) (int_range 1 1000))
    (fun (duration, seed) ->
      let run jobs =
        let outcomes =
          Runner.Sweep.run ~jobs
            (Workload.Queue_bench.cells
               ~threads:[ 2; 8 ] ~duration ~seed ())
        in
        render [ Workload.Queue_bench.to_table (Runner.Sweep.values outcomes) ]
      in
      String.equal (run 1) (run 8))

let test_scale_jobs_byte_identity () =
  (* The scale cells at a reduced thread ladder: wide machines must obey
     the same contract. *)
  let run jobs =
    let outcomes =
      Runner.Sweep.run ~jobs
        (Workload.Scale_bench.cells ~threads:[ 16; 64 ] ~duration:20_000 ~seed:9 ())
    in
    render (Workload.Scale_bench.to_tables (Runner.Sweep.values outcomes))
  in
  Alcotest.(check string) "scale tables identical at jobs 1 vs 8" (run 1) (run 8)

let () =
  Alcotest.run "perf"
    [
      ( "zero-alloc",
        [
          Alcotest.test_case "fig1 x16 cell, no observers" `Quick
            test_zero_alloc_per_access;
          Alcotest.test_case "fig1 x1 cell, strict budget" `Quick
            test_zero_alloc_single_thread;
        ] );
      ( "determinism",
        [
          QCheck_alcotest.to_alcotest test_jobs_byte_identity;
          Alcotest.test_case "scale cells, jobs 1 vs 8" `Quick
            test_scale_jobs_byte_identity;
        ] );
    ]
