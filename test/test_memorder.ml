(* The weak-memory plane: litmus goldens per Sim.Memmodel variant
   (exhaustively enumerated schedules), fence/drain unit semantics on the
   raw Simmem store buffers, and the two closure properties — fencing
   every store recovers sc outcomes, and the memorder sweep is
   byte-identical at any --jobs. *)

module E = Explore

let model name =
  match Sim.Memmodel.of_string name with
  | Some m -> m
  | None -> Alcotest.failf "unknown model %s" name

let sc = model "sc"
let sb = model "sb"
let sb_bypass = model "sb-bypass"
let sb_fence_nop = model "sb-fence-nop"

let outcomes ~model prog =
  match E.Litmus.enumerate ~model prog with
  | Ok o -> o
  | Error e -> Alcotest.fail e

let check_outcomes name ~model:m prog expected =
  Alcotest.(check (list (list int))) name expected (outcomes ~model:m prog)

(* ------------------------------------------------------------------ *)
(* Litmus goldens. The full 24-cell matrix: outcome sets are sorted and
   exhaustive, so equality pins both the allowed and the forbidden side
   of every fingerprint (the table in docs/MEMORY_ORDERING.md).        *)
(* ------------------------------------------------------------------ *)

(* SB: (0,0) — both loads miss both stores — reachable iff buffered.
   Under the buffered variants (1,1) drops out instead: stores drain
   only at sync points or the exit flush, both after the program-order
   loads. *)
let test_sb () =
  check_outcomes "sc" ~model:sc E.Litmus.sb [ [ 0; 1 ]; [ 1; 0 ]; [ 1; 1 ] ];
  List.iter
    (fun m ->
      check_outcomes "buffered" ~model:m E.Litmus.sb [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 0 ] ])
    [ sb; sb_bypass; sb_fence_nop ]

(* SB+fence: the TSO repair. Real fences restore the sc outcome set;
   the fence-nop control keeps the relaxed (0,0), proving the harness
   tests fence semantics rather than accidental timing. *)
let test_sb_fenced () =
  let sc_set = [ [ 0; 1 ]; [ 1; 0 ]; [ 1; 1 ] ] in
  List.iter
    (fun m -> check_outcomes "fenced" ~model:m E.Litmus.sb_fenced sc_set)
    [ sc; sb; sb_bypass ];
  check_outcomes "fence-nop" ~model:sb_fence_nop E.Litmus.sb_fenced
    [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 0 ] ]

(* MP/LB/CoRR: forbidden under every variant — a FIFO store buffer never
   reorders store-store, load-store, or same-location reads. *)
let test_mp_lb_corr () =
  List.iter
    (fun m ->
      check_outcomes "MP" ~model:m E.Litmus.mp [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 1 ] ];
      check_outcomes "LB" ~model:m E.Litmus.lb [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 0 ] ];
      check_outcomes "CoRR" ~model:m E.Litmus.corr [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 1 ] ])
    [ sc; sb; sb_bypass; sb_fence_nop ]

(* RoW: store-to-load forwarding. Only sb-bypass (buffering without
   forwarding) reads the stale 0. *)
let test_row () =
  List.iter
    (fun m -> check_outcomes "forwarding" ~model:m E.Litmus.row [ [ 1 ] ])
    [ sc; sb; sb_fence_nop ];
  check_outcomes "bypass" ~model:sb_bypass E.Litmus.row [ [ 0 ] ]

(* ------------------------------------------------------------------ *)
(* Fence/drain unit semantics on the raw store buffer.                 *)
(* ------------------------------------------------------------------ *)

let with_thread ?(model = sb) f =
  let mem = Simmem.create ~model () in
  let boot = Sim.boot () in
  let addrs = Array.init 12 (fun _ -> Simmem.malloc mem boot 2) in
  Sim.run ~seed:0 [| (fun ctx -> f mem addrs ctx) |];
  (mem, boot, addrs)

(* A buffered store is invisible in memory until a fence drains it; the
   buffer is FIFO and [pending_stores] tracks its depth. *)
let test_fence_drains () =
  let observed = ref [] in
  let _ =
    with_thread (fun mem a ctx ->
        Simmem.write mem ctx a.(0) 7;
        Simmem.write mem ctx a.(1) 8;
        observed :=
          [ Simmem.pending_stores mem ctx;
            Simmem.peek mem a.(0); Simmem.peek mem a.(1) ];
        Sim.fence ctx;
        observed :=
          !observed
          @ [ Simmem.pending_stores mem ctx;
              Simmem.peek mem a.(0); Simmem.peek mem a.(1) ])
  in
  Alcotest.(check (list int)) "buffered then drained" [ 2; 0; 0; 0; 7; 8 ] !observed

(* CAS and fetch_add are implicit full fences: the prior buffered store
   must be in memory before the atomic executes. *)
let test_atomics_fence () =
  let observed = ref [] in
  let _ =
    with_thread (fun mem a ctx ->
        Simmem.write mem ctx a.(0) 5;
        ignore (Simmem.cas mem ctx a.(1) ~expected:0 ~desired:1);
        observed := [ Simmem.pending_stores mem ctx; Simmem.peek mem a.(0) ];
        Simmem.write mem ctx a.(2) 6;
        ignore (Simmem.fetch_add mem ctx a.(3) 1);
        observed :=
          !observed @ [ Simmem.pending_stores mem ctx; Simmem.peek mem a.(2) ])
  in
  Alcotest.(check (list int)) "atomics drained" [ 0; 5; 0; 6 ] !observed

(* Thread exit flushes the buffer (TSO cores do not lose buffered stores
   on halt): after Sim.run returns, everything is in memory. *)
let test_terminal_drain () =
  let mem, _, a =
    with_thread (fun mem a ctx ->
        Simmem.write mem ctx a.(4) 11;
        Simmem.write mem ctx a.(5) 12)
  in
  Alcotest.(check (list int))
    "exit flushed" [ 11; 12 ]
    [ Simmem.peek mem a.(4); Simmem.peek mem a.(5) ]

(* A bounded buffer drains its oldest entry on overflow: depth is capped
   at sb_depth and the oldest store becomes visible first (FIFO). *)
let test_capacity_drain () =
  let depth = sb.Sim.Memmodel.sb_depth in
  let observed = ref [] in
  let _ =
    with_thread (fun mem a ctx ->
        for i = 0 to depth do
          Simmem.write mem ctx a.(i) (100 + i)
        done;
        observed := [ Simmem.pending_stores mem ctx; Simmem.peek mem a.(0) ])
  in
  Alcotest.(check (list int)) "oldest drained at capacity" [ depth; 100 ] !observed

(* Draining a store whose word was freed in the meantime is the module's
   whole point: the visibility step faults, exactly like the hardware
   store would corrupt freed memory. *)
let test_drain_uaf_faults () =
  (* free is itself a fence for the caller: write-then-free in one thread
     drains first, legally. *)
  let mem = Simmem.create ~model:sb () in
  let addr = Simmem.malloc mem (Sim.boot ()) 2 in
  Sim.run ~seed:0
    [|
      (fun ctx ->
        Simmem.write mem ctx addr 9;
        Simmem.free mem ctx addr);
    |];
  (* But another thread freeing the word while the store still sits in
     the writer's buffer makes the writer's own drain the fault point —
     the exact mechanism behind the ms-nofence hunt. *)
  let mem2 = Simmem.create ~model:sb () in
  let boot2 = Sim.boot () in
  let addr2 = Simmem.malloc mem2 boot2 2 in
  let flag = Simmem.malloc mem2 boot2 2 in
  let faulted = ref false in
  (try
     Sim.run ~seed:0
       [|
         (fun ctx ->
           Simmem.write mem2 ctx addr2 9;
           while Simmem.read mem2 ctx flag = 0 do
             Sim.tick ctx 10
           done;
           Sim.fence ctx);
         (fun ctx ->
           Simmem.free mem2 ctx addr2;
           ignore (Simmem.cas mem2 ctx flag ~expected:0 ~desired:1));
       |]
   with Simmem.Fault _ -> faulted := true);
  Alcotest.(check bool) "drain into freed word faults" true !faulted

(* sc is the degenerate model: no writes are ever pending, and a fence is
   pure cost. *)
let test_sc_never_buffers () =
  let observed = ref (-1) in
  let _ =
    with_thread ~model:sc (fun mem a ctx ->
        Simmem.write mem ctx a.(0) 3;
        observed := Simmem.pending_stores mem ctx;
        Alcotest.(check int) "visible at once" 3 (Simmem.peek mem a.(0)))
  in
  Alcotest.(check int) "nothing pending" 0 !observed

(* ------------------------------------------------------------------ *)
(* Properties: fence-closure and determinism.                          *)
(* ------------------------------------------------------------------ *)

(* Under sb with a fence after every store, a straight-line two-thread
   program's outcome set equals sc's. Programs are random interleavings
   of writes and reads over 4 locations, derived from a seed. *)
let prop_fenced_sb_equals_sc =
  QCheck.Test.make ~name:"sb with a fence after every store == sc" ~count:30
    QCheck.(small_int)
    (fun seed ->
      let prog ~fenced =
        {
          E.Litmus.prog_name = "random";
          prog_setup =
            (fun ~model ->
              let mem = Simmem.create ~model () in
              let boot = Sim.boot () in
              let locs = Array.init 3 (fun _ -> Simmem.malloc mem boot 2) in
              let regs = Array.make 4 (-1) in
              let rng = Random.State.make [| seed |] in
              let body tbase _tid ctx =
                for i = 0 to 1 do
                  let l = locs.(Random.State.int rng 3) in
                  if Random.State.bool rng then begin
                    Simmem.write mem ctx l (tbase + i + 1);
                    if fenced then Sim.fence ctx
                  end
                  else regs.(tbase + i) <- Simmem.read mem ctx l
                done
              in
              ( [| body 0 0; body 2 1 |],
                fun () -> Array.to_list regs ));
        }
      in
      (* The RNG must deal the same program to both models: rebuild the
         program per enumerate call, seeding from scratch each run. *)
      let run ~fenced ~model =
        match E.Litmus.enumerate ~budget:60_000 ~model (prog ~fenced) with
        | Ok o -> o
        | Error e -> QCheck.Test.fail_report e
      in
      run ~fenced:true ~model:sb = run ~fenced:true ~model:sc)

(* Same seed and model => same decision string, and the memorder bench
   cells are byte-identical at --jobs 1 and --jobs 4 (cells are
   independent pure functions; the sweep preserves order). *)
let test_determinism () =
  let scn =
    match E.Scenario.build ~key:"ms-nofence" ~model:sb ~threads:3 ~ops:3 () with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let decisions () =
    let r = Sim.recorder () in
    ignore
      (scn.scn_run
         ~strategy:(Sim.Pct { pct_seed = 3; pct_depth = 3; pct_length = 200 })
         ~seed:11 ~faults:None ~record:(Some r) ~trace:None);
    Sim.decision_string r
  in
  Alcotest.(check string) "same seed+model => same schedule" (decisions ())
    (decisions ());
  let fingerprints jobs =
    Runner.Sweep.run ~jobs (Workload.Memorder_bench.cells ~seed:1 ())
    |> Runner.Sweep.values
    |> List.map (function
         | Workload.Memorder_bench.Search s ->
           Printf.sprintf "%s/%s:%d:%d:%d" s.ms_scenario s.ms_model s.ms_runs
             s.ms_violations s.ms_first_violation
         | Workload.Memorder_bench.Litmus l ->
           Printf.sprintf "%s/%s:%d:%b" l.lt_program l.lt_model l.lt_outcomes
             l.lt_relaxed)
  in
  Alcotest.(check (list string))
    "memorder cells byte-identical across jobs" (fingerprints 1) (fingerprints 4)

(* ------------------------------------------------------------------ *)
(* The headline claims, as tests: the fence-dropping mutant is caught
   under sb and clean under sc; the HTM queue is clean everywhere.     *)
(* ------------------------------------------------------------------ *)

let search ~key ~model:m ~budget =
  let scn =
    match E.Scenario.build ~key ~model:m ~threads:3 ~ops:4 () with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  E.Search.search ~base_seed:1 ~max_violations:1 ~budget [ scn ]

let test_nofence_caught_under_sb () =
  let s = search ~key:"ms-nofence" ~model:sb ~budget:800 in
  match s.res_violations with
  | [] -> Alcotest.fail "no violation found in ms-nofence under sb within 800 runs"
  | v :: _ ->
    Alcotest.(check bool) "replayed" true v.vio_replayed;
    Alcotest.(check string) "artifact records the model" "sb"
      v.vio_artifact.art_model

let test_nofence_clean_under_sc () =
  let s = search ~key:"ms-nofence" ~model:sc ~budget:800 in
  Alcotest.(check int) "violations" 0 (List.length s.res_violations)

let test_htm_clean_under_all () =
  List.iter
    (fun (name, m) ->
      let s = search ~key:"htm-memorder" ~model:m ~budget:150 in
      Alcotest.(check int) (Printf.sprintf "violations under %s" name) 0
        (List.length s.res_violations))
    Sim.Memmodel.all

let () =
  Alcotest.run "memorder"
    [
      ( "litmus",
        [
          Alcotest.test_case "SB" `Quick test_sb;
          Alcotest.test_case "SB+fence" `Quick test_sb_fenced;
          Alcotest.test_case "MP/LB/CoRR" `Quick test_mp_lb_corr;
          Alcotest.test_case "RoW" `Quick test_row;
        ] );
      ( "fences",
        [
          Alcotest.test_case "fence drains" `Quick test_fence_drains;
          Alcotest.test_case "atomics are fences" `Quick test_atomics_fence;
          Alcotest.test_case "exit flushes" `Quick test_terminal_drain;
          Alcotest.test_case "capacity drain" `Quick test_capacity_drain;
          Alcotest.test_case "drain UAF faults" `Quick test_drain_uaf_faults;
          Alcotest.test_case "sc never buffers" `Quick test_sc_never_buffers;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_fenced_sb_equals_sc;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "hunting",
        [
          Alcotest.test_case "ms-nofence caught under sb" `Quick
            test_nofence_caught_under_sb;
          Alcotest.test_case "ms-nofence clean under sc" `Quick
            test_nofence_clean_under_sc;
          Alcotest.test_case "htm clean under every model" `Quick
            test_htm_clean_under_all;
        ] );
    ]
