(* Tests for the fault-injection subsystem: deterministic fault plans,
   scheduler-level kills and stalls, the liveness watchdog, crash-safe TLE,
   spurious aborts and the retry budget — and the survivability of every
   algorithm under the chaos workloads. *)

let contains s affix = Astring.String.is_infix ~affix s

(* ------------------------------------------------------------------ *)
(* Fault plans                                                         *)

let test_trace_determinism () =
  let spec =
    { Sim.Fault.none with fault_seed = 99; stall_rate = 0.02; stall_cycles = 500;
      kill_rate = 0.001; max_random_kills = 2 }
  in
  let trace () =
    let faults = Sim.Fault.make spec in
    Sim.run ~seed:5 ~faults
      (Array.make 4 (fun ctx ->
           for _ = 1 to 500 do
             Sim.tick ctx (1 + Sim.Rng.int (Sim.rng ctx) 20)
           done));
    Sim.Fault.trace faults
  in
  let t1 = trace () in
  Alcotest.(check bool) "something was injected" true (String.length t1 > 0);
  Alcotest.(check string) "same spec, same program, same fault trace" t1 (trace ())

let test_scheduled_kill () =
  let faults = Sim.Fault.make { Sim.Fault.none with kills_at = [ (1, 5_000) ] } in
  let completed = Array.make 3 false in
  Sim.run ~seed:6 ~faults
    (Array.init 3 (fun i ->
         fun ctx ->
           while Sim.clock ctx < 20_000 do
             Sim.tick ctx 10
           done;
           completed.(i) <- true));
  Alcotest.(check bool) "thread 0 survives" true completed.(0);
  Alcotest.(check bool) "thread 1 killed" false completed.(1);
  Alcotest.(check bool) "thread 2 survives" true completed.(2);
  Alcotest.(check int) "exactly one kill" 1 (Sim.Fault.kills faults);
  (match Sim.Fault.events faults with
   | [ { Sim.Fault.ev_tid = 1; ev_clock; ev_kind = Sim.Fault.Killed } ] ->
     Alcotest.(check bool) "kill at first point past 5000" true
       (ev_clock >= 5_000 && ev_clock < 5_100)
   | _ -> Alcotest.fail "expected exactly one kill event on thread 1")

let test_random_kill_budget () =
  let faults =
    Sim.Fault.make
      { Sim.Fault.none with fault_seed = 3; kill_rate = 0.5; max_random_kills = 2 }
  in
  let completed = ref 0 in
  Sim.run ~seed:7 ~faults
    (Array.make 5 (fun ctx ->
         for _ = 1 to 100 do
           Sim.tick ctx 10
         done;
         incr completed));
  Alcotest.(check int) "kill budget exhausted exactly" 2 (Sim.Fault.kills faults);
  Alcotest.(check int) "everyone else survives" 3 !completed

let test_stalls () =
  let faults =
    Sim.Fault.make
      { Sim.Fault.none with fault_seed = 4; stall_rate = 0.05; stall_cycles = 1_000 }
  in
  let completed = ref 0 in
  Sim.run ~seed:8 ~faults
    (Array.make 3 (fun ctx ->
         for _ = 1 to 300 do
           Sim.tick ctx 10
         done;
         incr completed));
  Alcotest.(check int) "stalls do not kill anyone" 3 !completed;
  Alcotest.(check bool) "stalls happened" true (Sim.Fault.stalls faults > 0);
  List.iter
    (fun (e : Sim.Fault.event) ->
      match e.Sim.Fault.ev_kind with
      | Sim.Fault.Stalled d ->
        Alcotest.(check bool) "stall duration in [500,1000)" true (d >= 500 && d < 1_000)
      | _ -> ())
    (Sim.Fault.events faults)

let test_shield_suppresses_faults () =
  let faults = Sim.Fault.make { Sim.Fault.none with kills_at = [ (0, 100) ] } in
  let reached = ref 0 in
  let after_shield = ref false in
  Sim.run ~seed:9 ~faults
    [|
      (fun ctx ->
        Sim.shield ctx (fun () ->
            while Sim.clock ctx < 5_000 do
              Sim.tick ctx 10
            done;
            reached := Sim.clock ctx);
        Sim.tick ctx 10;
        after_shield := true);
    |];
  Alcotest.(check bool) "shielded section ran to completion" true (!reached >= 5_000);
  Alcotest.(check bool) "kill fired at the first unshielded point" false !after_shield;
  Alcotest.(check int) "one kill" 1 (Sim.Fault.kills faults)

(* ------------------------------------------------------------------ *)
(* Watchdog                                                            *)

let test_watchdog_fires () =
  (* Two spinning threads: yields happen, the scheduler keeps picking, and
     no one ever notes progress. *)
  let spin ctx = while true do Sim.tick ctx 10 done in
  match
    Sim.run ~seed:10 ~watchdog:1_000
      ~diag:(fun () -> "  extra-diag-section\n")
      [| spin; spin |]
  with
  | () -> Alcotest.fail "watchdog never fired on a progress-free spin"
  | exception Sim.Watchdog msg ->
    Alcotest.(check bool) "diagnostic names thread 0" true (contains msg "thread 0");
    Alcotest.(check bool) "diagnostic names thread 1" true (contains msg "thread 1");
    Alcotest.(check bool) "caller diag section included" true
      (contains msg "extra-diag-section")

let test_watchdog_silent_with_progress () =
  let worker ctx =
    while Sim.clock ctx < 50_000 do
      Sim.tick ctx 10;
      Sim.note_progress ctx
    done
  in
  Sim.run ~seed:11 ~watchdog:1_000 [| worker; worker |];
  Alcotest.(check pass) "completed without Watchdog" () ()

(* ------------------------------------------------------------------ *)
(* HTM under faults                                                    *)

let test_crash_safe_tle () =
  (* Thread 0 dies inside the TLE-locked fallback block; the shielded
     release must still free the global lock, or thread 1 spins forever. *)
  let mem = Simmem.create () in
  let htm = Htm.create ~config:{ Htm.default_config with tle = Htm.Tle_after 0 } mem in
  let boot = Sim.boot () in
  let word = Simmem.malloc mem boot 2 in
  let faults = Sim.Fault.make { Sim.Fault.none with kills_at = [ (0, 1_000) ] } in
  let survivor = ref false in
  let holder_survived = ref false in
  Sim.run ~seed:12 ~faults ~watchdog:500_000
    [|
      (fun ctx ->
        Htm.atomic htm ctx (fun tx ->
            for _ = 1 to 200 do
              Htm.write tx word (Htm.read tx word + 1)
            done);
        holder_survived := true);
      (fun ctx ->
        Sim.advance_to ctx 50_000;
        Htm.atomic htm ctx (fun tx -> Htm.write tx word 42);
        survivor := true);
    |];
  Alcotest.(check bool) "holder was killed mid-block" false !holder_survived;
  Alcotest.(check bool) "survivor acquired the lock and committed" true !survivor;
  Alcotest.(check int) "survivor's write visible" 42 (Simmem.read mem boot word);
  Alcotest.(check int) "holder did die" 1 (Sim.Fault.kills faults)

let test_spurious_aborts_escalate_to_lock () =
  let mem = Simmem.create () in
  let htm = Htm.create ~config:{ Htm.default_config with tle = Htm.Tle_after 2 } mem in
  let boot = Sim.boot () in
  let word = Simmem.malloc mem boot 2 in
  let faults = Sim.Fault.make { Sim.Fault.none with spurious_abort_rate = 1.0 } in
  Sim.run ~seed:13 ~faults ~watchdog:1_000_000
    [|
      (fun ctx ->
        for _ = 1 to 5 do
          Htm.atomic htm ctx (fun tx -> Htm.write tx word (Htm.read tx word + 1))
        done);
    |];
  let st = Htm.stats htm in
  Alcotest.(check int) "every op went through the lock" 5 st.lock_fallbacks;
  Alcotest.(check int) "no hardware commits at rate 1.0" 0 st.commits;
  Alcotest.(check int) "two spurious aborts per op" 10 st.aborts_spurious;
  Alcotest.(check int) "escalation chain recorded" 2 st.max_consecutive_aborts;
  Alcotest.(check int) "all ops applied" 5 (Simmem.read mem boot word);
  Alcotest.(check int) "plan log agrees" 10 (Sim.Fault.spurious_fired faults)

let test_retry_exhausted () =
  let mem = Simmem.create () in
  let htm = Htm.create ~config:{ Htm.default_config with max_attempts = 3 } mem in
  let boot = Sim.boot () in
  let word = Simmem.malloc mem boot 2 in
  let faults = Sim.Fault.make { Sim.Fault.none with spurious_abort_rate = 1.0 } in
  let raised = ref false in
  (match
     Sim.run ~seed:14 ~faults
       [| (fun ctx -> Htm.atomic htm ctx (fun tx -> Htm.write tx word 1)) |]
   with
  | () -> ()
  | exception Htm.Retry_exhausted Htm.Spurious -> raised := true);
  Alcotest.(check bool) "budget of 3 exhausted with the last reason" true !raised;
  Alcotest.(check int) "three attempts were made" 3 (Htm.stats htm).aborts_spurious

let test_commit_histogram_totals () =
  let mem = Simmem.create () in
  let htm = Htm.create mem in
  let boot = Sim.boot () in
  let words = Array.init 2 (fun _ -> Simmem.malloc mem boot 2) in
  Sim.run ~seed:15
    (Array.init 2 (fun i ->
         fun ctx ->
           for _ = 1 to 50 do
             Htm.atomic htm ctx (fun tx ->
                 Htm.write tx words.(i) (Htm.read tx words.(i) + 1))
           done));
  let st = Htm.stats htm in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 (Htm.commit_cycles_histogram htm) in
  Alcotest.(check int) "histogram covers every completed atomic"
    (st.commits + st.lock_fallbacks) total;
  Alcotest.(check int) "100 atomics ran" 100 st.commits;
  Htm.reset_stats htm;
  Alcotest.(check (list (pair int int))) "reset clears the histogram" []
    (Htm.commit_cycles_histogram htm)

(* ------------------------------------------------------------------ *)
(* Survivability of the full algorithm suite                           *)

let test_collect_crash_survivability () =
  List.iter
    (fun (mk : Collect.Intf.maker) ->
      let r = Workload.Chaos_bench.collect_crash_one mk in
      Alcotest.(check int) (mk.algo_name ^ ": all scheduled kills fired") 3 r.cr_kills;
      Alcotest.(check bool) (mk.algo_name ^ ": survivors kept operating") true (r.cr_ops > 0);
      Alcotest.(check bool)
        (mk.algo_name ^ ": collects were spec-checked") true
        (r.cr_checked_collects > 0);
      let pinned = Workload.Chaos_bench.cr_crash_pinned r in
      match mk.algo_name with
      | "ListHoHRC" | "DynamicBaseline" ->
        Alcotest.(check bool)
          (mk.algo_name ^ ": crashed readers pin memory permanently") true (pinned > 0)
      | _ ->
        (* The HTM algorithms leave at most the dead threads' handle cells
           (<= 2 words each); no node is ever pinned by a crashed reader. *)
        Alcotest.(check bool)
          (mk.algo_name ^ ": residue bounded by the dead handles") true
          (pinned >= 0 && pinned <= 2 * r.cr_kills))
    Collect.all_with_extensions

let test_collect_crash_determinism () =
  let mk = Option.get (Collect.find_maker "ArrayDynAppendDereg") in
  let r1 = Workload.Chaos_bench.collect_crash_one mk in
  let r2 = Workload.Chaos_bench.collect_crash_one mk in
  Alcotest.(check string) "fault traces identical" r1.cr_fault_trace r2.cr_fault_trace;
  Alcotest.(check bool) "full results identical" true (r1 = r2)

let test_queue_crash_survivability () =
  List.iter
    (fun (mk : Hqueue.Intf.maker) ->
      let r = Workload.Chaos_bench.queue_crash_one mk in
      Alcotest.(check int) (mk.queue_name ^ ": kills fired") 2 r.qr_kills;
      Alcotest.(check bool)
        (mk.queue_name ^ ": losses bounded by crashed ops") true (r.qr_lost <= r.qr_kills);
      Alcotest.(check bool)
        (mk.queue_name ^ ": no duplicates/fabrications") true
        (r.qr_dequeued <= r.qr_enqueued))
    Hqueue.all_with_extensions

let test_spurious_survivability () =
  List.iter
    (fun name ->
      let mk = Option.get (Collect.find_maker name) in
      let r = Workload.Chaos_bench.spurious_one ~rate:0.3 mk in
      Alcotest.(check bool) (name ^ ": operated under 30% spurious aborts") true (r.sp_ops > 0);
      Alcotest.(check bool) (name ^ ": spurious aborts recorded") true (r.sp_spurious > 0);
      Alcotest.(check bool)
        (name ^ ": collects spec-checked") true (r.sp_checked_collects > 0))
    [ "ListHoHRC"; "ListFastCollect"; "ArrayDynAppendDereg" ];
  let base = Option.get (Collect.find_maker "StaticBaseline") in
  let r = Workload.Chaos_bench.spurious_one ~rate:0.3 base in
  Alcotest.(check int) "non-HTM baseline never aborts" 0 r.sp_spurious

let () =
  Alcotest.run "faults"
    [
      ( "plan",
        [
          Alcotest.test_case "trace determinism" `Quick test_trace_determinism;
          Alcotest.test_case "scheduled kill" `Quick test_scheduled_kill;
          Alcotest.test_case "random kill budget" `Quick test_random_kill_budget;
          Alcotest.test_case "stalls" `Quick test_stalls;
          Alcotest.test_case "shield suppresses faults" `Quick test_shield_suppresses_faults;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "fires with diagnostic" `Quick test_watchdog_fires;
          Alcotest.test_case "silent with progress" `Quick test_watchdog_silent_with_progress;
        ] );
      ( "htm",
        [
          Alcotest.test_case "crash-safe TLE release" `Quick test_crash_safe_tle;
          Alcotest.test_case "spurious aborts escalate" `Quick test_spurious_aborts_escalate_to_lock;
          Alcotest.test_case "retry budget exhausted" `Quick test_retry_exhausted;
          Alcotest.test_case "commit histogram totals" `Quick test_commit_histogram_totals;
        ] );
      ( "survivability",
        [
          Alcotest.test_case "collect algorithms vs crashes" `Slow test_collect_crash_survivability;
          Alcotest.test_case "chaos run determinism" `Slow test_collect_crash_determinism;
          Alcotest.test_case "queues vs crashes" `Slow test_queue_crash_survivability;
          Alcotest.test_case "all live under spurious aborts" `Slow test_spurious_survivability;
        ] );
    ]
