(* Allocator invariants for the sharded arena allocator (docs/ALLOCATION.md):
   overlap-freedom and stats/model agreement under random cross-thread
   malloc/free traffic on every policy, the remote-free ring's two drain
   points (owner malloc, fence), exhaustive-schedule integrity of the
   remote-reuse path via the litmus enumerator, the seeded premature-free
   EBR mutant, --jobs byte-identity of the placement sweep, and the
   zero-GC-allocation budget of the arena hot path. *)

module E = Explore

let all_policies =
  [
    Simmem.Shared_lifo;
    Simmem.Arena Simmem.Line_packed;
    Simmem.Arena Simmem.Line_isolated;
    Simmem.Arena Simmem.Cache_index_aware;
  ]

(* ------------------------------------------------------------------ *)
(* Random malloc/free traffic, checked against a model.               *)
(* ------------------------------------------------------------------ *)

(* Three threads malloc random sizes and free blocks from a shared pool —
   including blocks other threads allocated, so the remote-free path runs
   constantly. A shared OCaml-level model (base -> words) is safe because
   the simulator is cooperative: fibers only switch inside Simmem calls,
   never between a malloc's return and the model update. *)
let exercise ~policy ~threads ~ops ~seed =
  let mem = Simmem.create ~alloc:policy () in
  let live = Hashtbl.create 64 in
  let pool = ref [] in
  let overlaps base words b w = base < b + w && b < base + words in
  let body _i ctx =
    let rng = Sim.rng ctx in
    for _ = 1 to ops do
      (match !pool with
      | b :: rest when Sim.Rng.int rng 100 < 40 ->
        pool := rest;
        Simmem.free mem ctx b;
        Hashtbl.remove live b
      | _ ->
        let words = 1 + Sim.Rng.int rng 20 in
        let base = Simmem.malloc mem ctx words in
        if base <= 0 then Alcotest.failf "malloc returned non-address %d" base;
        Hashtbl.iter
          (fun b w ->
            if overlaps base words b w then
              Alcotest.failf "%s: fresh block [%d,+%d) overlaps live [%d,+%d)"
                (Simmem.alloc_label policy) base words b w)
          live;
        Hashtbl.replace live base words;
        pool := base :: !pool);
      Sim.note_progress ctx
    done
  in
  Sim.run ~seed (Array.init threads body);
  (* Full pairwise sweep of the final live set: catches any overlap the
     in-flight check could miss while two mallocs were interleaved. *)
  let sorted =
    List.sort compare (Hashtbl.fold (fun b w acc -> (b, w) :: acc) live [])
  in
  let rec adjacent = function
    | (b0, w0) :: ((b1, _) as n) :: rest ->
      if b0 + w0 > b1 then
        Alcotest.failf "%s: live blocks [%d,+%d) and [%d,..) overlap"
          (Simmem.alloc_label policy) b0 w0 b1;
      adjacent (n :: rest)
    | _ -> ()
  in
  adjacent sorted;
  (mem, live)

let check_model_agreement ~policy mem live =
  let st = Simmem.stats mem in
  let label = Simmem.alloc_label policy in
  Alcotest.(check int) (label ^ ": live_blocks matches model") (Hashtbl.length live)
    st.live_blocks;
  Alcotest.(check int)
    (label ^ ": live_words matches model")
    (Hashtbl.fold (fun _ w acc -> acc + w) live 0)
    st.live_words;
  Alcotest.(check int)
    (label ^ ": allocs - frees = live blocks")
    st.live_blocks (st.total_allocs - st.total_frees);
  Hashtbl.iter
    (fun b w ->
      Alcotest.(check (option int)) (label ^ ": block_size") (Some w)
        (Simmem.block_size mem b);
      Alcotest.(check bool) (label ^ ": last word allocated") true
        (Simmem.is_allocated mem (b + w - 1)))
    live;
  (* The extent accounting contract: under an arena policy every carved
     word is attributed to exactly one arena; the shared allocator
     reports no arenas at all. *)
  match Simmem.alloc mem with
  | Simmem.Shared_lifo ->
    Alcotest.(check (list (pair int int))) (label ^ ": no arenas") [] st.arena_extents
  | Simmem.Arena _ ->
    let sum = List.fold_left (fun acc (_, w) -> acc + w) 0 st.arena_extents in
    Alcotest.(check int) (label ^ ": arena extents sum to heap extent") (st.heap_extent - 8)
      sum;
    List.iter
      (fun (tid, w) ->
        if tid < 0 || w < 0 then
          Alcotest.failf "%s: bad arena extent (%d, %d)" label tid w)
      st.arena_extents

let prop_no_overlap =
  QCheck.Test.make ~name:"no two live blocks overlap, stats match model (all policies)"
    ~count:15
    QCheck.(pair (int_range 0 10_000) (int_range 30 150))
    (fun (seed, ops) ->
      List.iter
        (fun policy ->
          let mem, live = exercise ~policy ~threads:3 ~ops ~seed in
          check_model_agreement ~policy mem live)
        all_policies;
      true)

(* The same traffic must make the same progress whatever the placement:
   malloc/free costs are placement-independent, so the schedule — and
   with it the op counts — is identical across all four policies. *)
let test_stats_consistent_across_policies () =
  let stats =
    List.map
      (fun policy ->
        let mem, _ = exercise ~policy ~threads:3 ~ops:120 ~seed:42 in
        (Simmem.alloc_label policy, Simmem.stats mem))
      all_policies
  in
  match stats with
  | [] -> assert false
  | (_, ref_st) :: rest ->
    List.iter
      (fun (label, st) ->
        Alcotest.(check int) (label ^ ": total_allocs") ref_st.Simmem.total_allocs
          st.Simmem.total_allocs;
        Alcotest.(check int) (label ^ ": total_frees") ref_st.Simmem.total_frees
          st.Simmem.total_frees;
        Alcotest.(check int) (label ^ ": live_blocks") ref_st.Simmem.live_blocks
          st.Simmem.live_blocks;
        Alcotest.(check int) (label ^ ": live_words") ref_st.Simmem.live_words
          st.Simmem.live_words)
      rest

(* ------------------------------------------------------------------ *)
(* Remote-free drain points.                                          *)
(* ------------------------------------------------------------------ *)

(* T1 frees T0's block remotely; T0's next same-size malloc drains the
   ring and hands the block back. Clock windows order the phases under
   the min-clock schedule. *)
let test_remote_free_reused_at_malloc () =
  let mem = Simmem.create ~alloc:(Simmem.Arena Simmem.Line_packed) () in
  let x = ref 0 in
  let t0 ctx =
    x := Simmem.malloc mem ctx 1;
    Simmem.write mem ctx !x 7;
    Sim.advance_to ctx 50_000;
    let st = Simmem.stats mem in
    Alcotest.(check int) "remote free parked before drain" 1 st.remote_pending;
    let y = Simmem.malloc mem ctx 1 in
    Alcotest.(check int) "owner's malloc reuses the remotely freed block" !x y;
    Alcotest.(check int) "reused word re-zeroed" 0 (Simmem.peek mem y)
  in
  let t1 ctx =
    Sim.advance_to ctx 1_000;
    Simmem.free mem ctx !x
  in
  Sim.run ~seed:3 [| t0; t1 |];
  let st = Simmem.stats mem in
  Alcotest.(check int) "remote_frees counted" 1 st.remote_frees;
  Alcotest.(check int) "nothing left pending" 0 st.remote_pending

(* The other drain point: a fence flushes the ring even with no malloc in
   sight, so quiescent owners still publish reusability. *)
let test_remote_free_drained_at_fence () =
  let mem = Simmem.create ~alloc:(Simmem.Arena Simmem.Line_isolated) () in
  let x = ref 0 in
  let t0 ctx =
    x := Simmem.malloc mem ctx 2;
    Sim.advance_to ctx 50_000;
    Alcotest.(check int) "pending before fence" 1 (Simmem.stats mem).remote_pending;
    Sim.fence ctx;
    Alcotest.(check int) "pending after fence" 0 (Simmem.stats mem).remote_pending;
    let y = Simmem.malloc mem ctx 2 in
    Alcotest.(check int) "fence-drained block is reusable" !x y
  in
  let t1 ctx =
    Sim.advance_to ctx 1_000;
    Simmem.free mem ctx !x
  in
  Sim.run ~seed:3 [| t0; t1 |]

(* ------------------------------------------------------------------ *)
(* Exhaustive schedules: the remote-reuse litmus program.              *)
(* ------------------------------------------------------------------ *)

(* Every schedule of every memory model: the (possibly reused) word holds
   exactly the new life's value at quiescence — no stale store from the
   old life, no torn drain, no fault. At least one schedule must reach
   the actual reuse or the test proves nothing. *)
let test_remote_reuse_litmus () =
  List.iter
    (fun (name, m) ->
      match E.Litmus.enumerate ~model:m E.Litmus.remote_reuse with
      | Error e -> Alcotest.fail e
      | Ok outcomes ->
        Alcotest.(check bool) (name ^ ": schedules explored") true (outcomes <> []);
        List.iter
          (function
            | [ v; reused ] ->
              if v <> 42 then
                Alcotest.failf "%s: reused word reads %d, not 42 (reuse=%d)" name v
                  reused
            | o ->
              Alcotest.failf "%s: bad outcome arity %d" name (List.length o))
          outcomes;
        Alcotest.(check bool)
          (name ^ ": some schedule reaches the reuse")
          true
          (List.mem [ 42; 1 ] outcomes))
    Sim.Memmodel.all

(* ------------------------------------------------------------------ *)
(* Epoch reclamation: the seeded mutant and its control.               *)
(* ------------------------------------------------------------------ *)

let scenario key =
  match E.Scenario.build ~key ~threads:3 ~ops:4 () with
  | Ok s -> s
  | Error e -> Alcotest.fail e

(* grace=1 frees a limbo bucket one epoch early; the explorer must find
   the use-after-free, shrink it and replay it deterministically. *)
let test_broken_epoch_caught () =
  match
    E.Search.search ~base_seed:1 ~max_violations:1 ~budget:2_000
      [ scenario "broken-epoch" ]
  with
  | { res_violations = v :: _; _ } ->
    Alcotest.(check bool) "recorded deviations reproduced the failure" true
      v.vio_replayed;
    let msg = v.vio_artifact.E.Artifact.art_message in
    Alcotest.(check bool) "violation is a memory fault" true
      (Astring.String.is_infix ~affix:"use-after-free" msg)
  | _ -> Alcotest.fail "broken-epoch was not caught within 2000 schedules"

(* The correct two-grace-period queue under the same aggressive advance
   cadence: clean. *)
let test_epoch_queue_clean () =
  let s = E.Search.search ~base_seed:1 ~budget:400 [ scenario "epoch-queue" ] in
  Alcotest.(check int) "violations" 0 (List.length s.res_violations);
  Alcotest.(check int) "runs" 400 s.res_runs

(* ------------------------------------------------------------------ *)
(* Determinism: the placement sweep at --jobs 1 vs 8.                  *)
(* ------------------------------------------------------------------ *)

let render tables =
  let buf = Buffer.create 512 in
  let ppf = Format.formatter_of_buffer buf in
  List.iter (Workload.Report.print ppf) tables;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let test_placement_jobs_byte_identity () =
  let run jobs =
    let outcomes =
      Runner.Sweep.run ~jobs ~profile:true
        (Workload.Placement_bench.cells ~duration:15_000 ~seed:5 ())
    in
    render (Workload.Placement_bench.to_tables (Runner.Sweep.values outcomes))
  in
  Alcotest.(check string) "placement tables identical at jobs 1 vs 8" (run 1) (run 8)

(* ------------------------------------------------------------------ *)
(* Zero-GC-allocation budget of the sharded path (cf. test_perf.ml).   *)
(* ------------------------------------------------------------------ *)

let minor_delta f =
  ignore (f ());
  ignore (f ());
  let w0 = Gc.minor_words () in
  let r = f () in
  let w1 = Gc.minor_words () in
  (r, w1 -. w0)

let accesses_of f =
  let reg = Obs.Metrics.create () in
  let saved = Workload.Driver.obs () in
  Workload.Driver.set_obs { saved with obs_metrics = Some reg };
  ignore (f ());
  Workload.Driver.set_obs saved;
  let snap = Obs.Metrics.snapshot reg in
  List.fold_left
    (fun acc name ->
      match List.assoc_opt ("mem." ^ name) snap with
      | Some (Obs.Metrics.Counter { total; _ }) -> acc + total
      | _ -> acc)
    0
    [ "reads"; "writes"; "atomics"; "allocs"; "frees" ]

(* The fig1 queue on an arena heap under line-granularity HTM: malloc,
   remote free (dequeuer frees the enqueuer's node) and ring drain all on
   the hot path, none of them may touch the OCaml heap per-operation. *)
let test_zero_alloc_arena_queue () =
  Workload.Driver.set_obs Workload.Driver.no_obs;
  let f () =
    Workload.Placement_bench.queue_one ~policy:Simmem.Line_packed ~threads:8
      ~duration:50_000 ~seed:11
  in
  let accesses = accesses_of f in
  Alcotest.(check bool) "cell performs real work" true (accesses > 1_000);
  let _, words = minor_delta f in
  let budget = 50_000.0 +. (0.5 *. float_of_int accesses) in
  if words > budget then
    Alcotest.failf
      "arena fig1 cell allocated %.0f minor words for %d simulated accesses (budget \
       %.0f): the sharded allocator hot path is allocating"
      words accesses budget

(* The raw allocator plane alone — malloc/free churn with a constant
   stream of remote frees, no HTM in the way. *)
let test_zero_alloc_churn () =
  let churn () =
    let mem = Simmem.create ~alloc:(Simmem.Arena Simmem.Line_packed) () in
    let slot = ref 0 in
    let t0 ctx =
      for _ = 1 to 5_000 do
        let b = Simmem.malloc mem ctx 3 in
        if !slot = 0 then slot := b else Simmem.free mem ctx b;
        Sim.note_progress ctx
      done
    in
    let t1 ctx =
      for _ = 1 to 5_000 do
        (if !slot <> 0 then begin
           Simmem.free mem ctx !slot;
           slot := 0
         end);
        Sim.tick ctx 10;
        Sim.note_progress ctx
      done
    in
    Sim.run ~seed:2 [| t0; t1 |];
    Simmem.stats mem
  in
  let st, words = minor_delta churn in
  Alcotest.(check bool) "remote path exercised" true (st.Simmem.remote_frees > 100);
  let ops = st.Simmem.total_allocs + st.Simmem.total_frees in
  let budget = 20_000.0 +. (0.5 *. float_of_int ops) in
  if words > budget then
    Alcotest.failf
      "malloc/free churn allocated %.0f minor words for %d allocator ops (budget %.0f)"
      words ops budget

let () =
  Alcotest.run "alloc"
    [
      ( "invariants",
        [
          QCheck_alcotest.to_alcotest prop_no_overlap;
          Alcotest.test_case "stats identical across policies" `Quick
            test_stats_consistent_across_policies;
        ] );
      ( "remote-free",
        [
          Alcotest.test_case "drained at owner's malloc, block reused" `Quick
            test_remote_free_reused_at_malloc;
          Alcotest.test_case "drained at fence" `Quick
            test_remote_free_drained_at_fence;
          Alcotest.test_case "remote-reuse litmus, all schedules x models" `Quick
            test_remote_reuse_litmus;
        ] );
      ( "epoch-reclamation",
        [
          Alcotest.test_case "broken-epoch caught, shrunk, replayed" `Quick
            test_broken_epoch_caught;
          Alcotest.test_case "epoch-queue clean" `Quick test_epoch_queue_clean;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "placement sweep, jobs 1 vs 8" `Quick
            test_placement_jobs_byte_identity;
        ] );
      ( "zero-alloc",
        [
          Alcotest.test_case "arena fig1 cell, no observers" `Quick
            test_zero_alloc_arena_queue;
          Alcotest.test_case "raw malloc/free churn" `Quick test_zero_alloc_churn;
        ] );
    ]
