(* Tests for the virtual-time cooperative scheduler. *)

let test_all_threads_finish () =
  let done_ = Array.make 8 false in
  Sim.run ~seed:1
    (Array.init 8 (fun i ->
         fun ctx ->
           Sim.tick ctx (10 * (i + 1));
           done_.(i) <- true));
  Array.iteri (fun i d -> Alcotest.(check bool) (Printf.sprintf "thread %d" i) true d) done_

let test_tids_and_clocks () =
  let tids = Array.make 4 (-1) in
  let clocks = Array.make 4 (-1) in
  Sim.run ~seed:2
    (Array.init 4 (fun i ->
         fun ctx ->
           tids.(i) <- Sim.tid ctx;
           Sim.tick ctx 100;
           clocks.(i) <- Sim.clock ctx));
  Array.iteri (fun i t -> Alcotest.(check int) "tid" i t) tids;
  Array.iter (fun c -> Alcotest.(check int) "clock advanced" 100 c) clocks

(* Events must execute in virtual-time order: with each access a yield
   point, a thread that ticks large costs cannot overtake one that ticks
   small costs. *)
let test_timestamp_order () =
  let log = ref [] in
  let worker cost ctx =
    for _ = 1 to 50 do
      Sim.tick ctx cost;
      log := (Sim.clock ctx, Sim.tid ctx) :: !log
    done
  in
  Sim.run ~seed:3 [| worker 3; worker 7; worker 11 |];
  let times = List.rev_map fst !log in
  let sorted = List.sort compare times in
  Alcotest.(check (list int)) "events logged in timestamp order" sorted times

let test_determinism () =
  let trace seed =
    let log = Buffer.create 256 in
    let worker ctx =
      for _ = 1 to 30 do
        Sim.tick ctx (1 + Sim.Rng.int (Sim.rng ctx) 10);
        Buffer.add_string log (Printf.sprintf "%d@%d;" (Sim.tid ctx) (Sim.clock ctx))
      done
    in
    Sim.run ~seed (Array.make 5 worker);
    Buffer.contents log
  in
  Alcotest.(check string) "same seed, same trace" (trace 42) (trace 42);
  Alcotest.(check bool) "different seed, different trace" true (trace 42 <> trace 43)

let test_advance_to () =
  let c = ref 0 in
  Sim.run ~seed:4
    [|
      (fun ctx ->
        Sim.advance_to ctx 5000;
        c := Sim.clock ctx;
        Sim.advance_to ctx 100 (* no-op going backwards *));
    |];
  Alcotest.(check int) "advanced" 5000 !c

let test_stop_thread () =
  let after = ref false in
  let other = ref false in
  Sim.run ~seed:5
    [|
      (fun ctx ->
        Sim.tick ctx 1;
        ignore (Sim.stop ());
        after := true);
      (fun ctx ->
        Sim.tick ctx 1000;
        other := true);
    |];
  Alcotest.(check bool) "code after stop not run" false !after;
  Alcotest.(check bool) "other thread unaffected" true !other

let test_exception_propagates () =
  Alcotest.check_raises "thread exception reaches run" (Failure "boom") (fun () ->
      Sim.run ~seed:6 [| (fun ctx -> Sim.tick ctx 1; failwith "boom") |])

let test_boot_ctx () =
  let ctx = Sim.boot () in
  Alcotest.(check int) "boot tid" Sim.boot_tid (Sim.tid ctx);
  Sim.tick ctx 500;
  Alcotest.(check int) "boot clock advances" 500 (Sim.clock ctx)

let test_thread_count_limits () =
  Alcotest.check_raises "zero threads" (Invalid_argument "Sim.run: need between 1 and 256 threads")
    (fun () -> Sim.run [||]);
  Alcotest.check_raises "too many threads"
    (Invalid_argument "Sim.run: need between 1 and 256 threads") (fun () ->
      Sim.run (Array.make 257 (fun _ -> ())));
  (* Exploring-mode features still encode runnable sets in one word. *)
  Alcotest.check_raises "recording caps at 61"
    (Invalid_argument "Sim.run: exploring strategies and recording support at most 61 threads")
    (fun () -> Sim.run ~record:(Sim.recorder ()) (Array.make 62 (fun _ -> ())))

let test_charge_no_yield () =
  (* charge advances the clock without a scheduling point: another thread
     cannot observe intermediate state even if its clock is earlier. *)
  let flag = ref 0 in
  let observed = ref (-1) in
  Sim.run ~seed:7
    [|
      (fun ctx ->
        Sim.tick ctx 100;
        flag := 1;
        Sim.charge ctx 1000;
        flag := 2;
        Sim.tick ctx 0);
      (fun ctx ->
        Sim.advance_to ctx 500;
        observed := !flag);
    |];
  Alcotest.(check bool) "atomic section not split" true (!observed = 0 || !observed = 2)

let test_backoff_grows_and_resets () =
  Sim.run ~seed:8
    [|
      (fun ctx ->
        let b = Sim.Backoff.create ~base:10 ~cap:100 ctx in
        let t0 = Sim.clock ctx in
        Sim.Backoff.once b;
        let d1 = Sim.clock ctx - t0 in
        Alcotest.(check bool) "first delay within base" true (d1 >= 5 && d1 <= 10);
        for _ = 1 to 10 do
          Sim.Backoff.once b
        done;
        let t1 = Sim.clock ctx in
        Sim.Backoff.once b;
        let dcap = Sim.clock ctx - t1 in
        Alcotest.(check bool) "capped" true (dcap <= 100);
        Sim.Backoff.reset b;
        let t2 = Sim.clock ctx in
        Sim.Backoff.once b;
        let d2 = Sim.clock ctx - t2 in
        Alcotest.(check bool) "reset restores base" true (d2 >= 5 && d2 <= 10));
    |]

(* Fairness: threads doing equal work end with similar clocks and none is
   starved. *)
let test_fairness () =
  let finish = Array.make 6 0 in
  Sim.run ~seed:9
    (Array.init 6 (fun i ->
         fun ctx ->
           for _ = 1 to 1000 do
             Sim.tick ctx 5
           done;
           finish.(i) <- Sim.clock ctx));
  Array.iter (fun c -> Alcotest.(check int) "equal work, equal clock" 5000 c) finish

let prop_deterministic_final_clocks =
  QCheck.Test.make ~name:"run is deterministic for any seed" ~count:50 QCheck.small_int
    (fun seed ->
      let final () =
        let acc = Array.make 3 0 in
        Sim.run ~seed
          (Array.init 3 (fun i ->
               fun ctx ->
                 for _ = 1 to 20 do
                   Sim.tick ctx (1 + Sim.Rng.int (Sim.rng ctx) 5)
                 done;
                 acc.(i) <- Sim.clock ctx));
        Array.to_list acc
      in
      final () = final ())

(* Backoff obeys its contract for arbitrary base/cap: each delay lands in
   [bound/2, bound] where the bound doubles per call up to cap, and reset
   restores the initial bound. *)
let prop_backoff_bounds =
  QCheck.Test.make ~name:"backoff: delays track the doubling bound up to cap" ~count:200
    QCheck.(triple small_int small_int small_int)
    (fun (b0, c0, s) ->
      let base = 1 + (abs b0 mod 200) in
      let cap = base + (abs c0 mod 5_000) in
      let ok = ref true in
      let expect cond = if not cond then ok := false in
      Sim.run ~seed:s
        [|
          (fun ctx ->
            let b = Sim.Backoff.create ~base ~cap ctx in
            let bound = ref base in
            for _ = 1 to 14 do
              let t0 = Sim.clock ctx in
              Sim.Backoff.once b;
              let d = Sim.clock ctx - t0 in
              expect (d >= !bound / 2);
              expect (d <= !bound);
              expect (d <= cap);
              bound := min cap (!bound * 2)
            done;
            Sim.Backoff.reset b;
            let t0 = Sim.clock ctx in
            Sim.Backoff.once b;
            let d = Sim.clock ctx - t0 in
            expect (d >= base / 2 && d <= base));
        |];
      !ok)

let () =
  Alcotest.run "sim"
    [
      ( "scheduler",
        [
          Alcotest.test_case "all threads finish" `Quick test_all_threads_finish;
          Alcotest.test_case "tids and clocks" `Quick test_tids_and_clocks;
          Alcotest.test_case "timestamp order" `Quick test_timestamp_order;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "advance_to" `Quick test_advance_to;
          Alcotest.test_case "stop thread" `Quick test_stop_thread;
          Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
          Alcotest.test_case "boot context" `Quick test_boot_ctx;
          Alcotest.test_case "thread count limits" `Quick test_thread_count_limits;
          Alcotest.test_case "charge is atomic" `Quick test_charge_no_yield;
          Alcotest.test_case "fairness" `Quick test_fairness;
        ] );
      ("backoff", [ Alcotest.test_case "grow and reset" `Quick test_backoff_grows_and_resets ]);
      ( "property",
        [
          QCheck_alcotest.to_alcotest prop_deterministic_final_clocks;
          QCheck_alcotest.to_alcotest prop_backoff_bounds;
        ] );
    ]
