(* Tests for transaction forensics (lib/obs/forensics + lib/simmem capture)
   and the satellite observability additions: metrics percentiles, tracer
   drop accounting, conflict flow events — and the system-level guarantees
   the `bench doctor` pipeline rests on: witness capture is free (an
   instrumented run is cycle-identical to a bare one), aggregation is
   deterministic across worker counts, and the contend experiment's
   witnesses attribute HoHRC aborts to the header line while ROP's spread
   across payload lines. *)

let contains s affix = Astring.String.is_infix ~affix s

(* ------------------------------------------------------------------ *)
(* Metrics percentiles (log2 histograms)                               *)

let test_percentiles () =
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.hist m "lat" in
  Alcotest.(check int) "empty p50" 0 (Obs.Metrics.p50 h);
  Alcotest.(check int) "empty p999" 0 (Obs.Metrics.p999 h);
  (* 90 fast ops (bucket 4), 9 slow (bucket 64), 1 outlier (bucket 4096):
     the classic latency shape the shorthands exist for. *)
  for _ = 1 to 90 do
    Obs.Metrics.observe h 4
  done;
  for _ = 1 to 9 do
    Obs.Metrics.observe h 100
  done;
  Obs.Metrics.observe h 5000;
  Alcotest.(check int) "p50 in the body" 4 (Obs.Metrics.p50 h);
  Alcotest.(check int) "p99 at the knee" 64 (Obs.Metrics.p99 h);
  Alcotest.(check int) "p999 sees the outlier" 4096 (Obs.Metrics.p999 h);
  Alcotest.(check int) "quantile clamped below" 4
    (Obs.Metrics.percentile h (-1.0));
  Alcotest.(check int) "quantile clamped above" 4096
    (Obs.Metrics.percentile h 2.0)

let test_percentile_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"percentile is monotone and bracketed"
       QCheck.(pair (list_of_size Gen.(int_range 1 40) (int_range 0 100_000))
                 (pair (float_bound_inclusive 1.0) (float_bound_inclusive 1.0)))
       (fun (vs, (q1, q2)) ->
         let m = Obs.Metrics.create () in
         let h = Obs.Metrics.hist m "x" in
         List.iter (Obs.Metrics.observe h) vs;
         let lo = min q1 q2 and hi = max q1 q2 in
         let plo = Obs.Metrics.percentile h lo
         and phi = Obs.Metrics.percentile h hi in
         plo <= phi
         && phi <= Obs.Metrics.p999 h + 0
         && Obs.Metrics.p50 h <= Obs.Metrics.p99 h))

(* ------------------------------------------------------------------ *)
(* Tracer drop accounting                                              *)

let test_tracer_dropped_metadata () =
  let t = Obs.Tracer.create ~capacity:8 () in
  let sink = Obs.Tracer.process t ~name:"m" in
  for i = 1 to 20 do
    Obs.Tracer.instant sink ~tid:0 ~name:(Printf.sprintf "e%d" i) i
  done;
  Alcotest.(check int) "recorded counts everything" 20 (Obs.Tracer.recorded t);
  Alcotest.(check int) "dropped = recorded - capacity" 12 (Obs.Tracer.dropped t);
  let js = Obs.Json.to_string (Obs.Tracer.to_json t) in
  Alcotest.(check bool) "drop metadata record present" true
    (contains js "tracer.dropped");
  Alcotest.(check bool) "dropped count in metadata" true
    (contains js "\"droppedEvents\":12");
  (* The ring keeps the most recent window: the first events are gone,
     the last survive. *)
  Alcotest.(check bool) "oldest overwritten" false (contains js "\"e1\"");
  Alcotest.(check bool) "newest kept" true (contains js "\"e20\"")

let test_tracer_no_drops_no_metadata () =
  let t = Obs.Tracer.create ~capacity:64 () in
  let sink = Obs.Tracer.process t ~name:"m" in
  Obs.Tracer.instant sink ~tid:0 ~name:"only" 5;
  let js = Obs.Json.to_string (Obs.Tracer.to_json t) in
  Alcotest.(check bool) "no drop record when nothing dropped" false
    (contains js "tracer.dropped")

(* ------------------------------------------------------------------ *)
(* Forensics aggregation (pure, synthetic witnesses)                   *)

let w ?(victim = 3) ?(aggressor = 1) ?(addr = 0x128) ?(ww = false)
    ?(rs = true) ?(wset = false) ?(op = "commit") ?(agg_clock = 90)
    ?(clock = 100) ?(site = "htm.read") () : Obs.Forensics.witness =
  {
    w_victim = victim;
    w_aggressor = aggressor;
    w_addr = addr;
    w_line = addr lsr 3;
    w_victim_wrote = ww;
    w_read_set = rs;
    w_write_set = wset;
    w_op = op;
    w_aggressor_clock = agg_clock;
    w_clock = clock;
    w_site = site;
  }

let test_forensics_aggregates () =
  let f = Obs.Forensics.create () in
  Obs.Forensics.label f ~name:"A" ~base:0x120 ~words:8;
  Obs.Forensics.label f ~name:"B" ~base:0x128 ~words:8;
  (* false-shares A's second line? no: 0x128 starts line 0x25 *)
  Obs.Forensics.label f ~name:"B2" ~base:0x12c ~words:2;
  Obs.Forensics.note_alloc f ~base:0x120 ~words:16 ~tid:7 ~clock:50;
  Obs.Forensics.record f (w ());
  Obs.Forensics.record f (w ~ww:true ~wset:true ~site:"htm.commit" ());
  Obs.Forensics.record f (w ~victim:2 ~aggressor:3 ~addr:0x400 ());
  Alcotest.(check int) "count" 3 (Obs.Forensics.count f);
  (match Obs.Forensics.edges f with
  | [ e1; e2 ] ->
    Alcotest.(check int) "edge sorted by victim" 2 e1.Obs.Forensics.es_victim;
    Alcotest.(check int) "edge aggressor" 3 e1.es_aggressor;
    Alcotest.(check int) "rw count" 1 e2.es_rw;
    Alcotest.(check int) "ww count" 1 e2.es_ww
  | es -> Alcotest.failf "expected 2 edges, got %d" (List.length es));
  (match Obs.Forensics.lines f with
  | top :: rest ->
    Alcotest.(check int) "hottest line first" (0x128 lsr 3)
      top.Obs.Forensics.fl_line;
    Alcotest.(check string) "false sharing joined" "B + B2" top.fl_region;
    Alcotest.(check int) "conflicts" 2 top.fl_conflicts;
    (match top.fl_prov with
    | Some (tid, clock, n) ->
      Alcotest.(check int) "prov tid" 7 tid;
      Alcotest.(check int) "prov clock" 50 clock;
      Alcotest.(check bool) "prov count positive" true (n >= 1)
    | None -> Alcotest.fail "provenance missing");
    (match rest with
    | [ cold ] -> Alcotest.(check string) "unlabeled region" "?" cold.fl_region
    | _ -> Alcotest.fail "expected exactly one cold line")
  | [] -> Alcotest.fail "no lines");
  (match Obs.Forensics.regions f with
  | (r, n) :: _ ->
    Alcotest.(check string) "hottest region" "B + B2" r;
    Alcotest.(check int) "hottest region conflicts" 2 n
  | [] -> Alcotest.fail "no regions");
  Alcotest.(check (list (pair string int)))
    "sites descending"
    [ ("htm.read", 2); ("htm.commit", 1) ]
    (Obs.Forensics.sites f);
  Alcotest.(check (list (pair int int)))
    "victims ascending tid"
    [ (2, 1); (3, 2) ]
    (Obs.Forensics.victims f)

let test_forensics_hop_bound () =
  let f = Obs.Forensics.create ~max_hops:2 () in
  for i = 1 to 3 do
    Obs.Forensics.note_hop f ~tid:i ~clock:(i * 10) ~from_path:"hw"
      ~to_path:"stm" ~reason:"conflict" (Some (w ()))
  done;
  Alcotest.(check int) "total counted past bound" 3 (Obs.Forensics.hop_count f);
  let hops = Obs.Forensics.hops f in
  Alcotest.(check int) "stored bounded" 2 (List.length hops);
  (match hops with
  | h :: _ ->
    Alcotest.(check int) "oldest first" 1 h.Obs.Forensics.hp_tid;
    Alcotest.(check string) "from" "hw" h.hp_from;
    Alcotest.(check string) "to" "stm" h.hp_to;
    Alcotest.(check bool) "witness threaded" true (h.hp_witness <> None)
  | [] -> Alcotest.fail "no hops")

let test_forensics_absorb () =
  let mk wit =
    let f = Obs.Forensics.create () in
    Obs.Forensics.label f ~name:"R" ~base:0x120 ~words:8;
    List.iter (Obs.Forensics.record f) wit;
    f
  in
  let a = mk [ w (); w ~victim:2 () ] in
  let b = mk [ w (); w ~addr:0x200 ~site:"mem.cas" () ] in
  Obs.Forensics.note_hop b ~tid:0 ~clock:9 ~from_path:"hw" ~to_path:"tle"
    ~reason:"overflow" None;
  Obs.Forensics.absorb a b;
  Alcotest.(check int) "counts add" 4 (Obs.Forensics.count a);
  Alcotest.(check int) "hops concatenate" 1 (Obs.Forensics.hop_count a);
  (match Obs.Forensics.sites a with
  | (s, n) :: _ ->
    Alcotest.(check string) "merged hottest site" "htm.read" s;
    Alcotest.(check int) "merged site count" 3 n
  | [] -> Alcotest.fail "no sites");
  (* Absorb is count-preserving on edges too. *)
  let total_edges =
    List.fold_left
      (fun acc (e : Obs.Forensics.edge_stat) -> acc + e.es_rw + e.es_ww)
      0 (Obs.Forensics.edges a)
  in
  Alcotest.(check int) "edge totals add" 4 total_edges

(* Golden diagnosis rendering, pinned byte for byte — the table `bench
   doctor` prints. *)
let test_print_golden () =
  let f = Obs.Forensics.create () in
  Obs.Forensics.label f ~name:"Hdr" ~base:0x128 ~words:8;
  Obs.Forensics.note_alloc f ~base:0x128 ~words:8 ~tid:2 ~clock:40;
  Obs.Forensics.record f (w ());
  Obs.Forensics.record f (w ~ww:true ~wset:true ~site:"htm.commit" ());
  Obs.Forensics.note_hop f ~tid:3 ~clock:120 ~from_path:"hw" ~to_path:"stm"
    ~reason:"conflict" (Some (w ()));
  let rendered = Format.asprintf "%a" (Obs.Forensics.print ?top:None) f in
  let expected =
    String.concat "\n"
      [
        "witnesses: 2 conflict(s), 1 escalation hop(s)";
        "";
        "== conflict graph (victim <- aggressor) ==";
        "victim  aggressor  R/W  W/W  total  ";
        "t3      t1         1    1    2      ";
        "";
        "== hot lines (top 12 by conflicts) ==";
        "line   region  allocated by     conflicts  R/W  W/W  ";
        "0x128  Hdr     t2@40 (alloc 1)  2          1    1    ";
        "";
        "== abort attribution by site ==";
        "site        witnesses  ";
        "htm.commit  1          ";
        "htm.read    1          ";
        "";
        "== escalation timeline (first 1 of 1 hops) ==";
        "thread  clock  hop      reason    witness                       ";
        "t3      120    hw->stm  conflict  t3<-t1 R/W 0x128 (commit rs)  ";
        "";
      ]
  in
  Alcotest.(check string) "diagnosis renders exactly" expected rendered

(* Property: to_json output survives print -> parse. *)
let witness_gen =
  QCheck.Gen.(
    let* victim = int_range 0 7 in
    let* aggressor = int_range (-1) 7 in
    let* addr = map (fun a -> a * 4) (int_range 0 200) in
    let* ww = bool in
    let* site = oneofl [ "htm.read"; "htm.commit"; "stm.read.stale"; "mem.cas" ] in
    return
      (w ~victim ~aggressor ~addr ~ww ~site
         ~agg_clock:(if aggressor < 0 then -1 else 10)
         ()))

let test_json_roundtrip_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"to_json -> print -> parse = id"
       QCheck.(make Gen.(list_size (int_range 0 40) witness_gen))
       (fun ws ->
         let f = Obs.Forensics.create () in
         Obs.Forensics.label f ~name:"R" ~base:0 ~words:64;
         List.iter (Obs.Forensics.record f) ws;
         (match ws with
         | wit :: _ ->
           Obs.Forensics.note_hop f ~tid:0 ~clock:5 ~from_path:"hw"
             ~to_path:"stm" ~reason:"conflict" (Some wit)
         | [] -> ());
         let j = Obs.Forensics.to_json f in
         match Obs.Json.parse (Obs.Json.to_string j) with
         | Ok j' -> j' = j
         | Error _ -> false))

(* ------------------------------------------------------------------ *)
(* Live capture on a real machine                                      *)

(* A workload built to conflict: thread 0 runs long scanning
   transactions over a 16-word region while three writers hammer it with
   naked stores. Strong atomicity dooms the scans mid-flight, so
   witnesses are captured at the transactional validation sites. Returns
   enough state (sums and per-thread clocks) to detect any virtual-time
   perturbation. *)
let run_workload ?forensics ?tracer ~seed () =
  let mem = Simmem.create () in
  Simmem.set_forensics mem forensics;
  let htm = Htm.create mem in
  let boot = Sim.boot ~seed () in
  let arr = Simmem.malloc mem boot 16 in
  Simmem.label mem ~name:"shared" ~base:arr ~words:16;
  let clocks = Array.make 4 0 in
  let sum = ref 0 in
  Sim.run ~seed ?tracer
    (Array.init 4 (fun i ->
         fun ctx ->
           (if i = 0 then
              for _ = 1 to 20 do
                sum :=
                  !sum
                  + Htm.atomic htm ctx (fun tx ->
                        let s = ref 0 in
                        for k = 0 to 15 do
                          s := !s + Htm.read tx (arr + k)
                        done;
                        Htm.write tx arr (!s land 0xff);
                        !s);
                Sim.tick ctx (1 + Sim.Rng.int (Sim.rng ctx) 16)
              done
            else
              for r = 1 to 40 do
                Simmem.write mem ctx (arr + ((i * 5 + r) land 15)) r;
                Sim.tick ctx (1 + Sim.Rng.int (Sim.rng ctx) 16)
              done);
           clocks.(i) <- Sim.clock ctx));
  (arr, !sum, Array.to_list clocks)

let test_live_capture () =
  let f = Obs.Forensics.create () in
  let addr, _, _ = run_workload ~forensics:f ~seed:7 () in
  Alcotest.(check bool) "witnesses captured" true (Obs.Forensics.count f > 0);
  (match Obs.Forensics.lines f with
  | top :: _ ->
    Alcotest.(check bool) "conflicts inside the scanned region" true
      (top.Obs.Forensics.fl_line >= addr lsr 3
      && top.fl_line <= (addr + 15) lsr 3);
    Alcotest.(check string) "region resolved" "shared" top.fl_region;
    (match top.fl_prov with
    | Some (tid, _, _) ->
      (* malloc ran on the boot context, which carries the reserved tid. *)
      Alcotest.(check bool) "provenance recorded" true (tid >= 0)
    | None -> Alcotest.fail "no allocation provenance")
  | [] -> Alcotest.fail "no hot lines");
  (* The journal resolves aggressors: every edge of this fully-tracked
     run names a real thread on both ends. *)
  Alcotest.(check bool) "aggressors resolved" true
    (List.for_all
       (fun (e : Obs.Forensics.edge_stat) -> e.es_aggressor >= 0)
       (Obs.Forensics.edges f));
  Alcotest.(check bool) "capture sites are transactional" true
    (List.for_all
       (fun (s, _) -> contains s "htm.")
       (Obs.Forensics.sites f))

let test_conflict_flows_in_trace () =
  let t = Obs.Tracer.create () in
  let sink = Obs.Tracer.process t ~name:"m" in
  let f = Obs.Forensics.create () in
  let _ = run_workload ~forensics:f ~tracer:sink ~seed:7 () in
  let js = Obs.Json.to_string (Obs.Tracer.to_json t) in
  Alcotest.(check bool) "flow tail events" true (contains js "\"ph\":\"s\"");
  Alcotest.(check bool) "flow head events" true (contains js "\"ph\":\"f\"");
  Alcotest.(check bool) "forensics category" true
    (contains js "\"cat\":\"forensics\"");
  Alcotest.(check bool) "named after the conflict" true
    (contains js "\"conflict\"")

let test_escalation_hop_capture () =
  let f = Obs.Forensics.create () in
  let mem = Simmem.create () in
  Simmem.set_forensics mem (Some f);
  let htm =
    Htm.create ~config:{ Htm.default_config with tle = Htm.Tle_after 1 } mem
  in
  let boot = Sim.boot ~seed:3 () in
  let n = Htm.default_config.store_buffer + 1 in
  let addr = Simmem.malloc mem boot n in
  Sim.run ~seed:3
    [|
      (fun ctx ->
        Htm.atomic htm ctx (fun tx ->
            for i = 0 to n - 1 do
              Htm.write tx (addr + i) i
            done));
    |];
  Alcotest.(check int) "one hop recorded" 1 (Obs.Forensics.hop_count f);
  match Obs.Forensics.hops f with
  | [ h ] ->
    Alcotest.(check string) "left the hardware path" "hw" h.Obs.Forensics.hp_from;
    Alcotest.(check string) "into the lock" "tle" h.hp_to;
    Alcotest.(check string) "driven by the overflow" "overflow" h.hp_reason
  | hs -> Alcotest.failf "expected 1 hop, got %d" (List.length hs)

(* Observation is free: attaching forensics (and a tracer) never moves
   virtual time — same final value, same per-thread clocks. *)
let test_zero_cost_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:25 ~name:"forensics capture never perturbs virtual time"
       QCheck.(int_range 1 10_000)
       (fun seed ->
         let bare = run_workload ~seed () in
         let f = Obs.Forensics.create () in
         let t = Obs.Tracer.create () in
         let sink = Obs.Tracer.process t ~name:"m" in
         let observed = run_workload ~forensics:f ~tracer:sink ~seed () in
         Obs.Forensics.count f > 0 && bare = observed))

(* ------------------------------------------------------------------ *)
(* The doctor pipeline: determinism across jobs, and the contend        *)
(* experiment's attribution shape                                       *)

(* The contend experiment's cells, as bench/experiments.ml builds them
   (bench's default duration 300_000 and seed 1). bench/experiments is a
   private executable module, so the cells are reconstructed from the
   same workload entry points. *)
let contend_cells () =
  let hohrc = Option.get (Collect.find_maker "ListHoHRC") in
  let rop = Option.get (Hqueue.find_maker "MichaelScott+ROP") in
  let duration = 300_000 and seed = 1 in
  [
    Runner.Cell.v ~label:"contend/ListHoHRC" (fun () ->
        ignore
          (Workload.Collect_update.run_one hohrc ~updaters:15 ~period:1_000
             ~duration ~step:(Collect.Intf.Fixed 8) ~seed));
    Runner.Cell.v ~label:"contend/ListHoHRC-churn" (fun () ->
        ignore
          (Workload.Collect_update.churn_one hohrc ~threads:16
             ~duration:(duration / 2) ~seed));
    Runner.Cell.v ~label:"contend/MichaelScott+ROP" (fun () ->
        ignore
          (Workload.Queue_bench.run_one rop ~threads:4 ~duration:(duration / 12)
             ~prefill:64 ~seed));
    Runner.Cell.v ~label:"contend/MichaelScott+ROP-hot" (fun () ->
        ignore
          (Workload.Queue_bench.run_one rop ~threads:12
             ~duration:(duration / 12) ~prefill:64 ~seed));
  ]

let forensics_bytes outcomes =
  Runner.Sweep.forensics outcomes
  |> List.map (fun (name, f) ->
         name ^ ":" ^ Obs.Json.to_string (Obs.Forensics.to_json f))
  |> String.concat "\n"

let test_doctor_determinism_and_shape () =
  let serial = Runner.Sweep.run ~forensics:true (contend_cells ()) in
  let parallel = Runner.Sweep.run ~jobs:8 ~forensics:true (contend_cells ()) in
  Alcotest.(check string) "forensics byte-identical across jobs"
    (forensics_bytes serial) (forensics_bytes parallel);
  let fors = Runner.Sweep.forensics serial in
  Alcotest.(check bool) "every machine reports" true (List.length fors >= 4);
  (* HoHRC attribution: the majority of its conflict witnesses must land
     on header-labelled lines — the experiment's known truth. *)
  let hohrc = List.filter (fun (n, _) -> contains n "ListHoHRC") fors in
  Alcotest.(check bool) "hohrc machines present" true (hohrc <> []);
  let header, other =
    List.fold_left
      (fun (h, o) (_, f) ->
        List.fold_left
          (fun (h, o) (region, n) ->
            if contains region "header" then (h + n, o) else (h, o + n))
          (h, o) (Obs.Forensics.regions f))
      (0, 0) hohrc
  in
  Alcotest.(check bool) "hohrc saw conflicts" true (header + other > 0);
  Alcotest.(check bool)
    (Printf.sprintf "header-attributed majority (%d header vs %d other)" header
       other)
    true
    (header > other);
  (* ROP attribution: its payload (node) witnesses spread across lines —
     no single node line dominates, and several are hit. *)
  let rop =
    List.filter (fun (n, _) -> contains n "MichaelScott+ROP") fors
  in
  Alcotest.(check bool) "rop machines present" true (rop <> []);
  let node_lines =
    List.concat_map
      (fun (_, f) ->
        List.filter
          (fun (l : Obs.Forensics.line_stat) -> contains l.fl_region "node")
          (Obs.Forensics.lines f))
      rop
  in
  let node_total =
    List.fold_left (fun acc (l : Obs.Forensics.line_stat) -> acc + l.fl_conflicts) 0 node_lines
  in
  Alcotest.(check bool)
    (Printf.sprintf "payload witnesses spread over %d lines"
       (List.length node_lines))
    true
    (List.length node_lines >= 3);
  List.iter
    (fun (l : Obs.Forensics.line_stat) ->
      Alcotest.(check bool)
        (Printf.sprintf "no node line dominates (line 0x%x: %d of %d)"
           l.fl_addr l.fl_conflicts node_total)
        true
        (2 * l.fl_conflicts <= node_total))
    node_lines

let () =
  Alcotest.run "forensics"
    [
      ( "metrics",
        [
          Alcotest.test_case "percentiles" `Quick test_percentiles;
          test_percentile_prop;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "dropped metadata" `Quick test_tracer_dropped_metadata;
          Alcotest.test_case "no drops, no metadata" `Quick
            test_tracer_no_drops_no_metadata;
        ] );
      ( "aggregation",
        [
          Alcotest.test_case "aggregates" `Quick test_forensics_aggregates;
          Alcotest.test_case "hop bound" `Quick test_forensics_hop_bound;
          Alcotest.test_case "absorb" `Quick test_forensics_absorb;
          Alcotest.test_case "print golden" `Quick test_print_golden;
          test_json_roundtrip_prop;
        ] );
      ( "capture",
        [
          Alcotest.test_case "live witnesses" `Quick test_live_capture;
          Alcotest.test_case "conflict flows in trace" `Quick
            test_conflict_flows_in_trace;
          Alcotest.test_case "escalation hops" `Quick test_escalation_hop_capture;
          test_zero_cost_prop;
        ] );
      ( "doctor",
        [
          Alcotest.test_case "determinism and attribution shape" `Slow
            test_doctor_determinism_and_shape;
        ] );
    ]
