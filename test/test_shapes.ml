(* Executable shape claims: the headline qualitative results recorded in
   EXPERIMENTS.md, re-run at reduced durations so the tier-1 suite stays
   fast. Each test encodes an ordering / crossover / recovery claim the
   reproduction stands on — if a simulator or algorithm change flips one,
   these fail before `bench diff` ever sees a full-length artifact.

   The simulator is deterministic, so every comparison below is exact:
   the reduced-duration values were calibrated once and do not wobble. *)

let check = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Figure 1 — queue throughput vs. threads.                            *)

let test_fig1 () =
  let rs = Workload.Queue_bench.run ~threads:[ 2; 4; 8 ] ~duration:100_000 () in
  let thr queue threads =
    match
      List.find_opt
        (fun (r : Workload.Queue_bench.result) -> r.queue = queue && r.threads = threads)
        rs
    with
    | Some r -> r.throughput
    | None -> Alcotest.failf "fig1: missing %s x%d" queue threads
  in
  (* HTM >= Michael-Scott from 4 threads on (at 2 the curves touch and MS
     may be marginally ahead, as in the paper's left edge). *)
  List.iter
    (fun n ->
      check (Printf.sprintf "HTM >= MichaelScott at %d threads" n) true
        (thr "HTM" n >= thr "MichaelScott" n))
    [ 4; 8 ];
  (* ROP reclamation costs Michael-Scott throughput at every thread count. *)
  List.iter
    (fun n ->
      check (Printf.sprintf "MichaelScott+ROP below MichaelScott at %d threads" n) true
        (thr "MichaelScott+ROP" n < thr "MichaelScott" n))
    [ 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* Figure 3 — collect-dominated workload.                              *)

let test_fig3 () =
  let rs = Workload.Collect_dominated.run ~threads:[ 2; 8 ] ~duration:150_000 () in
  List.iter
    (fun n ->
      let at_n =
        List.filter_map
          (fun (r : Workload.Collect_dominated.result) ->
            if r.threads = n then Some (r.algo, r.throughput) else None)
          rs
      in
      let ranked = List.sort (fun (_, a) (_, b) -> compare a b) at_n in
      match ranked with
      | (worst, worst_thr) :: (second, _) :: _ ->
        let best_thr = snd (List.nth ranked (List.length ranked - 1)) in
        Alcotest.(check string)
          (Printf.sprintf "Dynamic baseline worst at %d threads" n)
          "DynamicBaseline" worst;
        Alcotest.(check string)
          (Printf.sprintf "HOHRC second-worst at %d threads" n)
          "ListHoHRC" second;
        (* "far behind everything": the two-writes-per-node traversal
           costs the Dynamic baseline multiples, not percents. *)
        check (Printf.sprintf "Dynamic baseline far behind at %d threads" n) true
          (best_thr >= 4.0 *. worst_thr)
      | _ -> Alcotest.fail "fig3: too few algorithms")
    [ 2; 8 ]

(* ------------------------------------------------------------------ *)
(* Figure 4 — collect-update crossover.                                *)

let test_fig4 () =
  let rs =
    Workload.Collect_update.run_fig4 ~periods:[ 100_000; 400 ] ~duration:150_000 ()
  in
  let thr algo period =
    match
      List.find_opt
        (fun (r : Workload.Collect_update.result) -> r.algo = algo && r.period = period)
        rs
    with
    | Some r -> r.throughput
    | None -> Alcotest.failf "fig4: missing %s p%d" algo period
  in
  (* Long update periods: the transactional Append-Dereg scan beats the
     non-transactional scanners. *)
  check "ArrayDynAppendDereg > ArrayStatSearchNo at 100k-cycle period" true
    (thr "ArrayDynAppendDereg" 100_000 > thr "ArrayStatSearchNo" 100_000);
  check "ArrayDynAppendDereg > StaticBaseline at 100k-cycle period" true
    (thr "ArrayDynAppendDereg" 100_000 > thr "StaticBaseline" 100_000);
  (* At 400-cycle update storms the transactional collects abort so much
     that the non-transactional scanners finally win: the paper's
     crossover, sitting between 100k and 400 in this reduced sweep. *)
  check "ArrayStatSearchNo > ArrayDynAppendDereg at 400-cycle period" true
    (thr "ArrayStatSearchNo" 400 > thr "ArrayDynAppendDereg" 400)

(* ------------------------------------------------------------------ *)
(* Figure 8 — phased registration: SearchNo never recovers.            *)

let test_fig8 () =
  let phase_len = 250_000 and phases = 4 and bucket_len = 50_000 in
  let rs = Workload.Phased.run ~phase_len ~phases ~bucket_len () in
  let per_phase = phase_len / bucket_len in
  let phase_mean (r : Workload.Phased.result) p =
    let vs =
      List.filteri (fun i _ -> i / per_phase = p) (List.map snd r.buckets)
    in
    List.fold_left ( +. ) 0.0 vs /. float_of_int (List.length vs)
  in
  let find algo =
    match List.find_opt (fun (r : Workload.Phased.result) -> r.algo = algo) rs with
    | Some r -> r
    | None -> Alcotest.failf "fig8: missing %s" algo
  in
  (* Phases alternate low (even) / high (odd) registered-slot counts. *)
  let sn = find "ArrayStatSearchNo" in
  check "SearchNo degrades during the first high phase" true
    (phase_mean sn 1 < phase_mean sn 0);
  (* The sharpest signature in the paper: SearchNo scans its historical
     maximum, so its low-phase plateau never returns to the phase-0
     level. *)
  check "SearchNo's post-spike low plateau is permanently depressed" true
    (phase_mean sn 2 < 0.75 *. phase_mean sn 0);
  (* Append-Dereg dips during the high phase and fully recovers. *)
  let asa = find "ArrayStatAppendDereg" in
  check "ArrayStatAppendDereg dips during the high phase" true
    (phase_mean asa 1 < phase_mean asa 0);
  check "ArrayStatAppendDereg recovers in the next low phase" true
    (phase_mean asa 2 >= 0.8 *. phase_mean asa 0);
  let ada = find "ArrayDynAppendDereg" in
  check "ArrayDynAppendDereg recovers in the next low phase" true
    (phase_mean ada 2 >= 0.8 *. phase_mean ada 0);
  (* The Static baseline scans all slots regardless, so it is flat. *)
  let st = find "StaticBaseline" in
  let st0 = phase_mean st 0 in
  List.iter
    (fun p ->
      let m = phase_mean st p in
      check (Printf.sprintf "StaticBaseline flat through phase %d" p) true
        (Float.abs (m -. st0) <= 0.15 *. st0))
    [ 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* Placement ablation — the malloc-placement effect (docs/ALLOCATION.md). *)

(* Under a line-granularity HTM, the packing policy manufactures both
   conflict aborts and coherence ping-pong on structures whose threads
   touch disjoint words: line-packed must sit measurably above
   line-isolated on both metrics, on at least two structures (the
   acceptance bar), and the isolating policies must keep the
   false-sharing-only structures abort-free by construction. *)
let test_placement () =
  let saved = Workload.Driver.obs () in
  Workload.Driver.set_obs { saved with Workload.Driver.obs_profile = true };
  Fun.protect ~finally:(fun () -> Workload.Driver.set_obs saved) @@ fun () ->
  let module P = Workload.Placement_bench in
  let cell run ~policy ~threads = run ~policy ~threads ~duration:50_000 ~seed:7 in
  List.iter
    (fun (name, run) ->
      List.iter
        (fun n ->
          let packed = cell run ~policy:Simmem.Line_packed ~threads:n in
          let isolated = cell run ~policy:Simmem.Line_isolated ~threads:n in
          check
            (Printf.sprintf "%s x%d: line-packed raises the conflict-abort rate" name n)
            true
            (packed.P.abort_rate > isolated.P.abort_rate +. 0.1);
          check
            (Printf.sprintf "%s x%d: line-packed multiplies line ping-pong" name n)
            true
            (packed.P.transfers > 10 * max 1 isolated.P.transfers);
          (* threads touch disjoint words: isolation leaves nothing to
             conflict on *)
          check
            (Printf.sprintf "%s x%d: line-isolated is abort-free" name n)
            true (isolated.P.abort_rate = 0.0))
        [ 4; 8 ])
    [ ("counters", P.counters_one); ("pairs", P.pairs_one) ];
  (* The realistic control: on the queue, per-node allocation traffic
     dominates and the placement premium is seed-level noise (isolation
     even costs extra transfers by giving every node a fresh line) — the
     contrast that makes the counters/pairs effect an allocator story
     rather than a workload one. Only the sanity floor is pinned. *)
  let qp = cell P.queue_one ~policy:Simmem.Line_packed ~threads:8 in
  let qi = cell P.queue_one ~policy:Simmem.Line_isolated ~threads:8 in
  check "queue x8: both policies abort under line granularity" true
    (qp.P.abort_rate > 0.01 && qi.P.abort_rate > 0.01);
  (* Cache-index-aware is line-isolated plus chunk coloring: equally
     abort-free on the hot structures. *)
  let ci = cell P.counters_one ~policy:Simmem.Cache_index_aware ~threads:8 in
  check "counters x8: cache-index-aware is abort-free" true (ci.P.abort_rate = 0.0)

(* ------------------------------------------------------------------ *)
(* Space at quiescence — §1.1 / §1.2.                                  *)

let space_find what rs subject =
  match
    List.find_opt (fun (r : Workload.Space_bench.result) -> r.subject = subject) rs
  with
  | Some r -> r
  | None -> Alcotest.failf "%s: missing %s" what subject

let test_space_queues () =
  let rs = Workload.Space_bench.queue_space () in
  let f = space_find "space/queue" rs in
  let htm = f "queue/HTM" in
  check "HTM queue returns its memory (quiescent << peak)" true
    (htm.quiescent_words * 10 <= htm.peak_words);
  let ms = f "queue/MichaelScott" in
  check "pooled MichaelScott sits at its historical maximum" true
    (ms.quiescent_words = ms.peak_words);
  let rop = f "queue/MichaelScott+ROP" in
  check "ROP reclamation frees the drained entries" true
    (rop.quiescent_words * 10 <= rop.peak_words)

let test_space_collect () =
  let rs = Workload.Space_bench.collect_space () in
  let f = space_find "space/collect" rs in
  (* Never shrink: the static arrays and the type-stable CAS baseline. *)
  List.iter
    (fun s ->
      let r = f ("collect/" ^ s) in
      check (s ^ " never shrinks (quiescent = peak)") true
        (r.quiescent_words = r.peak_words))
    [ "ArrayStatSearchNo"; "StaticBaseline"; "DynamicBaseline" ];
  (* Shrink to near nothing: the lists and the dynamic arrays. *)
  List.iter
    (fun s ->
      let r = f ("collect/" ^ s) in
      check (s ^ " returns its memory (quiescent << peak)") true
        (r.quiescent_words * 10 <= r.peak_words))
    [ "ListHoHRC"; "ListFastCollect"; "ArrayDynSearchResize"; "ArrayDynAppendDereg" ];
  (* ArrayStatAppendDereg frees its list nodes but keeps the static
     array at the historical maximum. *)
  let asa = f "collect/ArrayStatAppendDereg" in
  check "ArrayStatAppendDereg keeps its static array" true
    (asa.quiescent_words < asa.peak_words
    && asa.quiescent_words * 2 >= asa.peak_words)

let () =
  Alcotest.run "shapes"
    [
      ( "figures",
        [
          Alcotest.test_case "fig1: queue throughput orderings" `Slow test_fig1;
          Alcotest.test_case "fig3: collect-dominated orderings" `Slow test_fig3;
          Alcotest.test_case "fig4: collect-update crossover" `Slow test_fig4;
          Alcotest.test_case "fig8: SearchNo never recovers" `Slow test_fig8;
        ] );
      ( "placement",
        [
          Alcotest.test_case "line-packed manufactures aborts and ping-pong" `Slow
            test_placement;
        ] );
      ( "space",
        [
          Alcotest.test_case "queues at quiescence" `Quick test_space_queues;
          Alcotest.test_case "collect objects at quiescence" `Quick test_space_collect;
        ] );
    ]
