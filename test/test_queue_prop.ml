(* Property-based tests for the queues: equivalence with a functional
   model under random single-threaded scripts, and exactly-once delivery
   under randomized concurrent schedules.

   The concurrent properties run under three scheduling strategies: the
   default min-clock schedule and two adversarial ones (random walk, PCT)
   that decouple execution order from virtual time. The adversarial
   strategies get smaller qcheck counts to keep the suite's runtime in
   check; each trial seeds its strategy from the qcheck seed. *)

let strategies =
  [
    ("min-clock", 25, fun _seed -> Sim.Min_clock);
    ("random-walk", 10, fun seed -> Sim.Random_walk { rw_seed = seed });
    ( "pct",
      10,
      fun seed -> Sim.Pct { pct_seed = seed; pct_depth = 3; pct_length = 5000 } );
  ]

(* A script is a list of operations: true = enqueue (next value),
   false = dequeue. *)
let run_script (mk : Hqueue.Intf.maker) script =
  let mem = Simmem.create () in
  let htm = Htm.create mem in
  let boot = Sim.boot () in
  let q = mk.make htm boot ~num_threads:2 in
  let results = ref [] in
  Sim.run ~seed:1
    [|
      (fun ctx ->
        let next = ref 0 in
        List.iter
          (fun enq ->
            if enq then begin
              incr next;
              q.enqueue ctx !next
            end
            else results := q.dequeue ctx :: !results)
          script);
    |];
  let r = List.rev !results in
  q.destroy boot;
  r

let model_script script =
  let q = Queue.create () in
  let next = ref 0 in
  let results = ref [] in
  List.iter
    (fun enq ->
      if enq then begin
        incr next;
        Queue.add !next q
      end
      else results := (if Queue.is_empty q then None else Some (Queue.pop q)) :: !results)
    script;
  List.rev !results

let prop_sequential_model (mk : Hqueue.Intf.maker) =
  QCheck.Test.make
    ~name:(mk.queue_name ^ " matches the functional queue model")
    ~count:100
    QCheck.(list bool)
    (fun script -> run_script mk script = model_script script)

let prop_concurrent_exactly_once (mk : Hqueue.Intf.maker) (sname, count, strat) =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s delivers exactly once (%s)" mk.queue_name sname)
    ~count QCheck.small_int
    (fun seed ->
      let mem = Simmem.create () in
      let htm = Htm.create mem in
      let boot = Sim.boot () in
      let q = mk.make htm boot ~num_threads:6 in
      let got = ref [] in
      Sim.run ~seed ~strategy:(strat seed)
        (Array.init 6 (fun i ->
             fun ctx ->
               let rng = Sim.rng ctx in
               for k = 1 to 60 do
                 if Sim.Rng.bool rng then q.enqueue ctx ((i * 1000) + k)
                 else
                   match q.dequeue ctx with
                   | Some v -> got := v :: !got
                   | None -> ()
               done));
      let rec drain acc = match q.dequeue boot with Some v -> drain (v :: acc) | None -> acc in
      let all = drain [] @ !got in
      let ok = List.length all = List.length (List.sort_uniq compare all) in
      q.destroy boot;
      ok)

(* Sequential consistency of the value payload: dequeue order of one
   producer's values is its enqueue order, for every queue and seed. *)
let prop_per_producer_fifo (mk : Hqueue.Intf.maker) (sname, count, strat) =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s preserves per-producer order (%s)" mk.queue_name sname)
    ~count QCheck.small_int
    (fun seed ->
      let mem = Simmem.create () in
      let htm = Htm.create mem in
      let boot = Sim.boot () in
      let q = mk.make htm boot ~num_threads:4 in
      let seen = Array.make 4 [] in
      Sim.run ~seed ~strategy:(strat seed)
        (Array.init 4 (fun i ->
             fun ctx ->
               if i < 2 then
                 for k = 1 to 80 do
                   q.enqueue ctx ((i * 1000) + k)
                 done
               else
                 for _ = 1 to 90 do
                   match q.dequeue ctx with
                   | Some v -> seen.(i) <- v :: seen.(i)
                   | None -> Sim.tick ctx 100
                 done));
      q.destroy boot;
      Array.for_all
        (fun lst ->
          let in_order = List.rev lst in
          let last = Hashtbl.create 4 in
          List.for_all
            (fun v ->
              let p = v / 1000 and k = v mod 1000 in
              let ok = match Hashtbl.find_opt last p with Some prev -> prev < k | None -> true in
              Hashtbl.replace last p k;
              ok)
            in_order)
        seen)

let () =
  Alcotest.run "queue-prop"
    [
      ( "properties",
        List.concat_map
          (fun mk ->
            List.map QCheck_alcotest.to_alcotest
              (prop_sequential_model mk
               :: List.concat_map
                    (fun s ->
                      [ prop_concurrent_exactly_once mk s; prop_per_producer_fifo mk s ])
                    strategies))
          Hqueue.all_with_extensions );
    ]
