(* Tests for the observability layer (lib/obs) and its wiring into the
   simulator: JSON printer/parser round-trips, the metrics registry
   (parent mirroring, local-only resets), the tracer ring buffer, the
   contention profiler's region attribution — and the two system-level
   guarantees: tracing is deterministic (same seed + strategy gives a
   byte-identical trace file) and free (a traced run is cycle-for-cycle
   identical to an untraced one). *)

let contains s affix = Astring.String.is_infix ~affix s

(* ------------------------------------------------------------------ *)
(* Json                                                                *)

let sample_json =
  Obs.Json.(
    Obj
      [
        ("name", Str "x\"y\n");
        ("n", Int (-42));
        ("f", Float 1.5);
        ("ok", Bool true);
        ("nothing", Null);
        ("xs", List [ Int 1; Int 2; Int 3 ]);
        ("empty", Obj []);
      ])

let test_json_roundtrip () =
  let s = Obs.Json.to_string sample_json in
  (match Obs.Json.parse s with
  | Ok v -> Alcotest.(check bool) "compact round-trips" true (v = sample_json)
  | Error e -> Alcotest.failf "parse of compact output failed: %s" e);
  let p = Obs.Json.pretty_to_string sample_json in
  match Obs.Json.parse p with
  | Ok v -> Alcotest.(check bool) "pretty round-trips" true (v = sample_json)
  | Error e -> Alcotest.failf "parse of pretty output failed: %s" e

let test_json_parse_errors () =
  List.iter
    (fun bad ->
      match Obs.Json.parse bad with
      | Ok _ -> Alcotest.failf "parser accepted %S" bad
      | Error _ -> ())
    [ "{"; "tru"; "[1,]"; "{\"a\":1} x"; ""; "\"unterminated"; "{'a':1}" ]

(* Property: print -> parse is the identity on arbitrary documents.
   Floats print through %.12g, so the generator sticks to dyadic
   rationals with few significant digits — the only floats whose decimal
   rendering is exact at that precision (BENCH artifacts only ever carry
   measured throughputs, where shape comparison tolerates the last-digit
   rounding; the *structural* round-trip is what must be exact). *)
let json_gen =
  let open QCheck.Gen in
  let exact_float =
    map2
      (fun m k -> float_of_int m /. float_of_int (1 lsl k))
      (int_range (-9999) 9999) (int_range 0 8)
  in
  let key = string_size ~gen:(char_range 'a' 'z') (int_range 1 6) in
  let scalar =
    oneof
      [
        return Obs.Json.Null;
        map (fun b -> Obs.Json.Bool b) bool;
        map (fun i -> Obs.Json.Int i) (int_range (-1_000_000) 1_000_000);
        map (fun f -> Obs.Json.Float f) exact_float;
        map (fun s -> Obs.Json.Str s) (string_size ~gen:printable (int_bound 10));
      ]
  in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then scalar
          else
            oneof
              [
                scalar;
                map (fun l -> Obs.Json.List l)
                  (list_size (int_bound 4) (self (n / 2)));
                map (fun kvs -> Obs.Json.Obj kvs)
                  (list_size (int_bound 4) (pair key (self (n / 2))));
              ])
        (min n 6))

let test_json_roundtrip_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"print -> parse = id"
       (QCheck.make json_gen)
       (fun v ->
         match Obs.Json.parse (Obs.Json.to_string v) with
         | Ok v' -> v' = v
         | Error _ -> false))

(* ------------------------------------------------------------------ *)
(* Table rendering: golden outputs, pinned byte for byte.              *)

let golden_table : Obs.Table.table =
  {
    title = "Golden";
    xlabel = "x";
    unit = "ops/us";
    columns = [ "A"; "B" ];
    rows = [ ("1", [ Some 0.5; Some 1234.0 ]); ("2", [ Some 12.5; None ]) ];
  }

let test_table_print_golden () =
  let rendered = Format.asprintf "%a" Obs.Table.print golden_table in
  let expected =
    String.concat "\n"
      [
        "== Golden [ops/us] ==";
        "x  A      B     ";
        "1  0.500  1234  ";
        "2  12.5   -     ";
        "";
        "";
      ]
  in
  Alcotest.(check string) "aligned table renders exactly" expected rendered

let test_table_csv_golden () =
  let rendered = Format.asprintf "%a" Obs.Table.print_csv golden_table in
  let expected =
    String.concat "\n"
      [
        "# Golden [ops/us]"; "x,A,B"; "1,0.500000,1234.000000"; "2,12.500000,"; ""; "";
      ]
  in
  Alcotest.(check string) "CSV renders exactly" expected rendered

let test_table_json_roundtrip () =
  match Obs.Table.of_json (Obs.Table.to_json golden_table) with
  | Ok t -> Alcotest.(check bool) "table survives to_json/of_json" true (t = golden_table)
  | Error e -> Alcotest.failf "of_json rejected to_json output: %s" e

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let test_metrics_counter () =
  let r = Obs.Metrics.create () in
  let c = Obs.Metrics.counter ~per_thread:true r "ops" in
  Obs.Metrics.incr ~tid:0 c;
  Obs.Metrics.incr ~tid:2 ~by:5 c;
  Obs.Metrics.incr ~tid:0 c;
  Alcotest.(check int) "total" 7 (Obs.Metrics.value c);
  Alcotest.(check (list (pair int int)))
    "per-thread breakdown"
    [ (0, 2); (2, 5) ]
    (Obs.Metrics.per_thread c);
  let again = Obs.Metrics.counter r "ops" in
  Alcotest.(check int) "re-registration returns the same metric" 7
    (Obs.Metrics.value again)

let test_metrics_gauge_hist () =
  let r = Obs.Metrics.create () in
  let g = Obs.Metrics.gauge r "depth" in
  Obs.Metrics.set g 5;
  Obs.Metrics.add g (-2);
  Alcotest.(check int) "current" 3 (Obs.Metrics.gauge_value g);
  Alcotest.(check int) "high-water" 5 (Obs.Metrics.gauge_max g);
  let h = Obs.Metrics.hist r "lat" in
  List.iter (Obs.Metrics.observe h) [ 1; 2; 3; 1000 ];
  Alcotest.(check int) "hist count" 4 (Obs.Metrics.hist_count h);
  Alcotest.(check (list (pair int int)))
    "log2 buckets"
    [ (1, 1); (2, 2); (512, 1) ]
    (Obs.Metrics.buckets h)

let test_metrics_parent_and_reset () =
  let parent = Obs.Metrics.create () in
  let child = Obs.Metrics.create ~parent () in
  let c = Obs.Metrics.counter child "ops" in
  let pc = Obs.Metrics.counter parent "ops" in
  Obs.Metrics.incr ~by:3 c;
  Alcotest.(check int) "mirrored into parent" 3 (Obs.Metrics.value pc);
  Obs.Metrics.reset_counter c;
  Obs.Metrics.incr c;
  Alcotest.(check int) "child reset is local" 1 (Obs.Metrics.value c);
  Alcotest.(check int) "parent keeps the trajectory" 4 (Obs.Metrics.value pc);
  let g = Obs.Metrics.gauge child "live" in
  let pg = Obs.Metrics.gauge parent "live" in
  Obs.Metrics.add g 10;
  Obs.Metrics.add g (-4);
  Alcotest.(check int) "gauge deltas aggregate" 6 (Obs.Metrics.gauge_value pg)

let test_metrics_snapshot () =
  let r = Obs.Metrics.create () in
  ignore (Obs.Metrics.counter r "b");
  ignore (Obs.Metrics.gauge r "a");
  ignore (Obs.Metrics.hist r "c");
  let names = List.map fst (Obs.Metrics.snapshot r) in
  Alcotest.(check (list string))
    "first-registration order" [ "b"; "a"; "c" ] names;
  match Obs.Json.parse (Obs.Json.to_string (Obs.Metrics.to_json r)) with
  | Ok v ->
    Alcotest.(check bool)
      "schema tag" true
      (Obs.Json.member "schema" v = Some (Obs.Json.Str "metrics/1"))
  | Error e -> Alcotest.failf "metrics json unparseable: %s" e

(* ------------------------------------------------------------------ *)
(* Tracer                                                              *)

let test_tracer_ring () =
  let t = Obs.Tracer.create ~capacity:4 () in
  let s = Obs.Tracer.process t ~name:"m" in
  Obs.Tracer.thread_name s ~tid:0 "worker";
  Obs.Tracer.thread_name s ~tid:0 "worker";
  for i = 1 to 6 do
    Obs.Tracer.instant s ~tid:0 ~name:(Printf.sprintf "e%d" i) (i * 10)
  done;
  Alcotest.(check int) "recorded counts everything" 6 (Obs.Tracer.recorded t);
  Alcotest.(check int) "oldest two overwritten" 2 (Obs.Tracer.dropped t);
  let js = Obs.Json.to_string (Obs.Tracer.to_json t) in
  Alcotest.(check bool) "oldest event gone" false (contains js "\"e1\"");
  Alcotest.(check bool) "newest event kept" true (contains js "\"e6\"");
  (* thread_name metadata is deduplicated and survives the ring *)
  let count_substring hay needle =
    let ln = String.length needle in
    let rec go i acc =
      if i + ln > String.length hay then acc
      else if String.sub hay i ln = needle then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "one thread_name record" 1 (count_substring js "thread_name")

let test_tracer_span_args () =
  let t = Obs.Tracer.create () in
  let s = Obs.Tracer.process t ~name:"m" in
  Obs.Tracer.span s ~tid:3 ~name:"tx" ~cat:"tx"
    ~args:[ ("attempt", Obs.Json.Int 2) ]
    100 150;
  match Obs.Json.parse (Obs.Json.to_string (Obs.Tracer.to_json t)) with
  | Error e -> Alcotest.failf "trace json unparseable: %s" e
  | Ok v -> (
    match Obs.Json.member "traceEvents" v with
    | Some (Obs.Json.List evs) ->
      let ev =
        List.find
          (fun e -> Obs.Json.member "name" e = Some (Obs.Json.Str "tx"))
          evs
      in
      Alcotest.(check bool) "ph X" true
        (Obs.Json.member "ph" ev = Some (Obs.Json.Str "X"));
      Alcotest.(check bool) "dur 50" true
        (Obs.Json.member "dur" ev = Some (Obs.Json.Int 50));
      Alcotest.(check bool) "ts 100" true
        (Obs.Json.member "ts" ev = Some (Obs.Json.Int 100));
      Alcotest.(check bool) "tid 3" true
        (Obs.Json.member "tid" ev = Some (Obs.Json.Int 3))
    | _ -> Alcotest.fail "no traceEvents list")

(* ------------------------------------------------------------------ *)
(* Profiler                                                            *)

let test_profiler_attribution () =
  let p = Obs.Profiler.create () in
  (* 8-word lines: words 0-7 are line 0, 8-15 line 1, ... *)
  Obs.Profiler.label p ~name:"A" ~base:0 ~words:8;
  Obs.Profiler.label p ~name:"B" ~base:8 ~words:16;
  Obs.Profiler.label p ~name:"A" ~base:0 ~words:8;
  (* relabelling is idempotent *)
  Obs.Profiler.label p ~name:"C" ~base:12 ~words:2;
  (* overlaps B's line *)
  Obs.Profiler.record_transfer p ~line:0 ~wait:0 ~cost:40 ~sharers:2;
  Obs.Profiler.record_transfer p ~line:1 ~wait:10 ~cost:50 ~sharers:3;
  Obs.Profiler.record_transfer p ~line:1 ~wait:0 ~cost:40 ~sharers:1;
  Obs.Profiler.record_transfer p ~line:9 ~wait:0 ~cost:40 ~sharers:1;
  Alcotest.(check int) "total transfers" 4 (Obs.Profiler.total_transfers p);
  let lines = Obs.Profiler.lines p in
  (match lines with
  | top :: _ ->
    Alcotest.(check int) "hottest line first" 1 top.Obs.Profiler.ls_line;
    Alcotest.(check string) "false sharing shown" "B + C" top.ls_region;
    Alcotest.(check int) "wait accumulated" 10 top.ls_wait;
    Alcotest.(check int) "peak sharers" 3 top.ls_max_sharers
  | [] -> Alcotest.fail "no lines");
  let unlabeled =
    List.find (fun l -> l.Obs.Profiler.ls_line = 9) lines
  in
  Alcotest.(check string) "unlabeled line" "?" unlabeled.ls_region;
  match Obs.Profiler.regions p with
  | (top_region, n, _) :: _ ->
    Alcotest.(check string) "hottest region" "B + C" top_region;
    Alcotest.(check int) "hottest region transfers" 2 n
  | [] -> Alcotest.fail "no regions"

(* ------------------------------------------------------------------ *)
(* System level: determinism and zero cost                              *)

(* A small contended HTM workload on a fresh machine; returns the final
   counter value and each thread's final virtual clock. *)
let run_workload ?tracer ?metrics ?profile ~seed () =
  let mem = Simmem.create ?metrics () in
  (match profile with
  | Some p -> Simmem.set_profiler mem (Some p)
  | None -> ());
  let htm = Htm.create ?metrics mem in
  let boot = Sim.boot ~seed () in
  let addr = Simmem.malloc mem boot 8 in
  Simmem.label mem ~name:"counter" ~base:addr ~words:8;
  let clocks = Array.make 4 0 in
  Sim.run ~seed ?tracer
    (Array.init 4 (fun i ->
         fun ctx ->
           for _ = 1 to 15 do
             Htm.atomic htm ctx (fun tx -> Htm.write tx addr (Htm.read tx addr + 1));
             Sim.tick ctx (1 + Sim.Rng.int (Sim.rng ctx) 40)
           done;
           clocks.(i) <- Sim.clock ctx));
  (Simmem.peek mem addr, Array.to_list clocks)

let test_trace_determinism () =
  let trace_bytes () =
    let t = Obs.Tracer.create () in
    let sink = Obs.Tracer.process t ~name:"machine" in
    let (_ : int * int list) = run_workload ~tracer:sink ~seed:7 () in
    Obs.Json.to_string (Obs.Tracer.to_json t)
  in
  let a = trace_bytes () in
  Alcotest.(check bool) "trace has tx spans" true (contains a "\"tx\"");
  Alcotest.(check string) "same seed, byte-identical trace" a (trace_bytes ())

let test_zero_cost_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:25
       ~name:"tracing+metrics+profiling never perturb virtual time"
       QCheck.(int_range 1 10_000)
       (fun seed ->
         let bare = run_workload ~seed () in
         let t = Obs.Tracer.create () in
         let sink = Obs.Tracer.process t ~name:"m" in
         let metrics = Obs.Metrics.create () in
         let profile = Obs.Profiler.create () in
         let observed = run_workload ~tracer:sink ~metrics ~profile ~seed () in
         Obs.Tracer.recorded t > 0 && bare = observed))

let test_fault_instants_in_trace () =
  let t = Obs.Tracer.create () in
  let sink = Obs.Tracer.process t ~name:"m" in
  let faults =
    Sim.Fault.make
      { Sim.Fault.none with
        kills_at = [ (1, 300) ];
        fault_seed = 5;
        stall_rate = 0.05;
        stall_cycles = 400
      }
  in
  let seen = ref [] in
  Sim.run ~seed:3 ~tracer:sink ~faults
    ~on_fault:(fun ev -> seen := ev.Sim.Fault.ev_kind :: !seen)
    (Array.init 2 (fun _ ->
         fun ctx ->
           for _ = 1 to 100 do
             Sim.tick ctx 10;
             Sim.note_progress ctx
           done));
  let js = Obs.Json.to_string (Obs.Tracer.to_json t) in
  Alcotest.(check bool) "kill instant traced" true (contains js "fault.kill");
  Alcotest.(check bool) "stall instant traced" true (contains js "fault.stall");
  Alcotest.(check bool) "on_fault tap saw the kill" true
    (List.mem Sim.Fault.Killed !seen);
  Alcotest.(check bool) "on_fault tap saw a stall" true
    (List.exists (function Sim.Fault.Stalled _ -> true | _ -> false) !seen)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          test_json_roundtrip_prop;
        ] );
      ( "table",
        [
          Alcotest.test_case "print golden" `Quick test_table_print_golden;
          Alcotest.test_case "csv golden" `Quick test_table_csv_golden;
          Alcotest.test_case "json roundtrip" `Quick test_table_json_roundtrip;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter" `Quick test_metrics_counter;
          Alcotest.test_case "gauge and hist" `Quick test_metrics_gauge_hist;
          Alcotest.test_case "parent chain and reset" `Quick test_metrics_parent_and_reset;
          Alcotest.test_case "snapshot" `Quick test_metrics_snapshot;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "ring overwrite" `Quick test_tracer_ring;
          Alcotest.test_case "span payload" `Quick test_tracer_span_args;
        ] );
      ( "profiler",
        [ Alcotest.test_case "attribution" `Quick test_profiler_attribution ] );
      ( "system",
        [
          Alcotest.test_case "trace determinism" `Quick test_trace_determinism;
          test_zero_cost_prop;
          Alcotest.test_case "fault instants" `Quick test_fault_instants_in_trace;
        ] );
    ]
