(* The linearizability checker itself: hand-built histories with known
   verdicts, then cross-checking every queue implementation against it
   under adversarial scheduling strategies. *)

module Lin = Explore.Lin
module Scenario = Explore.Scenario

let history ops =
  let h = Lin.create () in
  List.iter (fun (tid, inv, res, kind) -> Lin.add h ~tid ~inv ~res kind) ops;
  h

let accepts name ops () =
  match Lin.check (history ops) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s rejected:\n%s" name msg

let rejects name ops () =
  match Lin.check (history ops) with
  | Ok () -> Alcotest.failf "%s accepted a non-linearizable history" name
  | Error _ -> ()

let accept_cases =
  [
    ( "sequential",
      [
        (0, 1, 2, Lin.Enq 1);
        (0, 3, 4, Lin.Enq 2);
        (0, 5, 6, Lin.Deq (Some 1));
        (0, 7, 8, Lin.Deq (Some 2));
      ] );
    ( "dequeue inside the enqueue's interval",
      [ (0, 1, 4, Lin.Enq 1); (1, 2, 3, Lin.Deq (Some 1)) ] );
    ( "empty dequeue concurrent with an enqueue",
      [ (0, 1, 3, Lin.Enq 1); (1, 2, 4, Lin.Deq None); (1, 5, 6, Lin.Deq (Some 1)) ] );
    ( "overlapping enqueues, either order",
      [
        (0, 1, 4, Lin.Enq 1);
        (1, 2, 3, Lin.Enq 2);
        (0, 5, 6, Lin.Deq (Some 2));
        (1, 7, 8, Lin.Deq (Some 1));
      ] );
    ("empty history", []);
  ]

let reject_cases =
  [
    ("lost value", [ (0, 1, 2, Lin.Enq 1); (1, 5, 6, Lin.Deq None) ]);
    ( "duplicated value",
      [
        (0, 1, 2, Lin.Enq 1);
        (1, 3, 4, Lin.Deq (Some 1));
        (1, 5, 6, Lin.Deq (Some 1));
      ] );
    ( "reordered dequeues of ordered enqueues",
      [
        (0, 1, 2, Lin.Enq 1);
        (0, 3, 4, Lin.Enq 2);
        (1, 5, 6, Lin.Deq (Some 2));
        (1, 7, 8, Lin.Deq (Some 1));
      ] );
    ("value never enqueued", [ (0, 1, 2, Lin.Deq (Some 5)) ]);
  ]

(* Every real queue, exercised under schedules that maximally decouple
   execution order from virtual time, must still produce linearizable
   histories. *)
let cross_check (mk : Hqueue.Intf.maker) () =
  List.iter
    (fun threads ->
      List.iter
        (fun seed ->
          let scn = Scenario.queue_lin mk ~threads ~ops:4 in
          List.iter
            (fun strategy ->
              match
                scn.scn_run ~strategy ~seed ~faults:None ~record:None ~trace:None
              with
              | Scenario.Pass -> ()
              | Scenario.Fail msg ->
                Alcotest.failf "%s, %d threads, seed %d, %s:\n%s" mk.queue_name threads
                  seed
                  (Format.asprintf "%a" Sim.pp_strategy strategy)
                  msg)
            [
              Sim.Random_walk { rw_seed = seed };
              Sim.Pct { pct_seed = seed; pct_depth = 3; pct_length = 500 };
            ])
        [ 11; 23; 37 ])
    [ 2; 3; 4 ]

let () =
  Alcotest.run "linearize"
    [
      ( "accepts",
        List.map
          (fun (name, ops) -> Alcotest.test_case name `Quick (accepts name ops))
          accept_cases );
      ( "rejects",
        List.map
          (fun (name, ops) -> Alcotest.test_case name `Quick (rejects name ops))
          reject_cases );
      ( "queues",
        List.map
          (fun (mk : Hqueue.Intf.maker) ->
            Alcotest.test_case (mk.queue_name ^ " under adversarial schedules") `Quick
              (cross_check mk))
          Hqueue.all_with_extensions );
    ]
