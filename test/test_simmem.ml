(* Tests for the simulated memory: allocator, fault detection, versions,
   coherence costs. *)

let make () = (Simmem.create (), Sim.boot ())

let test_malloc_zeroed () =
  let mem, ctx = make () in
  let b = Simmem.malloc mem ctx 8 in
  for i = 0 to 7 do
    Alcotest.(check int) "zeroed" 0 (Simmem.read mem ctx (b + i))
  done

let test_read_write () =
  let mem, ctx = make () in
  let b = Simmem.malloc mem ctx 4 in
  Simmem.write mem ctx (b + 2) 777;
  Alcotest.(check int) "read back" 777 (Simmem.read mem ctx (b + 2));
  Alcotest.(check int) "neighbour untouched" 0 (Simmem.read mem ctx (b + 1))

let test_null_fault () =
  let mem, ctx = make () in
  Alcotest.check_raises "null read" (Simmem.Fault (Simmem.Unallocated 0)) (fun () ->
      ignore (Simmem.read mem ctx Simmem.null))

let test_use_after_free () =
  let mem, ctx = make () in
  let b = Simmem.malloc mem ctx 4 in
  Simmem.free mem ctx b;
  Alcotest.check_raises "dangling read" (Simmem.Fault (Simmem.Use_after_free (b + 1)))
    (fun () -> ignore (Simmem.read mem ctx (b + 1)));
  Alcotest.check_raises "dangling write" (Simmem.Fault (Simmem.Use_after_free b)) (fun () ->
      Simmem.write mem ctx b 1)

let test_double_free () =
  let mem, ctx = make () in
  let b = Simmem.malloc mem ctx 4 in
  Simmem.free mem ctx b;
  Alcotest.check_raises "double free" (Simmem.Fault (Simmem.Double_free b)) (fun () ->
      Simmem.free mem ctx b)

let test_invalid_free () =
  let mem, ctx = make () in
  let b = Simmem.malloc mem ctx 4 in
  Alcotest.check_raises "interior free" (Simmem.Fault (Simmem.Invalid_free (b + 1)))
    (fun () -> Simmem.free mem ctx (b + 1))

let test_reuse_same_size () =
  let mem, ctx = make () in
  let a = Simmem.malloc mem ctx 4 in
  Simmem.free mem ctx a;
  let b = Simmem.malloc mem ctx 4 in
  Alcotest.(check int) "LIFO reuse of equal-size block" a b;
  let c = Simmem.malloc mem ctx 5 in
  Alcotest.(check bool) "different size not reused" true (c <> a)

let test_reuse_zeroes () =
  let mem, ctx = make () in
  let a = Simmem.malloc mem ctx 2 in
  Simmem.write mem ctx a 123;
  Simmem.free mem ctx a;
  let b = Simmem.malloc mem ctx 2 in
  Alcotest.(check int) "recycled block zeroed" 0 (Simmem.read mem ctx b)

let test_stats () =
  let mem, ctx = make () in
  let s0 = Simmem.stats mem in
  let a = Simmem.malloc mem ctx 10 in
  let b = Simmem.malloc mem ctx 6 in
  let s1 = Simmem.stats mem in
  Alcotest.(check int) "live words" (s0.live_words + 16) s1.live_words;
  Alcotest.(check int) "live blocks" (s0.live_blocks + 2) s1.live_blocks;
  Simmem.free mem ctx a;
  Simmem.free mem ctx b;
  let s2 = Simmem.stats mem in
  Alcotest.(check int) "back to baseline words" s0.live_words s2.live_words;
  Alcotest.(check int) "peak retained" s1.live_words s2.peak_live_words;
  Alcotest.(check int) "alloc count" (s0.total_allocs + 2) s2.total_allocs;
  Alcotest.(check int) "free count" (s0.total_frees + 2) s2.total_frees

(* Policy-aware extent accounting: under the shared allocator the heap
   extent is the plain bump pointer and there are no arenas to report;
   under an arena policy every carved word is attributed to exactly one
   arena and the per-arena extents partition the heap past the null
   line. *)
let test_shared_extent () =
  let mem, ctx = make () in
  let s0 = Simmem.stats mem in
  Alcotest.(check (list (pair int int))) "shared-lifo reports no arenas" []
    s0.arena_extents;
  let a = Simmem.malloc mem ctx 10 in
  let s1 = Simmem.stats mem in
  Alcotest.(check int) "bump allocation extends the extent exactly"
    (s0.heap_extent + 10) s1.heap_extent;
  Simmem.free mem ctx a;
  let b = Simmem.malloc mem ctx 10 in
  Alcotest.(check int) "LIFO reuse" a b;
  Alcotest.(check int) "reuse leaves the extent alone" s1.heap_extent
    (Simmem.stats mem).heap_extent;
  Alcotest.(check (list (pair int int))) "still no arenas" []
    (Simmem.stats mem).arena_extents

let test_arena_extents () =
  List.iter
    (fun placement ->
      let label = Simmem.placement_label placement in
      let mem = Simmem.create ~alloc:(Simmem.Arena placement) () in
      (* Heavy enough to outgrow one arena chunk even under the packing
         policy, so the per-arena attribution is visible (chunks are
         carved in 512-word units). *)
      let t0 ctx =
        for _ = 1 to 40 do
          ignore (Simmem.malloc mem ctx 17)
        done
      in
      let t1 ctx = ignore (Simmem.malloc mem ctx 1) in
      Sim.run ~seed:1 [| t0; t1 |];
      let st = Simmem.stats mem in
      let sum = List.fold_left (fun acc (_, w) -> acc + w) 0 st.arena_extents in
      Alcotest.(check int)
        (label ^ ": arena extents partition the heap extent")
        (st.heap_extent - 8) sum;
      let w0 =
        match List.assoc_opt 0 st.arena_extents with
        | Some w -> w
        | None -> Alcotest.failf "%s: thread 0 carved no arena" label
      and w1 =
        match List.assoc_opt 1 st.arena_extents with
        | Some w -> w
        | None -> Alcotest.failf "%s: thread 1 carved no arena" label
      in
      Alcotest.(check bool)
        (label ^ ": the heavy allocator is attributed the larger extent")
        true (w0 > w1);
      Alcotest.(check bool)
        (label ^ ": extents in tid order")
        true
        (List.sort compare st.arena_extents = st.arena_extents))
    [ Simmem.Line_packed; Simmem.Line_isolated; Simmem.Cache_index_aware ]

let test_block_size () =
  let mem, ctx = make () in
  let a = Simmem.malloc mem ctx 7 in
  Alcotest.(check (option int)) "size" (Some 7) (Simmem.block_size mem a);
  Alcotest.(check (option int)) "interior is not a block" None (Simmem.block_size mem (a + 1));
  Simmem.free mem ctx a;
  Alcotest.(check (option int)) "freed block gone" None (Simmem.block_size mem a)

let test_versions () =
  let mem, ctx = make () in
  let a = Simmem.malloc mem ctx 2 in
  let v0 = Simmem.version mem a in
  Simmem.write mem ctx a 1;
  Alcotest.(check int) "write bumps" (v0 + 1) (Simmem.version mem a);
  let (_ : bool) = Simmem.cas mem ctx a ~expected:1 ~desired:2 in
  Alcotest.(check int) "successful cas bumps" (v0 + 2) (Simmem.version mem a);
  let (_ : bool) = Simmem.cas mem ctx a ~expected:99 ~desired:3 in
  Alcotest.(check int) "failed cas does not bump" (v0 + 2) (Simmem.version mem a);
  Simmem.free mem ctx a;
  Alcotest.(check bool) "free bumps" true (Simmem.version mem a > v0 + 2)

let test_cas_semantics () =
  let mem, ctx = make () in
  let a = Simmem.malloc mem ctx 1 in
  Alcotest.(check bool) "cas succeeds" true (Simmem.cas mem ctx a ~expected:0 ~desired:5);
  Alcotest.(check bool) "cas fails" false (Simmem.cas mem ctx a ~expected:0 ~desired:9);
  Alcotest.(check int) "value after failed cas" 5 (Simmem.read mem ctx a)

let test_fetch_add () =
  let mem, ctx = make () in
  let a = Simmem.malloc mem ctx 1 in
  Alcotest.(check int) "returns old" 0 (Simmem.fetch_add mem ctx a 3);
  Alcotest.(check int) "returns old again" 3 (Simmem.fetch_add mem ctx a (-1));
  Alcotest.(check int) "net value" 2 (Simmem.read mem ctx a)

let test_coherence_costs () =
  let mem, ctx = make () in
  let a = Simmem.malloc mem ctx 1 in
  Simmem.write mem ctx a 1;
  let t0 = Sim.clock ctx in
  ignore (Simmem.read mem ctx a);
  let hit = Sim.clock ctx - t0 in
  (* A second thread's first read misses. *)
  let miss = ref 0 in
  Sim.run ~seed:1
    [|
      (fun tctx ->
        let t = Sim.clock tctx in
        ignore (Simmem.read mem tctx a);
        miss := Sim.clock tctx - t);
    |];
  Alcotest.(check bool)
    (Printf.sprintf "miss (%d) dearer than hit (%d)" !miss hit)
    true
    (!miss > hit)

let test_line_serialization () =
  (* Misses on one line queue behind each other; misses on distinct lines
     proceed in parallel. *)
  let mem = Simmem.create () in
  let boot = Sim.boot () in
  let shared = Simmem.malloc mem boot 1 in
  (* 17-word blocks with the target at +8 guarantee each target word lives
     on a line no other target shares, whatever the block alignment. *)
  let privs = Array.init 8 (fun _ -> Simmem.malloc mem boot 17 + 8) in
  let finish_shared = Array.make 8 0 and finish_priv = Array.make 8 0 in
  Sim.run ~seed:2
    (Array.init 8 (fun i ->
         fun ctx ->
           Simmem.write mem ctx shared i;
           finish_shared.(i) <- Sim.clock ctx));
  Sim.run ~seed:2
    (Array.init 8 (fun i ->
         fun ctx ->
           Simmem.write mem ctx privs.(i) i;
           finish_priv.(i) <- Sim.clock ctx));
  let m a = Array.fold_left max 0 a in
  Alcotest.(check bool)
    (Printf.sprintf "hot line serializes (%d) vs private lines (%d)" (m finish_shared)
       (m finish_priv))
    true
    (m finish_shared > 3 * m finish_priv)

let test_access_counters () =
  let mem, ctx = make () in
  let a = Simmem.malloc mem ctx 1 in
  let s0 = Simmem.stats mem in
  ignore (Simmem.read mem ctx a);
  ignore (Simmem.read mem ctx a);
  Simmem.write mem ctx a 5;
  ignore (Simmem.cas mem ctx a ~expected:5 ~desired:6);
  let s1 = Simmem.stats mem in
  Alcotest.(check int) "reads counted" (s0.reads + 2) s1.reads;
  Alcotest.(check int) "first read missed" (s0.read_misses + 1) s1.read_misses;
  (* write + cas both count as stores; cas also counts as an atomic *)
  Alcotest.(check int) "writes counted" (s0.writes + 2) s1.writes;
  Alcotest.(check int) "atomics counted" (s0.atomics + 1) s1.atomics

let test_tx_plane () =
  let mem, ctx = make () in
  let a = Simmem.malloc mem ctx 1 in
  Simmem.write mem ctx a 42;
  (match Simmem.Tx_plane.read mem ctx a with
   | None -> Alcotest.fail "live read must succeed"
   | Some (v, ver) ->
     Alcotest.(check int) "value" 42 v;
     Alcotest.(check bool) "validates" true (Simmem.Tx_plane.validate mem a ver);
     Simmem.write mem ctx a 43;
     Alcotest.(check bool) "stale after write" false (Simmem.Tx_plane.validate mem a ver));
  Simmem.free mem ctx a;
  Alcotest.(check bool) "freed read reports None" true (Simmem.Tx_plane.read mem ctx a = None);
  Alcotest.(check bool) "commit_write to freed fails" false
    (Simmem.Tx_plane.commit_write mem ctx a 1)

(* Property: the allocator agrees with a simple model of live blocks. *)
let prop_allocator_model =
  let gen = QCheck.(list (pair bool (int_range 1 16))) in
  QCheck.Test.make ~name:"allocator matches model" ~count:200 gen (fun script ->
      let mem, ctx = make () in
      let live = Hashtbl.create 16 in
      let next_id = ref 0 in
      List.iter
        (fun (is_alloc, size) ->
          if is_alloc || Hashtbl.length live = 0 then begin
            let b = Simmem.malloc mem ctx size in
            Hashtbl.replace live b size;
            incr next_id
          end
          else begin
            (* free an arbitrary live block *)
            let b, _ = Hashtbl.fold (fun k v _ -> (k, v)) live (0, 0) in
            Simmem.free mem ctx b;
            Hashtbl.remove live b
          end)
        script;
      let expected_words = Hashtbl.fold (fun _ s acc -> acc + s) live 0 in
      let st = Simmem.stats mem in
      st.live_words = expected_words
      && st.live_blocks = Hashtbl.length live
      && Hashtbl.fold (fun b _ acc -> acc && Simmem.is_allocated mem b) live true)

let () =
  Alcotest.run "simmem"
    [
      ( "allocator",
        [
          Alcotest.test_case "malloc zeroed" `Quick test_malloc_zeroed;
          Alcotest.test_case "read/write" `Quick test_read_write;
          Alcotest.test_case "reuse same size" `Quick test_reuse_same_size;
          Alcotest.test_case "reuse zeroes" `Quick test_reuse_zeroes;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "shared-lifo extent" `Quick test_shared_extent;
          Alcotest.test_case "arena extents" `Quick test_arena_extents;
          Alcotest.test_case "block size" `Quick test_block_size;
        ] );
      ( "faults",
        [
          Alcotest.test_case "null" `Quick test_null_fault;
          Alcotest.test_case "use after free" `Quick test_use_after_free;
          Alcotest.test_case "double free" `Quick test_double_free;
          Alcotest.test_case "invalid free" `Quick test_invalid_free;
        ] );
      ( "atomics",
        [
          Alcotest.test_case "versions" `Quick test_versions;
          Alcotest.test_case "cas" `Quick test_cas_semantics;
          Alcotest.test_case "fetch_add" `Quick test_fetch_add;
        ] );
      ( "coherence",
        [
          Alcotest.test_case "hit vs miss" `Quick test_coherence_costs;
          Alcotest.test_case "line serialization" `Quick test_line_serialization;
        ] );
      ("counters", [ Alcotest.test_case "access counters" `Quick test_access_counters ]);
      ("tx plane", [ Alcotest.test_case "read/validate/commit" `Quick test_tx_plane ]);
      ("property", [ QCheck_alcotest.to_alcotest prop_allocator_model ]);
    ]
