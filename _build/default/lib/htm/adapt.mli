(** Adaptive telescoping step size (paper §3.4).

    Telescoping amortises transaction begin/commit costs over several
    traversal steps, but larger transactions abort more under contention.
    The paper's controller keeps an 8-entry window of recent transaction
    outcomes and a counter of [commits - aborts] over the window:

    - after a commit, if the counter exceeds [+6], the step size doubles;
    - after an abort, if the counter is below [-2], the step size halves;
    - when the step size changes, the window is reset ("only transaction
      attempts since the last resize are relevant").

    The controller also keeps a histogram of how many elements were
    collected at each step size, which regenerates the paper's Figure 6. *)

type t

val create : ?min_step:int -> ?max_step:int -> initial:int -> unit -> t
(** Defaults: [min_step = 1], [max_step = 32] (Rock's store-buffer bound). *)

val step : t -> int
(** Current step size. *)

val on_commit : t -> unit
val on_abort : t -> unit

val record_collected : t -> int -> unit
(** [record_collected t n] accounts [n] elements collected at the current
    step size (Figure 6 instrumentation). *)

val histogram : t -> (int * int) list
(** [(step_size, elements_collected)] pairs, ascending, zeros omitted. *)

val counter : t -> int
(** Current commits-minus-aborts value over the window (for tests). *)

val window_length : t -> int
(** Number of outcomes currently in the window, at most 8 (for tests). *)
