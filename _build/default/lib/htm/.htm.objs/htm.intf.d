lib/htm/htm.mli: Adapt Format Sim Simmem
