lib/htm/adapt.mli:
