lib/htm/adapt.ml: Array
