lib/htm/htm.ml: Adapt Array Format List Sim Simmem
