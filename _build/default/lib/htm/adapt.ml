type t = {
  min_step : int;
  max_step : int;
  mutable step : int;
  mutable window : int; (* bit vector of recent outcomes, bit set = commit *)
  mutable nbits : int; (* how many outcomes the window holds, <= 8 *)
  mutable counter : int; (* commits - aborts over the window *)
  hist : int array; (* elements collected, indexed by log2 of step size *)
}

let window_size = 8
let double_threshold = 6
let halve_threshold = -2

let log2 n =
  let rec go n acc = if n <= 1 then acc else go (n lsr 1) (acc + 1) in
  go n 0

let create ?(min_step = 1) ?(max_step = 32) ~initial () =
  if min_step < 1 || max_step < min_step then invalid_arg "Adapt.create: bad bounds";
  if initial < min_step || initial > max_step then invalid_arg "Adapt.create: bad initial";
  {
    min_step;
    max_step;
    step = initial;
    window = 0;
    nbits = 0;
    counter = 0;
    hist = Array.make (log2 max_step + 1) 0;
  }

let step t = t.step
let counter t = t.counter
let window_length t = t.nbits

let reset_window t =
  t.window <- 0;
  t.nbits <- 0;
  t.counter <- 0

let push t outcome =
  if t.nbits = window_size then begin
    let oldest = (t.window lsr (window_size - 1)) land 1 in
    t.counter <- t.counter - (if oldest = 1 then 1 else -1)
  end
  else t.nbits <- t.nbits + 1;
  t.window <- ((t.window lsl 1) lor outcome) land ((1 lsl window_size) - 1);
  t.counter <- t.counter + (if outcome = 1 then 1 else -1)

let on_commit t =
  push t 1;
  if t.counter > double_threshold && t.step < t.max_step then begin
    t.step <- t.step * 2;
    reset_window t
  end

let on_abort t =
  push t 0;
  if t.counter < halve_threshold && t.step > t.min_step then begin
    t.step <- t.step / 2;
    reset_window t
  end

let record_collected t n = t.hist.(log2 t.step) <- t.hist.(log2 t.step) + n

let histogram t =
  let acc = ref [] in
  for i = Array.length t.hist - 1 downto 0 do
    if t.hist.(i) > 0 then acc := (1 lsl i, t.hist.(i)) :: !acc
  done;
  !acc
