(** The Michael-Scott lock-free queue (PODC '96) with counted pointers
    and per-thread node pools: never returns memory, footprint is the
    historical maximum.

    Exposes only the registry entry; instantiate through
    {!Queue_intf.maker}[.make]. *)

val maker : Queue_intf.maker
