(** The HTM FIFO queue (paper §1.1): sequential queue code inside hardware
    transactions; dequeued entries are freed immediately (sandboxing makes
    that safe).

    Exposes only the registry entry; instantiate through
    {!Queue_intf.maker}[.make]. *)

val maker : Queue_intf.maker
