(** Michael-Scott with announcement-based reclamation (the paper's
    "Michael-Scott ROP"): hazard-pointer announce/validate/scan, real
    reclamation at the cost of a fence per traversal step.

    Exposes only the registry entry; instantiate through
    {!Queue_intf.maker}[.make]. *)

val maker : Queue_intf.maker
