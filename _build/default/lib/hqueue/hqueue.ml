(** Concurrent FIFO queues (paper §1.1): the HTM queue and the two
    Michael-Scott configurations it is compared against in Figure 1. *)

module Intf = Queue_intf
module Htm_queue = Htm_queue
module Ms_queue = Ms_queue
module Ms_rop_queue = Ms_rop_queue
module Ms_collect_queue = Ms_collect_queue

(** The three queues of the paper's Figure 1. *)
let all : Queue_intf.maker list = [ Htm_queue.maker; Ms_queue.maker; Ms_rop_queue.maker ]

(** Beyond the paper: Michael-Scott reclaimed through a Dynamic Collect
    object (the §1.2 connection made concrete). *)
let extensions : Queue_intf.maker list = [ Ms_collect_queue.maker ]

let all_with_extensions = all @ extensions

let find_maker name =
  List.find_opt
    (fun (m : Queue_intf.maker) -> String.equal m.queue_name name)
    all_with_extensions
