(** Michael-Scott queue reclaimed through a Dynamic Collect object — the
    §1.2 connection made concrete: announcements live in lazily registered
    collect handles instead of a fixed per-possible-thread array, so the
    announcement space tracks the threads that actually use the queue.

    Exposes only the registry entry; instantiate through
    {!Queue_intf.maker}[.make]. *)

val maker : Queue_intf.maker
