lib/hqueue/ms_rop_queue.ml: Array Htm Int List Queue_intf Sim Simmem
