lib/hqueue/htm_queue.mli: Queue_intf
