lib/hqueue/ms_collect_queue.mli: Queue_intf
