lib/hqueue/ms_queue.mli: Queue_intf
