lib/hqueue/hqueue.ml: Htm_queue List Ms_collect_queue Ms_queue Ms_rop_queue Queue_intf String
