lib/hqueue/ms_rop_queue.mli: Queue_intf
