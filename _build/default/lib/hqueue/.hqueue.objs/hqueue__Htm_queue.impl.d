lib/hqueue/htm_queue.ml: Htm Queue_intf Simmem
