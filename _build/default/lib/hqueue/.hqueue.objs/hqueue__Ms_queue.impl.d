lib/hqueue/ms_queue.ml: Array Htm List Queue_intf Sim Simmem
