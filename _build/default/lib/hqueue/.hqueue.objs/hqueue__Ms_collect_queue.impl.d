lib/hqueue/ms_collect_queue.ml: Array Collect Htm List Queue_intf Sim Simmem
