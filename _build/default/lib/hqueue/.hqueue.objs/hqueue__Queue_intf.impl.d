lib/hqueue/queue_intf.ml: Htm Sim
