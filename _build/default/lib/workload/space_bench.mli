(** Quiescent-space measurements backing the paper's §1.1/§1.2 claims:
    peak vs. residual allocator footprint for queues (grow then drain) and
    collect objects (register then deregister everything). *)

type result = {
  subject : string;
  peak_words : int;  (** allocator peak while the structure was in use *)
  quiescent_words : int;  (** still live after drain/deregister-all *)
}

val queue_space : ?peak_len:int -> ?seed:int -> unit -> result list
val collect_space : ?peak:int -> ?seed:int -> unit -> result list
val to_table : title:string -> result list -> Report.table
