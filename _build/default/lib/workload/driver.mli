(** Shared machinery for the paper's microbenchmarks: machine construction,
    virtual-time accounting, measured and periodic operation loops, and the
    globally unique value supply. *)

val cycles_per_us : int
(** 2000: the virtual clock rate used to convert cycles to the paper's
    ops/µs and ns axes. *)

val op_dispatch : int
(** Per-operation harness cost in cycles (loop, dispatch, rng), which
    dominates the paper's absolute latencies. *)

val warmup : int
(** Virtual time at which measurement windows begin; setup work must
    complete before it. *)

type machine = { mem : Simmem.t; htm : Htm.t; boot : Sim.tctx }

val machine : ?htm_config:Htm.config -> ?seed:int -> unit -> machine

val fresh_value : unit -> int
(** Globally unique non-zero values; the spec checker relies on every
    bound value identifying one bind event. *)

val ops_per_us : ops:int -> duration:int -> float

val tick_dispatch : Sim.tctx -> unit
(** Charge the per-op dispatch cost with jitter (see the implementation
    note on phase-locking). *)

val measured_loop : Sim.tctx -> deadline:int -> (unit -> unit) -> int
(** Run the operation back-to-back from {!warmup} until [deadline];
    returns the number of completed operations. *)

val periodic_loop : Sim.tctx -> deadline:int -> period:int -> (unit -> unit) -> unit
(** Fire the operation every [period] cycles from {!warmup} until
    [deadline]. *)

val split_evenly : int -> int -> int list
(** [split_evenly total n] is [n] parts of [total] differing by at most
    one. *)
