lib/workload/collect_update.mli: Collect Report
