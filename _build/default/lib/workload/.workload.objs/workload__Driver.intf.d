lib/workload/driver.mli: Htm Sim Simmem
