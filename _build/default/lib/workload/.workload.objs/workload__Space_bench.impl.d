lib/workload/space_bench.ml: Array Collect Driver Hqueue List Report Sim Simmem
