lib/workload/collect_update.ml: Array Collect Driver Htm List Option Printf Report Sim String
