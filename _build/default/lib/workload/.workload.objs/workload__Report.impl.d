lib/workload/report.ml: Array Bytes Float Format List Printf String
