lib/workload/queue_bench.mli: Report
