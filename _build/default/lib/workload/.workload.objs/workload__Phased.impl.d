lib/workload/phased.ml: Array Collect Driver List Printf Queue Report Sim
