lib/workload/driver.ml: Htm List Sim Simmem
