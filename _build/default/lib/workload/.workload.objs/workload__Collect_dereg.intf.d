lib/workload/collect_dereg.mli: Collect Report
