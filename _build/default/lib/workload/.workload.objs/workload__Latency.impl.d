lib/workload/latency.ml: Array Collect Driver List Report Sim
