lib/workload/queue_bench.ml: Array Driver Hqueue List Option Report Sim String
