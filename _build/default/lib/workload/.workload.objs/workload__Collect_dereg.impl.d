lib/workload/collect_dereg.ml: Array Collect Collect_update Driver List Option Printf Queue Report Sim String
