lib/workload/phased.mli: Collect Report
