lib/workload/latency.mli: Collect Report
