lib/workload/workload.ml: Collect_dereg Collect_dominated Collect_update Driver Latency Phased Queue_bench Report Space_bench
