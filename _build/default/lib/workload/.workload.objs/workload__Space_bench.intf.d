lib/workload/space_bench.mli: Report
