lib/workload/collect_dominated.mli: Collect Report
