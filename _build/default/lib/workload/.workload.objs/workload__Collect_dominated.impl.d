lib/workload/collect_dominated.ml: Array Collect Driver List Option Queue Report Sim String
