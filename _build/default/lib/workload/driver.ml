(** Shared machinery for the paper's microbenchmarks.

    Virtual time is reported at {!cycles_per_us} cycles per microsecond
    (a 2 GHz clock, the Rock ballpark), which is how the figures' "cycles"
    x-axes and "ops/µs" y-axes are produced. Every benchmark thread
    executes setup, waits until the common measurement start time
    {!warmup}, and counts the operations it completes before the deadline.
    {!op_dispatch} models the per-operation harness cost (loop, dispatch,
    rng) that dominates the paper's absolute latencies. *)

let cycles_per_us = 2000
let op_dispatch = 200
let warmup = 1_000_000

type machine = { mem : Simmem.t; htm : Htm.t; boot : Sim.tctx }

let machine ?(htm_config = Htm.default_config) ?(seed = 1) () =
  let mem = Simmem.create () in
  let htm = Htm.create ~config:htm_config mem in
  { mem; htm; boot = Sim.boot ~seed () }

(* Globally unique non-zero values: the spec checker in the test suite
   relies on every bound value identifying one Register/Update event. *)
let value_counter = ref 0

let fresh_value () =
  incr value_counter;
  !value_counter

(* Throughput of [ops] operations completed during [duration] cycles, in
   operations per microsecond. *)
let ops_per_us ~ops ~duration = float_of_int ops *. float_of_int cycles_per_us /. float_of_int duration

(* Dispatch cost with jitter: real benchmark loops have timing noise, and
   a perfectly deterministic cost lets contending threads phase-lock into
   artificial conflict-free schedules. *)
let tick_dispatch ctx = Sim.tick ctx (op_dispatch + Sim.Rng.int (Sim.rng ctx) 32)

(* Run one op repeatedly from [warmup] until the deadline; returns the
   number of completed operations. Used by the measured thread(s). *)
let measured_loop ctx ~deadline op =
  let ops = ref 0 in
  Sim.advance_to ctx warmup;
  while Sim.clock ctx < deadline do
    tick_dispatch ctx;
    op ();
    incr ops
  done;
  !ops

(* Fire [op] every [period] cycles from [warmup] until the deadline. *)
let periodic_loop ctx ~deadline ~period op =
  let next = ref warmup in
  while !next < deadline do
    Sim.advance_to ctx !next;
    tick_dispatch ctx;
    op ();
    next := !next + period
  done

(* Split [total] into [n] parts differing by at most one. *)
let split_evenly total n = List.init n (fun i -> (total / n) + if i < total mod n then 1 else 0)
