(** ArrayStatSearchNo (paper §3.2.4): fixed-capacity array, search-based
    registration, no compaction. Does not solve Dynamic Collect.

    Exposes only the registry entry; instantiate through
    {!Collect_intf.maker}[.make]. *)

val maker : Collect_intf.maker
