(** Dynamic Collect — the paper's core contribution.

    A Dynamic Collect object (paper §2) binds values to dynamically
    registered handles and supports scanning all current bindings; it is
    the problem at the heart of announcement-based memory reclamation
    (hazard pointers, ROP). This library provides the six HTM-based
    algorithms of §3 and the two non-HTM baselines of §3.3, all running on
    the simulated machine ({!Sim}, {!Simmem}, {!Htm}).

    Use {!Intf.maker}[.make] to instantiate an algorithm, or pick from the
    {!all} registry. See [examples/quickstart.ml] for a tour. *)

module Intf = Collect_intf
module Stepper = Stepper
module Checked = Checked
module Hohrc = Hohrc
module Fast_collect = Fast_collect
module Array_stat_search_no = Array_stat_search_no
module Array_stat_append_dereg = Array_stat_append_dereg
module Array_dyn_search_resize = Array_dyn_search_resize
module Array_dyn_append_dereg = Array_dyn_append_dereg
module Static_baseline = Static_baseline
module Dynamic_baseline = Dynamic_baseline
module Fast_collect_deferred = Fast_collect_deferred
module Array_dyn_append_fastupd = Array_dyn_append_fastupd

(** The eight implementations evaluated in the paper, in its presentation
    order. *)
let all : Intf.maker list =
  [
    Hohrc.maker;
    Fast_collect.maker;
    Array_stat_search_no.maker;
    Array_stat_append_dereg.maker;
    Array_dyn_search_resize.maker;
    Array_dyn_append_dereg.maker;
    Static_baseline.maker;
    Dynamic_baseline.maker;
  ]

(** Variants the paper describes but did not implement: the deferred-free
    FastCollect mode (§3.1.2) and the update-optimised
    ArrayDynAppendDereg (§4.1). They are excluded from the paper's figures
    but covered by tests and the extension benchmarks. *)
let extensions : Intf.maker list =
  [ Fast_collect_deferred.maker; Array_dyn_append_fastupd.maker ]

let all_with_extensions = all @ extensions

(** The algorithms that actually solve the Dynamic Collect problem. *)
let dynamic_solvers = List.filter (fun (m : Intf.maker) -> m.solves_dynamic) all

let find_maker name =
  List.find_opt (fun (m : Intf.maker) -> String.equal m.algo_name name) all_with_extensions
