(** Static baseline (paper §3.3): fixed array, threads statically mapped
    to slots, no synchronisation. Does not solve Dynamic Collect.

    Exposes only the registry entry; instantiate through
    {!Collect_intf.maker}[.make]. *)

val maker : Collect_intf.maker
