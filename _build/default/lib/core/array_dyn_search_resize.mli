(** ArrayDynSearchResize (paper §3.2.4): dynamic array, search-based
    registration, compaction only on resize.

    Exposes only the registry entry; instantiate through
    {!Collect_intf.maker}[.make]. *)

val maker : Collect_intf.maker
