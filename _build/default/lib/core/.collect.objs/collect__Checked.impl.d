lib/core/checked.ml: Collect_intf Hashtbl Printf Sim
