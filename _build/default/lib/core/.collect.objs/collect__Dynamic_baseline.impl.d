lib/core/dynamic_baseline.ml: Collect_intf Htm Sim Simmem
