lib/core/array_stat_append_dereg.ml: Array_common Collect_intf Htm Simmem Stepper
