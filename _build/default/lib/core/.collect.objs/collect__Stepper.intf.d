lib/core/stepper.mli: Collect_intf Sim
