lib/core/fast_collect.mli: Collect_intf
