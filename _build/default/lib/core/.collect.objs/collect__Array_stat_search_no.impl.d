lib/core/array_stat_search_no.ml: Collect_intf Htm Sim Simmem
