lib/core/hohrc.ml: Collect_intf Htm Sim Simmem Stepper
