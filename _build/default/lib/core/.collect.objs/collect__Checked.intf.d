lib/core/checked.mli: Collect_intf
