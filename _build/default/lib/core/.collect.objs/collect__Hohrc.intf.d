lib/core/hohrc.mli: Collect_intf
