lib/core/array_dyn_append_dereg.mli: Collect_intf
