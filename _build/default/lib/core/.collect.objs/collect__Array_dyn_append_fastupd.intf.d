lib/core/array_dyn_append_fastupd.mli: Collect_intf
