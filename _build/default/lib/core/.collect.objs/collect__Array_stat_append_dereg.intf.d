lib/core/array_stat_append_dereg.mli: Collect_intf
