lib/core/array_dyn_search_resize.mli: Collect_intf
