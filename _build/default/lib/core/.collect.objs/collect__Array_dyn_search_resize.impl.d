lib/core/array_dyn_search_resize.ml: Collect_intf Htm Sim Simmem Stepper
