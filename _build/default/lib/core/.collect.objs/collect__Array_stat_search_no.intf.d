lib/core/array_stat_search_no.mli: Collect_intf
