lib/core/array_common.mli: Htm Sim Stepper
