lib/core/array_dyn_append_fastupd.ml: Collect_intf Htm Sim Simmem Stepper
