lib/core/stepper.ml: Array Collect_intf Hashtbl Htm List Option Sim
