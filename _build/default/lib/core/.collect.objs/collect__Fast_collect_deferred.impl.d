lib/core/fast_collect_deferred.ml: Collect_intf Htm Sim Simmem Stepper
