lib/core/dynamic_baseline.mli: Collect_intf
