lib/core/fast_collect.ml: Collect_intf Htm Sim Simmem Stepper
