lib/core/array_common.ml: Htm Sim Simmem Stepper
