lib/core/static_baseline.ml: Array Collect_intf Htm List Sim Simmem
