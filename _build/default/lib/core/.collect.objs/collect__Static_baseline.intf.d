lib/core/static_baseline.mli: Collect_intf
