lib/core/fast_collect_deferred.mli: Collect_intf
