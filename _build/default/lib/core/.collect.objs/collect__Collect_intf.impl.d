lib/core/collect_intf.ml: Htm Sim
