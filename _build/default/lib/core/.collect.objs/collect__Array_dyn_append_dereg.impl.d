lib/core/array_dyn_append_dereg.ml: Array_common Collect_intf Htm Simmem Stepper
