(** Common types for Dynamic Collect implementations (paper §2).

    A collect object binds {e values} (non-zero integers, i.e. machine
    words) to {e handles} (addresses in simulated memory). Handles obey the
    paper's well-formedness rules: [update] and [deregister] may only be
    called by the thread that registered the handle, and only while it is
    registered. [collect] may be called by any thread.

    Zero is reserved: it is the null value used by scan-based algorithms to
    mark empty slots, so clients must bind non-zero values only. *)

type step_policy =
  | Fixed of int  (** telescoping with a constant step size *)
  | Fixed_instrumented of int
      (** constant step size, but paying the per-transaction cost of
          collecting adaptation data — Figure 5's "Best (adapt cost)"
          configurations *)
  | Adaptive  (** the paper's §3.4 adaptive controller *)

type cfg = {
  max_slots : int;
      (** Capacity bound. Static algorithms allocate exactly this many
          slots and raise {!Capacity_exceeded} beyond it; dynamic
          algorithms ignore it. *)
  num_threads : int;
      (** Number of threads that will use the object; the static baseline
          partitions its slots among this many threads by thread id. *)
  step : step_policy;  (** telescoping policy for HTM-based collects *)
  min_size : int;  (** MIN_SIZE of the dynamic arrays (Figure 2) *)
}

let default_cfg = { max_slots = 64; num_threads = 16; step = Fixed 1; min_size = 4 }

exception Capacity_exceeded of string
(** Raised by static algorithms when asked to register beyond their bound,
    and by the static baseline when a thread exceeds its slot quota. *)

type handle = int
(** An address in simulated memory. Opaque to clients. *)

(** A live collect object, exposed as a record of closures so that
    heterogeneous algorithm sets can be benchmarked uniformly. *)
type instance = {
  name : string;
  register : Sim.tctx -> int -> handle;
  update : Sim.tctx -> handle -> int -> unit;
  deregister : Sim.tctx -> handle -> unit;
  collect : Sim.tctx -> Sim.Ibuf.t -> unit;
      (** Appends the collected values to the buffer. May internally reset
          the buffer back to its length at call time (restarting
          algorithms), but never below it. *)
  destroy : Sim.tctx -> unit;
      (** Free the object's memory. Only valid when no handles are
          registered and no operations are in flight. *)
  step_histogram : unit -> (int * int) list;
      (** Elements collected per telescoping step size (Figure 6);
          empty for algorithms without transactional collects. *)
}

type maker = {
  algo_name : string;
  solves_dynamic : bool;
      (** Whether the algorithm solves the Dynamic Collect problem (the
          static baseline and static arrays do not — paper §3.2.1/§3.3). *)
  uses_htm : bool;
  direct_update : bool;
      (** Whether [update] is a naked store to a handle-determined address
          (the paper's ≈135 ns class) rather than a transaction through a
          level of indirection (≈215 ns class). *)
  make : Htm.t -> Sim.tctx -> cfg -> instance;
}
