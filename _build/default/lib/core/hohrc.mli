(** HOHRC — hand-over-hand reference counting over a doubly-linked list
    (paper §3.1.1), with telescoping (§3.4). See the implementation header
    for the full algorithm description.

    Exposes only the registry entry; instantiate through
    {!Collect_intf.maker}[.make]. *)

val maker : Collect_intf.maker
