(** Dynamic baseline (paper §3.3): CAS-based list with hand-over-hand
    traversal reference counts, after Herlihy-Luchangco-Moir 2003.

    Exposes only the registry entry; instantiate through
    {!Collect_intf.maker}[.make]. *)

val maker : Collect_intf.maker
