(** FastCollect with deferred frees — the §3.1.2 variant that trades
    reclamation promptness for collect progress under deregister churn.

    Exposes only the registry entry; instantiate through
    {!Collect_intf.maker}[.make]. *)

val maker : Collect_intf.maker
