(** Per-thread telescoping step control shared by the HTM collects
    (paper §3.4).

    With [Fixed n] every thread always uses step [min n max_step]; with
    [Fixed_instrumented n] the same, but paying the per-transaction cost of
    maintaining the adaptation window (Figure 5's "Best (adapt cost)");
    with [Adaptive] each thread owns an independent {!Htm.Adapt}
    controller, since adaptation must react to the contention that thread
    experiences. *)

type t

val make : Collect_intf.step_policy -> max_step:int -> t
(** [max_step] is per algorithm: e.g. HOHRC spends up to 5 store-buffer
    slots on reference-count bookkeeping, so its steps cannot reach 32.
    For [Adaptive] the bound is rounded down to a power of two. *)

val get : t -> Sim.tctx -> int
(** The step size this thread should use for its next transaction. *)

val on_commit : t -> Sim.tctx -> unit
(** Record a committed collect transaction (charges the instrumentation
    cost for adaptive/instrumented policies). *)

val on_abort : t -> Sim.tctx -> unit
(** Record an aborted attempt. *)

val record_collected : t -> Sim.tctx -> int -> unit
(** Account elements collected at the current step size (Figure 6). *)

val histogram : t -> (int * int) list
(** [(step, elements)] pairs merged across threads, ascending by step. *)
