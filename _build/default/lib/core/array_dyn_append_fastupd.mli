(** ArrayDynAppendDereg optimised for Update — the §4.1 variant (value
    stored with the slot reference; naked-store updates, dearer collects).

    Exposes only the registry entry; instantiate through
    {!Collect_intf.maker}[.make]. *)

val maker : Collect_intf.maker
