(** ArrayStatAppendDereg (paper §3.2.4): fixed-capacity array, append
    registration, compaction on every deregister.

    Exposes only the registry entry; instantiate through
    {!Collect_intf.maker}[.make]. *)

val maker : Collect_intf.maker
