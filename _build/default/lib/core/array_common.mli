(** Pieces shared by the array-based collect algorithms (paper §3.2):
    the shared-header word layout, Figure 2's [append], update through a
    slot reference, and the telescoped reverse collect scan. See the
    implementation header for the layout diagram. *)

val hdr_array : int
val hdr_capacity : int
val hdr_count : int
val hdr_array_new : int
val hdr_capacity_new : int
val hdr_copied : int

val slot_words : int
(** Words per slot: value and back-pointer to the slot reference. *)

val append : Htm.tx -> hdr:int -> count:int -> int -> int -> unit
(** [append tx ~hdr ~count slot_ref v]: Figure 2's [append], inside the
    caller's transaction, with [count] already read there. *)

val update_indirect : Htm.t -> Sim.tctx -> int -> int -> unit
(** Bind a value through the slot reference, transactionally (the ≈215 ns
    class of §5.1). *)

val reverse_collect : Htm.t -> Sim.tctx -> hdr:int -> stepper:Stepper.t -> Sim.Ibuf.t -> unit
(** Telescoped reverse scan over the registered slots; reverse order is
    what makes compact-on-deregister safe. *)
