(** ArrayDynAppendDereg — the paper's flagship algorithm (§4, Figure 2):
    dynamic array, append registration, compaction on every deregister,
    cooperative resizing.

    Exposes only the registry entry; instantiate through
    {!Collect_intf.maker}[.make]. *)

val maker : Collect_intf.maker
