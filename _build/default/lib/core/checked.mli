(** Runtime well-formedness enforcement for Dynamic Collect clients
    (paper §2.2): wrap an instance to get identical behaviour plus a
    {!Violation} on the first ill-formed call — foreign-handle updates,
    double deregistration, null values, destroy with live handles. Costs
    no virtual time. *)

exception Violation of string

val wrap : Collect_intf.instance -> Collect_intf.instance
