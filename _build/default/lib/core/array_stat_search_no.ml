(** ArrayStatSearchNo (paper §3.2.4): fixed-capacity array, search-based
    registration, no compaction.

    Slots are two words ([+0] occupancy flag, [+1] value). Because slots
    never move, a handle is its slot's address: [update] is a naked store
    (the paper's fast ≈135 ns class) and [collect] needs no transactions —
    it scans up to the historical high-water mark with plain loads, reading
    the flag and, when occupied, the value. The scan therefore costs two
    loads per slot where the compacting collects pay one, and with no
    compaction its length tracks the {e historical maximum} number of
    registered slots and never shrinks (Figures 7/8). *)

type t = {
  htm : Htm.t;
  hdr : int;  (** one word: the high-water mark *)
  arr : int;
  capacity : int;
}

let slot_words = 2

let create htm ctx (cfg : Collect_intf.cfg) =
  let mem = Htm.mem htm in
  let capacity = max 1 cfg.max_slots in
  let hdr = Simmem.malloc mem ctx 1 in
  let arr = Simmem.malloc mem ctx (slot_words * capacity) in
  { htm; hdr; arr; capacity }

let register t ctx v =
  let mem = Htm.mem t.htm in
  (* Search with plain loads, then claim the candidate with a short
     transaction that re-validates emptiness; a lost race just resumes the
     search at the next slot. *)
  let rec search i =
    if i >= t.capacity then raise (Collect_intf.Capacity_exceeded "ArrayStatSearchNo")
    else
      let slot = t.arr + (slot_words * i) in
      if Simmem.read mem ctx slot <> 0 then search (i + 1)
      else begin
        let claimed =
          Htm.atomic t.htm ctx (fun tx ->
              if Htm.read tx slot <> 0 then false
              else begin
                Htm.write tx slot 1;
                Htm.write tx (slot + 1) v;
                if Htm.read tx t.hdr < i + 1 then Htm.write tx t.hdr (i + 1);
                true
              end)
        in
        if claimed then slot else search (i + 1)
      end
  in
  search 0

let update t ctx slot v = Simmem.write (Htm.mem t.htm) ctx (slot + 1) v

let deregister t ctx slot =
  (* A naked store suffices: claiming transactions read the flag and are
     doomed by the version bump (strong atomicity). *)
  Simmem.write (Htm.mem t.htm) ctx slot 0

let collect t ctx buf =
  let mem = Htm.mem t.htm in
  let top = Simmem.read mem ctx t.hdr in
  for i = 0 to top - 1 do
    let slot = t.arr + (slot_words * i) in
    if Simmem.read mem ctx slot <> 0 then Sim.Ibuf.add buf (Simmem.read mem ctx (slot + 1))
  done

let destroy t ctx =
  let mem = Htm.mem t.htm in
  Simmem.free mem ctx t.arr;
  Simmem.free mem ctx t.hdr

let maker : Collect_intf.maker =
  {
    algo_name = "ArrayStatSearchNo";
    solves_dynamic = false;
    uses_htm = true;
    direct_update = true;
    make =
      (fun htm ctx cfg ->
        let t = create htm ctx cfg in
        {
          Collect_intf.name = "ArrayStatSearchNo";
          register = register t;
          update = update t;
          deregister = deregister t;
          collect = (fun ctx buf -> collect t ctx buf);
          destroy = destroy t;
          step_histogram = (fun () -> []);
        });
  }
