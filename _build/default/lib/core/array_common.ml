(** Pieces shared by the array-based collect algorithms (paper §3.2).

    Header layout (word offsets from the header base):
    {v
      +0 array          base address of the current slot array
      +1 capacity       number of slots in it
      +2 count          number of registered slots (append algorithms)
      +3 array_new      base of the array being installed, 0 when none
      +4 capacity_new
      +5 copied         slots copied so far during a resize
    v}
    Static algorithms use only the first three words. A slot is two words:
    [+0] the value, [+1] the back-pointer to the handle's slot reference.
    The handle itself is the address of a one-word slot reference holding
    the slot's current address, which is how slots can move (compaction,
    resizing) under concurrent [update]s. *)

let hdr_array = 0
let hdr_capacity = 1
let hdr_count = 2
let hdr_array_new = 3
let hdr_capacity_new = 4
let hdr_copied = 5

let slot_words = 2

(* Figure 2's [append]: store the value and back-pointer into the first
   unused slot, point the slot reference at it, and bump [count]. Must run
   inside the caller's transaction, with [count] already read there. *)
let append tx ~hdr ~count slot_ref v =
  let arr = Htm.read tx (hdr + hdr_array) in
  let slot = arr + (slot_words * count) in
  Htm.write tx slot v;
  Htm.write tx (slot + 1) slot_ref;
  Htm.write tx slot_ref slot;
  Htm.write tx (hdr + hdr_count) (count + 1)

(* Update through the slot reference. The transaction's read-set validation
   guarantees the slot did not move between reading the reference and
   storing the value — the race that makes compaction hard without HTM. *)
let update_indirect htm ctx slot_ref v =
  Htm.atomic htm ctx (fun tx -> Htm.write tx (Htm.read tx slot_ref) v)

(* Telescoped reverse scan over registered slots (Figure 2's Collect with
   the §3.4 step-size generalisation). Reading in reverse index order is
   what makes compact-on-deregister safe: a surviving slot only ever moves
   to a lower index, so it cannot be skipped. Each transaction re-reads
   [count] before each element and clamps the cursor, exactly as lines
   85–86 of the pseudocode. *)
let reverse_collect htm ctx ~hdr ~stepper buf =
  let mem = Htm.mem htm in
  let i = ref (Simmem.read mem ctx (hdr + hdr_count) - 1) in
  while !i >= 0 do
    let len0 = Sim.Ibuf.length buf in
    let committed =
      Htm.atomic htm ctx
        ~on_abort:(fun _ -> Stepper.on_abort stepper ctx)
        (fun tx ->
          Sim.Ibuf.reset_to buf len0;
          let step = Stepper.get stepper ctx in
          let arr = Htm.read tx (hdr + hdr_array) in
          (* Figure 2 re-reads count before every element; within one
             transaction count cannot change (validation would abort), so
             one read per transaction is semantically identical. *)
          let count = Htm.read tx (hdr + hdr_count) in
          let j = ref (if !i >= count then count - 1 else !i) in
          let k = ref 0 in
          while !k < step && !j >= 0 do
            Sim.Ibuf.add buf (Htm.read tx (arr + (slot_words * !j)));
            Htm.record tx;
            decr j;
            incr k
          done;
          !j)
    in
    Stepper.on_commit stepper ctx;
    Stepper.record_collected stepper ctx (Sim.Ibuf.length buf - len0);
    i := committed
  done
