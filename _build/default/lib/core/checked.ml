(** Runtime well-formedness enforcement (paper §2.2).

    The Dynamic Collect specification only constrains executions that are
    well-formed: a thread may [update] or [deregister] only handles it
    registered and has not since deregistered, and bound values must be
    non-zero (zero is the null marker of the scan-based algorithms). The
    algorithm implementations assume this and can corrupt their structures
    silently if a client violates it — exactly the class of bug this
    decorator catches during development.

    [wrap inst] returns an instance with identical behaviour that raises
    {!Violation} on the first ill-formed call. The bookkeeping is
    OCaml-side (the simulator is cooperative, so no synchronisation is
    needed) and costs no virtual time, leaving performance measurements
    undisturbed. *)

exception Violation of string

let violation fmt = Printf.ksprintf (fun s -> raise (Violation s)) fmt

let wrap (inst : Collect_intf.instance) : Collect_intf.instance =
  let owners : (int, int) Hashtbl.t = Hashtbl.create 64 (* handle -> tid *) in
  let owner_of op ctx h =
    match Hashtbl.find_opt owners h with
    | None -> violation "%s: %s of handle %#x which is not registered" inst.name op h
    | Some owner ->
      let tid = Sim.tid ctx in
      if owner <> tid then
        violation "%s: thread %d called %s on handle %#x owned by thread %d" inst.name tid
          op h owner
  in
  {
    inst with
    register =
      (fun ctx v ->
        if v = 0 then violation "%s: register of the null value 0" inst.name;
        let h = inst.register ctx v in
        (match Hashtbl.find_opt owners h with
         | Some owner ->
           violation "%s: register returned handle %#x already owned by thread %d"
             inst.name h owner
         | None -> ());
        Hashtbl.replace owners h (Sim.tid ctx);
        h);
    update =
      (fun ctx h v ->
        if v = 0 then violation "%s: update to the null value 0" inst.name;
        owner_of "update" ctx h;
        inst.update ctx h v);
    deregister =
      (fun ctx h ->
        owner_of "deregister" ctx h;
        Hashtbl.remove owners h;
        inst.deregister ctx h);
    destroy =
      (fun ctx ->
        if Hashtbl.length owners > 0 then
          violation "%s: destroy with %d handles still registered" inst.name
            (Hashtbl.length owners);
        inst.destroy ctx);
  }
