(** Per-thread telescoping step control shared by the HTM collects.

    With [Fixed n] every thread always uses step [min n max_step]. With
    [Adaptive] each thread owns an independent {!Htm.Adapt} controller,
    since adaptation must react to the contention {e this} thread
    experiences. [max_step] is per algorithm: e.g. HOHRC spends up to 5
    store-buffer slots on reference-count bookkeeping, so its collect steps
    cannot reach 32. *)

type policy = Fixed_step of int | Adaptive_step of Htm.Adapt.t option array

type t = { max_step : int; policy : policy; overhead : int }

(* The paper measured 20–30 % overhead for maintaining the outcome window
   (§5.3) and noted it "could be reduced or eliminated with simple hardware
   support". Our controller runs outside simulated memory, so we charge its
   bookkeeping as an explicit per-transaction cycle cost instead. *)
let adapt_overhead_cycles = 40

let rec highest_pow2_le n = if n land (n - 1) = 0 then n else highest_pow2_le (n land (n - 1))

let make (p : Collect_intf.step_policy) ~max_step =
  let max_step = max 1 max_step in
  match p with
  | Collect_intf.Fixed n ->
    { max_step; policy = Fixed_step (max 1 (min n max_step)); overhead = 0 }
  | Collect_intf.Fixed_instrumented n ->
    { max_step;
      policy = Fixed_step (max 1 (min n max_step));
      overhead = adapt_overhead_cycles }
  | Collect_intf.Adaptive ->
    { max_step = highest_pow2_le max_step;
      policy = Adaptive_step (Array.make (Sim.max_threads + 1) None);
      overhead = adapt_overhead_cycles }

let adapt_for t arr ctx =
  let tid = Sim.tid ctx in
  match arr.(tid) with
  | Some a -> a
  | None ->
    let a = Htm.Adapt.create ~max_step:t.max_step ~initial:1 () in
    arr.(tid) <- Some a;
    a

let get t ctx =
  match t.policy with
  | Fixed_step n -> n
  | Adaptive_step arr -> Htm.Adapt.step (adapt_for t arr ctx)

let on_commit t ctx =
  if t.overhead > 0 then Sim.tick ctx t.overhead;
  match t.policy with
  | Fixed_step _ -> ()
  | Adaptive_step arr -> Htm.Adapt.on_commit (adapt_for t arr ctx)

let on_abort t ctx =
  if t.overhead > 0 then Sim.tick ctx t.overhead;
  match t.policy with
  | Fixed_step _ -> ()
  | Adaptive_step arr -> Htm.Adapt.on_abort (adapt_for t arr ctx)

let record_collected t ctx n =
  match t.policy with
  | Fixed_step _ -> ()
  | Adaptive_step arr -> Htm.Adapt.record_collected (adapt_for t arr ctx) n

let histogram t =
  match t.policy with
  | Fixed_step _ -> []
  | Adaptive_step arr ->
    let tbl = Hashtbl.create 8 in
    Array.iter
      (function
        | None -> ()
        | Some a ->
          List.iter
            (fun (s, n) ->
              Hashtbl.replace tbl s (n + Option.value ~default:0 (Hashtbl.find_opt tbl s)))
            (Htm.Adapt.histogram a))
      arr;
    List.sort compare (Hashtbl.fold (fun s n acc -> (s, n) :: acc) tbl [])
