(** FastCollect (paper §3.1.2): unpinned list traversal validated by a
    shared deregister counter; restarts when it changes.

    Exposes only the registry entry; instantiate through
    {!Collect_intf.maker}[.make]. *)

val maker : Collect_intf.maker
