lib/sim/rng.mli:
