lib/sim/sim.ml: Array Effect Ibuf Int64 Rng
