lib/sim/sim.mli: Ibuf Rng
