lib/sim/ibuf.mli:
