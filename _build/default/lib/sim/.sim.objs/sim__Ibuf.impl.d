lib/sim/ibuf.ml: Array
