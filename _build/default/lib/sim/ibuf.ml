type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 16) () =
  let capacity = max capacity 1 in
  { data = Array.make capacity 0; len = 0 }

let length t = t.len

let grow t =
  let data = Array.make (2 * Array.length t.data) 0 in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let add t x =
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Ibuf.get: index out of bounds";
  t.data.(i)

let clear t = t.len <- 0

let reset_to t n =
  if n < 0 || n > t.len then invalid_arg "Ibuf.reset_to: bad length";
  t.len <- n

let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (t.data.(i) :: acc) in
  go (t.len - 1) []

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc
