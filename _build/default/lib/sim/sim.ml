module Rng = Rng
module Ibuf = Ibuf

exception Stop_thread

(* Sharer sets in Simmem are bitmasks in a 63-bit int; one bit is reserved
   for boot contexts, so at most 61 runnable threads. *)
let max_threads = 61
let boot_tid = max_threads

type _ Effect.t += Yield : unit Effect.t

type status =
  | Not_started of (tctx -> unit)
  | Ready of (unit, unit) Effect.Deep.continuation
  | Running
  | Finished

and tctx = {
  ctx_tid : int;
  mutable clock : int;
  ctx_rng : Rng.t;
  mutable sched : sched option;
}

and sched = {
  ctxs : tctx array;
  statuses : status array;
  srng : Rng.t;
  mutable live : int;
  (* Cached lower bound on the minimal clock among all other runnable
     threads; the running thread keeps going without yielding while its
     clock stays below this, which removes most continuation captures. *)
  mutable min_other : int;
}

let boot ?(seed = 0) () =
  { ctx_tid = boot_tid; clock = 0; ctx_rng = Rng.create (seed lxor 0x6a09e667); sched = None }

let tid ctx = ctx.ctx_tid
let clock ctx = ctx.clock
let rng ctx = ctx.ctx_rng

let yield () = Effect.perform Yield

let tick ctx cost =
  ctx.clock <- ctx.clock + cost;
  match ctx.sched with
  | None -> ()
  | Some s -> if ctx.clock >= s.min_other then yield ()

let charge ctx cost = ctx.clock <- ctx.clock + cost

let advance_to ctx t =
  if t > ctx.clock then ctx.clock <- t;
  match ctx.sched with
  | None -> ()
  | Some s -> if ctx.clock >= s.min_other then yield ()

let stop () = raise Stop_thread

(* Pick a runnable thread with the minimal clock; break ties with the
   scheduler RNG so no thread is systematically favoured. *)
let pick_min s =
  let best = ref (-1) and best_clock = ref max_int and ties = ref 0 in
  let n = Array.length s.ctxs in
  for i = 0 to n - 1 do
    match s.statuses.(i) with
    | Finished | Running -> ()
    | Not_started _ | Ready _ ->
      let c = s.ctxs.(i).clock in
      if c < !best_clock then begin
        best_clock := c;
        best := i;
        ties := 1
      end
      else if c = !best_clock then begin
        incr ties;
        if Rng.int s.srng !ties = 0 then best := i
      end
  done;
  !best

let min_other_clock s except =
  let m = ref max_int in
  let n = Array.length s.ctxs in
  for i = 0 to n - 1 do
    if i <> except then
      match s.statuses.(i) with
      | Finished | Running -> ()
      | Not_started _ | Ready _ -> if s.ctxs.(i).clock < !m then m := s.ctxs.(i).clock
  done;
  !m

let handler s t : (unit, unit) Effect.Deep.handler =
  {
    retc =
      (fun () ->
        s.statuses.(t.ctx_tid) <- Finished;
        s.live <- s.live - 1);
    exnc =
      (fun e ->
        match e with
        | Stop_thread ->
          s.statuses.(t.ctx_tid) <- Finished;
          s.live <- s.live - 1
        | e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Yield ->
          Some
            (fun (k : (a, unit) Effect.Deep.continuation) ->
              s.statuses.(t.ctx_tid) <- Ready k)
        | _ -> None);
  }

let run ?(seed = 0) bodies =
  let n = Array.length bodies in
  if n = 0 || n > max_threads then
    invalid_arg "Sim.run: need between 1 and 61 threads";
  let root = Rng.create seed in
  let ctxs =
    Array.init n (fun i ->
        { ctx_tid = i; clock = 0; ctx_rng = Rng.create (Int64.to_int (Rng.bits64 root) lxor i); sched = None })
  in
  let statuses = Array.init n (fun i -> Not_started bodies.(i)) in
  let s = { ctxs; statuses; srng = Rng.split root; live = n; min_other = 0 } in
  Array.iter (fun c -> c.sched <- Some s) ctxs;
  let rec loop () =
    if s.live > 0 then begin
      let i = pick_min s in
      assert (i >= 0);
      let t = ctxs.(i) in
      s.min_other <- min_other_clock s i;
      (match statuses.(i) with
       | Not_started f ->
         statuses.(i) <- Running;
         Effect.Deep.match_with (fun () -> f t) () (handler s t)
       | Ready k ->
         statuses.(i) <- Running;
         Effect.Deep.continue k ()
       | Running | Finished -> assert false);
      (* A thread left in [Running] state yielded via an unhandled path;
         that cannot happen because [Yield] always sets [Ready]. *)
      (match statuses.(i) with
       | Running -> assert false
       | Not_started _ | Ready _ | Finished -> ());
      loop ()
    end
  in
  loop ();
  Array.iter (fun c -> c.sched <- None) ctxs

module Backoff = struct
  type bctx = tctx

  type t = { ctx : bctx; base : int; cap : int; mutable bound : int }

  let create ?(base = 50) ?(cap = 4096) ctx = { ctx; base; cap; bound = base }

  let once b =
    let d = (b.bound / 2) + Rng.int b.ctx.ctx_rng (max 1 (b.bound / 2)) in
    tick b.ctx d;
    b.bound <- min b.cap (b.bound * 2)

  let reset b = b.bound <- b.base
end
