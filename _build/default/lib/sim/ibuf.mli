(** Growable buffer of unboxed integers.

    Used as the result set of [Collect] operations: appending must be cheap
    and allocation-free in the common case so that buffer management does not
    distort the virtual-time accounting of the algorithms under test. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val add : t -> int -> unit
val get : t -> int -> int
(** @raise Invalid_argument on out-of-bounds access. *)

val clear : t -> unit
(** Reset length to zero, keeping storage. *)

val reset_to : t -> int -> unit
(** [reset_to t n] drops all but the first [n] elements. Used by collect
    algorithms that restart mid-operation (e.g. FastCollect).
    @raise Invalid_argument if [n] exceeds the current length. *)

val to_list : t -> int list
val iter : (int -> unit) -> t -> unit
val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
