(* A bursty producer/consumer pipeline on each of the three queues,
   contrasting throughput and — the paper's §1.1 point — memory behaviour:
   the queue grows to a deep backlog and then drains, and only the HTM
   queue and the ROP variant give the memory back.

     dune exec examples/queue_pipeline.exe *)

let burst = 400
let producers = 3
let consumers = 3

let run_pipeline (maker : Hqueue.Intf.maker) =
  let mem = Simmem.create () in
  let htm = Htm.create mem in
  let boot = Sim.boot () in
  let base = (Simmem.stats mem).live_words in
  let q = maker.make htm boot ~num_threads:(producers + consumers) in
  let produced = ref 0 and consumed = ref 0 in
  let producing = ref true in
  let producer ctx =
    (* burst phase: flood the queue *)
    for i = 1 to burst do
      q.enqueue ctx i;
      incr produced
    done;
    producing := false
  in
  let consumer ctx =
    (* consumers lag during the burst, then drain *)
    Sim.advance_to ctx 30_000;
    let rec go idle =
      match q.dequeue ctx with
      | Some _ ->
        incr consumed;
        go 0
      | None ->
        if !producing || idle < 5 then begin
          Sim.tick ctx 500;
          go (idle + 1)
        end
    in
    go 0
  in
  let bodies =
    Array.init (producers + consumers) (fun i -> if i < producers then producer else consumer)
  in
  Sim.run ~seed:9 bodies;
  let st = Simmem.stats mem in
  let peak = st.peak_live_words - base in
  let quiescent = st.live_words - base in
  q.destroy boot;
  (maker.queue_name, !produced, !consumed, peak, quiescent)

let () =
  print_endline "Bursty pipeline: grow deep, then drain (words of simulated memory)";
  Printf.printf "%-18s %9s %9s %12s %16s\n" "queue" "produced" "consumed" "peak words"
    "quiescent words";
  List.iter
    (fun mk ->
      let name, p, c, peak, quiescent = run_pipeline mk in
      Printf.printf "%-18s %9d %9d %12d %16d\n" name p c peak quiescent)
    Hqueue.all;
  print_endline "";
  print_endline
    "HTM and ROP return entries to the allocator; plain Michael-Scott parks";
  print_endline
    "every dequeued node in a thread pool, so its footprint stays at the";
  print_endline "historical maximum even when the queue is empty (paper section 1.1)."
