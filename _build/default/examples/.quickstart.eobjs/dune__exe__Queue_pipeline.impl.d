examples/queue_pipeline.ml: Array Hqueue Htm List Printf Sim Simmem
