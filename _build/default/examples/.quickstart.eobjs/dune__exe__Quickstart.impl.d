examples/quickstart.ml: Collect Htm List Option Printf Sim Simmem String
