examples/dynamic_threads.ml: Array Hqueue Htm List Option Printf Sim Simmem
