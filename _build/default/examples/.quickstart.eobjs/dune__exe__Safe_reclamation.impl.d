examples/safe_reclamation.ml: Array Collect Htm List Option Printf Sim Simmem
