examples/adaptive_telescoping.mli:
