examples/quickstart.mli:
