examples/safe_reclamation.mli:
