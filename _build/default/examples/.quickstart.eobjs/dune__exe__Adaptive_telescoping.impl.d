examples/adaptive_telescoping.ml: Array Collect Htm List Option Printf Sim Simmem String
