(* Threads arriving and departing — the reason Dynamic Collect exists
   (paper §1.2).

     dune exec examples/dynamic_threads.exe

   A fixed hazard-pointer array must be sized for the maximum number of
   threads that could ever touch the structure; announcement slots for
   threads that never arrive are scanned forever. The Dynamic Collect
   version registers announcement handles when a thread first uses the
   queue, so its footprint and scan length track the *actual* population.

   Here six waves of workers share one queue, each wave active in its
   own time window. We report the announcement footprint both ways. *)

let waves = 6
let workers_per_wave = 5
let declared_threads = waves * workers_per_wave (* what ROP must size for *)

let run_with name =
  let mem = Simmem.create () in
  let htm = Htm.create mem in
  let boot = Sim.boot () in
  let mk = Option.get (Hqueue.find_maker name) in
  let before = (Simmem.stats mem).live_words in
  let q = mk.make htm boot ~num_threads:declared_threads in
  let after_create = (Simmem.stats mem).live_words - before in
  let ops = ref 0 in
  let worker i ctx =
    (* wave w is active during [w*100k, (w+1)*100k) *)
    let wave = i / workers_per_wave in
    Sim.advance_to ctx (wave * 100_000);
    let deadline = (wave + 1) * 100_000 in
    while Sim.clock ctx < deadline do
      if Sim.Rng.bool (Sim.rng ctx) then q.enqueue ctx (i + 1)
      else ignore (q.dequeue ctx);
      Sim.tick ctx 300;
      incr ops
    done
  in
  Sim.run ~seed:11 (Array.init declared_threads (fun i -> worker i));
  let rec drain () = match q.dequeue boot with Some _ -> drain () | None -> () in
  drain ();
  let quiescent = (Simmem.stats mem).live_words - before in
  q.destroy boot;
  (after_create, quiescent, !ops)

let () =
  print_endline "Dynamic thread arrival: 6 waves of 5 workers, one queue";
  Printf.printf "%-22s %18s %18s %8s\n" "queue" "words at create" "words quiescent" "ops";
  List.iter
    (fun name ->
      let created, quiescent, ops = run_with name in
      Printf.printf "%-22s %18d %18d %8d\n" name created quiescent ops)
    [ "MichaelScott+ROP"; "MichaelScott+Collect" ];
  print_endline "";
  print_endline
    "The ROP variant allocates announcement slots for all 30 declared";
  print_endline
    "threads up front; the Collect variant registers handles as threads";
  print_endline "first arrive, and its scan only ever visits live announcements."
