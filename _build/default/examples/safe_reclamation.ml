(* Safe memory reclamation built on Dynamic Collect — the paper's
   motivating use case (§1.2).

     dune exec examples/safe_reclamation.exe

   A writer repeatedly publishes a new version of a shared configuration
   block and retires the old one. Readers must never touch freed memory,
   so before dereferencing the current block they *announce* it through a
   Dynamic Collect handle (register/update), validate that it is still
   current, and clear the announcement afterwards. The writer frees a
   retired block only after a Collect shows nobody announces it — exactly
   the hazard-pointer/ROP discipline, with the collect object supplying
   the dynamic announcement slots.

   Every reader access is checked by the simulated allocator: a single
   use-after-free would abort the program with a Fault. *)

let no_announcement = 1 (* a non-zero value that is never a block address *)

let () =
  let mem = Simmem.create () in
  let htm = Htm.create mem in
  let boot = Sim.boot () in
  let maker = Option.get (Collect.find_maker "ArrayDynAppendDereg") in
  let cfg =
    { Collect.Intf.max_slots = 32; num_threads = 9; step = Collect.Intf.Fixed 8;
      min_size = 4 }
  in
  let announcements = maker.make htm boot cfg in

  (* The shared cell holding the current configuration block. *)
  let current = Simmem.malloc mem boot 1 in
  let make_config ctx version =
    let block = Simmem.malloc mem ctx 4 in
    for i = 0 to 3 do
      Simmem.write mem ctx (block + i) ((version * 10) + i)
    done;
    block
  in
  Simmem.write mem boot current (make_config boot 0);

  let reads_done = ref 0 in
  let frees_done = ref 0 in
  let deferred_max = ref 0 in
  let running = ref true in

  let reader ctx =
    (* One announcement slot per reader, registered up front. *)
    let h = announcements.register ctx no_announcement in
    while !running do
      (* announce-validate loop: after announcing, re-read [current]; if it
         changed, the writer may already have collected, so re-announce. *)
      let rec acquire () =
        let block = Simmem.read mem ctx current in
        announcements.update ctx h block;
        if Simmem.read mem ctx current <> block then acquire () else block
      in
      let block = acquire () in
      (* safely dereference: sum the fields *)
      let sum = ref 0 in
      for i = 0 to 3 do
        sum := !sum + Simmem.read mem ctx (block + i)
      done;
      announcements.update ctx h no_announcement;
      incr reads_done;
      (* think time between critical sections; constant announcement
         traffic visibly starves the reclaimer's collects *)
      Sim.tick ctx (1_000 + Sim.Rng.int (Sim.rng ctx) 4_000)
    done;
    announcements.deregister ctx h
  in

  let writer ctx =
    let retired = ref [] in
    let buf = Sim.Ibuf.create () in
    for version = 1 to 40 do
      let fresh = make_config ctx version in
      let old = Simmem.read mem ctx current in
      Simmem.write mem ctx current fresh;
      retired := old :: !retired;
      deferred_max := max !deferred_max (List.length !retired);
      (* Reclaim: free every retired block that no reader announces. *)
      Sim.Ibuf.clear buf;
      announcements.collect ctx buf;
      let announced b = Sim.Ibuf.fold (fun acc v -> acc || v = b) false buf in
      let keep, free_now = List.partition announced !retired in
      List.iter
        (fun b ->
          Simmem.free mem ctx b;
          incr frees_done)
        free_now;
      retired := keep;
      Sim.tick ctx 2000
    done;
    running := false;
    (* Final drain once readers have stopped announcing. *)
    Sim.advance_to ctx (Sim.clock ctx + 50_000);
    Sim.Ibuf.clear buf;
    announcements.collect ctx buf;
    List.iter
      (fun b ->
        Simmem.free mem ctx b;
        incr frees_done)
      !retired;
    retired := []
  in

  Sim.run ~seed:7 (Array.init 9 (fun i -> if i = 0 then writer else reader));

  print_endline "Safe reclamation through Dynamic Collect announcements";
  Printf.printf "reader dereferences:        %d (zero use-after-free faults)\n" !reads_done;
  Printf.printf "config blocks freed:        %d of 40 retired\n" !frees_done;
  Printf.printf "max deferred at once:       %d\n" !deferred_max;
  announcements.destroy boot;
  Printf.printf "collect object destroyed; %d words still live (current block + cell)\n"
    (Simmem.stats mem).live_words
