(* Quickstart: a tour of the simulated machine and the Dynamic Collect API.

     dune exec examples/quickstart.exe

   The stack, bottom-up: [Sim] provides deterministic virtual-time threads;
   [Simmem] a word-addressable heap with malloc/free; [Htm] Rock-style
   transactions on top; [Collect] the paper's Dynamic Collect objects. *)

let () =
  (* A machine: simulated memory plus an HTM domain. [boot] is a context
     for setup work outside the simulated threads. *)
  let mem = Simmem.create () in
  let htm = Htm.create mem in
  let boot = Sim.boot () in

  (* Instantiate the paper's flagship algorithm (Figure 2). *)
  let maker = Option.get (Collect.find_maker "ArrayDynAppendDereg") in
  let cfg =
    { Collect.Intf.max_slots = 64; num_threads = 4; step = Collect.Intf.Adaptive;
      min_size = 4 }
  in
  let collect_obj = maker.make htm boot cfg in

  (* Four threads: three register-and-update, one scans. *)
  let printed = ref [] in
  let worker i ctx =
    (* each worker binds a value, updates it twice, then deregisters *)
    let h = collect_obj.register ctx ((100 * i) + 1) in
    Sim.tick ctx 500;
    collect_obj.update ctx h ((100 * i) + 2);
    Sim.tick ctx 500;
    collect_obj.update ctx h ((100 * i) + 3);
    Sim.tick ctx 2000;
    collect_obj.deregister ctx h
  in
  let scanner ctx =
    let buf = Sim.Ibuf.create () in
    for round = 1 to 3 do
      Sim.tick ctx 600;
      Sim.Ibuf.clear buf;
      collect_obj.collect ctx buf;
      printed :=
        Printf.sprintf "  t=%-6d round %d: collected %s" (Sim.clock ctx) round
          (String.concat ", " (List.map string_of_int (Sim.Ibuf.to_list buf)))
        :: !printed
    done
  in
  Sim.run ~seed:42 [| worker 1; worker 2; worker 3; scanner |];

  print_endline "Dynamic Collect quickstart (ArrayDynAppendDereg, adaptive steps)";
  List.iter print_endline (List.rev !printed);

  (* Memory accounting: deregistering everything returns the object to its
     minimum footprint; destroy releases the rest. *)
  let st = Simmem.stats mem in
  Printf.printf "live after deregister-all: %d words (peak was %d)\n" st.live_words
    st.peak_live_words;
  collect_obj.destroy boot;
  Printf.printf "live after destroy:        %d words\n" (Simmem.stats mem).live_words;

  (* The HTM saw real contention: *)
  let h = Htm.stats htm in
  Printf.printf "transactions: %d commits, %d aborts\n" h.commits
    (h.aborts_conflict + h.aborts_overflow + h.aborts_illegal + h.aborts_explicit)
