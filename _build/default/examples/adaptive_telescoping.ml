(* The adaptive telescoping controller (§3.4) reacting to a contention
   regime change: updaters are calm for the first half of the run, then
   update furiously. Large steps win while it is calm; under fire they
   abort too often and the controller backs down.

     dune exec examples/adaptive_telescoping.exe *)

let phase_len = 600_000
let calm_period = 50_000
let furious_period = 700

let () =
  let mem = Simmem.create () in
  let htm = Htm.create mem in
  let boot = Sim.boot () in
  let maker = Option.get (Collect.find_maker "ArrayDynAppendDereg") in
  let cfg =
    { Collect.Intf.max_slots = 128; num_threads = 16; step = Collect.Intf.Adaptive;
      min_size = 4 }
  in
  let inst = maker.make htm boot cfg in
  let phase_collects = [| 0; 0 |] in
  let phase_hist = Array.make 2 [] in
  let measuring = ref true in
  let collector ctx =
    let buf = Sim.Ibuf.create () in
    let snap0 = ref [] in
    for phase = 0 to 1 do
      let deadline = (phase + 1) * phase_len in
      while Sim.clock ctx < deadline do
        Sim.tick ctx 200;
        Sim.Ibuf.clear buf;
        inst.collect ctx buf;
        phase_collects.(phase) <- phase_collects.(phase) + 1
      done;
      (* histogram delta for this phase *)
      let now = inst.step_histogram () in
      let delta =
        List.map
          (fun (s, n) ->
            (s, n - Option.value ~default:0 (List.assoc_opt s !snap0)))
          now
      in
      phase_hist.(phase) <- delta;
      snap0 := now
    done;
    measuring := false
  in
  let updater ctx =
    let hs = Array.init 4 (fun _ -> inst.register ctx (1 + Sim.Rng.int (Sim.rng ctx) 1000)) in
    let next = ref 0 in
    while Sim.clock ctx < 2 * phase_len do
      let period = if Sim.clock ctx < phase_len then calm_period else furious_period in
      next := max (!next + period) (Sim.clock ctx);
      Sim.advance_to ctx !next;
      inst.update ctx hs.(0) (1 + Sim.Rng.int (Sim.rng ctx) 1000)
    done;
    while !measuring do
      Sim.tick ctx 2000
    done;
    Array.iter (fun h -> inst.deregister ctx h) hs
  in
  Sim.run ~seed:5 (Array.init 16 (fun i -> if i = 0 then collector else updater));

  let pp_hist h =
    String.concat "  "
      (List.filter_map
         (fun (s, n) -> if n > 0 then Some (Printf.sprintf "step%d:%d" s n) else None)
         h)
  in
  print_endline "Adaptive telescoping under a contention regime change";
  Printf.printf "phase 1 (calm,    update period %6d cycles): %4d collects  [%s]\n"
    calm_period phase_collects.(0) (pp_hist phase_hist.(0));
  Printf.printf "phase 2 (furious, update period %6d cycles): %4d collects  [%s]\n"
    furious_period phase_collects.(1) (pp_hist phase_hist.(1));
  let st = Htm.stats htm in
  Printf.printf "HTM: %d commits, %d conflict aborts, %d overflow aborts\n" st.commits
    st.aborts_conflict st.aborts_overflow
