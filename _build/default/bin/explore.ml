(* Interactive explorer: run one Dynamic Collect algorithm under a custom
   workload and report throughput, transaction statistics, memory
   behaviour and the telescoping histogram.

     dune exec bin/explore.exe -- --list
     dune exec bin/explore.exe -- -a ArrayDynAppendDereg -t 8 -m 80,10,5,5
     dune exec bin/explore.exe -- -a ListFastCollect --step adaptive -d 1000000
*)

let list_algorithms () =
  Format.printf "%-24s %-8s %-7s %s@." "algorithm" "dynamic" "htm" "update class";
  List.iter
    (fun (m : Collect.Intf.maker) ->
      Format.printf "%-24s %-8b %-7b %s@." m.algo_name m.solves_dynamic m.uses_htm
        (if m.direct_update then "direct (naked store)" else "indirect (transaction)"))
    Collect.all_with_extensions

type op = Op_collect | Op_update | Op_register | Op_deregister

let op_name = function
  | Op_collect -> "collect"
  | Op_update -> "update"
  | Op_register -> "register"
  | Op_deregister -> "deregister"

let parse_mix s =
  match String.split_on_char ',' s |> List.map int_of_string with
  | [ c; u; r; d ] when c + u + r + d = 100 && c >= 0 && u >= 0 && r >= 0 && d >= 0 ->
    (c, u, r, d)
  | _ -> failwith "mix must be four comma-separated percentages summing to 100"
  | exception _ -> failwith "mix must be four comma-separated percentages summing to 100"

let parse_step = function
  | "adaptive" -> Collect.Intf.Adaptive
  | s ->
    (match int_of_string_opt s with
     | Some n when n >= 1 -> Collect.Intf.Fixed n
     | Some _ | None -> failwith "step must be a positive integer or 'adaptive'")

let run algo threads mix step duration budget seed =
  let collect_pct, update_pct, register_pct, _ = parse_mix mix in
  let maker =
    match Collect.find_maker algo with
    | Some m -> m
    | None ->
      Format.eprintf "unknown algorithm %S; try --list@." algo;
      exit 1
  in
  let mem = Simmem.create () in
  let htm = Htm.create mem in
  let boot = Sim.boot ~seed () in
  let cfg =
    { Collect.Intf.max_slots = budget; num_threads = threads; step = parse_step step;
      min_size = 4 }
  in
  let inst = maker.make htm boot cfg in
  let per_thread = max 1 (budget / threads) in
  let op_counts = Hashtbl.create 4 in
  let bump op = Hashtbl.replace op_counts op (1 + Option.value ~default:0 (Hashtbl.find_opt op_counts op)) in
  let values_seen = ref 0 in
  let body _i ctx =
    let mine = Queue.create () in
    let buf = Sim.Ibuf.create () in
    let rng = Sim.rng ctx in
    for _ = 1 to per_thread / 2 do
      Queue.add (inst.register ctx (Workload.Driver.fresh_value ())) mine
    done;
    while Sim.clock ctx < duration do
      Workload.Driver.tick_dispatch ctx;
      let dice = Sim.Rng.int rng 100 in
      if dice < collect_pct then begin
        Sim.Ibuf.clear buf;
        inst.collect ctx buf;
        values_seen := !values_seen + Sim.Ibuf.length buf;
        bump Op_collect
      end
      else if dice < collect_pct + update_pct then begin
        if not (Queue.is_empty mine) then begin
          let h = Queue.pop mine in
          inst.update ctx h (Workload.Driver.fresh_value ());
          Queue.add h mine;
          bump Op_update
        end
      end
      else if dice < collect_pct + update_pct + register_pct then begin
        if Queue.length mine < per_thread then begin
          Queue.add (inst.register ctx (Workload.Driver.fresh_value ())) mine;
          bump Op_register
        end
      end
      else if not (Queue.is_empty mine) then begin
        inst.deregister ctx (Queue.pop mine);
        bump Op_deregister
      end
    done;
    Queue.iter (fun h -> inst.deregister ctx h) mine
  in
  Sim.run ~seed (Array.init threads (fun i -> body i));
  let total = Hashtbl.fold (fun _ n acc -> acc + n) op_counts 0 in
  Format.printf "== %s: %d threads, mix %s, %d cycles, seed %d ==@.@." algo threads mix
    duration seed;
  Format.printf "total throughput: %.3f ops/us (%d ops)@."
    (Workload.Driver.ops_per_us ~ops:total ~duration)
    total;
  List.iter
    (fun op ->
      let n = Option.value ~default:0 (Hashtbl.find_opt op_counts op) in
      Format.printf "  %-12s %8d@." (op_name op) n)
    [ Op_collect; Op_update; Op_register; Op_deregister ];
  let collects = Option.value ~default:0 (Hashtbl.find_opt op_counts Op_collect) in
  if collects > 0 then
    Format.printf "  avg values per collect: %.1f@."
      (float_of_int !values_seen /. float_of_int collects);
  let st = Htm.stats htm in
  Format.printf "@.HTM: %d commits; aborts: %d conflict, %d overflow, %d illegal, %d explicit; %d lock fallbacks@."
    st.commits st.aborts_conflict st.aborts_overflow st.aborts_illegal st.aborts_explicit
    st.lock_fallbacks;
  (match inst.step_histogram () with
   | [] -> ()
   | hist ->
     Format.printf "telescoping: %s@."
       (String.concat "  "
          (List.map (fun (s, n) -> Printf.sprintf "step%d:%d" s n) hist)));
  let ms = Simmem.stats mem in
  Format.printf "memory: %d words live, peak %d, %d allocs / %d frees@." ms.live_words
    ms.peak_live_words ms.total_allocs ms.total_frees;
  Format.printf
    "accesses: %d loads (%.1f%% miss), %d stores (%.1f%% miss), %d atomics@."
    ms.reads
    (100.0 *. float_of_int ms.read_misses /. float_of_int (max 1 ms.reads))
    ms.writes
    (100.0 *. float_of_int ms.write_misses /. float_of_int (max 1 ms.writes))
    ms.atomics;
  inst.destroy boot;
  Format.printf "after destroy: %d words live@." (Simmem.stats mem).live_words

open Cmdliner

let algo =
  Arg.(value & opt string "ArrayDynAppendDereg"
       & info [ "a"; "algo" ] ~doc:"Algorithm name (see --list).")

let threads = Arg.(value & opt int 8 & info [ "t"; "threads" ] ~doc:"Simulated threads.")

let mix =
  Arg.(value & opt string "80,10,5,5"
       & info [ "m"; "mix" ] ~doc:"collect,update,register,deregister percentages.")

let step =
  Arg.(value & opt string "32" & info [ "step" ] ~doc:"Telescoping step: N or 'adaptive'.")

let duration =
  Arg.(value & opt int 400_000 & info [ "d"; "duration" ] ~doc:"Virtual cycles to run.")

let budget = Arg.(value & opt int 64 & info [ "budget" ] ~doc:"Total handle budget.")
let seed = Arg.(value & opt int 1 & info [ "s"; "seed" ] ~doc:"Random seed.")
let list_flag = Arg.(value & flag & info [ "list" ] ~doc:"List algorithms and exit.")

let () =
  let action list algo threads mix step duration budget seed =
    if list then list_algorithms () else run algo threads mix step duration budget seed
  in
  let term =
    Term.(const action $ list_flag $ algo $ threads $ mix $ step $ duration $ budget $ seed)
  in
  let info =
    Cmd.info "explore" ~doc:"Explore a Dynamic Collect algorithm under a custom workload"
  in
  exit (Cmd.eval (Cmd.v info term))
