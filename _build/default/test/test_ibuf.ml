(* Unit and property tests for the integer buffer used as collect result
   sets. *)

let test_empty () =
  let b = Sim.Ibuf.create () in
  Alcotest.(check int) "empty length" 0 (Sim.Ibuf.length b);
  Alcotest.(check (list int)) "empty list" [] (Sim.Ibuf.to_list b)

let test_add_get () =
  let b = Sim.Ibuf.create ~capacity:2 () in
  for i = 0 to 99 do
    Sim.Ibuf.add b (i * i)
  done;
  Alcotest.(check int) "length" 100 (Sim.Ibuf.length b);
  Alcotest.(check int) "get 0" 0 (Sim.Ibuf.get b 0);
  Alcotest.(check int) "get 99" (99 * 99) (Sim.Ibuf.get b 99)

let test_out_of_bounds () =
  let b = Sim.Ibuf.create () in
  Sim.Ibuf.add b 1;
  Alcotest.check_raises "negative" (Invalid_argument "Ibuf.get: index out of bounds")
    (fun () -> ignore (Sim.Ibuf.get b (-1)));
  Alcotest.check_raises "past end" (Invalid_argument "Ibuf.get: index out of bounds")
    (fun () -> ignore (Sim.Ibuf.get b 1))

let test_clear_keeps_storage () =
  let b = Sim.Ibuf.create () in
  Sim.Ibuf.add b 5;
  Sim.Ibuf.clear b;
  Alcotest.(check int) "cleared" 0 (Sim.Ibuf.length b);
  Sim.Ibuf.add b 7;
  Alcotest.(check (list int)) "reusable" [ 7 ] (Sim.Ibuf.to_list b)

let test_reset_to () =
  let b = Sim.Ibuf.create () in
  List.iter (Sim.Ibuf.add b) [ 1; 2; 3; 4; 5 ];
  Sim.Ibuf.reset_to b 2;
  Alcotest.(check (list int)) "truncated" [ 1; 2 ] (Sim.Ibuf.to_list b);
  Alcotest.check_raises "reset beyond length" (Invalid_argument "Ibuf.reset_to: bad length")
    (fun () -> Sim.Ibuf.reset_to b 3)

let test_iter_fold () =
  let b = Sim.Ibuf.create () in
  List.iter (Sim.Ibuf.add b) [ 10; 20; 30 ];
  let seen = ref [] in
  Sim.Ibuf.iter (fun x -> seen := x :: !seen) b;
  Alcotest.(check (list int)) "iter order" [ 30; 20; 10 ] !seen;
  Alcotest.(check int) "fold sum" 60 (Sim.Ibuf.fold ( + ) 0 b)

let prop_model =
  QCheck.Test.make ~name:"Ibuf behaves like a list" ~count:300
    QCheck.(list small_int)
    (fun xs ->
      let b = Sim.Ibuf.create () in
      List.iter (Sim.Ibuf.add b) xs;
      Sim.Ibuf.to_list b = xs && Sim.Ibuf.length b = List.length xs)

let prop_reset_prefix =
  QCheck.Test.make ~name:"reset_to keeps the prefix" ~count:300
    QCheck.(pair (list small_int) small_nat)
    (fun (xs, n) ->
      QCheck.assume (n <= List.length xs);
      let b = Sim.Ibuf.create () in
      List.iter (Sim.Ibuf.add b) xs;
      Sim.Ibuf.reset_to b n;
      Sim.Ibuf.to_list b = List.filteri (fun i _ -> i < n) xs)

let () =
  Alcotest.run "ibuf"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "add/get with growth" `Quick test_add_get;
          Alcotest.test_case "out of bounds" `Quick test_out_of_bounds;
          Alcotest.test_case "clear" `Quick test_clear_keeps_storage;
          Alcotest.test_case "reset_to" `Quick test_reset_to;
          Alcotest.test_case "iter/fold" `Quick test_iter_fold;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest [ prop_model; prop_reset_prefix ] );
    ]
