(* Tests for the well-formedness decorator: legal usage passes through
   unchanged; each class of violation is caught with a clear message. *)

let make () =
  let mem = Simmem.create () in
  let htm = Htm.create mem in
  let boot = Sim.boot () in
  let mk = Option.get (Collect.find_maker "ArrayDynAppendDereg") in
  let cfg =
    { Collect.Intf.max_slots = 64; num_threads = 4; step = Collect.Intf.Fixed 8;
      min_size = 4 }
  in
  (boot, Collect.Checked.wrap (mk.make htm boot cfg))

let expect_violation name f =
  match f () with
  | () -> Alcotest.failf "%s: expected a well-formedness violation" name
  | exception Collect.Checked.Violation _ -> ()

let test_legal_passthrough () =
  let _, inst = make () in
  Sim.run ~seed:1
    [|
      (fun ctx ->
        let h = inst.register ctx 7 in
        inst.update ctx h 8;
        let buf = Sim.Ibuf.create () in
        inst.collect ctx buf;
        Alcotest.(check (list int)) "behaviour unchanged" [ 8 ] (Sim.Ibuf.to_list buf);
        inst.deregister ctx h);
    |]

let test_null_value () =
  let _, inst = make () in
  Sim.run ~seed:2
    [| (fun ctx -> expect_violation "register 0" (fun () -> ignore (inst.register ctx 0))) |]

let test_foreign_update () =
  let _, inst = make () in
  let handle = ref 0 in
  Sim.run ~seed:3
    [|
      (fun ctx ->
        handle := inst.register ctx 5;
        Sim.advance_to ctx 10_000);
      (fun ctx ->
        Sim.advance_to ctx 5_000;
        expect_violation "foreign update" (fun () -> inst.update ctx !handle 6));
    |]

let test_double_deregister () =
  let _, inst = make () in
  Sim.run ~seed:4
    [|
      (fun ctx ->
        let h = inst.register ctx 5 in
        inst.deregister ctx h;
        expect_violation "double deregister" (fun () -> inst.deregister ctx h);
        expect_violation "update after deregister" (fun () -> inst.update ctx h 6));
    |]

let test_destroy_with_live_handles () =
  let boot, inst = make () in
  Sim.run ~seed:5 [| (fun ctx -> ignore (inst.register ctx 5)) |];
  expect_violation "destroy with live handle" (fun () -> inst.destroy boot)

let () =
  Alcotest.run "checked"
    [
      ( "decorator",
        [
          Alcotest.test_case "legal passthrough" `Quick test_legal_passthrough;
          Alcotest.test_case "null value" `Quick test_null_value;
          Alcotest.test_case "foreign update" `Quick test_foreign_update;
          Alcotest.test_case "double deregister" `Quick test_double_deregister;
          Alcotest.test_case "destroy with live handles" `Quick test_destroy_with_live_handles;
        ] );
    ]
