(* Property-based tests for the queues: equivalence with a functional
   model under random single-threaded scripts, and exactly-once delivery
   under randomized concurrent schedules. *)

(* A script is a list of operations: true = enqueue (next value),
   false = dequeue. *)
let run_script (mk : Hqueue.Intf.maker) script =
  let mem = Simmem.create () in
  let htm = Htm.create mem in
  let boot = Sim.boot () in
  let q = mk.make htm boot ~num_threads:2 in
  let results = ref [] in
  Sim.run ~seed:1
    [|
      (fun ctx ->
        let next = ref 0 in
        List.iter
          (fun enq ->
            if enq then begin
              incr next;
              q.enqueue ctx !next
            end
            else results := q.dequeue ctx :: !results)
          script);
    |];
  let r = List.rev !results in
  q.destroy boot;
  r

let model_script script =
  let q = Queue.create () in
  let next = ref 0 in
  let results = ref [] in
  List.iter
    (fun enq ->
      if enq then begin
        incr next;
        Queue.add !next q
      end
      else results := (if Queue.is_empty q then None else Some (Queue.pop q)) :: !results)
    script;
  List.rev !results

let prop_sequential_model (mk : Hqueue.Intf.maker) =
  QCheck.Test.make
    ~name:(mk.queue_name ^ " matches the functional queue model")
    ~count:100
    QCheck.(list bool)
    (fun script -> run_script mk script = model_script script)

let prop_concurrent_exactly_once (mk : Hqueue.Intf.maker) =
  QCheck.Test.make
    ~name:(mk.queue_name ^ " delivers exactly once under any schedule")
    ~count:25 QCheck.small_int
    (fun seed ->
      let mem = Simmem.create () in
      let htm = Htm.create mem in
      let boot = Sim.boot () in
      let q = mk.make htm boot ~num_threads:6 in
      let got = ref [] in
      Sim.run ~seed
        (Array.init 6 (fun i ->
             fun ctx ->
               let rng = Sim.rng ctx in
               for k = 1 to 60 do
                 if Sim.Rng.bool rng then q.enqueue ctx ((i * 1000) + k)
                 else
                   match q.dequeue ctx with
                   | Some v -> got := v :: !got
                   | None -> ()
               done));
      let rec drain acc = match q.dequeue boot with Some v -> drain (v :: acc) | None -> acc in
      let all = drain [] @ !got in
      let ok = List.length all = List.length (List.sort_uniq compare all) in
      q.destroy boot;
      ok)

(* Sequential consistency of the value payload: dequeue order of one
   producer's values is its enqueue order, for every queue and seed. *)
let prop_per_producer_fifo (mk : Hqueue.Intf.maker) =
  QCheck.Test.make
    ~name:(mk.queue_name ^ " preserves per-producer order")
    ~count:25 QCheck.small_int
    (fun seed ->
      let mem = Simmem.create () in
      let htm = Htm.create mem in
      let boot = Sim.boot () in
      let q = mk.make htm boot ~num_threads:4 in
      let seen = Array.make 4 [] in
      Sim.run ~seed
        (Array.init 4 (fun i ->
             fun ctx ->
               if i < 2 then
                 for k = 1 to 80 do
                   q.enqueue ctx ((i * 1000) + k)
                 done
               else
                 for _ = 1 to 90 do
                   match q.dequeue ctx with
                   | Some v -> seen.(i) <- v :: seen.(i)
                   | None -> Sim.tick ctx 100
                 done));
      q.destroy boot;
      Array.for_all
        (fun lst ->
          let in_order = List.rev lst in
          let last = Hashtbl.create 4 in
          List.for_all
            (fun v ->
              let p = v / 1000 and k = v mod 1000 in
              let ok = match Hashtbl.find_opt last p with Some prev -> prev < k | None -> true in
              Hashtbl.replace last p k;
              ok)
            in_order)
        seen)

let () =
  Alcotest.run "queue-prop"
    [
      ( "properties",
        List.concat_map
          (fun mk ->
            List.map QCheck_alcotest.to_alcotest
              [
                prop_sequential_model mk;
                prop_concurrent_exactly_once mk;
                prop_per_producer_fifo mk;
              ])
          Hqueue.all_with_extensions );
    ]
