(* Smoke tests for the benchmark drivers: tiny runs of every figure's
   workload, checking structural properties of the results (non-empty,
   positive throughputs, sane shapes) rather than performance. *)

let test_queue_bench () =
  let rs = Workload.Queue_bench.run ~threads:[ 2; 4 ] ~duration:60_000 ~seed:3 () in
  Alcotest.(check int) "3 queues x 2 thread counts" 6 (List.length rs);
  List.iter
    (fun (r : Workload.Queue_bench.result) ->
      if r.throughput <= 0.0 then Alcotest.failf "%s: zero throughput" r.queue)
    rs;
  let t = Workload.Queue_bench.to_table rs in
  Alcotest.(check int) "rows" 2 (List.length t.rows);
  Alcotest.(check int) "columns" 3 (List.length t.columns)

let test_latency () =
  let rs = Workload.Latency.run ~updates:200 ~seed:3 () in
  Alcotest.(check int) "all algorithms" (List.length Collect.all) (List.length rs);
  let direct =
    List.filter_map
      (fun (r : Workload.Latency.result) -> if r.direct then Some r.ns_per_update else None)
      rs
  in
  let indirect =
    List.filter_map
      (fun (r : Workload.Latency.result) ->
        if not r.direct then Some r.ns_per_update else None)
      rs
  in
  let avg l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
  Alcotest.(check bool) "two latency classes: indirect costlier" true
    (avg indirect > avg direct +. 5.0)

let test_collect_dominated () =
  let rs = Workload.Collect_dominated.run ~threads:[ 4 ] ~duration:60_000 ~seed:3 () in
  Alcotest.(check int) "all algorithms" (List.length Collect.all) (List.length rs);
  List.iter
    (fun (r : Workload.Collect_dominated.result) ->
      if r.throughput <= 0.0 then Alcotest.failf "%s: zero throughput" r.algo)
    rs

let test_collect_update () =
  let rs =
    Workload.Collect_update.run_fig4 ~updaters:7 ~periods:[ 50_000; 2_000 ]
      ~duration:60_000 ~seed:3 ()
  in
  Alcotest.(check int) "6 algos x 2 periods" 12 (List.length rs);
  (* contention hurts the transactional collects *)
  let tp name p =
    (List.find
       (fun (r : Workload.Collect_update.result) ->
         r.period = p && String.length r.algo >= 5 && String.sub r.algo 0 5 = name)
       rs)
      .throughput
  in
  Alcotest.(check bool) "ADA degrades under contention" true
    (tp "Array" 2_000 <= tp "Array" 50_000 +. 0.2)

let test_fig5_best_dominates () =
  let rs =
    Workload.Collect_update.run_fig5 ~updaters:7 ~periods:[ 20_000 ] ~duration:60_000
      ~seed:3 ()
  in
  (* per period: 3 fixed + best + adaptive *)
  Alcotest.(check int) "5 series" 5 (List.length rs);
  List.iter
    (fun (r : Workload.Collect_update.result) ->
      if r.throughput <= 0.0 then Alcotest.failf "%s: zero throughput" r.label)
    rs

let test_fig6_histogram () =
  let rs =
    Workload.Collect_update.run_fig6 ~updaters:7 ~periods:[ 10_000 ] ~duration:60_000
      ~seed:3 ()
  in
  match rs with
  | [ r ] ->
    let total = List.fold_left (fun a (_, n) -> a + n) 0 r.histogram in
    Alcotest.(check bool) "histogram populated" true (total > 0);
    List.iter
      (fun (s, _) ->
        if s < 1 || s > 32 || s land (s - 1) <> 0 then
          Alcotest.failf "invalid step size %d in histogram" s)
      r.histogram
  | _ -> Alcotest.fail "expected one result"

let test_collect_dereg () =
  let rs =
    Workload.Collect_dereg.run ~churners:7 ~periods:[ 100_000; 2_000 ] ~duration:60_000
      ~seed:3 ()
  in
  Alcotest.(check int) "6 algos x 2 periods" 12 (List.length rs);
  List.iter
    (fun (r : Workload.Collect_dereg.result) ->
      if r.throughput < 0.0 then Alcotest.failf "%s: negative throughput" r.algo)
    rs

let test_phased () =
  let rs = Workload.Phased.run ~updaters:7 ~phase_len:100_000 ~phases:4 ~bucket_len:50_000 ~seed:3 () in
  Alcotest.(check int) "5 algorithms" 5 (List.length rs);
  List.iter
    (fun (r : Workload.Phased.result) ->
      Alcotest.(check int) (r.algo ^ ": buckets") 8 (List.length r.buckets);
      let total = List.fold_left (fun a (_, v) -> a +. v) 0.0 r.buckets in
      Alcotest.(check bool) (r.algo ^ ": collected something") true (total > 0.0))
    rs

let test_space_queues () =
  let rs = Workload.Space_bench.queue_space ~peak_len:200 ~seed:3 () in
  let get name =
    List.find (fun (r : Workload.Space_bench.result) -> r.subject = "queue/" ^ name) rs
  in
  let htm = get "HTM" and ms = get "MichaelScott" and rop = get "MichaelScott+ROP" in
  Alcotest.(check bool) "HTM drains its memory" true (htm.quiescent_words * 4 < htm.peak_words);
  Alcotest.(check bool) "MS retains historical max" true (ms.quiescent_words * 2 > ms.peak_words);
  Alcotest.(check bool) "ROP reclaims most" true (rop.quiescent_words * 2 < rop.peak_words)

let test_space_collect () =
  let rs = Workload.Space_bench.collect_space ~peak:128 ~seed:3 () in
  let get name =
    List.find (fun (r : Workload.Space_bench.result) -> r.subject = "collect/" ^ name) rs
  in
  let ada = get "ArrayDynAppendDereg" in
  Alcotest.(check bool) "dynamic array shrinks" true (ada.quiescent_words * 8 < ada.peak_words);
  let stat = get "StaticBaseline" in
  Alcotest.(check bool) "static array keeps its footprint" true
    (stat.quiescent_words = stat.peak_words)

let test_replayability () =
  (* The whole point of the simulator: identical seeds give bit-identical
     experiment results, workload RNG and scheduler included. *)
  let once () =
    Workload.Collect_dominated.run ~threads:[ 6 ] ~duration:50_000 ~seed:77 ()
    |> List.map (fun (r : Workload.Collect_dominated.result) -> (r.algo, r.throughput))
  in
  let a = once () and b = once () in
  List.iter2
    (fun (n1, t1) (n2, t2) ->
      Alcotest.(check string) "same algo order" n1 n2;
      Alcotest.(check (float 0.0)) (n1 ^ ": identical throughput") t1 t2)
    a b

let test_fresh_values_unique () =
  let a = Workload.Driver.fresh_value () in
  let b = Workload.Driver.fresh_value () in
  Alcotest.(check bool) "distinct and nonzero" true (a <> b && a <> 0 && b <> 0)

let () =
  Alcotest.run "workload"
    [
      ( "drivers",
        [
          Alcotest.test_case "fig1 queue bench" `Quick test_queue_bench;
          Alcotest.test_case "5.1 latency" `Quick test_latency;
          Alcotest.test_case "fig3 collect-dominated" `Quick test_collect_dominated;
          Alcotest.test_case "fig4 collect-update" `Quick test_collect_update;
          Alcotest.test_case "fig5 steps" `Quick test_fig5_best_dominates;
          Alcotest.test_case "fig6 histogram" `Quick test_fig6_histogram;
          Alcotest.test_case "fig7 collect-dereg" `Quick test_collect_dereg;
          Alcotest.test_case "fig8 phased" `Quick test_phased;
          Alcotest.test_case "space queues" `Quick test_space_queues;
          Alcotest.test_case "space collect" `Quick test_space_collect;
          Alcotest.test_case "unique values" `Quick test_fresh_values_unique;
          Alcotest.test_case "replayability" `Quick test_replayability;
        ] );
    ]
