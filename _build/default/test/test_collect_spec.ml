(* Concurrent specification tests: randomized workloads over every
   algorithm, with every collect checked offline against the paper's §2.3
   conditions (validity and completeness), plus leak accounting. *)

let run_cfg name (cfg : Chaos.config) () =
  List.iter
    (fun (mk : Collect.Intf.maker) ->
      match Chaos.run mk cfg with
      | verdict, leaked ->
        if verdict.checked_collects = 0 then
          Alcotest.failf "%s/%s: workload produced no collects" name mk.algo_name;
        Alcotest.(check int) (Printf.sprintf "%s/%s: leaks" name mk.algo_name) 0 leaked
      | exception Collect_spec.Violation msg ->
        Alcotest.failf "%s/%s: specification violated: %s" name mk.algo_name msg)
    Collect.all_with_extensions

let cfgs =
  let open Chaos in
  [
    ("balanced s1", { default with seed = 101 });
    ("balanced s2", { default with seed = 202; threads = 8; budget = 64 });
    ("balanced small steps", { default with seed = 303; step = Collect.Intf.Fixed 2 });
    ("balanced adaptive", { default with seed = 404; step = Collect.Intf.Adaptive });
    ( "churn s1",
      { default with seed = 505; mix = churn; budget = 32; threads = 8; min_size = 1 } );
    ( "churn s2",
      { default with seed = 606; mix = churn; budget = 24; threads = 5; min_size = 2 } );
    ( "churn big steps",
      { default with seed = 707; mix = churn; step = Collect.Intf.Fixed 32; min_size = 1 } );
    ("collect-heavy s1", { default with seed = 808; mix = collect_heavy; threads = 4 });
    ( "collect-heavy s2",
      { default with seed = 909; mix = collect_heavy; threads = 10; budget = 60 } );
    (* §6 HTM variations: correctness must survive a TLE fallback path and
       a small store buffer (more overflow aborts and lock serialization). *)
    ( "tle fallback",
      { default with
        seed = 1001;
        mix = churn;
        htm = { Htm.default_config with tle = Htm.Tle_after 2 } } );
    ( "small store buffer",
      { default with
        seed = 1102;
        step = Collect.Intf.Adaptive;
        htm = { Htm.default_config with store_buffer = 8 } } );
    ( "tle + tiny buffer",
      { default with
        seed = 1203;
        threads = 8;
        htm = { Htm.default_config with store_buffer = 8; tle = Htm.Tle_after 3 } } );
  ]

(* Broad seed sweep: the same three mixes over many independent seeds. *)
let sweep_cfgs =
  List.concat_map
    (fun seed ->
      let open Chaos in
      [
        (Printf.sprintf "sweep balanced %d" seed, { default with seed });
        ( Printf.sprintf "sweep churn %d" seed,
          { default with seed = seed + 1; mix = churn; budget = 32; min_size = 2 } );
        ( Printf.sprintf "sweep heavy %d" seed,
          { default with seed = seed + 2; mix = collect_heavy; threads = 8 } );
      ])
    [ 3001; 3101; 3201; 3301 ]

let () =
  Alcotest.run "collect-spec"
    [
      ( "chaos",
        List.map (fun (name, cfg) -> Alcotest.test_case name `Quick (run_cfg name cfg)) cfgs );
      ( "seed-sweep",
        List.map
          (fun (name, cfg) -> Alcotest.test_case name `Slow (run_cfg name cfg))
          sweep_cfgs );
    ]
