(* Randomized concurrent workload generator used by the specification
   tests: every operation goes through the Spec_checker wrappers, and the
   trace is verified afterwards. *)

type mix = {
  collect_pct : int;
  update_pct : int;
  register_pct : int;  (* remainder is deregister *)
}

let balanced = { collect_pct = 40; update_pct = 30; register_pct = 15 }
let churn = { collect_pct = 20; update_pct = 10; register_pct = 35 }
let collect_heavy = { collect_pct = 80; update_pct = 10; register_pct = 5 }

type config = {
  threads : int;
  budget : int;  (* total handle budget, split across threads *)
  duration : int;  (* virtual cycles *)
  mix : mix;
  min_size : int;
  step : Collect.Intf.step_policy;
  seed : int;
  htm : Htm.config;  (* correctness must hold under §6's HTM variations *)
}

let default =
  {
    threads = 6;
    budget = 48;
    duration = 60_000;
    mix = balanced;
    min_size = 4;
    step = Collect.Intf.Fixed 8;
    seed = 1;
    htm = Htm.default_config;
  }

(* Runs the workload on a fresh machine; returns the checker verdict and
   the number of leaked blocks after deregister-all and destroy. *)
let run (maker : Collect.Intf.maker) cfg =
  let mem = Simmem.create () in
  let htm = Htm.create ~config:cfg.htm mem in
  let boot = Sim.boot ~seed:cfg.seed () in
  let base_blocks = (Simmem.stats mem).live_blocks in
  let ccfg =
    {
      Collect.Intf.max_slots = cfg.budget;
      num_threads = cfg.threads;
      step = cfg.step;
      min_size = cfg.min_size;
    }
  in
  let inst = maker.make htm boot ccfg in
  let checker = Collect_spec.create () in
  let quota = max 1 (cfg.budget / cfg.threads) in
  let body _i ctx =
    let mine = Queue.create () in
    let rng = Sim.rng ctx in
    while Sim.clock ctx < cfg.duration do
      let dice = Sim.Rng.int rng 100 in
      let m = cfg.mix in
      if dice < m.collect_pct then Collect_spec.collect checker inst ctx
      else if dice < m.collect_pct + m.update_pct then begin
        if not (Queue.is_empty mine) then begin
          let h = Queue.pop mine in
          Collect_spec.update checker inst ctx h;
          Queue.add h mine
        end
      end
      else if dice < m.collect_pct + m.update_pct + m.register_pct then begin
        if Queue.length mine < quota then
          Queue.add (Collect_spec.register checker inst ctx) mine
      end
      else if not (Queue.is_empty mine) then
        Collect_spec.deregister checker inst ctx (Queue.pop mine);
      Sim.tick ctx (20 + Sim.Rng.int rng 50)
    done;
    Queue.iter (fun h -> Collect_spec.deregister checker inst ctx h) mine
  in
  Sim.run ~seed:cfg.seed (Array.init cfg.threads (fun i -> body i));
  let verdict = Collect_spec.check checker in
  inst.destroy boot;
  let leaked = (Simmem.stats mem).live_blocks - base_blocks in
  (verdict, leaked)
