test/test_collect_concurrent.ml: Alcotest Array Collect Htm List Option Queue Sim Simmem Workload
