test/test_simmem.ml: Alcotest Array Hashtbl List Printf QCheck QCheck_alcotest Sim Simmem
