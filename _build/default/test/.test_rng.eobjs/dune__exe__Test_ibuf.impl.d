test/test_ibuf.ml: Alcotest List QCheck QCheck_alcotest Sim
