test/test_stepper.ml: Alcotest Collect Sim
