test/test_collect_prop.ml: Alcotest Array Collect Htm List Printf QCheck QCheck_alcotest Sim Simmem String
