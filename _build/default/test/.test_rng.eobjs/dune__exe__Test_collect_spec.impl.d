test/test_collect_spec.ml: Alcotest Chaos Collect Collect_spec Htm List Printf
