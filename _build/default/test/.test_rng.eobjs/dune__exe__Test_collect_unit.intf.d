test/test_collect_unit.mli:
