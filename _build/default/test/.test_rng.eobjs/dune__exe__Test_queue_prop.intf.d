test/test_queue_prop.mli:
