test/test_workload.ml: Alcotest Collect List String Workload
