test/test_queue.ml: Alcotest Array Hashtbl Hqueue Htm List Option Printf Sim Simmem
