test/test_collect_unit.ml: Alcotest Array Collect Htm List Printf Queue Sim Simmem
