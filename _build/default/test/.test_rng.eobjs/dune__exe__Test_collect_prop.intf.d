test/test_collect_prop.mli:
