test/test_collect_spec.mli:
