test/test_simmem.mli:
