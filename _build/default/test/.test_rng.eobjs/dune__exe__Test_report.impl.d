test/test_report.ml: Alcotest Astring Buffer Format List String Workload
