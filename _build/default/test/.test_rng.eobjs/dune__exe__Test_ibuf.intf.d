test/test_ibuf.mli:
