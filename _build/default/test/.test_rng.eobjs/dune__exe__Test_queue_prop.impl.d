test/test_queue_prop.ml: Alcotest Array Hashtbl Hqueue Htm List QCheck QCheck_alcotest Queue Sim Simmem
