test/test_collect_concurrent.mli:
