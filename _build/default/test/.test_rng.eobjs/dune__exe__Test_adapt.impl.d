test/test_adapt.ml: Alcotest Htm List Printf QCheck QCheck_alcotest
