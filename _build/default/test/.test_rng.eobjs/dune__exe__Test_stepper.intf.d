test/test_stepper.mli:
