test/test_htm.mli:
