test/test_checked.mli:
