test/test_checked.ml: Alcotest Collect Htm Option Sim Simmem
