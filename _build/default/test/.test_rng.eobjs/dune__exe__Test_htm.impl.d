test/test_htm.ml: Alcotest Array Htm List QCheck QCheck_alcotest Sim Simmem
