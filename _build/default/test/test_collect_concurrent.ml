(* Directed concurrent tests: choreographed (virtual-time-scripted) races
   that target the algorithms' most delicate transitions — resizing under
   registration, compaction under update, pinned-node reclamation — beyond
   what the randomized chaos suite reaches. *)

let make ?(threads = 8) ?(min_size = 2) name =
  let mem = Simmem.create () in
  let htm = Htm.create mem in
  let boot = Sim.boot () in
  let mk = Option.get (Collect.find_maker name) in
  let cfg =
    { Collect.Intf.max_slots = 128; num_threads = threads; step = Collect.Intf.Fixed 8;
      min_size }
  in
  (mem, boot, mk.make htm boot cfg)

let collect_sorted inst ctx =
  let buf = Sim.Ibuf.create () in
  inst.Collect.Intf.collect ctx buf;
  List.sort_uniq compare (Sim.Ibuf.to_list buf)

(* Updates racing a deregister-compaction: thread B hammers updates on its
   handle while thread A's deregisters keep moving B's slot around. The
   final collect must see B's last value — the slot-reference redirection
   must never lose an update. *)
let test_update_vs_compaction name () =
  let _, boot, inst = make name in
  let final = ref 0 in
  Sim.run ~seed:21
    [|
      (fun ctx ->
        (* A: register 20 handles, then deregister them one by one, each
           deregister compacting the array and moving B's slot. *)
        let hs = Array.init 20 (fun i -> inst.register ctx (1000 + i)) in
        Sim.advance_to ctx 20_000;
        Array.iter
          (fun h ->
            inst.deregister ctx h;
            Sim.tick ctx 300)
          hs);
      (fun ctx ->
        Sim.advance_to ctx 15_000;
        let h = inst.register ctx 1 in
        for i = 1 to 200 do
          inst.update ctx h (2_000_000 + i);
          final := 2_000_000 + i;
          Sim.tick ctx 40
        done);
    |];
  Alcotest.(check (list int))
    (name ^ ": last update survived all moves")
    [ !final ]
    (collect_sorted inst boot)

(* Registration completing during an in-progress resize (§4.2's
   optimisation): grow the array from min_size while a second thread
   registers concurrently; nothing may be lost. *)
let test_register_during_grow name () =
  let _, boot, inst = make ~min_size:2 name in
  let expected = ref [] in
  Sim.run ~seed:22
    [|
      (fun ctx ->
        for i = 1 to 40 do
          ignore (inst.register ctx (100 + i));
          expected := (100 + i) :: !expected
        done);
      (fun ctx ->
        for i = 1 to 40 do
          ignore (inst.register ctx (500 + i));
          expected := (500 + i) :: !expected;
          Sim.tick ctx 17
        done);
    |];
  Alcotest.(check (list int))
    (name ^ ": all registrations survive growth")
    (List.sort compare !expected)
    (collect_sorted inst boot)

(* Shrink pressure: two threads interleave deregisters from a large
   population, repeatedly halving the dynamic array; the survivors must
   all remain collectable. *)
let test_concurrent_shrink name () =
  let _, boot, inst = make ~min_size:2 name in
  let keep = ref [] in
  Sim.run ~seed:23
    [|
      (fun ctx ->
        let hs = Array.init 40 (fun i -> inst.register ctx (100 + i)) in
        Sim.advance_to ctx 50_000;
        Array.iteri (fun i h -> if i mod 4 <> 0 then inst.deregister ctx h else Sim.tick ctx 97) hs;
        Array.iteri (fun i _ -> if i mod 4 = 0 then keep := (100 + i) :: !keep) hs);
      (fun ctx ->
        let hs = Array.init 40 (fun i -> inst.register ctx (500 + i)) in
        Sim.advance_to ctx 50_000;
        Array.iteri (fun i h -> if i mod 4 <> 0 then inst.deregister ctx h else Sim.tick ctx 53) hs;
        Array.iteri (fun i _ -> if i mod 4 = 0 then keep := (500 + i) :: !keep) hs);
    |];
  Alcotest.(check (list int))
    (name ^ ": survivors collectable after shrinks")
    (List.sort compare !keep)
    (collect_sorted inst boot)

(* HOHRC-specific: a collect pins a node, the owner deregisters it while
   pinned; the last unpinner must unlink and free it. At quiescence all
   reference counts are zero and memory is fully reclaimed. *)
let test_hohrc_pinned_reclamation () =
  let mem = Simmem.create () in
  let htm = Htm.create mem in
  let boot = Sim.boot () in
  let mk = Option.get (Collect.find_maker "ListHoHRC") in
  let base = (Simmem.stats mem).live_blocks in
  let cfg =
    { Collect.Intf.max_slots = 64; num_threads = 4; step = Collect.Intf.Fixed 1;
      min_size = 2 }
  in
  let inst = mk.make htm boot cfg in
  Sim.run ~seed:24
    [|
      (fun ctx ->
        (* owner: register, then deregister mid-collect of the scanner *)
        let hs = Array.init 10 (fun i -> inst.register ctx (i + 1)) in
        Sim.advance_to ctx 5_000;
        Array.iter
          (fun h ->
            inst.deregister ctx h;
            Sim.tick ctx 111)
          hs);
      (fun ctx ->
        (* scanner: slow step-1 collects spanning the deregisters *)
        Sim.advance_to ctx 4_900;
        let buf = Sim.Ibuf.create () in
        for _ = 1 to 5 do
          Sim.Ibuf.clear buf;
          inst.collect ctx buf;
          Sim.tick ctx 500
        done);
    |];
  (* everything deregistered: only the sentinel (and header blocks) remain *)
  inst.destroy boot;
  Alcotest.(check int) "all pinned nodes reclaimed" base (Simmem.stats mem).live_blocks

(* FastCollect: a deterministic mid-collect deregister forces the restart
   path; the collect must still satisfy completeness for the survivors. *)
let test_fastcollect_restart () =
  let _, boot, inst = make ~threads:2 "ListFastCollect" in
  let survivors = ref [] in
  Sim.run ~seed:25
    [|
      (fun ctx ->
        let hs = Array.init 30 (fun i -> inst.register ctx (100 + i)) in
        Array.iteri (fun i _ -> if i mod 3 <> 0 then survivors := (100 + i) :: !survivors) hs;
        Sim.advance_to ctx 10_000;
        (* deregister every third handle while the scanner runs *)
        Array.iteri
          (fun i h ->
            if i mod 3 = 0 then begin
              inst.deregister ctx h;
              Sim.tick ctx 200
            end)
          hs);
      (fun ctx ->
        Sim.advance_to ctx 9_900;
        let buf = Sim.Ibuf.create () in
        inst.collect ctx buf;
        (* survivors (dereg starts after collect end... not guaranteed) —
           instead check validity: everything returned was registered *)
        Sim.Ibuf.iter
          (fun v ->
            if v < 100 || v > 130 then Alcotest.failf "bogus value %d" v)
          buf);
    |];
  Alcotest.(check (list int))
    "survivors all present at quiescence"
    (List.sort compare !survivors)
    (collect_sorted inst boot)

(* Sixteen threads resizing one ArrayDyn object as hard as possible:
   min_size 1, everyone churning registration between 0 and 4 handles.
   The object must stay consistent and leak-free. *)
let test_resize_storm name () =
  let mem = Simmem.create () in
  let htm = Htm.create mem in
  let boot = Sim.boot () in
  let base = (Simmem.stats mem).live_blocks in
  let mk = Option.get (Collect.find_maker name) in
  let cfg =
    { Collect.Intf.max_slots = 128; num_threads = 16; step = Collect.Intf.Fixed 4;
      min_size = 1 }
  in
  let inst = mk.make htm boot cfg in
  Sim.run ~seed:26
    (Array.init 16 (fun _ ->
         fun ctx ->
           let mine = Queue.create () in
           let rng = Sim.rng ctx in
           for _ = 1 to 150 do
             if Queue.length mine < 4 && Sim.Rng.bool rng then
               Queue.add (inst.register ctx (Workload.Driver.fresh_value ())) mine
             else if not (Queue.is_empty mine) then inst.deregister ctx (Queue.pop mine)
           done;
           Queue.iter (fun h -> inst.deregister ctx h) mine));
  Alcotest.(check (list int)) (name ^ ": empty at quiescence") [] (collect_sorted inst boot);
  inst.destroy boot;
  Alcotest.(check int) (name ^ ": leak-free") base (Simmem.stats mem).live_blocks

let array_algos = [ "ArrayDynAppendDereg"; "ArrayDynSearchResize"; "ArrayDynAppendFastUpd" ]
let movable_algos = [ "ArrayStatAppendDereg"; "ArrayDynAppendDereg"; "ArrayDynAppendFastUpd" ]

let () =
  Alcotest.run "collect-concurrent"
    [
      ( "compaction",
        List.map
          (fun n -> Alcotest.test_case ("update vs compaction: " ^ n) `Quick (test_update_vs_compaction n))
          movable_algos );
      ( "resize",
        List.map
          (fun n -> Alcotest.test_case ("register during grow: " ^ n) `Quick (test_register_during_grow n))
          array_algos
        @ List.map
            (fun n -> Alcotest.test_case ("concurrent shrink: " ^ n) `Quick (test_concurrent_shrink n))
            array_algos
        @ List.map
            (fun n -> Alcotest.test_case ("resize storm: " ^ n) `Quick (test_resize_storm n))
            array_algos );
      ( "lists",
        [
          Alcotest.test_case "hohrc pinned reclamation" `Quick test_hohrc_pinned_reclamation;
          Alcotest.test_case "fastcollect restart" `Quick test_fastcollect_restart;
        ] );
    ]
