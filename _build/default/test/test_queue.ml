(* Tests for the three concurrent FIFO queues: sequential semantics,
   concurrent safety (exactly-once delivery, per-producer order), and the
   reclamation properties the paper contrasts. *)

let make_q ?(num_threads = 8) (mk : Hqueue.Intf.maker) =
  let mem = Simmem.create () in
  let htm = Htm.create mem in
  let boot = Sim.boot () in
  (mem, boot, mk.make htm boot ~num_threads)

let forall f () = List.iter (fun mk -> f mk) Hqueue.all_with_extensions

let name_of (mk : Hqueue.Intf.maker) = mk.queue_name

let test_sequential_fifo mk =
  let _, _, q = make_q mk in
  Sim.run ~seed:1
    [|
      (fun ctx ->
        Alcotest.(check (option int)) (name_of mk ^ ": empty") None (q.dequeue ctx);
        for i = 1 to 50 do
          q.enqueue ctx i
        done;
        for i = 1 to 50 do
          Alcotest.(check (option int))
            (Printf.sprintf "%s: fifo %d" (name_of mk) i)
            (Some i) (q.dequeue ctx)
        done;
        Alcotest.(check (option int)) (name_of mk ^ ": drained") None (q.dequeue ctx));
    |]

let test_interleaved_sequential mk =
  let _, _, q = make_q mk in
  Sim.run ~seed:2
    [|
      (fun ctx ->
        q.enqueue ctx 1;
        q.enqueue ctx 2;
        Alcotest.(check (option int)) "deq 1" (Some 1) (q.dequeue ctx);
        q.enqueue ctx 3;
        Alcotest.(check (option int)) "deq 2" (Some 2) (q.dequeue ctx);
        Alcotest.(check (option int)) "deq 3" (Some 3) (q.dequeue ctx);
        Alcotest.(check (option int)) "empty again" None (q.dequeue ctx));
    |]

(* Concurrent producers/consumers: every enqueued value is dequeued exactly
   once (after draining), and values from one producer are consumed in
   production order. *)
let test_concurrent_exactly_once mk =
  let _, boot, q = make_q mk in
  let producers = 4 and consumers = 4 and per_producer = 150 in
  let consumed = Array.make (producers + consumers) [] in
  let bodies =
    Array.init (producers + consumers) (fun i ->
        fun ctx ->
          if i < producers then
            for k = 1 to per_producer do
              q.enqueue ctx ((i * 1_000_000) + k)
            done
          else
            let rec go got =
              if got < per_producer then
                match q.dequeue ctx with
                | Some v ->
                  consumed.(i) <- v :: consumed.(i);
                  go (got + 1)
                | None ->
                  Sim.tick ctx 50;
                  go got
            in
            go 0)
  in
  Sim.run ~seed:3 bodies;
  let rec drain acc = match q.dequeue boot with Some v -> drain (v :: acc) | None -> acc in
  let leftover = drain [] in
  let consumed_all = List.concat (Array.to_list consumed) @ leftover in
  Alcotest.(check int)
    (name_of mk ^ ": count")
    (producers * per_producer)
    (List.length consumed_all);
  let sorted = List.sort_uniq compare consumed_all in
  Alcotest.(check int) (name_of mk ^ ": exactly once") (producers * per_producer)
    (List.length sorted);
  (* per-producer order: for each consumer, the subsequence from any single
     producer must be increasing. *)
  Array.iteri
    (fun ci lst ->
      let in_order = List.rev lst in
      let last = Hashtbl.create 8 in
      List.iter
        (fun v ->
          let p = v / 1_000_000 in
          let k = v mod 1_000_000 in
          (match Hashtbl.find_opt last p with
           | Some prev when prev >= k ->
             Alcotest.failf "%s: consumer %d saw producer %d out of order (%d then %d)"
               (name_of mk) ci p prev k
           | _ -> ());
          Hashtbl.replace last p k)
        in_order)
    consumed

let test_reclamation mk =
  (* Fill deep, drain, and measure what stays allocated. Reclaiming queues
     return to (near) empty; the pooled Michael-Scott retains its
     historical maximum. *)
  let mem = Simmem.create () in
  let htm = Htm.create mem in
  let boot = Sim.boot () in
  let pre_create = (Simmem.stats mem).live_words in
  let q = mk.Hqueue.Intf.make htm boot ~num_threads:2 in
  let before = (Simmem.stats mem).live_words in
  Sim.run ~seed:4
    [|
      (fun ctx ->
        for i = 1 to 500 do
          q.enqueue ctx i
        done;
        let rec drain () = match q.dequeue ctx with Some _ -> drain () | None -> () in
        drain ());
    |];
  let after = (Simmem.stats mem).live_words - before in
  if mk.reclaims then
    Alcotest.(check bool)
      (Printf.sprintf "%s: quiescent footprint small (%d words)" (name_of mk) after)
      true (after < 200)
  else
    Alcotest.(check bool)
      (Printf.sprintf "%s: pools retain historical max (%d words)" (name_of mk) after)
      true (after >= 500 * 2);
  q.destroy boot;
  Alcotest.(check int) (name_of mk ^ ": destroy frees everything") pre_create
    (Simmem.stats mem).live_words

let test_recycling_stress mk =
  (* Tight enqueue/dequeue cycles maximise node recycling: the window where
     ABA and use-after-free bugs bite. The checker is exactly-once
     delivery. *)
  let _, boot, q = make_q mk in
  let n = 400 in
  let seen = ref [] in
  let bodies =
    Array.init 8 (fun i ->
        fun ctx ->
          for k = 1 to n do
            if (i + k) mod 2 = 0 then q.enqueue ctx ((i * 1_000_000) + k)
            else
              match q.dequeue ctx with
              | Some v -> seen := v :: !seen
              | None -> ()
          done)
  in
  Sim.run ~seed:5 bodies;
  let rec drain acc = match q.dequeue boot with Some v -> drain (v :: acc) | None -> acc in
  let all = drain [] @ !seen in
  Alcotest.(check int)
    (name_of mk ^ ": nothing duplicated or lost")
    (List.length all)
    (List.length (List.sort_uniq compare all))

let test_htm_queue_frees_immediately () =
  match Hqueue.find_maker "HTM" with
  | None -> Alcotest.fail "maker missing"
  | Some mk ->
    let mem, _, q = make_q mk in
    let base = (Simmem.stats mem).live_words in
    Sim.run ~seed:6
      [|
        (fun ctx ->
          q.enqueue ctx 1;
          q.enqueue ctx 2;
          let w2 = (Simmem.stats mem).live_words in
          Alcotest.(check int) "two entries allocated" (base + 4) w2;
          ignore (q.dequeue ctx);
          Alcotest.(check int) "entry freed on dequeue" (base + 2)
            (Simmem.stats mem).live_words);
      |]

let test_collect_queue_adaptive_announcements () =
  (* The point of reclaiming through Dynamic Collect (§1.2): announcement
     space tracks actual users, not the declared maximum thread count.
     Declare 32 threads, use 2, and compare footprints after create+use. *)
  let footprint name =
    let mem = Simmem.create () in
    let htm = Htm.create mem in
    let boot = Sim.boot () in
    let mk = Option.get (Hqueue.find_maker name) in
    let before = (Simmem.stats mem).live_words in
    let q = mk.make htm boot ~num_threads:32 in
    Sim.run ~seed:8
      [|
        (fun ctx ->
          for i = 1 to 50 do
            q.enqueue ctx i
          done);
        (fun ctx ->
          for _ = 1 to 50 do
            ignore (q.dequeue ctx)
          done);
      |];
    let rec drain () = match q.dequeue boot with Some _ -> drain () | None -> () in
    drain ();
    (* subtract the entries still parked in retired lists by freeing them *)
    let words = (Simmem.stats mem).live_words - before in
    q.destroy boot;
    words
  in
  let rop = footprint "MichaelScott+ROP" in
  let col = footprint "MichaelScott+Collect" in
  (* ROP's hazard array alone is 2*(32+1) = 66 words; the collect object
     only ever holds slots for the three threads that actually ran. *)
  Alcotest.(check bool)
    (Printf.sprintf "announcement space adapts (collect %d < rop %d words)" col rop)
    true (col < rop)

let test_rop_scan_frees () =
  match Hqueue.find_maker "MichaelScott+ROP" with
  | None -> Alcotest.fail "maker missing"
  | Some mk ->
    let mem, _, q = make_q ~num_threads:2 mk in
    let frees_before = (Simmem.stats mem).total_frees in
    Sim.run ~seed:7
      [|
        (fun ctx ->
          (* enough churn to trigger several scans *)
          for i = 1 to 200 do
            q.enqueue ctx i;
            ignore (q.dequeue ctx)
          done);
      |];
    Alcotest.(check bool) "scans actually freed memory" true
      ((Simmem.stats mem).total_frees > frees_before + 50)

let () =
  Alcotest.run "queue"
    [
      ( "sequential",
        [
          Alcotest.test_case "fifo order" `Quick (forall test_sequential_fifo);
          Alcotest.test_case "interleaved" `Quick (forall test_interleaved_sequential);
        ] );
      ( "concurrent",
        [
          Alcotest.test_case "exactly once + per-producer order" `Quick
            (forall test_concurrent_exactly_once);
          Alcotest.test_case "recycling stress" `Quick (forall test_recycling_stress);
        ] );
      ( "reclamation",
        [
          Alcotest.test_case "quiescent footprint" `Quick (forall test_reclamation);
          Alcotest.test_case "htm frees immediately" `Quick test_htm_queue_frees_immediately;
          Alcotest.test_case "rop scans free" `Quick test_rop_scan_frees;
          Alcotest.test_case "collect queue adapts announcements" `Quick
            test_collect_queue_adaptive_announcements;
        ] );
    ]
