(* Single-threaded API tests run against every Dynamic Collect
   implementation: basic bind/collect/update/deregister semantics, capacity
   behaviour, resize behaviour, and leak-freedom. *)

let make_inst ?(max_slots = 64) ?(num_threads = 4) ?(min_size = 4)
    ?(step = Collect.Intf.Fixed 8) (maker : Collect.Intf.maker) =
  let mem = Simmem.create () in
  let htm = Htm.create mem in
  let boot = Sim.boot () in
  let cfg = { Collect.Intf.max_slots; num_threads; step; min_size } in
  (mem, boot, maker.make htm boot cfg)

let collect_list inst ctx =
  let buf = Sim.Ibuf.create () in
  inst.Collect.Intf.collect ctx buf;
  List.sort compare (Sim.Ibuf.to_list buf)

(* Run [f] in a single simulated thread (thread id 0). *)
let in_thread f = Sim.run ~seed:1 [| f |]

let forall_makers f () = List.iter (fun mk -> f mk) Collect.all_with_extensions

let name_of (mk : Collect.Intf.maker) = mk.algo_name

let test_empty_collect mk =
  let _, _, inst = make_inst mk in
  in_thread (fun ctx ->
      Alcotest.(check (list int)) (name_of mk ^ ": empty") [] (collect_list inst ctx))

let test_register_collect mk =
  let _, _, inst = make_inst mk in
  in_thread (fun ctx ->
      let _h1 = inst.register ctx 11 in
      let _h2 = inst.register ctx 22 in
      Alcotest.(check (list int)) (name_of mk ^ ": both bound") [ 11; 22 ]
        (collect_list inst ctx))

let test_update_visible mk =
  let _, _, inst = make_inst mk in
  in_thread (fun ctx ->
      let h = inst.register ctx 5 in
      inst.update ctx h 6;
      Alcotest.(check (list int)) (name_of mk ^ ": updated value") [ 6 ]
        (collect_list inst ctx);
      inst.update ctx h 7;
      Alcotest.(check (list int)) (name_of mk ^ ": updated again") [ 7 ]
        (collect_list inst ctx))

let test_deregister_removes mk =
  let _, _, inst = make_inst mk in
  in_thread (fun ctx ->
      let h1 = inst.register ctx 1 in
      let h2 = inst.register ctx 2 in
      inst.deregister ctx h1;
      Alcotest.(check (list int)) (name_of mk ^ ": h1 gone") [ 2 ] (collect_list inst ctx);
      inst.deregister ctx h2;
      Alcotest.(check (list int)) (name_of mk ^ ": all gone") [] (collect_list inst ctx))

let test_many_handles mk =
  let _, _, inst = make_inst ~max_slots:128 mk in
  in_thread (fun ctx ->
      let n = 30 in
      let hs = Array.init n (fun i -> inst.register ctx (100 + i)) in
      Alcotest.(check (list int))
        (name_of mk ^ ": all present")
        (List.init n (fun i -> 100 + i))
        (collect_list inst ctx);
      (* deregister the even ones *)
      Array.iteri (fun i h -> if i mod 2 = 0 then inst.deregister ctx h) hs;
      Alcotest.(check (list int))
        (name_of mk ^ ": odds remain")
        (List.init (n / 2) (fun i -> 101 + (2 * i)))
        (collect_list inst ctx))

let test_reregister_after_dereg mk =
  let _, _, inst = make_inst mk in
  in_thread (fun ctx ->
      let h = inst.register ctx 1 in
      inst.deregister ctx h;
      let h2 = inst.register ctx 2 in
      Alcotest.(check (list int)) (name_of mk ^ ": fresh handle") [ 2 ]
        (collect_list inst ctx);
      inst.deregister ctx h2)

let test_no_leak mk =
  let mem = Simmem.create () in
  let htm = Htm.create mem in
  let boot = Sim.boot () in
  let base = (Simmem.stats mem).live_blocks in
  let cfg =
    { Collect.Intf.max_slots = 64; num_threads = 2; step = Collect.Intf.Fixed 8; min_size = 4 }
  in
  let inst = mk.Collect.Intf.make htm boot cfg in
  in_thread (fun ctx ->
      let hs = Array.init 20 (fun i -> inst.register ctx (i + 1)) in
      Array.iter (fun h -> inst.deregister ctx h) hs);
  inst.destroy boot;
  Alcotest.(check int)
    (name_of mk ^ ": no leak after deregister-all + destroy")
    base
    (Simmem.stats mem).live_blocks

let test_static_capacity () =
  List.iter
    (fun name ->
      match Collect.find_maker name with
      | None -> Alcotest.failf "missing maker %s" name
      | Some mk ->
        let _, _, inst = make_inst ~max_slots:4 ~num_threads:1 mk in
        in_thread (fun ctx ->
            let hs = Array.init 4 (fun i -> inst.register ctx (i + 1)) in
            (try
               ignore (inst.register ctx 99);
               Alcotest.failf "%s: expected Capacity_exceeded" name
             with Collect.Intf.Capacity_exceeded _ -> ());
            Array.iter (fun h -> inst.deregister ctx h) hs))
    [ "ArrayStatSearchNo"; "ArrayStatAppendDereg"; "StaticBaseline" ]

let test_dynamic_grows () =
  List.iter
    (fun name ->
      match Collect.find_maker name with
      | None -> Alcotest.failf "missing maker %s" name
      | Some mk ->
        (* max_slots is irrelevant for dynamic algorithms: register far
           beyond it. *)
        let _, _, inst = make_inst ~max_slots:4 ~min_size:2 mk in
        in_thread (fun ctx ->
            let n = 100 in
            let hs = Array.init n (fun i -> inst.register ctx (i + 1)) in
            let got = collect_list inst ctx in
            Alcotest.(check int) (name ^ ": all registered") n (List.length got);
            Array.iter (fun h -> inst.deregister ctx h) hs;
            Alcotest.(check (list int)) (name ^ ": drained") [] (collect_list inst ctx)))
    [ "ArrayDynSearchResize"; "ArrayDynAppendDereg"; "ListHoHRC"; "ListFastCollect";
      "DynamicBaseline"; "ListFastCollectDeferred"; "ArrayDynAppendFastUpd" ]

let test_dynamic_array_shrinks () =
  (* The dynamic arrays must release memory when handles are deregistered:
     live words after dropping from 100 to 1 handles must be far below the
     peak. *)
  List.iter
    (fun name ->
      match Collect.find_maker name with
      | None -> Alcotest.failf "missing maker %s" name
      | Some mk ->
        let mem, _, inst = make_inst ~min_size:2 mk in
        in_thread (fun ctx ->
            let hs = Array.init 100 (fun i -> inst.register ctx (i + 1)) in
            let high = (Simmem.stats mem).live_words in
            Array.iteri (fun i h -> if i > 0 then inst.deregister ctx h) hs;
            let low = (Simmem.stats mem).live_words in
            Alcotest.(check bool)
              (Printf.sprintf "%s: shrinks (high=%d low=%d)" name high low)
              true
              (low * 4 < high);
            inst.deregister ctx hs.(0)))
    [ "ArrayDynSearchResize"; "ArrayDynAppendDereg"; "ListHoHRC"; "ListFastCollect";
      "ArrayDynAppendFastUpd" ]

let test_figure2_invariant () =
  (* ArrayDynAppendDereg maintains max(count, MIN) <= capacity <= 4*count
     at quiescence. Exercise a grow/shrink staircase and check memory use
     tracks the handle count. *)
  match Collect.find_maker "ArrayDynAppendDereg" with
  | None -> Alcotest.fail "maker missing"
  | Some mk ->
    let mem, _, inst = make_inst ~min_size:2 mk in
    in_thread (fun ctx ->
        let live () = (Simmem.stats mem).live_words in
        let handles = Queue.create () in
        for i = 1 to 64 do
          Queue.add (inst.register ctx i) handles
        done;
        let at64 = live () in
        for _ = 1 to 60 do
          inst.deregister ctx (Queue.pop handles)
        done;
        let at4 = live () in
        Alcotest.(check bool)
          (Printf.sprintf "array shrank with count (64:%d -> 4:%d)" at64 at4)
          true
          (at4 * 4 < at64);
        while not (Queue.is_empty handles) do
          inst.deregister ctx (Queue.pop handles)
        done)

let suite_for name f = Alcotest.test_case name `Quick (forall_makers f)

let () =
  Alcotest.run "collect-unit"
    [
      ( "all-algorithms",
        [
          suite_for "empty collect" test_empty_collect;
          suite_for "register + collect" test_register_collect;
          suite_for "update visible" test_update_visible;
          suite_for "deregister removes" test_deregister_removes;
          suite_for "many handles" test_many_handles;
          suite_for "reregister after dereg" test_reregister_after_dereg;
          suite_for "no leak" test_no_leak;
        ] );
      ( "capacity",
        [
          Alcotest.test_case "static raises at bound" `Quick test_static_capacity;
          Alcotest.test_case "dynamic grows past bound" `Quick test_dynamic_grows;
          Alcotest.test_case "dynamic arrays shrink" `Quick test_dynamic_array_shrinks;
          Alcotest.test_case "figure 2 resize staircase" `Quick test_figure2_invariant;
        ] );
    ]
