(* Tests for the adaptive step-size controller (paper §3.4): 8-outcome
   window, double when counter > 6 after a commit, halve when counter < -2
   after an abort, window reset on resize. *)

let test_initial () =
  let a = Htm.Adapt.create ~initial:4 () in
  Alcotest.(check int) "initial step" 4 (Htm.Adapt.step a);
  Alcotest.(check int) "empty window" 0 (Htm.Adapt.window_length a)

let test_double_after_7_commits () =
  let a = Htm.Adapt.create ~initial:1 () in
  for i = 1 to 6 do
    Htm.Adapt.on_commit a;
    Alcotest.(check int) (Printf.sprintf "no doubling at %d commits" i) 1 (Htm.Adapt.step a)
  done;
  (* 7th consecutive commit: counter reaches 7 > 6. *)
  Htm.Adapt.on_commit a;
  Alcotest.(check int) "doubled at counter 7" 2 (Htm.Adapt.step a);
  Alcotest.(check int) "window reset after resize" 0 (Htm.Adapt.window_length a)

let test_halve_threshold () =
  let a = Htm.Adapt.create ~initial:8 () in
  (* counter -1, -2 do not trigger; -3 does. *)
  Htm.Adapt.on_abort a;
  Alcotest.(check int) "counter -1 keeps step" 8 (Htm.Adapt.step a);
  Htm.Adapt.on_abort a;
  Alcotest.(check int) "counter -2 keeps step" 8 (Htm.Adapt.step a);
  Htm.Adapt.on_abort a;
  Alcotest.(check int) "counter -3 halves" 4 (Htm.Adapt.step a);
  Alcotest.(check int) "window reset" 0 (Htm.Adapt.window_length a)

let test_bounds () =
  let a = Htm.Adapt.create ~min_step:2 ~max_step:8 ~initial:8 () in
  for _ = 1 to 20 do
    Htm.Adapt.on_commit a
  done;
  Alcotest.(check int) "capped at max" 8 (Htm.Adapt.step a);
  let b = Htm.Adapt.create ~min_step:2 ~max_step:8 ~initial:2 () in
  for _ = 1 to 20 do
    Htm.Adapt.on_abort b
  done;
  Alcotest.(check int) "floored at min" 2 (Htm.Adapt.step b)

let test_aging_out () =
  let a = Htm.Adapt.create ~initial:1 () in
  (* 4 aborts then 8 commits: the window holds only the last 8 outcomes, so
     after 8 commits the aborts have aged out and counter = 8 > 6. But the
     doubling already happens once the aborts age out far enough. *)
  for _ = 1 to 4 do
    Htm.Adapt.on_abort a
  done;
  Alcotest.(check int) "still at 1" 1 (Htm.Adapt.step a);
  let doubled = ref false in
  for _ = 1 to 12 do
    Htm.Adapt.on_commit a;
    if Htm.Adapt.step a > 1 then doubled := true
  done;
  Alcotest.(check bool) "aging out enables doubling" true !doubled

let test_mixed_stays () =
  (* Alternating outcomes keep the counter near 0: never resize. *)
  let a = Htm.Adapt.create ~initial:4 () in
  for _ = 1 to 50 do
    Htm.Adapt.on_commit a;
    Htm.Adapt.on_abort a
  done;
  Alcotest.(check int) "alternating outcomes keep step" 4 (Htm.Adapt.step a)

let test_histogram () =
  let a = Htm.Adapt.create ~initial:1 () in
  Htm.Adapt.record_collected a 10;
  for _ = 1 to 8 do
    Htm.Adapt.on_commit a
  done;
  Htm.Adapt.record_collected a 5;
  Alcotest.(check (list (pair int int))) "histogram by step" [ (1, 10); (2, 5) ]
    (Htm.Adapt.histogram a)

let test_invalid_args () =
  Alcotest.check_raises "bad bounds" (Invalid_argument "Adapt.create: bad bounds")
    (fun () -> ignore (Htm.Adapt.create ~min_step:0 ~initial:1 ()));
  Alcotest.check_raises "bad initial" (Invalid_argument "Adapt.create: bad initial")
    (fun () -> ignore (Htm.Adapt.create ~min_step:2 ~max_step:8 ~initial:16 ()))

(* Model-based property: replay a random outcome script against a direct
   model of the specification. *)
let model_step script =
  let window = ref [] (* newest first, length <= 8 *) in
  let step = ref 4 in
  let counter () =
    List.fold_left (fun acc b -> acc + if b then 1 else -1) 0 !window
  in
  List.iter
    (fun commit ->
      window := commit :: (if List.length !window = 8 then List.filteri (fun i _ -> i < 7) !window else !window);
      if commit && counter () > 6 && !step < 32 then begin
        step := !step * 2;
        window := []
      end
      else if (not commit) && counter () < -2 && !step > 1 then begin
        step := !step / 2;
        window := []
      end)
    script;
  !step

let prop_model =
  QCheck.Test.make ~name:"controller matches specification model" ~count:500
    QCheck.(list bool)
    (fun script ->
      let a = Htm.Adapt.create ~initial:4 () in
      List.iter (fun c -> if c then Htm.Adapt.on_commit a else Htm.Adapt.on_abort a) script;
      Htm.Adapt.step a = model_step script)

let prop_counter_bounded =
  QCheck.Test.make ~name:"counter stays within window bounds" ~count:500
    QCheck.(list bool)
    (fun script ->
      let a = Htm.Adapt.create ~initial:4 () in
      List.for_all
        (fun c ->
          if c then Htm.Adapt.on_commit a else Htm.Adapt.on_abort a;
          abs (Htm.Adapt.counter a) <= 8 && Htm.Adapt.window_length a <= 8)
        script)

let prop_step_power_of_two =
  QCheck.Test.make ~name:"step stays a power of two within bounds" ~count:500
    QCheck.(list bool)
    (fun script ->
      let a = Htm.Adapt.create ~initial:4 () in
      List.for_all
        (fun c ->
          if c then Htm.Adapt.on_commit a else Htm.Adapt.on_abort a;
          let s = Htm.Adapt.step a in
          s >= 1 && s <= 32 && s land (s - 1) = 0)
        script)

let () =
  Alcotest.run "adapt"
    [
      ( "unit",
        [
          Alcotest.test_case "initial" `Quick test_initial;
          Alcotest.test_case "double after 7 commits" `Quick test_double_after_7_commits;
          Alcotest.test_case "halve threshold" `Quick test_halve_threshold;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "aging out" `Quick test_aging_out;
          Alcotest.test_case "mixed stays" `Quick test_mixed_stays;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "invalid args" `Quick test_invalid_args;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [ prop_model; prop_counter_bounded; prop_step_power_of_two ] );
    ]
