(* Tests for the simulated HTM: serializability, opacity, sandboxing,
   store-buffer bounds, strong atomicity, TLE. *)

let make ?config () =
  let mem = Simmem.create () in
  let htm = Htm.create ?config mem in
  (mem, htm, Sim.boot ())

let test_read_write_commit () =
  let mem, htm, boot = make () in
  let a = Simmem.malloc mem boot 2 in
  let v =
    Htm.atomic htm boot (fun tx ->
        Htm.write tx a 5;
        Htm.write tx (a + 1) 6;
        Htm.read tx a + Htm.read tx (a + 1))
  in
  Alcotest.(check int) "read own writes" 11 v;
  Alcotest.(check int) "committed" 5 (Simmem.read mem boot a)

let test_abort_discards () =
  let mem, htm, boot = make () in
  let a = Simmem.malloc mem boot 1 in
  let attempts = ref 0 in
  let v =
    Htm.atomic htm boot (fun tx ->
        incr attempts;
        Htm.write tx a 99;
        if !attempts = 1 then Htm.abort tx else Htm.read tx a)
  in
  Alcotest.(check int) "explicit abort retries" 2 !attempts;
  Alcotest.(check int) "second attempt result" 99 v;
  Alcotest.(check int) "only final commit applied" 99 (Simmem.read mem boot a);
  Alcotest.(check int) "explicit abort counted" 1 (Htm.stats htm).aborts_explicit

let test_counter_serializable () =
  let mem = Simmem.create () in
  let htm = Htm.create mem in
  let boot = Sim.boot () in
  let a = Simmem.malloc mem boot 1 in
  let n = 2000 and nt = 8 in
  Sim.run ~seed:3
    (Array.init nt (fun _ ->
         fun ctx ->
           for _ = 1 to n do
             Htm.atomic htm ctx (fun tx -> Htm.write tx a (Htm.read tx a + 1))
           done));
  Alcotest.(check int) "no lost updates" (n * nt) (Simmem.peek mem a)

(* Transactions with a wide read-to-commit window must experience conflicts
   under contention (short ones serialize through the coherence queue). *)
let test_long_txs_conflict () =
  let mem = Simmem.create () in
  let htm = Htm.create mem in
  let boot = Sim.boot () in
  let a = Simmem.malloc mem boot 1 in
  let n = 200 and nt = 4 in
  Sim.run ~seed:3
    (Array.init nt (fun _ ->
         fun ctx ->
           for _ = 1 to n do
             Htm.atomic htm ctx (fun tx ->
                 let v = Htm.read tx a in
                 Sim.advance_to ctx (Sim.clock ctx + 300);
                 Htm.write tx a (v + 1))
           done));
  Alcotest.(check int) "still no lost updates" (n * nt) (Simmem.peek mem a);
  Alcotest.(check bool) "conflicts occurred" true ((Htm.stats htm).aborts_conflict > 0)

let test_overflow () =
  let mem, htm, boot = make () in
  let a = Simmem.malloc mem boot 40 in
  let aborted = ref 0 in
  (* 33 stores must overflow a 32-entry buffer; cap attempts via TLE. *)
  let config = { Htm.default_config with tle = Htm.Tle_after 2 } in
  let htm2 = Htm.create ~config (Htm.mem htm) in
  Htm.atomic htm2 boot (fun tx ->
      if not (Htm.in_fallback tx) then incr aborted;
      for i = 0 to 32 do
        Htm.write tx (a + i) i
      done);
  Alcotest.(check bool) "hw attempts overflowed" true ((Htm.stats htm2).aborts_overflow >= 1);
  Alcotest.(check int) "completed via lock" 32 (Simmem.read mem boot (a + 32))

let test_record_counts_against_buffer () =
  let mem, htm, boot = make () in
  ignore mem;
  let config = { Htm.default_config with tle = Htm.Tle_after 1 } in
  let htm2 = Htm.create ~config (Htm.mem htm) in
  Htm.atomic htm2 boot (fun tx ->
      if not (Htm.in_fallback tx) then
        for _ = 1 to 33 do
          Htm.record tx
        done);
  Alcotest.(check bool) "records overflow the store buffer" true
    ((Htm.stats htm2).aborts_overflow >= 1)

let test_exactly_32_ok () =
  let mem, htm, boot = make () in
  let a = Simmem.malloc mem boot 32 in
  Htm.atomic htm boot (fun tx ->
      for i = 0 to 31 do
        Htm.write tx (a + i) 1
      done);
  Alcotest.(check int) "32 stores fit" 0 (Htm.stats htm).aborts_overflow

let test_sandboxing () =
  let mem, htm, boot = make () in
  let a = Simmem.malloc mem boot 2 in
  let hit_freed = ref false in
  Sim.run ~seed:12
    [|
      (fun ctx ->
        (* Reads the block slowly; the concurrent free must abort us, not
           fault. *)
        let v =
          Htm.atomic htm ctx (fun tx ->
              let x = Htm.read tx a in
              Sim.advance_to ctx (Sim.clock ctx + 1000);
              (* If the block was freed meanwhile, this access aborts the
                 attempt (sandboxing) and we retry against the new block. *)
              if x = 0 then x + Htm.read tx (a + 1) else x)
        in
        ignore v;
        hit_freed := true);
      (fun ctx ->
        Sim.advance_to ctx 300;
        Simmem.free mem ctx a;
        (* Realloc so the retry finds live memory again. *)
        let b = Simmem.malloc mem ctx 2 in
        Simmem.write mem ctx b 7);
    |];
  Alcotest.(check bool) "transaction survived the free" true !hit_freed;
  let st = Htm.stats htm in
  Alcotest.(check bool) "aborted instead of faulting" true
    (st.aborts_illegal + st.aborts_conflict >= 1)

let test_no_sandboxing_faults () =
  let mem = Simmem.create () in
  let config = { Htm.default_config with sandboxed = false } in
  let htm = Htm.create ~config mem in
  let boot = Sim.boot () in
  let a = Simmem.malloc mem boot 1 in
  Simmem.free mem boot a;
  Alcotest.check_raises "unsandboxed tx segfaults"
    (Simmem.Fault (Simmem.Use_after_free a))
    (fun () -> Htm.atomic htm boot (fun tx -> ignore (Htm.read tx a)))

let test_strong_atomicity () =
  let mem, htm, boot = make () in
  ignore boot;
  let a = Simmem.malloc mem (Sim.boot ()) 1 in
  let conflicted = ref false in
  Sim.run ~seed:13
    [|
      (fun ctx ->
        Htm.atomic htm ctx (fun tx ->
            let v = Htm.read tx a in
            Sim.advance_to ctx (Sim.clock ctx + 2000);
            Htm.write tx a (v + 1)));
      (fun ctx ->
        Sim.advance_to ctx 500;
        (* naked store must doom the in-flight transaction *)
        Simmem.write mem ctx a 50);
    |];
  conflicted := (Htm.stats htm).aborts_conflict >= 1;
  Alcotest.(check bool) "naked store dooms transaction" true !conflicted;
  Alcotest.(check int) "final value reflects both" 51 (Simmem.peek mem a)

let test_opacity () =
  (* A doomed transaction must never observe an inconsistent pair. *)
  let mem = Simmem.create () in
  let htm = Htm.create mem in
  let boot = Sim.boot () in
  let a = Simmem.malloc mem boot 8 in
  (* invariant: a.(0) = a.(1) *)
  let violations = ref 0 in
  Sim.run ~seed:14
    [|
      (fun ctx ->
        for _ = 1 to 300 do
          Htm.atomic htm ctx (fun tx ->
              let x = Htm.read tx a in
              let y = Htm.read tx (a + 1) in
              if x <> y then incr violations)
        done);
      (fun ctx ->
        for i = 1 to 300 do
          Htm.atomic htm ctx (fun tx ->
              Htm.write tx a i;
              Htm.write tx (a + 1) i)
        done);
    |];
  Alcotest.(check int) "no inconsistent snapshot ever observed" 0 !violations

let test_defer_free () =
  let mem, htm, boot = make () in
  let a = Simmem.malloc mem boot 2 in
  let attempts = ref 0 in
  Htm.atomic htm boot (fun tx ->
      incr attempts;
      Htm.defer_free tx a;
      if !attempts = 1 then Htm.abort tx);
  Alcotest.(check bool) "freed exactly once, after commit" false (Simmem.is_allocated mem a)

let test_defer_free_not_on_abort () =
  let mem, htm, boot = make () in
  let a = Simmem.malloc mem boot 2 in
  let attempts = ref 0 in
  Htm.atomic htm boot (fun tx ->
      incr attempts;
      if !attempts = 1 then begin
        Htm.defer_free tx a;
        Htm.abort tx
      end);
  Alcotest.(check bool) "abort discards deferred free" true (Simmem.is_allocated mem a)

let test_tle_lock_held_aborts () =
  (* A hardware attempt that observes the lock held must abort with
     Lock_held, and commit only after the holder releases. *)
  let mem = Simmem.create () in
  let config = { Htm.default_config with tle = Htm.Tle_after 1 } in
  let htm = Htm.create ~config mem in
  let boot = Sim.boot () in
  let a = Simmem.malloc mem boot 1 in
  Sim.run ~seed:16
    [|
      (fun ctx ->
        (* force this thread into the lock path by aborting once, then
           holding the lock for a long virtual time via a slow block *)
        let attempts = ref 0 in
        Htm.atomic htm ctx (fun tx ->
            incr attempts;
            if not (Htm.in_fallback tx) then Htm.abort tx
            else begin
              Sim.advance_to ctx (Sim.clock ctx + 5_000);
              Htm.write tx a 1
            end));
      (fun ctx ->
        Sim.advance_to ctx 1_000;
        Htm.atomic htm ctx (fun tx -> Htm.write tx a (Htm.read tx a + 1)));
    |];
  Alcotest.(check int) "both effects applied in order" 2 (Simmem.peek mem a);
  Alcotest.(check bool) "lock-held aborts observed" true ((Htm.stats htm).aborts_lock > 0)

let test_abort_in_lock_mode_rejected () =
  let mem = Simmem.create () in
  let config = { Htm.default_config with tle = Htm.Tle_after 0 } in
  let htm = Htm.create ~config mem in
  let boot = Sim.boot () in
  Alcotest.check_raises "explicit abort under the lock is a client bug"
    (Invalid_argument "Htm.abort: cannot abort under the TLE lock") (fun () ->
      Htm.atomic htm boot (fun tx -> Htm.abort tx))

let test_write_to_freed_aborts () =
  (* A write-only transaction whose target is freed concurrently must
     abort (sandboxed) rather than corrupt recycled memory. *)
  let mem = Simmem.create () in
  let htm = Htm.create mem in
  let boot = Sim.boot () in
  let a = Simmem.malloc mem boot 2 in
  Sim.run ~seed:17
    [|
      (fun ctx ->
        Htm.atomic htm ctx (fun tx ->
            if Simmem.is_allocated mem a then begin
              Htm.write tx a 99;
              Sim.advance_to ctx (Sim.clock ctx + 2_000)
            end));
      (fun ctx ->
        Sim.advance_to ctx 500;
        (* the block stays freed: the pending store targets unmapped
           memory and the commit must abort, not corrupt it. (If it were
           recycled, the store would land — exactly as on real HTM, where
           write-only transactions see no conflict from malloc/free.) *)
        Simmem.free mem ctx a);
    |];
  let st = Htm.stats htm in
  Alcotest.(check bool) "aborted instead of writing freed memory" true
    (st.aborts_illegal + st.aborts_conflict >= 1)

let test_tle_serializes_with_hw () =
  (* Force one thread through the lock path; hardware transactions must
     still serialize with it. *)
  let mem = Simmem.create () in
  let config = { Htm.default_config with tle = Htm.Tle_after 3 } in
  let htm = Htm.create ~config mem in
  let boot = Sim.boot () in
  let a = Simmem.malloc mem boot 1 in
  let n = 300 in
  Sim.run ~seed:15
    (Array.init 6 (fun _ ->
         fun ctx ->
           for _ = 1 to n do
             Htm.atomic htm ctx (fun tx -> Htm.write tx a (Htm.read tx a + 1))
           done));
  Alcotest.(check int) "no lost updates with TLE" (6 * n) (Simmem.peek mem a)

let test_stats_reset () =
  let mem, htm, boot = make () in
  let a = Simmem.malloc mem boot 1 in
  Htm.atomic htm boot (fun tx -> Htm.write tx a 1);
  Alcotest.(check bool) "commits counted" true ((Htm.stats htm).commits > 0);
  Htm.reset_stats htm;
  Alcotest.(check int) "reset" 0 (Htm.stats htm).commits

let test_on_abort_hook () =
  let mem, htm, boot = make () in
  ignore mem;
  let seen = ref [] in
  let attempts = ref 0 in
  Htm.atomic htm boot
    ~on_abort:(fun r -> seen := r :: !seen)
    (fun tx ->
      incr attempts;
      if !attempts <= 2 then Htm.abort tx);
  Alcotest.(check int) "hook per abort" 2 (List.length !seen);
  Alcotest.(check bool) "reasons recorded" true
    (List.for_all (fun r -> r = Htm.Explicit) !seen)

let prop_concurrent_transfers_preserve_sum =
  (* Bank-transfer property: concurrent transactional transfers between
     accounts never create or destroy money. *)
  QCheck.Test.make ~name:"transfers preserve the total" ~count:30
    QCheck.(pair small_int (int_range 2 6))
    (fun (seed, nt) ->
      let mem = Simmem.create () in
      let htm = Htm.create mem in
      let boot = Sim.boot () in
      let n_accounts = 8 in
      let base = Simmem.malloc mem boot n_accounts in
      for i = 0 to n_accounts - 1 do
        Simmem.write mem boot (base + i) 100
      done;
      Sim.run ~seed
        (Array.init nt (fun _ ->
             fun ctx ->
               let rng = Sim.rng ctx in
               for _ = 1 to 100 do
                 let src = base + Sim.Rng.int rng n_accounts in
                 let dst = base + Sim.Rng.int rng n_accounts in
                 Htm.atomic htm ctx (fun tx ->
                     let s = Htm.read tx src in
                     if s > 0 then begin
                       Htm.write tx src (s - 1);
                       Htm.write tx dst (Htm.read tx dst + 1)
                     end)
               done));
      let total = ref 0 in
      for i = 0 to n_accounts - 1 do
        total := !total + Simmem.peek mem (base + i)
      done;
      !total = 100 * n_accounts)

let () =
  Alcotest.run "htm"
    [
      ( "basics",
        [
          Alcotest.test_case "read/write/commit" `Quick test_read_write_commit;
          Alcotest.test_case "abort discards writes" `Quick test_abort_discards;
          Alcotest.test_case "stats reset" `Quick test_stats_reset;
          Alcotest.test_case "on_abort hook" `Quick test_on_abort_hook;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "counter serializable" `Quick test_counter_serializable;
          Alcotest.test_case "long txs conflict" `Quick test_long_txs_conflict;
          Alcotest.test_case "strong atomicity" `Quick test_strong_atomicity;
          Alcotest.test_case "opacity" `Quick test_opacity;
        ] );
      ( "store buffer",
        [
          Alcotest.test_case "overflow at 33" `Quick test_overflow;
          Alcotest.test_case "records count" `Quick test_record_counts_against_buffer;
          Alcotest.test_case "32 stores fit" `Quick test_exactly_32_ok;
        ] );
      ( "sandboxing",
        [
          Alcotest.test_case "freed access aborts" `Quick test_sandboxing;
          Alcotest.test_case "unsandboxed faults" `Quick test_no_sandboxing_faults;
        ] );
      ( "memory",
        [
          Alcotest.test_case "defer_free on commit" `Quick test_defer_free;
          Alcotest.test_case "defer_free dropped on abort" `Quick test_defer_free_not_on_abort;
        ] );
      ( "tle",
        [
          Alcotest.test_case "lock serializes with hw" `Quick test_tle_serializes_with_hw;
          Alcotest.test_case "lock-held aborts" `Quick test_tle_lock_held_aborts;
          Alcotest.test_case "abort under lock rejected" `Quick test_abort_in_lock_mode_rejected;
          Alcotest.test_case "write to freed aborts" `Quick test_write_to_freed_aborts;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_concurrent_transfers_preserve_sum ]);
    ]
