(* Unit and property tests for the SplitMix64 generator. *)

let test_determinism () =
  let a = Sim.Rng.create 42 and b = Sim.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Sim.Rng.bits64 a) (Sim.Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Sim.Rng.create 1 and b = Sim.Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Sim.Rng.bits64 a <> Sim.Rng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_bounds () =
  let r = Sim.Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Sim.Rng.int r 13 in
    if v < 0 || v >= 13 then Alcotest.failf "out of bounds: %d" v
  done

let test_bound_one () =
  let r = Sim.Rng.create 9 in
  for _ = 1 to 100 do
    Alcotest.(check int) "bound 1 gives 0" 0 (Sim.Rng.int r 1)
  done

let test_invalid_bound () =
  let r = Sim.Rng.create 3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Sim.Rng.int r 0))

let test_split_independence () =
  let parent = Sim.Rng.create 5 in
  let child = Sim.Rng.split parent in
  (* The child stream must not simply replay the parent stream. *)
  let equal = ref 0 in
  for _ = 1 to 20 do
    if Sim.Rng.bits64 parent = Sim.Rng.bits64 child then incr equal
  done;
  Alcotest.(check bool) "streams diverge" true (!equal < 3)

let test_float_bounds () =
  let r = Sim.Rng.create 11 in
  for _ = 1 to 1000 do
    let f = Sim.Rng.float r 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.failf "float out of bounds: %f" f
  done

let test_uniformity () =
  (* Coarse chi-square-free check: each of 8 buckets gets 8-17 % of draws. *)
  let r = Sim.Rng.create 13 in
  let buckets = Array.make 8 0 in
  let n = 80_000 in
  for _ = 1 to n do
    let v = Sim.Rng.int r 8 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let frac = float_of_int c /. float_of_int n in
      if frac < 0.08 || frac > 0.17 then Alcotest.failf "bucket %d skewed: %f" i frac)
    buckets

let prop_int_in_bounds =
  QCheck.Test.make ~name:"Rng.int always within bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let r = Sim.Rng.create seed in
      let v = Sim.Rng.int r bound in
      v >= 0 && v < bound)

let prop_bool_balanced =
  QCheck.Test.make ~name:"Rng.bool is roughly balanced" ~count:50 QCheck.small_int
    (fun seed ->
      let r = Sim.Rng.create seed in
      let trues = ref 0 in
      for _ = 1 to 1000 do
        if Sim.Rng.bool r then incr trues
      done;
      !trues > 350 && !trues < 650)

let () =
  Alcotest.run "rng"
    [
      ( "unit",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_bounds;
          Alcotest.test_case "bound one" `Quick test_bound_one;
          Alcotest.test_case "invalid bound" `Quick test_invalid_bound;
          Alcotest.test_case "split independence" `Quick test_split_independence;
          Alcotest.test_case "float bounds" `Quick test_float_bounds;
          Alcotest.test_case "uniformity" `Quick test_uniformity;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest [ prop_int_in_bounds; prop_bool_balanced ] );
    ]
