(* Tests for the per-thread telescoping step controller wrapper. *)

let in_thread f = Sim.run ~seed:1 [| f |]

let test_fixed_clamped () =
  let s = Collect.Stepper.make (Collect.Intf.Fixed 32) ~max_step:27 in
  in_thread (fun ctx -> Alcotest.(check int) "clamped to max" 27 (Collect.Stepper.get s ctx));
  let s2 = Collect.Stepper.make (Collect.Intf.Fixed 0) ~max_step:27 in
  in_thread (fun ctx -> Alcotest.(check int) "clamped to 1" 1 (Collect.Stepper.get s2 ctx))

let test_adaptive_pow2_bound () =
  (* max_step 27 must round the adaptive ceiling down to 16 *)
  let s = Collect.Stepper.make Collect.Intf.Adaptive ~max_step:27 in
  in_thread (fun ctx ->
      for _ = 1 to 100 do
        Collect.Stepper.on_commit s ctx
      done;
      Alcotest.(check int) "adaptive capped at 16" 16 (Collect.Stepper.get s ctx))

let test_per_thread_independence () =
  let s = Collect.Stepper.make Collect.Intf.Adaptive ~max_step:32 in
  let step0 = ref 0 and step1 = ref 0 in
  Sim.run ~seed:2
    [|
      (fun ctx ->
        for _ = 1 to 50 do
          Collect.Stepper.on_commit s ctx
        done;
        step0 := Collect.Stepper.get s ctx);
      (fun ctx ->
        for _ = 1 to 50 do
          Collect.Stepper.on_abort s ctx
        done;
        step1 := Collect.Stepper.get s ctx);
    |];
  Alcotest.(check int) "committing thread grew" 32 !step0;
  Alcotest.(check int) "aborting thread stayed at floor" 1 !step1

let test_overhead_charged () =
  let charged policy =
    let s = Collect.Stepper.make policy ~max_step:32 in
    let d = ref 0 in
    in_thread (fun ctx ->
        let t0 = Sim.clock ctx in
        Collect.Stepper.on_commit s ctx;
        d := Sim.clock ctx - t0);
    !d
  in
  Alcotest.(check int) "fixed is free" 0 (charged (Collect.Intf.Fixed 8));
  Alcotest.(check bool) "instrumented pays" true (charged (Collect.Intf.Fixed_instrumented 8) > 0);
  Alcotest.(check bool) "adaptive pays" true (charged Collect.Intf.Adaptive > 0)

let test_histogram_merges_threads () =
  let s = Collect.Stepper.make Collect.Intf.Adaptive ~max_step:32 in
  Sim.run ~seed:3
    [|
      (fun ctx -> Collect.Stepper.record_collected s ctx 10);
      (fun ctx -> Collect.Stepper.record_collected s ctx 5);
    |];
  Alcotest.(check (list (pair int int))) "merged across threads" [ (1, 15) ]
    (Collect.Stepper.histogram s)

let test_fixed_histogram_empty () =
  let s = Collect.Stepper.make (Collect.Intf.Fixed 8) ~max_step:32 in
  in_thread (fun ctx -> Collect.Stepper.record_collected s ctx 10);
  Alcotest.(check (list (pair int int))) "fixed has no histogram" [] (Collect.Stepper.histogram s)

let () =
  Alcotest.run "stepper"
    [
      ( "unit",
        [
          Alcotest.test_case "fixed clamped" `Quick test_fixed_clamped;
          Alcotest.test_case "adaptive pow2 bound" `Quick test_adaptive_pow2_bound;
          Alcotest.test_case "per-thread independence" `Quick test_per_thread_independence;
          Alcotest.test_case "overhead charged" `Quick test_overhead_charged;
          Alcotest.test_case "histogram merges" `Quick test_histogram_merges_threads;
          Alcotest.test_case "fixed histogram empty" `Quick test_fixed_histogram_empty;
        ] );
    ]
