(* Golden tests for the table/CSV/chart renderers. *)

let table =
  {
    Workload.Report.title = "T";
    xlabel = "x";
    unit = "u";
    columns = [ "one"; "two" ];
    rows = [ ("a", [ Some 1.0; Some 2.0 ]); ("b", [ Some 1.5; None ]) ];
  }

let render f t =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf t;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let test_print () =
  let s = render Workload.Report.print table in
  Alcotest.(check bool) "has title" true (String.length s > 0);
  List.iter
    (fun needle ->
      if not (Astring.String.is_infix ~affix:needle s) then
        Alcotest.failf "missing %S in:\n%s" needle s)
    [ "== T [u] =="; "one"; "two"; "1.000"; "2.000"; "1.500"; "-" ]

let test_csv () =
  let s = render Workload.Report.print_csv table in
  List.iter
    (fun needle ->
      if not (Astring.String.is_infix ~affix:needle s) then
        Alcotest.failf "missing %S in:\n%s" needle s)
    [ "x,one,two"; "a,1.000000,2.000000"; "b,1.500000," ]

let test_plot () =
  let s = render (Workload.Report.plot ?height:None) table in
  List.iter
    (fun needle ->
      if not (Astring.String.is_infix ~affix:needle s) then
        Alcotest.failf "missing %S in:\n%s" needle s)
    [ "-- T [u] --"; "A = one"; "B = two"; "2.00" ];
  (* the glyph for the max value must sit on the top canvas row *)
  (match String.split_on_char '\n' s with
   | _title :: top :: _ ->
     Alcotest.(check bool) "B at the top" true (String.contains top 'B')
   | _ -> Alcotest.fail "unexpected plot shape")

let test_plot_empty () =
  let s =
    render (Workload.Report.plot ?height:None)
      { table with rows = []; columns = [] }
  in
  Alcotest.(check bool) "degrades gracefully" true
    (Astring.String.is_infix ~affix:"empty" s)

let test_cell_formats () =
  let wide =
    {
      table with
      rows = [ ("big", [ Some 12345.0; Some 42.5 ]); ("small", [ Some 0.001; None ]) ];
    }
  in
  let s = render Workload.Report.print wide in
  List.iter
    (fun needle ->
      if not (Astring.String.is_infix ~affix:needle s) then
        Alcotest.failf "missing %S in:\n%s" needle s)
    [ "12345"; "42.5"; "0.001" ]

let () =
  Alcotest.run "report"
    [
      ( "render",
        [
          Alcotest.test_case "table" `Quick test_print;
          Alcotest.test_case "csv" `Quick test_csv;
          Alcotest.test_case "plot" `Quick test_plot;
          Alcotest.test_case "plot empty" `Quick test_plot_empty;
          Alcotest.test_case "cell formats" `Quick test_cell_formats;
        ] );
    ]
