(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5) on the simulated machine, plus the space measurements
   behind the §1 claims, the §6 ablations, and a Bechamel microbenchmark
   suite measuring the simulator's own wall-clock costs.

     dune exec bench/main.exe                  # everything, quick settings
     dune exec bench/main.exe -- fig4          # one figure
     dune exec bench/main.exe -- fig4 -j 8     # same bytes, 8 domains
     dune exec bench/main.exe -- all --smoke --json --jobs 8
     dune exec bench/main.exe -- diff OLD.json NEW.json

   The experiments themselves live in the registry (experiments.ml); this
   file is only the CLI, the observability plumbing, and the artifact
   files. Throughput numbers are virtual-time (2000 cycles/µs); only
   shapes are comparable with the paper, never absolute values. *)

let pf fmt = Format.printf fmt

let chart_mode = ref false

(* Every table an experiment prints is also captured here (newest first)
   so --json can write the machine-readable BENCH_<experiment>.json
   report after the run. *)
let captured_tables : Obs.Json.t list ref = ref []

let emit ~csv table =
  captured_tables := Workload.Report.to_json table :: !captured_tables;
  if csv then Workload.Report.print_csv Format.std_formatter table
  else begin
    Workload.Report.print Format.std_formatter table;
    if !chart_mode then Workload.Report.plot Format.std_formatter table
  end

(* ------------------------------------------------------------------ *)
(* Observability plumbing: --trace / --metrics / --json                *)

(* The abort breakdown and cycle totals of the BENCH_<experiment>.json
   report, read back out of the aggregate metrics registry. *)
let summary_of_metrics reg =
  let snap = Obs.Metrics.snapshot reg in
  let counter name =
    match List.assoc_opt name snap with
    | Some (Obs.Metrics.Counter { total; _ }) -> total
    | _ -> 0
  in
  let hist name =
    match List.assoc_opt name snap with
    | Some (Obs.Metrics.Hist buckets) ->
        Obs.Json.List
          (List.map (fun (lo, n) -> Obs.Json.List [ Obs.Json.Int lo; Obs.Json.Int n ]) buckets)
    | _ -> Obs.Json.List []
  in
  let abort_reasons = [ "conflict"; "overflow"; "illegal"; "explicit"; "lock_held"; "spurious" ] in
  Obs.Json.Obj
    [
      ("commits", Obs.Json.Int (counter "htm.commits"));
      ( "aborts",
        Obs.Json.Obj
          (List.map (fun r -> (r, Obs.Json.Int (counter ("htm.aborts." ^ r)))) abort_reasons) );
      ("lock_fallbacks", Obs.Json.Int (counter "htm.fallbacks"));
      ( "cycles",
        Obs.Json.Obj
          [
            ("committed_total", Obs.Json.Int (counter "htm.commit_cycles_total"));
            ("commit_hist", hist "htm.commit_cycles");
            ("queue_wait_hist", hist "mem.queue_wait");
          ] );
      ( "mem",
        Obs.Json.Obj
          (List.map
             (fun n -> (n, Obs.Json.Int (counter ("mem." ^ n))))
             [ "reads"; "read_misses"; "writes"; "write_misses"; "atomics"; "allocs"; "frees" ])
      );
    ]

(* Same-labeled machines from different cells (or repeated cells) merge
   in canonical first-occurrence order, which keeps the forensics
   artifact byte-identical whatever --jobs did. *)
let merge_forensics fors =
  let order = ref [] in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (name, f) ->
      match Hashtbl.find_opt tbl name with
      | Some dst -> Obs.Forensics.absorb dst f
      | None ->
          Hashtbl.add tbl name f;
          order := name :: !order)
    fors;
  List.rev_map (fun name -> (name, Hashtbl.find tbl name)) !order

(* bench/3: the forensics artifact. Like bench/2 it carries only
   deterministic products — witnesses, conflict graphs and escalation
   timelines are virtual-time facts, so the file is byte-identical at
   any --jobs. *)
let forensics_json ~experiment ~duration ~seed machines =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str "bench/3");
      ("experiment", Obs.Json.Str experiment);
      ( "params",
        Obs.Json.Obj
          [ ("duration", Obs.Json.Int duration); ("seed", Obs.Json.Int seed) ] );
      ( "machines",
        Obs.Json.List
          (List.map
             (fun (name, f) ->
               Obs.Json.Obj
                 [
                   ("machine", Obs.Json.Str name);
                   ("forensics", Obs.Forensics.to_json f);
                 ])
             machines) );
    ]

(* bench/2: adds deterministic run metadata (the canonical cell count).
   Wall-clock and --jobs deliberately never appear here — the artifact
   must be byte-identical whatever the pool did. *)
let bench_json ~experiment ~duration ~seed ~cells ~metrics =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str "bench/2");
      ("experiment", Obs.Json.Str experiment);
      ( "params",
        Obs.Json.Obj
          [ ("duration", Obs.Json.Int duration); ("seed", Obs.Json.Int seed) ] );
      ( "run",
        Obs.Json.Obj
          [ ("cells", Obs.Json.Int cells); ("deterministic", Obs.Json.Bool true) ] );
      ("tables", Obs.Json.List (List.rev !captured_tables));
      ( "summary",
        match metrics with Some r -> summary_of_metrics r | None -> Obs.Json.Null );
    ]

(* Run one registry experiment with the requested sinks: a fresh aggregate
   registry per experiment (so `all --json` artifacts stay independent),
   the sweep executor under it, then the artifact files. *)
let run_experiment (e : Experiments.t) ~jobs ~duration ~seed ~csv ~json ~trace ~metrics
    ~forensics ~times =
  let tracer = match trace with None -> None | Some _ -> Some (Obs.Tracer.create ()) in
  let mreg = if json || metrics <> None then Some (Obs.Metrics.create ()) else None in
  captured_tables := [];
  let ctx =
    { Experiments.duration; seed; emit = emit ~csv; ppf = Format.std_formatter }
  in
  let fors = Experiments.run e ~jobs ~forensics ?tracer ?absorb_into:mreg ~times ctx in
  (* Trace health belongs in the registry too: a truncated trace (ring
     overflow) silently biases any analysis built on it, so the dropped
     count rides along with the other counters. *)
  (match (tracer, mreg) with
  | Some tr, Some r ->
      Obs.Metrics.incr ~by:(Obs.Tracer.recorded tr) (Obs.Metrics.counter r "tracer.recorded");
      Obs.Metrics.incr ~by:(Obs.Tracer.dropped tr) (Obs.Metrics.counter r "tracer.dropped")
  | _ -> ());
  (match (trace, tracer) with
  | Some file, Some tr ->
      Obs.Tracer.write_file tr file;
      pf "trace: %d events (%d dropped) -> %s@." (Obs.Tracer.recorded tr)
        (Obs.Tracer.dropped tr) file
  | _ -> ());
  if forensics then begin
    let merged = merge_forensics fors in
    List.iter
      (fun (name, f) ->
        pf "== Forensics: %s (%d witnesses, %d escalations) ==@." name
          (Obs.Forensics.count f) (Obs.Forensics.hop_count f);
        Obs.Forensics.print Format.std_formatter f)
      merged;
    let file = Printf.sprintf "BENCH_%s.forensics.json" e.name in
    Obs.Json.write_file file (forensics_json ~experiment:e.name ~duration ~seed merged);
    pf "forensics -> %s@." file
  end;
  (match (metrics, mreg) with
  | Some file, Some r ->
      Obs.Json.write_file file (Obs.Metrics.to_json r);
      pf "metrics -> %s@." file
  | _ -> ());
  if json then begin
    let file = Printf.sprintf "BENCH_%s.json" e.name in
    Obs.Json.write_file file
      (bench_json ~experiment:e.name ~duration ~seed
         ~cells:(Experiments.cell_count e ~duration ~seed)
         ~metrics:mreg);
    pf "bench report -> %s@." file
  end

(* CI settings: an eighth of the default window (floored) keeps every
   shape the tests encode while the whole `all` sweep stays in minutes. *)
let smoke_duration (e : Experiments.t) =
  if e.default_duration = 0 then 0 else max 50_000 (e.default_duration / 8)

let run_all ~jobs ~seed ~csv ~smoke ~json ~times =
  List.iter
    (fun (e : Experiments.t) ->
      if e.in_all then begin
        let duration = if smoke then smoke_duration e else e.default_duration in
        run_experiment e ~jobs ~duration ~seed ~csv ~json ~trace:None ~metrics:None
          ~forensics:false ~times
      end)
    Experiments.all

(* ------------------------------------------------------------------ *)
(* Command line                                                        *)

open Cmdliner

let jobs_arg =
  let doc =
    "Run the experiment's independent cells on $(docv) domains. The output (tables and \
     artifacts) is byte-identical whatever $(docv) is; only wall-clock changes."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let duration_arg default =
  let doc = "Measured window in virtual cycles (2000 cycles = 1 us)." in
  Arg.(value & opt int default & info [ "duration"; "d" ] ~doc)

let seed_arg = Arg.(value & opt int 1 & info [ "seed"; "s" ] ~doc:"Experiment seed.")
let csv_arg = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of tables.")

let chart_arg =
  Arg.(value & flag & info [ "chart" ] ~doc:"Also draw each table as an ASCII chart.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a virtual-time event trace of the run and write it to $(docv) as Chrome \
           trace_event JSON (open in Perfetto; read microseconds as simulated cycles). \
           Forces --jobs 1.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write the aggregated metrics registry snapshot to $(docv) as JSON (includes \
           the runner.* per-cell wall-clock telemetry).")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Also write BENCH_<experiment>.json: the printed tables plus the abort breakdown \
           and cycle totals, machine-readable.")

let forensics_arg =
  Arg.(
    value & flag
    & info [ "forensics" ]
        ~doc:
          "Capture conflict witnesses and escalation timelines, print the per-machine \
           diagnosis tables, and write BENCH_<experiment>.forensics.json. Witness capture \
           charges zero virtual cycles, so results are byte-identical with or without it.")

let times_arg =
  Arg.(
    value & flag
    & info [ "times" ]
        ~doc:"Print the per-cell wall-clock table after the run (never in artifacts).")

let smoke_arg =
  Arg.(
    value & flag
    & info [ "smoke" ]
        ~doc:"CI durations: an eighth of each experiment's default window (floor 50k cycles).")

let cmd_of_experiment (e : Experiments.t) =
  let action jobs duration seed csv chart trace metrics json forensics times =
    chart_mode := chart;
    run_experiment e ~jobs ~duration ~seed ~csv ~json ~trace ~metrics ~forensics ~times
  in
  Cmd.v
    (Cmd.info e.name ~doc:e.doc)
    Term.(
      const action $ jobs_arg $ duration_arg e.default_duration $ seed_arg $ csv_arg
      $ chart_arg $ trace_arg $ metrics_arg $ json_arg $ forensics_arg $ times_arg)

(* `bench doctor <experiment>`: the forensics pipeline as a first-class
   verb — rerun the experiment with witness capture on, print the
   diagnosis tables (who conflicts with whom, over which lines, owned by
   which region and allocation, and how transactions escalated), and
   write the bench/3 artifact. Equivalent to `<experiment> --forensics`
   minus the ordinary report plumbing flags. *)
let doctor_cmd =
  let exp_arg =
    Arg.(
      required
      & pos 0 (some (enum (List.map (fun (e : Experiments.t) -> (e.name, e)) Experiments.all))) None
      & info [] ~docv:"EXPERIMENT" ~doc:"Experiment to diagnose.")
  in
  let duration_opt =
    Arg.(
      value
      & opt (some int) None
      & info [ "duration"; "d" ]
          ~doc:"Measured window in virtual cycles (default: the experiment's own).")
  in
  let action (e : Experiments.t) jobs duration seed =
    let duration = match duration with Some d -> d | None -> e.default_duration in
    run_experiment e ~jobs ~duration ~seed ~csv:false ~json:false ~trace:None
      ~metrics:None ~forensics:true ~times:false
  in
  Cmd.v
    (Cmd.info "doctor"
       ~doc:
         "diagnose an experiment's contention: conflict witnesses, abort attribution, \
          hot-line ranking and escalation timelines; writes \
          BENCH_<experiment>.forensics.json")
    Term.(const action $ exp_arg $ jobs_arg $ duration_opt $ seed_arg)

let all_action jobs seed csv chart smoke json times =
  chart_mode := chart;
  run_all ~jobs ~seed ~csv ~smoke ~json ~times

let all_cmd =
  Cmd.v
    (Cmd.info "all"
       ~doc:
         "run every figure and table (default); with --json, write one \
          BENCH_<experiment>.json per experiment")
    Term.(
      const all_action $ jobs_arg $ seed_arg $ csv_arg $ chart_arg $ smoke_arg $ json_arg
      $ times_arg)

let read_json_file file =
  let ic = open_in_bin file in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Obs.Json.parse s

(* ------------------------------------------------------------------ *)
(* `bench perf`: the simulator's own speed as one quotable number per
   machine — virtual memory operations per wall second and wall time per
   virtual cycle, read out of the per-cell metrics registry. Wall-clock,
   so never part of `all` or the artifact set; the optional floor file
   gives CI a regression gate with a generous tolerance band. *)

let perf_reference_duration = 50_000

let perf_cells ~seed =
  let duration = perf_reference_duration in
  List.map
    (fun (mk : Hqueue.Intf.maker) ->
      Runner.Cell.v ~label:(Printf.sprintf "fig1/%s/x16" mk.queue_name) (fun () ->
          ignore
            (Workload.Queue_bench.run_one mk ~threads:16 ~duration ~prefill:64 ~seed)))
    Hqueue.all
  @ [
      Runner.Cell.v ~label:"scale/queue/HTM/x256" (fun () ->
          ignore
            (Workload.Scale_bench.queue_one
               (Option.get (Hqueue.find_maker "HTM"))
               ~threads:256 ~duration ~seed));
    ]

(* Virtual operations: every simulated memory access the cell performed. *)
let perf_vops snapshot =
  List.fold_left
    (fun acc name ->
      match List.assoc_opt ("mem." ^ name) snapshot with
      | Some (Obs.Metrics.Counter { total; _ }) -> acc + total
      | _ -> acc)
    0
    [ "reads"; "writes"; "atomics"; "allocs"; "frees" ]

let perf_rows outcomes =
  let cycles = Workload.Driver.warmup + perf_reference_duration in
  List.map
    (fun (o : unit Runner.Sweep.outcome) ->
      let vops = perf_vops o.oc_snapshot in
      (o.oc_label, vops, o.oc_wall_us, cycles))
    outcomes

let perf_floor_json rows =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str "perf/1");
      ("duration", Obs.Json.Int perf_reference_duration);
      ( "cells",
        Obs.Json.List
          (List.map
             (fun (label, _, wall_us, _) ->
               Obs.Json.Obj
                 [
                   ("cell", Obs.Json.Str label);
                   ("wall_us", Obs.Json.Int (int_of_float wall_us));
                 ])
             rows) );
    ]

(* The floor gate: fresh/reference <= 2 passes, <= 4 warns, beyond fails.
   Wall-clock varies across runners, hence the generous bands; the gate
   only exists to catch order-of-magnitude regressions of the simulator
   core. *)
let perf_check rows file =
  match read_json_file file with
  | Error e ->
      pf "%s: INVALID: %s@." file e;
      exit 2
  | Ok j ->
      let ref_cells =
        match Obs.Json.member "cells" j with
        | Some (Obs.Json.List l) ->
            List.filter_map
              (fun c ->
                match (Obs.Json.member "cell" c, Obs.Json.member "wall_us" c) with
                | Some (Obs.Json.Str name), Some (Obs.Json.Int w) -> Some (name, w)
                | _ -> None)
              l
        | _ -> []
      in
      let failed = ref false in
      List.iter
        (fun (label, _, wall_us, _) ->
          match List.assoc_opt label ref_cells with
          | None -> pf "perf floor: %-28s (no reference; skipped)@." label
          | Some ref_us ->
              let ratio = wall_us /. float_of_int (max 1 ref_us) in
              if ratio <= 2.0 then
                pf "perf floor: %-28s OK    (%.2fx the reference)@." label ratio
              else if ratio <= 4.0 then
                pf "perf floor: %-28s WARN  (%.2fx the reference; floor fails at 4x)@."
                  label ratio
              else begin
                failed := true;
                pf "perf floor: %-28s FAIL  (%.2fx the reference)@." label ratio
              end)
        rows;
      if !failed then begin
        pf "perf floor: FAILED — the simulator core got more than 4x slower than@.";
        pf "the committed reference (%s). If intentional, regenerate it with@." file;
        pf "`bench perf --update %s` on a quiet machine.@." file;
        exit 1
      end

let perf_cmd =
  let check_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "check" ] ~docv:"FILE"
          ~doc:
            "Compare each cell's wall time against the committed reference $(docv): \
             within 2x passes, within 4x warns, beyond fails (exit 1).")
  in
  let update_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "update" ] ~docv:"FILE"
          ~doc:"Write this run's wall times to $(docv) as the new reference.")
  in
  let action seed check update =
    let outcomes = Runner.Sweep.run ~jobs:1 ~metrics:true (perf_cells ~seed) in
    (match Runner.Sweep.errors outcomes with
    | [] -> ()
    | (label, e) :: _ ->
        pf "perf: cell %s raised %s@." label (Printexc.to_string e);
        exit 2);
    let rows = perf_rows outcomes in
    pf "== Simulator speed (virtual ops = simulated memory accesses) ==@.";
    Obs.Table.print_cols Format.std_formatter
      [ "machine"; "virtual ops"; "wall ms"; "virtual Mops/s"; "wall ns/vcycle" ]
      (List.map
         (fun (label, vops, wall_us, cycles) ->
           [
             label;
             string_of_int vops;
             Printf.sprintf "%.2f" (wall_us /. 1000.0);
             Printf.sprintf "%.1f" (float_of_int vops /. wall_us);
             Printf.sprintf "%.1f" (wall_us *. 1000.0 /. float_of_int cycles);
           ])
         rows);
    (match update with
    | Some file ->
        Obs.Json.write_file file (perf_floor_json rows);
        pf "perf reference -> %s@." file
    | None -> ());
    match check with Some file -> perf_check rows file | None -> ()
  in
  Cmd.v
    (Cmd.info "perf"
       ~doc:
         "measure the simulator's own wall-clock speed (virtual ops/sec and wall time \
          per virtual cycle, per machine); --check gates against a committed reference")
    Term.(const action $ seed_arg $ check_arg $ update_arg)

(* CI gate: parse artifact files with the strict in-repo JSON parser and
   fail loudly on the first invalid one. *)
let validate_cmd =
  let files = Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE") in
  let action files =
    let ok = ref true in
    List.iter
      (fun file ->
        match read_json_file file with
        | Ok _ -> pf "%s: valid JSON@." file
        | Error e ->
            ok := false;
            pf "%s: INVALID: %s@." file e)
      files;
    if not !ok then exit 1
  in
  Cmd.v
    (Cmd.info "validate" ~doc:"check that artifact files are valid JSON (CI gate)")
    Term.(const action $ files)

(* The regression gate: compare two BENCH artifacts at the shape level
   (orderings, ratio bands, crossover positions) and exit 1 on any
   difference — absolute values may drift freely within the bands. *)
let diff_cmd =
  let old_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"OLD") in
  let new_arg = Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW") in
  let order_tol_arg =
    Arg.(
      value
      & opt float Runner.Diff.default_order_tol
      & info [ "order-tol" ] ~docv:"T"
          ~doc:
            "Relative tie band: two values within $(docv) of each other make no ordering \
             claim.")
  in
  let ratio_tol_arg =
    Arg.(
      value
      & opt float Runner.Diff.default_ratio_tol
      & info [ "ratio-tol" ] ~docv:"R"
          ~doc:"Allowed per-cell drift band: new/old must stay within [1/$(docv), $(docv)].")
  in
  let action old_f new_f order_tol ratio_tol =
    let read f =
      match read_json_file f with
      | Ok j -> j
      | Error e ->
          pf "%s: INVALID: %s@." f e;
          exit 2
    in
    let r =
      Runner.Diff.diff ~order_tol ~ratio_tol ~old_artifact:(read old_f)
        ~new_artifact:(read new_f) ()
    in
    Runner.Diff.print Format.std_formatter r;
    if Runner.Diff.has_regression r then exit 1
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "shape-compare two BENCH artifacts (orderings, ratios, crossovers); exit 1 on \
          regression (CI gate)")
    Term.(const action $ old_arg $ new_arg $ order_tol_arg $ ratio_tol_arg)

let () =
  let default =
    Term.(
      const all_action $ jobs_arg $ seed_arg $ csv_arg $ chart_arg $ smoke_arg $ json_arg
      $ times_arg)
  in
  let info =
    Cmd.info "bench" ~doc:"Reproduce the tables and figures of Dragojevic et al., PODC 2011"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          (all_cmd :: doctor_cmd :: perf_cmd :: validate_cmd :: diff_cmd
          :: List.map cmd_of_experiment Experiments.all)))
